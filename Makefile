# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint bench bench-quick examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Protocol-aware static analysis (see README "Static analysis & invariants")
lint:
	dune build @lint

# Full experiment tables (writes bench_results/*.csv too)
bench:
	dune exec bench/main.exe -- csv

# Reduced seed counts, for CI smoke
bench-quick:
	dune exec bench/main.exe -- quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/byzantine_generals.exe
	dune exec examples/adversarial_scheduler.exe
	dune exec examples/replicated_log.exe
	dune exec examples/partial_network.exe
	dune exec examples/model_checking.exe

clean:
	dune clean
