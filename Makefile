# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint lint-json bench bench-quick chaos golden examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Protocol-aware static analysis (see README "Static analysis & invariants")
lint:
	dune build @lint

# Same scan, machine-readable: writes the SARIF-lite JSON report to
# _build/default/lint-report.json (fingerprints feed lint.allow entries)
lint-json:
	dune build @lint-json
	@echo "report: _build/default/lint-report.json"

# Full experiment tables (writes bench_results/*.csv too)
bench:
	dune exec bench/main.exe -- csv

# Reduced seed counts, for CI smoke
bench-quick:
	dune exec bench/main.exe -- quick

# Randomized chaos campaigns (fault injection + lossy links) with a
# pinned generator seed, so a red run is replayable byte-for-byte.
# Override the pin to widen the net: make chaos QCHECK_SEED=12345
QCHECK_SEED ?= 421984
chaos:
	QCHECK_SEED=$(QCHECK_SEED) dune exec test/test_chaos.exe

# Regenerate the checked-in golden analyzer summaries from the same
# seeded runs CI replays, then re-run the test suite: if the goldens
# and the code disagree after regeneration, something nondeterministic
# crept in.  Golden drift is this one command instead of hand-editing.
golden:
	dune build bin/abc_run.exe bin/abc_trace.exe
	dune exec bin/abc_run.exe -- consensus -n 7 -f 2 --seed 42 \
	  --trace-out _build/smoke_trace.jsonl
	dune exec bin/abc_trace.exe -- summary _build/smoke_trace.jsonl \
	  > test/golden/smoke_summary.txt
	dune exec bin/abc_run.exe -- consensus -n 5 -f 1 --reliable --loss 0.2 \
	  --seed 7 --trace-out _build/lossy_trace.jsonl
	dune exec bin/abc_trace.exe -- summary _build/lossy_trace.jsonl \
	  > test/golden/lossy_summary.txt
	dune exec bin/abc_run.exe -- smr --atomic -n 4 -f 1 --epochs 3 \
	  --batch-size 8 --seed 11 --trace-out _build/atomic_trace.jsonl
	dune exec bin/abc_trace.exe -- summary _build/atomic_trace.jsonl \
	  > test/golden/atomic_summary.txt
	dune exec bin/abc_run.exe -- smr --atomic -n 4 -f 1 --epochs 4 \
	  --batch-size 4 --seed 21 --checkpoint-interval 2 --crash 2:300:2500 \
	  --trace-out _build/recovery_trace.jsonl
	dune exec bin/abc_trace.exe -- summary _build/recovery_trace.jsonl \
	  > test/golden/recovery_summary.txt
	dune runtest

examples:
	dune exec examples/quickstart.exe
	dune exec examples/byzantine_generals.exe
	dune exec examples/adversarial_scheduler.exe
	dune exec examples/replicated_log.exe
	dune exec examples/partial_network.exe
	dune exec examples/model_checking.exe

clean:
	dune clean
