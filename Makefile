# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint bench bench-quick chaos examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Protocol-aware static analysis (see README "Static analysis & invariants")
lint:
	dune build @lint

# Full experiment tables (writes bench_results/*.csv too)
bench:
	dune exec bench/main.exe -- csv

# Reduced seed counts, for CI smoke
bench-quick:
	dune exec bench/main.exe -- quick

# Randomized chaos campaigns (fault injection + lossy links) with a
# pinned generator seed, so a red run is replayable byte-for-byte.
# Override the pin to widen the net: make chaos QCHECK_SEED=12345
QCHECK_SEED ?= 421984
chaos:
	QCHECK_SEED=$(QCHECK_SEED) dune exec test/test_chaos.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/byzantine_generals.exe
	dune exec examples/adversarial_scheduler.exe
	dune exec examples/replicated_log.exe
	dune exec examples/partial_network.exe
	dune exec examples/model_checking.exe

clean:
	dune clean
