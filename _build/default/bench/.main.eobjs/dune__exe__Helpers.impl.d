bench/helpers.ml: Abc Abc_net Abc_sim Array List
