bench/main.ml: Abc Abc_net Abc_sim Abc_smr Adversary Analyze Array B Bechamel Behaviour Benchmark Hashtbl Helpers Instance List Measure Node_id Printf Staged String Sys Table Test Time Toolkit
