bench/main.mli:
