examples/adversarial_scheduler.ml: Abc Abc_net Abc_sim Array Fmt List
