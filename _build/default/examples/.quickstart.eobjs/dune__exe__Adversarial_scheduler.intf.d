examples/adversarial_scheduler.mli:
