examples/byzantine_generals.ml: Abc Abc_net Array Fmt List String
