examples/byzantine_generals.mli:
