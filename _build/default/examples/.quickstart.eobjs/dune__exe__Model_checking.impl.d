examples/model_checking.ml: Abc Abc_check Abc_net Array Fmt List
