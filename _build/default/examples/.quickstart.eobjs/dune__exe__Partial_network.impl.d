examples/partial_network.ml: Abc Abc_net Array Fmt List String
