examples/partial_network.mli:
