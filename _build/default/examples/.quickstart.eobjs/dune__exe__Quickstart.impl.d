examples/quickstart.ml: Abc Abc_net Abc_sim Array Fmt
