examples/quickstart.mli:
