examples/replicated_log.ml: Abc Abc_net Abc_sim Abc_smr Array Fmt List Printf
