(* The adversary owns the network — and loses anyway.

   FLP says no deterministic protocol can reach consensus in an
   asynchronous system with even one fault: the scheduler can always
   keep a deterministic protocol undecided.  Bracha's answer is
   randomization: whatever the scheduler does, every coin-flip round
   gives the honest nodes a chance to align, so termination comes with
   probability 1 — only the round count varies.

   This example runs the same n=8, f=2 consensus — honest nodes split
   4-vs-4 on their inputs, two Byzantine nodes flipping every value
   they relay — under increasingly hostile schedulers, and prints the
   distribution of rounds-to-decision over 40 seeds, for both the
   paper's local coin and the common-coin extension.

   Run with: dune exec examples/adversarial_scheduler.exe *)

module B = Abc.Bracha_consensus
module Node_id = Abc_net.Node_id
module Adversary = Abc_net.Adversary
module Summary = Abc_sim.Summary

module H = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

let n = 8

let f = 2

let seeds = 40

let rounds_under ~adversary ~options =
  (* An even 4-vs-4 split gives the scheduler the most room to keep
     the honest nodes disagreeing. *)
  let votes =
    Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)
  in
  let faulty =
    [
      (Node_id.of_int 0, Abc_net.Behaviour.Mutate B.Fault.flip_value);
      (Node_id.of_int 7, Abc_net.Behaviour.Mutate B.Fault.flip_value);
    ]
  in
  let one_run seed =
    let inputs = B.inputs ~n ~options votes in
    let config = H.E.config ~n ~f ~inputs ~faulty ~adversary ~seed () in
    let _, verdict = H.run config in
    assert (Abc.Harness.ok verdict);
    verdict.Abc.Harness.max_round
  in
  List.init seeds one_run

let describe label samples =
  match Summary.of_int_list samples with
  | Some s ->
    Fmt.pr "  %-18s rounds: mean %.2f  median %.0f  p95 %.0f  worst %.0f@." label
      (Summary.mean s) (Summary.median s) (Summary.percentile s 95.)
      (Summary.max_value s)
  | None -> ()

let () =
  let schedulers =
    [
      ("fifo", Adversary.fifo);
      ("uniform", Adversary.uniform);
      ("latency", Adversary.latency ~mean:8.);
      ("targeted-delay", Adversary.targeted_delay ~victims:[ Node_id.of_int 0 ]);
      ("split", Adversary.split ~n);
    ]
  in
  Fmt.pr
    "n=%d, f=%d, honest inputs split 4-vs-4, two bit-flipping Byzantine nodes, %d seeds.@."
    n f seeds;
  Fmt.pr "@.Local coin (the 1984 protocol):@.";
  List.iter
    (fun (label, adversary) ->
      describe label (rounds_under ~adversary ~options:B.Options.default))
    schedulers;
  Fmt.pr "@.Common coin (the modern extension):@.";
  let options = B.Options.with_common_coin ~seed:7 in
  List.iter
    (fun (label, adversary) -> describe label (rounds_under ~adversary ~options))
    schedulers;
  Fmt.pr
    "@.Every run terminated — the scheduler can stretch the race but@.\
     cannot win it.  The common coin caps the stretching, which is why@.\
     modern asynchronous BFT systems pay for one.@."
