(* Byzantine generals: seven generals, two traitors, no clocks.

   Seven armies must agree whether to attack (1) or retreat (0) using
   asynchronous messengers — arbitrarily slow, never lost.  Two
   generals are traitors trying to split the loyal five.  This is
   exactly the setting of Bracha's PODC 1984 protocol: n = 7 > 3f = 6,
   so agreement is possible despite FLP, with probability-1
   termination from coin flips.

   The example runs three traitor strategies and shows that the loyal
   generals always reach the same decision, and that when all loyal
   generals want to attack, no traitor can talk them out of it
   (validity).

   Run with: dune exec examples/byzantine_generals.exe *)

module B = Abc.Bracha_consensus
module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour

module H = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

let n = 7

let f = 2

let traitors = [ 2; 5 ]

let strategies =
  [
    ("silent traitors (crash)", Behaviour.Silent);
    ("consistent liars (flip every vote)", Behaviour.Mutate B.Fault.flip_value);
    ( "two-faced traitors (equivocate)",
      Behaviour.Equivocate (B.Fault.equivocate_by_half ~n) );
  ]

let campaign ~label ~behaviour ~votes ~seed =
  let faulty = List.map (fun i -> (Node_id.of_int i, behaviour)) traitors in
  let inputs = B.inputs ~n ~options:B.Options.default votes in
  let config =
    H.E.config ~n ~f ~inputs ~faulty ~adversary:Abc_net.Adversary.uniform ~seed ()
  in
  let _, verdict = H.run config in
  Fmt.pr "  %-38s" label;
  match verdict.Abc.Harness.decisions with
  | (_, _, first) :: _ when Abc.Harness.ok verdict ->
    let order =
      if Abc.Value.to_bool first.Abc.Decision.value then "ATTACK" else "RETREAT"
    in
    Fmt.pr "loyal generals agree: %s (round %d, %d messages)@." order
      verdict.Abc.Harness.max_round verdict.Abc.Harness.messages
  | _ -> Fmt.pr "FAILED: %a@." Abc.Harness.pp_verdict verdict

let () =
  Fmt.pr "Seven generals, two traitors (nodes %s), asynchronous messengers.@."
    (String.concat ", " (List.map string_of_int traitors));

  Fmt.pr "@.Scenario 1: every loyal general wants to attack.@.";
  let attack_votes = Array.make n Abc.Value.One in
  List.iteri
    (fun k (label, behaviour) ->
      campaign ~label ~behaviour ~votes:attack_votes ~seed:(100 + k))
    strategies;

  Fmt.pr "@.Scenario 2: the loyal generals are split 3 vs 2.@.";
  let split_votes =
    Array.init n (fun i -> if i mod 2 = 0 then Abc.Value.One else Abc.Value.Zero)
  in
  List.iteri
    (fun k (label, behaviour) ->
      campaign ~label ~behaviour ~votes:split_votes ~seed:(200 + k))
    strategies;

  Fmt.pr
    "@.In scenario 1 validity forces ATTACK every time; in scenario 2 either@.\
     order is legitimate — what matters is that all loyal generals pick the@.\
     same one, which they always do.@."
