(* Consensus on a partial network: how much graph do you need?

   The 1984 model assumes every pair of nodes shares a channel.  Real
   deployments don't.  This example runs the modern binary agreement
   (MMR, common coin) over a hop-by-hop flood relay on circulant graphs
   of increasing connectivity, with two crashed replicas sitting
   exactly on the thinnest cut.

   The outcome is the classic threshold: if removing the crashed nodes
   disconnects the survivors (κ ≤ f at the cut), agreement dies with
   them; one extra offset of edges and it sails through.

   Run with: dune exec examples/partial_network.exe *)

module Topology = Abc_net.Topology
module Node_id = Abc_net.Node_id
module M = Abc.Mmr_consensus
module Relayed = Abc_net.Relay.Make (M)

module H = Abc.Harness.Make (struct
  include Relayed

  let value_of_input = M.value_of_input
end)

let n = 8

let f = 2

let crash_cut = [ 1; 5 ] (* antipodal on the ring: a minimum cut *)

let attempt ~label ~graph ~seed =
  let votes =
    Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)
  in
  let inputs = M.inputs ~n ~coin:(Abc.Coin.common ~seed:7) votes in
  let faulty =
    List.map
      (fun i -> (Node_id.of_int i, Abc_net.Behaviour.Crash_after 0))
      crash_cut
  in
  let config =
    H.E.config ~n ~f ~inputs ~faulty ~topology:graph
      ~adversary:Abc_net.Adversary.uniform ~seed ~max_deliveries:400_000 ()
  in
  let _, verdict = H.run config in
  let survivors_connected =
    Topology.connected_after_removing graph (List.map Node_id.of_int crash_cut)
  in
  Fmt.pr "  %-12s κ=%d  survivors connected: %-5b  ->  %s@." label
    (Topology.vertex_connectivity graph)
    survivors_connected
    (if Abc.Harness.ok verdict then
       Fmt.str "agreement in %d rounds, %d messages" verdict.Abc.Harness.max_round
         verdict.Abc.Harness.messages
     else "NO AGREEMENT (partition)")

let () =
  Fmt.pr
    "Eight replicas, two crashed at the cut {%s}, consensus over flood relay:@.@."
    (String.concat ", " (List.map string_of_int crash_cut));
  List.iter
    (fun (label, graph) -> attempt ~label ~graph ~seed:1)
    [
      ("ring C8(1)", Topology.circulant ~n ~offsets:[ 1 ]);
      ("C8(1,2)", Topology.circulant ~n ~offsets:[ 1; 2 ]);
      ("C8(1,2,3)", Topology.circulant ~n ~offsets:[ 1; 2; 3 ]);
      ("complete K8", Topology.complete ~n);
    ];
  Fmt.pr
    "@.The survivors must form a connected graph: vertex connectivity@.\
     above the fault count at the cut is exactly the line between the@.\
     two outcomes.  (Byzantine relays would additionally require 2f+1@.\
     connectivity and certified paths — see DESIGN.md.)@."
