(* Quickstart: reliable broadcast in ten lines.

   One sender reliable-broadcasts a bit to four nodes over a fully
   asynchronous network.  The sender is Byzantine and two-faced: it
   tells the first half of the network "1" and the second half "0".
   Bracha's echo/ready protocol forces a single outcome anyway.

   Run with: dune exec examples/quickstart.exe *)

module Rbc = Abc.Bracha_rbc.Binary
module Engine = Abc_net.Engine.Make (Rbc)
module Node_id = Abc_net.Node_id

let () =
  let n = 4 and f = 1 in
  let sender = Node_id.of_int 0 in

  (* The sender lies per recipient; everyone else is honest. *)
  let two_faced _rng ~dst value =
    if Node_id.to_int dst < n / 2 then value else Abc.Value.negate value
  in
  let faulty =
    [ (sender, Abc_net.Behaviour.Equivocate (Rbc.Fault.equivocate two_faced)) ]
  in

  let config =
    Engine.config ~n ~f
      ~inputs:(Rbc.inputs ~n ~sender Abc.Value.One)
      ~faulty ~adversary:Abc_net.Adversary.uniform ~seed:2024 ()
  in
  let result = Engine.run config in

  Fmt.pr "Reliable broadcast, n=%d f=%d, equivocating sender:@." n f;
  Array.iteri
    (fun i outputs ->
      match outputs with
      | [ (time, Rbc.Delivered v) ] ->
        Fmt.pr "  node %d delivered %a at virtual time %d@." i Abc.Value.pp v time
      | [] -> Fmt.pr "  node %d delivered nothing@." i
      | _ -> assert false)
    result.Engine.outputs;
  Fmt.pr "Messages sent: %d (O(n^2) echoes and readies)@."
    (Abc_sim.Metrics.counter result.Engine.metrics "sent");
  Fmt.pr
    "Agreement holds: honest nodes never deliver conflicting values,@.\
     no matter what the sender or the scheduler does.@."
