(* A leaderless Byzantine replicated log.

   Four replicas each receive commands from their local clients and
   must serve one totally-ordered log — the classic state machine
   replication problem, solved here with no leader and no timing
   assumptions: each log slot is an Asynchronous Common Subset built
   from Bracha reliable broadcasts and binary agreements.

   Replica 2 is Byzantine (silent).  Its clients lose service — that is
   unavoidable — but the other replicas' commands are ordered
   identically everywhere, and the traitor cannot fork the log.

   Run with: dune exec examples/replicated_log.exe *)

module Log = Abc_smr.Replicated_log
module Engine = Abc_net.Engine.Make (Log)
module Node_id = Abc_net.Node_id

let n = 4

let f = 1

let slots = 3

let client_command replica slot =
  match (replica + slot) mod 3 with
  | 0 -> Printf.sprintf "PUT key%d r%d.s%d" (replica mod 2) replica slot
  | 1 -> Printf.sprintf "GET key%d" (replica mod 2)
  | _ -> Printf.sprintf "CAS key%d r%d.s%d fixed" (replica mod 2) replica (slot - 1)

let () =
  let inputs = Log.inputs ~n ~slots ~coin:Abc.Coin.local client_command in
  let faulty = [ (Node_id.of_int 2, Abc_net.Behaviour.Silent) ] in
  let config =
    Engine.config ~n ~f ~inputs ~faulty ~adversary:Abc_net.Adversary.uniform
      ~seed:42 ()
  in
  let result = Engine.run config in

  Fmt.pr "Replicated log: %d replicas, %d slots, replica 2 Byzantine-silent.@.@."
    n slots;

  (* Show replica 0's commit stream. *)
  Fmt.pr "Replica 0 commit stream:@.";
  List.iter
    (fun (time, output) ->
      match output with
      | Log.Committed { slot; commands } ->
        Fmt.pr "  t=%-5d slot %d committed: %a@." time slot
          Fmt.(list ~sep:comma (fun ppf (id, c) -> pf ppf "%a:%S" Node_id.pp id c))
          commands
      | Log.Log_complete log ->
        Fmt.pr "  t=%-5d log complete (%d commands)@." time (List.length log))
    result.Engine.outputs.(0);

  (* Verify all honest replicas converged on the same log. *)
  Fmt.pr "@.Final logs:@.";
  let logs =
    List.filter_map
      (fun i ->
        match Log.log_of_outputs result.Engine.outputs.(i) with
        | Some log when i <> 2 -> Some (i, log)
        | _ -> None)
      [ 0; 1; 2; 3 ]
  in
  List.iter
    (fun (i, log) ->
      Fmt.pr "  replica %d: %a@." i Fmt.(list ~sep:(any " -> ") string) log)
    logs;
  let identical =
    match logs with
    | (_, first) :: rest -> List.for_all (fun (_, log) -> log = first) rest
    | [] -> false
  in
  Fmt.pr "@.All honest replicas agree on the full order: %b@." identical;

  (* Apply each log to the deterministic KV state machine: identical
     logs must produce identical stores (compared by digest). *)
  Fmt.pr "@.State machine digests after applying the log:@.";
  List.iter
    (fun (i, log) ->
      let store, _ = Abc_smr.Kv_store.apply_log Abc_smr.Kv_store.empty log in
      Fmt.pr "  replica %d: %s  (%d keys)@." i
        (Abc_smr.Kv_store.digest store)
        (List.length (Abc_smr.Kv_store.bindings store)))
    logs;
  Fmt.pr "@.Total messages: %d, virtual time: %d@."
    (Abc_sim.Metrics.counter result.Engine.metrics "sent")
    result.Engine.duration
