lib/check/explore.ml: Abc_net Abc_prng Array Buffer Digest Fmt Hashtbl List Map Marshal Queue String
