lib/check/explore.mli: Abc_net
