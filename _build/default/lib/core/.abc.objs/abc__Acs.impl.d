lib/core/acs.ml: Array Ba_instance Coin Decision Fmt Import Int List Map Node_id Option Protocol Rbc_core Rbc_mux Value
