lib/core/acs.mli: Coin Import Node_id Protocol Value
