lib/core/ba_instance.ml: Coin Consensus_core Consensus_msg Decision Import List Node_id Rbc_mux Validation
