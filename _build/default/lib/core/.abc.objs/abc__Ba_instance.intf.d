lib/core/ba_instance.mli: Coin Decision Import Node_id Rbc_mux Stream Value
