lib/core/ben_or.ml: Array Coin Decision Fmt Import List Map Node_id Option Protocol Value
