lib/core/ben_or.mli: Coin Decision Fmt Import Node_id Protocol Stream Value
