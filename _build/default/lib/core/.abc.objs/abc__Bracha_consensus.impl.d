lib/core/bracha_consensus.ml: Array Ba_instance Coin Consensus_core Consensus_msg Decision Fmt Import List Node_id Protocol Rbc_mux Stream Validation Value
