lib/core/bracha_consensus.mli: Coin Consensus_msg Decision Fmt Import Node_id Protocol Rbc_mux Stream Value
