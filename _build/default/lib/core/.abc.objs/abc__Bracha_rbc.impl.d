lib/core/bracha_rbc.ml: Array Fmt Import List Node_id Protocol Rbc_core Value
