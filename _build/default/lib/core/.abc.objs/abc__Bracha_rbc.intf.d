lib/core/bracha_rbc.mli: Import Node_id Protocol Rbc_core Stream Value
