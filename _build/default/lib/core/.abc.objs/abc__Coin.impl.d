lib/core/coin.ml: Abc_prng Fmt Import Int64 Stream Value
