lib/core/coin.mli: Fmt Import Stream Value
