lib/core/consensus_core.ml: Coin Consensus_msg Decision Import List Map Node_id Step Value
