lib/core/consensus_core.mli: Coin Consensus_msg Decision Import Node_id Stream Value
