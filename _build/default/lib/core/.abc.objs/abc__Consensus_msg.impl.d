lib/core/consensus_msg.ml: Bool Fmt Import Int Map Node_id Value
