lib/core/consensus_msg.mli: Fmt Import Map Node_id Value
