lib/core/consistent_broadcast.ml: Array Fmt Import Map Node_id Protocol Rbc_core Value
