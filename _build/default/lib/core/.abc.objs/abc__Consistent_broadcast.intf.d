lib/core/consistent_broadcast.mli: Import Node_id Protocol Rbc_core Value
