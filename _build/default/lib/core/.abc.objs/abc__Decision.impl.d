lib/core/decision.ml: Fmt Int Value
