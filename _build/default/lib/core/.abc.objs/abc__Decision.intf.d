lib/core/decision.mli: Fmt Value
