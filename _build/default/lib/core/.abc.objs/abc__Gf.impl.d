lib/core/gf.ml: Abc_prng Fmt Int
