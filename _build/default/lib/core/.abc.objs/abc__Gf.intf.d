lib/core/gf.mli: Abc_prng Fmt
