lib/core/harness.ml: Abc_net Array Decision Engine Fmt Import List Metrics Node_id Protocol Value
