lib/core/harness.mli: Decision Engine Fmt Import Node_id Protocol Value
