lib/core/import.ml: Abc_net Abc_prng Abc_sim
