lib/core/import.mli: Abc_net Abc_prng Abc_sim
