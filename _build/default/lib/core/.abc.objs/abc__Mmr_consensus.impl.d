lib/core/mmr_consensus.ml: Array Coin Decision Fmt Gf Import Int List Map Node_id Protocol Rabin_coin Shamir Value
