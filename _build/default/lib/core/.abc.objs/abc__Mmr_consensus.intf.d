lib/core/mmr_consensus.mli: Coin Decision Import Node_id Protocol Rabin_coin Shamir Stream Value
