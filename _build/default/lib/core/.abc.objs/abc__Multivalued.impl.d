lib/core/multivalued.ml: Acs Array Coin Fmt Import List Node_id Value
