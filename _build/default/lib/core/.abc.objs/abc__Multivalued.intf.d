lib/core/multivalued.mli: Acs Coin Import Node_id Protocol Value
