lib/core/payloads.ml: Fmt Int String
