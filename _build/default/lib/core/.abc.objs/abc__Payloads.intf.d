lib/core/payloads.mli: Value
