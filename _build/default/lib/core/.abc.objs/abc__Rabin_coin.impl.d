lib/core/rabin_coin.ml: Gf Import List Node_id Shamir Stream Value
