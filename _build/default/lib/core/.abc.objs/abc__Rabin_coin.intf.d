lib/core/rabin_coin.mli: Import Node_id Shamir Value
