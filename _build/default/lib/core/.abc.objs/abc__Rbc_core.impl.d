lib/core/rbc_core.ml: Fmt Import List Map Node_id Value
