lib/core/rbc_core.mli: Fmt Import Node_id Value
