lib/core/rbc_mux.ml: Consensus_msg Fmt List Option Rbc_core
