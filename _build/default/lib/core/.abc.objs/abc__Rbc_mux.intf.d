lib/core/rbc_mux.mli: Consensus_msg Fmt Import Node_id Rbc_core
