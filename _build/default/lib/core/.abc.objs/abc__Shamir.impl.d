lib/core/shamir.ml: Gf List
