lib/core/shamir.mli: Abc_prng Gf
