lib/core/turpin_coan.ml: Array Ba_instance Coin Decision Fmt Import List Map Node_id Option Protocol Rbc_mux Value
