lib/core/turpin_coan.mli: Coin Import Protocol Value
