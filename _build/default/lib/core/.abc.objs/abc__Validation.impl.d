lib/core/validation.ml: Consensus_msg Import Key List Map Node_id Step Value
