lib/core/validation.mli: Consensus_msg
