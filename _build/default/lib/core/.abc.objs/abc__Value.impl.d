lib/core/value.ml: Fmt Int
