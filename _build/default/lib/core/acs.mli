open Import

(** Asynchronous Common Subset — multivalued agreement from Bracha's
    primitives.

    The construction that modern asynchronous BFT systems
    (HoneyBadgerBFT's core) build from exactly the two tools of the
    1984 paper: every node reliable-broadcasts its proposal, and [n]
    binary-agreement instances decide {e whose} proposals count:

    + on delivering node [j]'s proposal, input 1 into [BA_j];
    + once [n - f] instances have decided 1, input 0 into every
      instance not yet started;
    + when all [n] instances have decided, output the proposals of
      every index that decided 1 (reliable-broadcast totality
      guarantees the accepted payloads arrive everywhere).

    All honest nodes output the {e same} set of (node, proposal) pairs
    containing at least [n - 2f] honest proposals.  {!decide_value}
    collapses the set deterministically, yielding multivalued
    consensus. *)

module Make (V : Value.PAYLOAD) : sig
  type input = { proposal : V.t; coin : Coin.t }

  type output = Accepted of (Node_id.t * V.t) list
      (** the common subset, sorted by node id — identical at every
          honest node *)

  type msg

  include
    Protocol.S
      with type input := input
       and type output := output
       and type msg := msg

  val inputs : n:int -> coin:Coin.t -> V.t array -> input array
  (** One proposal per node, shared coin configuration. *)

  val decide_value : output -> V.t
  (** Deterministic collapse of the common subset to a single value
      (the smallest payload in the set).  Requires a non-empty subset,
      which the protocol guarantees. *)
end
