open Import

(** Ben-Or's randomized consensus (1983) — the baseline Bracha improves
    on.

    Two phases per round over {e plain} broadcasts (no reliable
    broadcast, no validation):

    + {b Report}: broadcast the current value; await [q = n - f]
      reports; if one value has a large majority, propose it, otherwise
      propose "?".
    + {b Proposal}: await [q] proposals; with [p(w)] the number of
      proposals for [w]: decide at the decide threshold, adopt at the
      adopt threshold, otherwise flip the coin.

    Thresholds per fault {!Mode}:

    - {b Byzantine} (requires [n > 5f]): majority [> (n+f)/2], adopt
      [≥ f+1], decide [≥ 3f+1].  Resilience [⌊(n-1)/5⌋] versus
      Bracha's [⌊(n-1)/3⌋] — experiment E2's comparison.
    - {b Crash} (requires [n > 2f]): majority [> n/2], adopt [≥ 1],
      decide [≥ f+1].  The classic crash-fault protocol. *)

module Mode : sig
  type t = Byzantine | Crash

  val max_faults : t -> n:int -> int
  (** Largest [f] the protocol is designed for: [⌊(n-1)/5⌋] Byzantine,
      [⌊(n-1)/2⌋] crash. *)

  val label : t -> string
  val pp : t Fmt.t
end

type input = { value : Value.t; mode : Mode.t; coin : Coin.t }

type msg =
  | Report of { round : int; value : Value.t }
  | Proposal of { round : int; value : Value.t option }
      (** [None] is the paper's "?" proposal *)

include
  Protocol.S
    with type input := input
     and type output = Decision.t
     and type msg := msg

val inputs : n:int -> mode:Mode.t -> coin:Coin.t -> Value.t array -> input array
(** Pair each node's value with the shared mode and coin. *)

val value_of_input : input -> Value.t

(** Forged messages for Byzantine behaviours. *)
module Fault : sig
  val flip_value : Stream.t -> msg -> msg
  (** Negate report values and proposal values. *)

  val equivocate_by_half : n:int -> Stream.t -> dst:Node_id.t -> msg -> msg
  (** Tell the two halves of the network opposite values — effective
      here because nothing prevents equivocation. *)
end
