open Import

(** Bracha's asynchronous Byzantine consensus as a runnable protocol.

    The paper's headline system, assembled from its parts:
    reliable-broadcast transport ({!Rbc_mux}), message justification
    ({!Validation}) and the randomized three-step round machine
    ({!Consensus_core}).  Tolerates [f ≤ ⌊(n-1)/3⌋] Byzantine nodes in
    a fully asynchronous network and terminates with probability 1.

    {!Options} select the coin (the paper's local coin, or the perfect
    common coin extension), and switch off validation or reliable
    broadcast for the ablation experiments (E6, E7): with [transport =
    Plain], step messages travel as ordinary broadcasts and Byzantine
    nodes can equivocate; with [validation = false], unjustifiable
    values are accepted. *)

module Options : sig
  type transport =
    | Reliable  (** every step message goes through Bracha RBC *)
    | Plain  (** raw broadcasts: the ablation without RBC *)

  type t = { coin : Coin.t; validation : bool; transport : transport }

  val default : t
  (** The paper's protocol: local coin, validation on, reliable
      transport. *)

  val with_common_coin : seed:int -> t
  (** The modern-extension configuration: perfect common coin. *)

  val pp : t Fmt.t
end

type input = { value : Value.t; options : Options.t }
(** Per-node input.  All nodes of a run must share the same
    [options]. *)

type msg =
  | Wire of Rbc_mux.wire  (** reliable transport traffic *)
  | Direct of Consensus_msg.vmsg  (** plain-transport step message *)

include
  Protocol.S
    with type input := input
     and type output = Decision.t
     and type msg := msg

val inputs : n:int -> options:Options.t -> Value.t array -> input array
(** [inputs ~n ~options values] pairs each node's value with the shared
    options.  Requires [Array.length values = n]. *)

val value_of_input : input -> Value.t
(** Project the proposed bit back out (used by the harness's validity
    check). *)

(** Forged messages for Byzantine behaviours. *)
module Fault : sig
  val flip_value : Stream.t -> msg -> msg
  (** Negate the payload bit of any message. *)

  val force_decide : Stream.t -> msg -> msg
  (** Set the decide flag on step-3 payloads: claims support that does
      not exist — stopped by validation, harmful without it. *)

  val random_value : Stream.t -> msg -> msg
  (** Replace the payload bit with a fresh random one. *)

  val equivocate_by_half : n:int -> Stream.t -> dst:Node_id.t -> msg -> msg
  (** Send the payload bit to low node ids and its negation to high
      ones — the split-brain attack reliable broadcast suppresses. *)
end
