open Import

type t = Local | Common of { seed : int }

let local = Local

let common ~seed = Common { seed }

let flip t ~rng ~round =
  match t with
  | Local -> Value.of_bool (Stream.bool rng)
  | Common { seed } ->
    (* A pure function of (seed, round): one SplitMix64 mixing step is
       an adequate bit extractor for a perfect-coin model. *)
    let mixed =
      Abc_prng.Splitmix64.mix
        (Int64.logxor
           (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
           (Int64.of_int round))
    in
    Value.of_bool (Int64.logand mixed 1L = 1L)

let label = function Local -> "local" | Common _ -> "common"

let pp ppf t = Fmt.string ppf (label t)
