open Import

(** Round coins.

    Bracha's 1984 protocol flips a {e local} coin: when a node sees
    neither enough support to decide nor to adopt, it picks its next
    value uniformly at random.  Termination then holds with probability
    1, with expected round counts that grow quickly with [n] (all
    honest coins must align against the adversary).

    The {e common} coin is the modern extension (Rabin-style, the one
    HoneyBadgerBFT-era protocols use): all nodes read the same unbiased
    random bit per round, collapsing the expected round count to a
    constant.  We model a perfect common coin as a pure function of
    [(seed, round)] — the substitution is documented in DESIGN.md. *)

type t =
  | Local  (** independent uniform bit per node per flip *)
  | Common of { seed : int }
      (** shared unbiased bit, identical at every node for each round *)

val local : t
(** The paper's local coin. *)

val common : seed:int -> t
(** A perfect common coin keyed by [seed]. *)

val flip : t -> rng:Stream.t -> round:int -> Value.t
(** [flip t ~rng ~round] draws the coin for [round].  A [Local] coin
    consumes randomness from the node's private [rng]; a [Common] coin
    ignores [rng] and returns the same bit at every node. *)

val label : t -> string
(** ["local"] or ["common"]. *)

val pp : t Fmt.t
