open Import

(** Consistent (echo-only) broadcast — what Bracha's ready phase buys.

    The two-phase primitive that predates reliable broadcast: the
    sender broadcasts [Initial v]; nodes echo; a node delivers on a
    quorum of [⌈(n+f+1)/2⌉] matching echoes.  It guarantees validity
    and {b consistency} (no two honest nodes deliver different values)
    with only ~n² messages and two phases — but {b not totality}: if
    the sender crashes mid-broadcast, some honest nodes can deliver
    while others never do.

    Bracha's third ([ready]) phase exists precisely to close that gap,
    at the cost of another n² messages.  The test suite demonstrates
    the totality failure with a deterministic crash schedule, and the
    comparison is part of understanding why consensus must be built on
    the reliable (three-phase) primitive. *)

module Make (V : Value.PAYLOAD) : sig
  module Core : module type of Rbc_core.Make (V)
  (** Reuses the reliable-broadcast event vocabulary ([Ready] events
      are ignored by this protocol). *)

  type input = { sender : Node_id.t; payload : V.t option }

  type output = Delivered of V.t

  include
    Protocol.S
      with type input := input
       and type output := output
       and type msg = Core.event

  val inputs : n:int -> sender:Node_id.t -> V.t -> input array
end

module Binary : sig
  include module type of Make (Value)
end
