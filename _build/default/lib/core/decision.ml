type t = { value : Value.t; round : int }

let equal a b = Value.equal a.value b.value && Int.equal a.round b.round

let pp ppf { value; round } = Fmt.pf ppf "decide(%a, round %d)" Value.pp value round
