(** Consensus decisions.

    Shared output type of every binary-consensus protocol in this
    library, so one harness can evaluate them all. *)

type t = { value : Value.t; round : int }
(** [value] is the decided bit; [round] the round in which this node
    decided (1-based). *)

val equal : t -> t -> bool
val pp : t Fmt.t
