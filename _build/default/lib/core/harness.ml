open Import

module type CONSENSUS = sig
  include Protocol.S with type output = Decision.t

  val value_of_input : input -> Value.t
end

type verdict = {
  terminated : bool;
  agreement : bool;
  validity : bool;
  decisions : (Node_id.t * int * Decision.t) list;
  rounds : int list;
  max_round : int;
  messages : int;
  deliveries : int;
  duration : int;
}

let ok v = v.terminated && v.agreement && v.validity

let pp_verdict ppf v =
  Fmt.pf ppf
    "terminated=%b agreement=%b validity=%b max_round=%d messages=%d duration=%d"
    v.terminated v.agreement v.validity v.max_round v.messages v.duration

module Make (P : CONSENSUS) = struct
  module E = Engine.Make (P)

  let evaluate (cfg : E.config) (result : E.result) =
    let honest = E.honest cfg in
    let decisions_of id =
      List.filter_map
        (fun (time, d) -> Some (id, time, d))
        result.E.outputs.(Node_id.to_int id)
    in
    let decisions = List.concat_map decisions_of honest in
    let one_each =
      List.for_all
        (fun id -> List.length result.E.outputs.(Node_id.to_int id) = 1)
        honest
    in
    let terminated = result.E.stop = Abc_net.Engine.All_terminal && one_each in
    let values =
      List.map (fun (_, _, d) -> d.Decision.value) decisions
      |> List.sort_uniq Value.compare
    in
    let agreement = List.length values <= 1 in
    let honest_inputs =
      List.map (fun id -> P.value_of_input cfg.E.inputs.(Node_id.to_int id)) honest
      |> List.sort_uniq Value.compare
    in
    let validity =
      match (honest_inputs, values) with
      | [ input ], [ decided ] -> Value.equal input decided
      | [ _input ], [] -> true (* nothing decided: termination fails instead *)
      | _ -> true (* mixed inputs: any decision is valid for binary consensus *)
    in
    let rounds = List.map (fun (_, _, d) -> d.Decision.round) decisions in
    let max_round = List.fold_left max 0 rounds in
    {
      terminated;
      agreement;
      validity;
      decisions;
      rounds;
      max_round;
      messages = Metrics.counter result.E.metrics "sent";
      deliveries = result.E.deliveries;
      duration = result.E.duration;
    }

  let run cfg =
    let result = E.run cfg in
    (result, evaluate cfg result)
end
