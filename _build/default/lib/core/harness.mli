open Import

(** Experiment harness for binary consensus protocols.

    Wraps an engine around any protocol that decides a {!Decision.t}
    and evaluates the three properties of the consensus problem over
    the honest nodes of a run:

    - {b Termination}: the run stopped because every honest node
      decided (and each decided exactly once);
    - {b Agreement}: all honest decisions carry the same value;
    - {b Validity}: if all honest inputs were equal, the decision is
      that value (the non-unanimous case is vacuous for binary
      consensus).

    Used by the test suite, the examples and every benchmark table. *)

module type CONSENSUS = sig
  include Protocol.S with type output = Decision.t

  val value_of_input : input -> Value.t
end

type verdict = {
  terminated : bool;
  agreement : bool;
  validity : bool;
  decisions : (Node_id.t * int * Decision.t) list;
      (** honest decisions: node, virtual decision time, decision *)
  rounds : int list;  (** decision round of each deciding honest node *)
  max_round : int;  (** slowest honest decision round (0 when none) *)
  messages : int;  (** point-to-point messages sent in the run *)
  deliveries : int;  (** messages delivered before the run stopped *)
  duration : int;  (** final virtual time *)
}

val ok : verdict -> bool
(** Termination, agreement and validity all hold. *)

val pp_verdict : verdict Fmt.t

module Make (P : CONSENSUS) : sig
  module E : module type of Engine.Make (P)

  val evaluate : E.config -> E.result -> verdict
  (** Judge a finished run against the three properties. *)

  val run : E.config -> E.result * verdict
  (** Execute and judge. *)
end
