open Import

(** MMR binary Byzantine agreement (Mostéfaoui–Moumen–Raynal, 2014) —
    the modern descendant of Bracha's protocol.

    Thirty years after PODC 1984, the signature-free asynchronous BFT
    revival (HoneyBadgerBFT and successors) settled on this round
    structure, which keeps Bracha's resilience [f ≤ ⌊(n-1)/3⌋] but
    replaces the three reliable broadcasts per round with one
    {e binary-value broadcast} and one auxiliary vote — O(n²) messages
    per round instead of O(n³):

    + {b BV-broadcast}: broadcast [BVAL(r, est)]; re-broadcast a value
      heard from [f+1] distinct nodes (so a Byzantine minority cannot
      forge it); a value heard from [2f+1] distinct nodes enters
      [bin_values] — every value in [bin_values] was proposed by an
      honest node, and all honest [bin_values] eventually converge.
    + {b AUX}: once [bin_values] is non-empty, broadcast one of its
      values; await [n-f] AUX messages whose values lie in
      [bin_values]; let [vals] be the set of values among them.
    + If [vals = {v}]: adopt [v], and {b decide} when [v] equals the
      round coin.  Otherwise adopt the coin.

    {b The common coin is a safety requirement here, not an
    optimization.}  A node decides a singleton [v] exactly when the
    round coin equals [v]; the nodes that saw both values adopt that
    same coin, so a decision forces unanimity.  With {e local} coins
    this mechanism collapses and agreement itself is violated — unlike
    Bracha's protocol, whose local-coin variant is safe and merely
    slow.  A [Coin.Local] configuration is accepted only to demonstrate
    this in the E10 ablation.

    With the common coin the expected round count is constant.  Unlike
    Bracha's protocol a decided node cannot quiesce early — all honest
    nodes decide in the same round (the first coin match after
    convergence), so nodes participate until the run ends. *)

type coin_source =
  | Flip of Coin.t  (** local (ablation) or idealized common coin *)
  | Shares of Rabin_coin.t
      (** Rabin's dealer coin: shares are revealed through [Share]
          messages and reconstructed from [f+1] verified shares *)

type input = { value : Value.t; coin : coin_source }

type msg =
  | Bval of { round : int; value : Value.t }
  | Aux of { round : int; value : Value.t }
  | Share of { round : int; share : Shamir.share }
      (** this node's predistributed coin share for the round *)

include
  Protocol.S
    with type input := input
     and type output = Decision.t
     and type msg := msg

val inputs : n:int -> coin:Coin.t -> Value.t array -> input array
(** Pair each node's value with a [Flip] coin. *)

val inputs_with_shared_coin : n:int -> f:int -> seed:int -> Value.t array -> input array
(** Configure the Rabin dealer coin: every node holds its
    predistributed Shamir shares and the coin is agreed by exchanging
    them on the wire — the implemented (rather than idealized) common
    coin. *)

val value_of_input : input -> Value.t

(** Forged messages for Byzantine behaviours. *)
module Fault : sig
  val flip_value : Stream.t -> msg -> msg
  (** Negate the payload bit. *)

  val equivocate_by_half : n:int -> Stream.t -> dst:Node_id.t -> msg -> msg
  (** Opposite bits to the two halves of the network. *)
end
