(** Ready-made broadcast payload types for examples, tests and the
    replicated log. *)

(** Integer payloads (command ids, sequence numbers...). *)
module Int_payload : Value.PAYLOAD with type t = int

(** String payloads (commands, opaque blobs). *)
module String_payload : Value.PAYLOAD with type t = string
