open Import

(** Rabin-style common coin from predistributed Shamir shares.

    Rabin's construction (the one Bracha's line of work points to for
    constant expected rounds): a trusted dealer predistributes, for
    every round, shares of a random secret under an [(f+1)]-of-[n]
    {!Shamir} sharing.  At coin time each node reveals its share; any
    [f+1] verified shares reconstruct the secret, whose low bit is the
    round coin.  Because reconstruction needs [f+1] shares, at least
    one must come from an honest node, so the adversary cannot learn
    the coin before the honest nodes start revealing it.

    The dealer is deterministic in [(seed, round)]: shares are
    recomputed on demand rather than stored, and {!verify} recomputes a
    claimed share the way a VSS commitment check would — a Byzantine
    node can withhold its share but cannot forge another node's.

    {!Mmr_consensus} uses this through actual [Share] wire messages;
    the pure {!Coin.Common} variant remains available as the idealized
    model (both are compared in experiment E11). *)

type t
(** Dealer configuration (immutable). *)

val create : n:int -> f:int -> seed:int -> t
(** [create ~n ~f ~seed] sets up per-round [(f+1)]-of-[n] sharings.
    Requires [0 <= f < n]. *)

val threshold : t -> int
(** [f + 1]: shares needed to reconstruct a round's coin. *)

val share : t -> round:int -> node:Node_id.t -> Shamir.share
(** The share predistributed to [node] for [round]. *)

val verify : t -> round:int -> node:Node_id.t -> Shamir.share -> bool
(** Whether a claimed share is exactly the one the dealer gave that
    node for that round (the VSS commitment check). *)

val reconstruct : t -> Shamir.share list -> Value.t
(** [reconstruct t shares] interpolates the round secret from at least
    [threshold t] verified shares and returns its low bit. *)

val coin_value : t -> round:int -> Value.t
(** The dealer's own view of the round coin — for tests; protocol code
    must go through shares. *)
