(** Shamir secret sharing over {!Gf}.

    [k]-of-[n] threshold sharing: the dealer hides the secret as the
    constant term of a random polynomial of degree [k-1] and hands node
    [i] the evaluation at [x = i+1].  Any [k] shares reconstruct the
    secret by Lagrange interpolation at 0; fewer reveal nothing.  The
    substrate of the Rabin-style common coin ({!Rabin_coin}). *)

type share = { x : int; y : Gf.t }
(** One share: the evaluation point (never 0) and the value. *)

val deal :
  rng:Abc_prng.Stream.t -> secret:Gf.t -> threshold:int -> shares:int -> share list
(** [deal ~rng ~secret ~threshold ~shares] draws a uniformly random
    polynomial with constant term [secret] and returns shares at
    [x = 1 .. shares].  Requires [1 <= threshold <= shares]. *)

val reconstruct : share list -> Gf.t
(** [reconstruct shares] interpolates at 0.  The caller must supply at
    least [threshold] shares with distinct [x]; supplying consistent
    extra shares does not change the result.  Raises [Invalid_argument]
    on an empty list or duplicate evaluation points. *)

val evaluate : coefficients:Gf.t list -> x:int -> Gf.t
(** [evaluate ~coefficients ~x] is the polynomial
    [c₀ + c₁·x + c₂·x² + …] at [x] (Horner).  Exposed so a dealer with
    deterministic coefficients can recompute (verify) any share. *)
