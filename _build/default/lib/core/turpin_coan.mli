open Import

(** The Turpin–Coan reduction: multivalued consensus from one binary
    agreement.

    The classical lightweight alternative to the common-subset
    construction: two voting steps narrow the candidate set to at most
    one value, a single binary agreement ({!Ba_instance}, i.e. Bracha's
    protocol) decides whether that value won, and a recovery rule lets
    nodes that missed the winner learn it.

    + {b Step 1} — broadcast your value; await [n-f]; if [n-2f] of them
      agree on [w], adopt [w] as candidate, else candidate [⊥].  (At
      most one [w] can reach [n-2f] inside any [(n-f)]-subset when
      [n > 3f].)
    + {b Step 2} — broadcast the candidate; await [n-f]; if [n-2f]
      non-[⊥] candidates agree on [w], set [z := w] and vote 1, else
      vote 0.
    + {b Binary BA} on the vote.  Decide [Agreed z] on 1 — nodes
      without [z] wait for [f+1] step-2 messages carrying the same [w]
      (the recovery rule), which is where the asynchronous variant
      needs the stronger bound [n > 4f].  Decide [Fallback] on 0.

    Guarantees ([n > 4f]): all honest nodes output the same outcome; if
    all honest inputs are equal, that value is agreed; any agreed value
    was some node's input.  Compare with {!Multivalued} (ACS-based,
    [n > 3f], never falls back, but [n] binary agreements instead of
    one) — experiment E13. *)

module Make (V : Value.PAYLOAD) : sig
  type input = { value : V.t; coin : Coin.t }

  type outcome =
    | Agreed of V.t  (** consensus on a proposed value *)
    | Fallback
        (** the honest inputs were too split for this reduction; all
            honest nodes fall back together *)

  type output = outcome

  type msg

  include
    Protocol.S
      with type input := input
       and type output := output
       and type msg := msg

  val inputs : n:int -> coin:Coin.t -> V.t array -> input array

  val max_faults : n:int -> int
  (** [⌊(n-1)/4⌋]: the asynchronous variant's resilience. *)
end
