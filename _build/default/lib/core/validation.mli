(** Message validation ("justification").

    The second pillar of Bracha's construction: an honest node accepts
    a step message only once the message could have been produced by an
    honest node following the protocol, judged against the set of
    messages this node has already validated.  Combined with reliable
    broadcast this reduces Byzantine nodes to fail-stop behaviour —
    they can stay silent, but they cannot inject values that no honest
    node could hold.

    Concretely, with quorum [q = n - f] (all counts range over validated
    messages with distinct origins):

    - [(r=1, s=1, v)]: always justified (inputs are arbitrary).
    - [(r>1, s=1, v)]: the sender finished round [r-1]: either [f+1]
      step-3 decide-messages for [v] exist (the adopt rule), or a
      [q]-subset of step-3 messages with at most [f] decide-messages
      exists (the coin rule, any [v]).
    - [(r, s=2, v)]: [v] can be the majority of some [q]-subset of
      validated [(r, 1)] messages: [cnt₁(v) ≥ ⌈(q+1)/2⌉] (for even [q],
      [q/2] — a tie lets the sender keep its previous value), and at
      least [q] step-1 messages are validated.
    - [(r, s=3, d=true, v)]: more than [n/2] validated [(r, 2)]
      messages carry [v] — so only one value per round can ever carry
      the decide flag.
    - [(r, s=3, d=false, v)]: same majority rule as step 2 (a plain
      step-3 value is the sender's step-2 value), plus evidence that
      step 2 completed ([q] validated step-2 messages).

    Messages that are not yet justified are buffered; each newly
    validated message can cascade and justify buffered ones.  A message
    from a Byzantine origin that is never justifiable stays buffered
    forever — exactly the paper's intent.  With [enabled = false]
    (ablation experiment E7) every message is accepted immediately. *)

type t
(** Immutable validation state for one node. *)

val create : n:int -> f:int -> enabled:bool -> t
(** [create ~n ~f ~enabled] accepts everything instantly when
    [enabled] is false. *)

val submit : t -> Consensus_msg.vmsg -> t * Consensus_msg.vmsg list
(** [submit t m] offers a reliably-delivered message to the validator.
    Returns the new state and the messages validated as a consequence
    ([m] itself and/or previously buffered ones), in validation order.
    Duplicate submissions for the same (origin, round, step) slot are
    ignored. *)

val justified : t -> Consensus_msg.vmsg -> bool
(** [justified t m] checks the justification predicate for [m] against
    the currently validated set (exposed for unit tests). *)

val validated_count : t -> round:int -> step:Consensus_msg.Step.t -> int
(** Number of validated messages (distinct origins) for a slot. *)

val buffered_count : t -> int
(** Number of messages waiting for justification. *)
