lib/net/adversary.ml: Abc_prng Abc_sim Array Node_id Printf Queue
