lib/net/adversary.mli: Abc_prng Node_id
