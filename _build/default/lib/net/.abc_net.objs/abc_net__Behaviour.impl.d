lib/net/behaviour.ml: Abc_prng List Node_id Protocol
