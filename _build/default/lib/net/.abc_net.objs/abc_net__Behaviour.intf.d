lib/net/behaviour.mli: Abc_prng Node_id Protocol
