lib/net/engine.ml: Abc_prng Abc_sim Adversary Array Behaviour Fmt Hashtbl List Node_id Protocol Topology
