lib/net/engine.mli: Abc_sim Adversary Behaviour Fmt Node_id Protocol Topology
