lib/net/node_id.ml: Fmt Int List Map Set
