lib/net/node_id.mli: Fmt Map Set
