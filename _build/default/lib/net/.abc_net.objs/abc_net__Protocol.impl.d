lib/net/protocol.ml: Abc_prng Fmt Node_id
