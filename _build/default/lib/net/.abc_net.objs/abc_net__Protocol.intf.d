lib/net/protocol.mli: Abc_prng Fmt Node_id
