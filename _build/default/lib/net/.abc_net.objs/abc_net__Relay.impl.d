lib/net/relay.ml: Fmt List Node_id Protocol Set
