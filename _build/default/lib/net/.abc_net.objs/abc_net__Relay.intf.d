lib/net/relay.mli: Node_id Protocol
