lib/net/sequence_diagram.ml: Abc_sim Buffer Bytes List Printf Scanf String
