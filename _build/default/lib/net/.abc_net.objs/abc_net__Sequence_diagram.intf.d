lib/net/sequence_diagram.mli: Abc_sim
