lib/net/topology.ml: Array Fmt List Node_id Queue
