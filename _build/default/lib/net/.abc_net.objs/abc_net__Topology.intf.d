lib/net/topology.mli: Fmt Node_id
