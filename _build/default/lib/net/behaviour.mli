(** Byzantine fault behaviours.

    A faulty node runs the honest protocol logic underneath, and a
    behaviour corrupts its {e outgoing} traffic.  This covers the
    standard adversary repertoire: crashing, staying silent,
    consistently lying, equivocating (telling different nodes different
    things — the attack reliable broadcast exists to defeat), and
    message spam.  Mutation functions are supplied by the protocol
    layer because only it can forge well-typed messages. *)

type 'msg t =
  | Honest  (** behaves exactly like a correct node *)
  | Silent  (** receives everything, never sends anything *)
  | Crash_after of int
      (** behaves honestly for the first [k] activations (message
          deliveries it reacts to, init included), then goes silent
          forever — a clean fail-stop fault *)
  | Mutate of (Abc_prng.Stream.t -> 'msg -> 'msg)
      (** applies one corruption per outgoing message; every recipient
          of a broadcast sees the same lie, so the fault cannot be
          detected by cross-checking *)
  | Equivocate of (Abc_prng.Stream.t -> dst:Node_id.t -> 'msg -> 'msg)
      (** corrupts each broadcast per recipient: sends conflicting
          messages to different nodes *)
  | Replay of int
      (** sends every outgoing message [1 + k] times: duplication /
          spam pressure on the receivers' deduplication logic *)
  | Corrupt_after of int * 'msg t
      (** adaptive corruption: behaves honestly for the first [k]
          activations, then switches to the given behaviour — models
          an adversary that corrupts a node mid-protocol, which the
          asynchronous model explicitly allows *)

val label : 'msg t -> string
(** Short name for reports ("honest", "silent", "crash", "mutate",
    "equivocate", "replay", "adaptive:<inner>"). *)

val apply :
  'msg t ->
  rng:Abc_prng.Stream.t ->
  n:int ->
  activation:int ->
  'msg Protocol.action list ->
  'msg Protocol.action list
(** [apply b ~rng ~n ~activation actions] transforms the actions
    produced by the honest logic during its [activation]-th activation
    (the initial actions are activation 0).  [n] is the number of nodes
    (needed to expand broadcasts when equivocating). *)
