type t = int

let of_int i =
  assert (i >= 0);
  i

let to_int id = id

let equal = Int.equal

let compare = Int.compare

let pp ppf id = Fmt.pf ppf "n%d" id

let all ~n = List.init n (fun i -> i)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
