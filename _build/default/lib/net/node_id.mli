(** Node identifiers.

    Nodes in a run of [n] processes are identified by the integers
    [0 .. n-1].  The type is kept abstract so that protocol code cannot
    accidentally do arithmetic on identifiers. *)

type t
(** A node identifier. *)

val of_int : int -> t
(** [of_int i] is the identifier of node [i].  Requires [i >= 0]. *)

val to_int : t -> int
(** [to_int id] is the integer value of [id]. *)

val equal : t -> t -> bool
(** Identifier equality. *)

val compare : t -> t -> int
(** Total order on identifiers. *)

val pp : t Fmt.t
(** Prints as ["n<i>"]. *)

val all : n:int -> t list
(** [all ~n] is [[0; ...; n-1]] as identifiers, in order. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
