(** Flood relaying: run a complete-graph protocol on a partial
    topology.

    [Make (P)] wraps protocol [P] so that every logical message is
    flooded hop-by-hop: each node forwards each distinct flood envelope
    to all its neighbours exactly once, and the addressed recipients
    hand the payload to [P] as if it had arrived directly from its
    origin.  On a connected graph of honest relays every message
    eventually reaches everyone, so [P] behaves exactly as on the
    complete graph.

    {b Trust model.}  The envelope's origin field is only as honest as
    the relays: a Byzantine relay can alter payloads or forge origins
    (there are no signatures in the 1984 model, and Dolev's
    disjoint-path verification is out of scope).  Flood relaying is
    therefore sound for {e crash-style} faults, which is what the
    connectivity experiment (E12) uses: with crash faults, agreement
    over flooding requires the survivor graph to stay connected —
    remove up to [f] nodes, so vertex connectivity [>= f+1].
    Byzantine-resilient relaying would need [2f+1] connectivity and
    disjoint-path certification; the test suite demonstrates the
    forgery attack that makes naive flooding unsafe. *)

module Make (P : Protocol.S) : sig
  type msg = {
    origin : Node_id.t;  (** claimed creator of the payload *)
    sequence : int;  (** origin-local dedup counter *)
    target : Node_id.t option;  (** [None] = logical broadcast *)
    inner : P.msg;
  }

  include
    Protocol.S
      with type input = P.input
       and type output = P.output
       and type msg := msg
end
