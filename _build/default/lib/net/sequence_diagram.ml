let lane_width = 5

(* The engine formats deliveries as "nA -> nB : payload". *)
let parse_delivery detail =
  match String.index_opt detail ' ' with
  | None -> None
  | Some _ -> (
    try Scanf.sscanf detail "n%d -> n%d : %[^\255]" (fun a b rest -> Some (a, b, rest))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

let header n =
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer "time  ";
  for i = 0 to n - 1 do
    Buffer.add_string buffer (Printf.sprintf "%-*s" lane_width (Printf.sprintf "n%d" i))
  done;
  Buffer.add_string buffer "\n";
  Buffer.contents buffer

let delivery_line ~n ~time src dst label =
  let lo = min src dst and hi = max src dst in
  let buffer = Buffer.create 80 in
  Buffer.add_string buffer (Printf.sprintf "%04d  " time);
  for i = 0 to n - 1 do
    let cell = Bytes.make lane_width ' ' in
    (* lane marks *)
    if i = src then Bytes.set cell 0 'o';
    if i = dst then Bytes.set cell 0 '*';
    (* the connecting line *)
    if i >= lo && i < hi then
      for k = (if i = lo then 1 else 0) to lane_width - 1 do
        if Bytes.get cell k = ' ' then Bytes.set cell k '-'
      done;
    (* arrowheads: '>' to the right, '<' to the left *)
    if src < dst && i = dst then Bytes.set cell 0 '>';
    if src > dst && i = dst then Bytes.set cell 0 '<';
    if src = dst && i = src then Bytes.set cell 0 '@';
    Buffer.add_bytes buffer cell
  done;
  Buffer.add_string buffer " ";
  Buffer.add_string buffer label;
  Buffer.add_string buffer "\n";
  Buffer.contents buffer

let output_line ~n ~time node label =
  let buffer = Buffer.create 80 in
  Buffer.add_string buffer (Printf.sprintf "%04d  " time);
  for i = 0 to n - 1 do
    let cell = Bytes.make lane_width ' ' in
    if i = node then Bytes.set cell 0 '!';
    Buffer.add_bytes buffer cell
  done;
  Buffer.add_string buffer " output: ";
  Buffer.add_string buffer label;
  Buffer.add_string buffer "\n";
  Buffer.contents buffer

let render_entries entries ~n =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (header n);
  List.iter
    (fun (entry : Abc_sim.Trace.entry) ->
      match entry.Abc_sim.Trace.tag with
      | "deliver" -> (
        match parse_delivery entry.Abc_sim.Trace.detail with
        | Some (src, dst, label) when src < n && dst < n ->
          Buffer.add_string buffer
            (delivery_line ~n ~time:entry.Abc_sim.Trace.time src dst label)
        | Some _ | None -> ())
      | "output" ->
        if entry.Abc_sim.Trace.node >= 0 && entry.Abc_sim.Trace.node < n then
          Buffer.add_string buffer
            (output_line ~n ~time:entry.Abc_sim.Trace.time entry.Abc_sim.Trace.node
               entry.Abc_sim.Trace.detail)
      | _ -> ())
    entries;
  Buffer.contents buffer

let render trace ~n = render_entries (Abc_sim.Trace.to_list trace) ~n

let render_window trace ~n ~from_time ~to_time =
  let entries =
    List.filter
      (fun (e : Abc_sim.Trace.entry) ->
        e.Abc_sim.Trace.time >= from_time && e.Abc_sim.Trace.time <= to_time)
      (Abc_sim.Trace.to_list trace)
  in
  render_entries entries ~n
