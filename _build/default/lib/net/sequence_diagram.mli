(** ASCII message-sequence diagrams from execution traces.

    Turns the engine's {!Abc_sim.Trace} into the classic
    lane-per-node diagram — the fastest way to see {e why} a particular
    seed produced a weird run:

    {v
    time   n0   n1   n2   n3
    0005    o---------->*        echo(1)
    0007         o<----*         ready(1)
    0012         !               output: delivered(1)
    v}

    Deliveries are parsed from the engine's ["deliver"] entries and
    outputs from its ["output"] entries, so any traced run can be
    rendered after the fact. *)

val render : Abc_sim.Trace.t -> n:int -> string
(** [render trace ~n] draws every retained trace entry, oldest first.
    Unparseable entries are skipped.  [n] fixes the number of lanes. *)

val render_window :
  Abc_sim.Trace.t -> n:int -> from_time:int -> to_time:int -> string
(** Restrict the diagram to entries with [from_time <= time <=
    to_time]. *)
