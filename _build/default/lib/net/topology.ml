type t = { n : int; adjacency : bool array array }

let nodes t = t.n

let of_edges ~n edge_list =
  if n <= 0 then invalid_arg "Topology.of_edges: n must be positive";
  let adjacency = Array.make_matrix n n false in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Topology.of_edges: endpoint out of range";
      if u = v then invalid_arg "Topology.of_edges: self-loop";
      adjacency.(u).(v) <- true;
      adjacency.(v).(u) <- true)
    edge_list;
  { n; adjacency }

let complete ~n =
  of_edges ~n
    (List.concat_map
       (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None)
                   (List.init n (fun i -> i)))
       (List.init n (fun i -> i)))

let ring ~n =
  assert (n >= 3);
  of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let star ~n =
  assert (n >= 2);
  of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let circulant ~n ~offsets =
  let edge_list =
    List.concat_map
      (fun d ->
        if d <= 0 || d >= n then invalid_arg "Topology.circulant: bad offset";
        List.init n (fun i -> (i, (i + d) mod n)))
      offsets
  in
  of_edges ~n (List.filter (fun (u, v) -> u <> v) edge_list)

let has_edge t u v = t.adjacency.(Node_id.to_int u).(Node_id.to_int v)

let neighbors t u =
  let u = Node_id.to_int u in
  List.filter_map
    (fun v -> if t.adjacency.(u).(v) then Some (Node_id.of_int v) else None)
    (List.init t.n (fun i -> i))

let degree t u = List.length (neighbors t u)

let edges t =
  List.concat_map
    (fun u ->
      List.filter_map
        (fun v -> if u < v && t.adjacency.(u).(v) then Some (u, v) else None)
        (List.init t.n (fun i -> i)))
    (List.init t.n (fun i -> i))

(* Reachability over the vertices for which [alive] holds. *)
let component_covers t ~alive =
  match List.find_opt alive (List.init t.n (fun i -> i)) with
  | None -> false
  | Some start ->
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    seen.(start) <- true;
    Queue.add start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      for v = 0 to t.n - 1 do
        if t.adjacency.(u).(v) && alive v && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end
      done
    done;
    List.for_all (fun v -> (not (alive v)) || seen.(v)) (List.init t.n (fun i -> i))

let is_connected t = component_covers t ~alive:(fun _ -> true)

let connected_after_removing t removed =
  let removed = List.map Node_id.to_int removed in
  let alive v = not (List.mem v removed) in
  component_covers t ~alive

(* Menger: the maximum number of internally node-disjoint s-t paths
   equals the s-t max-flow in the split graph where every vertex other
   than s and t has capacity 1.  Vertices: v_in = 2v, v_out = 2v+1. *)
let max_disjoint_paths t s target =
  let size = 2 * t.n in
  let capacity = Array.make_matrix size size 0 in
  let infinity_cap = t.n * t.n in
  for v = 0 to t.n - 1 do
    capacity.((2 * v)).((2 * v) + 1) <-
      (if v = s || v = target then infinity_cap else 1)
  done;
  for u = 0 to t.n - 1 do
    for v = 0 to t.n - 1 do
      if t.adjacency.(u).(v) then capacity.((2 * u) + 1).(2 * v) <- infinity_cap
    done
  done;
  let source = (2 * s) + 1 and sink = 2 * target in
  (* Edmonds–Karp *)
  let flow = ref 0 in
  let rec augment () =
    let parent = Array.make size (-1) in
    parent.(source) <- source;
    let queue = Queue.create () in
    Queue.add source queue;
    while (not (Queue.is_empty queue)) && parent.(sink) = -1 do
      let u = Queue.pop queue in
      for v = 0 to size - 1 do
        if parent.(v) = -1 && capacity.(u).(v) > 0 then begin
          parent.(v) <- u;
          Queue.add v queue
        end
      done
    done;
    if parent.(sink) <> -1 then begin
      (* unit bottleneck is enough: internal capacities are 1 *)
      let rec walk v =
        if v <> source then begin
          let u = parent.(v) in
          capacity.(u).(v) <- capacity.(u).(v) - 1;
          capacity.(v).(u) <- capacity.(v).(u) + 1;
          walk u
        end
      in
      walk sink;
      incr flow;
      augment ()
    end
  in
  augment ();
  !flow

let vertex_connectivity t =
  if t.n <= 1 then 0
  else begin
    let non_adjacent_pairs =
      List.concat_map
        (fun u ->
          List.filter_map
            (fun v -> if u < v && not t.adjacency.(u).(v) then Some (u, v) else None)
            (List.init t.n (fun i -> i)))
        (List.init t.n (fun i -> i))
    in
    match non_adjacent_pairs with
    | [] -> t.n - 1 (* complete graph *)
    | pairs ->
      List.fold_left
        (fun acc (u, v) -> min acc (max_disjoint_paths t u v))
        max_int pairs
  end

let pp ppf t =
  Fmt.pf ppf "graph(n=%d, edges=%d, κ=%d)" t.n (List.length (edges t))
    (vertex_connectivity t)
