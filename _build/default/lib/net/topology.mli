(** Network topologies.

    The 1984 model assumes a complete communication graph.  This module
    supplies partial topologies (and the engine enforces them) so the
    library can also explore the {e connectivity} dimension studied by
    later work: how much of the graph must survive for agreement to
    remain possible.  Vertex connectivity is computed exactly (Menger
    via unit-capacity max-flow), so experiments can dial κ and observe
    protocol behaviour on either side of a threshold. *)

type t
(** An undirected graph over nodes [0 .. n-1] (immutable). *)

val nodes : t -> int
(** Number of vertices. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph; self-loops are rejected, and
    duplicate/reversed edges are merged.  Raises [Invalid_argument] on
    out-of-range endpoints. *)

val complete : n:int -> t
(** Every pair connected: the paper's model, κ = n-1. *)

val ring : n:int -> t
(** The cycle; κ = 2 for n ≥ 3. *)

val star : n:int -> t
(** Node 0 as hub; κ = 1. *)

val circulant : n:int -> offsets:int list -> t
(** [circulant ~n ~offsets] connects [i] to [i ± d] (mod n) for each
    offset [d]; with offsets [1..k] (and [2k < n]) this is 2k-connected
    — the connectivity dial used by the experiments. *)

val has_edge : t -> Node_id.t -> Node_id.t -> bool

val neighbors : t -> Node_id.t -> Node_id.t list
(** Sorted neighbour list. *)

val degree : t -> Node_id.t -> int

val edges : t -> (int * int) list
(** Each undirected edge once, [(min, max)], sorted. *)

val is_connected : t -> bool
(** Whether the whole graph is one component. *)

val connected_after_removing : t -> Node_id.t list -> bool
(** Whether the survivors still form one non-empty connected
    component after deleting the given vertices. *)

val vertex_connectivity : t -> int
(** Exact κ(G): the size of the smallest vertex cut ([n-1] for
    complete graphs).  Exponential-free: max-flow per non-adjacent
    pair, fine for the experiment sizes (n ≤ ~30). *)

val pp : t Fmt.t
