lib/prng/stream.ml: Array Int64 Splitmix64 Xoshiro256
