lib/prng/stream.mli:
