(** SplitMix64 pseudo-random number generator.

    A small, fast, well-mixed 64-bit generator (Steele, Lea & Flood,
    OOPSLA 2014).  It is used in this project to seed the main
    {!Xoshiro256} generator and to derive independent child streams,
    because its output function is a strong bit-mixing permutation. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator; equal seeds produce equal
    output sequences. *)

val next : t -> int64
(** [next t] advances [t] and returns the next 64-bit output. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finalizer: a bijective mixing
    of the 64-bit input.  Used for key derivation. *)
