type t = { key : int64; gen : Xoshiro256.t }

let of_key key = { key; gen = Xoshiro256.create key }

let root ~seed = of_key (Splitmix64.mix (Int64.of_int seed))

(* Child keys mix the parent key with the label through the SplitMix64
   finalizer, keyed by an odd constant so that [split (split t a) b]
   and [split (split t b) a] differ. *)
let split t ~label =
  let label64 = Int64.of_int label in
  let mixed =
    Splitmix64.mix
      (Int64.logxor t.key
         (Int64.mul 0xD1B54A32D192ED03L (Int64.add label64 1L)))
  in
  of_key mixed

let key t = t.key

let bits64 t = Xoshiro256.next t.gen

let int t ~bound =
  assert (bound > 0);
  (* Rejection sampling on the top 62 bits keeps the draw unbiased for
     any bound representable as a non-negative OCaml int. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let limit = Int64.sub mask (Int64.rem mask (Int64.of_int bound)) in
  let rec draw () =
    let v = Int64.logand (bits64 t) mask in
    if Int64.compare v limit > 0 then draw ()
    else Int64.to_int (Int64.rem v (Int64.of_int bound))
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let bernoulli t ~p = float t < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t ~bound:(Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t in
  (* [1 - u] avoids log 0 since [float] never returns 1. *)
  -.mean *. log (1. -. u)
