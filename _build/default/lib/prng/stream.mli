(** Splittable random streams.

    Every random decision in the simulator draws from a [Stream.t].  A
    stream can be split into labelled child streams whose outputs are
    statistically independent of the parent and of each other, and —
    crucially — depend only on the root seed and the path of labels,
    not on how many values were drawn before the split.  This gives
    each node, each adversary and each experiment repetition its own
    reproducible source of randomness. *)

type t
(** A mutable stream of pseudo-random values. *)

val root : seed:int -> t
(** [root ~seed] is the stream at the root of the derivation tree. *)

val split : t -> label:int -> t
(** [split t ~label] derives the child stream of [t] named [label].
    Splitting is a pure function of [t]'s derivation key: it does not
    consume randomness from [t], and the same label always yields the
    same child. *)

val key : t -> int64
(** [key t] is the derivation key identifying [t]'s position in the
    derivation tree (for debugging and tracing). *)

val bits64 : t -> int64
(** [bits64 t] draws 64 uniformly distributed bits. *)

val int : t -> bound:int -> int
(** [int t ~bound] draws uniformly from [0 .. bound-1] using rejection
    sampling (no modulo bias).  Requires [bound > 0]. *)

val bool : t -> bool
(** [bool t] draws a fair coin. *)

val float : t -> float
(** [float t] draws uniformly from [[0, 1)] with 53 bits of
    precision. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniform element of [arr].  Requires [arr]
    non-empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t arr] applies a uniform Fisher–Yates shuffle. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from the exponential distribution with
    the given mean; used for randomized message delays. *)
