type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* An all-zero state is the one fixed point of the transition
     function; SplitMix64 cannot produce four zero outputs in a row,
     but assert it anyway. *)
  assert (not (s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L));
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result
