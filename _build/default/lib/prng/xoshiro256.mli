(** Xoshiro256++ pseudo-random number generator.

    The project's workhorse generator (Blackman & Vigna).  256 bits of
    state, period [2^256 - 1], passes BigCrush.  All simulation
    randomness flows through instances of this generator so that every
    experiment is reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] seeds the 256-bit state from [seed] by running
    SplitMix64, per the authors' recommendation.  The state is never
    all-zero. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same
    future outputs as [t]. *)

val next : t -> int64
(** [next t] advances [t] and returns the next 64-bit output. *)
