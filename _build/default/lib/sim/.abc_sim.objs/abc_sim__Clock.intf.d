lib/sim/clock.mli:
