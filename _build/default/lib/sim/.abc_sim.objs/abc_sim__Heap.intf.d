lib/sim/heap.mli:
