lib/sim/histogram.ml: Buffer Hashtbl List Printf String
