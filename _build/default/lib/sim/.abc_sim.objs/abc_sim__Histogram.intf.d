lib/sim/histogram.mli:
