lib/sim/metrics.ml: Fmt Hashtbl List Stdlib String Summary
