lib/sim/metrics.mli: Fmt Summary
