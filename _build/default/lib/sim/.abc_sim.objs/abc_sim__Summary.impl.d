lib/sim/summary.ml: Array Fmt List
