lib/sim/table.ml: Array Buffer Filename List Printf String Unix
