lib/sim/table.mli:
