lib/sim/trace.mli: Fmt Format
