lib/sim/vec.mli:
