(** Virtual clock.

    Simulated time is a non-negative integer of abstract "ticks".  In
    the message-passing engine one tick corresponds to one message
    delivery, which is the natural time unit of an asynchronous system
    (there is no global real-time clock in the model). *)

type t
(** A mutable virtual clock. *)

val create : unit -> t
(** [create ()] is a clock reading 0. *)

val now : t -> int
(** [now t] is the current virtual time. *)

val advance_to : t -> int -> unit
(** [advance_to t time] moves the clock forward to [time].  Raises
    [Invalid_argument] if [time] is in the past. *)

val tick : t -> int
(** [tick t] advances the clock by one and returns the new time. *)
