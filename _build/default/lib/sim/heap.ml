type 'a entry = { priority : int; seq : int; payload : 'a }

type 'a t = {
  mutable entries : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = Array.make 16 None; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

let entry_get h i =
  match h.entries.(i) with
  | Some e -> e
  | None -> assert false

(* [before a b] is true when [a] must come out of the heap before
   [b]. *)
let before a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap h i j =
  let tmp = h.entries.(i) in
  h.entries.(i) <- h.entries.(j);
  h.entries.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (entry_get h i) (entry_get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && before (entry_get h left) (entry_get h !smallest) then
    smallest := left;
  if right < h.size && before (entry_get h right) (entry_get h !smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h =
  let bigger = Array.make (2 * Array.length h.entries) None in
  Array.blit h.entries 0 bigger 0 h.size;
  h.entries <- bigger

let push h ~priority payload =
  if h.size = Array.length h.entries then grow h;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.entries.(h.size) <- Some { priority; seq; payload };
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = entry_get h 0 in
    h.size <- h.size - 1;
    h.entries.(0) <- h.entries.(h.size);
    h.entries.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (top.priority, top.payload)
  end

let peek h =
  if h.size = 0 then None
  else
    let top = entry_get h 0 in
    Some (top.priority, top.payload)

let clear h =
  Array.fill h.entries 0 h.size None;
  h.size <- 0;
  h.next_seq <- 0
