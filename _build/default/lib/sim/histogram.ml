type t = { counts : (int, int ref) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 16; total = 0 }

let add t v =
  (match Hashtbl.find_opt t.counts v with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts v (ref 1));
  t.total <- t.total + 1

let add_list t vs = List.iter (add t) vs

let total t = t.total

let count t v = match Hashtbl.find_opt t.counts v with Some r -> !r | None -> 0

let buckets t =
  if t.total = 0 then []
  else begin
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.counts [] in
    let lo = List.fold_left min (List.hd keys) keys in
    let hi = List.fold_left max (List.hd keys) keys in
    List.init (hi - lo + 1) (fun i ->
        let v = lo + i in
        (v, count t v))
  end

let render ?(width = 40) ?(label = string_of_int) t =
  match buckets t with
  | [] -> "(no data)\n"
  | bs ->
    let peak = List.fold_left (fun acc (_, c) -> max acc c) 1 bs in
    let buffer = Buffer.create 256 in
    List.iter
      (fun (v, c) ->
        let bar = c * width / peak in
        Buffer.add_string buffer
          (Printf.sprintf "%6s %5d %s\n" (label v) c (String.make bar '#')))
      bs;
    Buffer.contents buffer
