(** Integer histograms with ASCII rendering.

    Used by the experiment harness to show full distributions (e.g.
    rounds-to-decision) rather than just summary statistics — the tail
    behaviour is the interesting part of randomized termination. *)

type t
(** A mutable histogram over integer values. *)

val create : unit -> t
(** [create ()] is an empty histogram. *)

val add : t -> int -> unit
(** [add t v] records one observation of [v]. *)

val add_list : t -> int list -> unit
(** Record each value in order. *)

val total : t -> int
(** Number of observations. *)

val count : t -> int -> int
(** [count t v] is the number of observations equal to [v]. *)

val buckets : t -> (int * int) list
(** [(value, count)] pairs for every observed value, ascending, with
    gaps between min and max filled by zero-count buckets. *)

val render : ?width:int -> ?label:(int -> string) -> t -> string
(** [render t] draws one line per bucket: label, count and a bar
    proportional to the count ([width] columns for the largest bucket,
    default 40).  Empty histograms render as ["(no data)\n"]. *)
