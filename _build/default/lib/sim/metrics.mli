(** Named counters and value series for instrumenting simulations.

    A [Metrics.t] is attached to each engine run.  Protocol code and
    the engine bump counters ([incr]) and append observations
    ([observe]); experiment harnesses read them back as totals or
    {!Summary.t} aggregates. *)

type t
(** A mutable metrics registry. *)

val create : unit -> t
(** [create ()] is an empty registry. *)

val incr : t -> string -> unit
(** [incr t name] adds 1 to counter [name], creating it at 0. *)

val add : t -> string -> int -> unit
(** [add t name k] adds [k] to counter [name], creating it at 0. *)

val counter : t -> string -> int
(** [counter t name] is the current value of counter [name] (0 when the
    counter was never touched). *)

val observe : t -> string -> float -> unit
(** [observe t name v] appends observation [v] to series [name]. *)

val series : t -> string -> float list
(** [series t name] is the observations of series [name], in insertion
    order ([[]] when the series was never touched). *)

val summarize : t -> string -> Summary.t option
(** [summarize t name] is the summary of series [name]. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : t Fmt.t
(** Render all counters and series summaries, one per line. *)
