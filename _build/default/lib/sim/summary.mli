(** Summary statistics over samples of measurements.

    Experiments collect one sample per simulated run (rounds to
    decision, messages delivered, ...) and report aggregates through
    this module. *)

type t
(** Immutable summary of a non-empty sample set. *)

val of_list : float list -> t option
(** [of_list samples] summarizes [samples]; [None] when empty. *)

val of_int_list : int list -> t option
(** [of_int_list samples] is [of_list (List.map float_of_int samples)]. *)

val count : t -> int
(** Number of samples. *)

val mean : t -> float
(** Arithmetic mean. *)

val stddev : t -> float
(** Sample standard deviation (n-1 denominator; 0 for one sample). *)

val min_value : t -> float
(** Smallest sample. *)

val max_value : t -> float
(** Largest sample. *)

val percentile : t -> float -> float
(** [percentile t p] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation between order statistics. *)

val median : t -> float
(** [median t] is [percentile t 50.]. *)

val total : t -> float
(** Sum of all samples. *)

val mean_ci95 : t -> float * float
(** [(lo, hi)] of the normal-approximation 95% confidence interval for
    the mean ([mean ± 1.96·stddev/√n]; degenerate for one sample). *)

val pp : t Fmt.t
(** One-line rendering: mean, median, p95, min–max, n. *)
