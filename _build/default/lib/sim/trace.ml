type entry = { time : int; node : int; tag : string; detail : string }

type t = {
  capacity : int;
  buffer : entry option array;
  mutable start : int;
  mutable size : int;
  mutable dropped : int;
}

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  { capacity; buffer = Array.make capacity None; start = 0; size = 0; dropped = 0 }

let record t ~time ~node ~tag detail =
  let entry = { time; node; tag; detail } in
  if t.size = t.capacity then begin
    (* Overwrite the oldest slot. *)
    t.buffer.(t.start) <- Some entry;
    t.start <- (t.start + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.buffer.((t.start + t.size) mod t.capacity) <- Some entry;
    t.size <- t.size + 1
  end

let length t = t.size

let dropped t = t.dropped

let to_list t =
  let rec collect i acc =
    if i < 0 then acc
    else
      match t.buffer.((t.start + i) mod t.capacity) with
      | Some e -> collect (i - 1) (e :: acc)
      | None -> assert false
  in
  collect (t.size - 1) []

let find_all t ~tag = List.filter (fun e -> String.equal e.tag tag) (to_list t)

let pp_entry ppf e =
  Fmt.pf ppf "[t=%06d node=%02d] %-12s %s" e.time e.node e.tag e.detail

let dump ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (to_list t)
