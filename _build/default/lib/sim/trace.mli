(** Execution traces.

    A bounded in-memory log of simulation events, useful for debugging
    protocol runs and for asserting ordering properties in tests.  When
    the capacity is exceeded the oldest entries are discarded, so
    tracing long runs stays cheap. *)

type entry = {
  time : int;  (** virtual time at which the event occurred *)
  node : int;  (** node the event concerns, or [-1] for the engine *)
  tag : string;  (** short machine-readable event kind *)
  detail : string;  (** human-readable description *)
}

type t
(** A mutable trace buffer. *)

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] is an empty trace retaining at most
    [capacity] entries (default 4096). *)

val record : t -> time:int -> node:int -> tag:string -> string -> unit
(** [record t ~time ~node ~tag detail] appends an entry, evicting the
    oldest entry if the buffer is full. *)

val length : t -> int
(** [length t] is the number of retained entries. *)

val dropped : t -> int
(** [dropped t] is the number of entries evicted so far. *)

val to_list : t -> entry list
(** [to_list t] is the retained entries, oldest first. *)

val find_all : t -> tag:string -> entry list
(** [find_all t ~tag] is the retained entries with the given tag,
    oldest first. *)

val pp_entry : entry Fmt.t
(** Pretty-printer for a single entry. *)

val dump : Format.formatter -> t -> unit
(** [dump ppf t] prints all retained entries, one per line. *)
