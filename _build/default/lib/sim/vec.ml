type 'a t = { mutable storage : 'a option array; mutable size : int }

let create () = { storage = Array.make 16 None; size = 0 }

let length v = v.size

let is_empty v = v.size = 0

let grow v =
  let bigger = Array.make (2 * Array.length v.storage) None in
  Array.blit v.storage 0 bigger 0 v.size;
  v.storage <- bigger

let push v x =
  if v.size = Array.length v.storage then grow v;
  v.storage.(v.size) <- Some x;
  v.size <- v.size + 1

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get: index out of bounds";
  match v.storage.(i) with Some x -> x | None -> assert false

let swap_remove v i =
  let x = get v i in
  v.size <- v.size - 1;
  v.storage.(i) <- v.storage.(v.size);
  v.storage.(v.size) <- None;
  x

let iter f v =
  for i = 0 to v.size - 1 do
    f (get v i)
  done

let fold f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let clear v =
  Array.fill v.storage 0 v.size None;
  v.size <- 0
