(** Growable arrays with O(1) swap-removal.

    The engine's pending-message pool: the adversary removes messages
    from arbitrary positions, so order is not preserved — entries carry
    their own sequence numbers where ordering matters. *)

type 'a t
(** A mutable growable array. *)

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val length : 'a t -> int
(** Number of elements. *)

val is_empty : 'a t -> bool
(** [is_empty v] is [length v = 0]. *)

val push : 'a t -> 'a -> unit
(** [push v x] appends [x]. *)

val get : 'a t -> int -> 'a
(** [get v i] is the element at index [i].  Raises [Invalid_argument]
    when out of bounds. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes and returns the element at index [i] by
    moving the last element into its place.  O(1); does not preserve
    order. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f v] applies [f] to each element in storage order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f init v] folds over elements in storage order. *)

val to_list : 'a t -> 'a list
(** Elements in storage order. *)

val clear : 'a t -> unit
(** Remove all elements. *)
