lib/smr/kv_store.ml: Char Int64 List Map Printf String
