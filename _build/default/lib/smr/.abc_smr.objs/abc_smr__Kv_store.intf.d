lib/smr/kv_store.mli:
