lib/smr/replicated_log.ml: Abc Abc_net Array Fmt Int List Map
