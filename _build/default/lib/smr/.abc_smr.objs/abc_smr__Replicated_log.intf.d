lib/smr/replicated_log.mli: Abc Abc_net
