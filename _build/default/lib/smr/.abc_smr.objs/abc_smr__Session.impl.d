lib/smr/session.ml: Kv_store List Printf Set String
