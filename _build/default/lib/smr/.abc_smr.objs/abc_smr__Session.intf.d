lib/smr/session.mli: Kv_store
