module String_map = Map.Make (String)

type t = string String_map.t

type command =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Del of { key : string }
  | Cas of { key : string; expected : string; replacement : string }
  | Noop
  | Invalid of string

type result =
  | Unit
  | Found of string
  | Missing
  | Cas_failed of string option

let parse line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "PUT"; key; value ] -> Put { key; value }
  | [ "GET"; key ] -> Get { key }
  | [ "DEL"; key ] -> Del { key }
  | [ "CAS"; key; expected; replacement ] -> Cas { key; expected; replacement }
  | [ "<noop>" ] | [] -> Noop
  | _ -> Invalid line

let render = function
  | Put { key; value } -> Printf.sprintf "PUT %s %s" key value
  | Get { key } -> Printf.sprintf "GET %s" key
  | Del { key } -> Printf.sprintf "DEL %s" key
  | Cas { key; expected; replacement } ->
    Printf.sprintf "CAS %s %s %s" key expected replacement
  | Noop -> "<noop>"
  | Invalid line -> line

let empty = String_map.empty

let find t key = String_map.find_opt key t

let bindings t = String_map.bindings t

let apply t command =
  match command with
  | Put { key; value } -> (String_map.add key value t, Unit)
  | Get { key } -> (
    match find t key with
    | Some value -> (t, Found value)
    | None -> (t, Missing))
  | Del { key } ->
    if String_map.mem key t then (String_map.remove key t, Unit) else (t, Missing)
  | Cas { key; expected; replacement } -> (
    match find t key with
    | Some value when String.equal value expected ->
      (String_map.add key replacement t, Found value)
    | other -> (t, Cas_failed other))
  | Noop | Invalid _ -> (t, Unit)

let apply_log t lines =
  let t, results =
    List.fold_left
      (fun (t, acc) line ->
        let t, result = apply t (parse line) in
        (t, result :: acc))
      (t, []) lines
  in
  (t, List.rev results)

(* FNV-1a over the canonical binding sequence: cheap, deterministic,
   and adequate as a convergence fingerprint. *)
let digest t =
  let fnv_prime = 0x100000001b3L in
  let hash = ref 0xcbf29ce484222325L in
  let feed_char c =
    hash := Int64.mul (Int64.logxor !hash (Int64.of_int (Char.code c))) fnv_prime
  in
  let feed_string s =
    String.iter feed_char s;
    feed_char '\000'
  in
  List.iter
    (fun (k, v) ->
      feed_string k;
      feed_string v)
    (bindings t);
  Printf.sprintf "%016Lx" !hash
