(** Deterministic key-value state machine.

    The "state machine" half of state machine replication: replicas
    apply the agreed command log to this store, and because application
    is deterministic, identical logs yield identical stores.  The
    {!digest} gives a cheap fingerprint for checking replica
    convergence (and catching divergence in tests).

    Command syntax (whitespace-separated):

    - [PUT key value] — bind [key];
    - [GET key] — read (no state change, result recorded);
    - [DEL key] — unbind;
    - [CAS key old new] — bind to [new] iff currently [old];
    - [<noop>] — the padding command proposed by idle replicas.

    Anything else parses as [Invalid] and applies as a no-op: a
    Byzantine replica must not be able to wedge honest state machines
    with garbage. *)

type t
(** An immutable store. *)

type command =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Del of { key : string }
  | Cas of { key : string; expected : string; replacement : string }
  | Noop
  | Invalid of string  (** unparseable input, kept for auditing *)

type result =
  | Unit  (** state-changing command applied *)
  | Found of string  (** [GET]/[CAS] observed this value *)
  | Missing  (** key was absent *)
  | Cas_failed of string option  (** expectation mismatch; actual value *)

val parse : string -> command
(** [parse line] never raises. *)

val render : command -> string
(** Inverse of {!parse} for well-formed commands. *)

val empty : t
(** The store with no bindings. *)

val find : t -> string -> string option
(** [find t key] is the current binding. *)

val bindings : t -> (string * string) list
(** All bindings, sorted by key. *)

val apply : t -> command -> t * result
(** [apply t c] executes one command. *)

val apply_log : t -> string list -> t * result list
(** [apply_log t lines] parses and applies each line in order,
    returning results in the same order. *)

val digest : t -> string
(** Deterministic fingerprint of the full store contents: equal stores
    have equal digests, and (for the sizes used here) different stores
    practically never collide. *)
