(** Replicated log — state machine replication over asynchronous
    Byzantine consensus.

    The downstream application the 1984 primitives enable: a cluster of
    replicas, each fed commands by its local clients, agrees on a
    single totally-ordered command log despite [f] Byzantine replicas
    and a fully asynchronous network — no leader, no timeouts.

    The log is produced slot by slot.  For slot [k] every replica
    proposes its [k]-th pending command and one {!Abc.Acs} instance
    decides the common subset of proposals for that slot; the slot's
    commands are the subset in node-id order.  Slots pipeline freely
    (a replica joins slot [k]'s agreement as soon as it sees traffic
    for it), but {!output}s commit in slot order.

    Every honest replica emits one [Committed] per slot, in order, with
    identical contents, and finally one terminal [Log_complete] whose
    command sequence is the whole log. *)

module Node_id = Abc_net.Node_id

type command = string
(** An opaque client command. *)

type input = {
  commands : command array;  (** my proposals, one per slot *)
  slots : int;  (** length of the log to build *)
  coin : Abc.Coin.t;  (** coin for the underlying agreements *)
}

type output =
  | Committed of { slot : int; commands : (Node_id.t * command) list }
      (** slot [slot] decided: the agreed (proposer, command) pairs in
          node-id order; emitted in slot order *)
  | Log_complete of command list
      (** all slots decided: the full ordered log (terminal) *)

type msg

include
  Abc_net.Protocol.S
    with type input := input
     and type output := output
     and type msg := msg

val inputs :
  n:int -> slots:int -> coin:Abc.Coin.t -> (int -> int -> command) -> input array
(** [inputs ~n ~slots ~coin command] builds per-replica workloads where
    replica [i]'s proposal for slot [k] is [command i k]. *)

val log_of_outputs : (int * output) list -> command list option
(** The completed log in a replica's output stream, if present. *)
