(** Client sessions: exactly-once command execution.

    In a real replicated service a client retries its request — often
    through a different replica — until it sees a commit.  The same
    logical command can therefore appear in the agreed log more than
    once.  This layer gives commands client-session identities and
    filters re-executions out at apply time, turning the log's
    at-least-once delivery into exactly-once execution (the classic
    RSM session trick).

    A tagged command is [client:request_id:body].  Replicas track, per
    client, which request ids have been applied; a duplicate is skipped
    {e deterministically} — every replica skips the same occurrences,
    so state convergence (same digests) is preserved. *)

type request = { client : string; request_id : int; body : string }

val tag : request -> string
(** Wire form: ["client:request_id:body"].  [client] must not contain
    [':']. *)

val parse : string -> request option
(** Inverse of {!tag}; [None] for untagged (anonymous) commands. *)

type dedup
(** Per-replica record of applied (client, request id) pairs. *)

val empty : dedup

val seen : dedup -> client:string -> request_id:int -> bool

type stats = { applied : int; skipped : int; anonymous : int }

val apply_log :
  Kv_store.t -> dedup -> string list -> Kv_store.t * dedup * stats
(** [apply_log store dedup log] applies each entry in order: tagged
    commands execute at most once per (client, request id), duplicates
    are skipped, untagged commands always execute (counted as
    [anonymous]). *)
