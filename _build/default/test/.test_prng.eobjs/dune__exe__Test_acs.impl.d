test/test_acs.ml: Abc Abc_net Alcotest Array Fmt List QCheck QCheck_alcotest
