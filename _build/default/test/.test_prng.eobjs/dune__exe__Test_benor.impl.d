test/test_benor.ml: Abc Abc_net Alcotest Array Fmt List Printf QCheck QCheck_alcotest
