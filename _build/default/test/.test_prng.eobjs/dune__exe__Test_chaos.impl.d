test/test_chaos.ml: Abc Abc_net Alcotest Array List Printf QCheck QCheck_alcotest
