test/test_check.ml: Abc Abc_check Abc_net Alcotest Array Fmt List
