test/test_components.ml: Abc Abc_net Abc_prng Alcotest Array Fmt List Printf Queue
