test/test_consistent.mli:
