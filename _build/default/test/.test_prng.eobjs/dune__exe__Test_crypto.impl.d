test/test_crypto.ml: Abc Abc_net Abc_prng Alcotest Array Fmt List Printf QCheck QCheck_alcotest
