test/test_harness.ml: Abc Abc_net Alcotest Array Astring Fmt List String
