test/test_mmr.ml: Abc Abc_net Alcotest Array Fmt List Printf QCheck QCheck_alcotest
