test/test_mmr.mli:
