test/test_net.ml: Abc_net Abc_prng Abc_sim Alcotest Array Fmt List Printf QCheck QCheck_alcotest String
