test/test_prng.ml: Abc_prng Alcotest Array Hashtbl Int Int64 Printf QCheck QCheck_alcotest
