test/test_rbc.ml: Abc Abc_net Abc_prng Abc_sim Alcotest Array List Printf QCheck QCheck_alcotest
