test/test_sim.ml: Abc_sim Alcotest Gen List QCheck QCheck_alcotest String
