test/test_smr.ml: Abc Abc_net Abc_smr Alcotest Array Fmt List Option Printf QCheck QCheck_alcotest String
