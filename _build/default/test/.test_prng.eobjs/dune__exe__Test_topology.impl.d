test/test_topology.ml: Abc Abc_net Abc_prng Abc_sim Alcotest Array Fmt List Printf QCheck QCheck_alcotest
