test/test_turpin.ml: Abc Abc_net Alcotest Array Fmt List QCheck QCheck_alcotest
