test/test_turpin.mli:
