test/test_validation.ml: Abc Abc_net Abc_prng Alcotest Array List QCheck QCheck_alcotest
