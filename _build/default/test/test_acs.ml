(* Tests for the Asynchronous Common Subset (multivalued consensus). *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Acs = Abc.Acs.Make (Abc.Payloads.Int_payload)
module E = Abc_net.Engine.Make (Acs)

let node = Node_id.of_int

let run ?faulty ?(adversary = Adversary.uniform) ?(coin = Abc.Coin.local) ~n ~f
    ~seed proposals =
  let inputs = Acs.inputs ~n ~coin proposals in
  E.run (E.config ?faulty ~n ~f ~inputs ~seed ~adversary ())

let subsets result honest =
  List.map
    (fun id ->
      match result.E.outputs.(Node_id.to_int id) with
      | [ (_, Acs.Accepted subset) ] -> subset
      | [] -> Alcotest.fail (Fmt.str "node %a produced no subset" Node_id.pp id)
      | _ -> Alcotest.fail "node produced several subsets")
    honest

let check_terminal result =
  Alcotest.(check string) "all terminal" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.E.stop)

let check_common subsets =
  match subsets with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun s ->
        Alcotest.(check int) "same size" (List.length first) (List.length s);
        List.iter2
          (fun (id1, p1) (id2, p2) ->
            Alcotest.(check bool) "same node" true (Node_id.equal id1 id2);
            Alcotest.(check int) "same payload" p1 p2)
          first s)
      rest

let test_all_honest_full_subset_possible () =
  let result = run ~n:4 ~f:1 ~seed:1 [| 10; 20; 30; 40 |] in
  check_terminal result;
  let subs = subsets result (Node_id.all ~n:4) in
  check_common subs;
  (* At least n - f proposals must be in the subset. *)
  Alcotest.(check bool) "at least n-f accepted" true (List.length (List.hd subs) >= 3)

let test_common_across_seeds_and_adversaries () =
  List.iter
    (fun adversary ->
      List.iter
        (fun seed ->
          let result = run ~adversary ~n:4 ~f:1 ~seed [| 1; 2; 3; 4 |] in
          check_terminal result;
          check_common (subsets result (Node_id.all ~n:4)))
        [ 0; 1; 2 ])
    (Adversary.all_basic ~n:4)

let test_silent_proposer_excluded_or_included_consistently () =
  let faulty = [ (node 3, Behaviour.Silent) ] in
  let result = run ~faulty ~n:4 ~f:1 ~seed:2 [| 10; 20; 30; 40 |] in
  check_terminal result;
  let honest = [ node 0; node 1; node 2 ] in
  let subs = subsets result honest in
  check_common subs;
  let subset = List.hd subs in
  Alcotest.(check bool) "silent node absent" false
    (List.exists (fun (id, _) -> Node_id.equal id (node 3)) subset);
  Alcotest.(check int) "three honest proposals" 3 (List.length subset)

let test_subset_contains_enough_honest () =
  (* n=7, f=2, two byzantine: the subset has ≥ n-f members of which at
     most f are faulty, so ≥ n-2f honest proposals. *)
  let faulty = [ (node 5, Behaviour.Silent); (node 6, Behaviour.Crash_after 1) ] in
  let result = run ~faulty ~n:7 ~f:2 ~seed:3 (Array.init 7 (fun i -> 100 + i)) in
  check_terminal result;
  let honest = List.map node [ 0; 1; 2; 3; 4 ] in
  let subs = subsets result honest in
  check_common subs;
  let honest_in_subset =
    List.filter
      (fun (id, _) -> List.exists (Node_id.equal id) honest)
      (List.hd subs)
  in
  Alcotest.(check bool) "n-2f honest proposals" true (List.length honest_in_subset >= 3)

let test_decide_value_is_min () =
  Alcotest.(check int) "min payload" 7
    (Acs.decide_value (Acs.Accepted [ (node 0, 9); (node 1, 7); (node 2, 8) ]));
  Alcotest.check_raises "empty subset"
    (Invalid_argument "Acs.decide_value: empty common subset") (fun () ->
      ignore (Acs.decide_value (Acs.Accepted [])))

let test_multivalued_consensus () =
  (* decide_value over the common subset = multivalued consensus: all
     honest decide the same proposal value. *)
  let result = run ~n:4 ~f:1 ~seed:4 [| 42; 17; 99; 3 |] in
  check_terminal result;
  let decided =
    List.map
      (fun s -> Acs.decide_value (Acs.Accepted s))
      (subsets result (Node_id.all ~n:4))
  in
  match decided with
  | first :: rest ->
    List.iter (fun v -> Alcotest.(check int) "same decision" first v) rest;
    Alcotest.(check bool) "decided value was proposed" true
      (List.mem first [ 42; 17; 99; 3 ])
  | [] -> Alcotest.fail "no decisions"

module Mv = Abc.Multivalued.Make (Abc.Payloads.Int_payload)
module MvE = Abc_net.Engine.Make (Mv)

let test_multivalued_wrapper () =
  (* The packaged protocol: one terminal Decided per honest node, all
     equal, value proposed by someone. *)
  let inputs = Mv.inputs ~n:4 ~coin:Abc.Coin.local [| 31; 41; 59; 26 |] in
  let result =
    MvE.run (MvE.config ~n:4 ~f:1 ~inputs ~adversary:Adversary.uniform ~seed:5 ())
  in
  Alcotest.(check string) "terminal" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.MvE.stop);
  let decided =
    Array.to_list result.MvE.outputs
    |> List.map (fun outputs ->
           match outputs with
           | [ (_, output) ] -> Mv.decided_value output
           | _ -> Alcotest.fail "expected one decision")
  in
  match decided with
  | first :: rest ->
    List.iter (fun v -> Alcotest.(check int) "same value" first v) rest;
    Alcotest.(check bool) "proposed value" true (List.mem first [ 31; 41; 59; 26 ])
  | [] -> Alcotest.fail "no decisions"

let test_multivalued_with_fault () =
  let inputs = Mv.inputs ~n:4 ~coin:Abc.Coin.local [| 9; 8; 7; 6 |] in
  let faulty = [ (node 0, Behaviour.Silent) ] in
  let result =
    MvE.run (MvE.config ~n:4 ~f:1 ~inputs ~faulty ~adversary:Adversary.uniform ~seed:6 ())
  in
  Alcotest.(check string) "terminal" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.MvE.stop);
  let decided =
    List.filter_map
      (fun i ->
        match result.MvE.outputs.(i) with
        | [ (_, output) ] -> Some (Mv.decided_value output)
        | _ -> None)
      [ 1; 2; 3 ]
  in
  match decided with
  | first :: rest ->
    List.iter (fun v -> Alcotest.(check int) "same value" first v) rest
  | [] -> Alcotest.fail "no decisions"

let test_inputs_arity () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Acs.inputs: proposals length must equal n") (fun () ->
      ignore (Acs.inputs ~n:4 ~coin:Abc.Coin.local [| 1 |]))

let prop_common_subset =
  QCheck.Test.make ~name:"subsets identical across honest nodes" ~count:25
    QCheck.(small_int)
    (fun seed ->
      let result = run ~n:4 ~f:1 ~seed [| 5; 6; 7; 8 |] in
      result.E.stop = Abc_net.Engine.All_terminal
      &&
      let subs = subsets result (Node_id.all ~n:4) in
      match subs with
      | first :: rest -> List.for_all (fun s -> s = first) rest
      | [] -> false)

let prop_faulty_proposer_safe =
  QCheck.Test.make ~name:"byzantine proposer cannot split the subset" ~count:25
    QCheck.(small_int)
    (fun seed ->
      let faulty = [ (node 0, Behaviour.Replay 1) ] in
      let result = run ~faulty ~n:4 ~f:1 ~seed [| 1; 2; 3; 4 |] in
      result.E.stop = Abc_net.Engine.All_terminal
      &&
      let subs = subsets result [ node 1; node 2; node 3 ] in
      match subs with
      | first :: rest -> List.for_all (fun s -> s = first) rest
      | [] -> false)

let () =
  Alcotest.run "acs"
    [
      ( "common subset",
        [
          Alcotest.test_case "all honest" `Quick test_all_honest_full_subset_possible;
          Alcotest.test_case "across seeds and adversaries" `Slow
            test_common_across_seeds_and_adversaries;
          Alcotest.test_case "silent proposer" `Quick
            test_silent_proposer_excluded_or_included_consistently;
          Alcotest.test_case "enough honest proposals" `Quick
            test_subset_contains_enough_honest;
        ] );
      ( "multivalued",
        [
          Alcotest.test_case "decide_value min" `Quick test_decide_value_is_min;
          Alcotest.test_case "multivalued consensus" `Quick test_multivalued_consensus;
          Alcotest.test_case "multivalued wrapper" `Quick test_multivalued_wrapper;
          Alcotest.test_case "multivalued with fault" `Quick test_multivalued_with_fault;
          Alcotest.test_case "inputs arity" `Quick test_inputs_arity;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_common_subset;
          QCheck_alcotest.to_alcotest prop_faulty_proposer_safe;
        ] );
    ]
