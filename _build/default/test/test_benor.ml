(* Tests for the Ben-Or (1983) baseline in both fault modes. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module BO = Abc.Ben_or
module Value = Abc.Value

module H = Abc.Harness.Make (struct
  include BO

  let value_of_input = BO.value_of_input
end)

let node = Node_id.of_int

let run ?faulty ?(adversary = Adversary.uniform) ?(coin = Abc.Coin.local) ~n ~f
    ~mode ~seed values =
  let inputs = BO.inputs ~n ~mode ~coin values in
  snd (H.run (H.E.config ?faulty ~n ~f ~inputs ~seed ~adversary ()))

let unanimous n v = Array.make n v

let mixed n = Array.init n (fun i -> if i mod 2 = 0 then Value.Zero else Value.One)

let check_ok label verdict =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" label (Fmt.str "%a" Abc.Harness.pp_verdict verdict))
    true (Abc.Harness.ok verdict)

let test_mode_bounds () =
  Alcotest.(check int) "byzantine n=6" 1 (BO.Mode.max_faults BO.Mode.Byzantine ~n:6);
  Alcotest.(check int) "byzantine n=11" 2 (BO.Mode.max_faults BO.Mode.Byzantine ~n:11);
  Alcotest.(check int) "byzantine n=16" 3 (BO.Mode.max_faults BO.Mode.Byzantine ~n:16);
  Alcotest.(check int) "crash n=5" 2 (BO.Mode.max_faults BO.Mode.Crash ~n:5);
  Alcotest.(check int) "crash n=7" 3 (BO.Mode.max_faults BO.Mode.Crash ~n:7)

let test_crash_unanimous () =
  List.iter
    (fun v ->
      let verdict = run ~n:5 ~f:2 ~mode:BO.Mode.Crash ~seed:1 (unanimous 5 v) in
      check_ok "crash unanimous" verdict;
      Alcotest.(check int) "round 1" 1 verdict.Abc.Harness.max_round)
    [ Value.Zero; Value.One ]

let test_crash_mixed_many_seeds () =
  List.iter
    (fun seed ->
      check_ok
        (Printf.sprintf "crash mixed seed %d" seed)
        (run ~n:5 ~f:2 ~mode:BO.Mode.Crash ~seed (mixed 5)))
    (List.init 10 (fun i -> i))

let test_crash_with_actual_crashes () =
  List.iter
    (fun seed ->
      let faulty =
        [ (node 0, Behaviour.Crash_after 2); (node 4, Behaviour.Crash_after 5) ]
      in
      check_ok
        (Printf.sprintf "two crashes seed %d" seed)
        (run ~faulty ~n:5 ~f:2 ~mode:BO.Mode.Crash ~seed (mixed 5)))
    (List.init 10 (fun i -> i))

let test_byzantine_unanimous () =
  let verdict = run ~n:6 ~f:1 ~mode:BO.Mode.Byzantine ~seed:2 (unanimous 6 Value.One) in
  check_ok "byzantine unanimous" verdict;
  Alcotest.(check int) "round 1" 1 verdict.Abc.Harness.max_round

let test_byzantine_tolerates_designed_faults () =
  List.iter
    (fun behaviour ->
      List.iter
        (fun seed ->
          let verdict =
            run
              ~faulty:[ (node 5, behaviour) ]
              ~n:6 ~f:1 ~mode:BO.Mode.Byzantine ~seed (unanimous 6 Value.Zero)
          in
          check_ok (Printf.sprintf "byzantine fault seed %d" seed) verdict;
          match verdict.Abc.Harness.decisions with
          | (_, _, d) :: _ ->
            Alcotest.(check bool) "validity held" true
              (Value.equal d.Abc.Decision.value Value.Zero)
          | [] -> Alcotest.fail "no decisions")
        [ 0; 1; 2 ])
    [
      Behaviour.Silent;
      Behaviour.Mutate BO.Fault.flip_value;
      Behaviour.Equivocate (BO.Fault.equivocate_by_half ~n:6);
    ]

let test_byzantine_all_adversaries () =
  List.iter
    (fun adversary ->
      check_ok adversary.Adversary.name
        (run ~adversary ~n:6 ~f:1 ~mode:BO.Mode.Byzantine ~seed:3 (mixed 6)))
    (Adversary.all_basic ~n:6)

let test_common_coin_helps () =
  (* Same mixed-input setup: the common coin must also terminate (and
     it does so in few rounds). *)
  List.iter
    (fun seed ->
      let verdict =
        run ~coin:(Abc.Coin.common ~seed:5) ~n:6 ~f:1 ~mode:BO.Mode.Byzantine ~seed
          (mixed 6)
      in
      check_ok (Printf.sprintf "common coin seed %d" seed) verdict)
    (List.init 5 (fun i -> i))

let test_bracha_beats_benor_resilience () =
  (* The comparison at the heart of E2: at n=7, f=2, Bracha is designed
     to work (7 > 3*2) while Ben-Or's design bound (7 > 5*2) is
     violated.  We check the *positive* side for Ben-Or at its own
     bound instead of asserting a failure: n=11 tolerates f=2. *)
  List.iter
    (fun seed ->
      check_ok
        (Printf.sprintf "ben-or at design bound seed %d" seed)
        (run ~n:11 ~f:2 ~mode:BO.Mode.Byzantine ~seed (mixed 11)))
    [ 0; 1 ]

let test_inputs_arity () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Ben_or.inputs: values length must equal n") (fun () ->
      ignore (BO.inputs ~n:4 ~mode:BO.Mode.Crash ~coin:Abc.Coin.local [| Value.One |]))

let test_pp_msg () =
  let pp m = Fmt.str "%a" BO.pp_msg m in
  Alcotest.(check string) "report" "report(r1, 1)"
    (pp (BO.Report { round = 1; value = Value.One }));
  Alcotest.(check string) "proposal" "proposal(r2, 0)"
    (pp (BO.Proposal { round = 2; value = Some Value.Zero }));
  Alcotest.(check string) "question" "proposal(r3, ?)"
    (pp (BO.Proposal { round = 3; value = None }))

let prop_crash_mode_ok =
  QCheck.Test.make ~name:"crash mode ok across seeds and crash points" ~count:50
    QCheck.(pair small_int (int_range 0 10))
    (fun (seed, crash_point) ->
      let faulty = [ (node 1, Behaviour.Crash_after crash_point) ] in
      Abc.Harness.ok (run ~faulty ~n:5 ~f:2 ~mode:BO.Mode.Crash ~seed (mixed 5)))

let prop_byzantine_mode_ok =
  QCheck.Test.make ~name:"byzantine mode ok across seeds" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let faulty = [ (node 0, Behaviour.Mutate BO.Fault.flip_value) ] in
      Abc.Harness.ok (run ~faulty ~n:6 ~f:1 ~mode:BO.Mode.Byzantine ~seed (mixed 6)))

let () =
  Alcotest.run "ben_or"
    [
      ( "modes",
        [
          Alcotest.test_case "fault bounds" `Quick test_mode_bounds;
          Alcotest.test_case "pp_msg" `Quick test_pp_msg;
          Alcotest.test_case "inputs arity" `Quick test_inputs_arity;
        ] );
      ( "crash",
        [
          Alcotest.test_case "unanimous" `Quick test_crash_unanimous;
          Alcotest.test_case "mixed, many seeds" `Quick test_crash_mixed_many_seeds;
          Alcotest.test_case "actual crashes" `Quick test_crash_with_actual_crashes;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "unanimous" `Quick test_byzantine_unanimous;
          Alcotest.test_case "designed faults" `Quick
            test_byzantine_tolerates_designed_faults;
          Alcotest.test_case "all adversaries" `Quick test_byzantine_all_adversaries;
          Alcotest.test_case "common coin" `Quick test_common_coin_helps;
          Alcotest.test_case "design bound n=11 f=2" `Slow
            test_bracha_beats_benor_resilience;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_crash_mode_ok;
          QCheck_alcotest.to_alcotest prop_byzantine_mode_ok;
        ] );
    ]
