(* Unit tests for the smaller core components: values, coins, the
   consensus message vocabulary, the RBC multiplexer, BA instances and
   payloads. *)

module Node_id = Abc_net.Node_id
module Value = Abc.Value
module Coin = Abc.Coin
module M = Abc.Consensus_msg
module Mux = Abc.Rbc_mux
module Ba = Abc.Ba_instance

let node = Node_id.of_int

let rng ?(seed = 1) () = Abc_prng.Stream.root ~seed

(* ---- Value ---- *)

let test_value_basics () =
  Alcotest.(check int) "zero" 0 (Value.to_int Value.zero);
  Alcotest.(check int) "one" 1 (Value.to_int Value.one);
  Alcotest.(check bool) "negate zero" true (Value.equal (Value.negate Value.Zero) Value.One);
  Alcotest.(check bool) "negate one" true (Value.equal (Value.negate Value.One) Value.Zero);
  Alcotest.(check bool) "of_bool" true (Value.equal (Value.of_bool true) Value.One);
  Alcotest.(check bool) "of_int 7" true (Value.equal (Value.of_int 7) Value.One);
  Alcotest.(check bool) "to_bool" false (Value.to_bool Value.Zero);
  Alcotest.(check int) "compare" (-1) (Value.compare Value.Zero Value.One);
  Alcotest.(check string) "pp" "1" (Fmt.str "%a" Value.pp Value.One)

(* ---- Coin ---- *)

let test_local_coin_uses_rng () =
  (* Same stream, same draws. *)
  let a = rng () and b = rng () in
  for round = 1 to 50 do
    Alcotest.(check bool) "deterministic per stream" true
      (Value.equal
         (Coin.flip Coin.local ~rng:a ~round)
         (Coin.flip Coin.local ~rng:b ~round))
  done

let test_local_coin_roughly_fair () =
  let s = rng ~seed:3 () in
  let ones = ref 0 in
  for round = 1 to 10_000 do
    if Value.equal (Coin.flip Coin.local ~rng:s ~round) Value.One then incr ones
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fair (got %d/10000)" !ones)
    true
    (!ones > 4800 && !ones < 5200)

let test_common_coin_identical_across_nodes () =
  let coin = Coin.common ~seed:9 in
  for round = 1 to 100 do
    let a = Coin.flip coin ~rng:(rng ~seed:1 ()) ~round in
    let b = Coin.flip coin ~rng:(rng ~seed:2 ()) ~round in
    Alcotest.(check bool) "same bit at every node" true (Value.equal a b)
  done

let test_common_coin_varies_with_round () =
  let coin = Coin.common ~seed:9 in
  let bits =
    List.init 64 (fun round -> Value.to_int (Coin.flip coin ~rng:(rng ()) ~round))
  in
  let ones = List.fold_left ( + ) 0 bits in
  Alcotest.(check bool)
    (Printf.sprintf "not constant (%d ones in 64)" ones)
    true
    (ones > 16 && ones < 48)

let test_common_coin_varies_with_seed () =
  let flips seed =
    List.init 64 (fun round ->
        Value.to_int (Coin.flip (Coin.common ~seed) ~rng:(rng ()) ~round))
  in
  Alcotest.(check bool) "seed changes sequence" false (flips 1 = flips 2)

let test_coin_labels () =
  Alcotest.(check string) "local" "local" (Coin.label Coin.local);
  Alcotest.(check string) "common" "common" (Coin.label (Coin.common ~seed:1))

(* ---- Consensus_msg ---- *)

let test_step_order () =
  Alcotest.(check int) "s1" 1 (M.Step.to_int M.Step.S1);
  Alcotest.(check bool) "s1 < s3" true (M.Step.compare M.Step.S1 M.Step.S3 < 0);
  Alcotest.(check bool) "equal" true (M.Step.equal M.Step.S2 M.Step.S2)

let test_key_ordering_and_pp () =
  let k1 = { M.Key.origin = node 0; round = 1; step = M.Step.S1 } in
  let k2 = { M.Key.origin = node 0; round = 2; step = M.Step.S1 } in
  let k3 = { M.Key.origin = node 1; round = 1; step = M.Step.S1 } in
  Alcotest.(check bool) "round orders" true (M.Key.compare k1 k2 < 0);
  Alcotest.(check bool) "origin orders first" true (M.Key.compare k2 k3 < 0);
  Alcotest.(check bool) "equal" true (M.Key.equal k1 k1);
  Alcotest.(check string) "pp" "n0/r1/s1" (Fmt.str "%a" M.Key.pp k1)

let test_vmsg_roundtrip () =
  let key = { M.Key.origin = node 3; round = 2; step = M.Step.S3 } in
  let payload = { M.Payload.value = Value.One; decide = true } in
  let v = M.vmsg_of_delivery key payload in
  Alcotest.(check bool) "key roundtrip" true (M.Key.equal key (M.key_of_vmsg v));
  Alcotest.(check bool) "payload roundtrip" true
    (M.Payload.equal payload (M.payload_of_vmsg v));
  Alcotest.(check string) "pp" "n3/r2/s3=d:1" (Fmt.str "%a" M.pp_vmsg v)

let test_payload_compare () =
  let p1 = { M.Payload.value = Value.Zero; decide = false } in
  let p2 = { M.Payload.value = Value.Zero; decide = true } in
  let p3 = { M.Payload.value = Value.One; decide = false } in
  Alcotest.(check bool) "decide orders" true (M.Payload.compare p1 p2 < 0);
  Alcotest.(check bool) "value orders first" true (M.Payload.compare p2 p3 < 0)

(* ---- Rbc_mux ---- *)

let key ?(origin = 0) ?(round = 1) ?(step = M.Step.S1) () =
  { M.Key.origin = node origin; round; step }

let payload ?(value = Value.One) ?(decide = false) () = { M.Payload.value; decide }

let test_mux_routes_to_instances () =
  let mux = Mux.create ~n:4 ~f:1 in
  let wire = Mux.broadcast_own (key ()) (payload ()) in
  let mux, out, delivery = Mux.handle mux ~src:(node 0) wire in
  Alcotest.(check int) "one instance" 1 (Mux.instances mux);
  Alcotest.(check int) "echo emitted" 1 (List.length out);
  Alcotest.(check bool) "echo in same instance" true
    (M.Key.equal (List.hd out).Mux.key (key ()));
  Alcotest.(check bool) "no delivery yet" true (delivery = None)

let test_mux_separate_instances () =
  let mux = Mux.create ~n:4 ~f:1 in
  let w1 = Mux.broadcast_own (key ~origin:0 ()) (payload ()) in
  let w2 = Mux.broadcast_own (key ~origin:1 ()) (payload ()) in
  let mux, _, _ = Mux.handle mux ~src:(node 0) w1 in
  let mux, _, _ = Mux.handle mux ~src:(node 1) w2 in
  Alcotest.(check int) "two instances" 2 (Mux.instances mux)

let test_mux_delivery () =
  let mux = Mux.create ~n:4 ~f:1 in
  let k = key () in
  let ready src mux =
    let mux, _, d = Mux.handle mux ~src { Mux.key = k; event = Mux.Rbc.Ready (payload ()) } in
    (mux, d)
  in
  let mux, d1 = ready (node 0) mux in
  let mux, d2 = ready (node 1) mux in
  let _, d3 = ready (node 2) mux in
  Alcotest.(check bool) "no early delivery" true (d1 = None && d2 = None);
  match d3 with
  | Some (dk, dp) ->
    Alcotest.(check bool) "delivered key" true (M.Key.equal dk k);
    Alcotest.(check bool) "delivered payload" true (M.Payload.equal dp (payload ()))
  | None -> Alcotest.fail "expected delivery at 2f+1 readies"

let test_mux_initial_from_wrong_origin_ignored () =
  let mux = Mux.create ~n:4 ~f:1 in
  (* node 2 sends an Initial for node 0's instance: dropped by the
     instance's sender check. *)
  let wire = { Mux.key = key ~origin:0 (); event = Mux.Rbc.Initial (payload ()) } in
  let _, out, delivery = Mux.handle mux ~src:(node 2) wire in
  Alcotest.(check int) "no echo" 0 (List.length out);
  Alcotest.(check bool) "no delivery" true (delivery = None)

(* ---- Ba_instance ---- *)

let drive_ba_network ?(n = 4) ?(f = 1) ~seed inputs =
  (* A miniature synchronous-ish executor for BA instances alone:
     deliver wire messages FIFO among n nodes until quiescent. *)
  let rng = Abc_prng.Stream.root ~seed in
  let bas =
    Array.init n (fun i ->
        Ba.create ~n ~f ~me:(node i) ~coin:Abc.Coin.local ~validation:true)
  in
  let queue = Queue.create () in
  let decisions = Array.make n None in
  let broadcast src wires =
    List.iter
      (fun w -> List.iter (fun dst -> Queue.add (src, dst, w) queue) (List.init n (fun d -> d)))
      wires
  in
  Array.iteri
    (fun i input ->
      let ba, wires, events = Ba.start bas.(i) ~rng ~input in
      bas.(i) <- ba;
      List.iter (fun (Ba.Decided d) -> decisions.(i) <- Some d) events;
      broadcast i wires)
    inputs;
  let steps = ref 0 in
  while (not (Queue.is_empty queue)) && !steps < 200_000 do
    incr steps;
    let src, dst, wire = Queue.pop queue in
    let ba, wires, events = Ba.on_wire bas.(dst) ~rng ~src:(node src) wire in
    bas.(dst) <- ba;
    List.iter (fun (Ba.Decided d) -> decisions.(dst) <- Some d) events;
    broadcast dst wires
  done;
  (bas, decisions)

let test_ba_unanimous () =
  let _, decisions = drive_ba_network ~seed:1 (Array.make 4 Value.One) in
  Array.iter
    (fun d ->
      match d with
      | Some d ->
        Alcotest.(check bool) "decided One" true (Value.equal d.Abc.Decision.value Value.One)
      | None -> Alcotest.fail "undecided")
    decisions

let test_ba_mixed_agreement () =
  let inputs = [| Value.Zero; Value.One; Value.Zero; Value.One |] in
  let _, decisions = drive_ba_network ~seed:2 inputs in
  let values =
    Array.to_list decisions
    |> List.map (function
         | Some d -> d.Abc.Decision.value
         | None -> Alcotest.fail "undecided")
  in
  match values with
  | first :: rest ->
    List.iter (fun v -> Alcotest.(check bool) "agreement" true (Value.equal first v)) rest
  | [] -> ()

let test_ba_buffers_before_start () =
  (* Node 3 starts late: wire traffic arriving before its start must be
     buffered and replayed. *)
  let n = 4 and f = 1 in
  let rngs = Abc_prng.Stream.root ~seed:3 in
  let bas =
    Array.init n (fun i ->
        Ba.create ~n ~f ~me:(node i) ~coin:Abc.Coin.local ~validation:true)
  in
  (* starts for 0..2 only *)
  let queue = Queue.create () in
  let broadcast src wires =
    List.iter
      (fun w -> List.iter (fun dst -> Queue.add (src, dst, w) queue) (List.init n (fun d -> d)))
      wires
  in
  for i = 0 to 2 do
    let ba, wires, _ = Ba.start bas.(i) ~rng:rngs ~input:Value.One in
    bas.(i) <- ba;
    broadcast i wires
  done;
  (* run some deliveries; node 3 receives but never sends (no input) *)
  for _ = 1 to 50 do
    if not (Queue.is_empty queue) then begin
      let src, dst, wire = Queue.pop queue in
      let ba, wires, _ = Ba.on_wire bas.(dst) ~rng:rngs ~src:(node src) wire in
      bas.(dst) <- ba;
      broadcast dst wires
    end
  done;
  Alcotest.(check bool) "node 3 not started" false (Ba.started bas.(3));
  let ba, wires, _ = Ba.start bas.(3) ~rng:rngs ~input:Value.One in
  Alcotest.(check bool) "start emits broadcasts" true (List.length wires >= 1);
  Alcotest.(check bool) "now started" true (Ba.started ba)

let test_ba_start_idempotent () =
  let ba = Ba.create ~n:4 ~f:1 ~me:(node 0) ~coin:Abc.Coin.local ~validation:true in
  let ba, wires1, _ = Ba.start ba ~rng:(rng ()) ~input:Value.One in
  let _, wires2, _ = Ba.start ba ~rng:(rng ()) ~input:Value.Zero in
  Alcotest.(check bool) "first start broadcasts" true (List.length wires1 > 0);
  Alcotest.(check int) "second start is a no-op" 0 (List.length wires2)

(* ---- Payloads ---- *)

let test_payloads () =
  Alcotest.(check bool) "int equal" true (Abc.Payloads.Int_payload.equal 3 3);
  Alcotest.(check bool) "int compare" true (Abc.Payloads.Int_payload.compare 1 2 < 0);
  Alcotest.(check string) "int pp" "42" (Fmt.str "%a" Abc.Payloads.Int_payload.pp 42);
  Alcotest.(check string) "string pp" "hi"
    (Fmt.str "%a" Abc.Payloads.String_payload.pp "hi");
  Alcotest.(check string) "labels" "int" Abc.Payloads.Int_payload.label

(* ---- Decision ---- *)

let test_decision () =
  let d1 = { Abc.Decision.value = Value.One; round = 3 } in
  let d2 = { Abc.Decision.value = Value.One; round = 3 } in
  let d3 = { Abc.Decision.value = Value.Zero; round = 3 } in
  Alcotest.(check bool) "equal" true (Abc.Decision.equal d1 d2);
  Alcotest.(check bool) "not equal" false (Abc.Decision.equal d1 d3);
  Alcotest.(check string) "pp" "decide(1, round 3)" (Fmt.str "%a" Abc.Decision.pp d1)

let () =
  Alcotest.run "components"
    [
      ("value", [ Alcotest.test_case "basics" `Quick test_value_basics ]);
      ( "coin",
        [
          Alcotest.test_case "local uses rng" `Quick test_local_coin_uses_rng;
          Alcotest.test_case "local fair" `Quick test_local_coin_roughly_fair;
          Alcotest.test_case "common identical across nodes" `Quick
            test_common_coin_identical_across_nodes;
          Alcotest.test_case "common varies with round" `Quick
            test_common_coin_varies_with_round;
          Alcotest.test_case "common varies with seed" `Quick
            test_common_coin_varies_with_seed;
          Alcotest.test_case "labels" `Quick test_coin_labels;
        ] );
      ( "consensus_msg",
        [
          Alcotest.test_case "step order" `Quick test_step_order;
          Alcotest.test_case "key ordering and pp" `Quick test_key_ordering_and_pp;
          Alcotest.test_case "vmsg roundtrip" `Quick test_vmsg_roundtrip;
          Alcotest.test_case "payload compare" `Quick test_payload_compare;
        ] );
      ( "rbc_mux",
        [
          Alcotest.test_case "routes to instances" `Quick test_mux_routes_to_instances;
          Alcotest.test_case "separate instances" `Quick test_mux_separate_instances;
          Alcotest.test_case "delivery" `Quick test_mux_delivery;
          Alcotest.test_case "wrong-origin initial ignored" `Quick
            test_mux_initial_from_wrong_origin_ignored;
        ] );
      ( "ba_instance",
        [
          Alcotest.test_case "unanimous" `Quick test_ba_unanimous;
          Alcotest.test_case "mixed agreement" `Quick test_ba_mixed_agreement;
          Alcotest.test_case "buffers before start" `Quick test_ba_buffers_before_start;
          Alcotest.test_case "start idempotent" `Quick test_ba_start_idempotent;
        ] );
      ("payloads", [ Alcotest.test_case "basics" `Quick test_payloads ]);
      ("decision", [ Alcotest.test_case "basics" `Quick test_decision ]);
    ]
