(* End-to-end tests for Bracha's randomized consensus: the paper's
   agreement/validity/termination theorems exercised under faults and
   adversarial schedules, plus the pure Consensus_core machine. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module B = Abc.Bracha_consensus
module Value = Abc.Value
module Core = Abc.Consensus_core
module M = Abc.Consensus_msg

module H = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

let node = Node_id.of_int

let run ?faulty ?(adversary = Adversary.uniform) ?(options = B.Options.default)
    ?(n = 4) ?(f = 1) ~seed values =
  let inputs = B.inputs ~n ~options values in
  snd (H.run (H.E.config ?faulty ~n ~f ~inputs ~seed ~adversary ()))

let unanimous n v = Array.make n v

let mixed n = Array.init n (fun i -> if i mod 2 = 0 then Value.Zero else Value.One)

let check_ok label verdict =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" label (Fmt.str "%a" Abc.Harness.pp_verdict verdict))
    true (Abc.Harness.ok verdict)

(* ---- Pure core ---- *)

let rng () = Abc_prng.Stream.root ~seed:42

let vmsg ?(decide = false) ~origin ~round ~step value =
  { M.origin = node origin; round; step; value; decide }

let test_core_initial_broadcast () =
  let _, effects =
    Core.create ~n:4 ~f:1 ~me:(node 0) ~coin:Abc.Coin.local ~input:Value.One
  in
  match effects with
  | [ Core.Broadcast_step m ] ->
    Alcotest.(check int) "round 1" 1 m.M.round;
    Alcotest.(check bool) "step 1" true (M.Step.equal m.M.step M.Step.S1);
    Alcotest.(check bool) "input value" true (Value.equal m.M.value Value.One)
  | _ -> Alcotest.fail "expected exactly the step-1 broadcast"

let feed core msgs =
  List.fold_left
    (fun (core, acc) m ->
      let core, effects = Core.on_validated core ~rng:(rng ()) m in
      (core, acc @ effects))
    (core, []) msgs

let test_core_unanimous_decides_round_one () =
  let core, _ =
    Core.create ~n:4 ~f:1 ~me:(node 0) ~coin:Abc.Coin.local ~input:Value.One
  in
  let step s = List.map (fun o -> vmsg ~origin:o ~round:1 ~step:s Value.One) [ 0; 1; 2 ] in
  let core, _ = feed core (step M.Step.S1) in
  let core, _ = feed core (step M.Step.S2) in
  let core, effects =
    feed core
      (List.map
         (fun o -> vmsg ~decide:true ~origin:o ~round:1 ~step:M.Step.S3 Value.One)
         [ 0; 1; 2 ])
  in
  let decided =
    List.exists (function Core.Decide _ -> true | Core.Broadcast_step _ -> false) effects
  in
  Alcotest.(check bool) "decided" true decided;
  match Core.decided core with
  | Some d ->
    Alcotest.(check bool) "value One" true (Value.equal d.Abc.Decision.value Value.One);
    Alcotest.(check int) "round 1" 1 d.Abc.Decision.round
  | None -> Alcotest.fail "no decision recorded"

let test_core_majority_adoption () =
  (* Step-1 quorum 2:1 for Zero: the node must adopt Zero in its step-2
     broadcast even though it started with One. *)
  let core, _ =
    Core.create ~n:4 ~f:1 ~me:(node 0) ~coin:Abc.Coin.local ~input:Value.One
  in
  let _, effects =
    feed core
      [
        vmsg ~origin:0 ~round:1 ~step:M.Step.S1 Value.One;
        vmsg ~origin:1 ~round:1 ~step:M.Step.S1 Value.Zero;
        vmsg ~origin:2 ~round:1 ~step:M.Step.S1 Value.Zero;
      ]
  in
  match effects with
  | [ Core.Broadcast_step m ] ->
    Alcotest.(check bool) "adopted majority" true (Value.equal m.M.value Value.Zero);
    Alcotest.(check bool) "step 2" true (M.Step.equal m.M.step M.Step.S2)
  | _ -> Alcotest.fail "expected exactly the step-2 broadcast"

let test_core_adopt_at_f_plus_one_decides_next_round () =
  (* f+1 decide-messages adopt but do not decide. *)
  let core, _ =
    Core.create ~n:4 ~f:1 ~me:(node 0) ~coin:Abc.Coin.local ~input:Value.Zero
  in
  let core, _ =
    feed core (List.map (fun o -> vmsg ~origin:o ~round:1 ~step:M.Step.S1 Value.One) [ 0; 1; 2 ])
  in
  let core, _ =
    feed core (List.map (fun o -> vmsg ~origin:o ~round:1 ~step:M.Step.S2 Value.One) [ 0; 1; 2 ])
  in
  let core, _ =
    feed core
      [
        vmsg ~decide:true ~origin:0 ~round:1 ~step:M.Step.S3 Value.One;
        vmsg ~decide:true ~origin:1 ~round:1 ~step:M.Step.S3 Value.One;
        vmsg ~origin:2 ~round:1 ~step:M.Step.S3 Value.One;
      ]
  in
  Alcotest.(check bool) "not decided yet" true (Core.decided core = None);
  Alcotest.(check int) "moved to round 2" 2 (Core.round core);
  Alcotest.(check bool) "adopted One" true (Value.equal (Core.current_value core) Value.One)

let test_core_quiesces_after_decision () =
  (* Drive a decided core two rounds further: it must stop emitting. *)
  let core, _ =
    Core.create ~n:4 ~f:1 ~me:(node 0) ~coin:Abc.Coin.local ~input:Value.One
  in
  let full_round core r =
    let core, effects1 =
      feed core (List.map (fun o -> vmsg ~origin:o ~round:r ~step:M.Step.S1 Value.One) [ 0; 1; 2 ])
    in
    let core, effects2 =
      feed core (List.map (fun o -> vmsg ~origin:o ~round:r ~step:M.Step.S2 Value.One) [ 0; 1; 2 ])
    in
    let core, effects3 =
      feed core
        (List.map
           (fun o -> vmsg ~decide:true ~origin:o ~round:r ~step:M.Step.S3 Value.One)
           [ 0; 1; 2 ])
    in
    (core, effects1 @ effects2 @ effects3)
  in
  let core, _ = full_round core 1 in
  Alcotest.(check bool) "decided in round 1" true (Core.decided core <> None);
  let core, _ = full_round core 2 in
  let core, _ = full_round core 3 in
  let _, effects = full_round core 4 in
  Alcotest.(check int) "quiesced: no further effects" 0 (List.length effects)

(* ---- End-to-end: the three theorems ---- *)

let test_unanimous_decides_input_round_one () =
  List.iter
    (fun v ->
      let verdict = run ~seed:1 (unanimous 4 v) in
      check_ok "unanimous" verdict;
      Alcotest.(check int) "round 1" 1 verdict.Abc.Harness.max_round;
      match verdict.Abc.Harness.decisions with
      | (_, _, d) :: _ ->
        Alcotest.(check bool) "validity" true (Value.equal d.Abc.Decision.value v)
      | [] -> Alcotest.fail "no decisions")
    [ Value.Zero; Value.One ]

let test_mixed_inputs_all_adversaries () =
  List.iter
    (fun adversary ->
      List.iter
        (fun seed ->
          let verdict = run ~n:7 ~f:2 ~adversary ~seed (mixed 7) in
          check_ok (Printf.sprintf "%s seed %d" adversary.Adversary.name seed) verdict)
        [ 0; 1; 2; 3; 4 ])
    (Adversary.all_basic ~n:7)

let test_max_resilience_n4 () =
  (* n=4 tolerates exactly one Byzantine node. *)
  List.iter
    (fun behaviour ->
      List.iter
        (fun seed ->
          let verdict = run ~faulty:[ (node 3, behaviour) ] ~seed (mixed 4) in
          check_ok (Printf.sprintf "behaviour seed %d" seed) verdict)
        [ 0; 1; 2 ])
    [
      Behaviour.Silent;
      Behaviour.Crash_after 5;
      Behaviour.Mutate B.Fault.flip_value;
      Behaviour.Mutate B.Fault.force_decide;
      Behaviour.Mutate B.Fault.random_value;
      Behaviour.Equivocate (B.Fault.equivocate_by_half ~n:4);
      Behaviour.Replay 2;
    ]

let test_two_byzantine_n7 () =
  List.iter
    (fun seed ->
      let faulty =
        [
          (node 0, Behaviour.Mutate B.Fault.flip_value);
          (node 6, Behaviour.Equivocate (B.Fault.equivocate_by_half ~n:7));
        ]
      in
      let verdict = run ~n:7 ~f:2 ~faulty ~seed (unanimous 7 Value.One) in
      check_ok (Printf.sprintf "two byzantine seed %d" seed) verdict;
      match verdict.Abc.Harness.decisions with
      | (_, _, d) :: _ ->
        Alcotest.(check bool) "honest unanimity preserved" true
          (Value.equal d.Abc.Decision.value Value.One)
      | [] -> Alcotest.fail "no decisions")
    [ 0; 1; 2; 3; 4 ]

let test_determinism () =
  let v1 = run ~n:7 ~f:2 ~seed:11 (mixed 7) in
  let v2 = run ~n:7 ~f:2 ~seed:11 (mixed 7) in
  Alcotest.(check int) "same duration" v1.Abc.Harness.duration v2.Abc.Harness.duration;
  Alcotest.(check int) "same messages" v1.Abc.Harness.messages v2.Abc.Harness.messages;
  Alcotest.(check (list int)) "same rounds" v1.Abc.Harness.rounds v2.Abc.Harness.rounds

let test_common_coin_terminates_quickly () =
  let options = B.Options.with_common_coin ~seed:7 in
  List.iter
    (fun seed ->
      let verdict = run ~n:7 ~f:2 ~options ~adversary:(Adversary.split ~n:7) ~seed (mixed 7) in
      check_ok (Printf.sprintf "common coin seed %d" seed) verdict;
      Alcotest.(check bool)
        (Printf.sprintf "few rounds (got %d)" verdict.Abc.Harness.max_round)
        true
        (verdict.Abc.Harness.max_round <= 6))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_validation_ablation_weaker () =
  (* Pinned result (deterministic engine): with two liars, the paper's
     protocol passes all 15 seeds; the no-validation ablation loses
     termination on at least one. *)
  let faulty =
    [
      (node 0, Behaviour.Mutate B.Fault.force_decide);
      (node 1, Behaviour.Mutate B.Fault.flip_value);
    ]
  in
  let count options =
    List.length
      (List.filter
         (fun seed ->
           Abc.Harness.ok (run ~n:7 ~f:2 ~options ~faulty ~seed (unanimous 7 Value.Zero)))
         (List.init 15 (fun i -> i)))
  in
  Alcotest.(check int) "validation on: all ok" 15 (count B.Options.default);
  let ablated = count { B.Options.default with B.Options.validation = false } in
  Alcotest.(check bool)
    (Printf.sprintf "validation off: weaker (ok=%d/15)" ablated)
    true (ablated < 15)

let test_plain_transport_honest_works () =
  let options = { B.Options.default with B.Options.transport = B.Options.Plain } in
  List.iter
    (fun seed -> check_ok "plain transport" (run ~n:7 ~f:2 ~options ~seed (mixed 7)))
    [ 0; 1; 2 ]

let test_message_complexity_cubic_per_round () =
  (* Each round is 3 RBCs per node; each RBC costs O(n^2): the run
     should stay within a small multiple of n^3 per round. *)
  let verdict = run ~n:7 ~f:2 ~seed:0 (unanimous 7 Value.One) in
  check_ok "complexity run" verdict;
  let bound = 4 * 7 * 7 * 7 * (verdict.Abc.Harness.max_round + 2) in
  Alcotest.(check bool)
    (Printf.sprintf "messages %d within %d" verdict.Abc.Harness.messages bound)
    true
    (verdict.Abc.Harness.messages <= bound)

let test_inputs_arity () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Bracha_consensus.inputs: values length must equal n")
    (fun () -> ignore (B.inputs ~n:4 ~options:B.Options.default [| Value.One |]))

(* ---- Properties ---- *)

let prop_agreement_validity_random_faults =
  QCheck.Test.make ~name:"agreement+validity under random fault mix" ~count:60
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, fault_kind) ->
      let behaviour =
        match fault_kind with
        | 0 -> Behaviour.Silent
        | 1 -> Behaviour.Crash_after 7
        | 2 -> Behaviour.Mutate B.Fault.flip_value
        | 3 -> Behaviour.Mutate B.Fault.force_decide
        | _ -> Behaviour.Equivocate (B.Fault.equivocate_by_half ~n:7)
      in
      let faulty = [ (node 2, behaviour); (node 5, behaviour) ] in
      let verdict = run ~n:7 ~f:2 ~faulty ~seed (mixed 7) in
      Abc.Harness.ok verdict)

let prop_rounds_positive =
  QCheck.Test.make ~name:"decision rounds are positive" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let verdict = run ~n:4 ~f:1 ~seed (mixed 4) in
      List.for_all (fun r -> r >= 1) verdict.Abc.Harness.rounds)

let () =
  Alcotest.run "bracha_consensus"
    [
      ( "core",
        [
          Alcotest.test_case "initial broadcast" `Quick test_core_initial_broadcast;
          Alcotest.test_case "unanimous decides round 1" `Quick
            test_core_unanimous_decides_round_one;
          Alcotest.test_case "majority adoption" `Quick test_core_majority_adoption;
          Alcotest.test_case "adopt at f+1" `Quick
            test_core_adopt_at_f_plus_one_decides_next_round;
          Alcotest.test_case "quiesce after decision" `Quick
            test_core_quiesces_after_decision;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "unanimity: round-1 decision" `Quick
            test_unanimous_decides_input_round_one;
          Alcotest.test_case "mixed inputs, all adversaries" `Slow
            test_mixed_inputs_all_adversaries;
          Alcotest.test_case "max resilience n=4 f=1" `Quick test_max_resilience_n4;
          Alcotest.test_case "two byzantine n=7" `Quick test_two_byzantine_n7;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "common coin fast" `Quick
            test_common_coin_terminates_quickly;
          Alcotest.test_case "validation ablation weaker" `Slow
            test_validation_ablation_weaker;
          Alcotest.test_case "plain transport honest" `Quick
            test_plain_transport_honest_works;
          Alcotest.test_case "message complexity" `Quick
            test_message_complexity_cubic_per_round;
          Alcotest.test_case "inputs arity" `Quick test_inputs_arity;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_agreement_validity_random_faults;
          QCheck_alcotest.to_alcotest prop_rounds_positive;
        ] );
    ]
