(* Tests for consistent (echo-only) broadcast — including the
   deterministic demonstration that it lacks totality, and that the
   same attack fails against Bracha's three-phase protocol. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Value = Abc.Value
module Cb = Abc.Consistent_broadcast.Binary
module CbE = Abc_net.Engine.Make (Cb)
module Rbc = Abc.Bracha_rbc.Binary
module RbcE = Abc_net.Engine.Make (Rbc)

let node = Node_id.of_int

let run_cb ?faulty ?(adversary = Adversary.uniform) ?(n = 4) ?(f = 1) ~seed () =
  CbE.run
    (CbE.config ?faulty ~n ~f
       ~inputs:(Cb.inputs ~n ~sender:(node 0) Value.One)
       ~adversary ~seed ())

let deliveries result honest =
  List.filter_map
    (fun id ->
      match result.CbE.outputs.(Node_id.to_int id) with
      | [ (_, Cb.Delivered v) ] -> Some v
      | _ -> None)
    honest

let test_honest_sender_delivers_everywhere () =
  List.iter
    (fun seed ->
      let result = run_cb ~seed () in
      let values = deliveries result (Node_id.all ~n:4) in
      Alcotest.(check int) "all deliver" 4 (List.length values);
      List.iter
        (fun v -> Alcotest.(check bool) "sender's value" true (Value.equal v Value.One))
        values)
    [ 0; 1; 2 ]

let test_cheaper_than_reliable () =
  let cb = run_cb ~seed:0 () in
  let rbc =
    RbcE.run
      (RbcE.config ~n:4 ~f:1
         ~inputs:(Rbc.inputs ~n:4 ~sender:(node 0) Value.One)
         ~seed:0 ())
  in
  let sent r = Abc_sim.Metrics.counter r "sent" in
  Alcotest.(check bool)
    (Printf.sprintf "echo-only cheaper (%d vs %d)"
       (sent cb.CbE.metrics) (sent rbc.RbcE.metrics))
    true
    (sent cb.CbE.metrics < sent rbc.RbcE.metrics)

(* The two-faced sender that starves node 3: true value to nodes 0-2,
   negated value to node 3 — in both its initial and its echo. *)
let starve_node3 _rng ~dst v =
  if Node_id.to_int dst < 3 then v else Value.negate v

let test_totality_failure () =
  (* Echo-only broadcast: nodes 1 and 2 reach the echo quorum
     {1, 2, sender}; node 3 heard a different value and never
     delivers.  Partial delivery — exactly what totality forbids. *)
  List.iter
    (fun seed ->
      let faulty =
        [ (node 0, Behaviour.Equivocate (Rbc.Fault.equivocate starve_node3)) ]
      in
      let result = run_cb ~faulty ~seed () in
      let values = deliveries result [ node 1; node 2; node 3 ] in
      Alcotest.(check string) "run drains" "quiescent"
        (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.CbE.stop);
      Alcotest.(check int) "only the favoured two deliver" 2 (List.length values);
      (* consistency still holds: both delivered the same value *)
      (match values with
      | [ a; b ] -> Alcotest.(check bool) "consistent" true (Value.equal a b)
      | _ -> Alcotest.fail "expected two deliveries");
      Alcotest.(check bool) "node 3 starved" true
        (result.CbE.outputs.(3) = []))
    [ 0; 1; 2; 3; 4 ]

let test_ready_phase_restores_totality () =
  (* Same attack against Bracha's reliable broadcast: the ready
     amplification carries node 3 over the line — every honest node
     delivers. *)
  List.iter
    (fun seed ->
      let faulty =
        [ (node 0, Behaviour.Equivocate (Rbc.Fault.equivocate starve_node3)) ]
      in
      let result =
        RbcE.run
          (RbcE.config ~n:4 ~f:1
             ~inputs:(Rbc.inputs ~n:4 ~sender:(node 0) Value.One)
             ~faulty ~adversary:Adversary.uniform ~seed ())
      in
      let values =
        List.filter_map
          (fun i ->
            match result.RbcE.outputs.(i) with
            | [ (_, Rbc.Delivered v) ] -> Some v
            | _ -> None)
          [ 1; 2; 3 ]
      in
      Alcotest.(check int)
        (Printf.sprintf "all three honest deliver (seed %d)" seed)
        3 (List.length values))
    [ 0; 1; 2; 3; 4 ]

let prop_consistency =
  (* Under arbitrary per-recipient forgery, no two honest nodes ever
     deliver different values. *)
  QCheck.Test.make ~name:"consistency under random equivocation" ~count:80
    QCheck.small_int
    (fun seed ->
      let forge rng ~dst:_ _v = Value.of_bool (Abc_prng.Stream.bool rng) in
      let faulty = [ (node 0, Behaviour.Equivocate (Rbc.Fault.equivocate forge)) ] in
      let result = run_cb ~faulty ~seed () in
      match deliveries result [ node 1; node 2; node 3 ] with
      | [] -> true
      | v :: rest -> List.for_all (Value.equal v) rest)

let () =
  Alcotest.run "consistent_broadcast"
    [
      ( "protocol",
        [
          Alcotest.test_case "honest sender delivers" `Quick
            test_honest_sender_delivers_everywhere;
          Alcotest.test_case "cheaper than reliable" `Quick test_cheaper_than_reliable;
          Alcotest.test_case "totality failure (the gap)" `Quick test_totality_failure;
          Alcotest.test_case "ready phase restores totality" `Quick
            test_ready_phase_restores_totality;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_consistency ]);
    ]
