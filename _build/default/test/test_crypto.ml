(* Tests for the coin cryptography substrate: GF(2^31-1) arithmetic,
   Shamir secret sharing and the Rabin dealer coin — plus MMR running
   on the implemented (share-exchange) coin. *)

module Node_id = Abc_net.Node_id
module Gf = Abc.Gf
module Shamir = Abc.Shamir
module Rabin = Abc.Rabin_coin

let node = Node_id.of_int

let rng ?(seed = 1) () = Abc_prng.Stream.root ~seed

(* ---- Gf ---- *)

let test_gf_basics () =
  Alcotest.(check int) "prime" 0x7FFFFFFF Gf.prime;
  Alcotest.(check int) "zero" 0 (Gf.to_int Gf.zero);
  Alcotest.(check int) "one" 1 (Gf.to_int Gf.one);
  Alcotest.(check int) "reduce" 1 (Gf.to_int (Gf.of_int (Gf.prime + 1)));
  Alcotest.(check int) "negative input" (Gf.prime - 2) (Gf.to_int (Gf.of_int (-2)))

let test_gf_add_sub () =
  let a = Gf.of_int 1234567 and b = Gf.of_int (Gf.prime - 3) in
  Alcotest.(check bool) "a + b - b = a" true (Gf.equal (Gf.sub (Gf.add a b) b) a);
  Alcotest.(check int) "wraparound" (1234567 - 3) (Gf.to_int (Gf.add a b))

let test_gf_mul_inv () =
  List.iter
    (fun x ->
      let x = Gf.of_int x in
      Alcotest.(check bool) "x * x^-1 = 1" true (Gf.equal (Gf.mul x (Gf.inv x)) Gf.one))
    [ 1; 2; 3; 12345; Gf.prime - 1 ];
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Gf.inv Gf.zero))

let test_gf_pow () =
  let x = Gf.of_int 3 in
  Alcotest.(check bool) "x^0 = 1" true (Gf.equal (Gf.pow x 0) Gf.one);
  Alcotest.(check int) "3^5" 243 (Gf.to_int (Gf.pow x 5));
  (* Fermat: x^(p-1) = 1 *)
  Alcotest.(check bool) "fermat" true (Gf.equal (Gf.pow x (Gf.prime - 1)) Gf.one)

let prop_gf_field_laws =
  QCheck.Test.make ~name:"field laws hold on random elements" ~count:300
    QCheck.(triple (int_bound 1000000000) (int_bound 1000000000) (int_bound 1000000000))
    (fun (a, b, c) ->
      let a = Gf.of_int a and b = Gf.of_int b and c = Gf.of_int c in
      Gf.equal (Gf.add a b) (Gf.add b a)
      && Gf.equal (Gf.mul a b) (Gf.mul b a)
      && Gf.equal (Gf.mul a (Gf.add b c)) (Gf.add (Gf.mul a b) (Gf.mul a c))
      && Gf.equal (Gf.add a (Gf.sub b a)) b)

(* ---- Shamir ---- *)

let test_shamir_roundtrip () =
  let secret = Gf.of_int 424242 in
  let shares = Shamir.deal ~rng:(rng ()) ~secret ~threshold:3 ~shares:7 in
  Alcotest.(check int) "seven shares" 7 (List.length shares);
  (* any 3 shares reconstruct *)
  let pick idx = List.map (List.nth shares) idx in
  List.iter
    (fun idx ->
      Alcotest.(check bool)
        (Printf.sprintf "subset reconstructs")
        true
        (Gf.equal (Shamir.reconstruct (pick idx)) secret))
    [ [ 0; 1; 2 ]; [ 4; 5; 6 ]; [ 0; 3; 6 ]; [ 2; 4; 5 ] ];
  (* more than threshold also works *)
  Alcotest.(check bool) "all shares" true
    (Gf.equal (Shamir.reconstruct shares) secret)

let test_shamir_two_shares_insufficient () =
  (* With threshold 3, two shares interpolate a line whose value at 0
     is (almost surely) not the secret. *)
  let secret = Gf.of_int 99 in
  let shares = Shamir.deal ~rng:(rng ~seed:3 ()) ~secret ~threshold:3 ~shares:5 in
  let two = [ List.nth shares 0; List.nth shares 1 ] in
  Alcotest.(check bool) "two shares do not reconstruct" false
    (Gf.equal (Shamir.reconstruct two) secret)

let test_shamir_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Shamir.reconstruct: no shares")
    (fun () -> ignore (Shamir.reconstruct []));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Shamir.deal: need 1 <= threshold <= shares") (fun () ->
      ignore (Shamir.deal ~rng:(rng ()) ~secret:Gf.one ~threshold:5 ~shares:3));
  let shares = Shamir.deal ~rng:(rng ()) ~secret:Gf.one ~threshold:2 ~shares:3 in
  let dup = [ List.hd shares; List.hd shares ] in
  Alcotest.check_raises "duplicate points"
    (Invalid_argument "Shamir.reconstruct: duplicate evaluation points") (fun () ->
      ignore (Shamir.reconstruct dup))

let test_shamir_threshold_one () =
  let secret = Gf.of_int 7 in
  let shares = Shamir.deal ~rng:(rng ()) ~secret ~threshold:1 ~shares:4 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "degree-0 polynomial" true
        (Gf.equal (Shamir.reconstruct [ s ]) secret))
    shares

let prop_shamir_any_subset =
  QCheck.Test.make ~name:"any threshold-subset reconstructs" ~count:200
    QCheck.(triple small_int (int_range 1 5) small_int)
    (fun (secret, threshold, seed) ->
      let shares_count = threshold + 3 in
      let secret = Gf.of_int secret in
      let shares =
        Shamir.deal ~rng:(rng ~seed ()) ~secret ~threshold ~shares:shares_count
      in
      (* rotate and take [threshold] shares *)
      let rotated = List.filteri (fun i _ -> i mod 2 = seed mod 2 || i < threshold) shares in
      let subset = List.filteri (fun i _ -> i < threshold) rotated in
      Gf.equal (Shamir.reconstruct subset) secret)

(* ---- Rabin coin ---- *)

let test_rabin_share_verify () =
  let dealer = Rabin.create ~n:7 ~f:2 ~seed:11 in
  Alcotest.(check int) "threshold" 3 (Rabin.threshold dealer);
  let share = Rabin.share dealer ~round:4 ~node:(node 2) in
  Alcotest.(check bool) "genuine share verifies" true
    (Rabin.verify dealer ~round:4 ~node:(node 2) share);
  Alcotest.(check bool) "wrong node rejected" false
    (Rabin.verify dealer ~round:4 ~node:(node 3) share);
  Alcotest.(check bool) "wrong round rejected" false
    (Rabin.verify dealer ~round:5 ~node:(node 2) share);
  let forged = { share with Shamir.y = Gf.add share.Shamir.y Gf.one } in
  Alcotest.(check bool) "forged value rejected" false
    (Rabin.verify dealer ~round:4 ~node:(node 2) forged)

let test_rabin_reconstruct_matches_dealer () =
  let dealer = Rabin.create ~n:7 ~f:2 ~seed:11 in
  for round = 1 to 20 do
    let shares =
      List.init 3 (fun i -> Rabin.share dealer ~round ~node:(node (i * 2)))
    in
    Alcotest.(check bool)
      (Printf.sprintf "round %d" round)
      true
      (Abc.Value.equal (Rabin.reconstruct dealer shares)
         (Rabin.coin_value dealer ~round))
  done

let test_rabin_coin_is_fair_ish () =
  let dealer = Rabin.create ~n:4 ~f:1 ~seed:5 in
  let ones = ref 0 in
  for round = 1 to 1000 do
    if Abc.Value.to_bool (Rabin.coin_value dealer ~round) then incr ones
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fair (%d/1000)" !ones)
    true
    (!ones > 430 && !ones < 570)

let test_rabin_seeds_differ () =
  let d1 = Rabin.create ~n:4 ~f:1 ~seed:1 in
  let d2 = Rabin.create ~n:4 ~f:1 ~seed:2 in
  let flips d = List.init 64 (fun r -> Abc.Value.to_int (Rabin.coin_value d ~round:r)) in
  Alcotest.(check bool) "different sequences" false (flips d1 = flips d2)

(* ---- MMR on the implemented coin ---- *)

module M = Abc.Mmr_consensus

module H = Abc.Harness.Make (struct
  include M

  let value_of_input = M.value_of_input
end)

let run_shared ?faulty ?(adversary = Abc_net.Adversary.uniform) ~n ~f ~seed values =
  let inputs = M.inputs_with_shared_coin ~n ~f ~seed:99 values in
  snd (H.run (H.E.config ?faulty ~n ~f ~inputs ~seed ~adversary ()))

let split n = Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)

let test_mmr_shared_coin_ok () =
  List.iter
    (fun seed ->
      let v = run_shared ~n:7 ~f:2 ~seed (split 7) in
      Alcotest.(check bool)
        (Printf.sprintf "ok seed %d (%s)" seed (Fmt.str "%a" Abc.Harness.pp_verdict v))
        true (Abc.Harness.ok v))
    (List.init 10 (fun i -> i))

let test_mmr_shared_coin_vs_corrupted_shares () =
  (* Byzantine nodes mutate their shares; verification must reject the
     forgeries and the honest f+1 shares must still reconstruct. *)
  let faulty =
    [
      (node 5, Abc_net.Behaviour.Mutate M.Fault.flip_value);
      (node 6, Abc_net.Behaviour.Mutate M.Fault.flip_value);
    ]
  in
  List.iter
    (fun seed ->
      let v = run_shared ~faulty ~n:7 ~f:2 ~seed (split 7) in
      Alcotest.(check bool) (Printf.sprintf "ok seed %d" seed) true (Abc.Harness.ok v))
    (List.init 10 (fun i -> i))

let test_mmr_shared_coin_withholding () =
  (* Silent faulty nodes withhold their shares; f+1 honest shares must
     suffice. *)
  let faulty = [ (node 0, Abc_net.Behaviour.Silent); (node 1, Abc_net.Behaviour.Silent) ] in
  List.iter
    (fun seed ->
      let v = run_shared ~faulty ~n:7 ~f:2 ~seed (split 7) in
      Alcotest.(check bool) (Printf.sprintf "ok seed %d" seed) true (Abc.Harness.ok v))
    (List.init 10 (fun i -> i))

let () =
  Alcotest.run "crypto"
    [
      ( "gf",
        [
          Alcotest.test_case "basics" `Quick test_gf_basics;
          Alcotest.test_case "add/sub" `Quick test_gf_add_sub;
          Alcotest.test_case "mul/inv" `Quick test_gf_mul_inv;
          Alcotest.test_case "pow" `Quick test_gf_pow;
          QCheck_alcotest.to_alcotest prop_gf_field_laws;
        ] );
      ( "shamir",
        [
          Alcotest.test_case "roundtrip" `Quick test_shamir_roundtrip;
          Alcotest.test_case "two shares insufficient" `Quick
            test_shamir_two_shares_insufficient;
          Alcotest.test_case "validation" `Quick test_shamir_validation;
          Alcotest.test_case "threshold one" `Quick test_shamir_threshold_one;
          QCheck_alcotest.to_alcotest prop_shamir_any_subset;
        ] );
      ( "rabin coin",
        [
          Alcotest.test_case "share verify" `Quick test_rabin_share_verify;
          Alcotest.test_case "reconstruct matches dealer" `Quick
            test_rabin_reconstruct_matches_dealer;
          Alcotest.test_case "fair-ish" `Quick test_rabin_coin_is_fair_ish;
          Alcotest.test_case "seed sensitivity" `Quick test_rabin_seeds_differ;
        ] );
      ( "mmr on shares",
        [
          Alcotest.test_case "ok across seeds" `Quick test_mmr_shared_coin_ok;
          Alcotest.test_case "corrupted shares rejected" `Quick
            test_mmr_shared_coin_vs_corrupted_shares;
          Alcotest.test_case "withholding tolerated" `Quick
            test_mmr_shared_coin_withholding;
        ] );
    ]
