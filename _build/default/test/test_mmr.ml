(* Tests for MMR binary agreement (Mostéfaoui–Moumen–Raynal 2014), the
   modern descendant of Bracha's protocol, including the ablation that
   shows the common coin is a safety requirement. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module M = Abc.Mmr_consensus
module Value = Abc.Value

module H = Abc.Harness.Make (struct
  include M

  let value_of_input = M.value_of_input
end)

let node = Node_id.of_int

let common = Abc.Coin.common ~seed:7

let run ?faulty ?(adversary = Adversary.uniform) ?(coin = common) ~n ~f ~seed
    values =
  let inputs = M.inputs ~n ~coin values in
  snd (H.run (H.E.config ?faulty ~n ~f ~inputs ~seed ~adversary ()))

let unanimous n v = Array.make n v

let split n = Array.init n (fun i -> if i < n / 2 then Value.Zero else Value.One)

let check_ok label verdict =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" label (Fmt.str "%a" Abc.Harness.pp_verdict verdict))
    true (Abc.Harness.ok verdict)

let test_unanimous_decides_input () =
  List.iter
    (fun v ->
      let verdict = run ~n:4 ~f:1 ~seed:1 (unanimous 4 v) in
      check_ok "unanimous" verdict;
      match verdict.Abc.Harness.decisions with
      | (_, _, d) :: _ ->
        Alcotest.(check bool) "validity" true (Value.equal d.Abc.Decision.value v)
      | [] -> Alcotest.fail "no decisions")
    [ Value.Zero; Value.One ]

let test_split_inputs_all_adversaries () =
  List.iter
    (fun adversary ->
      List.iter
        (fun seed ->
          check_ok
            (Printf.sprintf "%s seed %d" adversary.Adversary.name seed)
            (run ~n:7 ~f:2 ~adversary ~seed (split 7)))
        [ 0; 1; 2; 3; 4 ])
    (Adversary.all_basic ~n:7)

let test_byzantine_battery () =
  List.iter
    (fun behaviour ->
      List.iter
        (fun seed ->
          let faulty = [ (node 5, behaviour); (node 6, behaviour) ] in
          let verdict = run ~n:7 ~f:2 ~faulty ~seed (unanimous 7 Value.One) in
          check_ok (Printf.sprintf "byzantine seed %d" seed) verdict;
          match verdict.Abc.Harness.decisions with
          | (_, _, d) :: _ ->
            Alcotest.(check bool) "validity held" true
              (Value.equal d.Abc.Decision.value Value.One)
          | [] -> Alcotest.fail "no decisions")
        [ 0; 1; 2 ])
    [
      Behaviour.Silent;
      Behaviour.Crash_after 4;
      Behaviour.Mutate M.Fault.flip_value;
      Behaviour.Equivocate (M.Fault.equivocate_by_half ~n:7);
      Behaviour.Replay 2;
    ]

let test_constant_rounds_with_common_coin () =
  (* Under the nastiest schedule we have, rounds stay small. *)
  let faulty =
    [
      (node 0, Behaviour.Mutate M.Fault.flip_value);
      (node 7, Behaviour.Mutate M.Fault.flip_value);
    ]
  in
  List.iter
    (fun seed ->
      let verdict =
        run ~faulty ~adversary:(Adversary.split ~n:8) ~n:8 ~f:2 ~seed (split 8)
      in
      check_ok (Printf.sprintf "seed %d" seed) verdict;
      Alcotest.(check bool)
        (Printf.sprintf "rounds bounded (got %d)" verdict.Abc.Harness.max_round)
        true
        (verdict.Abc.Harness.max_round <= 5))
    (List.init 15 (fun i -> i))

let test_cheaper_than_bracha () =
  (* The headline improvement: one BV-broadcast + one vote per round
     instead of three reliable broadcasts — an order of magnitude in
     messages at n=16. *)
  let mmr = run ~n:16 ~f:5 ~seed:3 (split 16) in
  check_ok "mmr n=16" mmr;
  let module B = Abc.Bracha_consensus in
  let module BH = Abc.Harness.Make (struct
    include B

    let value_of_input = B.value_of_input
  end) in
  let bracha_inputs = B.inputs ~n:16 ~options:B.Options.default (split 16) in
  let _, bracha =
    BH.run (BH.E.config ~n:16 ~f:5 ~inputs:bracha_inputs ~seed:3 ~adversary:Adversary.uniform ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "mmr %d msgs << bracha %d msgs" mmr.Abc.Harness.messages
       bracha.Abc.Harness.messages)
    true
    (mmr.Abc.Harness.messages * 5 < bracha.Abc.Harness.messages)

let test_local_coin_violates_agreement () =
  (* The ablation: with local coins MMR is UNSAFE, not just slow.
     Pinned deterministic failure (seed 7 at n=7/f=2, uniform
     scheduler) plus a sweep showing violations occur. *)
  let verdict = run ~coin:Abc.Coin.local ~n:7 ~f:2 ~seed:7 (split 7) in
  Alcotest.(check bool) "pinned agreement violation" false
    verdict.Abc.Harness.agreement;
  let violations =
    List.length
      (List.filter
         (fun seed ->
           let v = run ~coin:Abc.Coin.local ~n:7 ~f:2 ~seed (split 7) in
           not v.Abc.Harness.agreement)
         (List.init 30 (fun i -> i)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "violations across seeds (%d/30)" violations)
    true (violations > 0)

let test_common_coin_never_violates () =
  List.iter
    (fun seed ->
      let v = run ~n:7 ~f:2 ~seed (split 7) in
      Alcotest.(check bool) "agreement" true v.Abc.Harness.agreement;
      Alcotest.(check bool) "validity" true v.Abc.Harness.validity)
    (List.init 30 (fun i -> i))

let test_inputs_arity () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Mmr_consensus.inputs: values length must equal n")
    (fun () -> ignore (M.inputs ~n:4 ~coin:common [| Value.One |]))

let test_pp_msg () =
  Alcotest.(check string) "bval" "bval(r1, 1)"
    (Fmt.str "%a" M.pp_msg (M.Bval { round = 1; value = Value.One }));
  Alcotest.(check string) "aux" "aux(r2, 0)"
    (Fmt.str "%a" M.pp_msg (M.Aux { round = 2; value = Value.Zero }))

let prop_ok_with_common_coin =
  QCheck.Test.make ~name:"mmr ok across seeds and fault mixes" ~count:50
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, fault_kind) ->
      let behaviour =
        match fault_kind with
        | 0 -> Behaviour.Silent
        | 1 -> Behaviour.Crash_after 6
        | 2 -> Behaviour.Mutate M.Fault.flip_value
        | _ -> Behaviour.Equivocate (M.Fault.equivocate_by_half ~n:7)
      in
      let faulty = [ (node 1, behaviour); (node 4, behaviour) ] in
      Abc.Harness.ok (run ~faulty ~n:7 ~f:2 ~seed (split 7)))

let () =
  Alcotest.run "mmr_consensus"
    [
      ( "protocol",
        [
          Alcotest.test_case "unanimous decides input" `Quick
            test_unanimous_decides_input;
          Alcotest.test_case "split inputs, all adversaries" `Quick
            test_split_inputs_all_adversaries;
          Alcotest.test_case "byzantine battery" `Quick test_byzantine_battery;
          Alcotest.test_case "constant rounds (common coin)" `Quick
            test_constant_rounds_with_common_coin;
          Alcotest.test_case "cheaper than bracha" `Quick test_cheaper_than_bracha;
          Alcotest.test_case "inputs arity" `Quick test_inputs_arity;
          Alcotest.test_case "pp_msg" `Quick test_pp_msg;
        ] );
      ( "coin ablation",
        [
          Alcotest.test_case "local coin violates agreement" `Slow
            test_local_coin_violates_agreement;
          Alcotest.test_case "common coin never violates" `Slow
            test_common_coin_never_violates;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ok_with_common_coin ]);
    ]
