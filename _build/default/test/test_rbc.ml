(* Tests for Bracha reliable broadcast: the pure Rbc_core state machine
   and the end-to-end protocol under Byzantine faults and adversarial
   schedules (experiment E1's property checks in unit-test form). *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Value = Abc.Value
module Rbc = Abc.Bracha_rbc.Binary
module Core = Rbc.Core
module Run = Abc_net.Engine.Make (Abc.Bracha_rbc.Binary)

let node = Node_id.of_int

(* ---- Pure core ---- *)

let feed state events =
  (* Feed a list of (src, event); collect broadcasts and delivery. *)
  List.fold_left
    (fun (state, sent, delivered) (src, event) ->
      let state, out, d = Core.handle state ~src event in
      (state, sent @ out, match delivered with Some _ -> delivered | None -> d))
    (state, [], None) events

let test_thresholds () =
  (* n=4, f=1: echo threshold ⌈6/2⌉=3, amplify 2, deliver 3. *)
  Alcotest.(check int) "echo" 3 (Core.echo_threshold ~n:4 ~f:1);
  Alcotest.(check int) "amplify" 2 (Core.ready_amplify_threshold ~f:1);
  Alcotest.(check int) "deliver" 3 (Core.deliver_threshold ~f:1);
  (* n=7, f=2: ⌈10/2⌉=5 *)
  Alcotest.(check int) "echo n7" 5 (Core.echo_threshold ~n:7 ~f:2);
  Alcotest.(check int) "echo n10f3 (⌈14/2⌉)" 7 (Core.echo_threshold ~n:10 ~f:3)

let test_initial_triggers_echo () =
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let _, sent, delivered = Core.handle t ~src:(node 0) (Core.Initial Value.One) in
  Alcotest.(check bool) "echo sent" true (sent = [ Core.Echo Value.One ]);
  Alcotest.(check bool) "no delivery yet" true (delivered = None)

let test_initial_from_non_sender_ignored () =
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let t', sent, _ = Core.handle t ~src:(node 2) (Core.Initial Value.One) in
  Alcotest.(check bool) "no echo" true (sent = []);
  Alcotest.(check bool) "not echoed" false (Core.echoed t');
  ignore t'

let test_second_initial_ignored () =
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let t, _, _ = Core.handle t ~src:(node 0) (Core.Initial Value.One) in
  let _, sent, _ = Core.handle t ~src:(node 0) (Core.Initial Value.Zero) in
  Alcotest.(check bool) "equivocating sender gets one echo" true (sent = [])

let test_echo_quorum_triggers_ready () =
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let _, sent, delivered =
    feed t
      [ (node 0, Core.Echo Value.One); (node 1, Core.Echo Value.One);
        (node 2, Core.Echo Value.One) ]
  in
  Alcotest.(check bool) "ready sent" true (List.mem (Core.Ready Value.One) sent);
  Alcotest.(check bool) "no delivery from echoes" true (delivered = None)

let test_duplicate_echoes_not_counted () =
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let _, sent, _ =
    feed t
      [ (node 1, Core.Echo Value.One); (node 1, Core.Echo Value.One);
        (node 1, Core.Echo Value.One) ]
  in
  Alcotest.(check bool) "no ready from one echoer" true (sent = [])

let test_ready_amplification () =
  (* f+1 readies let a node turn ready without any echo quorum. *)
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let _, sent, _ =
    feed t [ (node 1, Core.Ready Value.One); (node 2, Core.Ready Value.One) ]
  in
  Alcotest.(check bool) "amplified ready" true (List.mem (Core.Ready Value.One) sent)

let test_delivery_at_2f_plus_1_readies () =
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let _, _, delivered =
    feed t
      [ (node 1, Core.Ready Value.One); (node 2, Core.Ready Value.One);
        (node 3, Core.Ready Value.One) ]
  in
  Alcotest.(check bool) "delivered" true (delivered = Some Value.One)

let test_delivery_only_once () =
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let t, _, first =
    feed t
      [ (node 1, Core.Ready Value.One); (node 2, Core.Ready Value.One);
        (node 3, Core.Ready Value.One) ]
  in
  Alcotest.(check bool) "first delivery" true (first = Some Value.One);
  let _, _, second = Core.handle t ~src:(node 0) (Core.Ready Value.One) in
  Alcotest.(check bool) "no second delivery" true (second = None)

let test_split_echoes_no_ready () =
  (* 2 echoes for One and 2 for Zero: neither reaches the threshold of
     3, so no ready is ever sent. *)
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let _, sent, _ =
    feed t
      [ (node 0, Core.Echo Value.One); (node 1, Core.Echo Value.One);
        (node 2, Core.Echo Value.Zero); (node 3, Core.Echo Value.Zero) ]
  in
  Alcotest.(check bool) "no ready on split" true (sent = [])

let test_mixed_echo_ready_path () =
  (* A node that already readied from echoes must not ready again from
     the amplification rule. *)
  let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
  let _, sent, _ =
    feed t
      [ (node 0, Core.Echo Value.One); (node 1, Core.Echo Value.One);
        (node 2, Core.Echo Value.One); (node 1, Core.Ready Value.One);
        (node 2, Core.Ready Value.One) ]
  in
  let readies = List.filter (function Core.Ready _ -> true | _ -> false) sent in
  Alcotest.(check int) "exactly one ready" 1 (List.length readies)

(* ---- End-to-end protocol ---- *)

let run_rbc ?(n = 4) ?(f = 1) ?(sender = 0) ?(value = Value.One) ?faulty ?adversary
    ?(seed = 0) () =
  let inputs = Rbc.inputs ~n ~sender:(node sender) value in
  Run.run (Run.config ?faulty ?adversary ~seed ~n ~f ~inputs ())

let honest_deliveries result cfg_honest =
  List.filter_map
    (fun id ->
      match result.Run.outputs.(Node_id.to_int id) with
      | [ (_, Rbc.Delivered v) ] -> Some v
      | [] -> None
      | _ -> Alcotest.fail "node delivered more than once")
    cfg_honest

let all_nodes n = Node_id.all ~n

let test_validity_honest_sender () =
  let result = run_rbc () in
  let delivered = honest_deliveries result (all_nodes 4) in
  Alcotest.(check int) "all deliver" 4 (List.length delivered);
  List.iter
    (fun v -> Alcotest.(check bool) "delivers sender value" true (Value.equal v Value.One))
    delivered

let test_validity_all_adversaries () =
  List.iter
    (fun adversary ->
      let result = run_rbc ~n:7 ~f:2 ~adversary ~seed:5 () in
      let delivered = honest_deliveries result (all_nodes 7) in
      Alcotest.(check int)
        (Printf.sprintf "all deliver under %s" adversary.Adversary.name)
        7 (List.length delivered))
    (Adversary.all_basic ~n:7)

let test_silent_sender_no_delivery () =
  let faulty = [ (node 0, Behaviour.Silent) ] in
  let result = run_rbc ~faulty () in
  (* Nothing ever happens: engine is immediately quiescent. *)
  List.iter
    (fun outputs -> Alcotest.(check int) "no outputs" 0 (List.length outputs))
    (Array.to_list result.Run.outputs)

let test_equivocating_sender_agreement () =
  (* The classic attack: the sender sends One to low ids and Zero to
     high ids.  Agreement must hold: all honest deliver the same value
     (or none deliver). *)
  let forge _rng ~dst v =
    if Node_id.to_int dst < 2 then v else Value.negate v
  in
  List.iter
    (fun seed ->
      let faulty = [ (node 0, Behaviour.Equivocate (Rbc.Fault.equivocate forge)) ] in
      let result = run_rbc ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = honest_deliveries result [ node 1; node 2; node 3 ] in
      match delivered with
      | [] -> ()
      | v :: rest ->
        List.iter
          (fun w ->
            Alcotest.(check bool)
              (Printf.sprintf "agreement under equivocation (seed %d)" seed)
              true (Value.equal v w))
          rest)
    (List.init 50 (fun i -> i))

let test_equivocating_relay_harmless () =
  (* An equivocating echo relay cannot break agreement or validity. *)
  let forge _rng ~dst v = if Node_id.to_int dst mod 2 = 0 then v else Value.negate v in
  List.iter
    (fun seed ->
      let faulty = [ (node 2, Behaviour.Equivocate (Rbc.Fault.equivocate forge)) ] in
      let result = run_rbc ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = honest_deliveries result [ node 0; node 1; node 3 ] in
      List.iter
        (fun v ->
          Alcotest.(check bool) "validity despite lying relay" true
            (Value.equal v Value.One))
        delivered)
    (List.init 50 (fun i -> i))

let test_lying_relay_substitution () =
  (* A relay that flips every payload it echoes/readies. *)
  let flip _rng v = Value.negate v in
  List.iter
    (fun seed ->
      let faulty = [ (node 3, Behaviour.Mutate (Rbc.Fault.substitute flip)) ] in
      let result = run_rbc ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = honest_deliveries result [ node 0; node 1; node 2 ] in
      Alcotest.(check int) "all honest deliver" 3 (List.length delivered);
      List.iter
        (fun v ->
          Alcotest.(check bool) "validity despite bit-flipping relay" true
            (Value.equal v Value.One))
        delivered)
    (List.init 50 (fun i -> i))

let test_crashing_relay_totality () =
  (* A relay crashing mid-protocol: either nobody delivers or everyone
     does.  With n=4, f=1 and only one fault, everyone must deliver. *)
  let faulty = [ (node 1, Behaviour.Crash_after 2) ] in
  let result = run_rbc ~faulty ~seed:3 () in
  let delivered = honest_deliveries result [ node 0; node 2; node 3 ] in
  Alcotest.(check int) "totality" 3 (List.length delivered)

let test_larger_network () =
  let result = run_rbc ~n:10 ~f:3 ~seed:1 ~adversary:Adversary.uniform () in
  let delivered = honest_deliveries result (all_nodes 10) in
  Alcotest.(check int) "n=10 delivers" 10 (List.length delivered)

let test_message_complexity_quadratic () =
  (* Per instance: initial n + echoes n^2 + readies n^2 => < 3n^2. *)
  let result = run_rbc ~n:7 ~f:2 () in
  let sent = Abc_sim.Metrics.counter result.Run.metrics "sent" in
  Alcotest.(check bool)
    (Printf.sprintf "O(n^2) messages (got %d)" sent)
    true
    (sent <= 3 * 7 * 7)

let prop_agreement_random_equivocation =
  (* Property: under random per-recipient forgery by the sender and
     random scheduling, honest nodes never deliver conflicting values. *)
  QCheck.Test.make ~name:"agreement under random equivocation" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let forge rng ~dst:_ _v = Value.of_bool (Abc_prng.Stream.bool rng) in
      let faulty = [ (node 0, Behaviour.Equivocate (Rbc.Fault.equivocate forge)) ] in
      let result = run_rbc ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = honest_deliveries result [ node 1; node 2; node 3 ] in
      match delivered with
      | [] -> true
      | v :: rest -> List.for_all (Value.equal v) rest)

let prop_delivery_order_independent =
  (* The pure core is confluent: feeding the same multiset of events in
     any order yields the same delivered value (when one is reached) —
     counters only grow and every rule is monotone. *)
  QCheck.Test.make ~name:"core delivery independent of event order" ~count:150
    QCheck.(small_int)
    (fun seed ->
      let rng = Abc_prng.Stream.root ~seed in
      let events =
        List.concat_map
          (fun src ->
            [ (node src, Core.Echo Value.One); (node src, Core.Ready Value.One) ])
          [ 0; 1; 2; 3 ]
        @ [ (node 0, Core.Initial Value.One) ]
      in
      let arr = Array.of_list events in
      Abc_prng.Stream.shuffle_in_place rng arr;
      let deliver order =
        let t = Core.create ~n:4 ~f:1 ~sender:(node 0) in
        let _, _, d =
          List.fold_left
            (fun (t, sent, d) (src, e) ->
              let t, out, d' = Core.handle t ~src e in
              (t, sent @ out, match d with Some _ -> d | None -> d'))
            (t, [], None) order
        in
        d
      in
      deliver (Array.to_list arr) = deliver events)

let prop_validity_under_any_single_fault =
  (* Property: with an honest sender, any single faulty relay with any
     behaviour cannot prevent delivery of the correct value. *)
  let behaviours =
    [
      Behaviour.Silent;
      Behaviour.Crash_after 1;
      Behaviour.Mutate (Rbc.Fault.substitute (fun _ v -> Value.negate v));
      Behaviour.Replay 1;
    ]
  in
  QCheck.Test.make ~name:"validity under any single relay fault" ~count:100
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, b) ->
      let faulty = [ (node 2, List.nth behaviours b) ] in
      let result = run_rbc ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = honest_deliveries result [ node 0; node 1; node 3 ] in
      List.length delivered = 3
      && List.for_all (Value.equal Value.One) delivered)

let () =
  Alcotest.run "bracha_rbc"
    [
      ( "core",
        [
          Alcotest.test_case "thresholds" `Quick test_thresholds;
          Alcotest.test_case "initial triggers echo" `Quick test_initial_triggers_echo;
          Alcotest.test_case "initial from non-sender ignored" `Quick
            test_initial_from_non_sender_ignored;
          Alcotest.test_case "second initial ignored" `Quick test_second_initial_ignored;
          Alcotest.test_case "echo quorum triggers ready" `Quick
            test_echo_quorum_triggers_ready;
          Alcotest.test_case "duplicate echoes not counted" `Quick
            test_duplicate_echoes_not_counted;
          Alcotest.test_case "ready amplification" `Quick test_ready_amplification;
          Alcotest.test_case "delivery at 2f+1 readies" `Quick
            test_delivery_at_2f_plus_1_readies;
          Alcotest.test_case "delivery only once" `Quick test_delivery_only_once;
          Alcotest.test_case "split echoes never ready" `Quick test_split_echoes_no_ready;
          Alcotest.test_case "one ready across both rules" `Quick
            test_mixed_echo_ready_path;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "validity with honest sender" `Quick
            test_validity_honest_sender;
          Alcotest.test_case "validity across adversaries" `Quick
            test_validity_all_adversaries;
          Alcotest.test_case "silent sender: nobody delivers" `Quick
            test_silent_sender_no_delivery;
          Alcotest.test_case "agreement under equivocation" `Quick
            test_equivocating_sender_agreement;
          Alcotest.test_case "equivocating relay harmless" `Quick
            test_equivocating_relay_harmless;
          Alcotest.test_case "lying relay: substitution" `Quick
            test_lying_relay_substitution;
          Alcotest.test_case "crashing relay: totality" `Quick
            test_crashing_relay_totality;
          Alcotest.test_case "larger network" `Quick test_larger_network;
          Alcotest.test_case "message complexity" `Quick
            test_message_complexity_quadratic;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_agreement_random_equivocation;
          QCheck_alcotest.to_alcotest prop_delivery_order_independent;
          QCheck_alcotest.to_alcotest prop_validity_under_any_single_fault;
        ] );
    ]
