(* Tests for the Turpin–Coan multivalued-to-binary reduction. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module TC = Abc.Turpin_coan.Make (Abc.Payloads.Int_payload)
module E = Abc_net.Engine.Make (TC)

let node = Node_id.of_int

let run ?faulty ?(adversary = Adversary.uniform) ?(coin = Abc.Coin.local) ~n ~f
    ~seed values =
  let inputs = TC.inputs ~n ~coin values in
  E.run (E.config ?faulty ~n ~f ~inputs ~seed ~adversary ())

let check_terminal result =
  Alcotest.(check string) "all terminal" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.E.stop)

let outcomes result honest =
  List.map
    (fun id ->
      match result.E.outputs.(Node_id.to_int id) with
      | [ (_, o) ] -> o
      | _ -> Alcotest.fail "expected exactly one outcome")
    honest

let check_agreement os =
  match os with
  | first :: rest ->
    List.iter
      (fun o -> Alcotest.(check bool) "same outcome" true (o = first))
      rest
  | [] -> Alcotest.fail "no outcomes"

let test_max_faults () =
  Alcotest.(check int) "n=5" 1 (TC.max_faults ~n:5);
  Alcotest.(check int) "n=9" 2 (TC.max_faults ~n:9);
  Alcotest.(check int) "n=13" 3 (TC.max_faults ~n:13)

let test_unanimity_decides_value () =
  List.iter
    (fun seed ->
      let result = run ~n:5 ~f:1 ~seed (Array.make 5 77) in
      check_terminal result;
      let os = outcomes result (Node_id.all ~n:5) in
      check_agreement os;
      match List.hd os with
      | TC.Agreed v -> Alcotest.(check int) "unanimous value wins" 77 v
      | TC.Fallback -> Alcotest.fail "unanimity must not fall back")
    [ 0; 1; 2; 3; 4 ]

let test_strong_majority_decides_value () =
  (* n - 2f of the honest nodes agreeing is enough when the rest are
     spread out. *)
  let result = run ~n:5 ~f:1 ~seed:1 [| 7; 7; 7; 7; 3 |] in
  check_terminal result;
  let os = outcomes result (Node_id.all ~n:5) in
  check_agreement os;
  match List.hd os with
  | TC.Agreed v -> Alcotest.(check int) "majority value" 7 v
  | TC.Fallback -> Alcotest.fail "expected agreement on 7"

let test_split_inputs_agree_on_something () =
  (* Fully split inputs: the nodes may agree on a value or jointly fall
     back — either way, they agree. *)
  List.iter
    (fun seed ->
      let result = run ~n:9 ~f:2 ~seed [| 1; 1; 1; 2; 2; 2; 3; 3; 3 |] in
      check_terminal result;
      check_agreement (outcomes result (Node_id.all ~n:9)))
    (List.init 10 (fun i -> i))

let test_silent_faults_tolerated () =
  let faulty =
    [ (node 7, Behaviour.Silent); (node 8, Behaviour.Crash_after 3) ]
  in
  List.iter
    (fun seed ->
      let result = run ~faulty ~n:9 ~f:2 ~seed (Array.make 9 11) in
      check_terminal result;
      let honest = List.map node [ 0; 1; 2; 3; 4; 5; 6 ] in
      let os = outcomes result honest in
      check_agreement os;
      match List.hd os with
      | TC.Agreed v -> Alcotest.(check int) "value survives faults" 11 v
      | TC.Fallback -> Alcotest.fail "unanimity must not fall back")
    [ 0; 1; 2 ]

let test_lying_faults_cannot_forge_agreement () =
  (* A Byzantine node proposing a value nobody honest holds (modelled
     through its input, since [msg] is abstract): the decided value
     must still be the honest one. *)
  let faulty = [ (node 8, Behaviour.Silent) ] in
  List.iter
    (fun seed ->
      let result = run ~faulty ~n:9 ~f:2 ~seed [| 5; 5; 5; 5; 5; 5; 5; 5; 99 |] in
      check_terminal result;
      let honest = List.map node [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
      let os = outcomes result honest in
      check_agreement os;
      match List.hd os with
      | TC.Agreed v -> Alcotest.(check int) "honest value" 5 v
      | TC.Fallback -> Alcotest.fail "expected agreement")
    [ 0; 1; 2 ]

let test_all_adversaries () =
  List.iter
    (fun adversary ->
      let result = run ~adversary ~n:5 ~f:1 ~seed:3 (Array.make 5 6) in
      check_terminal result;
      check_agreement (outcomes result (Node_id.all ~n:5)))
    (Adversary.all_basic ~n:5)

let test_inputs_arity () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Turpin_coan.inputs: values length must equal n") (fun () ->
      ignore (TC.inputs ~n:4 ~coin:Abc.Coin.local [| 1 |]))

let prop_agreement =
  QCheck.Test.make ~name:"outcomes agree across seeds and inputs" ~count:40
    QCheck.(pair small_int (int_range 0 2))
    (fun (seed, pattern) ->
      let values =
        match pattern with
        | 0 -> Array.make 5 4
        | 1 -> [| 4; 4; 4; 9; 9 |]
        | _ -> [| 1; 2; 3; 4; 5 |]
      in
      let result = run ~n:5 ~f:1 ~seed values in
      result.E.stop = Abc_net.Engine.All_terminal
      &&
      let os = outcomes result (Node_id.all ~n:5) in
      match os with first :: rest -> List.for_all (( = ) first) rest | [] -> false)

let () =
  Alcotest.run "turpin_coan"
    [
      ( "reduction",
        [
          Alcotest.test_case "max faults" `Quick test_max_faults;
          Alcotest.test_case "unanimity decides" `Quick test_unanimity_decides_value;
          Alcotest.test_case "strong majority decides" `Quick
            test_strong_majority_decides_value;
          Alcotest.test_case "split inputs agree" `Quick
            test_split_inputs_agree_on_something;
          Alcotest.test_case "silent faults tolerated" `Quick
            test_silent_faults_tolerated;
          Alcotest.test_case "byzantine value cannot win" `Quick
            test_lying_faults_cannot_forge_agreement;
          Alcotest.test_case "all adversaries" `Quick test_all_adversaries;
          Alcotest.test_case "inputs arity" `Quick test_inputs_arity;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_agreement ]);
    ]
