(* Unit tests for the message-validation ("justification") layer —
   the mechanism that reduces Byzantine faults to fail-stop faults. *)

module Node_id = Abc_net.Node_id
module V = Abc.Validation
module M = Abc.Consensus_msg
module Step = M.Step

let node = Node_id.of_int

let vmsg ?(decide = false) ~origin ~round ~step value =
  {
    M.origin = node origin;
    round;
    step;
    value;
    decide;
  }

(* n=4, f=1: q = 3, majority_need = 2, n/2 = 2. *)
let make ?(n = 4) ?(f = 1) ?(enabled = true) () = V.create ~n ~f ~enabled

let submit_all v msgs =
  List.fold_left
    (fun (v, acc) m ->
      let v, out = V.submit v m in
      (v, acc @ out))
    (v, []) msgs

let test_round1_step1_always_valid () =
  let v = make () in
  let _, out = V.submit v (vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One) in
  Alcotest.(check int) "validated instantly" 1 (List.length out)

let test_duplicate_slot_ignored () =
  let v = make () in
  let v, _ = V.submit v (vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One) in
  let _, out = V.submit v (vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.Zero) in
  Alcotest.(check int) "second submission for same slot dropped" 0 (List.length out)

let test_step2_requires_quorum_of_step1 () =
  let v = make () in
  let v, out =
    submit_all v
      [
        vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:1 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:0 ~round:1 ~step:Step.S2 Abc.Value.One;
      ]
  in
  (* Only 2 step-1 messages validated (< q=3): the step-2 message must
     wait. *)
  Alcotest.(check int) "two validated" 2 (List.length out);
  Alcotest.(check int) "one buffered" 1 (V.buffered_count v);
  (* The third step-1 message releases it. *)
  let _, out = V.submit v (vmsg ~origin:2 ~round:1 ~step:Step.S1 Abc.Value.One) in
  Alcotest.(check int) "cascade releases both" 2 (List.length out)

let test_step2_value_must_be_majority_possible () =
  let v = make () in
  let v, _ =
    submit_all v
      [
        vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:1 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:2 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:3 ~round:1 ~step:Step.S1 Abc.Value.One;
      ]
  in
  (* All four step-1 messages say One: a step-2 claiming Zero can never
     be the majority of any 3-subset. *)
  let v, out = V.submit v (vmsg ~origin:3 ~round:1 ~step:Step.S2 Abc.Value.Zero) in
  Alcotest.(check int) "lie stays buffered" 0 (List.length out);
  Alcotest.(check int) "buffered" 1 (V.buffered_count v);
  let _, out = V.submit v (vmsg ~origin:2 ~round:1 ~step:Step.S2 Abc.Value.One) in
  Alcotest.(check int) "truth validates" 1 (List.length out)

let test_step3_decide_needs_majority_of_n () =
  let v = make () in
  let v, _ =
    submit_all v
      [
        vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:1 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:2 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:0 ~round:1 ~step:Step.S2 Abc.Value.One;
        vmsg ~origin:1 ~round:1 ~step:Step.S2 Abc.Value.One;
      ]
  in
  (* Only 2 step-2 One-messages validated; a decide-flagged step-3
     needs more than n/2 = 2. *)
  let v, out =
    V.submit v (vmsg ~decide:true ~origin:0 ~round:1 ~step:Step.S3 Abc.Value.One)
  in
  Alcotest.(check int) "decide claim buffered" 0 (List.length out);
  let _, out = V.submit v (vmsg ~origin:2 ~round:1 ~step:Step.S2 Abc.Value.One) in
  (* Third step-2 arrives: now 3 > 2 and the buffered decide message
     cascades out together with it. *)
  Alcotest.(check int) "cascade validates decide" 2 (List.length out)

let test_step3_decide_for_minority_value_never_validates () =
  let v = make () in
  let v, _ =
    submit_all v
      [
        vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:1 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:2 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:3 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:0 ~round:1 ~step:Step.S2 Abc.Value.One;
        vmsg ~origin:1 ~round:1 ~step:Step.S2 Abc.Value.One;
        vmsg ~origin:2 ~round:1 ~step:Step.S2 Abc.Value.One;
        vmsg ~origin:3 ~round:1 ~step:Step.S2 Abc.Value.One;
      ]
  in
  let v, out =
    V.submit v (vmsg ~decide:true ~origin:3 ~round:1 ~step:Step.S3 Abc.Value.Zero)
  in
  Alcotest.(check int) "fraudulent decide rejected" 0 (List.length out);
  Alcotest.(check int) "still buffered" 1 (V.buffered_count v)

let test_next_round_adopt_rule () =
  let v = make () in
  (* Round 1 fully unanimous for One, three decide-flagged step-3s. *)
  let v, _ =
    submit_all v
      (List.concat_map
         (fun origin ->
           [
             vmsg ~origin ~round:1 ~step:Step.S1 Abc.Value.One;
             vmsg ~origin ~round:1 ~step:Step.S2 Abc.Value.One;
             vmsg ~decide:true ~origin ~round:1 ~step:Step.S3 Abc.Value.One;
           ])
         [ 0; 1; 2 ])
  in
  (* f+1 = 2 decide-messages for One exist: a round-2 claim of One is
     justified (adopt rule). *)
  let v, out = V.submit v (vmsg ~origin:0 ~round:2 ~step:Step.S1 Abc.Value.One) in
  Alcotest.(check int) "adopt-justified round-2 value" 1 (List.length out);
  (* But a round-2 claim of Zero is NOT: every 3-subset of the step-3
     messages contains 3 > f decide-One messages, so no coin was
     possible and no adopt rule supports Zero. *)
  let _, out = V.submit v (vmsg ~origin:1 ~round:2 ~step:Step.S1 Abc.Value.Zero) in
  Alcotest.(check int) "contradicting round-2 value rejected" 0 (List.length out)

let test_next_round_coin_rule () =
  let v = make () in
  (* Round 1 step 3: no decide flags at all -> coin justified, any
     value. *)
  let v, _ =
    submit_all v
      (List.concat_map
         (fun origin ->
           [
             vmsg ~origin ~round:1 ~step:Step.S1 Abc.Value.One;
             vmsg ~origin ~round:1 ~step:Step.S2 Abc.Value.One;
             vmsg ~origin ~round:1 ~step:Step.S3 Abc.Value.One;
           ])
         [ 0; 1; 2 ])
  in
  let v, out = V.submit v (vmsg ~origin:0 ~round:2 ~step:Step.S1 Abc.Value.Zero) in
  Alcotest.(check int) "coin-justified Zero accepted" 1 (List.length out);
  let _, out = V.submit v (vmsg ~origin:1 ~round:2 ~step:Step.S1 Abc.Value.One) in
  Alcotest.(check int) "coin-justified One accepted" 1 (List.length out)

let test_disabled_validation_accepts_everything () =
  let v = make ~enabled:false () in
  let _, out =
    submit_all v
      [
        vmsg ~decide:true ~origin:0 ~round:5 ~step:Step.S3 Abc.Value.Zero;
        vmsg ~origin:1 ~round:9 ~step:Step.S2 Abc.Value.One;
      ]
  in
  Alcotest.(check int) "everything validates" 2 (List.length out)

let test_validated_count () =
  let v = make () in
  let v, _ =
    submit_all v
      [
        vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One;
        vmsg ~origin:1 ~round:1 ~step:Step.S1 Abc.Value.Zero;
      ]
  in
  Alcotest.(check int) "count" 2 (V.validated_count v ~round:1 ~step:Step.S1);
  Alcotest.(check int) "other slot empty" 0 (V.validated_count v ~round:1 ~step:Step.S2)

let test_justified_exposed () =
  let v = make () in
  Alcotest.(check bool) "r1s1 justified" true
    (V.justified v (vmsg ~origin:0 ~round:1 ~step:Step.S1 Abc.Value.One));
  Alcotest.(check bool) "r1s2 not yet" false
    (V.justified v (vmsg ~origin:0 ~round:1 ~step:Step.S2 Abc.Value.One))

(* Property: validation never validates a decide-flagged message for a
   value without majority step-2 support, no matter the submission
   order. *)
let prop_no_fraudulent_decide =
  QCheck.Test.make ~name:"decide flags always majority-backed" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Abc_prng.Stream.root ~seed in
      (* Honest messages for One, a Byzantine decide for Zero, shuffled. *)
      let honest =
        List.concat_map
          (fun origin ->
            [
              vmsg ~origin ~round:1 ~step:Step.S1 Abc.Value.One;
              vmsg ~origin ~round:1 ~step:Step.S2 Abc.Value.One;
            ])
          [ 0; 1; 2 ]
      in
      let attack = vmsg ~decide:true ~origin:3 ~round:1 ~step:Step.S3 Abc.Value.Zero in
      let messages = Array.of_list (attack :: honest) in
      Abc_prng.Stream.shuffle_in_place rng messages;
      let _, validated = submit_all (make ()) (Array.to_list messages) in
      not
        (List.exists
           (fun (m : M.vmsg) -> m.M.decide && Abc.Value.equal m.M.value Abc.Value.Zero)
           validated))

let () =
  Alcotest.run "validation"
    [
      ( "rules",
        [
          Alcotest.test_case "round-1 step-1 always valid" `Quick
            test_round1_step1_always_valid;
          Alcotest.test_case "duplicate slot ignored" `Quick test_duplicate_slot_ignored;
          Alcotest.test_case "step-2 needs step-1 quorum" `Quick
            test_step2_requires_quorum_of_step1;
          Alcotest.test_case "step-2 majority possibility" `Quick
            test_step2_value_must_be_majority_possible;
          Alcotest.test_case "decide needs >n/2 step-2" `Quick
            test_step3_decide_needs_majority_of_n;
          Alcotest.test_case "fraudulent decide never validates" `Quick
            test_step3_decide_for_minority_value_never_validates;
          Alcotest.test_case "next-round adopt rule" `Quick test_next_round_adopt_rule;
          Alcotest.test_case "next-round coin rule" `Quick test_next_round_coin_rule;
          Alcotest.test_case "disabled accepts everything" `Quick
            test_disabled_validation_accepts_everything;
          Alcotest.test_case "validated_count" `Quick test_validated_count;
          Alcotest.test_case "justified exposed" `Quick test_justified_exposed;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_no_fraudulent_decide ]);
    ]
