(* Shared machinery for the experiment harness: protocol runners and
   samplers used by every table in main.ml. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Summary = Abc_sim.Summary
module Table = Abc_sim.Table
module Pool = Abc_exec.Pool
module B = Abc.Bracha_consensus
module BO = Abc.Ben_or

module BH = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

module BOH = Abc.Harness.Make (struct
  include BO

  let value_of_input = BO.value_of_input
end)

let node = Node_id.of_int

let bracha_max_f n = (n - 1) / 3

let benor_max_f n = (n - 1) / 5

(* Input patterns *)

let unanimous n v = Array.make n v

let split_inputs n =
  Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)

(* Fault batteries: the highest-numbered [count] nodes misbehave. *)

let tail_faults ~n ~count behaviour =
  List.init count (fun k -> (node (n - 1 - k), behaviour))

type fault_kind = No_fault | Silent | Crash | Flip | Equivocate | Force_decide

let fault_label = function
  | No_fault -> "none"
  | Silent -> "silent"
  | Crash -> "crash"
  | Flip -> "flip"
  | Equivocate -> "equivocate"
  | Force_decide -> "force-d"

let bracha_faults ~n ~count kind =
  match kind with
  | No_fault -> []
  | Silent -> tail_faults ~n ~count Behaviour.Silent
  | Crash -> tail_faults ~n ~count (Behaviour.Crash_after 5)
  | Flip -> tail_faults ~n ~count (Behaviour.Mutate B.Fault.flip_value)
  | Equivocate ->
    tail_faults ~n ~count (Behaviour.Equivocate (B.Fault.equivocate_by_half ~n))
  | Force_decide -> tail_faults ~n ~count (Behaviour.Mutate B.Fault.force_decide)

(* The hardest fault placement we found empirically: bit-flipping liars
   split across the two input halves, so each half hears amplified
   support for the other half's value and the honest nodes stay in
   disagreement until coins align. *)
let balanced_flip_liars ~n ~count =
  List.init count (fun k ->
      let id = if k mod 2 = 0 then k / 2 else n - 1 - (k / 2) in
      (node id, Behaviour.Mutate B.Fault.flip_value))

let benor_faults ~n ~count kind =
  match kind with
  | No_fault -> []
  | Silent -> tail_faults ~n ~count Behaviour.Silent
  | Crash -> tail_faults ~n ~count (Behaviour.Crash_after 5)
  | Flip | Force_decide -> tail_faults ~n ~count (Behaviour.Mutate BO.Fault.flip_value)
  | Equivocate ->
    tail_faults ~n ~count (Behaviour.Equivocate (BO.Fault.equivocate_by_half ~n))

(* Runners.  All runs are capped so that liveness failures (expected
   when sweeping past resilience bounds) terminate quickly. *)

let run_bracha ?(options = B.Options.default) ?(adversary = Adversary.uniform)
    ?(faulty = []) ?max_deliveries ~n ~f ~seed values =
  let inputs = B.inputs ~n ~options values in
  let config =
    BH.E.config ~n ~f ~inputs ~faulty ~adversary ~seed ?max_deliveries ()
  in
  snd (BH.run config)

let run_benor ?(mode = BO.Mode.Byzantine) ?(coin = Abc.Coin.local)
    ?(adversary = Adversary.uniform) ?(faulty = []) ?max_deliveries ~n ~f ~seed
    values =
  let inputs = BO.inputs ~n ~mode ~coin values in
  let config =
    BOH.E.config ~n ~f ~inputs ~faulty ~adversary ~seed ?max_deliveries ()
  in
  snd (BOH.run config)

(* Sampling helpers *)

(* Run one job per seed on the pool and return the per-seed results in
   seed order.  The job closure must build all engine/PRNG/trace state
   itself (the runners above do: Engine.run allocates everything per
   call from the seed), so nothing is shared across domains and the
   merged list is byte-identical at any worker count. *)
let sweep_seeds pool ~seeds f = Array.to_list (Pool.map pool seeds f)

type sample = {
  ok_rate : float;
  rounds : Summary.t option; (* over successful runs *)
  messages : Summary.t option;
  durations : Summary.t option;
}

let collect verdicts =
  let oks = List.filter Abc.Harness.ok verdicts in
  let pick f = Summary.of_list (List.map f oks) in
  {
    ok_rate = float_of_int (List.length oks) /. float_of_int (List.length verdicts);
    rounds = pick (fun v -> float_of_int v.Abc.Harness.max_round);
    messages = pick (fun v -> float_of_int v.Abc.Harness.messages);
    durations = pick (fun v -> float_of_int v.Abc.Harness.duration);
  }

let sample_bracha ?options ?adversary ?faulty ?max_deliveries ~pool ~n ~f ~seeds
    values =
  collect
    (sweep_seeds pool ~seeds (fun seed ->
         run_bracha ?options ?adversary ?faulty ?max_deliveries ~n ~f ~seed values))

let sample_benor ?mode ?coin ?adversary ?faulty ?max_deliveries ~pool ~n ~f ~seeds
    values =
  collect
    (sweep_seeds pool ~seeds (fun seed ->
         run_benor ?mode ?coin ?adversary ?faulty ?max_deliveries ~n ~f ~seed values))

let mean_or summary default =
  match summary with Some s -> Summary.mean s | None -> default

let p95_or summary default =
  match summary with Some s -> Summary.percentile s 95. | None -> default

let max_or summary default =
  match summary with Some s -> Summary.max_value s | None -> default

(* Log-log slope fit for complexity experiments: least squares on
   (log n, log y). *)
let fitted_exponent points =
  let logs = List.map (fun (n, y) -> (log (float_of_int n), log y)) points in
  let k = float_of_int (List.length logs) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. logs in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. logs in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. logs in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. logs in
  ((k *. sxy) -. (sx *. sy)) /. ((k *. sxx) -. (sx *. sx))
