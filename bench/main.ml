(* Experiment harness: regenerates every table/figure of the
   reproduction (EXPERIMENTS.md records paper-vs-measured).

     dune exec bench/main.exe              # all experiment tables + microbench
     dune exec bench/main.exe -- E3 E6     # selected experiments
     dune exec bench/main.exe -- quick     # reduced seed counts (CI)
     dune exec bench/main.exe -- csv       # also write bench_results/*.csv

   The 1984 paper proves theorems rather than reporting measurements;
   each experiment operationalizes one theorem-level claim (see
   DESIGN.md for the mapping). *)

open Helpers

let seeds_scale = ref 1.

let scaled k = max 2 (int_of_float (float_of_int k *. !seeds_scale))

(* ----------------------------------------------------------------- *)
(* E1: reliable broadcast correctness (validity/agreement/totality)  *)
(* ----------------------------------------------------------------- *)

module Rbc = Abc.Bracha_rbc.Binary
module RbcE = Abc_net.Engine.Make (Rbc)
module Matrix_spec = Abc_matrix.Spec
module Matrix_runner = Abc_matrix.Runner

(* E1 and E14 are driven by their committed scenario specs — the same
   files `abc-bench run` executes, so the harness and the CI bench
   gate cannot drift apart.  Spec seed counts are the quick-tier
   baseline and are NOT scaled by the `quick` arg: the committed
   BENCH_MATRIX baselines are a function of the spec file alone.
   Expected verdicts play the role the inline assertions play in
   E16-E18: any cell missing its verdict aborts the harness. *)
let matrix_spec path =
  match Matrix_spec.load path with
  | Ok spec -> spec
  | Error e -> failwith (Abc_matrix.Sexp.error_to_string e)

let run_matrix_spec pool path =
  let spec = matrix_spec path in
  let result = Matrix_runner.run ~pool spec in
  Table.print (Matrix_runner.table result);
  if not (Matrix_runner.passed result) then
    failwith
      (Printf.sprintf "%s: %d matrix cell(s) missed their expected verdict"
         (Matrix_spec.id spec)
         (List.length (Matrix_runner.failures result)));
  print_newline ()

let experiment_e1 pool = run_matrix_spec pool "bench/specs/e1.matrix"

(* ----------------------------------------------------------------- *)
(* E2: resilience boundary — Bracha (n>3f) vs Ben-Or (n>5f)          *)
(* ----------------------------------------------------------------- *)

let experiment_e2 pool =
  let n = 16 in
  let seeds = scaled 12 in
  let table =
    Table.create ~id:"e2"
      ~title:
        (Printf.sprintf
           "E2. Resilience sweep at n=%d, flip-value Byzantine faults (ok%% over %d \
            seeds; Bracha bound f<=%d, Ben-Or bound f<=%d)"
           n seeds (bracha_max_f n) (benor_max_f n))
      ~columns:[ "f (actual faults)"; "bracha ok"; "ben-or ok" ]
      ()
  in
  (* Cap deliveries so liveness failures beyond the bound return fast. *)
  let cap = 400_000 in
  List.iter
    (fun f ->
      let values = split_inputs n in
      let bracha =
        sample_bracha
          ~faulty:(bracha_faults ~n ~count:f Flip)
          ~max_deliveries:cap ~pool ~n ~f ~seeds values
      in
      let benor =
        sample_benor
          ~faulty:(benor_faults ~n ~count:f Flip)
          ~max_deliveries:cap ~pool ~n ~f ~seeds values
      in
      Table.add_row table
        [
          Table.cell_int f;
          Table.cell_percent bracha.ok_rate;
          Table.cell_percent benor.ok_rate;
        ])
    [ 0; 1; 2; 3; 4; 5 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E3: rounds to decide vs n at maximum resilience (local coin)      *)
(* ----------------------------------------------------------------- *)

let experiment_e3 pool =
  let seeds = scaled 30 in
  let table =
    Table.create ~id:"e3"
      ~title:
        (Printf.sprintf
           "E3. Rounds to decide, f=max, split inputs, balanced flip liars, split \
            scheduler (local coin, %d seeds)"
           seeds)
      ~columns:[ "n"; "f"; "mean rounds"; "p95"; "max"; "mean msgs" ]
      ()
  in
  List.iter
    (fun n ->
      let f = bracha_max_f n in
      let s =
        sample_bracha
          ~adversary:(Adversary.split ~n)
          ~faulty:(balanced_flip_liars ~n ~count:f)
          ~pool ~n ~f ~seeds (split_inputs n)
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_float (mean_or s.rounds 0.);
          Table.cell_float ~decimals:0 (p95_or s.rounds 0.);
          Table.cell_float ~decimals:0 (max_or s.rounds 0.);
          Table.cell_float ~decimals:0 (mean_or s.messages 0.);
        ])
    [ 4; 8; 12; 16 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E4: constant expected rounds when f = O(sqrt n)                   *)
(* ----------------------------------------------------------------- *)

let experiment_e4 pool =
  let seeds = scaled 20 in
  let table =
    Table.create ~id:"e4"
      ~title:
        (Printf.sprintf
           "E4. Rounds with f=floor(sqrt n) — same faults/scheduler as E3 but fewer \
            liars (local coin, %d seeds)"
           seeds)
      ~columns:[ "n"; "f=sqrt(n)"; "f_max"; "mean rounds"; "p95"; "max" ]
      ()
  in
  List.iter
    (fun n ->
      let f = int_of_float (sqrt (float_of_int n)) in
      assert (n > 3 * f);
      let s =
        sample_bracha
          ~adversary:(Adversary.split ~n)
          ~faulty:(balanced_flip_liars ~n ~count:f)
          ~pool ~n ~f ~seeds (split_inputs n)
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_int (bracha_max_f n);
          Table.cell_float (mean_or s.rounds 0.);
          Table.cell_float ~decimals:0 (p95_or s.rounds 0.);
          Table.cell_float ~decimals:0 (max_or s.rounds 0.);
        ])
    [ 16; 25; 36 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E5: message complexity — O(n^2) per RBC, O(n^3) per round         *)
(* ----------------------------------------------------------------- *)

let experiment_e5 _pool =
  let table =
    Table.create ~id:"e5"
      ~title:
        "E5. Message complexity (honest runs, fifo scheduler; consensus msgs \
         normalized per round)"
      ~columns:
        [ "n"; "rbc msgs"; "rbc/n^2"; "consensus msgs/round"; "consensus/(n^3)" ]
      ()
  in
  let rbc_points = ref [] and cons_points = ref [] in
  List.iter
    (fun n ->
      let f = bracha_max_f n in
      (* one RBC *)
      let config =
        RbcE.config ~n ~f
          ~inputs:(Rbc.inputs ~n ~sender:(node 0) Abc.Value.One)
          ~adversary:Adversary.fifo ~seed:0 ()
      in
      let rbc_result = RbcE.run config in
      let rbc_msgs = Abc_sim.Metrics.counter rbc_result.RbcE.metrics "sent" in
      (* one consensus, unanimous so it ends in one round *)
      let v = run_bracha ~adversary:Adversary.fifo ~n ~f ~seed:0 (unanimous n Abc.Value.One) in
      let per_round =
        float_of_int v.Abc.Harness.messages
        /. float_of_int (max 1 v.Abc.Harness.max_round + 1)
      in
      rbc_points := (n, float_of_int rbc_msgs) :: !rbc_points;
      cons_points := (n, per_round) :: !cons_points;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int rbc_msgs;
          Table.cell_float (float_of_int rbc_msgs /. float_of_int (n * n));
          Table.cell_float ~decimals:0 per_round;
          Table.cell_float (per_round /. float_of_int (n * n * n));
        ])
    [ 4; 7; 10; 13; 16; 22 ];
  Table.print table;
  Printf.printf "fitted exponents: rbc %.2f (theory 2), consensus %.2f (theory 3)\n\n"
    (fitted_exponent !rbc_points)
    (fitted_exponent !cons_points)

(* ----------------------------------------------------------------- *)
(* E6: local coin vs common coin                                     *)
(* ----------------------------------------------------------------- *)

let experiment_e6 pool =
  let seeds = scaled 40 in
  let table =
    Table.create ~id:"e6"
      ~title:
        (Printf.sprintf
           "E6. Coin comparison: rounds to decide (split inputs, flip faults, split \
            scheduler, %d seeds)"
           seeds)
      ~columns:
        [ "n"; "f"; "local mean"; "local p95"; "local max"; "common mean";
          "common p95"; "common max" ]
      ()
  in
  List.iter
    (fun n ->
      let f = bracha_max_f n in
      let faulty = balanced_flip_liars ~n ~count:f in
      let adversary = Adversary.split ~n in
      let local =
        sample_bracha ~adversary ~faulty ~pool ~n ~f ~seeds (split_inputs n)
      in
      let common =
        sample_bracha
          ~options:(B.Options.with_common_coin ~seed:7)
          ~adversary ~faulty ~pool ~n ~f ~seeds (split_inputs n)
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_float (mean_or local.rounds 0.);
          Table.cell_float ~decimals:0 (p95_or local.rounds 0.);
          Table.cell_float ~decimals:0 (max_or local.rounds 0.);
          Table.cell_float (mean_or common.rounds 0.);
          Table.cell_float ~decimals:0 (p95_or common.rounds 0.);
          Table.cell_float ~decimals:0 (max_or common.rounds 0.);
        ])
    [ 4; 8; 13; 16 ];
  Table.print table;
  (* Full distributions at n=16: the tail is the story. *)
  let n = 16 in
  let f = bracha_max_f n in
  let faulty = balanced_flip_liars ~n ~count:f in
  let adversary = Adversary.split ~n in
  let rounds options =
    (* Runs fan out over the pool; the histogram is filled from the
       merged seed-ordered list so buckets never depend on scheduling. *)
    let h = Abc_sim.Histogram.create () in
    sweep_seeds pool ~seeds (fun seed ->
        run_bracha ~options ~adversary ~faulty ~n ~f ~seed (split_inputs n))
    |> List.iter (fun v ->
           if Abc.Harness.ok v then Abc_sim.Histogram.add h v.Abc.Harness.max_round);
    h
  in
  Printf.printf "rounds-to-decide distribution at n=16 (local coin):\n%s"
    (Abc_sim.Histogram.render (rounds B.Options.default));
  Printf.printf "rounds-to-decide distribution at n=16 (common coin):\n%s\n"
    (Abc_sim.Histogram.render (rounds (B.Options.with_common_coin ~seed:7)));
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E7: validation / reliable-broadcast ablation                      *)
(* ----------------------------------------------------------------- *)

let experiment_e7 pool =
  let n = 7 and f = 2 in
  let seeds = scaled 30 in
  let table =
    Table.create ~id:"e7"
      ~title:
        (Printf.sprintf
           "E7. Ablation at n=%d f=%d under force-decide + flip liars (ok%% over %d \
            seeds)"
           n f seeds)
      ~columns:[ "transport"; "validation"; "ok"; "mean rounds (ok runs)" ]
      ()
  in
  let faulty =
    [
      (node (n - 1), Behaviour.Mutate B.Fault.force_decide);
      (node (n - 2), Behaviour.Mutate B.Fault.flip_value);
    ]
  in
  let cap = 300_000 in
  List.iter
    (fun (transport, transport_label) ->
      List.iter
        (fun validation ->
          let options = { B.Options.default with B.Options.transport; validation } in
          let s =
            sample_bracha ~options ~faulty ~max_deliveries:cap ~pool ~n ~f ~seeds
              (unanimous n Abc.Value.Zero)
          in
          Table.add_row table
            [
              transport_label;
              (if validation then "on" else "off");
              Table.cell_percent s.ok_rate;
              Table.cell_float (mean_or s.rounds 0.);
            ])
        [ true; false ])
    [ (B.Options.Reliable, "rbc"); (B.Options.Plain, "plain") ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E9: replicated-log throughput                                     *)
(* ----------------------------------------------------------------- *)

module Log = Abc_smr.Replicated_log
module LogE = Abc_net.Engine.Make (Log)

let experiment_e9 pool =
  let seeds = scaled 5 in
  let slots = 3 in
  let table =
    Table.create ~id:"e9"
      ~title:
        (Printf.sprintf
           "E9. Replicated log: %d slots, one silent Byzantine replica (%d seeds)"
           slots seeds)
      ~columns:
        [ "n"; "f"; "commands"; "messages"; "virtual time"; "msgs/command";
          "time/command" ]
      ()
  in
  List.iter
    (fun n ->
      let f = bracha_max_f n in
      let commands = ref 0 and msgs = ref 0 and time = ref 0 in
      sweep_seeds pool ~seeds (fun seed ->
          let config =
            LogE.config ~n ~f
              ~inputs:
                (Log.inputs ~n ~slots ~coin:Abc.Coin.local (fun i k ->
                     Printf.sprintf "cmd-%d.%d" i k))
              ~faulty:[ (node (n - 1), Behaviour.Silent) ]
              ~adversary:Adversary.uniform ~seed ()
          in
          let result = LogE.run config in
          let cmds =
            match Log.log_of_outputs result.LogE.outputs.(0) with
            | Some log -> List.length log
            | None -> 0
          in
          (cmds, Abc_sim.Metrics.counter result.LogE.metrics "sent",
           result.LogE.duration))
      |> List.iter (fun (cmds, sent, duration) ->
             commands := !commands + cmds;
             msgs := !msgs + sent;
             time := !time + duration);
      let per_cmd v = float_of_int v /. float_of_int (max 1 !commands) in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_int !commands;
          Table.cell_int !msgs;
          Table.cell_int !time;
          Table.cell_float (per_cmd !msgs);
          Table.cell_float (per_cmd !time);
        ])
    [ 4; 7 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E8: wall-clock microbenchmarks (Bechamel)                         *)
(* ----------------------------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let rbc_handle =
    (* cost of processing one echo in a warm instance *)
    let state = ref (Rbc.Core.create ~n:7 ~f:2 ~sender:(node 0)) in
    let s0, _, _ = Rbc.Core.handle !state ~src:(node 1) (Rbc.Core.Echo Abc.Value.One) in
    state := s0;
    Test.make ~name:"rbc_core.handle(echo)"
      (Staged.stage (fun () ->
           ignore (Rbc.Core.handle !state ~src:(node 2) (Rbc.Core.Echo Abc.Value.One))))
  in
  let validation_submit =
    Test.make ~name:"validation.submit(r1s1)"
      (Staged.stage (fun () ->
           let v = Abc.Validation.create ~n:7 ~f:2 ~enabled:true in
           ignore
             (Abc.Validation.submit v
                {
                  Abc.Consensus_msg.origin = node 1;
                  round = 1;
                  step = Abc.Consensus_msg.Step.S1;
                  value = Abc.Value.One;
                  decide = false;
                })))
  in
  let full_rbc_run =
    Test.make ~name:"full rbc run (n=7, f=2)"
      (Staged.stage (fun () ->
           let config =
             RbcE.config ~n:7 ~f:2
               ~inputs:(Rbc.inputs ~n:7 ~sender:(node 0) Abc.Value.One)
               ~seed:1 ()
           in
           ignore (RbcE.run config)))
  in
  let full_consensus_run =
    Test.make ~name:"full consensus run (n=4, f=1)"
      (Staged.stage (fun () ->
           ignore (run_bracha ~n:4 ~f:1 ~seed:1 (split_inputs 4))))
  in
  let full_benor_run =
    Test.make ~name:"full ben-or run (n=6, f=1)"
      (Staged.stage (fun () ->
           ignore (run_benor ~n:6 ~f:1 ~seed:1 (split_inputs 6))))
  in
  Test.make_grouped ~name:"abc"
    [ rbc_handle; validation_submit; full_rbc_run; full_consensus_run; full_benor_run ]

let experiment_e8 _pool =
  let open Bechamel in
  let open Toolkit in
  print_endline "E8. Wall-clock microbenchmarks (ns/run, OLS fit)";
  print_endline "================================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E10: 1984 vs 2014 — Bracha vs MMR, and what the common coin buys   *)
(* ----------------------------------------------------------------- *)

module Mmr = Abc.Mmr_consensus

module MmrH = Abc.Harness.Make (struct
  include Mmr

  let value_of_input = Mmr.value_of_input
end)

let run_mmr ?(coin = Abc.Coin.common ~seed:7) ?(adversary = Adversary.uniform)
    ?(faulty = []) ~n ~f ~seed values =
  let inputs = Mmr.inputs ~n ~coin values in
  snd (MmrH.run (MmrH.E.config ~n ~f ~inputs ~faulty ~adversary ~seed ()))

let experiment_e10 pool =
  let seeds = scaled 25 in
  let table =
    Table.create ~id:"e10"
      ~title:
        (Printf.sprintf
           "E10. Bracha (1984, local coin) vs MMR (2014, common coin): split inputs, \
            f flip liars, split scheduler (%d seeds)"
           seeds)
      ~columns:
        [ "n"; "f"; "bracha rounds"; "bracha msgs"; "mmr rounds"; "mmr msgs";
          "msg ratio" ]
      ()
  in
  List.iter
    (fun n ->
      let f = bracha_max_f n in
      let adversary = Adversary.split ~n in
      let bracha =
        sample_bracha ~adversary
          ~faulty:(balanced_flip_liars ~n ~count:f)
          ~pool ~n ~f ~seeds (split_inputs n)
      in
      let mmr_faulty =
        List.init f (fun k ->
            let id = if k mod 2 = 0 then k / 2 else n - 1 - (k / 2) in
            (node id, Behaviour.Mutate Mmr.Fault.flip_value))
      in
      let mmr =
        collect
          (sweep_seeds pool ~seeds (fun seed ->
               run_mmr ~adversary ~faulty:mmr_faulty ~n ~f ~seed (split_inputs n)))
      in
      let ratio = mean_or bracha.messages 0. /. mean_or mmr.messages 1. in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_float (mean_or bracha.rounds 0.);
          Table.cell_float ~decimals:0 (mean_or bracha.messages 0.);
          Table.cell_float (mean_or mmr.rounds 0.);
          Table.cell_float ~decimals:0 (mean_or mmr.messages 0.);
          Table.cell_ratio ratio;
        ])
    [ 4; 8; 16 ];
  Table.print table;
  (* The safety ablation: MMR with a local coin loses agreement. *)
  let seeds = scaled 40 in
  let violations coin =
    sweep_seeds pool ~seeds (fun seed ->
        let v = run_mmr ~coin ~n:7 ~f:2 ~seed (split_inputs 7) in
        not (v.Abc.Harness.agreement && v.Abc.Harness.validity))
    |> List.filter (fun violated -> violated)
    |> List.length
  in
  Printf.printf
    "coin safety ablation (n=7, f=2, split inputs, %d seeds):\n\
    \  common coin: %d agreement/validity violations\n\
    \  local coin:  %d agreement/validity violations  <- the common coin is a\n\
    \               safety requirement in MMR, unlike in Bracha's protocol\n\n"
    seeds
    (violations (Abc.Coin.common ~seed:7))
    (violations Abc.Coin.local)

(* ----------------------------------------------------------------- *)
(* E11: the price of implementing the coin — idealized vs Rabin      *)
(* ----------------------------------------------------------------- *)

let experiment_e11 pool =
  let seeds = scaled 25 in
  let table =
    Table.create ~id:"e11"
      ~title:
        (Printf.sprintf
           "E11. MMR with idealized common coin vs implemented Rabin coin (share \
            exchange on the wire): split inputs, two silent faults (%d seeds)"
           seeds)
      ~columns:
        [ "n"; "f"; "ideal rounds"; "ideal msgs"; "rabin rounds"; "rabin msgs";
          "share msgs"; "overhead" ]
      ()
  in
  List.iter
    (fun n ->
      let f = bracha_max_f n in
      let faulty =
        if f = 0 then []
        else if f = 1 then [ (node (n - 1), Behaviour.Silent) ]
        else [ (node (n - 1), Behaviour.Silent); (node (n - 2), Behaviour.Silent) ]
      in
      let sample inputs =
        let runs =
          sweep_seeds pool ~seeds (fun seed ->
              let cfg =
                MmrH.E.config ~n ~f ~inputs ~faulty ~adversary:Adversary.uniform
                  ~seed ()
              in
              MmrH.run cfg)
        in
        let verdicts = List.map snd runs in
        let share_msgs =
          List.fold_left
            (fun acc (result, _) ->
              acc + Abc_sim.Metrics.counter result.MmrH.E.metrics "sent.share")
            0 runs
        in
        (collect verdicts, float_of_int share_msgs /. float_of_int seeds)
      in
      let ideal, _ =
        sample (Mmr.inputs ~n ~coin:(Abc.Coin.common ~seed:7) (split_inputs n))
      in
      let rabin, share_msgs =
        sample (Mmr.inputs_with_shared_coin ~n ~f ~seed:7 (split_inputs n))
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_float (mean_or ideal.rounds 0.);
          Table.cell_float ~decimals:0 (mean_or ideal.messages 0.);
          Table.cell_float (mean_or rabin.rounds 0.);
          Table.cell_float ~decimals:0 (mean_or rabin.messages 0.);
          Table.cell_float ~decimals:0 share_msgs;
          Table.cell_ratio (mean_or rabin.messages 1. /. mean_or ideal.messages 1.);
        ])
    [ 4; 7; 16 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E12: connectivity threshold for agreement over flooding            *)
(* ----------------------------------------------------------------- *)

module Topology = Abc_net.Topology
module Relayed_mmr = Abc_net.Relay.Make (Mmr)

module RMH = Abc.Harness.Make (struct
  include Relayed_mmr

  let value_of_input = Mmr.value_of_input
end)

let experiment_e12 pool =
  let n = 8 in
  let f = 2 in
  let seeds = scaled 10 in
  let table =
    Table.create ~id:"e12"
      ~title:
        (Printf.sprintf
           "E12. Agreement over flood relaying vs vertex connectivity (n=%d, f=%d \
            crash faults at a worst-case cut, common coin, %d seeds; survival needs \
            κ > f at the cut)"
           n f seeds)
      ~columns:
        [ "graph"; "κ"; "crashes"; "survivors connected"; "ok"; "mean msgs" ]
      ()
  in
  let cut = [ 1; 5 ] in
  let graphs =
    [
      ("ring C8(1)", Topology.circulant ~n ~offsets:[ 1 ]);
      ("C8(1,2)", Topology.circulant ~n ~offsets:[ 1; 2 ]);
      ("C8(1,2,3)", Topology.circulant ~n ~offsets:[ 1; 2; 3 ]);
      ("complete K8", Topology.complete ~n);
    ]
  in
  List.iter
    (fun (label, g) ->
      let faulty =
        List.map (fun i -> (node i, Behaviour.Crash_after 0)) cut
      in
      let verdicts =
        sweep_seeds pool ~seeds (fun seed ->
            let values = split_inputs n in
            let inputs = Mmr.inputs ~n ~coin:(Abc.Coin.common ~seed:7) values in
            let cfg =
              RMH.E.config ~n ~f ~inputs ~faulty ~topology:g
                ~adversary:Adversary.uniform ~seed ~max_deliveries:400_000 ()
            in
            snd (RMH.run cfg))
      in
      let s = collect verdicts in
      Table.add_row table
        [
          label;
          Table.cell_int (Topology.vertex_connectivity g);
          String.concat "," (List.map string_of_int cut);
          (if Topology.connected_after_removing g (List.map node cut) then "yes"
           else "no");
          Table.cell_percent s.ok_rate;
          Table.cell_float ~decimals:0 (mean_or s.messages 0.);
        ])
    graphs;
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E13: two roads to multivalued consensus — Turpin-Coan vs ACS       *)
(* ----------------------------------------------------------------- *)

module Tc = Abc.Turpin_coan.Make (Abc.Payloads.Int_payload)
module TcE = Abc_net.Engine.Make (Tc)
module Mv = Abc.Multivalued.Make (Abc.Payloads.Int_payload)
module MvE = Abc_net.Engine.Make (Mv)

let experiment_e13 pool =
  let seeds = scaled 10 in
  let table =
    Table.create ~id:"e13"
      ~title:
        (Printf.sprintf
           "E13. Multivalued consensus: Turpin-Coan reduction (1 BA, n>4f) vs \
            ACS (n BAs, n>3f); near-unanimous inputs, one silent fault (%d seeds)"
           seeds)
      ~columns:
        [ "n"; "tc f"; "acs f"; "tc msgs"; "acs msgs"; "acs/tc"; "tc agreed";
          "acs agreed" ]
      ()
  in
  List.iter
    (fun n ->
      let tc_f = (n - 1) / 4 in
      let acs_f = bracha_max_f n in
      let proposals = Array.init n (fun i -> if i = 0 then 9 else 5) in
      let tc_faulty = [ (node (n - 1), Behaviour.Silent) ] in
      let acs_faulty = [ (node (n - 1), Behaviour.Silent) ] in
      let tc_msgs = ref 0 and tc_agreed = ref 0 in
      let acs_msgs = ref 0 and acs_agreed = ref 0 in
      sweep_seeds pool ~seeds (fun seed ->
          let tc_result =
            TcE.run
              (TcE.config ~n ~f:tc_f
                 ~inputs:(Tc.inputs ~n ~coin:Abc.Coin.local proposals)
                 ~faulty:tc_faulty ~adversary:Adversary.uniform ~seed ())
          in
          let tc_ok =
            match tc_result.TcE.outputs.(0) with
            | [ (_, Tc.Agreed _) ] -> true
            | _ -> false
          in
          let acs_result =
            MvE.run
              (MvE.config ~n ~f:acs_f
                 ~inputs:(Mv.inputs ~n ~coin:Abc.Coin.local proposals)
                 ~faulty:acs_faulty ~adversary:Adversary.uniform ~seed ())
          in
          let acs_ok =
            match acs_result.MvE.outputs.(0) with [ (_, _) ] -> true | _ -> false
          in
          ( Abc_sim.Metrics.counter tc_result.TcE.metrics "sent", tc_ok,
            Abc_sim.Metrics.counter acs_result.MvE.metrics "sent", acs_ok ))
      |> List.iter (fun (tc_sent, tc_ok, acs_sent, acs_ok) ->
             tc_msgs := !tc_msgs + tc_sent;
             if tc_ok then incr tc_agreed;
             acs_msgs := !acs_msgs + acs_sent;
             if acs_ok then incr acs_agreed);
      let per_seed v = float_of_int v /. float_of_int seeds in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int tc_f;
          Table.cell_int acs_f;
          Table.cell_float ~decimals:0 (per_seed !tc_msgs);
          Table.cell_float ~decimals:0 (per_seed !acs_msgs);
          Table.cell_ratio (float_of_int !acs_msgs /. float_of_int (max 1 !tc_msgs));
          Table.cell_percent (per_seed !tc_agreed);
          Table.cell_percent (per_seed !acs_agreed);
        ])
    [ 5; 9; 13 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E14: lossy links — raw Bracha vs the reliable-channel transport    *)
(* ----------------------------------------------------------------- *)

module BRL = Abc_net.Reliable_link.Make (B)

module BRLH = Abc.Harness.Make (struct
  include BRL

  let value_of_input = B.value_of_input
end)

(* The paper's network is reliable by assumption; this experiment
   measures what that assumption is worth.  Raw Bracha over a lossy
   network goes quiescent once a quorum message is dropped (no node
   ever re-sends), while the same protocol behind [Reliable_link]
   masks loss with acks and timer-driven retransmission and keeps
   deciding — at a bounded retransmission cost.  Expressed as the
   committed scenario spec: raw cells at positive loss are annotated
   expect-fail, reliable-link cells must decide at every loss rate. *)
let experiment_e14 pool = run_matrix_spec pool "bench/specs/e14.matrix"

(* ----------------------------------------------------------------- *)
(* E15: sweep throughput vs worker count, with a determinism check    *)
(* ----------------------------------------------------------------- *)

(* The sweep scaling experiment: expand the committed E1 scenario spec
   at jobs ∈ {1, 2, 4, 8} and report seeds/sec.  The rendered CSV must
   be byte-identical to the jobs=1 output at every worker count — that
   is the pool's determinism contract, asserted here over the matrix
   runner and again by the CI jobs-matrix on abc-bench's JSON output.
   Wall-clock speedup tracks the host's core count; on a single-core
   runner every row measures ~1x, which is itself the jobs=1 fallback
   working. *)
let experiment_e15 _pool =
  let spec = matrix_spec "bench/specs/e1.matrix" in
  let cells = Matrix_spec.expand spec in
  let total_seeds =
    List.fold_left
      (fun acc cell -> acc + Matrix_spec.find_int cell "seeds" ~default:10)
      0 cells
  in
  let slice jobs =
    let pool = Abc_exec.Pool.create ~jobs () in
    Table.csv (Matrix_runner.table (Matrix_runner.run ~pool spec))
  in
  let table =
    Table.create ~id:"e15"
      ~title:
        (Printf.sprintf
           "E15. Parallel sweep throughput over the E1 matrix spec (%d cells, \
            %d runs; host reports %d recommended domains)"
           (List.length cells) total_seeds
           (Domain.recommended_domain_count ()))
      ~columns:[ "jobs"; "seconds"; "seeds/sec"; "speedup"; "csv = jobs1" ]
      ()
  in
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    let csv = slice jobs in
    let dt = Unix.gettimeofday () -. t0 in
    (csv, dt)
  in
  let reference_csv, t1 = timed 1 in
  let row jobs (csv, dt) =
    Table.add_row table
      [
        Table.cell_int jobs;
        Table.cell_float ~decimals:3 dt;
        Table.cell_float ~decimals:0 (float_of_int total_seeds /. dt);
        Table.cell_ratio (t1 /. dt);
        (if String.equal csv reference_csv then "yes" else "DIVERGED");
      ]
  in
  row 1 (reference_csv, t1);
  List.iter (fun jobs -> row jobs (timed jobs)) [ 2; 4; 8 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E16: bandwidth — per-node bytes vs payload size per broadcast      *)
(* ----------------------------------------------------------------- *)

(* Byte-level bandwidth of the three reliable broadcasts, from the
   engine's bytes.sent counters (trace schema v3).  Bracha floods the
   full payload in all three phases: O(n |m|) bytes per node.  The
   erasure-coded dispersal carries one |m|/(n-2f) Reed-Solomon
   fragment plus a Merkle branch per message: O(|m| + n log n) per
   node.  Imbs-Raynal still floods the full payload but drops one of
   the three phases (and tolerates only f < n/5, so it runs at its own
   maximal f).  Acceptance claim asserted here: coded per-node bytes
   strictly below Bracha at every payload >= 16 KiB for every n. *)

module Bracha_str = Abc.Bracha_rbc.Make (Abc.Payloads.String_payload)
module Ir_str = Abc.Ir_rbc.Make (Abc.Payloads.String_payload)
module BrsE = Abc_net.Engine.Make (Bracha_str)
module CodE = Abc_net.Engine.Make (Abc.Coded_rbc)
module IrsE = Abc_net.Engine.Make (Ir_str)

let e16_payload ~bytes ~seed =
  String.init bytes (fun i -> Char.chr ((seed + (131 * i)) land 0xFF))

let e16_bracha ~n ~f ~seed payload =
  let config =
    BrsE.config ~n ~f
      ~inputs:(Bracha_str.inputs ~n ~sender:(node 0) payload)
      ~adversary:Adversary.uniform ~seed ()
  in
  Abc_sim.Metrics.counter (BrsE.run config).BrsE.metrics "bytes.sent"

let e16_coded ~n ~f ~seed payload =
  let config =
    CodE.config ~n ~f
      ~inputs:(Abc.Coded_rbc.inputs ~n ~sender:(node 0) payload)
      ~adversary:Adversary.uniform ~seed ()
  in
  Abc_sim.Metrics.counter (CodE.run config).CodE.metrics "bytes.sent"

let e16_ir ~n ~f ~seed payload =
  let config =
    IrsE.config ~n ~f
      ~inputs:(Ir_str.inputs ~n ~sender:(node 0) payload)
      ~adversary:Adversary.uniform ~seed ()
  in
  Abc_sim.Metrics.counter (IrsE.run config).IrsE.metrics "bytes.sent"

let experiment_e16 pool =
  let seeds = scaled 5 in
  let table =
    Table.create ~id:"e16"
      ~title:"E16 bandwidth per node bracha vs coded vs ir"
      ~columns:
        [ "payload B"; "n"; "f"; "bracha B/node"; "coded B/node"; "ir f";
          "ir B/node"; "coded/bracha"; "coded < bracha" ]
      ()
  in
  Printf.printf
    "E16. Per-node sent bytes, fault-free uniform scheduler, %d seeds per cell\n"
    seeds;
  List.iter
    (fun bytes ->
      List.iter
        (fun n ->
          let f = bracha_max_f n in
          let f_ir = benor_max_f n in
          let runs =
            sweep_seeds pool ~seeds (fun seed ->
                let payload = e16_payload ~bytes ~seed in
                ( e16_bracha ~n ~f ~seed payload,
                  e16_coded ~n ~f ~seed payload,
                  e16_ir ~n ~f:f_ir ~seed payload ))
          in
          let per_node total = float_of_int total /. float_of_int (n * seeds) in
          let bracha_b = per_node (List.fold_left (fun a (b, _, _) -> a + b) 0 runs) in
          let coded_b = per_node (List.fold_left (fun a (_, c, _) -> a + c) 0 runs) in
          let ir_b = per_node (List.fold_left (fun a (_, _, i) -> a + i) 0 runs) in
          (* strict per-seed comparison, not just on the means *)
          let coded_wins = List.for_all (fun (b, c, _) -> c < b) runs in
          if bytes >= 16384 && not coded_wins then
            failwith
              (Printf.sprintf
                 "E16: coded RBC not below Bracha at payload=%d n=%d" bytes n);
          Table.add_row table
            [
              Table.cell_int bytes;
              Table.cell_int n;
              Table.cell_int f;
              Table.cell_float ~decimals:0 bracha_b;
              Table.cell_float ~decimals:0 coded_b;
              Table.cell_int f_ir;
              Table.cell_float ~decimals:0 ir_b;
              Table.cell_ratio (coded_b /. bracha_b);
              (if coded_wins then "yes" else "NO");
            ])
        [ 7; 10; 13 ])
    [ 1024; 4096; 16384; 65536 ];
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E17: atomic broadcast — committed tx/sec vs batch size and n      *)
(* ----------------------------------------------------------------- *)

(* Throughput of the batched, pipelined atomic broadcast (epoch = one
   ACS over coded-RBC; see PROTOCOLS.md).  Virtual-time metrics keep
   every cell deterministic at any worker count: committed tx per
   kilotick rather than wall-clock tx/sec.  Acceptance claims asserted
   here, mirroring E16's per-seed guards: (1) committed tx/ktick at
   batch=1024 strictly above batch=16 for every n and every seed
   (agreement cost amortizes over the batch); (2) per-node per-tx
   bytes at the largest batch strictly lower at n=13 than at n=4 for
   every seed (the coded dispersal spreads each batch across more
   links).

   The sweep holds f = 1 fixed as n grows: that isolates the
   O(|batch|/n) dispersal term, since Reed-Solomon fragments shrink as
   |batch|/(n - 2f).  At maximal resilience (f growing with n) the
   coding rate n/(n - 2f) climbs from 2 toward 3 and per-tx bytes
   plateau instead of falling — measured in the E17 notes in
   EXPERIMENTS.md. *)

module Atomic = Abc_smr.Atomic_broadcast
module AtomE = Abc_net.Engine.Make (Atomic)

let e17_epochs = 2

let e17_run ~n ~f ~batch ~seed =
  let mempools =
    Array.init n (fun i ->
        Abc_smr.Workload.txs
          (Abc_smr.Workload.generate ~seed ~node:(node i)
             ~count:(batch * e17_epochs) ~rate:1.0 ~tx_bytes:64))
  in
  let config =
    AtomE.config ~n ~f
      ~inputs:
        (Atomic.inputs ~n ~window:2 ~batch_size:batch ~epochs:e17_epochs
           ~coin_seed:(seed + 7919) mempools)
      ~adversary:Adversary.uniform ~seed ()
  in
  let result = AtomE.run config in
  let committed =
    match Atomic.log_of_outputs result.AtomE.outputs.(0) with
    | Some log -> List.length log
    | None -> 0
  in
  let duration = max 1 result.AtomE.duration in
  let bytes = Abc_sim.Metrics.counter result.AtomE.metrics "bytes.sent" in
  ( 1000. *. float_of_int committed /. float_of_int duration,
    float_of_int bytes /. float_of_int (n * max 1 committed),
    committed,
    duration )

let experiment_e17 pool =
  let seeds = scaled 3 in
  let batches = [ 16; 64; 256; 1024 ] in
  let small_batch = List.hd batches in
  let large_batch = List.nth batches (List.length batches - 1) in
  let table =
    Table.create ~id:"e17" ~title:"E17 atomic broadcast throughput"
      ~columns:
        [ "n"; "f"; "batch"; "committed"; "ticks/epoch"; "tx/ktick";
          "B/tx per node"; "batch amortizes" ]
      ()
  in
  Printf.printf
    "E17. Committed throughput, %d epochs, window 2, 64 B txs, f=1, \
     fault-free uniform scheduler, %d seeds per cell\n"
    e17_epochs seeds;
  (* per-seed per-tx bytes at the largest batch, per n (guard 2) *)
  let per_tx_at_large = ref [] in
  List.iter
    (fun n ->
      (* fixed fault budget — see the header comment *)
      let f = 1 in
      let cells =
        List.map
          (fun batch ->
            (batch, sweep_seeds pool ~seeds (fun seed -> e17_run ~n ~f ~batch ~seed)))
          batches
      in
      let runs_of batch = List.assoc batch cells in
      List.iter
        (fun (batch, runs) ->
          let mean field =
            List.fold_left (fun a r -> a +. field r) 0. runs
            /. float_of_int seeds
          in
          let txktick (t, _, _, _) = t in
          let per_tx (_, b, _, _) = b in
          (* guard 1: strict per-seed amortization, not just on means *)
          let amortizes =
            List.for_all2
              (fun big small -> txktick big > txktick small)
              (runs_of large_batch) (runs_of small_batch)
          in
          if batch = large_batch && not amortizes then
            failwith
              (Printf.sprintf
                 "E17: tx/ktick at batch=%d not above batch=%d at n=%d"
                 large_batch small_batch n);
          if batch = large_batch then
            per_tx_at_large := (n, List.map per_tx runs) :: !per_tx_at_large;
          Table.add_row table
            [
              Table.cell_int n;
              Table.cell_int f;
              Table.cell_int batch;
              Table.cell_int
                (List.fold_left (fun a (_, _, c, _) -> a + c) 0 runs / seeds);
              Table.cell_float ~decimals:0
                (mean (fun (_, _, _, d) ->
                     float_of_int d /. float_of_int e17_epochs));
              Table.cell_float (mean txktick);
              Table.cell_float ~decimals:0 (mean per_tx);
              (if amortizes then "yes" else "NO");
            ])
        cells)
    [ 4; 7; 10; 13 ];
  (* guard 2: coded dissemination gets cheaper per tx as n grows *)
  (match
     (List.assoc_opt 4 !per_tx_at_large, List.assoc_opt 13 !per_tx_at_large)
   with
  | Some at4, Some at13 ->
    if not (List.for_all2 (fun b4 b13 -> b13 < b4) at4 at13) then
      failwith
        (Printf.sprintf
           "E17: per-tx bytes at n=13 not below n=4 at batch=%d" large_batch)
  | _ -> ());
  Table.print table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E18: crash recovery — checkpoint GC bound and catch-up latency    *)
(* ----------------------------------------------------------------- *)

(* Two claims from the recovery layer (PROTOCOLS.md, PBFT §4.4 style):
   (1) with checkpoints every C epochs the high-water mark of
   concurrently live epoch agreements stays bounded near window + C
   while the GC-off control grows linearly with run length — asserted
   per seed as strictly below the control, whose high-water mark must
   equal the epoch count exactly; (2) a replica that crashes and
   rejoins resumes committing shortly after its rejoin tick, with
   denser checkpoints buying cheaper catch-up (fresher stable point,
   shorter suffix).  The GC-off control sets C = epochs + 1: no
   boundary below the final epoch is ever crossed early enough to
   prune, but Gc_stats is still emitted, so both arms are measured
   identically. *)

let e18_epochs = 12
let e18_batch = 4

let e18_run ~n ~f ~interval ~crash ~seed =
  let mempools =
    Array.init n (fun i ->
        Abc_smr.Workload.txs
          (Abc_smr.Workload.generate ~seed ~node:(node i)
             ~count:(e18_batch * e18_epochs) ~rate:0.5 ~tx_bytes:32))
  in
  let inputs =
    Atomic.inputs ~n ~window:2 ~checkpoint_interval:interval
      ~batch_size:e18_batch ~epochs:e18_epochs ~coin_seed:(seed + 7919)
      mempools
  in
  let faulty =
    List.map (fun (i, plan) -> (node i, Behaviour.Crash_recover plan)) crash
  in
  let recovery = { AtomE.snapshot = Atomic.snapshot; restore = Atomic.restore } in
  let result =
    AtomE.run
      (AtomE.config ~n ~f ~inputs ~faulty ~adversary:Adversary.uniform ~seed
         ~recovery ())
  in
  if result.AtomE.stop <> Abc_net.Engine.All_terminal then
    failwith "E18: run did not reach all-terminal";
  result

let e18_stats result i =
  match Atomic.stats_of_outputs result.AtomE.outputs.(i) with
  | Some s -> s
  | None -> failwith "E18: Gc_stats missing from outputs"

let experiment_e18 pool =
  let seeds = scaled 3 in
  let n = 4 and f = 1 in
  let off = e18_epochs + 1 in
  let meani field runs =
    List.fold_left (fun a r -> a +. float_of_int (field r)) 0. runs
    /. float_of_int seeds
  in
  Printf.printf
    "E18. Crash recovery: GC bound and catch-up latency, n=%d f=%d, %d \
     epochs, batch %d, window 2, uniform scheduler, %d seeds per cell\n"
    n f e18_epochs e18_batch seeds;
  (* part A: fault-free, live-instance high-water mark vs interval *)
  let gc_table =
    Table.create ~id:"e18-gc" ~title:"E18 checkpoint GC bound"
      ~columns:[ "C"; "max live"; "checkpoints"; "transfers"; "bounded" ]
      ()
  in
  let gc_runs interval =
    sweep_seeds pool ~seeds (fun seed ->
        e18_stats (e18_run ~n ~f ~interval ~crash:[] ~seed) 0)
  in
  let off_runs = gc_runs off in
  List.iter
    (fun (ml, _, _) ->
      if ml <> e18_epochs then
        failwith "E18: GC-off high-water mark should equal the epoch count")
    off_runs;
  let add_gc_row label runs bounded =
    Table.add_row gc_table
      [
        label;
        Table.cell_float ~decimals:1 (meani (fun (ml, _, _) -> ml) runs);
        Table.cell_float ~decimals:1 (meani (fun (_, cp, _) -> cp) runs);
        Table.cell_float ~decimals:1 (meani (fun (_, _, tr) -> tr) runs);
        bounded;
      ]
  in
  List.iter
    (fun interval ->
      let runs = gc_runs interval in
      let bounded =
        List.for_all2
          (fun (on, _, _) (off, _, _) -> on < off)
          runs off_runs
      in
      if not bounded then
        failwith
          (Printf.sprintf "E18: max live with C=%d not below the GC-off run"
             interval);
      add_gc_row (Table.cell_int interval) runs "yes")
    [ 2; 3; 6 ];
  add_gc_row "off" off_runs "-";
  Table.print gc_table;
  print_newline ();
  (* part B: crash one replica mid-run, measure rejoin-to-first-commit *)
  let victim = n - 1 in
  let rejoin = 2500 in
  let latency_table =
    Table.create ~id:"e18-latency" ~title:"E18 recovery latency"
      ~columns:[ "C"; "latency ticks"; "transfers"; "max live" ]
      ()
  in
  List.iter
    (fun interval ->
      let runs =
        sweep_seeds pool ~seeds (fun seed ->
            let result =
              e18_run ~n ~f ~interval
                ~crash:[ (victim, [ (400, rejoin) ]) ]
                ~seed
            in
            let log i = Atomic.log_of_outputs result.AtomE.outputs.(i) in
            (match (log 0, log victim) with
            | Some a, Some b when a = b -> ()
            | _ -> failwith "E18: recovered replica's log diverged");
            (* first commit progress at the victim after its rejoin:
               Epoch_committed for live epochs, or Log_complete when the
               tail arrived wholesale via state transfer *)
            let first =
              List.fold_left
                (fun acc (t, out) ->
                  match out with
                  | (Atomic.Epoch_committed _ | Atomic.Log_complete _)
                    when t >= rejoin ->
                    Some (match acc with None -> t | Some x -> min x t)
                  | _ -> acc)
                None
                result.AtomE.outputs.(victim)
            in
            let latency =
              match first with
              | Some t -> t - rejoin
              | None -> failwith "E18: no commit after rejoin"
            in
            let ml, _, transfers = e18_stats result victim in
            (latency, transfers, ml))
      in
      Table.add_row latency_table
        [
          Table.cell_int interval;
          Table.cell_float ~decimals:0 (meani (fun (l, _, _) -> l) runs);
          Table.cell_float ~decimals:1 (meani (fun (_, tr, _) -> tr) runs);
          Table.cell_float ~decimals:1 (meani (fun (_, _, ml) -> ml) runs);
        ])
    [ 1; 2; 3; 6 ];
  Table.print latency_table;
  print_newline ()

(* ----------------------------------------------------------------- *)
(* E19: engine hot path — wall-clock and events/sec up to n=256      *)
(* ----------------------------------------------------------------- *)

(* The wall-clock side of bench/specs/e19_engine.matrix: one Bracha
   broadcast and one full MMR consensus per n at maximal resilience,
   timed end to end on one domain.  "Events" are engine deliveries —
   the unit of hot-path work (one arena removal, one protocol step,
   one metrics/trace update) that PERFORMANCE.md budgets against.
   Message/byte/tick counts and verdicts for the same cells are
   pinned by the matrix spec and the CI bench gate; this table
   reports the wall-clock the --no-wall exports deliberately zero
   out.  Runs sequentially (never on the pool): overlapping runs
   would time each other. *)
let experiment_e19 _pool =
  let seeds = scaled 2 in
  let table =
    Table.create ~id:"e19"
      ~title:
        (Printf.sprintf
           "E19. Engine scale at max resilience, uniform scheduler (%d seeds \
            per cell, sequential)"
           seeds)
      ~columns:
        [ "protocol"; "n"; "f"; "msgs/run"; "ticks/run"; "wall s"; "events/sec" ]
      ()
  in
  let row protocol n f run =
    let t0 = Unix.gettimeofday () in
    let events = ref 0 and msgs = ref 0 and ticks = ref 0 in
    for seed = 1 to seeds do
      let delivered, sent, duration = run ~seed in
      events := !events + delivered;
      msgs := !msgs + sent;
      ticks := !ticks + duration
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Table.add_row table
      [
        protocol;
        Table.cell_int n;
        Table.cell_int f;
        Table.cell_int (!msgs / seeds);
        Table.cell_int (!ticks / seeds);
        Table.cell_float ~decimals:3 dt;
        Table.cell_float ~decimals:0 (float_of_int !events /. dt);
      ]
  in
  let bracha ~n ~f ~seed =
    let payload = e16_payload ~bytes:16 ~seed in
    let config =
      BrsE.config ~n ~f
        ~inputs:(Bracha_str.inputs ~n ~sender:(node 0) payload)
        ~adversary:Adversary.uniform ~seed ()
    in
    let r = BrsE.run config in
    ( Abc_sim.Metrics.counter r.BrsE.metrics "delivered",
      Abc_sim.Metrics.counter r.BrsE.metrics "sent",
      r.BrsE.duration )
  in
  let mmr ~n ~f ~seed =
    let inputs =
      Mmr.inputs ~n ~coin:(Abc.Coin.common ~seed:7) (split_inputs n)
    in
    let config =
      MmrH.E.config ~n ~f ~inputs ~adversary:Adversary.uniform ~seed ()
    in
    let result, verdict = MmrH.run config in
    if not verdict.Abc.Harness.terminated then
      failwith (Printf.sprintf "E19: mmr n=%d seed=%d did not decide" n seed);
    ( Abc_sim.Metrics.counter result.MmrH.E.metrics "delivered",
      Abc_sim.Metrics.counter result.MmrH.E.metrics "sent",
      result.MmrH.E.duration )
  in
  let arms = [ (16, 5); (64, 21); (128, 42); (256, 85) ] in
  List.iter (fun (n, f) -> row "bracha-rbc" n f (bracha ~n ~f)) arms;
  List.iter (fun (n, f) -> row "mmr" n f (mmr ~n ~f)) arms;
  Table.print table;
  print_newline ()

let experiments =
  [
    ("E1", "reliable broadcast correctness", experiment_e1);
    ("E2", "resilience boundary sweep", experiment_e2);
    ("E3", "rounds vs n at max resilience", experiment_e3);
    ("E4", "rounds with f = sqrt(n)", experiment_e4);
    ("E5", "message complexity", experiment_e5);
    ("E6", "local vs common coin", experiment_e6);
    ("E7", "validation/transport ablation", experiment_e7);
    ("E8", "wall-clock microbenchmarks", experiment_e8);
    ("E9", "replicated log throughput", experiment_e9);
    ("E10", "bracha 1984 vs mmr 2014", experiment_e10);
    ("E11", "idealized vs implemented common coin", experiment_e11);
    ("E12", "connectivity threshold over flooding", experiment_e12);
    ("E13", "turpin-coan vs acs multivalued", experiment_e13);
    ("E14", "lossy links vs reliable transport", experiment_e14);
    ("E15", "parallel sweep throughput + determinism", experiment_e15);
    ("E16", "per-node bandwidth: bracha vs coded vs ir", experiment_e16);
    ("E17", "atomic broadcast: committed tx throughput", experiment_e17);
    ("E18", "crash recovery: GC bound and catch-up latency", experiment_e18);
    ("E19", "engine scale: wall-clock and events/sec to n=256", experiment_e19);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    if List.mem "quick" args then begin
      seeds_scale := 0.25;
      List.filter (fun a -> a <> "quick") args
    end
    else args
  in
  let args =
    if List.mem "csv" args then begin
      Abc_sim.Table.set_csv_directory (Some "bench_results");
      List.filter (fun a -> a <> "csv") args
    end
    else args
  in
  (* --jobs N overrides the worker count (ABC_JOBS, else cores - 1). *)
  let jobs, args =
    let rec extract acc = function
      | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | Some _ | None ->
          prerr_endline "bench: --jobs expects a positive integer";
          exit 2)
      | a :: rest -> extract (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    extract [] args
  in
  let pool = Abc_exec.Pool.create ?jobs () in
  (* Every mode emits the machine-readable BENCH_*.json run summaries
     (see OBSERVABILITY.md); CSVs remain opt-in via the csv arg. *)
  Abc_sim.Table.set_json_directory (Some "bench_results");
  Abc_sim.Table.set_run_meta
    [
      ("harness", Abc_sim.Json.String "abc-bench");
      ("seeds_scale", Abc_sim.Json.Float !seeds_scale);
      ("jobs", Abc_sim.Json.Int (Abc_exec.Pool.jobs pool));
    ];
  let selected =
    match args with
    | [] -> experiments
    | names -> List.filter (fun (id, _, _) -> List.mem id names) experiments
  in
  Printf.printf
    "Asynchronous Byzantine Consensus (PODC 1984) — experiment harness\n\
     Deterministic: every cell is a function of its seeds (at any --jobs).\n\n";
  List.iter
    (fun (id, label, run) ->
      Printf.printf "--- %s: %s ---\n" id label;
      run pool)
    selected
