(* abc-bench: scenario-matrix benchmark driver.

     abc-bench run  bench/specs/e14.matrix --jobs 4 --out bench_results
     abc-bench list bench/specs/e1.matrix
     abc-bench diff bench_results fresh_results --threshold 10

   Specs are .matrix files (grammar in EXPERIMENTS.md); `run` executes
   every cell's seed sweep on the domain pool and writes one
   BENCH_MATRIX_<id>.json per spec (schema in OBSERVABILITY.md).
   `diff` compares two result sets cell-by-cell and exits non-zero on
   regressions, which is what the CI bench-gate job runs.

   Exit codes: 0 ok; 1 verdict failures (run) or regressions (diff);
   2 spec/result-set errors. *)

module Spec = Abc_matrix.Spec
module Runner = Abc_matrix.Runner
module Diff = Abc_matrix.Diff
module Sexp = Abc_matrix.Sexp
module Table = Abc_sim.Table
module Json = Abc_sim.Json
module Pool = Abc_exec.Pool
open Cmdliner

let load_spec path =
  match Spec.load path with
  | Ok spec -> spec
  | Error e ->
    Fmt.epr "abc-bench: %s@." (Sexp.error_to_string e);
    exit 2
  | exception Sys_error msg ->
    Fmt.epr "abc-bench: %s@." msg;
    exit 2

let write_file path contents =
  let dir = Filename.dirname path in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* run *)

let run_run specs jobs seeds_scale out no_wall tier =
  let pool = Pool.create ~jobs () in
  let clock = if no_wall then None else Some Unix.gettimeofday in
  let all_ok =
    List.fold_left
      (fun all_ok path ->
        let spec = load_spec path in
        let spec_tier = Spec.tier_label (Spec.tier spec) in
        match tier with
        | Some t when t <> spec_tier ->
          (* A tier filter lets CI pass a whole specs/ glob and run only
             the cheap slice; skipped specs are named so a mistyped
             filter is visible, not a silent no-op. *)
          Fmt.epr "abc-bench: skipping %s (tier %s, filter %s)@."
            (Spec.id spec) spec_tier t;
          all_ok
        | Some _ | None ->
        let result = Runner.run ?clock ~seeds_scale ~pool spec in
        print_string (Table.render (Runner.table result));
        (match out with
        | None -> ()
        | Some dir ->
          let json = Runner.to_json ~seeds_scale result in
          write_file
            (Filename.concat dir ("BENCH_MATRIX_" ^ Spec.id spec ^ ".json"))
            (Json.to_string json ^ "\n"));
        List.iter
          (fun (c : Runner.cell_result) ->
            Fmt.epr "abc-bench: %s: verdict %s failed for [%s]@." (Spec.id spec)
              (Spec.oracle_label c.cell.Spec.oracle)
              (String.concat " "
                 (List.map (fun (k, v) -> k ^ "=" ^ v) (Spec.cell_key c.cell))))
          (Runner.failures result);
        all_ok && Runner.passed result)
      true specs
  in
  if not all_ok then exit 1

(* list *)

let run_list specs =
  List.iter
    (fun path ->
      let spec = load_spec path in
      Fmt.pr "%s: %s (%s tier, %d cells)@." (Spec.id spec) (Spec.title spec)
        (Spec.tier_label (Spec.tier spec))
        (Spec.cell_count spec);
      List.iter
        (fun (cell : Spec.cell) ->
          Fmt.pr "  [%s] expect %s@."
            (String.concat " "
               (List.map (fun (k, v) -> k ^ "=" ^ v) (Spec.cell_key cell)))
            (Spec.oracle_label cell.Spec.oracle))
        (Spec.expand spec))
    specs

(* diff *)

let load_set path =
  match Diff.load_file path with
  | Ok set -> set
  | Error e ->
    Fmt.epr "abc-bench: %s@." e;
    exit 2

let matrix_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 13
         && String.sub f 0 13 = "BENCH_MATRIX_"
         && Filename.check_suffix f ".json")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

(* Pair the two sides by set id.  Sets present on only one side are a
   hard error: a silently vanishing baseline would let a regression
   through the gate.  A tier filter restricts that universe on both
   sides first — the one-sided check then applies within the tier. *)
let pair_sets base cur tier =
  let load_side path =
    if not (Sys.file_exists path) then begin
      Fmt.epr "abc-bench: %s: no such file or directory@." path;
      exit 2
    end;
    if Sys.is_directory path then begin
      match matrix_files path with
      | [] ->
        Fmt.epr "abc-bench: %s: no BENCH_MATRIX_*.json files@." path;
        exit 2
      | files -> List.map load_set files
    end
    else [ load_set path ]
  in
  let filter_tier side path sets =
    match tier with
    | None -> sets
    | Some t ->
      let kept = List.filter (fun s -> Diff.set_tier s = t) sets in
      if kept = [] then begin
        Fmt.epr "abc-bench: %s: no result sets with tier %s in %s@." side t
          path;
        exit 2
      end;
      kept
  in
  let bases = filter_tier "base" base (load_side base)
  and curs = filter_tier "current" cur (load_side cur) in
  let find_id sets id = List.find_opt (fun s -> Diff.set_id s = id) sets in
  let missing =
    List.filter_map
      (fun b ->
        match find_id curs (Diff.set_id b) with
        | Some _ -> None
        | None -> Some (Diff.set_id b))
      bases
    @ List.filter_map
        (fun c ->
          match find_id bases (Diff.set_id c) with
          | Some _ -> None
          | None -> Some (Diff.set_id c))
        curs
  in
  if missing <> [] then begin
    Fmt.epr "abc-bench: result sets present on only one side: %s@."
      (String.concat ", " (List.sort_uniq String.compare missing));
    exit 2
  end;
  List.map
    (fun c -> (Option.get (find_id bases (Diff.set_id c)), c))
    curs

let run_diff base cur threshold gate_wall as_json tier =
  let options = { Diff.threshold; gate_wall } in
  let pairs = pair_sets base cur tier in
  let reports =
    List.map (fun (b, c) -> Diff.compare ~options ~base:b ~cur:c) pairs
  in
  if as_json then
    print_endline
      (Json.to_string (Json.List (List.map Diff.to_json reports)))
  else
    List.iter (fun r -> print_string (Diff.to_text r)) reports;
  let total = List.fold_left (fun acc r -> acc + Diff.regressions r) 0 reports in
  if total > 0 then begin
    Fmt.epr "abc-bench: %d regression%s beyond %.1f%%@." total
      (if total = 1 then "" else "s")
      threshold;
    exit 1
  end

(* command line *)

let specs_arg =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"SPEC" ~doc:"Scenario spec (.matrix file).")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the seed sweeps.  Results are \
           byte-identical at any value.")

let seeds_scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "seeds-scale" ] ~docv:"X"
        ~doc:"Multiply every cell's seed count (floored at 1).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write BENCH_MATRIX_<id>.json result sets into $(docv).")

let no_wall_arg =
  Arg.(
    value & flag
    & info [ "no-wall" ]
        ~doc:
          "Skip wall-clock measurement: every wall field is exactly 0, \
           making the result set byte-identical across hosts and runs \
           (what the CI determinism diff uses).")

let tier_arg =
  Arg.(
    value
    & opt (some (enum [ ("quick", "quick"); ("full", "full") ])) None
    & info [ "tier" ] ~docv:"TIER"
        ~doc:
          "Only consider specs (run) or result sets (diff) of this \
           tier: quick or full.  Lets CI pass the whole specs \
           directory and exercise just the cheap slice.")

let run_cmd =
  let term =
    Term.(
      const run_run $ specs_arg $ jobs_arg $ seeds_scale_arg $ out_arg
      $ no_wall_arg $ tier_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run scenario specs on the domain pool and print one table per \
          spec; exits 1 when any cell misses its expected verdict.")
    term

let list_cmd =
  let term = Term.(const run_list $ specs_arg) in
  Cmd.v
    (Cmd.info "list"
       ~doc:"Expand scenario specs and print every cell with its verdict.")
    term

let base_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASE"
        ~doc:"Baseline result set: a BENCH_MATRIX_*.json file or a \
              directory of them.")

let cur_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CURRENT" ~doc:"Result set to judge against BASE.")

let threshold_arg =
  Arg.(
    value
    & opt float Diff.default_options.Diff.threshold
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:"Relative change (percent) beyond which a gated metric \
              counts as a regression or improvement.")

let gate_wall_arg =
  Arg.(
    value & flag
    & info [ "gate-wall" ]
        ~doc:"Also gate on wall-clock growth (advisory by default).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the abc.bench.matrix.diff report as JSON.")

let diff_cmd =
  let term =
    Term.(
      const run_diff $ base_arg $ cur_arg $ threshold_arg $ gate_wall_arg
      $ json_arg $ tier_arg)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two result sets cell-by-cell; exits 1 when any gated \
          metric regressed beyond the threshold or a cell flipped to \
          failing.")
    term

let () =
  let doc = "scenario-matrix benchmarks: run specs, diff result sets" in
  let info = Cmd.info "abc-bench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; diff_cmd ]))
