(* abc_lint: protocol-aware static analysis for this repository.

   Usage:
     abc_lint [--allow FILE] [--format text|json] [--rules IDS]
              [--skip-rules IDS] [ROOT ...]
     abc_lint --explain RULE|all
     abc_lint --prune-allow --allow FILE [ROOT ...]

   Scans the given roots (default: lib bin bench examples test) with
   the parsetree rules in Abc_analysis.Ast_rules (token fallback for
   unparseable files) and prints every finding not covered by the
   allowlist.  Exit status: 0 when no error-severity findings remain
   (warnings never fail the build), 1 otherwise, 2 on usage error. *)

module A = Abc_analysis

let default_roots = [ "lib"; "bin"; "bench"; "examples"; "test" ]

let usage () =
  prerr_endline
    "usage: abc_lint [--allow FILE] [--format text|json] [--rules IDS]\n\
    \                [--skip-rules IDS] [ROOT ...]\n\
    \       abc_lint --explain RULE|all\n\
    \       abc_lint --prune-allow --allow FILE [ROOT ...]\n\n\
     IDS is a comma-separated list of rule ids; `abc_lint --explain all`\n\
     lists every rule with its severity, scope and rationale.";
  exit 2

type mode = Scan | Explain of string | Prune

type opts = {
  mode : mode;
  allow : string option;
  format : [ `Text | `Json ];
  only : string list option;
  skip : string list;
  roots : string list;
}

let split_ids s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let check_ids ids =
  List.iter
    (fun id ->
      if not (List.mem id A.Rule_info.ids) then begin
        Printf.eprintf "abc_lint: unknown rule id %S (see --explain all)\n" id;
        exit 2
      end)
    ids

let parse_args argv =
  let mode = ref Scan and allow = ref None in
  let format = ref `Text and only = ref None in
  let skip = ref [] and roots = ref [] in
  let rec go = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow := Some file;
      go rest
    | "--format" :: "text" :: rest ->
      format := `Text;
      go rest
    | "--format" :: "json" :: rest ->
      format := `Json;
      go rest
    | "--rules" :: ids :: rest ->
      let ids = split_ids ids in
      check_ids ids;
      only := Some ids;
      go rest
    | "--skip-rules" :: ids :: rest ->
      let ids = split_ids ids in
      check_ids ids;
      skip := !skip @ ids;
      go rest
    | "--explain" :: rule :: rest ->
      mode := Explain rule;
      go rest
    | "--prune-allow" :: rest ->
      mode := Prune;
      go rest
    | ("--allow" | "--format" | "--rules" | "--skip-rules" | "--explain") :: []
      ->
      usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | root :: rest ->
      roots := root :: !roots;
      go rest
  in
  go (List.tl (Array.to_list argv));
  let roots = match List.rev !roots with [] -> default_roots | rs -> rs in
  {
    mode = !mode;
    allow = !allow;
    format = !format;
    only = !only;
    skip = !skip;
    roots;
  }

let explain (r : A.Rule_info.t) =
  Fmt.pr "%s  (%s)@.  scope:     %s@.  rationale: %s@.  example:   %s@." r.id
    (A.Finding.severity_label r.severity)
    r.scope r.rationale r.example

let run_explain rule =
  match rule with
  | "all" ->
    List.iteri
      (fun i r ->
        if i > 0 then Fmt.pr "@.";
        explain r)
      A.Rule_info.all
  | id -> (
    match A.Rule_info.find id with
    | Some r -> explain r
    | None ->
      Printf.eprintf "abc_lint: unknown rule id %S (see --explain all)\n" id;
      exit 2)

let load_allow = function
  | Some file -> A.Allow.load ~file
  | None -> []

let run_prune opts =
  let allow = load_allow opts.allow in
  if allow = [] then begin
    prerr_endline "abc_lint: --prune-allow needs a non-empty --allow FILE";
    exit 2
  end;
  let report = A.Driver.run ~only:opts.only ~skip:opts.skip ~allow
      ~roots:opts.roots () in
  match report.unused_allow with
  | [] ->
    Fmt.pr "abc_lint: allowlist clean (%d entries all in use)@."
      (List.length allow)
  | stale ->
    Fmt.pr "abc_lint: %d stale allowlist entr%s:@." (List.length stale)
      (if List.length stale = 1 then "y" else "ies");
    List.iter (fun (e : A.Allow.entry) -> Fmt.pr "  %s@." e.raw) stale;
    exit 1

let run_scan opts =
  let allow = load_allow opts.allow in
  let report =
    A.Driver.run ~only:opts.only ~skip:opts.skip ~allow ~roots:opts.roots ()
  in
  let errors =
    List.filter (fun f -> f.A.Finding.severity = A.Finding.Error)
      report.findings
  in
  (match opts.format with
  | `Json -> print_string (A.Driver.json_of_report report)
  | `Text ->
    List.iter (fun f -> Fmt.pr "%a@." A.Finding.pp f) report.findings;
    let n = List.length report.findings in
    Fmt.pr "abc_lint: %d finding%s (%d error%s) in %d files (%d allowlisted)@."
      n
      (if n = 1 then "" else "s")
      (List.length errors)
      (if List.length errors = 1 then "" else "s")
      report.files report.allowed);
  if errors <> [] then exit 1

let () =
  let opts = parse_args Sys.argv in
  match opts.mode with
  | Explain rule -> run_explain rule
  | Prune -> run_prune opts
  | Scan -> run_scan opts
