(* abc_lint: protocol-aware static analysis for this repository.

   Usage: abc_lint [--allow FILE] [ROOT ...]

   Scans the given roots (default: lib bin bench examples) with the
   rules in Abc_analysis.Rules and prints every finding not covered by
   the allowlist. Exit status: 0 when clean, 1 when findings remain,
   2 on usage error. *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage () =
  prerr_endline "usage: abc_lint [--allow FILE] [ROOT ...]";
  exit 2

let parse_args argv =
  let allow = ref None and roots = ref [] in
  let rec go = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow := Some file;
      go rest
    | "--allow" :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | root :: rest ->
      roots := root :: !roots;
      go rest
  in
  go (List.tl (Array.to_list argv));
  let roots = match List.rev !roots with [] -> default_roots | rs -> rs in
  (!allow, roots)

let () =
  let allow_file, roots = parse_args Sys.argv in
  let allow =
    match allow_file with
    | Some file -> Abc_analysis.Allow.load ~file
    | None -> []
  in
  let report = Abc_analysis.Driver.run ~allow ~roots in
  List.iter
    (fun f -> Fmt.pr "%a@." Abc_analysis.Finding.pp f)
    report.findings;
  let n = List.length report.findings in
  Fmt.pr "abc_lint: %d finding%s in %d files (%d allowlisted)@." n
    (if n = 1 then "" else "s")
    report.files report.allowed;
  if n > 0 then exit 1
