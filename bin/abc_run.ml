(* abc-run: command-line driver for the asynchronous Byzantine
   consensus library.

   One subcommand per protocol:

     abc-run rbc        --n 4 --f 1 --fault equivocate
     abc-run consensus  --n 7 --f 2 --inputs split --adversary split --seeds 20
     abc-run benor      --n 11 --f 2 --mode byzantine
     abc-run acs        --n 4 --f 1
     abc-run smr        --n 4 --f 1 --slots 3 --fault silent

   Every run is deterministic in --seed. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Link_faults = Abc_net.Link_faults
module B = Abc.Bracha_consensus
module BO = Abc.Ben_or
module Rbc = Abc.Bracha_rbc.Binary
open Cmdliner

(* ---- shared argument vocabulary ---- *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let f_arg =
  Arg.(
    value
    & opt int 1
    & info [ "f"; "max-faults" ] ~docv:"F" ~doc:"Resilience parameter handed to the protocol.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let seeds_arg =
  Arg.(
    value
    & opt int 1
    & info [ "seeds" ] ~docv:"K"
        ~doc:"Run $(docv) seeds (seed, seed+1, ...) and summarize.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Dump the tail of the execution trace after the run.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the full execution trace as JSON Lines (schema abc.trace, see            OBSERVABILITY.md) to $(docv), for analysis with $(b,abc-trace).")

let adversary_arg =
  let choices =
    [
      ("fifo", `Fifo);
      ("uniform", `Uniform);
      ("latency", `Latency);
      ("targeted", `Targeted);
      ("split", `Split);
    ]
  in
  Arg.(
    value
    & opt (enum choices) `Uniform
    & info [ "adversary" ] ~docv:"POLICY"
        ~doc:"Message scheduler: $(b,fifo), $(b,uniform), $(b,latency), \
              $(b,targeted) or $(b,split).")

let adversary_of ~n = function
  | `Fifo -> Adversary.fifo
  | `Uniform -> Adversary.uniform
  | `Latency -> Adversary.latency ~mean:8.
  | `Targeted -> Adversary.targeted_delay ~victims:[ Node_id.of_int 0 ]
  | `Split -> Adversary.split ~n

let fault_kind_arg =
  let choices =
    [
      ("none", `None);
      ("silent", `Silent);
      ("crash", `Crash);
      ("flip", `Flip);
      ("equivocate", `Equivocate);
      ("force-decide", `Force_decide);
      ("replay", `Replay);
    ]
  in
  Arg.(
    value
    & opt (enum choices) `None
    & info [ "fault" ] ~docv:"KIND"
        ~doc:"Behaviour of the faulty nodes: $(b,none), $(b,silent), $(b,crash), \
              $(b,flip), $(b,equivocate), $(b,force-decide) or $(b,replay).")

let faulty_count_arg =
  Arg.(
    value
    & opt int 1
    & info [ "faulty" ] ~docv:"K"
        ~doc:"How many nodes misbehave (the highest-numbered $(docv) nodes).")

let inputs_arg =
  let choices =
    [ ("zero", `Zero); ("one", `One); ("split", `Split); ("alternate", `Alternate) ]
  in
  Arg.(
    value
    & opt (enum choices) `Split
    & info [ "inputs" ] ~docv:"PATTERN"
        ~doc:"Input pattern: $(b,zero), $(b,one), $(b,split) (low half 0, high \
              half 1) or $(b,alternate).")

let values_of ~n = function
  | `Zero -> Array.make n Abc.Value.Zero
  | `One -> Array.make n Abc.Value.One
  | `Split ->
    Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)
  | `Alternate ->
    Array.init n (fun i -> if i mod 2 = 0 then Abc.Value.Zero else Abc.Value.One)

let coin_arg =
  let choices = [ ("local", `Local); ("common", `Common) ] in
  Arg.(
    value
    & opt (enum choices) `Local
    & info [ "coin" ] ~docv:"COIN" ~doc:"Round coin: $(b,local) or $(b,common).")

let coin_of = function `Local -> Abc.Coin.local | `Common -> Abc.Coin.common ~seed:7

let faulty_nodes ~n ~count kind mutators =
  let flip, equivocate, force = mutators in
  let behaviour =
    match kind with
    | `None -> None
    | `Silent -> Some Behaviour.Silent
    | `Crash -> Some (Behaviour.Crash_after 5)
    | `Flip -> Some (Behaviour.Mutate flip)
    | `Equivocate -> Some (Behaviour.Equivocate equivocate)
    | `Force_decide -> Some (Behaviour.Mutate force)
    | `Replay -> Some (Behaviour.Replay 2)
  in
  match behaviour with
  | None -> []
  | Some b -> List.init count (fun k -> (Node_id.of_int (n - 1 - k), b))

(* ---- link faults and the reliable transport ---- *)

let loss_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:"Drop each point-to-point message independently with probability \
              $(docv) (deterministic in --seed).")

let dup_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "dup" ] ~docv:"P"
        ~doc:"Duplicate each delivered message with probability $(docv); the \
              copy is re-enqueued and never re-duplicated.")

let partition_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "partition" ] ~docv:"SPEC"
        ~doc:
          "Sever all links crossing an island boundary during a tick window.          $(docv) is $(i,FROM:UNTIL:id,id,...) — e.g. $(b,10:80:0,1) cuts          nodes 0,1 off from the rest while 10 <= t < 80.")

let reliable_arg =
  Arg.(
    value & flag
    & info [ "reliable" ]
        ~doc:
          "Wrap the protocol in the reliable-channel transport          (sequencing, acks, timer-driven retransmission with backoff).          Restricts --fault to message-agnostic kinds: none, silent,          crash, replay.")

let parse_partition ~n spec =
  let fail () =
    Fmt.epr "abc-run: bad --partition %S (want FROM:UNTIL:id,id,...)@." spec;
    exit 2
  in
  match String.split_on_char ':' spec with
  | [ from_s; until_s; ids_s ] -> (
    match (int_of_string_opt from_s, int_of_string_opt until_s) with
    | Some from_tick, Some until_tick when 0 <= from_tick && from_tick <= until_tick
      ->
      let ids =
        String.split_on_char ',' ids_s
        |> List.map (fun s ->
               match int_of_string_opt (String.trim s) with
               | Some i when 0 <= i && i < n -> Node_id.of_int i
               | Some _ | None -> fail ())
      in
      Link_faults.cut ~from_tick ~until_tick ids
    | _ -> fail ())
  | _ -> fail ()

let link_faults_of ~n ~loss ~dup ~partition =
  if loss < 0.0 || loss > 1.0 || dup < 0.0 || dup > 1.0 then begin
    Fmt.epr "abc-run: --loss and --dup must lie in [0,1]@.";
    exit 2
  end;
  let cuts =
    match partition with None -> [] | Some spec -> [ parse_partition ~n spec ]
  in
  let plan = Link_faults.make ~drop:loss ~dup ~cuts () in
  if Link_faults.active plan then Some plan else None

(* Under --reliable the wrapped message type is opaque to the CLI, so
   only behaviours that never inspect payloads are available. *)
let msg_agnostic_faulty ~n ~count fault =
  let behaviour =
    match fault with
    | `None -> None
    | `Silent -> Some Behaviour.Silent
    | `Crash -> Some (Behaviour.Crash_after 5)
    | `Replay -> Some (Behaviour.Replay 2)
    | `Flip | `Equivocate | `Force_decide ->
      Fmt.epr
        "abc-run: --reliable supports only message-agnostic faults (none, silent, crash, replay)@.";
      exit 2
  in
  match behaviour with
  | None -> []
  | Some b -> List.init count (fun k -> (Node_id.of_int (n - 1 - k), b))

let print_link_stats metrics =
  let c = Abc_sim.Metrics.counter metrics in
  Fmt.pr "  links: dropped=%d (loss %d, partition %d) duplicated=%d retx=%d acks=%d timeouts=%d@."
    (c "dropped.link") (c "dropped.link.loss") (c "dropped.link.partition")
    (c "duplicated.link") (c "sent.rl.retx") (c "sent.rl.ack") (c "timer.fired")

(* A deep buffer when exporting: analysis wants the whole run, not the
   tail. *)
let trace_capacity = 1_000_000

let make_trace ~trace ~trace_out =
  if trace || trace_out <> None then
    Some (Abc_sim.Trace.create ~capacity:trace_capacity ())
  else None

let write_trace_out ~protocol ~n ~f ~seed trace_out tr =
  match (trace_out, tr) with
  | Some file, Some trace ->
    let meta =
      [
        ("protocol", Abc_sim.Json.String protocol);
        ("n", Abc_sim.Json.Int n);
        ("f", Abc_sim.Json.Int f);
        ("seed", Abc_sim.Json.Int seed);
      ]
    in
    let oc = open_out file in
    Abc_sim.Trace.write_jsonl ~meta oc trace;
    close_out oc;
    Fmt.pr "trace: %d events written to %s@." (Abc_sim.Trace.length trace) file
  | None, _ | _, None -> ()

let print_trace ?n trace =
  Fmt.pr "@.--- execution trace (tail) ---@.";
  match n with
  | Some n -> print_string (Abc_net.Sequence_diagram.render trace ~n)
  | None -> Abc_sim.Trace.dump Fmt.stdout trace

let summarize_rounds label rounds =
  match Abc_sim.Summary.of_int_list rounds with
  | Some s ->
    Fmt.pr "%s rounds: mean %.2f median %.0f p95 %.0f max %.0f (over %d seeds)@."
      label (Abc_sim.Summary.mean s) (Abc_sim.Summary.median s)
      (Abc_sim.Summary.percentile s 95.) (Abc_sim.Summary.max_value s)
      (Abc_sim.Summary.count s)
  | None -> ()

(* ---- rbc ---- *)

let protocol_arg =
  let choices = [ ("bracha", `Bracha); ("coded", `Coded); ("ir", `Ir) ] in
  Arg.(
    value
    & opt (enum choices) `Bracha
    & info [ "protocol" ] ~docv:"P"
        ~doc:
          "Broadcast protocol: $(b,bracha) (3-phase, f < n/3), $(b,coded) \
           (erasure-coded AVID-style dispersal, f < n/3, O(|m|/n) bytes per \
           link) or $(b,ir) (Imbs-Raynal 2-phase, f < n/5, n2+n messages).")

let payload_bytes_arg =
  Arg.(
    value
    & opt int 0
    & info [ "payload-bytes" ] ~docv:"BYTES"
        ~doc:
          "Broadcast a synthetic payload of $(docv) bytes and report the \
           byte-level bandwidth counters.  0 (the default) keeps the \
           classic single-bit payload for $(b,bracha).")

let synthetic_payload ~bytes ~seed =
  String.init bytes (fun i -> Char.chr ((seed + (131 * i)) land 0xFF))

(* A tiny FNV-1a digest so delivered payloads can be compared at a
   glance without printing kilobytes. *)
let payload_digest s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

(* Engine throughput for the closing report: deliveries are the
   hot-path unit of work (one arena removal, one protocol step), so
   deliveries over host wall-clock is the same events/sec measure the
   E19 bench table reports (see PERFORMANCE.md).  Skipped for runs too
   fast to time meaningfully. *)
let print_events_rate ~deliveries t0 =
  let dt = Unix.gettimeofday () -. t0 in
  if dt >= 0.001 && deliveries > 0 then
    Fmt.pr "  events/sec=%.0f (%d deliveries in %.3fs)@."
      (float_of_int deliveries /. dt)
      deliveries dt

let print_byte_counters ~n metrics =
  let c = Abc_sim.Metrics.counter metrics in
  Fmt.pr "  bytes: sent=%d delivered=%d per-node=%d@." (c "bytes.sent")
    (c "bytes.delivered")
    (c "bytes.sent" / n);
  let prefix = "bytes.sent." in
  let pl = String.length prefix in
  let labelled =
    Abc_sim.Metrics.counters metrics
    |> List.filter_map (fun (name, v) ->
           if String.length name > pl && String.sub name 0 pl = prefix then
             Some (String.sub name pl (String.length name - pl), v)
           else None)
  in
  if labelled <> [] then begin
    Fmt.pr "  bytes by label:";
    List.iter (fun (l, v) -> Fmt.pr " %s=%d" l v) labelled;
    Fmt.pr "@."
  end

module Rbc_runner
    (P : Abc_net.Protocol.S
           with type input = Rbc.input
            and type output = Rbc.output) =
struct
  let go ~label ~n ~f ~seed ~adversary ~faulty ~link_faults ~trace ~trace_out =
    let module E = Abc_net.Engine.Make (P) in
    let tr = make_trace ~trace ~trace_out in
    let config =
      E.config ~n ~f
        ~inputs:(Rbc.inputs ~n ~sender:(Node_id.of_int 0) Abc.Value.One)
        ~faulty
        ~adversary:(adversary_of ~n adversary)
        ~seed ?link_faults ?trace:tr ()
    in
    let t0 = Unix.gettimeofday () in
    let result = E.run config in
    Fmt.pr "%s n=%d f=%d seed=%d stop=%a messages=%d time=%d@." label n f seed
      Abc_net.Engine.pp_stop_reason result.E.stop
      (Abc_sim.Metrics.counter result.E.metrics "sent")
      result.E.duration;
    print_events_rate ~deliveries:result.E.deliveries t0;
    if link_faults <> None then print_link_stats result.E.metrics;
    Array.iteri
      (fun i outputs ->
        match outputs with
        | [ (time, Rbc.Delivered v) ] ->
          Fmt.pr "  node %d: delivered %a at t=%d@." i Abc.Value.pp v time
        | [] -> Fmt.pr "  node %d: no delivery@." i
        | _ -> ())
      result.E.outputs;
    write_trace_out ~protocol:label ~n ~f ~seed trace_out tr;
    if trace then Option.iter (print_trace ~n) tr
end

(* One runner for every string-payload broadcast (bracha over strings,
   the coded dispersal, imbs-raynal).  [B] fixes the protocol's input
   and output shapes; [P] is either the protocol itself or its
   reliable-link wrapping. *)
module Payload_rbc_runner
    (B : sig
      type input
      type output

      val inputs : n:int -> sender:Node_id.t -> string -> input array
      val delivered : output -> string
    end)
    (P : Abc_net.Protocol.S with type input = B.input and type output = B.output) =
struct
  let go ~label ~n ~f ~seed ~adversary ~faulty ~link_faults ~payload ~trace
      ~trace_out =
    let module E = Abc_net.Engine.Make (P) in
    let tr = make_trace ~trace ~trace_out in
    let config =
      E.config ~n ~f
        ~inputs:(B.inputs ~n ~sender:(Node_id.of_int 0) payload)
        ~faulty
        ~adversary:(adversary_of ~n adversary)
        ~seed ?link_faults ?trace:tr ()
    in
    let t0 = Unix.gettimeofday () in
    let result = E.run config in
    Fmt.pr "%s n=%d f=%d payload=%dB seed=%d stop=%a messages=%d time=%d@."
      label n f (String.length payload) seed Abc_net.Engine.pp_stop_reason
      result.E.stop
      (Abc_sim.Metrics.counter result.E.metrics "sent")
      result.E.duration;
    print_events_rate ~deliveries:result.E.deliveries t0;
    print_byte_counters ~n result.E.metrics;
    if link_faults <> None then print_link_stats result.E.metrics;
    Array.iteri
      (fun i outputs ->
        match outputs with
        | [ (time, out) ] ->
          let p = B.delivered out in
          Fmt.pr "  node %d: delivered %dB (fnv %08x) at t=%d@." i
            (String.length p) (payload_digest p) time
        | [] -> Fmt.pr "  node %d: no delivery@." i
        | _ -> ())
      result.E.outputs;
    write_trace_out ~protocol:label ~n ~f ~seed trace_out tr;
    if trace then Option.iter (print_trace ~n) tr
end

module Bracha_str = Abc.Bracha_rbc.Make (Abc.Payloads.String_payload)
module Ir_str = Abc.Ir_rbc.Make (Abc.Payloads.String_payload)

module Bracha_str_base = struct
  type input = Bracha_str.input
  type output = Bracha_str.output

  let inputs = Bracha_str.inputs
  let delivered (Bracha_str.Delivered p) = p
end

module Coded_base = struct
  type input = Abc.Coded_rbc.input
  type output = Abc.Coded_rbc.output

  let inputs = Abc.Coded_rbc.inputs
  let delivered (Abc.Coded_rbc.Delivered p) = p
end

module Ir_base = struct
  type input = Ir_str.input
  type output = Ir_str.output

  let inputs = Ir_str.inputs
  let delivered (Ir_str.Delivered p) = p
end

let garble s = String.map (fun c -> Char.chr (Char.code c lxor 0x5A)) s

let run_payload_rbc ~protocol ~n ~f ~seed ~adversary ~fault ~faulty_count
    ~link_faults ~reliable ~payload ~trace ~trace_out =
  let sender_first faults =
    match faults with
    | [] -> []
    | faults -> (Node_id.of_int 0, snd (List.hd faults)) :: List.tl faults
  in
  let two_faced_str _rng ~dst s =
    if Node_id.to_int dst < n / 2 then s else garble s
  in
  match protocol with
  | `Bracha ->
    if reliable then begin
      let module RL = Abc_net.Reliable_link.Make (Bracha_str) in
      let module R = Payload_rbc_runner (Bracha_str_base) (RL) in
      let faulty = sender_first (msg_agnostic_faulty ~n ~count:faulty_count fault) in
      R.go ~label:"bracha-rbc+rl" ~n ~f ~seed ~adversary ~faulty ~link_faults
        ~payload ~trace ~trace_out
    end
    else begin
      let module R = Payload_rbc_runner (Bracha_str_base) (Bracha_str) in
      let mutators =
        ( Bracha_str.Fault.substitute (fun _ s -> garble s),
          Bracha_str.Fault.equivocate two_faced_str,
          Bracha_str.Fault.substitute (fun _ s -> s) )
      in
      let faulty = sender_first (faulty_nodes ~n ~count:faulty_count fault mutators) in
      R.go ~label:"bracha-rbc" ~n ~f ~seed ~adversary ~faulty ~link_faults
        ~payload ~trace ~trace_out
    end
  | `Coded ->
    if reliable then begin
      let module RL = Abc_net.Reliable_link.Make (Abc.Coded_rbc) in
      let module R = Payload_rbc_runner (Coded_base) (RL) in
      let faulty = sender_first (msg_agnostic_faulty ~n ~count:faulty_count fault) in
      R.go ~label:"coded-rbc+rl" ~n ~f ~seed ~adversary ~faulty ~link_faults
        ~payload ~trace ~trace_out
    end
    else begin
      let module R = Payload_rbc_runner (Coded_base) (Abc.Coded_rbc) in
      let mutators =
        ( Abc.Coded_rbc.Fault.tamper,
          Abc.Coded_rbc.Fault.equivocate,
          Abc.Coded_rbc.Fault.tamper )
      in
      let faulty = sender_first (faulty_nodes ~n ~count:faulty_count fault mutators) in
      R.go ~label:"coded-rbc" ~n ~f ~seed ~adversary ~faulty ~link_faults
        ~payload ~trace ~trace_out
    end
  | `Ir ->
    if reliable then begin
      let module RL = Abc_net.Reliable_link.Make (Ir_str) in
      let module R = Payload_rbc_runner (Ir_base) (RL) in
      let faulty = sender_first (msg_agnostic_faulty ~n ~count:faulty_count fault) in
      R.go ~label:"ir-rbc+rl" ~n ~f ~seed ~adversary ~faulty ~link_faults
        ~payload ~trace ~trace_out
    end
    else begin
      let module R = Payload_rbc_runner (Ir_base) (Ir_str) in
      let mutators =
        ( Ir_str.Fault.substitute (fun _ s -> garble s),
          Ir_str.Fault.equivocate two_faced_str,
          Ir_str.Fault.substitute (fun _ s -> s) )
      in
      let faulty = sender_first (faulty_nodes ~n ~count:faulty_count fault mutators) in
      R.go ~label:"ir-rbc" ~n ~f ~seed ~adversary ~faulty ~link_faults ~payload
        ~trace ~trace_out
    end

let run_rbc n f seed adversary fault faulty_count loss dup partition reliable
    protocol payload_bytes trace trace_out =
  let link_faults = link_faults_of ~n ~loss ~dup ~partition in
  if protocol <> `Bracha || payload_bytes > 0 then begin
    (* String-payload path: synthetic payload, byte-counter report. *)
    let bytes = if payload_bytes > 0 then payload_bytes else 32 in
    let payload = synthetic_payload ~bytes ~seed in
    run_payload_rbc ~protocol ~n ~f ~seed ~adversary ~fault ~faulty_count
      ~link_faults ~reliable ~payload ~trace ~trace_out
  end
  else if reliable then begin
    let module RL = Abc_net.Reliable_link.Make (Rbc) in
    let module R = Rbc_runner (RL) in
    let faulty =
      match msg_agnostic_faulty ~n ~count:faulty_count fault with
      | [] -> []
      | faults -> (Node_id.of_int 0, snd (List.hd faults)) :: List.tl faults
    in
    R.go ~label:"bracha-rbc+rl" ~n ~f ~seed ~adversary ~faulty ~link_faults
      ~trace ~trace_out
  end
  else begin
    let module R = Rbc_runner (Rbc) in
    let two_faced _rng ~dst v =
      if Node_id.to_int dst < n / 2 then v else Abc.Value.negate v
    in
    let mutators =
      ( Rbc.Fault.substitute (fun _ v -> Abc.Value.negate v),
        Rbc.Fault.equivocate two_faced,
        Rbc.Fault.substitute (fun _ v -> v) )
    in
    (* The designated sender is node 0; faults apply there first when
       requested so the interesting case (faulty sender) is default. *)
    let faulty =
      match faulty_nodes ~n ~count:faulty_count fault mutators with
      | [] -> []
      | faults -> (Node_id.of_int 0, snd (List.hd faults)) :: List.tl faults
    in
    R.go ~label:"bracha-rbc" ~n ~f ~seed ~adversary ~faulty ~link_faults ~trace
      ~trace_out
  end

(* ---- consensus (bracha) ---- *)

module Consensus_runner (P : Abc.Harness.CONSENSUS with type input = B.input) =
struct
  let go ~label ~n ~f ~seed ~seeds ~adversary ~faulty ~link_faults ~options
      ~values ~trace ~trace_out =
    let module H = Abc.Harness.Make (P) in
    let rounds = ref [] in
    let failures = ref 0 in
    for k = 0 to seeds - 1 do
      let tr = if k = 0 then make_trace ~trace ~trace_out else None in
      let config =
        H.E.config ~n ~f
          ~inputs:(B.inputs ~n ~options values)
          ~faulty
          ~adversary:(adversary_of ~n adversary)
          ~seed:(seed + k) ?link_faults ?trace:tr ()
      in
      let t0 = Unix.gettimeofday () in
      let result, verdict = H.run config in
      if Abc.Harness.ok verdict then
        rounds := verdict.Abc.Harness.max_round :: !rounds
      else incr failures;
      if seeds = 1 then begin
        Fmt.pr "%s n=%d f=%d seed=%d (%a)@." label n f (seed + k) B.Options.pp
          options;
        Fmt.pr "  %a@." Abc.Harness.pp_verdict verdict;
        print_events_rate ~deliveries:verdict.Abc.Harness.deliveries t0;
        if link_faults <> None then print_link_stats result.H.E.metrics;
        List.iter
          (fun (id, time, d) ->
            Fmt.pr "  %a: %a at t=%d@." Node_id.pp id Abc.Decision.pp d time)
          verdict.Abc.Harness.decisions
      end;
      write_trace_out ~protocol:label ~n ~f ~seed:(seed + k) trace_out tr;
      if trace then Option.iter print_trace tr
    done;
    if seeds > 1 then begin
      Fmt.pr "%s n=%d f=%d seeds=%d..%d (%a)@." label n f seed
        (seed + seeds - 1) B.Options.pp options;
      Fmt.pr "  ok %d/%d, failures %d@." (List.length !rounds) seeds !failures;
      summarize_rounds "  " !rounds
    end
end

let run_consensus n f seed seeds adversary fault faulty_count inputs coin
    no_validation plain loss dup partition reliable trace trace_out =
  let options =
    {
      B.Options.coin = coin_of coin;
      validation = not no_validation;
      transport = (if plain then B.Options.Plain else B.Options.Reliable);
    }
  in
  let values = values_of ~n inputs in
  let link_faults = link_faults_of ~n ~loss ~dup ~partition in
  if reliable then begin
    let module RL = Abc_net.Reliable_link.Make (B) in
    let module R = Consensus_runner (struct
      include RL

      let value_of_input = B.value_of_input
    end) in
    R.go ~label:"bracha-consensus+rl" ~n ~f ~seed ~seeds ~adversary
      ~faulty:(msg_agnostic_faulty ~n ~count:faulty_count fault)
      ~link_faults ~options ~values ~trace ~trace_out
  end
  else begin
    let module R = Consensus_runner (struct
      include B

      let value_of_input = B.value_of_input
    end) in
    let mutators =
      (B.Fault.flip_value, B.Fault.equivocate_by_half ~n, B.Fault.force_decide)
    in
    R.go ~label:"bracha-consensus" ~n ~f ~seed ~seeds ~adversary
      ~faulty:(faulty_nodes ~n ~count:faulty_count fault mutators)
      ~link_faults ~options ~values ~trace ~trace_out
  end

(* ---- benor ---- *)

let run_benor n f seed seeds adversary fault faulty_count inputs coin mode =
  let module H = Abc.Harness.Make (struct
    include BO

    let value_of_input = BO.value_of_input
  end) in
  let mode = match mode with `Byzantine -> BO.Mode.Byzantine | `Crash -> BO.Mode.Crash in
  let mutators =
    (BO.Fault.flip_value, BO.Fault.equivocate_by_half ~n, BO.Fault.flip_value)
  in
  let faulty = faulty_nodes ~n ~count:faulty_count fault mutators in
  let values = values_of ~n inputs in
  let rounds = ref [] in
  let failures = ref 0 in
  for k = 0 to seeds - 1 do
    let config =
      H.E.config ~n ~f
        ~inputs:(BO.inputs ~n ~mode ~coin:(coin_of coin) values)
        ~faulty
        ~adversary:(adversary_of ~n adversary)
        ~seed:(seed + k) ()
    in
    let t0 = Unix.gettimeofday () in
    let _, verdict = H.run config in
    if Abc.Harness.ok verdict then rounds := verdict.Abc.Harness.max_round :: !rounds
    else incr failures;
    if seeds = 1 then begin
      Fmt.pr "ben-or(%a) n=%d f=%d seed=%d: %a@." BO.Mode.pp mode n f (seed + k)
        Abc.Harness.pp_verdict verdict;
      print_events_rate ~deliveries:verdict.Abc.Harness.deliveries t0
    end
  done;
  if seeds > 1 then begin
    Fmt.pr "ben-or(%a) n=%d f=%d seeds=%d..%d: ok %d/%d failures %d@." BO.Mode.pp
      mode n f seed (seed + seeds - 1) (List.length !rounds) seeds !failures;
    summarize_rounds "  " !rounds
  end

(* ---- mmr ---- *)

let run_mmr n f seed seeds adversary fault faulty_count inputs coin =
  let module M = Abc.Mmr_consensus in
  let module H = Abc.Harness.Make (struct
    include M

    let value_of_input = M.value_of_input
  end) in
  let coin =
    (* MMR's safety needs the common coin; local is for the ablation. *)
    match coin with `Local -> Abc.Coin.local | `Common -> Abc.Coin.common ~seed:7
  in
  let mutators =
    (M.Fault.flip_value, M.Fault.equivocate_by_half ~n, M.Fault.flip_value)
  in
  let faulty = faulty_nodes ~n ~count:faulty_count fault mutators in
  let values = values_of ~n inputs in
  let rounds = ref [] in
  let failures = ref 0 in
  for k = 0 to seeds - 1 do
    let config =
      H.E.config ~n ~f
        ~inputs:(M.inputs ~n ~coin values)
        ~faulty
        ~adversary:(adversary_of ~n adversary)
        ~seed:(seed + k) ()
    in
    let t0 = Unix.gettimeofday () in
    let _, verdict = H.run config in
    if Abc.Harness.ok verdict then rounds := verdict.Abc.Harness.max_round :: !rounds
    else incr failures;
    if seeds = 1 then begin
      Fmt.pr "mmr-consensus n=%d f=%d seed=%d: %a@." n f (seed + k)
        Abc.Harness.pp_verdict verdict;
      print_events_rate ~deliveries:verdict.Abc.Harness.deliveries t0
    end
  done;
  if seeds > 1 then begin
    Fmt.pr "mmr-consensus n=%d f=%d seeds=%d..%d: ok %d/%d failures %d@." n f seed
      (seed + seeds - 1) (List.length !rounds) seeds !failures;
    summarize_rounds "  " !rounds
  end

(* ---- acs ---- *)

let run_acs n f seed adversary fault faulty_count =
  let module Acs = Abc.Acs.Make (Abc.Payloads.Int_payload) in
  let module E = Abc_net.Engine.Make (Acs) in
  let mutators =
    ( (fun _rng (m : Acs.msg) -> m),
      (fun _rng ~dst:_ (m : Acs.msg) -> m),
      fun _rng (m : Acs.msg) -> m )
  in
  let faulty = faulty_nodes ~n ~count:faulty_count fault mutators in
  let config =
    E.config ~n ~f
      ~inputs:(Acs.inputs ~n ~coin:Abc.Coin.local (Array.init n (fun i -> 100 + i)))
      ~faulty
      ~adversary:(adversary_of ~n adversary)
      ~seed ()
  in
  let result = E.run config in
  Fmt.pr "acs n=%d f=%d seed=%d stop=%a messages=%d@." n f seed
    Abc_net.Engine.pp_stop_reason result.E.stop
    (Abc_sim.Metrics.counter result.E.metrics "sent");
  Array.iteri
    (fun i outputs ->
      match outputs with
      | [ (_, output) ] -> Fmt.pr "  node %d: %a@." i Acs.pp_output output
      | [] -> Fmt.pr "  node %d: no output@." i
      | _ -> ())
    result.E.outputs

(* ---- smr ---- *)

module Smr_runner
    (P : Abc_net.Protocol.S
           with type input = Abc_smr.Replicated_log.input
            and type output = Abc_smr.Replicated_log.output) =
struct
  module Log = Abc_smr.Replicated_log

  let go ~label ~n ~f ~seed ~adversary ~faulty ~link_faults ~slots ~trace
      ~trace_out =
    let module E = Abc_net.Engine.Make (P) in
    let tr = make_trace ~trace ~trace_out in
    let config =
      E.config ~n ~f
        ~inputs:
          (Log.inputs ~n ~slots ~coin:Abc.Coin.local (fun i k ->
               Printf.sprintf "cmd-%d.%d" i k))
        ~faulty
        ~adversary:(adversary_of ~n adversary)
        ~seed ?link_faults ?trace:tr ()
    in
    let t0 = Unix.gettimeofday () in
    let result = E.run config in
    Fmt.pr "%s n=%d f=%d slots=%d seed=%d stop=%a messages=%d time=%d@." label n
      f slots seed Abc_net.Engine.pp_stop_reason result.E.stop
      (Abc_sim.Metrics.counter result.E.metrics "sent")
      result.E.duration;
    print_events_rate ~deliveries:result.E.deliveries t0;
    if link_faults <> None then print_link_stats result.E.metrics;
    Array.iteri
      (fun i outputs ->
        match Log.log_of_outputs outputs with
        | Some log ->
          Fmt.pr "  replica %d: %a@." i Fmt.(list ~sep:(any " -> ") string) log
        | None -> Fmt.pr "  replica %d: incomplete@." i)
      result.E.outputs;
    write_trace_out ~protocol:label ~n ~f ~seed trace_out tr;
    if trace then Option.iter print_trace tr
end

(* ---- smr --atomic: batched, pipelined atomic broadcast ---- *)

module Atomic_runner
    (P : Abc_net.Protocol.S
           with type input = Abc_smr.Atomic_broadcast.input
            and type output = Abc_smr.Atomic_broadcast.output) =
struct
  module Ab = Abc_smr.Atomic_broadcast
  module Workload = Abc_smr.Workload

  let go ~label ~n ~f ~seed ~adversary ~faulty ~link_faults ~batch_size ~tx_rate
      ~epochs ~window ~tx_bytes ~checkpoint_interval ~recovery ~trace ~trace_out
      =
    let module E = Abc_net.Engine.Make (P) in
    let tr = make_trace ~trace ~trace_out in
    (* Open-loop workload: each node's mempool holds exactly the
       pipeline's capacity, arriving Poisson-style at --tx-rate. *)
    let workloads =
      Array.init n (fun i ->
          Workload.generate ~seed ~node:(Node_id.of_int i)
            ~count:(batch_size * epochs) ~rate:tx_rate ~tx_bytes)
    in
    let inputs =
      Ab.inputs ~n ~window ~checkpoint_interval ~batch_size ~epochs
        ~coin_seed:(seed + 7919)
        (Array.map Workload.txs workloads)
    in
    let recovery =
      Option.map
        (fun (snapshot, restore) -> { E.snapshot; restore })
        recovery
    in
    let config =
      E.config ~n ~f ~inputs ~faulty
        ~adversary:(adversary_of ~n adversary)
        ~seed ?link_faults ?recovery ?trace:tr ()
    in
    let t0 = Unix.gettimeofday () in
    let result = E.run config in
    Fmt.pr
      "%s n=%d f=%d epochs=%d batch=%d window=%d seed=%d stop=%a messages=%d time=%d@."
      label n f epochs batch_size window seed Abc_net.Engine.pp_stop_reason
      result.E.stop
      (Abc_sim.Metrics.counter result.E.metrics "sent")
      result.E.duration;
    print_events_rate ~deliveries:result.E.deliveries t0;
    if link_faults <> None then print_link_stats result.E.metrics;
    let offered =
      Array.fold_left (fun acc w -> acc + Workload.count w) 0 workloads
    in
    (match Ab.log_of_outputs result.E.outputs.(0) with
    | Some log ->
      let committed = List.length log in
      let duration = max 1 result.E.duration in
      let bytes_sent = Abc_sim.Metrics.counter result.E.metrics "bytes.sent" in
      let per_tx = if committed = 0 then 0 else bytes_sent / (n * committed) in
      Fmt.pr
        "  committed %d/%d txs in %d epochs (%.1f ticks/epoch, %.2f tx/ktick, %d B/tx per node)@."
        committed offered epochs
        (float_of_int duration /. float_of_int epochs)
        (1000. *. float_of_int committed /. float_of_int duration)
        per_tx
    | None -> ());
    Array.iteri
      (fun i outputs ->
        match Ab.log_of_outputs outputs with
        | Some log ->
          Fmt.pr "  replica %d: txs=%d digest=%08x@." i (List.length log)
            (payload_digest (String.concat ";" log))
        | None -> Fmt.pr "  replica %d: incomplete@." i)
      result.E.outputs;
    if checkpoint_interval > 0 then begin
      let c = Abc_sim.Metrics.counter result.E.metrics in
      Fmt.pr
        "  recovery: crashes=%d recoveries=%d dropped-while-down=%d \
         stale-timers=%d@."
        (c "node.crashed") (c "node.recovered") (c "dropped.crashed")
        (c "timer.stale");
      Array.iteri
        (fun i outputs ->
          match Ab.stats_of_outputs outputs with
          | Some (max_live, checkpoints, transfers) ->
            Fmt.pr "  replica %d gc: max-live=%d checkpoints=%d transfers=%d@."
              i max_live checkpoints transfers
          | None -> ())
        result.E.outputs
    end;
    write_trace_out ~protocol:label ~n ~f ~seed trace_out tr;
    if trace then Option.iter print_trace tr
end

let run_smr_atomic ~n ~f ~seed ~adversary ~fault ~faulty_count ~link_faults
    ~batch_size ~tx_rate ~epochs ~window ~tx_bytes ~checkpoint_interval ~crash
    ~reliable ~trace ~trace_out =
  let module Ab = Abc_smr.Atomic_broadcast in
  (* Crash-recovery needs the raw protocol: under --reliable the
     transport's pre-crash acks would falsely cover sequence numbers a
     restarted node never saw, and without checkpoints a recovered
     node has no catch-up path (epoch agreements are never
     retransmitted). *)
  if crash <> [] && reliable then begin
    Fmt.epr "abc-run: --crash is incompatible with --reliable@.";
    exit 2
  end;
  if crash <> [] && checkpoint_interval <= 0 then begin
    Fmt.epr
      "abc-run: --crash needs --checkpoint-interval > 0 (a recovered node \
       catches up via stable checkpoints)@.";
    exit 2
  end;
  List.iter
    (fun (node, _) ->
      if node < 0 || node >= n then begin
        Fmt.epr "abc-run: --crash node %d out of range [0, %d)@." node n;
        exit 2
      end)
    crash;
  let crash_faulty =
    List.map
      (fun (node, schedule) ->
        (Node_id.of_int node, Behaviour.Crash_recover schedule))
      crash
  in
  if reliable then begin
    let module RL = Abc_net.Reliable_link.Make (Ab) in
    let module R = Atomic_runner (RL) in
    R.go ~label:"smr-atomic+rl" ~n ~f ~seed ~adversary
      ~faulty:(msg_agnostic_faulty ~n ~count:faulty_count fault)
      ~link_faults ~batch_size ~tx_rate ~epochs ~window ~tx_bytes
      ~checkpoint_interval ~recovery:None ~trace ~trace_out
  end
  else begin
    let module R = Atomic_runner (Ab) in
    let mutators =
      ( (fun _rng (m : Ab.msg) -> m),
        (fun _rng ~dst:_ (m : Ab.msg) -> m),
        fun _rng (m : Ab.msg) -> m )
    in
    let recovery =
      if crash = [] then None else Some (Ab.snapshot, Ab.restore)
    in
    R.go ~label:"smr-atomic" ~n ~f ~seed ~adversary
      ~faulty:(faulty_nodes ~n ~count:faulty_count fault mutators @ crash_faulty)
      ~link_faults ~batch_size ~tx_rate ~epochs ~window ~tx_bytes
      ~checkpoint_interval ~recovery ~trace ~trace_out
  end

let run_smr n f seed adversary fault faulty_count slots atomic batch_size
    tx_rate epochs window tx_bytes checkpoint_interval crash loss dup partition
    reliable trace trace_out =
  let module Log = Abc_smr.Replicated_log in
  let link_faults = link_faults_of ~n ~loss ~dup ~partition in
  if (crash <> [] || checkpoint_interval > 0) && not atomic then begin
    Fmt.epr "abc-run: --crash / --checkpoint-interval need --atomic@.";
    exit 2
  end;
  if atomic then
    run_smr_atomic ~n ~f ~seed ~adversary ~fault ~faulty_count ~link_faults
      ~batch_size ~tx_rate ~epochs ~window ~tx_bytes ~checkpoint_interval
      ~crash ~reliable ~trace ~trace_out
  else if reliable then begin
    let module RL = Abc_net.Reliable_link.Make (Log) in
    let module R = Smr_runner (RL) in
    R.go ~label:"smr+rl" ~n ~f ~seed ~adversary
      ~faulty:(msg_agnostic_faulty ~n ~count:faulty_count fault)
      ~link_faults ~slots ~trace ~trace_out
  end
  else begin
    let module R = Smr_runner (Log) in
    let mutators =
      ( (fun _rng (m : Log.msg) -> m),
        (fun _rng ~dst:_ (m : Log.msg) -> m),
        fun _rng (m : Log.msg) -> m )
    in
    R.go ~label:"smr" ~n ~f ~seed ~adversary
      ~faulty:(faulty_nodes ~n ~count:faulty_count fault mutators)
      ~link_faults ~slots ~trace ~trace_out
  end

(* ---- check (bounded model checking) ---- *)

let run_check n f seed depth max_states fault jobs =
  ignore seed;
  let module Rbc = Abc.Bracha_rbc.Binary in
  let module X = Abc_check.Explore.Make (Rbc) in
  let two_faced _rng ~dst v =
    if Node_id.to_int dst < n / 2 then v else Abc.Value.negate v
  in
  let faulty =
    match fault with
    | `None -> []
    | `Silent -> [ (Node_id.of_int 0, Behaviour.Silent) ]
    | `Crash -> [ (Node_id.of_int 0, Behaviour.Crash_after 2) ]
    | `Equivocate ->
      [ (Node_id.of_int 0, Behaviour.Equivocate (Rbc.Fault.equivocate two_faced)) ]
    | `Flip | `Force_decide | `Replay ->
      [ (Node_id.of_int 1,
         Behaviour.Mutate (Rbc.Fault.substitute (fun _ v -> Abc.Value.negate v))) ]
  in
  let agreement outputs =
    let delivered =
      Array.to_list outputs
      |> List.concat_map (List.map (fun (Rbc.Delivered v) -> v))
    in
    match delivered with
    | [] -> true
    | v :: rest -> List.for_all (Abc.Value.equal v) rest
  in
  let cfg =
    {
      X.n;
      f;
      inputs = Rbc.inputs ~n ~sender:(Node_id.of_int 0) Abc.Value.One;
      faulty;
      invariant = agreement;
      max_states;
      max_depth = (if depth = 0 then None else Some depth);
      drop_plan = None;
    }
  in
  (* jobs = 1 keeps the historical sequential search (and its exact
     explored/deadlock counts); anything else fans the top-level
     branches out over a domain pool. *)
  let outcome =
    match jobs with
    | Some 1 -> X.run cfg
    | Some j -> X.run_parallel ~pool:(Abc_exec.Pool.create ~jobs:j ()) cfg
    | None -> X.run cfg
  in
  Fmt.pr
    "model-check rbc n=%d f=%d depth<=%s: explored=%d exhausted=%b deadlocks=%d      depth_reached=%d@."
    n f
    (if depth = 0 then "inf" else string_of_int depth)
    outcome.X.explored outcome.X.exhausted outcome.X.deadlocks
    outcome.X.depth_reached;
  match outcome.X.violation with
  | None -> Fmt.pr "  agreement holds on every explored schedule@."
  | Some v ->
    Fmt.pr "  VIOLATION after %d deliveries:@." (List.length v.X.schedule);
    List.iter
      (fun (src, dst, m) ->
        Fmt.pr "    %a -> %a : %s@." Node_id.pp src Node_id.pp dst m)
      v.X.schedule

(* ---- command wiring ---- *)

let rbc_cmd =
  let term =
    Term.(
      const run_rbc $ n_arg $ f_arg $ seed_arg $ adversary_arg $ fault_kind_arg
      $ faulty_count_arg $ loss_arg $ dup_arg $ partition_arg $ reliable_arg
      $ protocol_arg $ payload_bytes_arg $ trace_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "rbc"
       ~doc:
         "Run one reliable broadcast (bracha, coded or ir; see --protocol and \
          --payload-bytes).")
    term

let consensus_cmd =
  let no_validation =
    Arg.(value & flag & info [ "no-validation" ] ~doc:"Disable message validation.")
  in
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ] ~doc:"Plain broadcasts instead of reliable broadcast.")
  in
  let term =
    Term.(
      const run_consensus $ n_arg $ f_arg $ seed_arg $ seeds_arg $ adversary_arg
      $ fault_kind_arg $ faulty_count_arg $ inputs_arg $ coin_arg $ no_validation
      $ plain $ loss_arg $ dup_arg $ partition_arg $ reliable_arg $ trace_arg
      $ trace_out_arg)
  in
  Cmd.v (Cmd.info "consensus" ~doc:"Run Bracha's randomized Byzantine consensus.") term

let benor_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("byzantine", `Byzantine); ("crash", `Crash) ]) `Byzantine
      & info [ "mode" ] ~docv:"MODE" ~doc:"Fault mode: $(b,byzantine) or $(b,crash).")
  in
  let term =
    Term.(
      const run_benor $ n_arg $ f_arg $ seed_arg $ seeds_arg $ adversary_arg
      $ fault_kind_arg $ faulty_count_arg $ inputs_arg $ coin_arg $ mode)
  in
  Cmd.v (Cmd.info "benor" ~doc:"Run the Ben-Or baseline protocol.") term

let mmr_cmd =
  let coin_common =
    Arg.(
      value
      & opt (enum [ ("local", `Local); ("common", `Common) ]) `Common
      & info [ "coin" ] ~docv:"COIN"
          ~doc:
            "Round coin: $(b,common) (default; required for safety) or $(b,local) \
             (ablation only — violates agreement).")
  in
  let term =
    Term.(
      const run_mmr $ n_arg $ f_arg $ seed_arg $ seeds_arg $ adversary_arg
      $ fault_kind_arg $ faulty_count_arg $ inputs_arg $ coin_common)
  in
  Cmd.v
    (Cmd.info "mmr" ~doc:"Run MMR (2014) binary agreement, Bracha's modern descendant.")
    term

let acs_cmd =
  let term =
    Term.(
      const run_acs $ n_arg $ f_arg $ seed_arg $ adversary_arg $ fault_kind_arg
      $ faulty_count_arg)
  in
  Cmd.v (Cmd.info "acs" ~doc:"Run an asynchronous common subset.") term

let check_cmd =
  let depth =
    Arg.(
      value & opt int 8
      & info [ "depth" ] ~docv:"D"
          ~doc:"Schedule-length bound (0 = unbounded, may be huge).")
  in
  let max_states =
    Arg.(
      value
      & opt int 500_000
      & info [ "states" ] ~docv:"K" ~doc:"Exploration budget in states.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Worker domains for the branch fan-out (default 1: the exact \
             sequential search).  Parallel runs explore the same space but \
             report per-branch state counts.")
  in
  let term =
    Term.(
      const run_check $ n_arg $ f_arg $ seed_arg $ depth $ max_states
      $ fault_kind_arg $ jobs)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check reliable broadcast over every schedule prefix.")
    term

let smr_cmd =
  let slots =
    Arg.(value & opt int 3 & info [ "slots" ] ~docv:"K" ~doc:"Log length in slots.")
  in
  let atomic =
    Arg.(
      value & flag
      & info [ "atomic" ]
          ~doc:
            "Run the batched, pipelined atomic broadcast (HoneyBadger-style \
             epochs over coded-RBC ACS) instead of the slot-per-command \
             replicated log.  See --batch-size, --tx-rate, --epochs, \
             --window and --tx-bytes.")
  in
  let batch_size =
    Arg.(
      value & opt int 8
      & info [ "batch-size" ] ~docv:"B"
          ~doc:"Transactions each node proposes per epoch (with --atomic).")
  in
  let tx_rate =
    Arg.(
      value
      & opt float 0.5
      & info [ "tx-rate" ] ~docv:"R"
          ~doc:
            "Open-loop workload: mean client transactions arriving per \
             virtual tick per node (Poisson inter-arrivals, deterministic \
             in --seed; with --atomic).")
  in
  let epochs =
    Arg.(
      value & opt int 3
      & info [ "epochs" ] ~docv:"E" ~doc:"Epochs to run (with --atomic).")
  in
  let window =
    Arg.(
      value & opt int 2
      & info [ "window" ] ~docv:"W"
          ~doc:
            "Pipeline width: epochs allowed in flight above the last \
             committed one (with --atomic).")
  in
  let tx_bytes =
    Arg.(
      value & opt int 32
      & info [ "tx-bytes" ] ~docv:"BYTES"
          ~doc:"Wire size each transaction is padded to (with --atomic).")
  in
  let checkpoint_interval =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-interval" ] ~docv:"C"
          ~doc:
            "Broadcast a checkpoint digest vote every $(docv) epochs (with \
             --atomic): 2f+1 matching votes make the checkpoint stable, \
             garbage-collecting the epochs below it and enabling \
             state-transfer catch-up.  0 (default) disables checkpoints.")
  in
  let crash_plan_conv =
    let parse s =
      match List.map int_of_string_opt (String.split_on_char ':' s) with
      | Some node :: (_ :: _ as rest) -> (
        let rec pairs acc = function
          | [] -> Some (List.rev acc)
          | Some crash :: Some rejoin :: tl -> pairs ((crash, rejoin) :: acc) tl
          | _ -> None
        in
        match pairs [] rest with
        | Some schedule when Behaviour.validate_schedule schedule ->
          Ok (node, schedule)
        | Some _ | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "crash plan %S: want NODE:CRASH:REJOIN[:CRASH:REJOIN...] \
                   with crash < rejoin and strictly increasing ticks"
                  s)))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "crash plan %S: want NODE:CRASH:REJOIN[:CRASH:REJOIN...]" s))
    in
    let print ppf (node, schedule) =
      Fmt.pf ppf "%d%a" node
        Fmt.(
          list ~sep:nop (fun ppf (c, r) -> pf ppf ":%d:%d" c r))
        schedule
    in
    Arg.conv (parse, print)
  in
  let crash =
    Arg.(
      value
      & opt_all crash_plan_conv []
      & info [ "crash" ] ~docv:"PLAN"
          ~doc:
            "Crash-recovery schedule $(i,NODE:CRASH:REJOIN[:CRASH:REJOIN...]) \
             (with --atomic; repeatable, one plan per node): crash the node \
             at each CRASH tick — losing volatile state, keeping its durable \
             store — and restart it at the matching REJOIN tick.  Needs \
             --checkpoint-interval > 0 and is incompatible with --reliable.")
  in
  let term =
    Term.(
      const run_smr $ n_arg $ f_arg $ seed_arg $ adversary_arg $ fault_kind_arg
      $ faulty_count_arg $ slots $ atomic $ batch_size $ tx_rate $ epochs
      $ window $ tx_bytes $ checkpoint_interval $ crash $ loss_arg $ dup_arg
      $ partition_arg $ reliable_arg $ trace_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "smr"
       ~doc:"Run the replicated log, or the atomic broadcast with --atomic.")
    term

let () =
  let doc = "Asynchronous Byzantine consensus (Bracha, PODC 1984) simulator" in
  let info = Cmd.info "abc-run" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ rbc_cmd; consensus_cmd; benor_cmd; mmr_cmd; acs_cmd; smr_cmd; check_cmd ]))
