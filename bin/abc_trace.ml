(* abc-trace: analyzer for abc.trace JSON Lines files.

     abc-trace summary   trace.jsonl
     abc-trace instances trace.jsonl
     abc-trace timeline  trace.jsonl --instance ba3
     abc-trace diagram   trace.jsonl --n 4

   Traces are produced by `abc-run <protocol> --trace-out FILE` (or any
   code calling Abc_sim.Trace.write_jsonl).  The schema is documented
   in OBSERVABILITY.md.  All output is deterministic: the same trace
   file always renders byte-identically. *)

module Trace_file = Abc_sim.Trace_file
module Trace_report = Abc_sim.Trace_report
open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"Trace file (JSON Lines, schema abc.trace).")

let load file =
  match Trace_file.read file with
  | Ok t -> t
  | Error msg ->
    Fmt.epr "abc-trace: %s: %s@." file msg;
    exit 1

let run_summary file node epoch =
  print_string (Trace_report.summary ?node ?epoch (load file))

let run_instances file =
  match Trace_report.instances (load file) with
  | [] -> print_endline "(no scoped instances in this trace)"
  | instances -> List.iter print_endline instances

let run_timeline file instance node epoch =
  print_string (Trace_report.timeline ?instance ?node ?epoch (load file))

let run_diagram file lanes =
  let t = load file in
  let n = match lanes with Some n -> n | None -> Trace_file.nodes t in
  if n <= 0 then begin
    Fmt.epr "abc-trace: cannot infer the node count; pass --n@.";
    exit 1
  end;
  print_string
    (Abc_net.Sequence_diagram.render_entries t.Trace_file.entries ~n)

let node_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node" ] ~docv:"N"
        ~doc:"Only count/show events recorded at node $(docv).")

let epoch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"E"
        ~doc:
          "Only count/show events of atomic-broadcast epoch $(docv): events \
           whose kind carries that epoch, or scoped under an $(b,epochE) \
           instance path.")

let summary_cmd =
  let term = Term.(const run_summary $ file_arg $ node_arg $ epoch_arg) in
  Cmd.v
    (Cmd.info "summary"
       ~doc:
         "Print a deterministic overview: run metadata, entry counts, events \
          by kind and node, quorums, coin flips and decisions.  --node and \
          --epoch restrict the tally.")
    term

let instances_cmd =
  let term = Term.(const run_instances $ file_arg) in
  Cmd.v
    (Cmd.info "instances"
       ~doc:"List the distinct instance paths appearing in the trace.")
    term

let timeline_cmd =
  let instance =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"PATH"
          ~doc:
            "Only show events of instance $(docv) (or nested below it, e.g. \
             $(b,ba3) also shows $(b,ba3/...)).")
  in
  let term =
    Term.(const run_timeline $ file_arg $ instance $ node_arg $ epoch_arg)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Print every entry in recording order, one line each.  --instance, \
          --node and --epoch compose as a conjunction.")
    term

let diagram_cmd =
  let lanes =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "nodes" ] ~docv:"N"
          ~doc:
            "Number of lanes.  Defaults to the trace's $(b,n) metadata \
             (widened to cover every node id seen).")
  in
  let term = Term.(const run_diagram $ file_arg $ lanes) in
  Cmd.v
    (Cmd.info "diagram"
       ~doc:"Render the deliveries as an ASCII message-sequence diagram.")
    term

let () =
  let doc = "Analyze abc.trace execution traces (see OBSERVABILITY.md)" in
  let info = Cmd.info "abc-trace" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ summary_cmd; instances_cmd; timeline_cmd; diagram_cmd ]))
