(* Don't sample schedules — enumerate them.

   Randomized testing runs one delivery order per seed.  The bounded
   model checker explores EVERY order: breadth-first over all
   reachable system states, checking an invariant at each one.

   Part 1 verifies that a four-node Bracha reliable broadcast with a
   two-faced sender preserves agreement on every schedule prefix of
   up to nine deliveries (tens of thousands of distinct states).

   Part 2 hands the checker a deliberately broken protocol — "decide
   on the first value you hear" — and shows the counterexample it
   extracts: a concrete delivery sequence driving two nodes to
   different decisions.

   Run with: dune exec examples/model_checking.exe *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Protocol = Abc_net.Protocol
module Rbc = Abc.Bracha_rbc.Binary
module Check = Abc_check.Explore.Make (Rbc)

let rbc_agreement outputs =
  let delivered =
    Array.to_list outputs
    |> List.concat_map (List.map (fun (Rbc.Delivered v) -> v))
  in
  match delivered with
  | [] -> true
  | v :: rest -> List.for_all (Abc.Value.equal v) rest

let () =
  Fmt.pr "Part 1: exhaustive check of reliable broadcast (n=4, f=1).@.";
  let two_faced _rng ~dst v =
    if Node_id.to_int dst < 2 then v else Abc.Value.negate v
  in
  let outcome =
    Check.run
      {
        Check.n = 4;
        f = 1;
        inputs = Rbc.inputs ~n:4 ~sender:(Node_id.of_int 0) Abc.Value.One;
        faulty =
          [ (Node_id.of_int 0, Behaviour.Equivocate (Rbc.Fault.equivocate two_faced)) ];
        invariant = rbc_agreement;
        max_states = 500_000;
        max_depth = Some 9;
        drop_plan = None;
      }
  in
  Fmt.pr
    "  explored %d distinct states (every schedule prefix of <= 9 deliveries)@."
    outcome.Check.explored;
  (match outcome.Check.violation with
  | None -> Fmt.pr "  agreement holds in every one of them.@."
  | Some _ -> Fmt.pr "  UNEXPECTED violation!@.")

(* A protocol that is obviously wrong: decide on the first claim you
   receive. *)
module Race = struct
  type input = Abc.Value.t
  type msg = Claim of Abc.Value.t
  type output = Chose of Abc.Value.t
  type state = { chosen : bool }

  let name = "race"
  let initial _ctx input = ({ chosen = false }, [ Protocol.Broadcast (Claim input) ])

  let on_message _ctx state ~src:_ (Claim v) =
    if state.chosen then (state, [], []) else ({ chosen = true }, [], [ Chose v ])

  let is_terminal (Chose _) = true
  let on_timeout = Protocol.no_timeout
  let msg_label (Claim _) = "claim"
  let msg_bytes (Claim _) = 2
  let pp_msg ppf (Claim v) = Fmt.pf ppf "claim(%a)" Abc.Value.pp v
  let pp_output ppf (Chose v) = Fmt.pf ppf "chose(%a)" Abc.Value.pp v
end

module Check_race = Abc_check.Explore.Make (Race)

let () =
  Fmt.pr "@.Part 2: a deliberately unsafe protocol (first-claim-wins).@.";
  let agreement outputs =
    let chosen =
      Array.to_list outputs |> List.concat_map (List.map (fun (Race.Chose v) -> v))
    in
    match chosen with
    | [] -> true
    | v :: rest -> List.for_all (Abc.Value.equal v) rest
  in
  let outcome =
    Check_race.run
      {
        Check_race.n = 2;
        f = 0;
        inputs = [| Abc.Value.Zero; Abc.Value.One |];
        faulty = [];
        invariant = agreement;
        max_states = 10_000;
        max_depth = None;
        drop_plan = None;
      }
  in
  match outcome.Check_race.violation with
  | Some v ->
    Fmt.pr "  counterexample found — the schedule that breaks agreement:@.";
    List.iter
      (fun (src, dst, m) ->
        Fmt.pr "    deliver %a -> %a : %s@." Node_id.pp src Node_id.pp dst m)
      v.Check_race.schedule;
    Fmt.pr
      "  (each node decided on whichever claim the scheduler delivered first)@."
  | None -> Fmt.pr "  no violation found (unexpected).@."
