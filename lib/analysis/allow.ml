type key = Any | Snippet of string | Fingerprint of string

type entry = { rule : string; path : string; key : key; raw : string }

let parse_line line =
  let raw = String.trim line in
  if String.length raw = 0 || raw.[0] = '#' then None
  else begin
    match String.index_opt raw ' ' with
    | None -> None (* a rule with no path allows nothing; ignore *)
    | Some i ->
      let rule = String.sub raw 0 i in
      let rest = String.trim (String.sub raw i (String.length raw - i)) in
      let path, tail =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some j ->
          ( String.sub rest 0 j,
            String.trim (String.sub rest j (String.length rest - j)) )
      in
      if String.length path = 0 then None
      else begin
        let key =
          if tail = "" then Any
          else if String.length tail >= 3 && String.sub tail 0 3 = "fp:" then begin
            (* fp:<hex> [trailing comment ignored] *)
            let fp =
              match String.index_opt tail ' ' with
              | None -> String.sub tail 3 (String.length tail - 3)
              | Some k -> String.sub tail 3 (k - 3)
            in
            Fingerprint fp
          end
          else Snippet tail
        in
        Some { rule; path; key; raw }
      end
  end

let of_string text =
  String.split_on_char '\n' text |> List.filter_map parse_line

let load ~file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    of_string text
  end

let path_matches ~entry_path ~file =
  String.equal entry_path file
  || begin
    let suffix = "/" ^ entry_path in
    let fl = String.length file and sl = String.length suffix in
    fl >= sl && String.equal (String.sub file (fl - sl) sl) suffix
  end

let entry_permits e (finding : Finding.t) =
  String.equal e.rule finding.Finding.rule
  && path_matches ~entry_path:e.path ~file:finding.Finding.file
  && (match e.key with
     | Any -> true
     | Snippet s -> String.equal s finding.Finding.snippet
     | Fingerprint fp -> String.equal fp (Finding.fingerprint finding))

let permits entries finding = List.exists (fun e -> entry_permits e finding) entries

let unused entries findings =
  List.filter
    (fun e -> not (List.exists (fun f -> entry_permits e f) findings))
    entries
