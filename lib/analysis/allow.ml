type entry = { rule : string; path : string; snippet : string option }

let parse_line line =
  let line = String.trim line in
  if String.length line = 0 || line.[0] = '#' then None
  else begin
    match String.index_opt line ' ' with
    | None -> None (* a rule with no path allows nothing; ignore *)
    | Some i ->
      let rule = String.sub line 0 i in
      let rest = String.trim (String.sub line i (String.length line - i)) in
      let path, snippet =
        match String.index_opt rest ' ' with
        | None -> (rest, None)
        | Some j ->
          ( String.sub rest 0 j,
            Some (String.trim (String.sub rest j (String.length rest - j))) )
      in
      if String.length path = 0 then None else Some { rule; path; snippet }
  end

let of_string text =
  String.split_on_char '\n' text |> List.filter_map parse_line

let load ~file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    of_string text
  end

let path_matches ~entry_path ~file =
  String.equal entry_path file
  || begin
    let suffix = "/" ^ entry_path in
    let fl = String.length file and sl = String.length suffix in
    fl >= sl && String.equal (String.sub file (fl - sl) sl) suffix
  end

let permits entries (finding : Finding.t) =
  List.exists
    (fun e ->
      String.equal e.rule finding.rule
      && path_matches ~entry_path:e.path ~file:finding.file
      && match e.snippet with
         | None -> true
         | Some s -> String.equal s finding.snippet)
    entries
