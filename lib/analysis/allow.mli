(** The lint allowlist ([lint.allow]): explicit, reviewed exceptions.

    Format, one entry per line:

    {v
    # comment
    <rule> <path> [<snippet>]
    v}

    [rule] is a rule id ([determinism], [poly-compare], [quorum],
    [interface]); [path] is matched against the end of the finding's
    path (so entries work regardless of the scan root); the optional
    [snippet] — the rest of the line, verbatim — restricts the entry
    to findings with exactly that snippet (as printed in the report).
    An entry without a snippet allows every finding of that rule in
    that file: prefer snippet-qualified entries. *)

type entry = { rule : string; path : string; snippet : string option }

val of_string : string -> entry list
(** Parse allowlist text; blank lines and [#] comments are skipped. *)

val load : file:string -> entry list
(** [of_string] over the file's contents; a missing file is an empty
    allowlist. *)

val permits : entry list -> Finding.t -> bool
