(** The lint allowlist ([lint.allow]): explicit, reviewed exceptions.

    Format, one entry per line:

    {v
    # comment
    <rule> <path> fp:<fingerprint>  [trailing comment]
    <rule> <path> <snippet>
    <rule> <path>
    v}

    [rule] is a rule id (see {!Rule_info.all}); [path] is matched
    against the end of the finding's path (so entries work regardless
    of the scan root).  The third field selects {e which} findings of
    that rule in that file are allowed:

    - [fp:<hex>] — the preferred, span-based form: it matches the
      finding's {!Finding.fingerprint} (a stable hash of rule, file
      basename and the whitespace-normalized source text of the
      finding's span).  Fingerprints survive unrelated edits (they do
      not embed line numbers) and anything after the fingerprint token
      is ignored, so entries carry the snippet and the review reason
      as an inline comment.  [abc-lint --format json] prints each
      finding's fingerprint; [--prune-allow] reports entries that no
      longer match anything.
    - a verbatim snippet (legacy form) — matches findings whose
      snippet is exactly that text; no trailing comment possible.
    - nothing — allows every finding of that rule in that file;
      prefer fingerprint entries so new violations in the same file
      still fail. *)

type key = Any | Snippet of string | Fingerprint of string

type entry = {
  rule : string;
  path : string;
  key : key;
  raw : string;  (** the line as written, for [--prune-allow] output *)
}

val of_string : string -> entry list
(** Parse allowlist text; blank lines and [#] comments are skipped. *)

val load : file:string -> entry list
(** [of_string] over the file's contents; a missing file is an empty
    allowlist. *)

val permits : entry list -> Finding.t -> bool

val unused : entry list -> Finding.t list -> entry list
(** [unused entries findings] is the entries matching none of
    [findings] (pass the {e unfiltered} finding list) — the stale
    entries [--prune-allow] reports. *)
