open Parsetree

(* ----------------------------------------------------------------- *)
(* Locations, snippets, longidents                                   *)
(* ----------------------------------------------------------------- *)

let span_of_loc (loc : Location.t) : Finding.span =
  let s = loc.Location.loc_start and e = loc.Location.loc_end in
  {
    start_line = s.Lexing.pos_lnum;
    start_col = s.Lexing.pos_cnum - s.Lexing.pos_bol;
    end_line = e.Lexing.pos_lnum;
    end_col = e.Lexing.pos_cnum - e.Lexing.pos_bol;
  }

let snippet_cap = 72

(* Whitespace-collapsed source text of [loc], capped: the snippet is
   the allowlist/fingerprint key, so it must be short and stable. *)
let snippet_at ~source (loc : Location.t) =
  let a = loc.Location.loc_start.Lexing.pos_cnum in
  let b = loc.Location.loc_end.Lexing.pos_cnum in
  if a < 0 || b > String.length source || b <= a then ""
  else begin
    let raw = String.sub source a (b - a) in
    let buf = Buffer.create (String.length raw) in
    let pending_ws = ref false in
    String.iter
      (fun c ->
        if c = ' ' || c = '\t' || c = '\n' || c = '\r' then pending_ws := true
        else begin
          if !pending_ws && Buffer.length buf > 0 then Buffer.add_char buf ' ';
          pending_ws := false;
          Buffer.add_char buf c
        end)
      raw;
    let s = Buffer.contents buf in
    if String.length s <= snippet_cap then s
    else String.sub s 0 (snippet_cap - 3) ^ "..."
  end

let rec lid_components acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (p, s) -> lid_components (s :: acc) p
  | Longident.Lapply (p, _) -> lid_components acc p

let components l = lid_components [] l

type ctx = {
  path : string;
  file : string;
  source : string;
  findings : Finding.t list ref;
}

let flag ctx ~rule ~loc ?snippet message =
  let snippet =
    match snippet with Some s -> s | None -> snippet_at ~source:ctx.source loc
  in
  ctx.findings :=
    Finding.v ~rule ~file:ctx.file ~span:(span_of_loc loc) ~snippet message
    :: !(ctx.findings)

(* ----------------------------------------------------------------- *)
(* Generic collectors                                                *)
(* ----------------------------------------------------------------- *)

(* All value names bound by patterns anywhere inside [e] — an
   overapproximation of "locally bound in scope", which makes the free
   variable analyses below conservative (they underreport, never
   corrupting a clean tree with false captures). *)
let bound_names_in_expr e =
  let names = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
            names := txt :: !names
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.expr it e;
  !names

(* Unqualified value identifiers used inside [e], with locations. *)
let used_lidents_in_expr e =
  let used = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_ident { txt = Longident.Lident s; _ } ->
            used := (s, x.pexp_loc) :: !used
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.expr it e;
  List.rev !used

(* Does any longident in the file (expressions, types, constructors,
   module expressions) mention module [m] as a path component? *)
let mentions_module (str : structure) m =
  let found = ref false in
  let note l = if List.exists (String.equal m) (components l) then found := true in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_ident { txt; _ } | Pexp_construct ({ txt; _ }, _)
          | Pexp_new { txt; _ } ->
            note txt
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; _ }, _) | Ptyp_class ({ txt; _ }, _) -> note txt
          | _ -> ());
          Ast_iterator.default_iterator.typ self t);
      module_expr =
        (fun self me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; _ } -> note txt
          | _ -> ());
          Ast_iterator.default_iterator.module_expr self me);
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> note txt
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.structure it str;
  !found

let rec strip_expr e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_expr e
  | _ -> e

let rec strip_pat p =
  match p.ppat_desc with Ppat_constraint (p, _) -> strip_pat p | _ -> p

let is_lambda e =
  match (strip_expr e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let int_literal e =
  match (strip_expr e).pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> int_of_string_opt s
  | _ -> None

(* [state.f], [t.n], bare [f]/[n]: the protocol parameters as they
   appear in threshold arithmetic. *)
let param_name e =
  match (strip_expr e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> Some s
  | Pexp_field (_, { txt; _ }) -> (
    match components txt with
    | [] -> None
    | comps -> Some (List.nth comps (List.length comps - 1)))
  | _ -> None

(* ----------------------------------------------------------------- *)
(* Module-level mutable bindings (shared by two rules)               *)
(* ----------------------------------------------------------------- *)

let mutable_makers =
  [
    ("Hashtbl", "create"); ("Queue", "create"); ("Buffer", "create");
    ("Stack", "create"); ("Atomic", "make");
  ]

let mutable_rhs_head e =
  match (strip_expr e).pexp_desc with
  | Pexp_apply (f, _) -> (
    match f.pexp_desc with
    | Pexp_ident { txt = Longident.Lident "ref"; _ } -> Some "ref"
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident m, fn); _ }
      when List.exists (fun (m', f') -> String.equal m m' && String.equal fn f') mutable_makers
      ->
      Some (m ^ "." ^ fn)
    | _ -> None)
  | _ -> None

(* Top-level [let x = ref ...] / [Hashtbl.create ...] bindings of the
   unit.  Deliberately top structure items only: nested-module state is
   out of scope for the heuristic, exactly like the token rule's
   column-0 test, and [Array.make]/[Bytes.create] stay excluded
   (top-level arrays here are precomputed constant tables). *)
let module_level_mutables (str : structure) =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.filter_map
          (fun vb ->
            match ((strip_pat vb.pvb_pat).ppat_desc, mutable_rhs_head vb.pvb_expr) with
            | Ppat_var { txt; _ }, Some maker -> Some (txt, maker, vb.pvb_loc)
            | _ -> None)
          vbs
      | _ -> [])
    str

(* ----------------------------------------------------------------- *)
(* Rule: determinism                                                 *)
(* ----------------------------------------------------------------- *)

let banned_sys = [ "time" ]

let banned_unix =
  [
    "time"; "gettimeofday"; "gmtime"; "localtime"; "mktime"; "sleep"; "sleepf";
    "select"; "times"; "setitimer"; "alarm";
  ]

let determinism_check ctx ~loc lid =
  match components lid with
  | "Random" :: _ ->
    flag ctx ~rule:"determinism" ~loc
      "Stdlib.Random is nondeterministic; draw from a seeded Abc_prng.Stream \
       instead (reproducible sims and the model checker depend on it)"
  | [ "Sys"; fn ] when List.mem fn banned_sys ->
    flag ctx ~rule:"determinism" ~loc
      "wall-clock time is nondeterministic; use the simulator's virtual \
       Abc_sim.Clock"
  | "Unix" :: fn :: _ when List.mem fn banned_unix ->
    flag ctx ~rule:"determinism" ~loc
      "Unix wall-clock/timer APIs are nondeterministic; use the simulator's \
       virtual Abc_sim.Clock"
  | _ -> ()

let determinism ctx (str : structure) =
  if Scope.in_dir ctx.path "lib/prng/" then ()
  else begin
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self x ->
            (match x.pexp_desc with
            | Pexp_ident { txt; _ } -> determinism_check ctx ~loc:x.pexp_loc txt
            | _ -> ());
            Ast_iterator.default_iterator.expr self x);
        typ =
          (fun self t ->
            (match t.ptyp_desc with
            | Ptyp_constr ({ txt; loc }, _) -> determinism_check ctx ~loc txt
            | _ -> ());
            Ast_iterator.default_iterator.typ self t);
        module_expr =
          (fun self me ->
            (match me.pmod_desc with
            | Pmod_ident { txt; loc } -> determinism_check ctx ~loc txt
            | _ -> ());
            Ast_iterator.default_iterator.module_expr self me);
      }
    in
    it.structure it str
  end

(* ----------------------------------------------------------------- *)
(* Rule: poly-compare                                                *)
(* ----------------------------------------------------------------- *)

let id_names = [ "src"; "dst"; "sender"; "origin"; "me"; "victim"; "proposer" ]

let is_id_operand e =
  match (strip_expr e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> List.mem s id_names
  | Pexp_field (_, { txt; _ }) -> (
    match List.rev (components txt) with
    | last :: _ -> List.mem last id_names
    | [] -> false)
  | _ -> false

let binds_name vbs name =
  List.exists
    (fun vb ->
      match (strip_pat vb.pvb_pat).ppat_desc with
      | Ppat_var { txt; _ } -> String.equal txt name
      | _ -> false)
    vbs

let item_pattern_names item =
  let names = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
            names := txt :: !names
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.structure_item it item;
  !names

let poly_compare ctx (str : structure) =
  let node_id_in_scope = mentions_module str "Node_id" in
  let compare_defined = ref false in
  let scan_item ~compare_ok item =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self x ->
            (match x.pexp_desc with
            | Pexp_ident { txt = Longident.Lident "compare"; _ }
              when not compare_ok ->
              flag ctx ~rule:"poly-compare" ~loc:x.pexp_loc ~snippet:"compare"
                "bare polymorphic compare; use a concrete compare \
                 (Int.compare, Node_id.compare, an explicit tuple compare, \
                 ...)"
            | Pexp_ident
                { txt = Longident.Ldot (Longident.Lident "Stdlib", "compare"); _ }
              ->
              flag ctx ~rule:"poly-compare" ~loc:x.pexp_loc
                ~snippet:"Stdlib.compare"
                "Stdlib.compare is polymorphic; use a concrete compare"
            | Pexp_ident
                { txt = Longident.Ldot (Longident.Lident "Hashtbl", fn); _ }
              when node_id_in_scope && (String.equal fn "create" || String.equal fn "hash")
              ->
              flag ctx ~rule:"poly-compare" ~loc:x.pexp_loc
                ~snippet:("Hashtbl." ^ fn)
                "polymorphic hashing where an abstract id type is in scope; \
                 use Hashtbl.Make over the id's hash/equal, or a Map"
            | Pexp_apply
                ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("=" | "<>"); _ }; _ },
                  [ (Asttypes.Nolabel, l); (Asttypes.Nolabel, r) ] )
              when node_id_in_scope && (is_id_operand l || is_id_operand r) ->
              flag ctx ~rule:"poly-compare" ~loc:x.pexp_loc
                "structural =/<> on an abstract node id; use Node_id.equal \
                 (or Node_id.compare)"
            | _ -> ());
            Ast_iterator.default_iterator.expr self x);
      }
    in
    it.structure_item it item
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) when binds_name vbs "compare" ->
        List.iter
          (fun vb ->
            match (strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_var { txt = "compare"; _ } -> (
              match (strip_expr vb.pvb_expr).pexp_desc with
              | Pexp_ident { txt = Longident.Lident "compare"; _ }
                when not !compare_defined ->
                flag ctx ~rule:"poly-compare" ~loc:vb.pvb_loc
                  ~snippet:"compare = compare"
                  "polymorphic compare; use a concrete compare (Int.compare, \
                   Node_id.compare, an explicit tuple compare, ...)"
              | _ -> ())
            | _ -> ())
          vbs;
        compare_defined := true;
        scan_item ~compare_ok:true item
      | _ ->
        let shadows = List.mem "compare" (item_pattern_names item) in
        scan_item ~compare_ok:(!compare_defined || shadows) item)
    str

(* ----------------------------------------------------------------- *)
(* Rule: quorum (raw threshold arithmetic)                           *)
(* ----------------------------------------------------------------- *)

let quorum_message ~op l r =
  let is_f x = match param_name x with Some "f" -> true | _ -> false in
  let is_n x = match param_name x with Some "n" -> true | _ -> false in
  let is_int x = int_literal x <> None in
  let is_one x = int_literal x = Some 1 in
  match op with
  | "+" when (is_f l && is_one r) || (is_one l && is_f r) ->
    Some "f + 1 (use Quorum.one_honest / ready_amplify / adopt_support / ...)"
  | "*" when (is_int l && is_f r) || (is_f l && is_int r) ->
    Some "k * f (use Quorum.ready_deliver / decide_support / decide_unanimity / ...)"
  | "-" when is_n l && is_f r -> Some "n - f (use Quorum.completeness)"
  | "-" when is_n l && is_int r ->
    Some "n - k (resilience bound; use Quorum.max_faults / honest_support)"
  | "+" when (is_n l && is_f r) || (is_f l && is_n r) ->
    Some "n + f (use Quorum.echo_quorum / faulty_majority)"
  | "/" when is_n l && is_int r ->
    Some "n / k (use Quorum.strict_majority / max_faults)"
  | _ -> None

let quorum_arith ctx (str : structure) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("+" | "-" | "*" | "/") as op); _ }; _ },
                [ (Asttypes.Nolabel, l); (Asttypes.Nolabel, r) ] ) -> (
            match quorum_message ~op l r with
            | Some msg ->
              flag ctx ~rule:"quorum" ~loc:x.pexp_loc
                ("raw threshold arithmetic: " ^ msg)
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.structure it str

(* ----------------------------------------------------------------- *)
(* Rule: resilience (declared-class quorum checking)                 *)
(* ----------------------------------------------------------------- *)

(* Which declared classes a Quorum function's intersection argument is
   stated for.  [Generic] thresholds ([f + 1] one-honest counting,
   [n - f] completeness, majorities) hold in every class. *)
type qclass = Generic | Family of int list | Ratio_labelled

let quorum_class = function
  | "echo_quorum" | "ready_amplify" | "ready_deliver" | "decide_support"
  | "checkpoint_stable" | "assert_resilience" ->
    Family [ 3 ]
  | "decide_unanimity" | "faulty_majority" -> Family [ 2; 5 ]
  | "honest_support" -> Family [ 3; 4; 5 ]
  | "assert_resilience_at" | "max_faults" -> Ratio_labelled
  | _ -> Generic

(* Fallback for units without an [@@@abc.resilience] attribute (e.g.
   generated code): declared classes by file basename. *)
let registry =
  [
    ("rbc_core.ml", [ 3 ]); ("bracha_rbc.ml", [ 3 ]);
    ("bracha_consensus.ml", [ 3 ]); ("consensus_core.ml", [ 3 ]);
    ("coded_rbc.ml", [ 3 ]); ("mmr_consensus.ml", [ 3 ]); ("acs.ml", [ 3 ]);
    ("validation.ml", [ 3 ]); ("consistent_broadcast.ml", [ 3 ]);
    ("ir_rbc.ml", [ 5 ]); ("turpin_coan.ml", [ 4 ]); ("ben_or.ml", [ 2; 5 ]);
    ("rabin_coin.ml", [ 1 ]);
  ]

let parse_class s =
  let s = String.concat "" (String.split_on_char ' ' (String.trim s)) in
  let len = String.length s in
  if len >= 4 && s.[0] = 'n' && s.[1] = '>' && s.[len - 1] = 'f' then
    int_of_string_opt (String.sub s 2 (len - 3))
  else None

let class_label r = Printf.sprintf "n>%df" r

let classes_label rs = String.concat ", " (List.map class_label rs)

(* The declared resilience classes of the unit: the floating
   [@@@abc.resilience "n>3f"] attribute (space-separated list for
   dual-mode protocols like Ben-Or: "n>2f n>5f"), else the registry. *)
let declared_classes ctx (str : structure) =
  let from_attr =
    List.concat_map
      (fun item ->
        match item.pstr_desc with
        | Pstr_attribute
            {
              attr_name = { txt = "abc.resilience" | "resilience"; _ };
              attr_payload =
                PStr
                  [
                    {
                      pstr_desc =
                        Pstr_eval
                          ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                            _ );
                      _;
                    };
                  ];
              attr_loc;
              _;
            } ->
          List.filter_map
            (fun part ->
              if String.trim part = "" then None
              else
                match parse_class part with
                | Some r -> Some r
                | None ->
                  flag ctx ~rule:"resilience" ~loc:attr_loc ~snippet:part
                    (Printf.sprintf
                       "unparseable resilience class %S (expected \"n>3f\", \
                        \"n>5f\", ...)"
                       part);
                  None)
            (String.split_on_char ' ' s)
        | _ -> [])
      str
  in
  if from_attr <> [] then Some from_attr
  else
    List.find_map
      (fun (base, rs) ->
        if String.equal base (Filename.basename ctx.file) then Some rs else None)
      registry

let resilience ctx (str : structure) =
  let declared = declared_classes ctx str in
  let check_ident ~loc fn =
    match quorum_class fn with
    | Generic | Ratio_labelled -> ()
    | Family rs -> (
      match declared with
      | None ->
        flag ctx ~rule:"resilience" ~loc ~snippet:("Quorum." ^ fn)
          (Printf.sprintf
             "Quorum.%s is a %s-family threshold but this module declares no \
              resilience class; add [@@@abc.resilience \"...\"] (or a \
              registry entry)"
             fn (classes_label rs))
      | Some ds ->
        if not (List.exists (fun r -> List.mem r ds) rs) then
          flag ctx ~rule:"resilience" ~loc ~snippet:("Quorum." ^ fn)
            (Printf.sprintf
               "Quorum.%s carries a %s intersection argument, but this \
                module declares %s; use a threshold from the declared class"
               fn (classes_label rs)
               (classes_label ds)))
  in
  let check_ratio ~loc fn args =
    match quorum_class fn with
    | Ratio_labelled -> (
      let ratio =
        List.find_map
          (fun (label, arg) ->
            match label with
            | Asttypes.Labelled "ratio" -> int_literal arg
            | _ -> None)
          args
      in
      match (ratio, declared) with
      | Some _, None ->
        flag ctx ~rule:"resilience" ~loc ~snippet:("Quorum." ^ fn)
          (Printf.sprintf
             "Quorum.%s with an explicit ratio in a module with no declared \
              resilience class; add [@@@abc.resilience \"...\"]"
             fn)
      | Some r, Some ds ->
        if not (List.mem r ds) then
          flag ctx ~rule:"resilience" ~loc ~snippet:("Quorum." ^ fn)
            (Printf.sprintf
               "ratio %d (%s) does not match this module's declared %s" r
               (class_label r) (classes_label ds))
      | None, _ -> ())
    | Generic | Family _ -> ()
  in
  let quorum_fn lid =
    match lid with
    | Longident.Ldot (path, fn)
      when List.exists (String.equal "Quorum") (components path) ->
      Some fn
    | _ -> None
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            match quorum_fn txt with
            | Some fn -> check_ratio ~loc:x.pexp_loc fn args
            | None -> ())
          | Pexp_ident { txt; _ } -> (
            match quorum_fn txt with
            | Some fn -> check_ident ~loc:x.pexp_loc fn
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.structure it str

(* ----------------------------------------------------------------- *)
(* Rule: mutable-global                                              *)
(* ----------------------------------------------------------------- *)

let mutable_global ctx (str : structure) =
  List.iter
    (fun (name, maker, loc) ->
      flag ctx ~rule:"mutable-global" ~loc
        ~snippet:("let " ^ name ^ " = " ^ maker)
        "top-level mutable state in an engine library: Exec.Pool jobs run \
         concurrently across domains, so run state must be allocated per \
         run (pass it through config/context) or reviewed into lint.allow \
         as main-domain-only")
    (module_level_mutables str)

(* ----------------------------------------------------------------- *)
(* Rule: pool-capture (race detector)                                *)
(* ----------------------------------------------------------------- *)

let pool_fns = [ "map"; "map_list"; "run" ]

let pool_call_fn f =
  match (strip_expr f).pexp_desc with
  | Pexp_ident { txt = Longident.Ldot (path, fn); _ }
    when List.mem fn pool_fns
         && List.exists (String.equal "Pool") (components path) ->
    Some fn
  | _ -> None

let mutators =
  [
    ("Hashtbl",
     [ "replace"; "add"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Buffer",
     [ "add_string"; "add_char"; "add_bytes"; "add_substring"; "add_subbytes";
       "add_buffer"; "add_channel"; "clear"; "reset"; "truncate" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Atomic",
     [ "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr"; "decr" ]);
  ]

let is_mutator m fn =
  match List.assoc_opt m mutators with
  | Some fns -> List.mem fn fns
  | None -> false

(* Analyze one literal job closure passed to Exec.Pool: any capture of
   a module-level mutable binding, and any mutation applied to a name
   the closure does not bind itself, races across worker domains. *)
let analyze_job ctx ~pool_fn ~mutable_globals lam =
  let bound = bound_names_in_expr lam in
  let is_local x = List.mem x bound in
  let reported = Hashtbl.create 4 in
  let once name k =
    if not (Hashtbl.mem reported name) then begin
      Hashtbl.add reported name ();
      k ()
    end
  in
  List.iter
    (fun (name, loc) ->
      match List.find_opt (fun (n, _, _) -> String.equal n name) mutable_globals with
      | Some (_, maker, _) when not (is_local name) ->
        once name (fun () ->
            flag ctx ~rule:"pool-capture" ~loc ~snippet:name
              (Printf.sprintf
                 "Exec.Pool %s job closure captures module-level mutable \
                  binding '%s' (%s): jobs run concurrently across domains, \
                  so shared mutable state races and breaks the \
                  deterministic-merge contract; allocate it inside the job"
                 pool_fn name maker))
      | _ -> ())
    (used_lidents_in_expr lam);
  let check_target ~loc ~via target =
    match (strip_expr target).pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } when not (is_local x) ->
      once (via ^ ":" ^ x) (fun () ->
          flag ctx ~rule:"pool-capture" ~loc ~snippet:(via ^ " " ^ x)
            (Printf.sprintf
               "Exec.Pool %s job closure mutates '%s' via %s, but '%s' is \
                not bound inside the closure: the write is shared across \
                worker domains; build this state inside the job and return \
                it as the job's value"
               pool_fn x via x))
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            let first_pos =
              List.find_map
                (fun (label, a) ->
                  match label with Asttypes.Nolabel -> Some a | _ -> None)
                args
            in
            match (txt, first_pos) with
            | Longident.Lident ((":=" | "incr" | "decr") as via), Some target ->
              check_target ~loc:x.pexp_loc ~via target
            | Longident.Ldot (Longident.Lident m, fn), Some target
              when is_mutator m fn ->
              check_target ~loc:x.pexp_loc ~via:(m ^ "." ^ fn) target
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.expr it lam

let pool_capture ctx (str : structure) =
  let mutable_globals = module_level_mutables str in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_apply (f, args) -> (
            match pool_call_fn f with
            | Some pool_fn ->
              List.iter
                (fun (_, arg) ->
                  if is_lambda arg then
                    analyze_job ctx ~pool_fn ~mutable_globals arg)
                args
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.structure it str

(* ----------------------------------------------------------------- *)
(* Rule: silent-drop                                                 *)
(* ----------------------------------------------------------------- *)

let handler_names = [ "on_message"; "on_timeout"; "handle" ]

let silent_drop ctx (str : structure) =
  let scan_handler name body =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self x ->
            (match x.pexp_desc with
            | Pexp_match (_, cases) | Pexp_function cases ->
              List.iter
                (fun c ->
                  match (c.pc_lhs.ppat_desc, c.pc_guard) with
                  | Ppat_any, None ->
                    let loc =
                      {
                        c.pc_lhs.ppat_loc with
                        Location.loc_end = c.pc_rhs.pexp_loc.Location.loc_end;
                      }
                    in
                    flag ctx ~rule:"silent-drop" ~loc
                      (Printf.sprintf
                         "wildcard arm in a match inside '%s' silently drops \
                          protocol messages (new constructors will not be \
                          handled, undermining totality); match every \
                          constructor explicitly or allowlist with a \
                          reviewed reason"
                         name)
                  | _ -> ())
                cases
            | _ -> ());
            Ast_iterator.default_iterator.expr self x);
      }
    in
    it.expr it body
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match (strip_pat vb.pvb_pat).ppat_desc with
          | Ppat_var { txt; _ } when List.mem txt handler_names ->
            scan_handler txt vb.pvb_expr
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str

(* ----------------------------------------------------------------- *)
(* Rule: stray-output                                                *)
(* ----------------------------------------------------------------- *)

let stray_plain =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_int"; "prerr_char";
    "prerr_float"; "prerr_bytes";
  ]

let stray_qualified =
  [
    ("Printf", [ "printf"; "eprintf" ]);
    ("Format", [ "printf"; "eprintf"; "print_string"; "print_newline"; "print_flush" ]);
    ("Fmt", [ "pr"; "epr" ]);
  ]

let stray_output ctx (str : structure) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_ident { txt = Longident.Lident s; _ } when List.mem s stray_plain
            ->
            flag ctx ~rule:"stray-output" ~loc:x.pexp_loc ~snippet:s
              "direct console output from library code; route observability \
               through Event/Trace/Metrics (or move the printing to \
               bin/bench/test)"
          | Pexp_ident { txt = Longident.Ldot (Longident.Lident m, fn); _ }
            when (match List.assoc_opt m stray_qualified with
                 | Some fns -> List.mem fn fns
                 | None -> false) ->
            flag ctx ~rule:"stray-output" ~loc:x.pexp_loc ~snippet:(m ^ "." ^ fn)
              "direct console output from library code; route observability \
               through Event/Trace/Metrics (or move the printing to \
               bin/bench/test)"
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.structure it str

(* ----------------------------------------------------------------- *)
(* Dispatch                                                          *)
(* ----------------------------------------------------------------- *)

let check ~path ~source (str : structure) =
  let ctx =
    { path; file = Scope.normalize path; source; findings = ref [] }
  in
  let in_core =
    Scope.in_dir path "lib/core/"
    && not (String.equal (Filename.basename ctx.file) "quorum.ml")
  in
  determinism ctx str;
  poly_compare ctx str;
  if in_core then begin
    quorum_arith ctx str;
    resilience ctx str
  end;
  (* The SMR layer stacks protocols over lib/core quorums (the atomic
     broadcast embeds per-epoch ACS instances) and now counts quorums
     of its own (checkpoint stability, transfer vouching), so its
     modules carry the same [@@@abc.resilience] obligations and the
     same no-inline-threshold-arithmetic rule as core protocol code. *)
  if Scope.in_dir path "lib/smr/" then begin
    quorum_arith ctx str;
    resilience ctx str
  end;
  if
    Scope.in_dir path "lib/sim/" || Scope.in_dir path "lib/net/"
    || Scope.in_dir path "lib/exec/"
  then mutable_global ctx str;
  pool_capture ctx str;
  if Scope.in_dir path "lib/core/" || Scope.in_dir path "lib/smr/" then
    silent_drop ctx str;
  if
    not
      (Scope.in_dir path "bin/" || Scope.in_dir path "bench/"
      || Scope.in_dir path "test/" || Scope.in_dir path "examples/")
  then stray_output ctx str;
  Finding.dedup !(ctx.findings)
