(** Parsetree (semantic) rule families.

    These rules run on the compiler parsetree produced by {!Frontend}
    and can therefore see scopes, closures, attributes and expression
    structure that the lexical layer in {!Rules} cannot:

    - {b determinism}, {b poly-compare}, {b quorum},
      {b mutable-global} — parsetree reimplementations of the original
      token rules, with span-accurate findings and no line-shape
      heuristics (string literals and comments are invisible, record
      punning and binder contexts are structural).
    - {b resilience} — protocol modules in [lib/core] declare their
      resilience class with a floating attribute
      ([\[@@@abc.resilience "n>3f"\]]; space-separated list for
      dual-mode protocols, e.g. Ben-Or's ["n>2f n>5f"]) or via the
      built-in registry; every [Quorum.*] use is checked against the
      declared class.  Bracha-family thresholds ([echo_quorum],
      [ready_amplify], [ready_deliver], [decide_support],
      [assert_resilience]) require [n > 3f]; [honest_support] requires
      at least [n > 3f] (stated for 3/4/5); [decide_unanimity] and
      [faulty_majority] are Ben-Or's; [max_faults] /
      [assert_resilience_at] must pass a [~ratio] matching the
      declaration.  Generic counting thresholds ([completeness],
      [one_honest], majorities) pass in every class.
    - {b pool-capture} — at every [Exec.Pool.map] / [map_list] /
      [run] call site, each literal job closure is analyzed: capturing
      a module-level mutable binding ([ref], [Hashtbl.t], [Queue.t],
      [Buffer.t], [Stack.t], [Atomic.t]), or applying a mutation
      ([:=], [incr], [Hashtbl.replace], [Buffer.add_*], ...) to a name
      the closure does not bind itself, is flagged.  This is the
      static complement of the jobs-1-vs-4 determinism tests.
    - {b silent-drop} — an unguarded wildcard ([_ -> ...]) arm in a
      [match]/[function] inside a protocol handler ([on_message],
      [on_timeout], [handle]) under [lib/core]/[lib/smr] is flagged:
      dropped messages undermine the totality battery.
    - {b stray-output} — [print_*], [Printf.printf], [prerr_*],
      [Format.printf], [Fmt.pr] outside [bin/], [bench/], [test/] and
      [examples/] are flagged; library observability flows through
      [Event]/[Trace]/[Metrics].

    Path scoping matches {!Rules}; each rule supports reviewed
    exceptions via [lint.allow] (see {!Allow}). *)

val check : path:string -> source:string -> Parsetree.structure -> Finding.t list
(** Apply every parsetree rule in scope for [path].  Findings are
    sorted and deduplicated per (file, line, rule); severities are
    stamped by the driver. *)

val parse_class : string -> int option
(** ["n>3f"] (spaces tolerated) to [Some 3]; exposed for tests. *)
