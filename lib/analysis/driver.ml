type report = { findings : Finding.t list; allowed : int; files : int }

let skip_dir name =
  String.equal name "_build" || (String.length name > 0 && name.[0] = '.')

let source_file name =
  (Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli")
  && not (Filename.check_suffix name ".ml-gen")

let scan_files ~roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc name ->
          if skip_dir name then acc else walk acc (Filename.concat path name))
        acc (Sys.readdir path)
    else if source_file path then path :: acc
    else acc
  in
  let files =
    List.fold_left
      (fun acc root -> if Sys.file_exists root then walk acc root else acc)
      [] roots
  in
  List.sort String.compare files

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let run ~allow ~roots =
  let files = scan_files ~roots in
  let token_findings =
    List.concat_map (fun path -> Rules.check_source ~path (read_file path)) files
  in
  let iface_findings = Rules.interface_coverage ~files in
  let all = List.sort Finding.compare (token_findings @ iface_findings) in
  let allowed, findings =
    List.partition (fun f -> Allow.permits allow f) all
  in
  { findings; allowed = List.length allowed; files = List.length files }
