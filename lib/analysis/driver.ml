type report = {
  findings : Finding.t list;
  allowed : int;
  files : int;
  parse_fallbacks : int;
  unused_allow : Allow.entry list;
}

let skip_dir name =
  String.equal name "_build" || (String.length name > 0 && name.[0] = '.')

let source_file name =
  ((Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli")
  && not (Filename.check_suffix name ".ml-gen"))
  || Filename.check_suffix name ".matrix"

let scan_files ~roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc name ->
          if skip_dir name then acc else walk acc (Filename.concat path name))
        acc (Sys.readdir path)
    else if source_file path then path :: acc
    else acc
  in
  let files =
    List.fold_left
      (fun acc root -> if Sys.file_exists root then walk acc root else acc)
      [] roots
  in
  List.sort String.compare files

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* Parsetree rules when the unit parses, token rules as the fallback.
   The boolean is true when the fallback was taken. *)
let check_source_either ~path source =
  if Filename.check_suffix path ".matrix" then
    (Matrix_rules.check ~path source, false)
  else if Filename.check_suffix path ".ml" then begin
    match Frontend.parse_impl ~path source with
    | Ok str -> (Ast_rules.check ~path ~source str, false)
    | Error _ -> (Rules.check_source ~path source, true)
  end
  else ([], false)

let check_source ~path source =
  let findings, _ = check_source_either ~path source in
  List.map Rule_info.stamp findings

let rule_enabled ~only ~skip rule =
  (match only with None -> true | Some ids -> List.mem rule ids)
  && not (List.mem rule skip)

let make_report ?(only = None) ?(skip = []) ?(parse_fallbacks = 0) ~allow ~files
    findings =
  let all =
    findings
    |> List.filter (fun f -> rule_enabled ~only ~skip f.Finding.rule)
    |> List.map Rule_info.stamp
    |> List.sort Finding.compare
  in
  let allowed, findings = List.partition (Allow.permits allow) all in
  {
    findings;
    allowed = List.length allowed;
    files;
    parse_fallbacks;
    unused_allow = Allow.unused allow all;
  }

let run ?(only = None) ?(skip = []) ~allow ~roots () =
  let files = scan_files ~roots in
  let fallbacks = ref 0 in
  let per_file =
    List.concat_map
      (fun path ->
        let findings, fell_back = check_source_either ~path (read_file path) in
        if fell_back then incr fallbacks;
        findings)
      files
  in
  let iface = Rules.interface_coverage ~files in
  make_report ~only ~skip ~parse_fallbacks:!fallbacks ~allow
    ~files:(List.length files) (per_file @ iface)

(* ----------------------------------------------------------------- *)
(* JSON report (SARIF-lite)                                          *)
(* ----------------------------------------------------------------- *)

(* Hand-rolled writer: fixed key order, sorted findings, no
   environment input — the output is byte-identical across runs, so it
   can be diffed and checked against a golden in CI. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_finding (f : Finding.t) =
  let s = f.Finding.span in
  Printf.sprintf
    "{\"rule\":%S,\"severity\":\"%s\",\"path\":%S,\"span\":{\"start_line\":%d,\"start_col\":%d,\"end_line\":%d,\"end_col\":%d},\"snippet\":\"%s\",\"message\":\"%s\",\"fingerprint\":\"%s\"}"
    f.Finding.rule
    (Finding.severity_label f.Finding.severity)
    f.Finding.file s.Finding.start_line s.Finding.start_col s.Finding.end_line
    s.Finding.end_col
    (json_escape f.Finding.snippet)
    (json_escape f.Finding.message)
    (Finding.fingerprint f)

let count severity findings =
  List.length (List.filter (fun f -> f.Finding.severity = severity) findings)

let json_of_report r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"abc-lint/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"files\": %d,\n" r.files);
  Buffer.add_string buf (Printf.sprintf "  \"allowed\": %d,\n" r.allowed);
  Buffer.add_string buf
    (Printf.sprintf "  \"parse_fallbacks\": %d,\n" r.parse_fallbacks);
  Buffer.add_string buf
    (Printf.sprintf "  \"errors\": %d,\n" (count Finding.Error r.findings));
  Buffer.add_string buf
    (Printf.sprintf "  \"warnings\": %d,\n" (count Finding.Warn r.findings));
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i f ->
      Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
      Buffer.add_string buf (json_of_finding f))
    r.findings;
  Buffer.add_string buf (if r.findings = [] then "]\n" else "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf
