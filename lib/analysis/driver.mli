(** Walk source roots, apply every rule, filter through the allowlist. *)

type report = {
  findings : Finding.t list;  (** unallowlisted findings, sorted *)
  allowed : int;  (** findings suppressed by the allowlist *)
  files : int;  (** source files scanned *)
}

val scan_files : roots:string list -> string list
(** All [.ml]/[.mli] files under [roots] (recursive), sorted; skips
    [_build], [.git] and other dot-directories. *)

val run : allow:Allow.entry list -> roots:string list -> report
