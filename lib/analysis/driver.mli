(** Walk source roots, apply every rule in scope, filter through the
    allowlist: parsetree rules ({!Ast_rules}) when the unit parses,
    token rules ({!Rules}) as the fallback. *)

type report = {
  findings : Finding.t list;  (** unallowlisted findings, sorted *)
  allowed : int;  (** findings suppressed by the allowlist *)
  files : int;  (** source files scanned *)
  parse_fallbacks : int;  (** files that fell back to the token layer *)
  unused_allow : Allow.entry list;  (** entries matching no finding *)
}

val scan_files : roots:string list -> string list
(** All [.ml]/[.mli] files under [roots] (recursive), sorted; skips
    [_build], [.git] and other dot-directories. *)

val check_source : path:string -> string -> Finding.t list
(** Analyze one unit: parsetree rules when it parses, token rules
    otherwise; severities stamped from {!Rule_info}. *)

val make_report :
  ?only:string list option ->
  ?skip:string list ->
  ?parse_fallbacks:int ->
  allow:Allow.entry list ->
  files:int ->
  Finding.t list ->
  report
(** Assemble a report from raw findings: filter by rule selection,
    stamp severities, sort, partition through the allowlist and
    compute stale entries.  Exposed so tests can build deterministic
    reports from inline fixtures. *)

val run :
  ?only:string list option ->
  ?skip:string list ->
  allow:Allow.entry list ->
  roots:string list ->
  unit ->
  report
(** Scan and analyze every source file under [roots].  [only]
    restricts to the given rule ids ([--rules]); [skip] removes rule
    ids ([--skip-rules]). *)

val json_of_report : report -> string
(** SARIF-lite JSON: schema tag, scan counters, and one object per
    finding (rule, severity, path, span, snippet, message,
    fingerprint), sorted in report order with a fixed key order — the
    output is deterministic (byte-identical across runs on the same
    tree) so it can be diffed and checked against a golden. *)
