type severity = Error | Warn

type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

type t = {
  rule : string;
  severity : severity;
  file : string;
  span : span;
  snippet : string;
  message : string;
}

let severity_label = function Error -> "error" | Warn -> "warn"

let severity_of_label = function
  | "error" -> Some Error
  | "warn" -> Some Warn
  | _ -> None

let line_span line =
  { start_line = line; start_col = 0; end_line = line; end_col = 0 }

let file_span = line_span 0

let v ?(severity = Error) ~rule ~file ~span ~snippet message =
  { rule; severity; file; span; snippet; message }

(* Line-independent so an allowlist entry survives unrelated edits
   above the finding; basename-keyed so it survives scan-root changes,
   matching the allowlist's suffix path matching. *)
let fingerprint t =
  let key =
    String.concat "\x00" [ t.rule; Filename.basename t.file; t.snippet ]
  in
  String.sub (Digest.to_hex (Digest.string key)) 0 12

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.span.start_line b.span.start_line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> (
        match Int.compare a.span.start_col b.span.start_col with
        | 0 -> String.compare a.snippet b.snippet
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

(* One finding per (rule, file, line): a line that trips a rule twice
   reads as noise, and reports stay stable when a rule gains extra
   sub-patterns.  Keeps the left-most (then lexically first) finding. *)
let dedup findings =
  let sorted = List.sort compare findings in
  let same a b =
    String.equal a.file b.file
    && String.equal a.rule b.rule
    && a.span.start_line = b.span.start_line
  in
  let rec keep = function
    | a :: (b :: _ as rest) when same a b -> keep (a :: List.tl rest)
    | a :: rest -> a :: keep rest
    | [] -> []
  in
  keep sorted

let pp ppf t =
  if t.span.start_line = 0 then
    Fmt.pf ppf "%s: [%s/%s] %s" t.file t.rule (severity_label t.severity)
      t.message
  else
    Fmt.pf ppf "%s:%d:%d: [%s/%s] %s  (%s)" t.file t.span.start_line
      t.span.start_col t.rule (severity_label t.severity) t.message t.snippet
