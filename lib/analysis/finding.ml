type t = {
  rule : string;
  file : string;
  line : int;
  snippet : string;
  message : string;
}

let v ~rule ~file ~line ~snippet message = { rule; file; line; snippet; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> String.compare a.rule b.rule
    | c -> c)
  | c -> c

let pp ppf t =
  if t.line = 0 then Fmt.pf ppf "%s: [%s] %s" t.file t.rule t.message
  else
    Fmt.pf ppf "%s:%d: [%s] %s  (%s)" t.file t.line t.rule t.message t.snippet
