(** One linter finding: a rule violation anchored at a source span. *)

type severity = Error | Warn

type span = {
  start_line : int;  (** 1-based; [0] for file-level findings *)
  start_col : int;  (** 0-based *)
  end_line : int;
  end_col : int;
}

type t = {
  rule : string;  (** rule id (see {!Rule_info.all}) *)
  severity : severity;
  file : string;  (** path as scanned, ['/']-separated *)
  span : span;  (** parsetree rules report exact spans; the token
                    fallback reports degenerate line-only spans *)
  snippet : string;  (** offending source text, whitespace-normalized *)
  message : string;  (** what is wrong and what to use instead *)
}

val severity_label : severity -> string
(** ["error"] / ["warn"] — the JSON encoding. *)

val severity_of_label : string -> severity option

val line_span : int -> span
(** Degenerate line-only span (token-fallback findings). *)

val file_span : span
(** The file-level span (line 0; interface-coverage findings). *)

val v :
  ?severity:severity ->
  rule:string ->
  file:string ->
  span:span ->
  snippet:string ->
  string ->
  t
(** Construct a finding; [severity] defaults to [Error] and is
    re-stamped from {!Rule_info} by the driver. *)

val fingerprint : t -> string
(** Stable 12-hex-digit content hash over (rule, file basename,
    snippet).  Line-independent, so [lint.allow] fingerprint entries
    survive unrelated edits; identical snippets for the same rule in
    the same file share a fingerprint (one reviewed entry covers
    both). *)

val compare : t -> t -> int
(** Order by file, line, rule, column, snippet — the report order. *)

val dedup : t list -> t list
(** Sort and collapse to one finding per (rule, file, line). *)

val pp : t Fmt.t
(** [file:line:col: [rule/severity] message  (snippet)]. *)
