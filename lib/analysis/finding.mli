(** One linter finding: a rule violation anchored at a source line. *)

type t = {
  rule : string;  (** rule id: ["determinism"], ["poly-compare"], ["quorum"], ["interface"] *)
  file : string;  (** path as scanned, ['/']-separated *)
  line : int;  (** 1-based; [0] for file-level findings *)
  snippet : string;  (** the offending tokens, normalized (allowlist key) *)
  message : string;  (** what is wrong and what to use instead *)
}

val v : rule:string -> file:string -> line:int -> snippet:string -> string -> t

val compare : t -> t -> int
(** Order by file, then line, then rule — the report order. *)

val pp : t Fmt.t
(** [file:line: [rule] message  (snippet)] — one line per finding. *)
