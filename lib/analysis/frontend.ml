type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

let with_lexbuf ~path source f =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  (* The compiler lexer keeps global comment/docstring state; reset it
     per unit so parses are independent. *)
  Lexer.init ();
  match f lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error _ -> Error "syntax error"
  | exception Lexer.Error (_, _) -> Error "lexer error"
  | exception _ -> Error "parse failure"

let parse ~path source =
  if Filename.check_suffix path ".mli" then
    Result.map (fun s -> Intf s) (with_lexbuf ~path source Parse.interface)
  else Result.map (fun s -> Impl s) (with_lexbuf ~path source Parse.implementation)

let parse_impl ~path source =
  match with_lexbuf ~path source Parse.implementation with
  | Ok s -> Ok s
  | Error _ as e -> e
