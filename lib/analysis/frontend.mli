(** Parsetree front end for the analyzer.

    Sources are parsed with the compiler's own parser
    ([compiler-libs.common]: [Parse.implementation] /
    [Parse.interface]), so the semantic rules in {!Ast_rules} operate
    on real scopes, captures and expressions with span-accurate
    locations.  A unit that fails to parse falls back to the lexical
    rules in {!Rules} over {!Token_stream} — the two-layer
    architecture documented in DESIGN.md. *)

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

val parse : path:string -> string -> (ast, string) result
(** Parse one compilation unit ([.mli] paths as interfaces, everything
    else as implementations).  [Error reason] means the caller should
    fall back to the token layer. *)

val parse_impl : path:string -> string -> (Parsetree.structure, string) result
(** Parse an implementation only. *)
