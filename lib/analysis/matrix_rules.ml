module Sexp = Abc_matrix.Sexp
module Spec = Abc_matrix.Spec

let span_of (s : Sexp.span) : Finding.span =
  {
    Finding.start_line = s.Sexp.s.Sexp.line;
    start_col = s.Sexp.s.Sexp.col;
    end_line = s.Sexp.e.Sexp.line;
    end_col = s.Sexp.e.Sexp.col;
  }

let point_span (p : Sexp.pos) : Finding.span =
  {
    Finding.start_line = p.Sexp.line;
    start_col = p.Sexp.col;
    end_line = p.Sexp.line;
    end_col = p.Sexp.col;
  }

let binding cell axis =
  List.find_opt (fun b -> String.equal b.Spec.axis axis) cell.Spec.bindings

let int_binding cell axis =
  match binding cell axis with
  | Some ({ Spec.value = Spec.Int v; _ } as b) -> Some (b, v)
  | _ -> None

(* One finding per offending literal, not per cell: a single [f] value
   fans out across the whole cross product, and every one of those
   cells points back at the same source span. *)
let check_cells ~path spec =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let emit ~rule ~span ~snippet msg =
    let key = (rule, span, snippet) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out :=
        Finding.v ~rule ~file:path ~span:(span_of span) ~snippet msg :: !out
    end
  in
  List.iter
    (fun (cell : Spec.cell) ->
      match (binding cell "protocol", int_binding cell "n", int_binding cell "f") with
      | Some ({ Spec.value = Spec.Str proto; _ } as pb), Some (_, n), Some (fb, f)
        -> (
        match Spec.resilience proto with
        | None ->
          emit ~rule:"matrix-resilience" ~span:pb.Spec.vspan ~snippet:proto
            (Printf.sprintf
               "unknown protocol token %S: not in the resilience registry, \
                so its n/f cells cannot be checked (and abc-bench will \
                reject it)"
               proto)
        | Some (cls, max_f) ->
          if f > max_f n && cell.Spec.oracle <> Spec.Expect_fail then
            emit ~rule:"matrix-resilience" ~span:fb.Spec.vspan
              ~snippet:(Printf.sprintf "%s n=%d f=%d" proto n f)
              (Printf.sprintf
                 "cell exceeds %s's resilience class %s (max f=%d at n=%d); \
                  annotate the cell expect-fail or fix the axis"
                 proto cls (max_f n) n))
      | _ -> ())
    (Spec.expand spec);
  List.rev !out

let check ~path source =
  match Spec.of_string ~file:path source with
  | Error e ->
    [
      Finding.v ~rule:"matrix-parse" ~file:path ~span:(point_span e.Sexp.pos)
        ~snippet:(Filename.basename path)
        e.Sexp.msg;
    ]
  | Ok spec -> check_cells ~path spec
