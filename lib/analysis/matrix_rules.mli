(** Lint rules for [.matrix] scenario specs (see [lib/matrix]).

    Two rules, mirroring the parsetree checks on protocol modules:

    - [matrix-parse]: the spec must parse and elaborate.  A committed
      spec that fails to load breaks [abc-bench run] and the bench-gate
      CI job at run time; the linter surfaces the same
      [file:line:col:] diagnostic at review time.
    - [matrix-resilience]: every expanded cell's [n]/[f] literals are
      cross-checked against the protocol's declared resilience class
      (the {!Abc_matrix.Spec.resilience} registry, the spec-level twin
      of the [\[@@@abc.resilience\]] attribute rule).  A beyond-bound
      cell must be annotated [expect-fail]; otherwise the runner would
      count the protocol's own rejection as a verdict miss.  Findings
      anchor at the offending [f] value literal. *)

val check : path:string -> string -> Finding.t list
(** Findings for one [.matrix] source, unstamped (the driver applies
    {!Rule_info.stamp}). *)
