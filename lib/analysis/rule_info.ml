type t = {
  id : string;
  severity : Finding.severity;
  scope : string;
  rationale : string;
  example : string;
}

let all =
  [
    {
      id = "determinism";
      severity = Finding.Error;
      scope = "everywhere except lib/prng/";
      rationale =
        "Protocol control flow must be a pure function of the seeded \
         Abc_prng streams: the simulator's replayability, the model checker \
         in lib/check and the jobs-1-vs-4 determinism battery are only \
         sound if no code path reads Stdlib.Random, wall-clock time or \
         Unix timers. Draw randomness from a seeded stream and time from \
         the virtual Abc_sim.Clock.";
      example = "let jitter () = Random.int 10";
    };
    {
      id = "poly-compare";
      severity = Finding.Error;
      scope = "everywhere";
      rationale =
        "Polymorphic compare/hashing walks structure, so it silently \
         changes meaning when a type gains a field and breaks on abstract \
         ids whose representation is richer than their identity. Use \
         concrete compares (Int.compare, Node_id.compare) and keyed \
         structures (Hashtbl.Make, Map) so equality is always the type's \
         own.";
      example = "let same m = m.src = m.dst";
    };
    {
      id = "quorum";
      severity = Finding.Error;
      scope = "lib/core/ except quorum.ml";
      rationale =
        "Every threshold in a Byzantine protocol carries an intersection \
         argument; raw f + 1 / 2 * f + 1 / n - f arithmetic scattered \
         through protocol modules is how off-by-one safety bugs happen. \
         All thresholds must flow through the named, documented functions \
         in Quorum.";
      example = "let deliver ~f count = count >= 2 * f + 1";
    };
    {
      id = "resilience";
      severity = Finding.Error;
      scope = "lib/core/ except quorum.ml, and lib/smr/";
      rationale =
        "Each protocol module declares its resilience class (n > 3f for \
         the Bracha family, n > 5f for Imbs-Raynal, ...) with an \
         [@@@abc.resilience \"n>3f\"] attribute or the built-in registry; \
         every Quorum.* use is checked against it. An n>5f protocol \
         calling an n>3f-family threshold (or asserting the wrong ratio) \
         imports an intersection argument that does not hold under its \
         assumption.";
      example = "[@@@abc.resilience \"n>5f\"] ... Quorum.ready_deliver ~f";
    };
    {
      id = "mutable-global";
      severity = Finding.Error;
      scope = "lib/sim/, lib/net/, lib/exec/";
      rationale =
        "Exec.Pool jobs run engines concurrently across domains, so \
         module-level mutable containers (ref, Hashtbl.t, Queue.t, \
         Buffer.t, Stack.t, Atomic.t) in the engine libraries are shared \
         across domains without synchronization. Allocate run state per \
         run and pass it through config/context; reviewed main-domain-only \
         survivors live in lint.allow.";
      example = "let registry = Hashtbl.create 16";
    };
    {
      id = "pool-capture";
      severity = Finding.Error;
      scope = "everywhere";
      rationale =
        "The static complement of the jobs-1-vs-4 determinism tests: an \
         Exec.Pool job closure that captures a module-level mutable \
         binding, or assigns (:=, Hashtbl.replace, Buffer.add_*, ...) to \
         a name it does not bind itself, races across worker domains and \
         breaks the deterministic index-ordered merge contract. Jobs must \
         build every piece of mutable state they touch.";
      example = "let hits = ref 0 ... Pool.map pool n (fun i -> incr hits; i)";
    };
    {
      id = "silent-drop";
      severity = Finding.Error;
      scope = "lib/core/, lib/smr/";
      rationale =
        "An unguarded wildcard arm in a match inside a protocol handler \
         (on_message / on_timeout / handle) silently drops message \
         constructors added later — exactly the bug class the totality \
         battery exists to catch, except the compiler's exhaustiveness \
         check has been opted out of. Match every constructor explicitly, \
         or allowlist the arm with a reviewed reason.";
      example = "let on_message ctx state ~src = function Init v -> ... | _ -> state";
    };
    {
      id = "stray-output";
      severity = Finding.Warn;
      scope = "everywhere except bin/, bench/, test/, examples/";
      rationale =
        "All library observability flows through the typed Event / Trace / \
         Metrics pipeline so runs are machine-readable and byte-stable \
         under Exec.Pool. Direct printing (print_*, Printf.printf, \
         prerr_*, Format.printf, Fmt.pr) from library code bypasses the \
         trace schema and interleaves nondeterministically across \
         domains.";
      example = "let debug x = Printf.printf \"x=%d\\n\" x";
    };
    {
      id = "matrix-parse";
      severity = Finding.Error;
      scope = "*.matrix files under the scan roots";
      rationale =
        "A committed scenario spec that fails to parse or elaborate \
         breaks abc-bench run and the bench-gate CI job only at run \
         time; the linter loads every .matrix file through the same \
         Abc_matrix.Spec reader and reports the elaboration error at \
         the offending token, review-time.";
      example = "(axes (n 4) (n 7))  ; duplicate axis";
    };
    {
      id = "matrix-resilience";
      severity = Finding.Error;
      scope = "*.matrix files under the scan roots";
      rationale =
        "The spec-level twin of the resilience rule: every expanded \
         cell's n/f literals are checked against the protocol's \
         declared resilience class (n > 3f for the Bracha family, \
         n > 5f for Ben-Or and Imbs-Raynal, n > 4f for Turpin-Coan). \
         A beyond-bound cell must carry an expect-fail oracle — \
         otherwise the protocol's own init-time rejection would be \
         scored as a verdict miss, or worse, quietly measured.";
      example = "(zip (n 4) (f 2)) with (default deliver-all)";
    };
    {
      id = "interface";
      severity = Finding.Error;
      scope = "lib/";
      rationale =
        "Every module under lib/ carries a .mli so the public surface — \
         and the threshold documentation that lives on it — stays \
         explicit and reviewed.";
      example = "lib/core/foo.ml without lib/core/foo.mli";
    };
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let severity_of id =
  match find id with Some r -> r.severity | None -> Finding.Error

let stamp (f : Finding.t) = { f with Finding.severity = severity_of f.Finding.rule }

let ids = List.map (fun r -> r.id) all
