(** The rule registry: one record per rule id, carrying the default
    severity, the path scope, the rationale printed by
    [abc-lint --explain], and a minimal example finding.

    The README rules table is kept consistent with this registry by
    hand; [--explain all] prints the authoritative version. *)

type t = {
  id : string;
  severity : Finding.severity;  (** default severity; [Error] gates CI *)
  scope : string;  (** human-readable path scope *)
  rationale : string;  (** why the rule exists, printed by [--explain] *)
  example : string;  (** a minimal violating fragment *)
}

val all : t list
(** Every rule, in documentation order. *)

val find : string -> t option

val severity_of : string -> Finding.severity
(** Default severity for a rule id; unknown ids are [Error]. *)

val stamp : Finding.t -> Finding.t
(** Re-stamp a finding's severity from the registry. *)

val ids : string list
