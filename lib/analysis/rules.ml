open Token_stream

let normalize = Scope.normalize

let in_dir = Scope.in_dir

(* ----------------------------------------------------------------- *)
(* Token helpers                                                     *)
(* ----------------------------------------------------------------- *)

let is_lident name tok =
  match tok with Parser.LIDENT s -> String.equal s name | _ -> false

let is_uident name tok =
  match tok with Parser.UIDENT s -> String.equal s name | _ -> false

let is_dot = function Parser.DOT -> true | _ -> false

let is_plus = function Parser.PLUS -> true | _ -> false

let is_minus = function Parser.MINUS -> true | _ -> false

let is_star = function Parser.STAR -> true | _ -> false

let is_slash = function Parser.INFIXOP3 "/" -> true | _ -> false

let is_any_int = function Parser.INT (_, None) -> true | _ -> false

let is_int k = function
  | Parser.INT (s, None) -> ( match int_of_string_opt s with Some v -> v = k | None -> false)
  | _ -> false

let is_paren = function Parser.LPAREN | Parser.RPAREN -> true | _ -> false

let mentions toks name = Array.exists (fun t -> is_uident name t.token) toks

(* Match [preds] starting at index [i], transparently skipping
   parentheses between elements; returns the matched token indices. *)
let match_seq toks i preds =
  let len = Array.length toks in
  let rec skip i = if i < len && is_paren toks.(i).token then skip (i + 1) else i in
  let rec go i preds acc =
    match preds with
    | [] -> Some (List.rev acc)
    | p :: rest ->
      let i = skip i in
      if i < len && p toks.(i).token then go (i + 1) rest (i :: acc) else None
  in
  go i preds []

let snippet_of toks indices =
  String.concat " " (List.map (fun i -> toks.(i).text) indices)

let dedup = Finding.dedup

let v ~rule ~file ~line ~snippet message =
  Finding.v ~rule ~file ~span:(Finding.line_span line) ~snippet message

(* ----------------------------------------------------------------- *)
(* Rule 1: determinism                                               *)
(* ----------------------------------------------------------------- *)

let banned_sys = [ "time" ]

let banned_unix =
  [
    "time"; "gettimeofday"; "gmtime"; "localtime"; "mktime"; "sleep"; "sleepf";
    "select"; "times"; "setitimer"; "alarm";
  ]

let determinism ~path toks =
  if in_dir path "lib/prng/" then []
  else begin
    let file = normalize path in
    let find = ref [] in
    let flag ~line ~snippet message =
      find := v ~rule:"determinism" ~file ~line ~snippet message :: !find
    in
    Array.iteri
      (fun i t ->
        match t.token with
        | Parser.UIDENT "Random" ->
          flag ~line:t.line ~snippet:"Random"
            "Stdlib.Random is nondeterministic; draw from a seeded Abc_prng.Stream \
             instead (reproducible sims and the model checker depend on it)"
        | Parser.UIDENT "Sys" -> (
          match match_seq toks i [ is_uident "Sys"; is_dot; (fun tok -> List.exists (fun m -> is_lident m tok) banned_sys) ] with
          | Some idx ->
            flag ~line:t.line ~snippet:(snippet_of toks idx)
              "wall-clock time is nondeterministic; use the simulator's virtual \
               Abc_sim.Clock"
          | None -> ())
        | Parser.UIDENT "Unix" -> (
          match match_seq toks i [ is_uident "Unix"; is_dot; (fun tok -> List.exists (fun m -> is_lident m tok) banned_unix) ] with
          | Some idx ->
            flag ~line:t.line ~snippet:(snippet_of toks idx)
              "Unix wall-clock/timer APIs are nondeterministic; use the simulator's \
               virtual Abc_sim.Clock"
          | None -> ())
        | _ -> ())
      toks;
    dedup !find
  end

(* ----------------------------------------------------------------- *)
(* Rule 2: polymorphic comparison                                    *)
(* ----------------------------------------------------------------- *)

(* Identifiers that conventionally hold an abstract Node_id in this
   codebase; [=]/[<>] next to one is almost always a structural
   comparison that should be Node_id.equal. *)
let id_names = [ "src"; "dst"; "sender"; "origin"; "me"; "victim"; "proposer" ]

let is_id_name tok = List.exists (fun n -> is_lident n tok) id_names

(* Binding/record contexts in which [name =] is not a comparison:
   [let x =], [{ x =], [; x =], [with x =], [~x =] (punned label in a
   definition), [for x =]. *)
let is_binder = function
  | Parser.LET | Parser.REC | Parser.AND | Parser.LBRACE | Parser.SEMI
  | Parser.WITH | Parser.VAL | Parser.METHOD | Parser.QUESTION | Parser.TILDE
  | Parser.FOR ->
    true
  | _ -> false

(* Record-construction context at the record's start. *)
let is_record_open = function
  | Parser.LBRACE | Parser.SEMI | Parser.WITH -> true
  | _ -> false

(* An expression almost never starts with these; [x = let ...] is a
   function definition whose last parameter happens to be named like an
   id, not a comparison. *)
let is_defn_body = function
  | Parser.LET | Parser.MATCH | Parser.FUN | Parser.FUNCTION | Parser.IF
  | Parser.TRY | Parser.BEGIN ->
    true
  | _ -> false

let poly_compare ~path toks =
  let file = normalize path in
  let len = Array.length toks in
  let node_id_in_scope = mentions toks "Node_id" in
  let find = ref [] in
  let flag ~line ~snippet message =
    find := v ~rule:"poly-compare" ~file ~line ~snippet message :: !find
  in
  (* Scan in order, tracking whether the unit has defined its own
     [compare] yet: after [let compare = ...] a bare [compare] refers
     to that definition, before it it is Stdlib's polymorphic one.
     (Lexical approximation of scoping; precise enough in practice and
     overridable via lint.allow.) *)
  let compare_defined = ref false in
  (* A binding head ([let f a b =], [type t =], [module M =], ...) ends
     at its first [=]; that token is a definition, not a comparison. *)
  let defn_eq_pending = ref false in
  for i = 0 to len - 1 do
    let t = toks.(i) in
    let prev = if i > 0 then Some toks.(i - 1).token else None in
    (match t.token with
    | Parser.LET | Parser.AND | Parser.TYPE | Parser.MODULE | Parser.VAL
    | Parser.METHOD | Parser.EXTERNAL ->
      defn_eq_pending := true
    | _ -> ());
    (match t.token with
    | Parser.LIDENT "compare" -> (
      match prev with
      | Some tok when is_dot tok -> ()
      | Some (Parser.LET | Parser.REC | Parser.AND) | None ->
        (* Definition site: [let compare = compare] (or
           [= Stdlib.compare]) is itself a polymorphic alias when no
           earlier definition exists. *)
        (match match_seq toks (i + 1) [ (function Parser.EQUAL -> true | _ -> false); is_lident "compare" ] with
        | Some idx when not !compare_defined ->
          flag ~line:t.line ~snippet:("compare = " ^ snippet_of toks [ List.nth idx 1 ])
            "polymorphic compare; use a concrete compare (Int.compare, \
             Node_id.compare, an explicit tuple compare, ...)"
        | Some _ | None -> ());
        compare_defined := true
      | Some _ ->
        if not !compare_defined then
          flag ~line:t.line ~snippet:"compare"
            "bare polymorphic compare; use a concrete compare (Int.compare, \
             Node_id.compare, an explicit tuple compare, ...)")
    | Parser.UIDENT "Stdlib" -> (
      match match_seq toks i [ is_uident "Stdlib"; is_dot; is_lident "compare" ] with
      | Some idx ->
        flag ~line:t.line ~snippet:(snippet_of toks idx)
          "Stdlib.compare is polymorphic; use a concrete compare"
      | None -> ())
    | Parser.UIDENT "Hashtbl" when node_id_in_scope -> (
      match
        match_seq toks i
          [ is_uident "Hashtbl"; is_dot;
            (fun tok -> is_lident "create" tok || is_lident "hash" tok) ]
      with
      | Some idx ->
        flag ~line:t.line ~snippet:(snippet_of toks idx)
          "polymorphic hashing where an abstract id type is in scope; use \
           Hashtbl.Make over the id's hash/equal, or a Map"
      | None -> ())
    | Parser.EQUAL | Parser.INFIXOP0 "<>" when node_id_in_scope ->
      (* [M.N.field =] inside { ... } / with / ; is a qualified record
         field, not a comparison: walk the module path backwards. *)
      let rec path_start j =
        if
          j >= 2
          && is_dot toks.(j - 1).token
          && (match toks.(j - 2).token with Parser.UIDENT _ -> true | _ -> false)
        then path_start (j - 2)
        else j
      in
      let binder_context =
        match t.token with
        | Parser.EQUAL ->
          !defn_eq_pending
          || (i >= 2 && is_binder toks.(i - 2).token)
          || begin
            let s = path_start (i - 1) in
            s < i - 1 && (s = 0 || is_record_open toks.(s - 1).token)
          end
        | _ -> false
      in
      (match t.token with Parser.EQUAL -> defn_eq_pending := false | _ -> ());
      let defn_body = i + 1 < len && is_defn_body toks.(i + 1).token in
      if not (binder_context || defn_body) then begin
        let left_id = i >= 1 && is_id_name toks.(i - 1).token in
        let right_id =
          i + 1 < len
          && is_id_name toks.(i + 1).token
          && not (i + 2 < len && is_dot toks.(i + 2).token)
        in
        if left_id || right_id then
          flag ~line:t.line
            ~snippet:
              (String.concat " "
                 [ (if i >= 1 then toks.(i - 1).text else ""); t.text;
                   (if i + 1 < len then toks.(i + 1).text else "") ])
            "structural =/<> on an abstract node id; use Node_id.equal (or \
             Node_id.compare)"
      end
    | _ -> ())
  done;
  dedup !find

(* ----------------------------------------------------------------- *)
(* Rule 3: quorum arithmetic                                         *)
(* ----------------------------------------------------------------- *)

let is_f tok = is_lident "f" tok

let is_n tok = is_lident "n" tok

let quorum_patterns =
  [
    ("f + 1 (use Quorum.one_honest / ready_amplify / adopt_support / ...)",
     [ is_f; is_plus; is_int 1 ]);
    ("1 + f (use Quorum.one_honest / ready_amplify / adopt_support / ...)",
     [ is_int 1; is_plus; is_f ]);
    ("k * f (use Quorum.ready_deliver / decide_support / decide_unanimity / ...)",
     [ is_any_int; is_star; is_f ]);
    ("f * k (use Quorum.ready_deliver / decide_support / decide_unanimity / ...)",
     [ is_f; is_star; is_any_int ]);
    ("n - f (use Quorum.completeness)", [ is_n; is_minus; is_f ]);
    ("n - k (resilience bound; use Quorum.max_faults / honest_support)",
     [ is_n; is_minus; is_any_int ]);
    ("n + f (use Quorum.echo_quorum / faulty_majority)", [ is_n; is_plus; is_f ]);
    ("f + n (use Quorum.echo_quorum / faulty_majority)", [ is_f; is_plus; is_n ]);
    ("n / k (use Quorum.strict_majority / max_faults)", [ is_n; is_slash; is_any_int ]);
  ]

let quorum ~path toks =
  let file = normalize path in
  if
    (not (in_dir path "lib/core/"))
    || String.equal (Filename.basename file) "quorum.ml"
  then []
  else begin
    let find = ref [] in
    Array.iteri
      (fun i t ->
        List.iter
          (fun (message, preds) ->
            match match_seq toks i preds with
            | Some idx ->
              find :=
                v ~rule:"quorum" ~file ~line:t.line
                  ~snippet:(snippet_of toks idx)
                  ("raw threshold arithmetic: " ^ message)
                :: !find
            | None -> ())
          quorum_patterns)
      toks;
    dedup !find
  end

(* ----------------------------------------------------------------- *)
(* Rule 4: top-level mutable state                                   *)
(* ----------------------------------------------------------------- *)

(* Module-level mutable containers.  [Array.make] and [Bytes.create]
   are deliberately excluded: top-level arrays in this codebase are
   precomputed constant tables, while refs and growable containers are
   the state that leaks across Exec.Pool domains. *)
let mutable_makers =
  [
    ("Hashtbl", "create"); ("Queue", "create"); ("Buffer", "create");
    ("Stack", "create"); ("Atomic", "make");
  ]

let is_mutable_rhs toks i =
  match match_seq toks i [ is_lident "ref" ] with
  | Some idx -> Some idx
  | None ->
    List.find_map
      (fun (m, fn) -> match_seq toks i [ is_uident m; is_dot; is_lident fn ])
      mutable_makers

(* Flag [let x = ref ...] (and Hashtbl.create & co) at column 0 in the
   engine-adjacent libraries: every Exec.Pool job must build its own
   run state, so process-global mutable state there is shared across
   domains without synchronization.  Survivors (main-domain-only output
   configuration) are reviewed into lint.allow.  Only value bindings
   are matched — a [let f () = ... ref ...] allocates per call and is
   fine — and the column test keeps [let]s inside functions or
   submodules out of scope. *)
let mutable_global ~path toks =
  if
    not
      (in_dir path "lib/sim/" || in_dir path "lib/net/"
      || in_dir path "lib/exec/")
  then []
  else begin
    let file = normalize path in
    let len = Array.length toks in
    let find = ref [] in
    for i = 0 to len - 1 do
      let t = toks.(i) in
      if t.token = Parser.LET && t.col = 0 && i + 1 < len then begin
        match toks.(i + 1).token with
        | Parser.LIDENT name ->
          (* Accept [let x = rhs] and [let x : ty = rhs]; anything else
             after the name (parameters, tuples) is a function or
             destructuring, not a plain global. *)
          let eq =
            if i + 2 >= len then None
            else begin
              match toks.(i + 2).token with
              | Parser.EQUAL -> Some (i + 2)
              | Parser.COLON ->
                let rec seek j =
                  if j >= len || j > i + 16 then None
                  else if toks.(j).token = Parser.EQUAL then Some j
                  else seek (j + 1)
                in
                seek (i + 3)
              | _ -> None
            end
          in
          (match eq with
          | None -> ()
          | Some j -> (
            match is_mutable_rhs toks (j + 1) with
            | None -> ()
            | Some idx ->
              find :=
                v ~rule:"mutable-global" ~file ~line:t.line
                  ~snippet:("let " ^ name ^ " = " ^ snippet_of toks idx)
                  "top-level mutable state in an engine library: Exec.Pool \
                   jobs run concurrently across domains, so run state must \
                   be allocated per run (pass it through config/context) or \
                   reviewed into lint.allow as main-domain-only"
                :: !find))
        | _ -> ()
      end
    done;
    dedup !find
  end

(* ----------------------------------------------------------------- *)
(* Dispatch + interface coverage                                     *)
(* ----------------------------------------------------------------- *)

let check_source ~path source =
  if Filename.check_suffix path ".ml" then begin
    let toks = Token_stream.of_string ~filename:path source in
    dedup
      (determinism ~path toks @ poly_compare ~path toks @ quorum ~path toks
      @ mutable_global ~path toks)
  end
  else []

let interface_coverage ~files =
  let files = List.map normalize files in
  let mli_present = List.filter (fun f -> Filename.check_suffix f ".mli") files in
  List.filter_map
    (fun file ->
      if Filename.check_suffix file ".ml" && in_dir file "lib/" then begin
        let want = file ^ "i" in
        if List.exists (String.equal want) mli_present then None
        else
          Some
            (Finding.v ~rule:"interface" ~file ~span:Finding.file_span
               ~snippet:(Filename.basename want)
               "every module under lib/ needs an interface: add the .mli so the \
                public surface (and its threshold docs) stays explicit")
      end
      else None)
    files
  |> dedup
