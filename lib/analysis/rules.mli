(** The lexical (token-level) rule layer — the fallback.

    Since the analyzer moved to the compiler parsetree
    (see {!Frontend} / {!Ast_rules}), these token rules run only for
    units that fail to parse: they are fast, never require a
    successful parse, and immune to comment/string false positives,
    at the price of line-level (not span-accurate) findings and
    lexical heuristics for scoping.  The four original rule families
    are implemented here — {b determinism}, {b poly-compare},
    {b quorum} and {b mutable-global} — with the same path scoping as
    their parsetree counterparts (see {!Ast_rules} and
    {!Rule_info.all}); the newer semantic families (pool-capture,
    resilience, silent-drop, stray-output) need real scope and
    attribute information and have no lexical fallback.

    {b interface} coverage is file-list-based and lives here because
    it needs no parse at all. *)

val determinism : path:string -> Token_stream.tok array -> Finding.t list

val poly_compare : path:string -> Token_stream.tok array -> Finding.t list

val quorum : path:string -> Token_stream.tok array -> Finding.t list

val mutable_global : path:string -> Token_stream.tok array -> Finding.t list

val check_source : path:string -> string -> Finding.t list
(** Lex [source] and apply the token rules in scope for [path]
    ([.ml] files only; [.mli] and other files yield []).  Findings
    are sorted and deduplicated per (file, line, rule). *)

val interface_coverage : files:string list -> Finding.t list
(** [interface_coverage ~files] checks every [lib/**.ml] in [files]
    for a matching [.mli] in [files]. *)
