(** The four protocol-aware rule families.

    All rules are lexical (token-level), which keeps them fast,
    dependency-free and immune to comment/string false positives; the
    price is that they are heuristics, so every rule supports explicit
    exceptions through the [lint.allow] file (see {!Allow}).

    Scoping is path-driven and mirrors the repository layout:

    - {b determinism} applies everywhere except [lib/prng/] (the one
      module allowed to produce randomness).  The deterministic
      simulator and the bounded model checker ([lib/check/explore.ml])
      are only sound if protocol control flow is a pure function of
      the seeded streams, so [Stdlib.Random], [Sys.time] and the
      [Unix] wall-clock/timer API are banned outright.
    - {b poly-compare} applies everywhere: bare polymorphic [compare]
      (and [Stdlib.compare]) is always flagged; [=] / [<>] adjacent to
      an identifier conventionally holding an abstract node id
      ([src], [dst], [sender], [origin], [me], ...) and polymorphic
      [Hashtbl] creation are flagged in files where [Node_id] is in
      scope — use [Node_id.equal]/[compare] or a keyed structure.
    - {b quorum} applies to protocol modules ([lib/core/]) except
      [quorum.ml] itself: raw threshold arithmetic over the protocol
      parameters [n] and [f] ([f + 1], [2 * f + 1], [n - f], [n / 3],
      ...) must flow through the [Quorum] module so each bound carries
      its intersection argument.
    - {b mutable-global} applies to the engine-adjacent libraries
      ([lib/sim/], [lib/net/], [lib/exec/]): a top-level (column-0)
      value binding whose right-hand side allocates a mutable
      container ([ref], [Hashtbl.create], [Queue.create],
      [Buffer.create], [Stack.create], [Atomic.make]) is flagged —
      [Exec.Pool] jobs run engines concurrently across domains, so
      run state must be allocated per run; reviewed main-domain-only
      survivors live in [lint.allow].
    - {b interface} requires every [.ml] under [lib/] to have a
      matching [.mli]. *)

val determinism : path:string -> Token_stream.tok array -> Finding.t list

val poly_compare : path:string -> Token_stream.tok array -> Finding.t list

val quorum : path:string -> Token_stream.tok array -> Finding.t list

val mutable_global : path:string -> Token_stream.tok array -> Finding.t list

val check_source : path:string -> string -> Finding.t list
(** Lex [source] and apply the three token rules that are in scope for
    [path] ([.ml] files only; [.mli] and other files yield []).
    Findings are sorted and deduplicated per (file, line, rule). *)

val interface_coverage : files:string list -> Finding.t list
(** [interface_coverage ~files] checks every [lib/**.ml] in [files]
    for a matching [.mli] in [files]. *)
