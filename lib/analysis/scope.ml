let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let in_dir path frag =
  let path = "/" ^ normalize path in
  let needle = "/" ^ frag in
  let np = String.length needle and pp = String.length path in
  let rec scan i = i + np <= pp && (String.sub path i np = needle || scan (i + 1)) in
  scan 0
