(** Path scoping shared by the parsetree and token rule layers.

    Rules are scoped by repository layout ("applies under [lib/core/]",
    "exempt under [lib/prng/]", ...); these helpers make that scoping
    independent of the scan root and of platform path separators. *)

val normalize : string -> string
(** ['\\'] to ['/'], and a leading ["./"] stripped. *)

val in_dir : string -> string -> bool
(** [in_dir path frag] is true when [path] contains the directory
    fragment [frag] (e.g. ["lib/core/"]) anchored at a component
    boundary. *)
