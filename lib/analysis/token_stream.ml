type tok = { token : Parser.token; line : int; col : int; text : string }

let of_string ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  (* The compiler lexer keeps global comment/docstring state; reset it
     per unit so scans are independent. *)
  Lexer.init ();
  let acc = ref [] in
  let rec loop () =
    match Lexer.token lexbuf with
    | Parser.EOF -> ()
    | Parser.COMMENT _ | Parser.DOCSTRING _ -> loop ()
    | token ->
      let start = lexbuf.Lexing.lex_start_p in
      let line = start.Lexing.pos_lnum in
      let col = start.Lexing.pos_cnum - start.Lexing.pos_bol in
      let text = Lexing.lexeme lexbuf in
      acc := { token; line; col; text } :: !acc;
      loop ()
    | exception Lexer.Error (_, _) -> ()
  in
  loop ();
  Array.of_list (List.rev !acc)
