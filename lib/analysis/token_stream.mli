(** Lexical front end for the analyzer.

    Sources are lexed with the compiler's own lexer
    ([compiler-libs.common]), so the rules operate on real OCaml
    tokens — comments and string literals can never produce false
    positives, and no ppx or type information is required. *)

type tok = {
  token : Parser.token;  (** the compiler's token *)
  line : int;  (** 1-based start line *)
  col : int;  (** 0-based start column; 0 means flush against the
                  margin, i.e. a top-level construct *)
  text : string;  (** the lexeme as written in the source *)
}

val of_string : filename:string -> string -> tok array
(** Lex a whole compilation unit.  Comments and docstrings are
    dropped.  A lexer error (impossible on sources that compile) ends
    the stream at the error point rather than raising. *)
