module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Behaviour = Abc_net.Behaviour

module Make (P : Abc_net.Protocol.S) = struct
  type config = {
    n : int;
    f : int;
    inputs : P.input array;
    faulty : (Node_id.t * P.msg Behaviour.t) list;
    invariant : P.output list array -> bool;
    max_states : int;
    max_depth : int option;
    drop_plan : (src:Node_id.t -> dst:Node_id.t -> nth:int -> bool) option;
  }

  type violation = {
    schedule : (Node_id.t * Node_id.t * string) list;
    outputs : P.output list array;
  }

  type outcome = {
    explored : int;
    exhausted : bool;
    deadlocks : int;
    depth_reached : int;
    violation : violation option;
  }

  (* The in-flight pool is a canonical multiset: entries keyed by the
     marshalled (src, dst, msg) triple so that duplicate messages do
     not multiply the branching factor. *)
  module Pending_map = Map.Make (String)

  type entry = { src : Node_id.t; dst : Node_id.t; msg : P.msg; count : int }

  (* Pending timers are a multiset of (node, timer id): exploration is
     time-abstract, so a pending timer may fire at any point — a sound
     over-approximation of the engine's due-tick semantics. *)
  module Timer_map = Map.Make (struct
    type t = int * int

    let compare (n1, i1) (n2, i2) =
      match Int.compare n1 n2 with 0 -> Int.compare i1 i2 | c -> c
  end)

  type sys_state = {
    nodes : P.state array;
    activations : int array;
    outputs : P.output list array; (* oldest first *)
    pending : entry Pending_map.t;
    timers : int Timer_map.t; (* (node, id) -> count *)
    sent : int array;
        (* per-link send counts feeding the drop plan, row-major
           [src * n + dst]; empty (and so fingerprint-neutral) when no
           plan is configured *)
  }

  let entry_key src dst msg = Marshal.to_string (src, dst, msg) []

  let add_pending pending src dst msg =
    let key = entry_key src dst msg in
    match Pending_map.find_opt key pending with
    | Some e -> Pending_map.add key { e with count = e.count + 1 } pending
    | None -> Pending_map.add key { src; dst; msg; count = 1 } pending

  let remove_pending pending key =
    match Pending_map.find_opt key pending with
    | Some e when e.count > 1 -> Pending_map.add key { e with count = e.count - 1 } pending
    | Some _ -> Pending_map.remove key pending
    | None -> assert false

  let add_timer timers key =
    Timer_map.add key
      (1 + Option.value ~default:0 (Timer_map.find_opt key timers))
      timers

  let remove_timer timers key =
    match Timer_map.find_opt key timers with
    | Some c when c > 1 -> Timer_map.add key (c - 1) timers
    | Some _ -> Timer_map.remove key timers
    | None -> assert false

  (* A fresh stream per call: deterministic protocols never draw from
     it, and if one does, every branch sees the same draws. *)
  let fresh_rng label = Abc_prng.Stream.split (Abc_prng.Stream.root ~seed:0) ~label

  let context cfg i =
    {
      Protocol.Context.me = Node_id.of_int i;
      n = cfg.n;
      f = cfg.f;
      rng = fresh_rng i;
      (* Exploration never traces: states are marshalled for
         fingerprinting and a live sink would not survive that. *)
      sink = Abc_sim.Event.null_sink;
    }

  (* Canonical fingerprint of a system state.  Node states are
     marshalled as-is: for tree-backed states the AVL shape can differ
     for equal contents, which only weakens deduplication (more states
     revisited), never soundness. *)
  let fingerprint state =
    let buffer = Buffer.create 512 in
    Array.iter
      (fun node_state -> Buffer.add_string buffer (Marshal.to_string node_state []))
      state.nodes;
    Array.iter (fun a -> Buffer.add_string buffer (string_of_int a)) state.activations;
    Buffer.add_string buffer (Marshal.to_string state.outputs []);
    Pending_map.iter
      (fun key e ->
        Buffer.add_string buffer key;
        Buffer.add_string buffer (string_of_int e.count))
      state.pending;
    Timer_map.iter
      (fun (node, id) count ->
        Buffer.add_string buffer (Printf.sprintf "T%d.%d=%d" node id count))
      state.timers;
    Array.iter (fun c -> Buffer.add_string buffer (string_of_int c)) state.sent;
    Digest.string (Buffer.contents buffer)

  (* Put one transmission into the pool — unless the configured drop
     plan kills it at send time.  [sent] is the successor's private
     copy of the per-link counters ([nth] is 0-based). *)
  let transmit cfg sent pending src dst msg =
    match cfg.drop_plan with
    | None -> add_pending pending src dst msg
    | Some plan ->
      let cell = (Node_id.to_int src * cfg.n) + Node_id.to_int dst in
      let nth = sent.(cell) in
      sent.(cell) <- nth + 1;
      if plan ~src ~dst ~nth then pending else add_pending pending src dst msg

  (* Fold one node's emitted actions into the pool and timer multiset. *)
  let apply_actions cfg ~actor sent (pending, timers) actions =
    List.fold_left
      (fun (pending, timers) action ->
        match action with
        | Protocol.Broadcast msg ->
          ( List.fold_left
              (fun pending dst -> transmit cfg sent pending actor dst msg)
              pending (Node_id.all ~n:cfg.n),
            timers )
        | Protocol.Send (dst, msg) ->
          (transmit cfg sent pending actor dst msg, timers)
        | Protocol.Set_timer { id; after = _ } ->
          (* Durations are abstracted away: the timer just becomes
             eligible to fire at any later step. *)
          (pending, add_timer timers (Node_id.to_int actor, id)))
      (pending, timers) actions

  let behaviour_filter cfg ~id ~activation actions =
    match List.assoc_opt id cfg.faulty with
    | None -> actions
    | Some b ->
      Behaviour.apply b
        ~rng:(fresh_rng (1000 + Node_id.to_int id))
        ~n:cfg.n ~activation actions

  (* [deliver cfg state key] returns the successor state. *)
  let deliver cfg state key =
    let e = Pending_map.find key state.pending in
    let i = Node_id.to_int e.dst in
    let ctx = context cfg i in
    let node_state, actions, new_outputs =
      P.on_message ctx state.nodes.(i) ~src:e.src e.msg
    in
    let activation = state.activations.(i) in
    let actions = behaviour_filter cfg ~id:e.dst ~activation actions in
    let nodes = Array.copy state.nodes in
    nodes.(i) <- node_state;
    let activations = Array.copy state.activations in
    activations.(i) <- activation + 1;
    let outputs = Array.copy state.outputs in
    outputs.(i) <- state.outputs.(i) @ new_outputs;
    let sent = Array.copy state.sent in
    let pending = remove_pending state.pending key in
    let pending, timers =
      apply_actions cfg ~actor:e.dst sent (pending, state.timers) actions
    in
    { nodes; activations; outputs; pending; timers; sent }

  (* [fire cfg state (node, id)] is the successor in which that pending
     timer fires next. *)
  let fire cfg state ((node_i, id) as tkey) =
    let ctx = context cfg node_i in
    let node_state, actions, new_outputs =
      P.on_timeout ctx state.nodes.(node_i) ~id
    in
    let actor = Node_id.of_int node_i in
    let activation = state.activations.(node_i) in
    let actions = behaviour_filter cfg ~id:actor ~activation actions in
    let nodes = Array.copy state.nodes in
    nodes.(node_i) <- node_state;
    let activations = Array.copy state.activations in
    activations.(node_i) <- activation + 1;
    let outputs = Array.copy state.outputs in
    outputs.(node_i) <- state.outputs.(node_i) @ new_outputs;
    let sent = Array.copy state.sent in
    let timers = remove_timer state.timers tkey in
    let pending, timers =
      apply_actions cfg ~actor sent (state.pending, timers) actions
    in
    { nodes; activations; outputs; pending; timers; sent }

  let initial_state cfg =
    let nodes = Array.make cfg.n (fst (P.initial (context cfg 0) cfg.inputs.(0))) in
    let sent =
      Array.make (match cfg.drop_plan with Some _ -> cfg.n * cfg.n | None -> 0) 0
    in
    let pool = ref (Pending_map.empty, Timer_map.empty) in
    for i = 0 to cfg.n - 1 do
      let ctx = context cfg i in
      let node_state, actions = P.initial ctx cfg.inputs.(i) in
      nodes.(i) <- node_state;
      let actions =
        behaviour_filter cfg ~id:(Node_id.of_int i) ~activation:0 actions
      in
      pool := apply_actions cfg ~actor:(Node_id.of_int i) sent !pool actions
    done;
    let pending, timers = !pool in
    {
      nodes;
      activations = Array.make cfg.n 1;
      outputs = Array.make cfg.n [];
      pending;
      timers;
      sent;
    }

  (* Fingerprints are strings; hash them through an explicit functor so
     no polymorphic hashing hides in the checker's hot path. *)
  module Fp_tbl = Hashtbl.Make (struct
    type t = string

    let equal = String.equal
    let hash = String.hash
  end)

  (* The BFS core, shared by the sequential and parallel entry points:
     explore from [start] (at schedule depth [depth0], reached by the
     steps in [prefix], newest last) until the frontier empties or the
     state budget runs out.  [prefix] only decorates counterexamples —
     the search itself is oblivious to how [start] was reached. *)
  let bfs ?(depth0 = 0) ?(prefix = []) cfg start =
    let visited : unit Fp_tbl.t = Fp_tbl.create 4096 in
    (* parent edge per fingerprint, for counterexample reconstruction *)
    let parents : (string * (Node_id.t * Node_id.t * string)) Fp_tbl.t =
      Fp_tbl.create 4096
    in
    let queue = Queue.create () in
    let explored = ref 0 in
    let deadlocks = ref 0 in
    let violation = ref None in
    let start_fp = fingerprint start in
    Fp_tbl.add visited start_fp ();
    Queue.add (start, start_fp, depth0) queue;
    let depth_reached = ref depth0 in
    let truncated = ref false in
    let rebuild_schedule fp =
      let rec walk fp acc =
        match Fp_tbl.find_opt parents fp with
        | Some (parent_fp, step) -> walk parent_fp (step :: acc)
        | None -> prefix @ acc
      in
      walk fp []
    in
    if not (cfg.invariant start.outputs) then
      violation := Some { schedule = prefix; outputs = start.outputs };
    while (not (Queue.is_empty queue)) && !violation = None && !explored < cfg.max_states do
      let state, fp, depth = Queue.pop queue in
      incr explored;
      depth_reached := max !depth_reached depth;
      if Pending_map.is_empty state.pending && Timer_map.is_empty state.timers
      then incr deadlocks
      else if (match cfg.max_depth with Some d -> depth >= d | None -> false) then
        truncated := true
      else begin
        let visit successor step =
          let successor_fp = fingerprint successor in
          if not (Fp_tbl.mem visited successor_fp) then begin
            Fp_tbl.add visited successor_fp ();
            Fp_tbl.add parents successor_fp (fp, step);
            if not (cfg.invariant successor.outputs) then
              violation :=
                Some
                  {
                    schedule = rebuild_schedule successor_fp;
                    outputs = successor.outputs;
                  }
            else Queue.add (successor, successor_fp, depth + 1) queue
          end
        in
        Pending_map.iter
          (fun key e ->
            if !violation = None then
              visit (deliver cfg state key)
                (e.src, e.dst, Fmt.str "%a" P.pp_msg e.msg))
          state.pending;
        (* Every pending timer may fire next, too. *)
        Timer_map.iter
          (fun ((node_i, id) as tkey) _count ->
            if !violation = None then
              let actor = Node_id.of_int node_i in
              visit (fire cfg state tkey)
                (actor, actor, Printf.sprintf "timeout#%d" id))
          state.timers
      end
    done;
    {
      explored = !explored;
      exhausted = Queue.is_empty queue && !violation = None && not !truncated;
      deadlocks = !deadlocks;
      depth_reached = !depth_reached;
      violation = !violation;
    }

  let run cfg = bfs cfg (initial_state cfg)

  (* Deterministic enumeration of the successors of [state], one per
     distinct in-flight message then one per pending timer — the same
     order the BFS visits them in. *)
  let branches cfg state =
    let deliveries =
      Pending_map.fold
        (fun key e acc ->
          ( (e.src, e.dst, Fmt.str "%a" P.pp_msg e.msg),
            deliver cfg state key )
          :: acc)
        state.pending []
    in
    let timers =
      Timer_map.fold
        (fun ((node_i, id) as tkey) _count acc ->
          let actor = Node_id.of_int node_i in
          ((actor, actor, Printf.sprintf "timeout#%d" id), fire cfg state tkey)
          :: acc)
        state.timers []
    in
    List.rev_append deliveries (List.rev timers)

  let run_parallel ?(pool = Abc_exec.Pool.sequential) cfg =
    let start = initial_state cfg in
    if not (cfg.invariant start.outputs) then
      {
        explored = 1;
        exhausted = false;
        deadlocks = 0;
        depth_reached = 0;
        violation = Some { schedule = []; outputs = start.outputs };
      }
    else
      match branches cfg start with
      | [] ->
        (* Quiescent initial state: nothing in flight, nothing to fan
           out — the whole space is that one (deadlocked) state. *)
        {
          explored = 1;
          exhausted = true;
          deadlocks = 1;
          depth_reached = 0;
          violation = None;
        }
      | branch_list ->
        let branch_arr = Array.of_list branch_list in
        let nbranches = Array.length branch_arr in
        (* Split the state budget across branches (rounding up, so the
           total never shrinks below [max_states]). *)
        let per_branch =
          max 1 ((cfg.max_states - 1 + nbranches - 1) / nbranches)
        in
        let branch_cfg = { cfg with max_states = per_branch } in
        let outcomes =
          Abc_exec.Pool.map pool nbranches (fun i ->
              let step, successor = branch_arr.(i) in
              bfs ~depth0:1 ~prefix:[ step ] branch_cfg successor)
        in
        (* Deterministic merge: counts accumulate in branch order and
           the reported counterexample is the lowest-indexed branch's,
           whatever the worker count.  Branches dedup states only
           locally, so [explored] counts shared states once per branch
           that reaches them (the sequential [run] counts them once). *)
        Array.fold_left
          (fun acc o ->
            {
              explored = acc.explored + o.explored;
              exhausted = acc.exhausted && o.exhausted;
              deadlocks = acc.deadlocks + o.deadlocks;
              depth_reached = max acc.depth_reached o.depth_reached;
              violation =
                (match acc.violation with Some _ -> acc.violation | None -> o.violation);
            })
          {
            explored = 1;
            exhausted = true;
            deadlocks = 0;
            depth_reached = 0;
            violation = None;
          }
          outcomes
end
