(** Bounded model checking by exhaustive schedule exploration.

    Randomized testing samples delivery schedules; this module
    {e enumerates} them.  For a small configuration it performs a
    breadth-first search over every reachable system state — each
    branch delivers one of the distinct in-flight messages — checking a
    safety invariant at every state.  Duplicate in-flight messages and
    already-visited system states are merged, which keeps single-digit
    node counts tractable (a four-node reliable broadcast with an
    equivocating sender is a few hundred thousand states).

    The checked protocol must be deterministic: exploration fixes each
    node's random stream, so protocols whose control flow draws
    randomness (coin flips) are explored for a single coin sequence
    only — exhaustive over schedules, not over coins.  Reliable
    broadcast, the primary target, draws no randomness at all.

    The result distinguishes a verified bound ([exhausted = true]: the
    invariant holds on {e every} reachable state) from a budgeted
    search ([exhausted = false]: no violation found within
    [max_states]). *)

module Make (P : Abc_net.Protocol.S) : sig
  type config = {
    n : int;
    f : int;
    inputs : P.input array;
    faulty : (Abc_net.Node_id.t * P.msg Abc_net.Behaviour.t) list;
        (** behaviours must be deterministic (ignore their rng) for the
            exploration to be meaningful *)
    invariant : P.output list array -> bool;
        (** checked at every reachable state; receives the outputs each
            node has produced so far (oldest first) *)
    max_states : int;  (** exploration budget *)
    max_depth : int option;
        (** bound on schedule length (deliveries and timer firings);
            [None] explores to quiescence.  A bounded run that finds no
            violation verifies safety for {e every} schedule prefix up
            to that depth. *)
    drop_plan :
      (src:Abc_net.Node_id.t -> dst:Abc_net.Node_id.t -> nth:int -> bool)
      option;
        (** deterministic link-fault plan, applied at {e send} time:
            the [nth] (0-based) message sent on the [src -> dst] link
            is discarded when the predicate says so.  Exploration then
            covers every schedule of the surviving messages — this is
            how transport-layer protocols ([Reliable_link]) are checked
            against lossy links.  [None] keeps the reliable network
            (and the exact state space of previous versions). *)
  }

  type violation = {
    schedule : (Abc_net.Node_id.t * Abc_net.Node_id.t * string) list;
        (** the step sequence (src, dst, printed message) leading to
            the bad state, oldest first; a timer firing appears as
            (node, node, ["timeout#<id>"]) *)
    outputs : P.output list array;  (** outputs in the bad state *)
  }

  type outcome = {
    explored : int;  (** distinct states visited *)
    exhausted : bool;  (** whole reachable space covered *)
    deadlocks : int;
        (** states with no in-flight messages and no pending timers
            (not violations per se —
            liveness is out of scope for safety checking — but reported
            for diagnostics) *)
    depth_reached : int;  (** longest schedule prefix explored *)
    violation : violation option;  (** a counterexample, if found *)
  }

  val run : config -> outcome

  val run_parallel : ?pool:Abc_exec.Pool.t -> config -> outcome
  (** [run_parallel ~pool cfg] explores the same reachable space as
      {!run}, fanning the initial state's successor branches out over
      the worker pool (default {!Abc_exec.Pool.sequential}).  The state
      budget is split evenly across branches and the merge is
      deterministic — identical outcome for any worker count — but the
      numbers differ from {!run}: states reachable from several
      branches are deduplicated only within each branch, so [explored]
      (and [deadlocks]) count them once per reaching branch, and a
      reported counterexample is the lowest-indexed branch's rather
      than the globally shortest.  [exhausted = true] still certifies
      that the invariant holds on every reachable state. *)
end
