open Import

type event = Decided of Decision.t

type t = {
  n : int;
  f : int;
  me : Node_id.t;
  coin : Coin.t;
  mux : Rbc_mux.t;
  validation : Validation.t;
  core : Consensus_core.t option; (* None until [start] *)
  replay : Consensus_msg.vmsg list; (* validated before start, oldest first *)
}

let create ~n ~f ~me ~coin ~validation =
  {
    n;
    f;
    me;
    coin;
    mux = Rbc_mux.create ~n ~f;
    validation = Validation.create ~n ~f ~enabled:validation;
    core = None;
    replay = [];
  }

let started t = t.core <> None

let decided t =
  match t.core with Some core -> Consensus_core.decided core | None -> None

let round t = match t.core with Some core -> Consensus_core.round core | None -> 1

(* Turn core effects into wire broadcasts / decision events. *)
let interpret_effects effects =
  let split (wires, events) = function
    | Consensus_core.Broadcast_step vmsg ->
      let wire =
        Rbc_mux.broadcast_own
          (Consensus_msg.key_of_vmsg vmsg)
          (Consensus_msg.payload_of_vmsg vmsg)
      in
      (wire :: wires, events)
    | Consensus_core.Decide decision -> (wires, Decided decision :: events)
  in
  let wires, events = List.fold_left split ([], []) effects in
  (List.rev wires, List.rev events)

(* Feed a batch of validated messages into the core (buffering them
   when the instance has no input yet), collecting effects. *)
let drive ?(sink = Event.null_sink) t ~rng validated =
  match t.core with
  | None -> ({ t with replay = t.replay @ validated }, [], [])
  | Some core ->
    let core, effects =
      List.fold_left
        (fun (core, acc) vmsg ->
          let core, effects = Consensus_core.on_validated ~sink core ~rng vmsg in
          (core, acc @ effects))
        (core, []) validated
    in
    let wires, events = interpret_effects effects in
    ({ t with core = Some core }, wires, events)

let start ?(sink = Event.null_sink) t ~rng ~input =
  match t.core with
  | Some _ -> (t, [], [])
  | None ->
    let core, effects =
      Consensus_core.create ~n:t.n ~f:t.f ~me:t.me ~coin:t.coin ~input
    in
    let start_wires, start_events = interpret_effects effects in
    let replay = t.replay in
    let t = { t with core = Some core; replay = [] } in
    let t, replay_wires, replay_events = drive ~sink t ~rng replay in
    (t, start_wires @ replay_wires, start_events @ replay_events)

let on_wire ?(sink = Event.null_sink) t ~rng ~src wire =
  let mux, outgoing, delivery = Rbc_mux.handle ~sink t.mux ~src wire in
  let t = { t with mux } in
  match delivery with
  | None -> (t, outgoing, [])
  | Some (key, payload) ->
    let vmsg = Consensus_msg.vmsg_of_delivery key payload in
    let validation, validated = Validation.submit t.validation vmsg in
    let t = { t with validation } in
    let t, wires, events = drive ~sink t ~rng validated in
    (t, outgoing @ wires, events)
