open Import

(** One complete binary-agreement instance: reliable-broadcast
    multiplexer + validation + consensus core, wired together.

    This is Bracha's full PODC 1984 stack for a single agreement, in a
    transport-neutral form: the caller moves {!Rbc_mux.wire} messages
    between nodes (standalone protocol, ACS component, replicated log
    slot, ...).

    An instance can receive wire traffic {e before} it is given an
    input — in compositions like ACS, other nodes may start first.
    Validated messages are buffered and replayed into the core the
    moment {!start} provides the input. *)

type t
(** Immutable instance state for one node. *)

type event = Decided of Decision.t
(** Externally visible result. *)

val create : n:int -> f:int -> me:Node_id.t -> coin:Coin.t -> validation:bool -> t
(** [create ~n ~f ~me ~coin ~validation] is an idle instance (no input
    yet).  [validation:false] disables justification (ablation E7). *)

val start :
  ?sink:Event.sink ->
  t ->
  rng:Stream.t ->
  input:Value.t ->
  t * Rbc_mux.wire list * event list
(** [start t ~rng ~input] feeds this node's proposal.  Returns the wire
    broadcasts to emit (the round-1 step-1 reliable broadcast, plus
    anything unlocked by replaying messages buffered while idle) and
    any events the replay produced.  No-op when already started.
    [?sink] observes protocol events from the replayed messages. *)

val started : t -> bool
(** Whether {!start} has been called. *)

val on_wire :
  ?sink:Event.sink ->
  t ->
  rng:Stream.t ->
  src:Node_id.t ->
  Rbc_mux.wire ->
  t * Rbc_mux.wire list * event list
(** [on_wire t ~rng ~src wire] processes one delivered wire message:
    routes it through the RBC multiplexer, pushes resulting deliveries
    through validation, and drives the consensus core with everything
    validated.  Returns outgoing wire broadcasts and the decision event
    (at most once per instance).  [?sink] observes both the RBC
    instances' quorum events (scoped by instance key) and the core's
    round/coin/decide events. *)

val decided : t -> Decision.t option
(** The decision, once taken. *)

val round : t -> int
(** The core's current round (1 before {!start}). *)
