[@@@abc.resilience "n>3f"]

open Import

module Int_map = Map.Make (Int)

type input = { proposal : string; coin : Coin.t }

type output = Accepted of (Node_id.t * string) list

type msg =
  | Prop of { origin : Node_id.t; inner : Coded_rbc.msg }
  | Ba of { index : int; wire : Rbc_mux.wire }

type state = {
  n : int;
  f : int;
  me : Node_id.t;
  prop_instances : Coded_rbc.state Node_id.Map.t;
  proposals : string Node_id.Map.t; (* reliably delivered batches *)
  bas : Ba_instance.t Int_map.t; (* one BA per proposer index *)
  decisions : Value.t Int_map.t; (* BA results *)
  emitted : bool;
}

let name = "batch-acs"

let ba_validation = true

let make_ba ~n ~f ~me ~coin = Ba_instance.create ~n ~f ~me ~coin ~validation:ba_validation

let ba state index = Int_map.find index state.bas

let wrap_ba index wires =
  List.map (fun wire -> Protocol.Broadcast (Ba { index; wire })) wires

(* The dissemination layer point-sends Val fragments, so its actions
   must be wrapped target-preservingly (unlike the broadcast-only
   Bracha proposal RBC of {!Acs}). *)
let wrap_prop origin actions =
  List.map
    (fun action ->
      match action with
      | Protocol.Broadcast inner -> Protocol.Broadcast (Prop { origin; inner })
      | Protocol.Send (dst, inner) -> Protocol.Send (dst, Prop { origin; inner })
      | Protocol.Set_timer { id; after } ->
        (* Coded RBC never arms timers; if it ever does, the id must be
           origin-demultiplexed rather than forwarded. *)
        Protocol.Set_timer { id; after })
    actions

(* Events of the BA for proposer [index], scoped under "ba<index>". *)
let ba_sink (sink : Event.sink) index =
  if sink.Event.enabled then
    Event.scoped sink ~instance:(Printf.sprintf "ba%d" index)
  else sink

(* The dissemination instance for [origin]'s batch runs with the outer
   context, its events scoped under "prop@n<origin>". *)
let prop_ctx (ctx : Protocol.Context.t) origin =
  let sink = ctx.Protocol.Context.sink in
  if sink.Event.enabled then
    {
      ctx with
      Protocol.Context.sink =
        Event.scoped sink ~instance:(Fmt.str "prop@%a" Node_id.pp origin);
    }
  else ctx

(* Start [BA index] with [input], folding any immediate events back
   into the state.  No-op when already started. *)
let start_ba state ~rng ~sink index input =
  let instance = ba state index in
  if Ba_instance.started instance then (state, [])
  else begin
    let instance, wires, events =
      Ba_instance.start ~sink:(ba_sink sink index) instance ~rng ~input
    in
    let state = { state with bas = Int_map.add index instance state.bas } in
    let state =
      List.fold_left
        (fun state (Ba_instance.Decided d) ->
          if Int_map.mem index state.decisions then state
          else
            { state with decisions = Int_map.add index d.Decision.value state.decisions })
        state events
    in
    (state, wrap_ba index wires)
  end

let record_events state index events =
  List.fold_left
    (fun state (Ba_instance.Decided d) ->
      if Int_map.mem index state.decisions then state
      else { state with decisions = Int_map.add index d.Decision.value state.decisions })
    state events

let ones_decided state =
  Int_map.fold
    (fun _ v acc -> if Value.equal v Value.One then acc + 1 else acc)
    state.decisions 0

(* Apply the ACS rules to fixpoint: vote 1 for delivered batches, vote
   0 everywhere once n-f instances accepted, emit when all instances
   are decided and the accepted batches have arrived.  Identical to
   {!Acs.settle} — the agreement logic is independent of how batches
   are disseminated. *)
let rec settle state ~rng ~sink actions =
  (* Rule 1: batches that arrived but whose BA has no input yet. *)
  let pending_one =
    Node_id.Map.fold
      (fun origin _ acc ->
        let index = Node_id.to_int origin in
        if Ba_instance.started (ba state index) then acc else index :: acc)
      state.proposals []
  in
  match pending_one with
  | index :: _ ->
    let state, new_actions = start_ba state ~rng ~sink index Value.One in
    settle state ~rng ~sink (actions @ new_actions)
  | [] ->
    (* Rule 2: enough instances accepted — refuse the rest. *)
    let unstarted =
      List.filter
        (fun i -> not (Ba_instance.started (ba state i)))
        (List.init state.n (fun i -> i))
    in
    if
      ones_decided state >= Quorum.completeness ~n:state.n ~f:state.f
      && (match unstarted with [] -> false | _ :: _ -> true)
    then begin
      let state, new_actions =
        List.fold_left
          (fun (state, acc) index ->
            let state, actions = start_ba state ~rng ~sink index Value.Zero in
            (state, acc @ actions))
          (state, []) unstarted
      in
      settle state ~rng ~sink (actions @ new_actions)
    end
    else begin
      (* Rule 3: emit once everything is decided and every accepted
         batch has been delivered (RBC totality guarantees it will). *)
      if state.emitted || Int_map.cardinal state.decisions < state.n then
        (state, actions, [])
      else begin
        let accepted_indices =
          Int_map.fold
            (fun i v acc -> if Value.equal v Value.One then i :: acc else acc)
            state.decisions []
          |> List.sort Int.compare
        in
        let payloads =
          List.map
            (fun i -> Node_id.Map.find_opt (Node_id.of_int i) state.proposals)
            accepted_indices
        in
        if List.for_all Option.is_some payloads then begin
          let subset =
            List.map2
              (fun i payload ->
                match payload with
                | Some p -> (Node_id.of_int i, p)
                | None -> assert false)
              accepted_indices payloads
          in
          ({ state with emitted = true }, actions, [ Accepted subset ])
        end
        else (state, actions, [])
      end
    end

let initial ctx (input : input) =
  let { Protocol.Context.me; n; f; rng = _; sink = _ } = ctx in
  Quorum.assert_resilience ~n ~f;
  let bas =
    List.fold_left
      (fun bas i -> Int_map.add i (make_ba ~n ~f ~me ~coin:input.coin) bas)
      Int_map.empty
      (List.init n (fun i -> i))
  in
  (* One coded-RBC dissemination instance per proposer, all opened up
     front: mine broadcasts the Reed-Solomon dispersal of my batch, the
     others sit ready to receive. *)
  let prop_instances, actions =
    List.fold_left
      (fun (instances, acc) i ->
        let origin = Node_id.of_int i in
        let payload = if Node_id.equal origin me then Some input.proposal else None in
        let inst, inst_actions =
          Coded_rbc.initial (prop_ctx ctx origin)
            { Coded_rbc.sender = origin; payload }
        in
        (Node_id.Map.add origin inst instances, acc @ wrap_prop origin inst_actions))
      (Node_id.Map.empty, [])
      (List.init n (fun i -> i))
  in
  let state =
    {
      n;
      f;
      me;
      prop_instances;
      proposals = Node_id.Map.empty;
      bas;
      decisions = Int_map.empty;
      emitted = false;
    }
  in
  (state, actions)

let on_message ctx state ~src msg =
  let rng = ctx.Protocol.Context.rng in
  let sink = ctx.Protocol.Context.sink in
  match msg with
  | Prop { origin; inner } -> (
    match Node_id.Map.find_opt origin state.prop_instances with
    | None -> (state, [], []) (* origin out of range: forged wrapper *)
    | Some inst ->
      let inst, inst_actions, delivered =
        Coded_rbc.on_message (prop_ctx ctx origin) inst ~src inner
      in
      let state =
        { state with prop_instances = Node_id.Map.add origin inst state.prop_instances }
      in
      let state =
        List.fold_left
          (fun state (Coded_rbc.Delivered payload) ->
            if Node_id.Map.mem origin state.proposals then state
            else { state with proposals = Node_id.Map.add origin payload state.proposals })
          state delivered
      in
      settle state ~rng ~sink (wrap_prop origin inst_actions))
  | Ba { index; wire } ->
    if index < 0 || index >= state.n then (state, [], [])
    else begin
      let instance, wires, events =
        Ba_instance.on_wire ~sink:(ba_sink sink index) (ba state index) ~rng ~src
          wire
      in
      let state = { state with bas = Int_map.add index instance state.bas } in
      let state = record_events state index events in
      settle state ~rng ~sink (wrap_ba index wires)
    end

let is_terminal (Accepted _) = true
let on_timeout = Protocol.no_timeout

let msg_label = function
  | Prop { inner; _ } -> "prop." ^ Coded_rbc.msg_label inner
  | Ba { wire; _ } -> "ba." ^ Rbc_mux.wire_label wire

let msg_bytes =
  let open Protocol.Wire_size in
  function
  | Prop { origin = _; inner } -> tag + node_id + Coded_rbc.msg_bytes inner
  | Ba { index = _; wire } -> tag + int + Rbc_mux.wire_bytes wire

let pp_msg ppf = function
  | Prop { origin; inner } ->
    Fmt.pf ppf "prop[%a]:%a" Node_id.pp origin Coded_rbc.pp_msg inner
  | Ba { index; wire } -> Fmt.pf ppf "ba[%d]:%a" index Rbc_mux.pp_wire wire

let pp_output ppf (Accepted subset) =
  Fmt.pf ppf "accepted{%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (id, p) ->
         Fmt.pf ppf "%a=%dB" Node_id.pp id (String.length p)))
    subset

let inputs ~n ~coin proposals =
  if Array.length proposals <> n then
    invalid_arg "Batch_acs.inputs: proposals length must equal n";
  Array.map (fun proposal -> { proposal; coin }) proposals
