open Import

(** Asynchronous Common Subset over erasure-coded dissemination — the
    batch-agreement core of the atomic-broadcast pipeline.

    {b Paper source:} the agreement skeleton is the ACS of Ben-Or,
    Kelmer & Rabin (1994) as deployed by HoneyBadgerBFT (Miller et al.
    2016, §4.2), built from exactly the two tools of Bracha's 1984
    paper; the dissemination layer swaps Bracha's echo-the-payload RBC
    for the Cachin–Tessaro AVID-style coded broadcast ({!Coded_rbc}),
    so a batch of [B] bytes costs each link [O(B/n + lambda log n)]
    instead of [O(B)].

    {b Resilience:} [n > 3f] ([assert_resilience] at input time).

    {b Message type:} [Prop] wraps a coded-RBC message ([val]/[echo]/
    [ready], Merkle-authenticated fragments) tagged with the proposer
    it disseminates for; [Ba] wraps a binary-agreement wire message
    tagged with the proposer index it votes on.

    The agreement rules are identical to {!Acs} (vote 1 on delivery,
    vote 0 everywhere once [n - f] accepted, emit when all [n] BAs are
    decided and the accepted batches have arrived); only the proposal
    transport differs.  Payloads are opaque strings — the atomic
    broadcast layer encodes transaction batches into them
    ({!Abc_smr.Atomic_broadcast}). *)

type input = { proposal : string; coin : Coin.t }

type output = Accepted of (Node_id.t * string) list
    (** the common subset of batches, sorted by proposer id —
        identical at every honest node *)

type msg

include
  Protocol.S
    with type input := input
     and type output := output
     and type msg := msg

val inputs : n:int -> coin:Coin.t -> string array -> input array
(** One batch per node, shared coin configuration.  Raises
    [Invalid_argument] when the array length differs from [n]. *)
