[@@@abc.resilience "n>2f n>5f"]

open Import

module Mode = struct
  type t = Byzantine | Crash

  let max_faults t ~n =
    match t with
    | Byzantine -> Quorum.max_faults ~ratio:5 ~n
    | Crash -> Quorum.max_faults ~ratio:2 ~n

  let label = function Byzantine -> "byzantine" | Crash -> "crash"

  let pp ppf t = Fmt.string ppf (label t)
end

type input = { value : Value.t; mode : Mode.t; coin : Coin.t }

type msg =
  | Report of { round : int; value : Value.t }
  | Proposal of { round : int; value : Value.t option }

type output = Decision.t

type phase = Reporting | Proposing

(* Tally for one (round, phase): [c0]/[c1] count values, [cq] counts
   "?" proposals. *)
type tally = { origins : Node_id.Set.t; c0 : int; c1 : int; cq : int }

let empty_tally = { origins = Node_id.Set.empty; c0 = 0; c1 = 0; cq = 0 }

module Slot_map = Map.Make (struct
  type t = int * int (* round, phase as int *)

  let compare (r1, p1) (r2, p2) =
    match Int.compare r1 r2 with 0 -> Int.compare p1 p2 | c -> c
end)

type state = {
  n : int;
  f : int;
  mode : Mode.t;
  coin : Coin.t;
  value : Value.t;
  round : int;
  phase : phase;
  decided : Decision.t option;
  tallies : tally Slot_map.t;
}

let name = "ben-or"

let phase_index = function Reporting -> 1 | Proposing -> 2

let quorum state = Quorum.completeness ~n:state.n ~f:state.f

(* Minimum count for a report-phase majority claim (compare with >=):
   under Byzantine faults the majority must survive f forged votes. *)
let majority_threshold state =
  match state.mode with
  | Mode.Byzantine -> Quorum.faulty_majority ~n:state.n ~f:state.f
  | Mode.Crash -> Quorum.strict_majority state.n

let adopt_threshold state =
  match state.mode with
  | Mode.Byzantine -> Quorum.adopt_support ~f:state.f
  | Mode.Crash -> 1

let decide_threshold state =
  match state.mode with
  | Mode.Byzantine -> Quorum.decide_unanimity ~f:state.f
  | Mode.Crash -> Quorum.crash_decide ~f:state.f

let tally state ~round ~phase =
  match Slot_map.find_opt (round, phase_index phase) state.tallies with
  | Some tl -> tl
  | None -> empty_tally

let count tl v = match v with Value.Zero -> tl.c0 | Value.One -> tl.c1

let total tl = tl.c0 + tl.c1 + tl.cq

let own_message state =
  match state.phase with
  | Reporting -> Report { round = state.round; value = state.value }
  | Proposing ->
    let tl = tally state ~round:state.round ~phase:Reporting in
    let proposal =
      if count tl Value.Zero >= majority_threshold state then Some Value.Zero
      else if count tl Value.One >= majority_threshold state then Some Value.One
      else None
    in
    Proposal { round = state.round; value = proposal }

(* Fire every enabled phase transition; the recursion advances (round,
   phase) each time, so it stops at the first missing quorum. *)
let rec progress state ~rng ~(sink : Event.sink) acc_actions acc_outputs =
  let tl = tally state ~round:state.round ~phase:state.phase in
  if total tl < quorum state then (state, List.rev acc_actions, List.rev acc_outputs)
  else begin
    if sink.Event.enabled then
      sink.Event.emit
        (Event.make ~round:state.round
           (Event.Quorum
              {
                quorum =
                  (match state.phase with
                  | Reporting -> "report"
                  | Proposing -> "proposal");
                count = total tl;
                threshold = quorum state;
              }));
    match state.phase with
    | Reporting ->
      let state = { state with phase = Proposing } in
      progress state ~rng ~sink
        (Protocol.Broadcast (own_message state) :: acc_actions)
        acc_outputs
    | Proposing ->
      let w =
        if count tl Value.Zero >= count tl Value.One then Value.Zero else Value.One
      in
      let support = count tl w in
      let state, acc_outputs =
        if support >= decide_threshold state then begin
          match state.decided with
          | Some _ -> ({ state with value = w }, acc_outputs)
          | None ->
            let decision = { Decision.value = w; round = state.round } in
            if sink.Event.enabled then
              sink.Event.emit
                (Event.make ~round:state.round
                   (Event.Decide { value = Fmt.str "%a" Value.pp w }));
            ( { state with value = w; decided = Some decision },
              decision :: acc_outputs )
        end
        else if support >= adopt_threshold state then
          ({ state with value = w }, acc_outputs)
        else begin
          let value =
            match state.decided with
            | Some d -> d.Decision.value
            | None ->
              let flip = Coin.flip state.coin ~rng ~round:state.round in
              if sink.Event.enabled then
                sink.Event.emit
                  (Event.make ~round:state.round
                     (Event.Coin_flip { value = Value.to_int flip }));
              flip
          in
          ({ state with value }, acc_outputs)
        end
      in
      let state = { state with round = state.round + 1; phase = Reporting } in
      if sink.Event.enabled then
        sink.Event.emit (Event.make ~round:state.round Event.Round_advance);
      progress state ~rng ~sink
        (Protocol.Broadcast (own_message state) :: acc_actions)
        acc_outputs
  end

let record state ~src msg =
  let slot, contribution =
    match msg with
    | Report { round; value } -> ((round, phase_index Reporting), Some value)
    | Proposal { round; value } -> ((round, phase_index Proposing), value)
  in
  let tl =
    match Slot_map.find_opt slot state.tallies with
    | Some tl -> tl
    | None -> empty_tally
  in
  if Node_id.Set.mem src tl.origins then state
  else begin
    let tl = { tl with origins = Node_id.Set.add src tl.origins } in
    let tl =
      match contribution with
      | Some Value.Zero -> { tl with c0 = tl.c0 + 1 }
      | Some Value.One -> { tl with c1 = tl.c1 + 1 }
      | None -> { tl with cq = tl.cq + 1 }
    in
    { state with tallies = Slot_map.add slot tl state.tallies }
  end

let initial ctx (input : input) =
  (* Floor only: the true Byzantine bound is n > 5f, deliberately not
     enforced so the resilience sweep (E2) can run past it and measure
     the failures; [Mode.max_faults] documents the real bound. *)
  Quorum.assert_resilience_at ~ratio:2 ~n:ctx.Protocol.Context.n
    ~f:ctx.Protocol.Context.f;
  let state =
    {
      n = ctx.Protocol.Context.n;
      f = ctx.Protocol.Context.f;
      mode = input.mode;
      coin = input.coin;
      value = input.value;
      round = 1;
      phase = Reporting;
      decided = None;
      tallies = Slot_map.empty;
    }
  in
  (state, [ Protocol.Broadcast (own_message state) ])

let on_message ctx state ~src msg =
  let state = record state ~src msg in
  progress state ~rng:ctx.Protocol.Context.rng ~sink:ctx.Protocol.Context.sink
    [] []

let is_terminal (_ : output) = true
let on_timeout = Protocol.no_timeout

let msg_label = function Report _ -> "report" | Proposal _ -> "proposal"

let msg_bytes =
  let open Protocol.Wire_size in
  function
  | Report { round = _; value } -> tag + int + Value.bytes value
  | Proposal { round = _; value } -> tag + int + option Value.bytes value

let pp_msg ppf = function
  | Report { round; value } -> Fmt.pf ppf "report(r%d, %a)" round Value.pp value
  | Proposal { round; value = Some v } -> Fmt.pf ppf "proposal(r%d, %a)" round Value.pp v
  | Proposal { round; value = None } -> Fmt.pf ppf "proposal(r%d, ?)" round

let pp_output = Decision.pp

let inputs ~n ~mode ~coin values =
  if Array.length values <> n then
    invalid_arg "Ben_or.inputs: values length must equal n";
  Array.map (fun value -> { value; mode; coin }) values

let value_of_input (input : input) = input.value

module Fault = struct
  let flip_value _rng = function
    | Report r -> Report { r with value = Value.negate r.value }
    | Proposal { round; value } ->
      Proposal { round; value = Option.map Value.negate value }

  let equivocate_by_half ~n rng ~dst msg =
    if Node_id.to_int dst < n / 2 then msg else flip_value rng msg
end
