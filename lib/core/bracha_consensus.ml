[@@@abc.resilience "n>3f"]

open Import

module Options = struct
  type transport = Reliable | Plain

  type t = { coin : Coin.t; validation : bool; transport : transport }

  let default = { coin = Coin.local; validation = true; transport = Reliable }

  let with_common_coin ~seed = { default with coin = Coin.common ~seed }

  let pp ppf { coin; validation; transport } =
    Fmt.pf ppf "coin=%a validation=%b transport=%s" Coin.pp coin validation
      (match transport with Reliable -> "rbc" | Plain -> "plain")
end

type input = { value : Value.t; options : Options.t }

type msg = Wire of Rbc_mux.wire | Direct of Consensus_msg.vmsg

type output = Decision.t

(* Plain transport: no RBC, just per-slot deduplication plus the same
   validation and core.  Byzantine nodes can equivocate freely. *)
type plain = {
  validation : Validation.t;
  core : Consensus_core.t;
}

type state = Reliable_state of Ba_instance.t | Plain_state of plain

let name = "bracha-consensus"

let broadcast_wires wires = List.map (fun w -> Protocol.Broadcast (Wire w)) wires

let effects_to_actions_outputs effects =
  List.fold_left
    (fun (actions, outputs) effect ->
      match effect with
      | Consensus_core.Broadcast_step vmsg ->
        (Protocol.Broadcast (Direct vmsg) :: actions, outputs)
      | Consensus_core.Decide decision -> (actions, decision :: outputs))
    ([], []) effects
  |> fun (actions, outputs) -> (List.rev actions, List.rev outputs)

let initial ctx input =
  let { Protocol.Context.me; n; f; rng; sink } = ctx in
  match input.options.Options.transport with
  | Options.Reliable ->
    let ba =
      Ba_instance.create ~n ~f ~me ~coin:input.options.Options.coin
        ~validation:input.options.Options.validation
    in
    let ba, wires, _events = Ba_instance.start ~sink ba ~rng ~input:input.value in
    (Reliable_state ba, broadcast_wires wires)
  | Options.Plain ->
    let validation =
      Validation.create ~n ~f ~enabled:input.options.Options.validation
    in
    let core, effects =
      Consensus_core.create ~n ~f ~me ~coin:input.options.Options.coin
        ~input:input.value
    in
    let actions, _outputs = effects_to_actions_outputs effects in
    (Plain_state { validation; core }, actions)

let on_message ctx state ~src msg =
  let rng = ctx.Protocol.Context.rng in
  let sink = ctx.Protocol.Context.sink in
  match (state, msg) with
  | Reliable_state ba, Wire wire ->
    let ba, wires, events = Ba_instance.on_wire ~sink ba ~rng ~src wire in
    let outputs = List.map (fun (Ba_instance.Decided d) -> d) events in
    (Reliable_state ba, broadcast_wires wires, outputs)
  | Plain_state plain, Direct vmsg ->
    (* Authenticated channels: a message claiming another node's origin
       is discarded.  Equivocation (different payloads to different
       peers for the same slot) remains possible — that is the point of
       this ablation. *)
    if not (Node_id.equal vmsg.Consensus_msg.origin src) then (state, [], [])
    else begin
      let validation, validated = Validation.submit plain.validation vmsg in
      let core, effects =
        List.fold_left
          (fun (core, acc) m ->
            let core, effects = Consensus_core.on_validated ~sink core ~rng m in
            (core, acc @ effects))
          (plain.core, []) validated
      in
      let actions, outputs = effects_to_actions_outputs effects in
      (Plain_state { validation; core }, actions, outputs)
    end
  | Reliable_state _, Direct _ | Plain_state _, Wire _ ->
    (* Traffic of the other transport (a confused or malicious node):
       ignore. *)
    (state, [], [])

let is_terminal (_ : output) = true
let on_timeout = Protocol.no_timeout

let msg_label = function
  | Wire wire -> Rbc_mux.wire_label wire
  | Direct _ -> "direct"

let msg_bytes = function
  | Wire wire -> Protocol.Wire_size.tag + Rbc_mux.wire_bytes wire
  | Direct vmsg -> Protocol.Wire_size.tag + Consensus_msg.vmsg_bytes vmsg

let pp_msg ppf = function
  | Wire wire -> Rbc_mux.pp_wire ppf wire
  | Direct vmsg -> Consensus_msg.pp_vmsg ppf vmsg

let pp_output = Decision.pp

let inputs ~n ~options values =
  if Array.length values <> n then
    invalid_arg "Bracha_consensus.inputs: values length must equal n";
  Array.map (fun value -> { value; options }) values

let value_of_input input = input.value

module Fault = struct
  let map_value forge rng msg =
    let map_payload (p : Consensus_msg.Payload.t) =
      { p with Consensus_msg.Payload.value = forge rng p.Consensus_msg.Payload.value }
    in
    match msg with
    | Wire { key; event } ->
      let event =
        match event with
        | Rbc_mux.Rbc.Initial p -> Rbc_mux.Rbc.Initial (map_payload p)
        | Rbc_mux.Rbc.Echo p -> Rbc_mux.Rbc.Echo (map_payload p)
        | Rbc_mux.Rbc.Ready p -> Rbc_mux.Rbc.Ready (map_payload p)
      in
      Wire { key; event }
    | Direct vmsg ->
      Direct { vmsg with Consensus_msg.value = forge rng vmsg.Consensus_msg.value }

  let flip_value rng msg = map_value (fun _rng v -> Value.negate v) rng msg

  let random_value rng msg =
    map_value (fun rng _v -> Value.of_bool (Stream.bool rng)) rng msg

  let force_decide _rng msg =
    let arm (p : Consensus_msg.Payload.t) = { p with Consensus_msg.Payload.decide = true } in
    match msg with
    | Wire { key; event } ->
      let event =
        match event with
        | Rbc_mux.Rbc.Initial p -> Rbc_mux.Rbc.Initial (arm p)
        | Rbc_mux.Rbc.Echo p -> Rbc_mux.Rbc.Echo (arm p)
        | Rbc_mux.Rbc.Ready p -> Rbc_mux.Rbc.Ready (arm p)
      in
      Wire { key; event }
    | Direct vmsg -> Direct { vmsg with Consensus_msg.decide = true }

  let equivocate_by_half ~n rng ~dst msg =
    if Node_id.to_int dst < n / 2 then msg else flip_value rng msg
end
