[@@@abc.resilience "n>3f"]

open Import

module Make (V : Value.PAYLOAD) = struct
  module Core = Rbc_core.Make (V)

  type input = { sender : Node_id.t; payload : V.t option }

  type output = Delivered of V.t

  type msg = Core.event

  type state = Core.t

  let name = "bracha-rbc"

  let broadcast_all events = List.map (fun e -> Protocol.Broadcast e) events

  let initial ctx input =
    let state =
      Core.create ~n:ctx.Protocol.Context.n ~f:ctx.Protocol.Context.f
        ~sender:input.sender
    in
    let actions =
      match input.payload with
      | Some v ->
        assert (Node_id.equal ctx.Protocol.Context.me input.sender);
        [ Protocol.Broadcast (Core.Initial v) ]
      | None -> []
    in
    (state, actions)

  let on_message ctx state ~src msg =
    let state, events, delivery =
      Core.handle ~sink:ctx.Protocol.Context.sink state ~src msg
    in
    let outputs = match delivery with Some v -> [ Delivered v ] | None -> [] in
    (state, broadcast_all events, outputs)

  let is_terminal (Delivered _) = true
  let on_timeout = Protocol.no_timeout

  let msg_label = Core.event_label

  let msg_bytes = Core.event_bytes

  let pp_msg = Core.pp_event

  let pp_output ppf (Delivered v) = Fmt.pf ppf "delivered(%a)" V.pp v

  module Fault = struct
    let map_payload forge rng = function
      | Core.Initial v -> Core.Initial (forge rng v)
      | Core.Echo v -> Core.Echo (forge rng v)
      | Core.Ready v -> Core.Ready (forge rng v)

    let substitute forge rng msg = map_payload forge rng msg

    let equivocate forge rng ~dst msg =
      map_payload (fun rng v -> forge rng ~dst v) rng msg
  end

  let inputs ~n ~sender v =
    Array.init n (fun i ->
        let me = Node_id.of_int i in
        { sender; payload = (if Node_id.equal me sender then Some v else None) })
end

module Binary = Make (Value)
