open Import

(** Bracha reliable broadcast as a runnable network protocol.

    Paper source: Bracha, "An asynchronous [(n-1)/3]-resilient
    consensus protocol" (PODC 1984), the broadcast primitive.
    Resilience [f <= (n-1)/3]; three message types
    ([Initial]/[Echo]/[Ready], see {!Rbc_core.Make.event}) over three
    phases, [2n^2 + n] messages per broadcast, each carrying the full
    payload — the [O(n |m|)] per-node bandwidth that {!Coded_rbc}
    attacks with erasure coding.

    [Make (V)] wraps one {!Rbc_core} instance into an
    {!Abc_net.Protocol.S} so the engine can execute it: node inputs
    name the designated sender (the same one at every node) and carry
    the payload at the sender.  Every honest node emits a terminal
    [Delivered] output; the experiments check validity, agreement and
    totality over these outputs.

    The [Fault] submodule forges well-typed corrupted messages for the
    Byzantine behaviours. *)

module Make (V : Value.PAYLOAD) : sig
  module Core : module type of Rbc_core.Make (V)

  type input = { sender : Node_id.t; payload : V.t option }
  (** [payload] is [Some v] at the designated sender, [None]
      elsewhere.  All nodes must agree on [sender]. *)

  type output = Delivered of V.t

  include
    Protocol.S
      with type input := input
       and type output := output
       and type msg = Core.event

  (** Forged messages for Byzantine senders and relays. *)
  module Fault : sig
    val substitute : (Stream.t -> V.t -> V.t) -> Stream.t -> msg -> msg
    (** [substitute forge] rewrites the payload of every outgoing
        message with [forge]: a lying sender or relay. *)

    val equivocate :
      (Stream.t -> dst:Node_id.t -> V.t -> V.t) ->
      Stream.t ->
      dst:Node_id.t ->
      msg ->
      msg
    (** Per-recipient payload substitution: the two-faced sender that
        reliable broadcast is designed to defeat. *)
  end

  val inputs : n:int -> sender:Node_id.t -> V.t -> input array
  (** [inputs ~n ~sender v] is the standard input vector: [v] at
      [sender], [None] elsewhere. *)
end

(** Ready-made instance broadcasting a single bit. *)
module Binary : sig
  include module type of Make (Value)
end
