[@@@abc.resilience "n>3f"]

open Import
module Root_map = Map.Make (Int)
module Frag_map = Map.Make (Int)

type input = { sender : Node_id.t; payload : string option }

type output = Delivered of string

type msg =
  | Val of {
      root : Rs.Merkle.root;
      len : int;
      branch : Rs.Merkle.branch;
      fragment : Rs.fragment;
    }
  | Echo of {
      root : Rs.Merkle.root;
      len : int;
      branch : Rs.Merkle.branch;
      fragment : Rs.fragment;
    }
  | Ready of { root : Rs.Merkle.root }

(* Per-root echo bookkeeping.  [len] is fixed by the first verified
   echo: a root whose leaves disagree on the length cannot pass the
   re-encode check below, so keeping one length per root is safe. *)
type tally = { len : int; fragments : Rs.fragment Frag_map.t }

type state = {
  n : int;
  f : int;
  sender : Node_id.t;
  val_seen : bool;
  readied : bool;
  delivered : bool;
  echoes : tally Root_map.t;
  readies : Node_id.Set.t Root_map.t;
  (* Memoized validation per root: [Some payload] decodes and
     re-encodes back to the root, [None] is a proven-inconsistent
     dispersal.  The verdict cannot depend on which fragments are used
     (all verified fragments are committed leaves; either the
     committed set is a codeword or no subset re-encodes to the root),
     so the first attempt is final. *)
  checked : string option Root_map.t;
}

let name = "coded-rbc"

(* Reconstruction threshold: with [k = n - 2f] data shards, the
   [n - f] echoes a node can safely await still contain [k] honest
   ones, and each shard carries [|m| / (n - 2f)] of the payload. *)
let data_shards ~n ~f = Quorum.honest_support ~n ~f

let fragment_count tally = Frag_map.cardinal tally.fragments

let validate state root =
  match Root_map.find_opt root state.checked with
  | Some result -> (state, result)
  | None -> (
    match Root_map.find_opt root state.echoes with
    | Some tally
      when fragment_count tally >= data_shards ~n:state.n ~f:state.f -> (
      let k = data_shards ~n:state.n ~f:state.f in
      let fragments =
        List.filteri (fun i _ -> i < k)
          (List.map snd (Frag_map.bindings tally.fragments))
      in
      match Rs.decode ~k ~len:tally.len fragments with
      | exception Invalid_argument _ ->
        (* Fragment shapes inconsistent with the claimed length: a
           malformed dispersal, never deliverable. *)
        ({ state with checked = Root_map.add root None state.checked }, None)
      | payload ->
        let root', _ =
          Rs.Merkle.commit ~len:tally.len
            (Rs.encode ~k ~n:state.n payload)
        in
        let result = if root' = root then Some payload else None in
        ({ state with checked = Root_map.add root result state.checked }, result))
    | Some _ | None -> (state, None))

let ready_support state root =
  match Root_map.find_opt root state.readies with
  | Some nodes -> Node_id.Set.cardinal nodes
  | None -> 0

let echo_support state root =
  match Root_map.find_opt root state.echoes with
  | Some tally -> fragment_count tally
  | None -> 0

let emit_quorum (sink : Event.sink) quorum count threshold =
  if sink.Event.enabled then
    sink.Event.emit (Event.make (Event.Quorum { quorum; count; threshold }))

(* Fire whichever rules newly became enabled for [root]: the two
   Ready-send rules (echo quorum with a validated decode, or ready
   amplification) and the delivery rule. *)
let progress (ctx : Protocol.Context.t) state root =
  let sink = ctx.Protocol.Context.sink in
  let state, sends =
    if state.readied then (state, [])
    else begin
      let echoes = echo_support state root in
      let state, validated =
        if echoes >= Quorum.completeness ~n:state.n ~f:state.f then
          validate state root
        else (state, None)
      in
      if validated <> None then begin
        emit_quorum sink "echo" echoes (Quorum.completeness ~n:state.n ~f:state.f);
        ({ state with readied = true }, [ Protocol.Broadcast (Ready { root }) ])
      end
      else if ready_support state root >= Quorum.ready_amplify ~f:state.f then begin
        emit_quorum sink "ready-amplify" (ready_support state root)
          (Quorum.ready_amplify ~f:state.f);
        ({ state with readied = true }, [ Protocol.Broadcast (Ready { root }) ])
      end
      else (state, [])
    end
  in
  let state, outputs =
    if
      (not state.delivered)
      && ready_support state root >= Quorum.ready_deliver ~f:state.f
      && echo_support state root >= data_shards ~n:state.n ~f:state.f
    then begin
      let state, validated = validate state root in
      match validated with
      | Some payload ->
        emit_quorum sink "ready" (ready_support state root)
          (Quorum.ready_deliver ~f:state.f);
        ({ state with delivered = true }, [ Delivered payload ])
      | None -> (state, [])
    end
    else (state, [])
  in
  (state, sends, outputs)

let initial (ctx : Protocol.Context.t) (input : input) =
  let n = ctx.Protocol.Context.n and f = ctx.Protocol.Context.f in
  Quorum.assert_resilience ~n ~f;
  let state =
    {
      n;
      f;
      sender = input.sender;
      val_seen = false;
      readied = false;
      delivered = false;
      echoes = Root_map.empty;
      readies = Root_map.empty;
      checked = Root_map.empty;
    }
  in
  let actions =
    match input.payload with
    | None -> []
    | Some payload ->
      assert (Node_id.equal ctx.Protocol.Context.me input.sender);
      let len = String.length payload in
      let fragments = Rs.encode ~k:(data_shards ~n ~f) ~n payload in
      let root, branches = Rs.Merkle.commit ~len fragments in
      List.init n (fun i ->
          Protocol.Send
            ( Node_id.of_int i,
              Val { root; len; branch = branches.(i); fragment = fragments.(i) }
            ))
  in
  (state, actions)

let on_message (ctx : Protocol.Context.t) state ~src = function
  | Val { root; len; branch; fragment } ->
    (* Only the designated sender's first Val counts, it must carry
       this node's own fragment, and the Merkle branch must check out
       — then the fragment is echoed to everyone. *)
    if
      (not (Node_id.equal src state.sender))
      || state.val_seen
      || fragment.Rs.index <> Node_id.to_int ctx.Protocol.Context.me
      || not (Rs.Merkle.verify ~root ~len ~index:fragment.Rs.index branch fragment)
    then (state, [], [])
    else
      ( { state with val_seen = true },
        [ Protocol.Broadcast (Echo { root; len; branch; fragment }) ],
        [] )
  | Echo { root; len; branch; fragment } ->
    (* Each node may echo only its own fragment (the leaf index is the
       node id), so a Byzantine echoer cannot stuff the tally. *)
    if
      fragment.Rs.index <> Node_id.to_int src
      || not (Rs.Merkle.verify ~root ~len ~index:fragment.Rs.index branch fragment)
    then (state, [], [])
    else begin
      let tally =
        match Root_map.find_opt root state.echoes with
        | Some tally -> tally
        | None -> { len; fragments = Frag_map.empty }
      in
      if tally.len <> len then (state, [], [])
      else begin
        let tally =
          {
            tally with
            fragments = Frag_map.add fragment.Rs.index fragment tally.fragments;
          }
        in
        let state = { state with echoes = Root_map.add root tally state.echoes } in
        progress ctx state root
      end
    end
  | Ready { root } ->
    let nodes =
      match Root_map.find_opt root state.readies with
      | Some nodes -> nodes
      | None -> Node_id.Set.empty
    in
    let state =
      { state with readies = Root_map.add root (Node_id.Set.add src nodes) state.readies }
    in
    progress ctx state root

let is_terminal (Delivered _) = true

let on_timeout = Protocol.no_timeout

let msg_label = function
  | Val _ -> "val"
  | Echo _ -> "echo"
  | Ready _ -> "ready"

(* The whole point of the construction: Val and Echo carry one
   O(|m|/(n-2f))-sized fragment plus a log-depth Merkle proof, and
   Ready carries a bare digest — nobody ever sends the full payload. *)
let msg_bytes =
  let open Protocol.Wire_size in
  function
  | Val { branch; fragment; _ } | Echo { branch; fragment; _ } ->
    tag + Rs.Merkle.root_wire_bytes + int
    + Rs.Merkle.branch_wire_bytes branch
    + Rs.fragment_wire_bytes fragment
  | Ready _ -> tag + Rs.Merkle.root_wire_bytes

let pp_msg ppf = function
  | Val { root; len; fragment; _ } ->
    Fmt.pf ppf "val[#%d len=%d root=%x]" fragment.Rs.index len (root land 0xFFFF)
  | Echo { root; len; fragment; _ } ->
    Fmt.pf ppf "echo[#%d len=%d root=%x]" fragment.Rs.index len (root land 0xFFFF)
  | Ready { root } -> Fmt.pf ppf "ready[root=%x]" (root land 0xFFFF)

let pp_output ppf (Delivered payload) =
  Fmt.pf ppf "delivered(%d bytes)" (String.length payload)

module Fault = struct
  let corrupt_fragment rng fragment =
    let data = Array.copy fragment.Rs.data in
    if Array.length data > 0 then begin
      let i = Stream.int rng ~bound:(Array.length data) in
      data.(i) <- Gf.add data.(i) Gf.one
    end;
    { fragment with Rs.data = data }

  let tamper rng = function
    | Val ({ fragment; _ } as m) ->
      Val { m with fragment = corrupt_fragment rng fragment }
    | Echo ({ fragment; _ } as m) ->
      Echo { m with fragment = corrupt_fragment rng fragment }
    | Ready { root } -> Ready { root = root + 1 }

  let equivocate rng ~dst msg =
    if Node_id.to_int dst mod 2 = 0 then msg else tamper rng msg
end

let inputs ~n ~sender payload =
  Array.init n (fun i ->
      let me = Node_id.of_int i in
      { sender; payload = (if Node_id.equal me sender then Some payload else None) })
