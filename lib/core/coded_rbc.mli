open Import

(** Erasure-coded reliable broadcast (AVID / HoneyBadgerBFT style).

    Paper source: the broadcast of Cachin and Tessaro, "Asynchronous
    verifiable information dispersal" (DSN 2005), in the simplified
    form used by HoneyBadgerBFT (Miller, Xia, Croman, Shi, Song,
    CCS 2016, §4.1).  Resilience is Bracha's [f < n/3]; the gain is
    bandwidth.  Bracha re-broadcasts the full payload in all three
    phases, costing [O(n |m|)] bytes per node; here every message
    carries at most one Reed–Solomon fragment of [|m| / (n - 2f)]
    bytes plus a [⌈log₂ n⌉]-deep Merkle proof, for
    [O(|m|/n + λ log n)] bytes per link ([λ] =
    {!Rs.Merkle.hash_bytes}).

    The flow, with [k = n - 2f] ({!Quorum.honest_support}) data
    shards:

    - the sender Reed–Solomon-encodes the payload into [n] fragments
      ({!Rs.encode}), commits to them with a Merkle tree and sends
      node [i] its fragment and branch as [Val];
    - on a verified [Val] from the sender, a node broadcasts its own
      fragment as [Echo] (once);
    - on [n - f] ({!Quorum.completeness}) verified echoes, a node
      decodes, {e re-encodes and recommits}; only if the recomputed
      root matches does it broadcast [Ready] (the interpolation check
      that makes the dispersal verifiable — an inconsistent sender is
      caught here);
    - on [f + 1] ({!Quorum.ready_amplify}) readies, a node that has
      not sent [Ready] joins in;
    - on [2f + 1] ({!Quorum.ready_deliver}) readies {e and} at least
      [k] verified echoes, a node decodes (with the same re-encode
      check) and delivers.

    Fragments are bound to node ids: the leaf index of a fragment is
    the only id allowed to echo it, so Byzantine echoers cannot stuff
    the reconstruction tally with forged shards. *)

type input = { sender : Node_id.t; payload : string option }
(** [payload] is [Some bytes] at the designated sender, [None]
    elsewhere.  All nodes must agree on [sender]. *)

type output = Delivered of string

type msg =
  | Val of {
      root : Rs.Merkle.root;
      len : int;
      branch : Rs.Merkle.branch;
      fragment : Rs.fragment;
    }
  | Echo of {
      root : Rs.Merkle.root;
      len : int;
      branch : Rs.Merkle.branch;
      fragment : Rs.fragment;
    }
  | Ready of { root : Rs.Merkle.root }

include
  Protocol.S
    with type input := input
     and type output := output
     and type msg := msg

val data_shards : n:int -> f:int -> int
(** [n - 2f] — the reconstruction threshold [k]: any [k] verified
    fragments decode the payload, and each fragment carries
    [⌈|m| / k⌉] payload bytes (plus the 4/3 field-packing overhead,
    see {!Rs.symbol_wire_bytes}). *)

(** Fragment-level corruption for Byzantine behaviours.  Unlike
    Bracha's payload substitution, a coded forger tampers with shards
    and digests — the Merkle verification is what keeps this
    harmless. *)
module Fault : sig
  val tamper : Stream.t -> msg -> msg
  (** Corrupt one random symbol of the carried fragment (or bump the
      digest of a [Ready]): a polluting relay.  Use with
      {!Abc_net.Behaviour.Mutate}. *)

  val equivocate : Stream.t -> dst:Node_id.t -> msg -> msg
  (** Send clean messages to even-numbered nodes and tampered ones to
      the rest: a two-faced sender.  Use with
      {!Abc_net.Behaviour.Equivocate}. *)
end

val inputs : n:int -> sender:Node_id.t -> string -> input array
(** [inputs ~n ~sender payload] is the standard input vector:
    [payload] at [sender], [None] elsewhere. *)
