[@@@abc.resilience "n>3f"]

open Import
open Consensus_msg

type effect = Broadcast_step of vmsg | Decide of Decision.t

(* Tally of validated messages for one (round, step) slot; identical in
   shape to the validation layer's but counted independently, keeping
   the two modules' correctness arguments separate. *)
type tally = { origins : Node_id.Set.t; c0 : int; c1 : int; d0 : int; d1 : int }

let empty_tally = { origins = Node_id.Set.empty; c0 = 0; c1 = 0; d0 = 0; d1 = 0 }

module Slot_map = Map.Make (struct
  type t = int * int

  let compare (r1, s1) (r2, s2) =
    match Int.compare r1 r2 with 0 -> Int.compare s1 s2 | c -> c
end)

type t = {
  n : int;
  f : int;
  me : Node_id.t;
  coin : Coin.t;
  value : Value.t;
  round : int;
  step : Step.t; (* the step whose quorum we are waiting on *)
  decided : Decision.t option;
  tallies : tally Slot_map.t;
}

let quorum t = Quorum.completeness ~n:t.n ~f:t.f

let round t = t.round

let decided t = t.decided

let current_value t = t.value

let tally t ~round ~step =
  match Slot_map.find_opt (round, Step.to_int step) t.tallies with
  | Some tl -> tl
  | None -> empty_tally

let count tl v = match v with Value.Zero -> tl.c0 | Value.One -> tl.c1

let dcount tl v = match v with Value.Zero -> tl.d0 | Value.One -> tl.d1

let total tl = tl.c0 + tl.c1

let own_vmsg t ~step ~decide =
  { origin = t.me; round = t.round; step; value = t.value; decide }

(* The value with strictly more than half of the validated step-1
   messages, if any; [current] otherwise (possible only for even
   totals). *)
let majority tl ~current =
  if count tl Value.Zero >= Quorum.strict_majority (total tl) then Value.Zero
  else if count tl Value.One >= Quorum.strict_majority (total tl) then Value.One
  else current

(* Once decided, a node only needs to keep broadcasting long enough for
   the stragglers: every honest node decides at most one round after
   the first decision, so rounds beyond [decided + 2] serve nobody and
   the instance quiesces (essential when many instances run inside one
   composition, e.g. ACS). *)
let quiesced t =
  match t.decided with
  | Some d -> t.round > d.Decision.round + 2
  | None -> false

(* Take every transition enabled by the current tallies.  Each firing
   advances (round, step), so the recursion stops at the first missing
   quorum.  Effects accumulate in reverse. *)
let rec progress t ~rng ~(sink : Event.sink) acc =
  let tl = tally t ~round:t.round ~step:t.step in
  if quiesced t || total tl < quorum t then (t, List.rev acc)
  else begin
    if sink.Event.enabled then
      sink.Event.emit
        (Event.make ~round:t.round
           (Event.Quorum
              {
                quorum = Printf.sprintf "step%d" (Step.to_int t.step);
                count = total tl;
                threshold = quorum t;
              }));
    match t.step with
    | Step.S1 ->
      let value = majority tl ~current:t.value in
      let t = { t with value; step = Step.S2 } in
      progress t ~rng ~sink
        (Broadcast_step (own_vmsg t ~step:Step.S2 ~decide:false) :: acc)
    | Step.S2 ->
      (* Arm the decide flag when one value exceeds n/2 — at most one
         value per round can, because each origin contributes a single
         step-2 message. *)
      let flagged, value =
        if count tl Value.Zero >= Quorum.strict_majority t.n then (true, Value.Zero)
        else if count tl Value.One >= Quorum.strict_majority t.n then (true, Value.One)
        else (false, t.value)
      in
      let t = { t with value; step = Step.S3 } in
      progress t ~rng ~sink
        (Broadcast_step (own_vmsg t ~step:Step.S3 ~decide:flagged) :: acc)
    | Step.S3 ->
      let w =
        if dcount tl Value.Zero >= dcount tl Value.One then Value.Zero else Value.One
      in
      let support = dcount tl w in
      let t, acc =
        if support >= Quorum.decide_support ~f:t.f then begin
          match t.decided with
          | Some _ -> ({ t with value = w }, acc)
          | None ->
            let decision = { Decision.value = w; round = t.round } in
            if sink.Event.enabled then
              sink.Event.emit
                (Event.make ~round:t.round
                   (Event.Decide { value = Fmt.str "%a" Value.pp w }));
            ({ t with value = w; decided = Some decision }, Decide decision :: acc)
        end
        else if support >= Quorum.adopt_support ~f:t.f then ({ t with value = w }, acc)
        else begin
          (* Neither rule fired: flip the round coin — unless decided
             already, in which case the value is locked forever. *)
          let value =
            match t.decided with
            | Some d -> d.Decision.value
            | None ->
              let flip = Coin.flip t.coin ~rng ~round:t.round in
              if sink.Event.enabled then
                sink.Event.emit
                  (Event.make ~round:t.round
                     (Event.Coin_flip { value = Value.to_int flip }));
              flip
          in
          ({ t with value }, acc)
        end
      in
      let t = { t with round = t.round + 1; step = Step.S1 } in
      if sink.Event.enabled then
        sink.Event.emit (Event.make ~round:t.round Event.Round_advance);
      progress t ~rng ~sink
        (Broadcast_step (own_vmsg t ~step:Step.S1 ~decide:false) :: acc)
  end

let record t (m : vmsg) =
  let slot = (m.round, Step.to_int m.step) in
  let tl =
    match Slot_map.find_opt slot t.tallies with
    | Some tl -> tl
    | None -> empty_tally
  in
  if Node_id.Set.mem m.origin tl.origins then t
  else begin
    let tl = { tl with origins = Node_id.Set.add m.origin tl.origins } in
    let tl =
      match (m.value, m.decide) with
      | Value.Zero, false -> { tl with c0 = tl.c0 + 1 }
      | Value.One, false -> { tl with c1 = tl.c1 + 1 }
      | Value.Zero, true -> { tl with c0 = tl.c0 + 1; d0 = tl.d0 + 1 }
      | Value.One, true -> { tl with c1 = tl.c1 + 1; d1 = tl.d1 + 1 }
    in
    { t with tallies = Slot_map.add slot tl t.tallies }
  end

let on_validated ?(sink = Event.null_sink) t ~rng m =
  let t = record t m in
  progress t ~rng ~sink []

let create ~n ~f ~me ~coin ~input =
  Quorum.assert_resilience ~n ~f;
  let t =
    {
      n;
      f;
      me;
      coin;
      value = input;
      round = 1;
      step = Step.S1;
      decided = None;
      tallies = Slot_map.empty;
    }
  in
  (t, [ Broadcast_step (own_vmsg t ~step:Step.S1 ~decide:false) ])
