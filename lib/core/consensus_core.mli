open Import

(** Bracha's randomized binary consensus — pure round state machine.

    Tolerates [f ≤ ⌊(n-1)/3⌋] Byzantine nodes in a fully asynchronous
    system, deciding with probability 1 — the 1984 answer to FLP.  Each
    round [r] has three steps, each a reliable broadcast by every node
    (messages arrive here only after validation):

    + {b Step 1} — broadcast the current value; await [q = n - f]
      messages; adopt the majority value.
    + {b Step 2} — broadcast it; await [q]; if some value [w] has more
      than [n/2] support, arm the decide flag for [w].
    + {b Step 3} — broadcast value (+ flag); await [q]; with [d(w)] the
      number of decide-messages for [w]:
      - [d(w) ≥ 2f+1]: {b decide} [w] (and keep participating so
        stragglers terminate — they all decide by round [r+1]);
      - [d(w) ≥ f+1]: adopt [w];
      - otherwise: flip the round {!Coin}.

    The module consumes already-validated messages and emits broadcast
    effects; transports (RBC or plain) live in the adapters.  All
    thresholds count distinct origins, so acting on more than [q]
    messages (when validation releases a batch) is safe — every rule is
    monotone in the counts. *)

type effect =
  | Broadcast_step of Consensus_msg.vmsg
      (** this node's next step message, to be disseminated *)
  | Decide of Decision.t  (** emitted exactly once, upon decision *)

type t
(** Immutable consensus state for one node. *)

val create :
  n:int -> f:int -> me:Node_id.t -> coin:Coin.t -> input:Value.t -> t * effect list
(** [create ~n ~f ~me ~coin ~input] starts round 1 and emits the
    step-1 broadcast of [input].  Requires [n > 3f]. *)

val on_validated :
  ?sink:Event.sink -> t -> rng:Stream.t -> Consensus_msg.vmsg -> t * effect list
(** [on_validated t ~rng m] accounts for a validated message and takes
    every transition that has become enabled (possibly several, if
    later-step quorums were already waiting).  [rng] feeds local coin
    flips.

    [?sink] (default {!Event.null_sink}) receives the protocol events
    of each transition, all stamped with the round they occurred in: a
    {!Event.kind.Quorum} (["step1"]/["step2"]/["step3"]) per completed
    step, {!Event.kind.Decide} on decision, {!Event.kind.Coin_flip}
    when neither support rule fires, and {!Event.kind.Round_advance}
    on entering each new round. *)

val round : t -> int
(** Current round (1-based). *)

val decided : t -> Decision.t option
(** The decision, once taken. *)

val current_value : t -> Value.t
(** The node's current estimate (for tests and debugging). *)
