open Import

module Step = struct
  type t = S1 | S2 | S3

  let to_int = function S1 -> 1 | S2 -> 2 | S3 -> 3

  let equal a b = to_int a = to_int b

  let compare a b = Int.compare (to_int a) (to_int b)

  let pp ppf s = Fmt.pf ppf "s%d" (to_int s)
end

module Payload = struct
  type t = { value : Value.t; decide : bool }

  let equal a b = Value.equal a.value b.value && Bool.equal a.decide b.decide

  let compare a b =
    match Value.compare a.value b.value with
    | 0 -> Bool.compare a.decide b.decide
    | c -> c

  let pp ppf { value; decide } =
    if decide then Fmt.pf ppf "d:%a" Value.pp value else Value.pp ppf value

  let label = "step"

  let bytes { value; decide = _ } = Value.bytes value + Protocol.Wire_size.tag
end

module Key = struct
  type t = { origin : Node_id.t; round : int; step : Step.t }

  let compare a b =
    match Node_id.compare a.origin b.origin with
    | 0 -> (
      match Int.compare a.round b.round with
      | 0 -> Step.compare a.step b.step
      | c -> c)
    | c -> c

  let equal a b = compare a b = 0

  let pp ppf { origin; round; step } =
    Fmt.pf ppf "%a/r%d/%a" Node_id.pp origin round Step.pp step

  let bytes (_ : t) =
    Protocol.Wire_size.node_id + Protocol.Wire_size.int + Protocol.Wire_size.tag

  module Map = Map.Make (struct
    type nonrec t = t

    let compare = compare
  end)
end

type vmsg = {
  origin : Node_id.t;
  round : int;
  step : Step.t;
  value : Value.t;
  decide : bool;
}

let vmsg_of_delivery (key : Key.t) (payload : Payload.t) =
  {
    origin = key.origin;
    round = key.round;
    step = key.step;
    value = payload.value;
    decide = payload.decide;
  }

let key_of_vmsg v = { Key.origin = v.origin; round = v.round; step = v.step }

let payload_of_vmsg v = { Payload.value = v.value; decide = v.decide }

let vmsg_bytes v = Key.bytes (key_of_vmsg v) + Payload.bytes (payload_of_vmsg v)

let pp_vmsg ppf v =
  Fmt.pf ppf "%a=%a" Key.pp (key_of_vmsg v) Payload.pp (payload_of_vmsg v)
