open Import

(** Message vocabulary of Bracha's randomized consensus.

    Each round has three steps; in every step each node
    reliable-broadcasts one value.  Step-3 messages additionally carry
    the "deciding" flag ([(d, v)] in the paper).  The payload that
    travels inside reliable-broadcast instances is [(value, decide)];
    the instance {!Key} names the (originator, round, step) slot, and a
    {e validated message} ({!vmsg}) is the pair of both — what the
    validation layer and the consensus core operate on. *)

(** Protocol step within a round. *)
module Step : sig
  type t = S1 | S2 | S3

  val to_int : t -> int
  (** 1, 2 or 3. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t
end

(** RBC payload: the broadcast value plus the step-3 decide flag. *)
module Payload : sig
  type t = { value : Value.t; decide : bool }

  include Value.PAYLOAD with type t := t
end

(** Identity of one reliable-broadcast instance: who broadcasts for
    which (round, step) slot.  Carried verbatim on the wire so that a
    Byzantine node cannot smuggle one instance's traffic into
    another. *)
module Key : sig
  type t = { origin : Node_id.t; round : int; step : Step.t }

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t

  val bytes : t -> int
  (** Wire size of a key: origin, round and step. *)

  module Map : Map.S with type key = t
end

type vmsg = {
  origin : Node_id.t;
  round : int;
  step : Step.t;
  value : Value.t;
  decide : bool;
}
(** A consensus step message after reliable delivery, as seen by the
    validation layer and the consensus core. *)

val vmsg_of_delivery : Key.t -> Payload.t -> vmsg
(** Reassemble a validated-message view from an RBC delivery. *)

val key_of_vmsg : vmsg -> Key.t
val payload_of_vmsg : vmsg -> Payload.t

val vmsg_bytes : vmsg -> int
(** Wire size of a step message: its key plus its payload. *)

val pp_vmsg : vmsg Fmt.t
