[@@@abc.resilience "n>3f"]

open Import

module Make (V : Value.PAYLOAD) = struct
  module Core = Rbc_core.Make (V)
  module Value_map = Map.Make (V)

  type input = { sender : Node_id.t; payload : V.t option }

  type output = Delivered of V.t

  type msg = Core.event

  type state = {
    n : int;
    f : int;
    sender : Node_id.t;
    echoed : bool;
    delivered : bool;
    echoes : Node_id.Set.t Value_map.t;
  }

  let name = "consistent-broadcast"

  let initial ctx (input : input) =
    let state =
      {
        n = ctx.Protocol.Context.n;
        f = ctx.Protocol.Context.f;
        sender = input.sender;
        echoed = false;
        delivered = false;
        echoes = Value_map.empty;
      }
    in
    let actions =
      match input.payload with
      | Some v ->
        assert (Node_id.equal ctx.Protocol.Context.me input.sender);
        [ Protocol.Broadcast (Core.Initial v) ]
      | None -> []
    in
    (state, actions)

  let on_message ctx state ~src msg =
    match msg with
    | Core.Initial v ->
      if Node_id.equal src state.sender && not state.echoed then
        ({ state with echoed = true }, [ Protocol.Broadcast (Core.Echo v) ], [])
      else (state, [], [])
    | Core.Echo v ->
      let supporters =
        match Value_map.find_opt v state.echoes with
        | Some s -> s
        | None -> Node_id.Set.empty
      in
      let supporters = Node_id.Set.add src supporters in
      let state = { state with echoes = Value_map.add v supporters state.echoes } in
      if
        (not state.delivered)
        && Node_id.Set.cardinal supporters
           >= Core.echo_threshold ~n:state.n ~f:state.f
      then begin
        let sink = ctx.Protocol.Context.sink in
        if sink.Event.enabled then
          sink.Event.emit
            (Event.make
               (Event.Quorum
                  {
                    quorum = "echo";
                    count = Node_id.Set.cardinal supporters;
                    threshold = Core.echo_threshold ~n:state.n ~f:state.f;
                  }));
        ({ state with delivered = true }, [], [ Delivered v ])
      end
      else (state, [], [])
    | Core.Ready _ -> (state, [], []) (* no third phase in this primitive *)

  let is_terminal (Delivered _) = true
  let on_timeout = Protocol.no_timeout

  let msg_label = Core.event_label

  let msg_bytes = Core.event_bytes

  let pp_msg = Core.pp_event

  let pp_output ppf (Delivered v) = Fmt.pf ppf "delivered(%a)" V.pp v

  let inputs ~n ~sender v =
    Array.init n (fun i ->
        let me = Node_id.of_int i in
        { sender; payload = (if Node_id.equal me sender then Some v else None) })
end

module Binary = Make (Value)
