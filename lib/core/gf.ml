let prime = 0x7FFFFFFF (* 2^31 - 1, a Mersenne prime *)

type t = int

let of_int x =
  let r = x mod prime in
  if r < 0 then r + prime else r

let to_int t = t

let zero = 0

let one = 1

let add a b =
  let s = a + b in
  if s >= prime then s - prime else s

let sub a b =
  let d = a - b in
  if d < 0 then d + prime else d

(* a, b < 2^31 so a * b < 2^62 fits a native int. *)
let mul a b = a * b mod prime

let rec pow x k =
  assert (k >= 0);
  if k = 0 then one
  else begin
    let half = pow x (k / 2) in
    let squared = mul half half in
    if k mod 2 = 0 then squared else mul squared x
  end

let inv x = if x = 0 then raise Division_by_zero else pow x (prime - 2)

let div a b = mul a (inv b)

let equal = Int.equal

let compare = Int.compare

let pp = Fmt.int

let random rng = Abc_prng.Stream.int rng ~bound:prime
