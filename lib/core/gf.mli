(** Arithmetic in the prime field GF(2³¹ − 1).

    The field under the Shamir secret sharing used by the Rabin-style
    common coin.  The Mersenne prime [p = 2³¹ − 1] keeps every product
    of two field elements inside OCaml's 63-bit native integers, so no
    boxed arithmetic is needed. *)

val prime : int
(** The field modulus, [2³¹ - 1]. *)

type t = private int
(** A field element in [[0, prime)]. *)

val of_int : int -> t
(** [of_int x] reduces [x] modulo [prime] (negative inputs allowed). *)

val to_int : t -> int
(** The canonical representative in [[0, prime)]. *)

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val pow : t -> int -> t
(** [pow x k] for [k >= 0], by square-and-multiply. *)

val inv : t -> t
(** Multiplicative inverse (by Fermat's little theorem).  Raises
    [Division_by_zero] on {!zero}. *)

val div : t -> t -> t
(** [div a b] is [mul a (inv b)]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order on canonical representatives (for sorting and sets;
    not meaningful field-theoretically). *)

val pp : t Fmt.t

val random : Abc_prng.Stream.t -> t
(** A uniformly random field element. *)
