(** Short aliases for the substrate modules used throughout the
    consensus library.  Files open this module instead of repeating
    [Abc_net.]-qualified paths. *)

module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Engine = Abc_net.Engine
module Stream = Abc_prng.Stream
module Metrics = Abc_sim.Metrics
module Summary = Abc_sim.Summary
module Trace = Abc_sim.Trace
module Event = Abc_sim.Event
