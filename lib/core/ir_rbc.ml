[@@@abc.resilience "n>5f"]

open Import

module Make (V : Value.PAYLOAD) = struct
  module Value_map = Map.Make (V)
  module Value_set = Set.Make (V)

  type input = { sender : Node_id.t; payload : V.t option }

  type output = Delivered of V.t

  type msg = Init of V.t | Witness of V.t

  type state = {
    n : int;
    f : int;
    sender : Node_id.t;
    init_seen : bool;
    witnessed : Value_set.t; (* values whose WITNESS I already broadcast *)
    witnesses : Node_id.Set.t Value_map.t;
    delivered : bool;
  }

  let name = "ir-rbc"

  let support state v =
    match Value_map.find_opt v state.witnesses with
    | Some nodes -> Node_id.Set.cardinal nodes
    | None -> 0

  (* The WITNESS broadcast is guarded per value, not by a global latch:
     a node latched on the sender's INIT value must still amplify a
     different value once [n - 2f] witnesses vouch for it, or nodes
     that delivered could leave the stragglers short of their delivery
     quorum (totality would fail under an equivocating sender). *)
  let witness state v =
    if Value_set.mem v state.witnessed then (state, [])
    else
      ( { state with witnessed = Value_set.add v state.witnessed },
        [ Protocol.Broadcast (Witness v) ] )

  let progress (ctx : Protocol.Context.t) state v =
    let sink = ctx.Protocol.Context.sink in
    let count = support state v in
    let state, sends =
      if count >= Quorum.honest_support ~n:state.n ~f:state.f then begin
        let state, sends = witness state v in
        if sends <> [] && sink.Event.enabled then
          sink.Event.emit
            (Event.make
               (Event.Quorum
                  {
                    quorum = "witness-amplify";
                    count;
                    threshold = Quorum.honest_support ~n:state.n ~f:state.f;
                  }));
        (state, sends)
      end
      else (state, [])
    in
    if
      (not state.delivered)
      && count >= Quorum.completeness ~n:state.n ~f:state.f
    then begin
      if sink.Event.enabled then
        sink.Event.emit
          (Event.make
             (Event.Quorum
                {
                  quorum = "witness";
                  count;
                  threshold = Quorum.completeness ~n:state.n ~f:state.f;
                }));
      ({ state with delivered = true }, sends, [ Delivered v ])
    end
    else (state, sends, [])

  let initial ctx (input : input) =
    let n = ctx.Protocol.Context.n and f = ctx.Protocol.Context.f in
    Quorum.assert_resilience_at ~ratio:5 ~n ~f;
    let state =
      {
        n;
        f;
        sender = input.sender;
        init_seen = false;
        witnessed = Value_set.empty;
        witnesses = Value_map.empty;
        delivered = false;
      }
    in
    let actions =
      match input.payload with
      | Some v ->
        assert (Node_id.equal ctx.Protocol.Context.me input.sender);
        [ Protocol.Broadcast (Init v) ]
      | None -> []
    in
    (state, actions)

  let on_message ctx state ~src = function
    | Init v ->
      (* Only the designated sender's first INIT counts. *)
      if (not (Node_id.equal src state.sender)) || state.init_seen then
        (state, [], [])
      else begin
        let state = { state with init_seen = true } in
        let state, sends = witness state v in
        (state, sends, [])
      end
    | Witness v ->
      let nodes =
        match Value_map.find_opt v state.witnesses with
        | Some nodes -> nodes
        | None -> Node_id.Set.empty
      in
      let state =
        {
          state with
          witnesses = Value_map.add v (Node_id.Set.add src nodes) state.witnesses;
        }
      in
      progress ctx state v

  let is_terminal (Delivered _) = true

  let on_timeout = Protocol.no_timeout

  let msg_label = function Init _ -> "init" | Witness _ -> "witness"

  let msg_bytes = function
    | Init v | Witness v -> Protocol.Wire_size.tag + V.bytes v

  let pp_msg ppf = function
    | Init v -> Fmt.pf ppf "init(%a)" V.pp v
    | Witness v -> Fmt.pf ppf "witness(%a)" V.pp v

  let pp_output ppf (Delivered v) = Fmt.pf ppf "delivered(%a)" V.pp v

  let max_faults ~n = Quorum.max_faults ~ratio:5 ~n

  module Fault = struct
    let map_payload forge rng = function
      | Init v -> Init (forge rng v)
      | Witness v -> Witness (forge rng v)

    let substitute forge rng msg = map_payload forge rng msg

    let equivocate forge rng ~dst msg =
      map_payload (fun rng v -> forge rng ~dst v) rng msg
  end

  let inputs ~n ~sender v =
    Array.init n (fun i ->
        let me = Node_id.of_int i in
        { sender; payload = (if Node_id.equal me sender then Some v else None) })
end

module Binary = Make (Value)
