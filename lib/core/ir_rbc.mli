open Import

(** Imbs–Raynal two-phase reliable broadcast.

    Paper source: Imbs and Raynal, "Trading off t-resilience for
    efficiency in asynchronous Byzantine reliable broadcast" (Parallel
    Processing Letters, 2016; arXiv:1510.06882).  The protocol trades
    resilience for communication: it tolerates only [f < n/5]
    Byzantine nodes (Bracha tolerates [f < n/3]) but needs one message
    phase less — two broadcast steps instead of three, for [n² + n]
    messages per broadcast against Bracha's [2n² + n].

    The rules, with [INIT]/[WITNESS] the two message types:

    - the designated sender broadcasts [Init v];
    - on the {e first} [Init v] from the sender, broadcast
      [Witness v] (if not already done for [v]);
    - on [Witness v] from [n − 2f] distinct nodes
      ({!Quorum.honest_support}), broadcast [Witness v] if not already
      done for [v] — the amplification is guarded {e per value}, not
      by a global once-latch, which is what makes totality go through
      under an equivocating sender;
    - on [Witness v] from [n − f] distinct nodes
      ({!Quorum.completeness}), deliver [v] (once).

    Agreement sketch at [n > 5f] with [b <= f] actual Byzantine nodes:
    if honest nodes deliver [v] and [v'], each value's honest
    supporters of size [>= n − f − b] must include honest nodes whose
    {e first} amplification cause traces back to disjoint honest
    INIT-witness sets, forcing [2(n − 2f − b) <= n − b], i.e.
    [n <= 4f + b <= 5f] — contradicting the resilience bound. *)

module Make (V : Value.PAYLOAD) : sig
  type input = { sender : Node_id.t; payload : V.t option }
  (** [payload] is [Some v] at the designated sender, [None]
      elsewhere.  All nodes must agree on [sender]. *)

  type output = Delivered of V.t

  type msg = Init of V.t | Witness of V.t

  include
    Protocol.S
      with type input := input
       and type output := output
       and type msg := msg

  val max_faults : n:int -> int
  (** Largest [f] inside the [n > 5f] resilience bound. *)

  (** Forged messages for Byzantine senders and relays (same shape as
      {!Bracha_rbc.Make.Fault}). *)
  module Fault : sig
    val substitute : (Stream.t -> V.t -> V.t) -> Stream.t -> msg -> msg
    (** [substitute forge] rewrites the payload of every outgoing
        message with [forge]: a lying sender or relay. *)

    val equivocate :
      (Stream.t -> dst:Node_id.t -> V.t -> V.t) ->
      Stream.t ->
      dst:Node_id.t ->
      msg ->
      msg
    (** Per-recipient payload substitution: the two-faced sender. *)
  end

  val inputs : n:int -> sender:Node_id.t -> V.t -> input array
  (** [inputs ~n ~sender v] is the standard input vector: [v] at
      [sender], [None] elsewhere. *)
end

(** Ready-made instance broadcasting a single bit. *)
module Binary : sig
  include module type of Make (Value)
end
