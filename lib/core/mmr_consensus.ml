[@@@abc.resilience "n>3f"]

open Import

type coin_source = Flip of Coin.t | Shares of Rabin_coin.t

type input = { value : Value.t; coin : coin_source }

type msg =
  | Bval of { round : int; value : Value.t }
  | Aux of { round : int; value : Value.t }
  | Share of { round : int; share : Shamir.share }

type output = Decision.t

(* Per-round bookkeeping.  [bval_from] / [aux_from] track the distinct
   senders per value ([aux_from] keyed by the sender's single vote);
   [bval_echoed] latches the f+1 re-broadcast rule per value.  The
   [*_counts] fields mirror the cardinalities of the sets/maps so the
   quorum rules never walk a set per message (see PERFORMANCE.md); the
   sets remain the source of truth for deduplication. *)
type round_state = {
  bval_from : Node_id.Set.t array; (* indexed by Value.to_int *)
  bval_counts : int array; (* cardinal of bval_from, per value *)
  bval_echoed : bool array;
  bin_values : bool array;
  aux_from : Value.t Node_id.Map.t;
  aux_counts : int array; (* AUX votes per value *)
  aux_sent : bool;
  share_sent : bool;
  shares : Shamir.share Node_id.Map.t; (* verified coin shares *)
  share_count : int; (* cardinal of shares *)
  completed : bool;
}

let fresh_round () =
  {
    bval_from = [| Node_id.Set.empty; Node_id.Set.empty |];
    bval_counts = [| 0; 0 |];
    bval_echoed = [| false; false |];
    bin_values = [| false; false |];
    aux_from = Node_id.Map.empty;
    aux_counts = [| 0; 0 |];
    aux_sent = false;
    share_sent = false;
    shares = Node_id.Map.empty;
    share_count = 0;
    completed = false;
  }

module Int_map = Map.Make (Int)

type state = {
  n : int;
  f : int;
  me : Node_id.t;
  coin : coin_source;
  est : Value.t;
  round : int;
  decided : Decision.t option;
  rounds : round_state Int_map.t;
}

let name = "mmr-consensus"

let quorum state = Quorum.completeness ~n:state.n ~f:state.f

let round_state state r =
  match Int_map.find_opt r state.rounds with
  | Some rs -> rs
  | None -> fresh_round ()

let set_round state r rs = { state with rounds = Int_map.add r rs state.rounds }

(* Mutation helpers on the immutable round record (arrays are copied
   before update to keep states value-semantic). *)
let with_set arr i v =
  let arr = Array.copy arr in
  arr.(i) <- v;
  arr

let add_bval rs ~src value =
  let i = Value.to_int value in
  if Node_id.Set.mem src rs.bval_from.(i) then rs
  else
    {
      rs with
      bval_from = with_set rs.bval_from i (Node_id.Set.add src rs.bval_from.(i));
      bval_counts = with_set rs.bval_counts i (rs.bval_counts.(i) + 1);
    }

let add_aux rs ~src value =
  if Node_id.Map.mem src rs.aux_from then rs
  else
    let i = Value.to_int value in
    {
      rs with
      aux_from = Node_id.Map.add src value rs.aux_from;
      aux_counts = with_set rs.aux_counts i (rs.aux_counts.(i) + 1);
    }

let add_share rs ~src share =
  if Node_id.Map.mem src rs.shares then rs
  else
    {
      rs with
      shares = Node_id.Map.add src share rs.shares;
      share_count = rs.share_count + 1;
    }

(* The BV-broadcast rules plus the AUX trigger for round [r]; returns
   the messages this node must broadcast now. *)
let bv_progress state ~(sink : Event.sink) r =
  let rs = round_state state r in
  let sends = ref [] in
  let rs = ref rs in
  List.iter
    (fun value ->
      let i = Value.to_int value in
      let support = !rs.bval_counts.(i) in
      if support >= Quorum.ready_amplify ~f:state.f && not !rs.bval_echoed.(i)
      then begin
        if sink.Event.enabled then
          sink.Event.emit
            (Event.make ~round:r
               (Event.Quorum
                  {
                    quorum = "bval-echo";
                    count = support;
                    threshold = Quorum.ready_amplify ~f:state.f;
                  }));
        sends := Bval { round = r; value } :: !sends;
        rs := { !rs with bval_echoed = with_set !rs.bval_echoed i true }
      end;
      if support >= Quorum.ready_deliver ~f:state.f && not !rs.bin_values.(i)
      then begin
        if sink.Event.enabled then
          sink.Event.emit
            (Event.make ~round:r
               (Event.Quorum
                  {
                    quorum = "bval-deliver";
                    count = support;
                    threshold = Quorum.ready_deliver ~f:state.f;
                  }));
        rs := { !rs with bin_values = with_set !rs.bin_values i true }
      end)
    [ Value.Zero; Value.One ];
  (* First value entering bin_values triggers the single AUX vote. *)
  let rs = !rs in
  let rs, sends =
    if (not rs.aux_sent) && (rs.bin_values.(0) || rs.bin_values.(1)) then begin
      let value = if rs.bin_values.(0) then Value.Zero else Value.One in
      ({ rs with aux_sent = true }, Aux { round = r; value } :: !sends)
    end
    else (rs, !sends)
  in
  (set_round state r rs, List.rev sends)

(* Obtain the round coin.  The [Flip] sources answer immediately; the
   share-based source reveals this node's share (once) and waits for
   f+1 verified shares — exactly Rabin's protocol, on the wire. *)
let obtain_coin state ~rng rs r =
  match state.coin with
  | Flip c -> (rs, [], Some (Coin.flip c ~rng ~round:r))
  | Shares dealer ->
    let rs, sends =
      if rs.share_sent then (rs, [])
      else begin
        let my_share = Rabin_coin.share dealer ~round:r ~node:state.me in
        (* Count our own share immediately; the broadcast copy that
           loops back is deduplicated. *)
        let rs = add_share { rs with share_sent = true } ~src:state.me my_share in
        (rs, [ Share { round = r; share = my_share } ])
      end
    in
    if rs.share_count >= Rabin_coin.threshold dealer then begin
      let shares = List.map snd (Node_id.Map.bindings rs.shares) in
      (rs, sends, Some (Rabin_coin.reconstruct dealer shares))
    end
    else (rs, sends, None)

(* End-of-round rule: enough AUX votes with values inside bin_values,
   then the round coin. *)
let try_complete_round state ~rng ~(sink : Event.sink) =
  let r = state.round in
  let rs = round_state state r in
  if rs.completed then (state, [], [])
  else begin
    (* An AUX vote is "supported" when its value sits in bin_values;
       counting per-value tallies against the bin_values flags gives
       the filtered cardinality without materialising the filtered map
       (the old [Node_id.Map.filter] allocated a map per message). *)
    let counted i = if rs.bin_values.(i) then rs.aux_counts.(i) else 0 in
    let supported = counted 0 + counted 1 in
    if supported < quorum state then (state, [], [])
    else begin
      if sink.Event.enabled then
        sink.Event.emit
          (Event.make ~round:r
             (Event.Quorum
                {
                  quorum = "aux";
                  count = supported;
                  threshold = quorum state;
                }));
      let has v = counted (Value.to_int v) > 0 in
      let rs, coin_sends, coin = obtain_coin state ~rng rs r in
      let state = set_round state r rs in
      match coin with
      | None -> (state, coin_sends, [])
      | Some coin_value ->
        if sink.Event.enabled then
          sink.Event.emit
            (Event.make ~round:r
               (Event.Coin_flip { value = Value.to_int coin_value }));
        let singleton =
          match (has Value.Zero, has Value.One) with
          | true, false -> Some Value.Zero
          | false, true -> Some Value.One
          | true, true | false, false -> None
        in
        let state, outputs =
          match singleton with
          | Some v ->
            let state = { state with est = v } in
            if Value.equal v coin_value && state.decided = None then begin
              let decision = { Decision.value = v; round = r } in
              if sink.Event.enabled then
                sink.Event.emit
                  (Event.make ~round:r
                     (Event.Decide { value = Fmt.str "%a" Value.pp v }));
              ({ state with decided = Some decision }, [ decision ])
            end
            else (state, [])
          | None ->
            let est =
              match state.decided with
              | Some d -> d.Decision.value (* the decided value is locked *)
              | None -> coin_value
            in
            ({ state with est }, [])
        in
        let state = set_round state r { rs with completed = true } in
        let state = { state with round = r + 1 } in
        if sink.Event.enabled then
          sink.Event.emit (Event.make ~round:state.round Event.Round_advance);
        (state, Bval { round = state.round; value = state.est } :: coin_sends, outputs)
    end
  end

(* Fire everything that is enabled: BV rules for the current round may
   unlock the round completion, whose round switch may find the next
   round's tallies already over quorum. *)
let rec settle state ~rng ~sink actions outputs =
  let state, bv_sends = bv_progress state ~sink state.round in
  let state, round_sends, round_outputs = try_complete_round state ~rng ~sink in
  let actions = actions @ bv_sends @ round_sends in
  let outputs = outputs @ round_outputs in
  if round_sends = [] && round_outputs = [] then (state, actions, outputs)
  else settle state ~rng ~sink actions outputs

let initial ctx (input : input) =
  Quorum.assert_resilience ~n:ctx.Protocol.Context.n ~f:ctx.Protocol.Context.f;
  let state =
    {
      n = ctx.Protocol.Context.n;
      f = ctx.Protocol.Context.f;
      me = ctx.Protocol.Context.me;
      coin = input.coin;
      est = input.value;
      round = 1;
      decided = None;
      rounds = Int_map.empty;
    }
  in
  let state, actions, _ =
    settle state ~rng:ctx.Protocol.Context.rng ~sink:ctx.Protocol.Context.sink
      [ Bval { round = 1; value = input.value } ]
      []
  in
  (state, List.map (fun m -> Protocol.Broadcast m) actions)

let on_message ctx state ~src msg =
  let state, touched =
    match msg with
    | Bval { round; value } ->
      (set_round state round (add_bval (round_state state round) ~src value), round)
    | Aux { round; value } ->
      (set_round state round (add_aux (round_state state round) ~src value), round)
    | Share { round; share } ->
      (* Only dealer-certified shares count (the VSS check): a forged
         or replayed share is dropped here. *)
      let state =
        match state.coin with
        | Shares dealer when Rabin_coin.verify dealer ~round ~node:src share ->
          set_round state round (add_share (round_state state round) ~src share)
        | Shares _ | Flip _ -> state
      in
      (state, round)
  in
  (* The BV re-broadcast and AUX rules are per-round instances that
     must fire even for rounds this node has already left (stragglers
     depend on our echoes) or has not reached yet. *)
  let sink = ctx.Protocol.Context.sink in
  let state, instance_sends = bv_progress state ~sink touched in
  let state, actions, outputs =
    settle state ~rng:ctx.Protocol.Context.rng ~sink instance_sends []
  in
  (state, List.map (fun m -> Protocol.Broadcast m) actions, outputs)

let is_terminal (_ : output) = true
let on_timeout = Protocol.no_timeout

let msg_label = function Bval _ -> "bval" | Aux _ -> "aux" | Share _ -> "share"

let msg_bytes =
  let open Protocol.Wire_size in
  function
  | Bval { round = _; value } | Aux { round = _; value } ->
    tag + int + Value.bytes value
  | Share _ -> tag + int + int + int (* round, share.x, share.y *)

let pp_msg ppf = function
  | Bval { round; value } -> Fmt.pf ppf "bval(r%d, %a)" round Value.pp value
  | Aux { round; value } -> Fmt.pf ppf "aux(r%d, %a)" round Value.pp value
  | Share { round; share } ->
    Fmt.pf ppf "share(r%d, x=%d)" round share.Shamir.x

let pp_output = Decision.pp

let inputs ~n ~coin values =
  if Array.length values <> n then
    invalid_arg "Mmr_consensus.inputs: values length must equal n";
  Array.map (fun value -> { value; coin = Flip coin }) values

let inputs_with_shared_coin ~n ~f ~seed values =
  if Array.length values <> n then
    invalid_arg "Mmr_consensus.inputs_with_shared_coin: values length must equal n";
  let dealer = Rabin_coin.create ~n ~f ~seed in
  Array.map (fun value -> { value; coin = Shares dealer }) values

let value_of_input (input : input) = input.value

module Fault = struct
  let flip_value _rng = function
    | Bval { round; value } -> Bval { round; value = Value.negate value }
    | Aux { round; value } -> Aux { round; value = Value.negate value }
    | Share { round; share } ->
      (* Corrupt the share value: the dealer-certification check must
         reject it downstream. *)
      Share { round; share = { share with Shamir.y = Gf.add share.Shamir.y Gf.one } }

  let equivocate_by_half ~n rng ~dst msg =
    if Node_id.to_int dst < n / 2 then msg else flip_value rng msg
end
