open Import

module Make (V : Value.PAYLOAD) = struct
  module Underlying = Acs.Make (V)

  type input = { proposal : V.t; coin : Coin.t }

  type output = Decided of { value : V.t; subset : (Node_id.t * V.t) list }

  type msg = Underlying.msg

  type state = Underlying.state

  let name = "multivalued-consensus"

  let translate outputs =
    List.map
      (fun (Underlying.Accepted subset as accepted) ->
        Decided { value = Underlying.decide_value accepted; subset })
      outputs

  let initial ctx (input : input) =
    Underlying.initial ctx
      { Underlying.proposal = input.proposal; coin = input.coin }

  let on_message ctx state ~src msg =
    let state, actions, outputs = Underlying.on_message ctx state ~src msg in
    (state, actions, translate outputs)

  let on_timeout ctx state ~id =
    let state, actions, outputs = Underlying.on_timeout ctx state ~id in
    (state, actions, translate outputs)

  let is_terminal (Decided _) = true

  let msg_label = Underlying.msg_label

  let msg_bytes = Underlying.msg_bytes

  let pp_msg = Underlying.pp_msg

  let pp_output ppf (Decided { value; subset }) =
    Fmt.pf ppf "decided(%a from %d proposals)" V.pp value (List.length subset)

  let inputs ~n ~coin proposals =
    Array.map
      (fun (input : Underlying.input) ->
        { proposal = input.Underlying.proposal; coin })
      (Underlying.inputs ~n ~coin proposals)

  let decided_value (Decided { value; _ }) = value
end
