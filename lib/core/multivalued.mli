open Import

(** Multivalued consensus, packaged.

    Paper source: the ACS-to-consensus collapse used by HoneyBadgerBFT
    (Miller et al., CCS 2016) over Bracha's primitives; resilience
    [f <= (n-1)/3], messages are the underlying {!Acs} wire type.

    The thin layer over {!Acs} that most applications want: every node
    proposes an arbitrary payload, every honest node decides the
    {e same single payload}, and the decision was proposed by some node
    (at least [n - 2f] of the subset's members are honest, and the
    deterministic collapse picks the smallest payload, so a Byzantine
    proposer can only win by proposing the smallest value — it cannot
    invent disagreement). *)

module Make (V : Value.PAYLOAD) : sig
  module Underlying : module type of Acs.Make (V)

  type input = { proposal : V.t; coin : Coin.t }

  type output = Decided of { value : V.t; subset : (Node_id.t * V.t) list }
      (** the collapsed decision plus the common subset it came from *)

  include
    Protocol.S
      with type input := input
       and type output := output
       and type msg = Underlying.msg

  val inputs : n:int -> coin:Coin.t -> V.t array -> input array

  val decided_value : output -> V.t
end
