module Int_payload = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Fmt.int
  let label = "int"
  let bytes (_ : t) = 8
end

module String_payload = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp = Fmt.string
  let label = "string"
  let bytes = String.length
end
