(* The one module allowed to spell out threshold arithmetic; the
   abc_lint quorum rule exempts this file and flags raw expressions
   anywhere else under lib/core.  Keep every formula next to the
   intersection argument that justifies it (see the interface). *)

let assert_resilience_at ~ratio ~n ~f =
  if f < 0 || n <= ratio * f then
    invalid_arg
      (Printf.sprintf "Quorum.assert_resilience: need 0 <= f and n > %d*f, got n=%d f=%d"
         ratio n f)

let assert_resilience ~n ~f = assert_resilience_at ~ratio:3 ~n ~f

let max_faults ~ratio ~n = (n - 1) / ratio

let completeness ~n ~f = n - f

let one_honest ~f = f + 1

let echo_quorum ~n ~f = (n + f + 2) / 2 (* ⌈(n+f+1)/2⌉ *)

let ready_amplify ~f = one_honest ~f

let ready_deliver ~f = (2 * f) + 1

let coin_reveal ~f = one_honest ~f

let adopt_support ~f = one_honest ~f

let decide_support ~f = (2 * f) + 1

let decide_unanimity ~f = (3 * f) + 1

let crash_decide ~f = one_honest ~f

let strict_majority q = (q / 2) + 1

let faulty_majority ~n ~f = ((n + f) / 2) + 1

let honest_support ~n ~f = n - (2 * f)

let majority_possible ~q = (q + 1) / 2

let checkpoint_stable ~f = (2 * f) + 1

let transfer_vouch ~f = f + 1
