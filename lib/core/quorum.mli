(** Centralized quorum arithmetic for every protocol in [lib/core].

    Bracha-style protocols are correct only because each threshold is
    exactly right under the resilience assumption [n > 3f]: the echo
    quorum must guarantee honest intersection, the ready thresholds
    must chain amplification into totality, and the validation layer
    must mirror the consensus rules bit-for-bit.  Scattering this
    arithmetic across modules is how real implementations acquire
    off-by-one safety bugs, so every threshold lives here under a
    documented name and the [abc_lint] quorum rule flags raw [f + 1],
    [2 * f + 1], [n - f] (and friends) in protocol modules that bypass
    this module.

    Every function returns a {e minimum count}: a rule becomes enabled
    once the number of distinct supporting nodes is [>=] the returned
    value (never [>] — strict comparisons are rewritten as [>=] of
    [bound + 1] so callers compare uniformly). *)

val assert_resilience : n:int -> f:int -> unit
(** [assert_resilience ~n ~f] raises [Invalid_argument] unless
    [0 <= f] and [n > 3f] — Bracha's bound.  Call at instance
    construction so no protocol state machine exists outside its
    resilience envelope. *)

val assert_resilience_at : ratio:int -> n:int -> f:int -> unit
(** Like {!assert_resilience} with an explicit bound [n > ratio * f]:
    Turpin-Coan passes [~ratio:4], Rabin's dealer coin [~ratio:1]
    (any minority of withholders can be tolerated), and Ben-Or
    [~ratio:2] — a deliberate floor below its true Byzantine bound
    [n > 5f] so the resilience-sweep experiments (E2) can drive it
    past the bound and measure the failures. *)

val max_faults : ratio:int -> n:int -> int
(** Largest [f] with [n > ratio * f], i.e. [(n - 1) / ratio]. *)

val completeness : n:int -> f:int -> int
(** [n - f] — the completeness quorum: the most messages per slot a
    node may await without risking a forever-block ([f] senders may
    stay silent), and enough that any two such quorums share at least
    [n - 2f >= f + 1] nodes. *)

val one_honest : f:int -> int
(** [f + 1] — any set of this many distinct nodes contains at least
    one honest node.  The generic form of {!ready_amplify},
    {!coin_reveal}, {!adopt_support} and {!crash_decide}; prefer the
    protocol-specific name where one applies. *)

val echo_quorum : n:int -> f:int -> int
(** [⌈(n + f + 1) / 2⌉] — echoes required before sending [ready].
    Two echo quorums overlap in more than [f] nodes, hence in an
    honest node, so no two honest nodes ready different values. *)

val ready_amplify : f:int -> int
(** [f + 1] — readies that let a node relay [ready] without having
    seen an echo quorum itself: at least one sender is honest, so some
    honest node did see the quorum. *)

val ready_deliver : f:int -> int
(** [2f + 1] — readies required to deliver: at least [f + 1] are
    honest, so every honest node eventually crosses {!ready_amplify}
    and delivery is total. *)

val coin_reveal : f:int -> int
(** [f + 1] — verified Shamir shares required to reconstruct a round
    coin; Byzantine nodes can withhold their shares but any [f + 1]
    honest reveals suffice. *)

val adopt_support : f:int -> int
(** [f + 1] — matching votes that force a node to adopt the value:
    at least one honest node backs it, so adoption preserves
    validity. *)

val decide_support : f:int -> int
(** [2f + 1] — matching decide-flagged votes required to decide
    (Bracha step 3): every other honest node then sees at least
    [f + 1] of them next round and adopts, locking the value. *)

val decide_unanimity : f:int -> int
(** [3f + 1] — Ben-Or's Byzantine direct-decide threshold: so many
    matching proposals that even after discarding [f] forgeries,
    [2f + 1] honest nodes hold the value. *)

val crash_decide : f:int -> int
(** [f + 1] — decide threshold under crash faults, where any received
    vote is genuine and one surviving witness suffices. *)

val strict_majority : int -> int
(** [strict_majority q = q / 2 + 1] — the least count strictly greater
    than half of [q]. *)

val faulty_majority : n:int -> f:int -> int
(** [(n + f) / 2 + 1] — the least count strictly greater than
    [(n + f) / 2]: a majority large enough to survive [f] faulty votes
    (Ben-Or's report-phase majority). *)

val honest_support : n:int -> f:int -> int
(** [n - 2f] — within a {!completeness} quorum, a value backed by this
    many entries is backed by at least [n - 3f >= 1] honest nodes, and
    at most one value can reach it (Turpin-Coan's candidate
    threshold). *)

val majority_possible : q:int -> int
(** [(q + 1) / 2] — the least count that makes a value a possible
    strict majority of {e some} [q]-subset of the votes seen so far
    (the validation layer's justification bound). *)

val checkpoint_stable : f:int -> int
(** [2f + 1] — matching checkpoint digests that make a checkpoint
    {e stable} (PBFT §4.4): at least [f + 1] are honest, so every
    honest node can eventually collect a vouching set for it and
    instances below the checkpoint can be garbage-collected without
    losing the only copy of a committed prefix. *)

val transfer_vouch : f:int -> int
(** [f + 1] — matching state-transfer responses required before a
    recovering node installs a snapshot: at least one sender is honest,
    so the snapshot extends a genuinely committed log prefix. *)
