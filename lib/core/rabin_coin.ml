[@@@abc.resilience "n>1f"]

open Import

type t = { n : int; f : int; seed : int }

let create ~n ~f ~seed =
  (* ratio 1: the dealer coin only needs f < n — any set of f
     withholders leaves enough honest reveals. *)
  Quorum.assert_resilience_at ~ratio:1 ~n ~f;
  { n; f; seed }

let threshold t = Quorum.coin_reveal ~f:t.f

(* The dealer's per-round polynomial, deterministic in (seed, round):
   coefficients are drawn from a stream keyed by both, so shares can be
   recomputed anywhere without storing dealer state. *)
let coefficients t ~round =
  let rng =
    Stream.split (Stream.root ~seed:t.seed) ~label:(0x5EED + round)
  in
  List.init (threshold t) (fun _ -> Gf.random rng)

let share t ~round ~node =
  let x = Node_id.to_int node + 1 in
  { Shamir.x; y = Shamir.evaluate ~coefficients:(coefficients t ~round) ~x }

let verify t ~round ~node (claimed : Shamir.share) =
  let expected = share t ~round ~node in
  claimed.Shamir.x = expected.Shamir.x
  && Gf.equal claimed.Shamir.y expected.Shamir.y

let secret_to_value secret = Value.of_int (Gf.to_int secret land 1)

let reconstruct t shares =
  assert (List.length shares >= threshold t);
  secret_to_value (Shamir.reconstruct shares)

let coin_value t ~round =
  match coefficients t ~round with
  | secret :: _ -> secret_to_value secret
  | [] -> assert false
