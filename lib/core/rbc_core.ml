[@@@abc.resilience "n>3f"]

open Import

module Make (V : Value.PAYLOAD) = struct
  type event = Initial of V.t | Echo of V.t | Ready of V.t

  module Value_map = Map.Make (V)

  type t = {
    n : int;
    f : int;
    sender : Node_id.t;
    initial_seen : bool;
    echoed : bool;
    readied : bool;
    delivered : V.t option;
    echoes : (int * Node_id.Set.t) Value_map.t;
    readies : (int * Node_id.Set.t) Value_map.t;
  }

  let create ~n ~f ~sender =
    Quorum.assert_resilience ~n ~f;
    {
      n;
      f;
      sender;
      initial_seen = false;
      echoed = false;
      readied = false;
      delivered = None;
      echoes = Value_map.empty;
      readies = Value_map.empty;
    }

  let delivered t = t.delivered

  let echoed t = t.echoed

  let readied t = t.readied

  (* Thin re-exports kept for the public interface; the formulas and
     their intersection arguments live in [Quorum]. *)
  let echo_threshold ~n ~f = Quorum.echo_quorum ~n ~f

  let ready_amplify_threshold ~f = Quorum.ready_amplify ~f

  let deliver_threshold ~f = Quorum.ready_deliver ~f

  (* Each per-value entry carries its cardinality so quorum checks are
     a map lookup plus an int read — never a set walk (the set itself
     is kept only for sender deduplication). *)
  let support map v =
    match Value_map.find_opt v map with
    | Some (count, _) -> count
    | None -> 0

  let note map v src =
    match Value_map.find_opt v map with
    | Some (count, nodes) ->
      if Node_id.Set.mem src nodes then map
      else Value_map.add v (count + 1, Node_id.Set.add src nodes) map
    | None -> Value_map.add v (1, Node_id.Set.singleton src) map

  (* After any counter moves, fire whichever of the two send rules and
     the delivery rule have newly become enabled.  Each rule fires at
     most once per instance, guarded by the [echoed] / [readied] /
     [delivered] latches. *)
  let progress ~(sink : Event.sink) t v =
    let sends = ref [] in
    let t =
      if
        (not t.readied)
        && (support t.echoes v >= echo_threshold ~n:t.n ~f:t.f
            || support t.readies v >= ready_amplify_threshold ~f:t.f)
      then begin
        if sink.Event.enabled then begin
          let echoes = support t.echoes v in
          if echoes >= echo_threshold ~n:t.n ~f:t.f then
            sink.Event.emit
              (Event.make
                 (Event.Quorum
                    {
                      quorum = "echo";
                      count = echoes;
                      threshold = echo_threshold ~n:t.n ~f:t.f;
                    }))
          else
            sink.Event.emit
              (Event.make
                 (Event.Quorum
                    {
                      quorum = "ready-amplify";
                      count = support t.readies v;
                      threshold = ready_amplify_threshold ~f:t.f;
                    }))
        end;
        sends := Ready v :: !sends;
        { t with readied = true }
      end
      else t
    in
    let t, delivery =
      if t.delivered = None && support t.readies v >= deliver_threshold ~f:t.f
      then begin
        if sink.Event.enabled then
          sink.Event.emit
            (Event.make
               (Event.Quorum
                  {
                    quorum = "ready";
                    count = support t.readies v;
                    threshold = deliver_threshold ~f:t.f;
                  }));
        ({ t with delivered = Some v }, Some v)
      end
      else (t, None)
    in
    (t, List.rev !sends, delivery)

  let handle ?(sink = Event.null_sink) t ~src event =
    match event with
    | Initial v ->
      (* Only the designated sender's first Initial counts; an echo is
         sent exactly once even if the sender equivocates. *)
      if (not (Node_id.equal src t.sender)) || t.initial_seen then (t, [], None)
      else begin
        let t = { t with initial_seen = true } in
        if t.echoed then (t, [], None)
        else ({ t with echoed = true }, [ Echo v ], None)
      end
    | Echo v ->
      let t = { t with echoes = note t.echoes v src } in
      progress ~sink t v
    | Ready v ->
      let t = { t with readies = note t.readies v src } in
      progress ~sink t v

  let pp_event ppf = function
    | Initial v -> Fmt.pf ppf "initial(%a)" V.pp v
    | Echo v -> Fmt.pf ppf "echo(%a)" V.pp v
    | Ready v -> Fmt.pf ppf "ready(%a)" V.pp v

  let event_label = function
    | Initial _ -> "initial"
    | Echo _ -> "echo"
    | Ready _ -> "ready"

  (* Every phase of Bracha's RBC re-sends the full payload — the
     O(n·|m|) per-node cost the erasure-coded variant attacks. *)
  let event_bytes = function
    | Initial v | Echo v | Ready v -> Protocol.Wire_size.tag + V.bytes v
end
