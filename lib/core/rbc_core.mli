open Import

(** Bracha's reliable broadcast — pure instance state machine.

    This is the heart of the PODC 1984 construction.  One instance
    disseminates a single payload from a designated sender among [n]
    nodes of which at most [f < n/3] are Byzantine, over an
    asynchronous authenticated network, guaranteeing:

    - {b Validity}: if the sender is honest and broadcasts [v], every
      honest node eventually delivers [v];
    - {b Agreement}: no two honest nodes deliver different payloads;
    - {b Totality}: if any honest node delivers, every honest node
      eventually delivers.

    The three-phase echo protocol: the sender broadcasts
    [Initial v]; on first [Initial v] a node broadcasts [Echo v]; on
    [⌈(n+f+1)/2⌉] echoes for [v] {e or} [f+1] readies for [v] a node
    broadcasts [Ready v] (once); on [2f+1] readies for [v] it delivers
    [v].

    The module is a {e pure} state machine (no I/O, no randomness): the
    caller feeds attributed events and transmits the returned events to
    all nodes.  Both the standalone {!Bracha_rbc} protocol and the
    consensus multiplexer reuse it. *)

module Make (V : Value.PAYLOAD) : sig
  type event = Initial of V.t | Echo of V.t | Ready of V.t

  type t
  (** Immutable instance state for one (sender, payload slot). *)

  val create : n:int -> f:int -> sender:Node_id.t -> t
  (** [create ~n ~f ~sender] is the starting state of an instance whose
      designated sender is [sender].  Requires [n > 3 * f]. *)

  val handle :
    ?sink:Event.sink -> t -> src:Node_id.t -> event -> t * event list * V.t option
  (** [handle t ~src event] processes the delivery of [event] from node
      [src].  Returns the new state, the events this node must now
      broadcast to every node, and [Some v] the first time the payload
      is delivered.  Duplicate events from the same source are
      deduplicated by the per-value sender sets; [Initial] events from
      any node other than the designated sender are ignored.

      [?sink] (default {!Event.null_sink}) receives one
      {!Event.kind.Quorum} event each time a threshold rule fires:
      quorum ["echo"] or ["ready-amplify"] when the ready latch sets,
      quorum ["ready"] when the instance delivers. *)

  val delivered : t -> V.t option
  (** [delivered t] is the delivered payload, if any. *)

  val echoed : t -> bool
  (** Whether this node has already sent its echo. *)

  val readied : t -> bool
  (** Whether this node has already sent its ready. *)

  val echo_threshold : n:int -> f:int -> int
  (** [⌈(n+f+1)/2⌉]: echoes needed to turn ready.  Strictly more than
      [(n+f)/2], so two different payloads can never both reach it
      (honest nodes echo once, Byzantine nodes count at most [f]
      twice). *)

  val ready_amplify_threshold : f:int -> int
  (** [f+1]: readies that prove at least one honest ready, letting
      slow nodes join without having seen enough echoes. *)

  val deliver_threshold : f:int -> int
  (** [2f+1]: readies needed to deliver; guarantees [f+1] honest
      readies survive subtraction of Byzantine ones, which re-amplifies
      to eventual delivery everywhere (totality). *)

  val pp_event : event Fmt.t
  val event_label : event -> string

  val event_bytes : event -> int
  (** Wire size of an event: a tag plus the full payload — every phase
      of Bracha's protocol re-sends the whole message. *)
end
