module Rbc = Rbc_core.Make (Consensus_msg.Payload)

type wire = { key : Consensus_msg.Key.t; event : Rbc.event }

type t = { n : int; f : int; live : Rbc.t Consensus_msg.Key.Map.t }

let create ~n ~f = { n; f; live = Consensus_msg.Key.Map.empty }

let broadcast_own key payload = { key; event = Rbc.Initial payload }

let instance t (key : Consensus_msg.Key.t) =
  match Consensus_msg.Key.Map.find_opt key t.live with
  | Some inst -> inst
  | None -> Rbc.create ~n:t.n ~f:t.f ~sender:key.origin

let handle ?(sink = Abc_sim.Event.null_sink) t ~src wire =
  (* Scope emitted events by the instance key; the label is only built
     when a consumer is attached. *)
  let sink =
    if sink.Abc_sim.Event.enabled then
      Abc_sim.Event.scoped sink
        ~instance:(Fmt.str "%a" Consensus_msg.Key.pp wire.key)
    else sink
  in
  let inst = instance t wire.key in
  let inst, events, delivered = Rbc.handle ~sink inst ~src wire.event in
  let t = { t with live = Consensus_msg.Key.Map.add wire.key inst t.live } in
  let outgoing = List.map (fun event -> { key = wire.key; event }) events in
  let delivery = Option.map (fun payload -> (wire.key, payload)) delivered in
  (t, outgoing, delivery)

let instances t = Consensus_msg.Key.Map.cardinal t.live

let pp_wire ppf { key; event } =
  Fmt.pf ppf "%a:%a" Consensus_msg.Key.pp key Rbc.pp_event event

let wire_label { event; _ } = Rbc.event_label event

let wire_bytes { key; event } =
  Consensus_msg.Key.bytes key + Rbc.event_bytes event
