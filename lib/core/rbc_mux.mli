open Import

(** Multiplexer for many concurrent reliable-broadcast instances.

    Bracha's consensus runs one RBC instance per (originator, round,
    step).  The multiplexer routes each wire message to its instance —
    creating instances lazily — and reports at most one delivery per
    instance.  The instance key travels on the wire, so a Byzantine
    node cannot fold two instances together or claim someone else's
    slot as sender (the engine attributes the true source, and
    [Initial] events from non-originators are dropped by the
    instance). *)

module Rbc : module type of Rbc_core.Make (Consensus_msg.Payload)
(** The underlying reliable-broadcast instances, specialized to
    consensus payloads. *)

type wire = { key : Consensus_msg.Key.t; event : Rbc.event }
(** One consensus wire message: an RBC event within instance [key]. *)

type t
(** Immutable multiplexer state for one node. *)

val create : n:int -> f:int -> t
(** [create ~n ~f] has no live instances yet. *)

val broadcast_own : Consensus_msg.Key.t -> Consensus_msg.Payload.t -> wire
(** [broadcast_own key payload] is the [Initial] wire message a node
    broadcasts to start its own instance [key]. *)

val handle :
  ?sink:Event.sink ->
  t ->
  src:Node_id.t ->
  wire ->
  t * wire list * (Consensus_msg.Key.t * Consensus_msg.Payload.t) option
(** [handle t ~src wire] routes [wire] into its instance.  Returns the
    new state, wire messages to broadcast (echoes/readies of the same
    instance), and the instance's delivery when it completes.  Quorum
    events from the instance flow to [?sink], scoped by the rendered
    instance key. *)

val instances : t -> int
(** Number of live instances (for resource accounting/tests). *)

val pp_wire : wire Fmt.t
val wire_label : wire -> string

val wire_bytes : wire -> int
(** Wire size of a multiplexed message: instance key plus event. *)
