(* Reed-Solomon erasure coding over GF(2^31 - 1), plus the Merkle
   commitment the coded broadcast uses to bind fragments together.

   Layout: the payload string is packed into field symbols at
   [symbol_bytes] payload bytes per symbol (3 bytes < 2^31 - 1, so
   packing never overflows the field), then striped into blocks of [k]
   symbols.  Each block defines the unique degree < k polynomial
   passing through (1, s_1) ... (k, s_k); fragment [i] carries the
   evaluations of every block's polynomial at x = i + 1.  Fragments
   0 .. k-1 therefore reproduce the data symbols verbatim (the code is
   systematic) and any k distinct fragments reconstruct every block by
   Lagrange interpolation. *)

open Import

let symbol_bytes = 3

(* Wire cost of one symbol: field elements are 31-bit, so they travel
   as 4-byte words even though each carries only 3 payload bytes. *)
let symbol_wire_bytes = 4

type fragment = { index : int; data : Gf.t array }

let fragment_wire_bytes fragment =
  Protocol.Wire_size.int + (symbol_wire_bytes * Array.length fragment.data)

(* ----------------------------------------------------------------- *)
(* Packing                                                           *)
(* ----------------------------------------------------------------- *)

let symbols_of_string payload =
  let len = String.length payload in
  let count = (len + symbol_bytes - 1) / symbol_bytes in
  Array.init count (fun s ->
      let acc = ref 0 in
      for b = 0 to symbol_bytes - 1 do
        let pos = (s * symbol_bytes) + b in
        let byte = if pos < len then Char.code payload.[pos] else 0 in
        acc := (!acc lsl 8) lor byte
      done;
      Gf.of_int !acc)

let string_of_symbols symbols ~len =
  let bytes = Bytes.make len '\000' in
  Array.iteri
    (fun s symbol ->
      let v = Gf.to_int symbol in
      for b = 0 to symbol_bytes - 1 do
        let pos = (s * symbol_bytes) + b in
        if pos < len then
          Bytes.set bytes pos
            (Char.chr ((v lsr (8 * (symbol_bytes - 1 - b))) land 0xFF))
      done)
    symbols;
  Bytes.to_string bytes

(* ----------------------------------------------------------------- *)
(* Interpolation                                                     *)
(* ----------------------------------------------------------------- *)

(* Lagrange weights for evaluating at [x] the unique degree < k
   polynomial through the points with abscissae [xs]:
   w_i = prod_{j <> i} (x - x_j) / (x_i - x_j).  The weights depend
   only on the abscissae, so they are computed once per (fragment-set,
   target) pair and shared across every block — evaluation is then a
   dot product per block. *)
let lagrange_weights ~xs ~x =
  let k = Array.length xs in
  let xg = Gf.of_int x in
  Array.init k (fun i ->
      let xi = Gf.of_int xs.(i) in
      let w = ref Gf.one in
      for j = 0 to k - 1 do
        if j <> i then begin
          let xj = Gf.of_int xs.(j) in
          w := Gf.mul !w (Gf.div (Gf.sub xg xj) (Gf.sub xi xj))
        end
      done;
      !w)

let dot weights k get =
  let acc = ref Gf.zero in
  for i = 0 to k - 1 do
    acc := Gf.add !acc (Gf.mul weights.(i) (get i))
  done;
  !acc

(* ----------------------------------------------------------------- *)
(* Encode / decode                                                   *)
(* ----------------------------------------------------------------- *)

let check_params ~k ~n =
  if k < 1 then invalid_arg "Rs: need k >= 1";
  if n < k then invalid_arg "Rs: need n >= k";
  (* Abscissae 1..n must be distinct non-zero field elements. *)
  if n >= Gf.prime then invalid_arg "Rs: n too large for the field"

let block_count ~k symbols = (Array.length symbols + k - 1) / k

(* Data symbol [b * k + i] is the value of block [b]'s polynomial at
   x = i + 1; missing symbols of the final partial block are zero. *)
let data_symbol symbols ~k ~block i =
  let pos = (block * k) + i in
  if pos < Array.length symbols then symbols.(pos) else Gf.zero

let encode ~k ~n payload =
  check_params ~k ~n;
  let symbols = symbols_of_string payload in
  let blocks = block_count ~k symbols in
  let xs = Array.init k (fun i -> i + 1) in
  Array.init n (fun fi ->
      let x = fi + 1 in
      let data =
        if fi < k then
          (* Systematic prefix: evaluation at x = fi + 1 is data symbol
             [fi] of each block. *)
          Array.init blocks (fun b -> data_symbol symbols ~k ~block:b fi)
        else begin
          let weights = lagrange_weights ~xs ~x in
          Array.init blocks (fun b ->
              dot weights k (fun i -> data_symbol symbols ~k ~block:b i))
        end
      in
      { index = fi; data })

let decode ~k ~len fragments =
  check_params ~k ~n:k;
  let fragments =
    List.sort_uniq (fun a b -> Int.compare a.index b.index) fragments
  in
  if List.length fragments < k then
    invalid_arg "Rs.decode: not enough distinct fragments";
  let chosen = Array.of_list (List.filteri (fun i _ -> i < k) fragments) in
  let blocks =
    match Array.length chosen with
    | 0 -> 0
    | _ -> Array.length chosen.(0).data
  in
  Array.iter
    (fun fragment ->
      if Array.length fragment.data <> blocks then
        invalid_arg "Rs.decode: fragments of unequal length")
    chosen;
  if blocks * k * symbol_bytes < len then
    invalid_arg "Rs.decode: fragments too short for the claimed length";
  let xs = Array.map (fun fragment -> fragment.index + 1) chosen in
  (* One weight vector per data position, shared by every block. *)
  let weights = Array.init k (fun i -> lagrange_weights ~xs ~x:(i + 1)) in
  let symbols =
    Array.init (blocks * k) (fun pos ->
        let b = pos / k in
        let i = pos mod k in
        dot weights.(i) k (fun j -> chosen.(j).data.(b)))
  in
  string_of_symbols symbols ~len

(* ----------------------------------------------------------------- *)
(* Merkle commitment                                                 *)
(* ----------------------------------------------------------------- *)

module Merkle = struct
  type root = int

  type branch = int list

  (* Modeled digest width: a production system would use a 256-bit
     hash; the simulator charges that size on the wire while computing
     a cheap 62-bit mix internally.  [hash_bytes] is the lambda in the
     O(|m|/n + lambda log n) per-link bound. *)
  let hash_bytes = 32

  (* splitmix-style finalizer with multipliers that fit OCaml's 63-bit
     native int, so hashing is deterministic across runs and
     platforms. *)
  let mix h x =
    let h = (h lxor x) * 0x2545F4914F6CDD1D in
    let h = (h lxor (h lsr 30)) * 0x369DEA0F31A53F85 in
    let h = (h lxor (h lsr 27)) * 0x27D4EB2F165667C5 in
    h lxor (h lsr 31)

  let leaf_hash ~len fragment =
    let h = ref (mix 0x1EAF (Array.length fragment.data)) in
    h := mix !h len;
    h := mix !h fragment.index;
    Array.iter (fun symbol -> h := mix !h (Gf.to_int symbol)) fragment.data;
    !h

  let node_hash left right = mix (mix 0x0DDE left) right

  (* Leaves are padded to the next power of two with a fixed empty
     hash so every branch has the same depth. *)
  let empty_leaf = mix 0xE117 0

  let rec pow2_at_least x = if x <= 1 then 1 else 2 * pow2_at_least ((x + 1) / 2)

  let commit ~len fragments =
    let nleaves = Array.length fragments in
    if nleaves = 0 then invalid_arg "Rs.Merkle.commit: no fragments";
    let width = pow2_at_least nleaves in
    let level =
      Array.init width (fun i ->
          if i < nleaves then leaf_hash ~len fragments.(i) else empty_leaf)
    in
    (* levels.(0) = leaves, last = [| root |]; branches read one
       sibling per level. *)
    let levels = ref [ level ] in
    let current = ref level in
    while Array.length !current > 1 do
      let next =
        Array.init
          (Array.length !current / 2)
          (fun i -> node_hash !current.(2 * i) !current.((2 * i) + 1))
      in
      levels := next :: !levels;
      current := next
    done;
    let root = !current.(0) in
    let levels = List.rev !levels in
    let branch_of index =
      let rec collect levels index acc =
        match levels with
        | [] | [ _ ] -> List.rev acc
        | level :: rest ->
          let sibling = level.(index lxor 1) in
          collect rest (index / 2) (sibling :: acc)
      in
      collect levels index []
    in
    (root, Array.init nleaves (fun i -> branch_of i))

  let verify ~root ~len ~index branch fragment =
    fragment.index = index
    && begin
         let h = ref (leaf_hash ~len fragment) in
         let pos = ref index in
         List.iter
           (fun sibling ->
             h :=
               (if !pos land 1 = 0 then node_hash !h sibling
                else node_hash sibling !h);
             pos := !pos / 2)
           branch;
         !h = root
       end

  let root_wire_bytes = hash_bytes

  let branch_wire_bytes branch = hash_bytes * List.length branch
end
