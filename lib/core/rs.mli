(** Reed–Solomon erasure coding over GF(2³¹ − 1).

    Paper source: the dispersal layer of AVID (Cachin–Tessaro, DSN
    2005) as used by HoneyBadgerBFT (Miller et al., CCS 2016): an
    [(n, k)] maximum-distance-separable code lets a broadcast sender
    ship each node an [O(|m|/k)]-sized fragment instead of the whole
    payload, and any [k] fragments reconstruct it.  {!Coded_rbc}
    instantiates this with [k = n − 2f].

    The code is systematic (fragments [0 .. k−1] carry the payload
    verbatim) and works over the repo's existing {!Gf} field: payload
    bytes are packed 3 per symbol, each block of [k] symbols defines a
    degree < [k] polynomial, and fragment [i] holds the evaluations at
    [x = i + 1].  Decoding is Lagrange interpolation with per-target
    weight vectors precomputed once and shared across blocks.

    The {!Merkle} submodule provides the commitment binding a
    fragment set to a single root, so receivers can verify a relayed
    fragment without seeing the rest.  Hashes are modeled: a cheap
    deterministic integer mix stands in for a 256-bit hash, but wire
    accounting charges the full {!Merkle.hash_bytes} per digest. *)

type fragment = { index : int; data : Gf.t array }
(** Fragment [index] of an encoding: one {!Gf} symbol per block. *)

val symbol_bytes : int
(** Payload bytes packed per field symbol (3, since 2²⁴ < 2³¹ − 1). *)

val symbol_wire_bytes : int
(** Modeled wire bytes per symbol (4: a 31-bit element travels as a
    word, giving the code a 4/3 expansion over raw payload bytes). *)

val encode : k:int -> n:int -> string -> fragment array
(** [encode ~k ~n payload] is the [n] fragments of the [(n, k)]
    encoding of [payload].  Any [k] of them reconstruct the payload.
    Raises [Invalid_argument] unless [1 <= k <= n < Gf.prime]. *)

val decode : k:int -> len:int -> fragment list -> string
(** [decode ~k ~len fragments] reconstructs the original payload of
    byte length [len] from any [k] fragments with distinct indices
    (duplicates are dropped; extras beyond [k] are ignored).  Raises
    [Invalid_argument] when fewer than [k] distinct indices are given,
    when fragments disagree on length, or when they are too short to
    hold [len] bytes. *)

val fragment_wire_bytes : fragment -> int
(** Modeled wire size of a bare fragment: its index plus
    {!symbol_wire_bytes} per symbol (Merkle proof charged separately,
    see {!Merkle.branch_wire_bytes}). *)

(** Merkle commitment over a fragment set.

    The leaf for fragment [i] hashes [(index, payload length,
    symbols)]; leaves are padded to a power of two so every
    authentication branch has the same [⌈log₂ n⌉] depth — this is the
    [λ log n] term in coded RBC's per-link bit complexity. *)
module Merkle : sig
  type root = int
  (** Modeled digest (see [hash_bytes] for the charged wire size). *)

  type branch = int list
  (** Authentication path, leaf-sibling first. *)

  val hash_bytes : int
  (** Wire bytes charged per digest (32, modeling a 256-bit hash). *)

  val commit : len:int -> fragment array -> root * branch array
  (** [commit ~len fragments] is the root committing to the fragment
      array (in index order) for a payload of [len] bytes, plus one
      authentication branch per fragment.  Raises [Invalid_argument]
      on an empty array. *)

  val verify : root:root -> len:int -> index:int -> branch -> fragment -> bool
  (** [verify ~root ~len ~index branch fragment] checks that
      [fragment] is leaf [index] of the set committed to by [root] for
      a [len]-byte payload. *)

  val root_wire_bytes : int
  (** Modeled wire size of a root ([hash_bytes]). *)

  val branch_wire_bytes : branch -> int
  (** Modeled wire size of a branch ([hash_bytes] per level). *)
end
