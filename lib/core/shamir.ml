type share = { x : int; y : Gf.t }

let evaluate ~coefficients ~x =
  let xg = Gf.of_int x in
  List.fold_right (fun c acc -> Gf.add c (Gf.mul acc xg)) coefficients Gf.zero

let deal ~rng ~secret ~threshold ~shares =
  if threshold < 1 || threshold > shares then
    invalid_arg "Shamir.deal: need 1 <= threshold <= shares";
  let coefficients =
    secret :: List.init (threshold - 1) (fun _ -> Gf.random rng)
  in
  List.init shares (fun i ->
      let x = i + 1 in
      { x; y = evaluate ~coefficients ~x })

let reconstruct shares =
  (match shares with [] -> invalid_arg "Shamir.reconstruct: no shares" | _ -> ());
  let points = List.map (fun s -> (Gf.of_int s.x, s.y)) shares in
  let distinct =
    List.length (List.sort_uniq (fun (a, _) (b, _) -> Gf.compare a b) points)
  in
  if distinct <> List.length points then
    invalid_arg "Shamir.reconstruct: duplicate evaluation points";
  (* Lagrange interpolation at x = 0:
     secret = Σᵢ yᵢ · Πⱼ≠ᵢ xⱼ / (xⱼ - xᵢ) *)
  List.fold_left
    (fun acc (xi, yi) ->
      let weight =
        List.fold_left
          (fun w (xj, _) ->
            if Gf.equal xi xj then w
            else Gf.mul w (Gf.div xj (Gf.sub xj xi)))
          Gf.one points
      in
      Gf.add acc (Gf.mul yi weight))
    Gf.zero points
