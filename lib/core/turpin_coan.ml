[@@@abc.resilience "n>4f"]

open Import

module Make (V : Value.PAYLOAD) = struct
  module Value_map = Map.Make (V)

  type input = { value : V.t; coin : Coin.t }

  type outcome = Agreed of V.t | Fallback

  type output = outcome

  type msg = Step1 of V.t | Step2 of V.t option | Ba of Rbc_mux.wire

  type state = {
    n : int;
    f : int;
    step1 : V.t Node_id.Map.t; (* sender -> proposed value *)
    step1_done : bool;
    step2 : V.t option Node_id.Map.t; (* sender -> candidate *)
    step2_done : bool;
    z : V.t option; (* the unique surviving candidate, if seen *)
    ba : Ba_instance.t;
    ba_decision : Value.t option;
    emitted : bool;
  }

  let name = "turpin-coan"

  let max_faults ~n = Quorum.max_faults ~ratio:4 ~n

  let quorum state = Quorum.completeness ~n:state.n ~f:state.f

  (* The value supported by at least [need] of the recorded entries;
     unique when it exists (see interface comment). *)
  let supported ~need entries =
    let tally =
      List.fold_left
        (fun tally v ->
          Value_map.update v
            (fun c -> Some (1 + Option.value c ~default:0))
            tally)
        Value_map.empty entries
    in
    Value_map.fold
      (fun v count acc -> if count >= need then Some v else acc)
      tally None

  let candidates state =
    Node_id.Map.fold (fun _ v acc -> v :: acc) state.step1 []

  let votes state =
    Node_id.Map.fold
      (fun _ c acc -> match c with Some v -> v :: acc | None -> acc)
      state.step2 []

  let wrap_ba wires = List.map (fun w -> Protocol.Broadcast (Ba w)) wires

  (* Events of the embedded binary-agreement stage, scoped under
     "ba". *)
  let ba_sink (sink : Event.sink) =
    if sink.Event.enabled then Event.scoped sink ~instance:"ba" else sink

  (* Fire the step transitions and the output rule that have become
     enabled. *)
  let settle state ~rng ~(sink : Event.sink) =
    let actions = ref [] in
    let state =
      if (not state.step1_done) && Node_id.Map.cardinal state.step1 >= quorum state
      then begin
        if sink.Event.enabled then
          sink.Event.emit
            (Event.make
               (Event.Quorum
                  {
                    quorum = "tc-step1";
                    count = Node_id.Map.cardinal state.step1;
                    threshold = quorum state;
                  }));
        let candidate =
          supported ~need:(Quorum.honest_support ~n:state.n ~f:state.f)
            (candidates state)
        in
        actions := Protocol.Broadcast (Step2 candidate) :: !actions;
        { state with step1_done = true }
      end
      else state
    in
    let state =
      if (not state.step2_done) && Node_id.Map.cardinal state.step2 >= quorum state
      then begin
        if sink.Event.enabled then
          sink.Event.emit
            (Event.make
               (Event.Quorum
                  {
                    quorum = "tc-step2";
                    count = Node_id.Map.cardinal state.step2;
                    threshold = quorum state;
                  }));
        let winner =
          supported ~need:(Quorum.honest_support ~n:state.n ~f:state.f)
            (votes state)
        in
        let vote = match winner with Some _ -> Value.One | None -> Value.Zero in
        let ba, wires, events =
          Ba_instance.start ~sink:(ba_sink sink) state.ba ~rng ~input:vote
        in
        actions := wrap_ba wires @ !actions;
        let ba_decision =
          List.fold_left
            (fun _ (Ba_instance.Decided d) -> Some d.Decision.value)
            state.ba_decision events
        in
        { state with step2_done = true; z = winner; ba; ba_decision }
      end
      else state
    in
    let state, outputs =
      if state.emitted then (state, [])
      else begin
        match state.ba_decision with
        | Some Value.Zero -> ({ state with emitted = true }, [ Fallback ])
        | Some Value.One -> (
          match state.z with
          | Some w -> ({ state with emitted = true }, [ Agreed w ])
          | None -> (
            (* Recovery: f+1 matching step-2 candidates identify the
               winner even through Byzantine noise. *)
            match supported ~need:(Quorum.one_honest ~f:state.f) (votes state) with
            | Some w -> ({ state with emitted = true }, [ Agreed w ])
            | None -> (state, [])))
        | None -> (state, [])
      end
    in
    (state, List.rev !actions, outputs)

  let initial ctx (input : input) =
    let { Protocol.Context.me; n; f; rng = _; sink = _ } = ctx in
    Quorum.assert_resilience_at ~ratio:4 ~n ~f;
    let state =
      {
        n;
        f;
        step1 = Node_id.Map.empty;
        step1_done = false;
        step2 = Node_id.Map.empty;
        step2_done = false;
        z = None;
        ba = Ba_instance.create ~n ~f ~me ~coin:input.coin ~validation:true;
        ba_decision = None;
        emitted = false;
      }
    in
    (state, [ Protocol.Broadcast (Step1 input.value) ])

  let on_message ctx state ~src msg =
    let rng = ctx.Protocol.Context.rng in
    let sink = ctx.Protocol.Context.sink in
    let state, ba_actions =
      match msg with
      | Step1 v ->
        if Node_id.Map.mem src state.step1 then (state, [])
        else ({ state with step1 = Node_id.Map.add src v state.step1 }, [])
      | Step2 c ->
        if Node_id.Map.mem src state.step2 then (state, [])
        else ({ state with step2 = Node_id.Map.add src c state.step2 }, [])
      | Ba wire ->
        let ba, wires, events =
          Ba_instance.on_wire ~sink:(ba_sink sink) state.ba ~rng ~src wire
        in
        let ba_decision =
          List.fold_left
            (fun _ (Ba_instance.Decided d) -> Some d.Decision.value)
            state.ba_decision events
        in
        ({ state with ba; ba_decision }, wrap_ba wires)
    in
    let state, actions, outputs = settle state ~rng ~sink in
    (state, ba_actions @ actions, outputs)

  let is_terminal (_ : output) = true
  let on_timeout = Protocol.no_timeout

  let msg_label = function
    | Step1 _ -> "step1"
    | Step2 _ -> "step2"
    | Ba wire -> "ba." ^ Rbc_mux.wire_label wire

  let msg_bytes =
    let open Protocol.Wire_size in
    function
    | Step1 v -> tag + V.bytes v
    | Step2 v -> tag + option V.bytes v
    | Ba wire -> tag + Rbc_mux.wire_bytes wire

  let pp_msg ppf = function
    | Step1 v -> Fmt.pf ppf "step1(%a)" V.pp v
    | Step2 (Some v) -> Fmt.pf ppf "step2(%a)" V.pp v
    | Step2 None -> Fmt.pf ppf "step2(⊥)"
    | Ba wire -> Fmt.pf ppf "ba:%a" Rbc_mux.pp_wire wire

  let pp_output ppf = function
    | Agreed v -> Fmt.pf ppf "agreed(%a)" V.pp v
    | Fallback -> Fmt.string ppf "fallback"

  let inputs ~n ~coin values =
    if Array.length values <> n then
      invalid_arg "Turpin_coan.inputs: values length must equal n";
    Array.map (fun value -> { value; coin }) values
end
