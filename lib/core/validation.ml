[@@@abc.resilience "n>3f"]

open Import
open Consensus_msg

(* Per-(round, step) tally of validated messages.  [c0]/[c1] count all
   messages by value; [d0]/[d1] count only decide-flagged ones. *)
type tally = {
  origins : Node_id.Set.t;
  c0 : int;
  c1 : int;
  d0 : int;
  d1 : int;
}

let empty_tally = { origins = Node_id.Set.empty; c0 = 0; c1 = 0; d0 = 0; d1 = 0 }

module Slot = struct
  type t = int * int (* round, step *)

  let of_vmsg m = (m.round, Step.to_int m.step)

  let compare (r1, s1) (r2, s2) =
    match Int.compare r1 r2 with 0 -> Int.compare s1 s2 | c -> c
end

module Slot_map = Map.Make (Slot)

type t = {
  n : int;
  f : int;
  enabled : bool;
  tallies : tally Slot_map.t;
  buffered : vmsg list; (* not yet justified, oldest first *)
  seen : unit Key.Map.t; (* dedup of accepted submissions *)
}

let create ~n ~f ~enabled =
  Quorum.assert_resilience ~n ~f;
  {
    n;
    f;
    enabled;
    tallies = Slot_map.empty;
    buffered = [];
    seen = Key.Map.empty;
  }

let tally t ~round ~step =
  match Slot_map.find_opt (round, Step.to_int step) t.tallies with
  | Some tl -> tl
  | None -> empty_tally

let count tl v = match v with Value.Zero -> tl.c0 | Value.One -> tl.c1

let dcount tl v = match v with Value.Zero -> tl.d0 | Value.One -> tl.d1

let total tl = tl.c0 + tl.c1

let dtotal tl = tl.d0 + tl.d1

let quorum t = Quorum.completeness ~n:t.n ~f:t.f

(* Majority-possibility threshold: v can be the (tie-tolerant strict)
   majority of some q-subset iff cnt(v) ≥ (q+1)/2 rounded down — see
   the interface comment. *)
let majority_need q = Quorum.majority_possible ~q

let justified t m =
  if t.enabled = false then true
  else begin
    let q = quorum t in
    match m.step with
    | Step.S1 ->
      if m.round = 1 then true
      else begin
        let prev = tally t ~round:(m.round - 1) ~step:Step.S3 in
        let adopt_possible = dcount prev m.value >= Quorum.adopt_support ~f:t.f in
        (* Coin rule: a q-subset containing at most f decide-messages
           exists, so the sender may have flipped to any value. *)
        let non_decide = total prev - dtotal prev in
        let coin_possible =
          total prev >= q && non_decide + min (dtotal prev) t.f >= q
        in
        adopt_possible || coin_possible
      end
    | Step.S2 ->
      let prev = tally t ~round:m.round ~step:Step.S1 in
      total prev >= q && count prev m.value >= majority_need q
    | Step.S3 ->
      if m.decide then begin
        let prev = tally t ~round:m.round ~step:Step.S2 in
        count prev m.value >= Quorum.strict_majority t.n
      end
      else begin
        let s1 = tally t ~round:m.round ~step:Step.S1 in
        let s2 = tally t ~round:m.round ~step:Step.S2 in
        total s2 >= q && total s1 >= q && count s1 m.value >= majority_need q
      end
  end

let record t m =
  let slot = Slot.of_vmsg m in
  let tl =
    match Slot_map.find_opt slot t.tallies with
    | Some tl -> tl
    | None -> empty_tally
  in
  assert (not (Node_id.Set.mem m.origin tl.origins));
  let tl = { tl with origins = Node_id.Set.add m.origin tl.origins } in
  let tl =
    match (m.value, m.decide) with
    | Value.Zero, false -> { tl with c0 = tl.c0 + 1 }
    | Value.One, false -> { tl with c1 = tl.c1 + 1 }
    | Value.Zero, true -> { tl with c0 = tl.c0 + 1; d0 = tl.d0 + 1 }
    | Value.One, true -> { tl with c1 = tl.c1 + 1; d1 = tl.d1 + 1 }
  in
  { t with tallies = Slot_map.add slot tl t.tallies }

(* Validate everything in the buffer that has become justified, until
   no further progress: each acceptance can unlock more. *)
let drain t =
  let rec loop t validated =
    let accepted, still_buffered =
      List.partition (fun m -> justified t m) t.buffered
    in
    match accepted with
    | [] -> (t, List.rev validated)
    | _ ->
      let t =
        List.fold_left record { t with buffered = still_buffered } accepted
      in
      loop t (List.rev_append accepted validated)
  in
  loop t []

let submit t m =
  if Key.Map.mem (key_of_vmsg m) t.seen then (t, [])
  else begin
    let t = { t with seen = Key.Map.add (key_of_vmsg m) () t.seen } in
    if justified t m then begin
      let t = record t m in
      let t, cascaded = drain t in
      (t, m :: cascaded)
    end
    else ({ t with buffered = t.buffered @ [ m ] }, [])
  end

let validated_count t ~round ~step = total (tally t ~round ~step)

let buffered_count t = List.length t.buffered
