type t = Zero | One

let zero = Zero

let one = One

let of_bool b = if b then One else Zero

let to_bool v = v = One

let of_int i = if i = 0 then Zero else One

let to_int = function Zero -> 0 | One -> 1

let negate = function Zero -> One | One -> Zero

let equal a b =
  match (a, b) with Zero, Zero | One, One -> true | Zero, One | One, Zero -> false

let compare a b = Int.compare (to_int a) (to_int b)

let pp ppf v = Fmt.int ppf (to_int v)

let label = "bit"

let bytes (_ : t) = 1

module type PAYLOAD = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t
  val label : string
  val bytes : t -> int
end
