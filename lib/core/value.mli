(** Binary consensus values.

    Bracha's protocol (like Ben-Or's) decides a single bit.  A
    dedicated two-constructor type keeps bit-flipping faults and coin
    flips explicit in protocol code. *)

type t = Zero | One

val zero : t
val one : t

val of_bool : bool -> t
(** [of_bool b] is [One] when [b]. *)

val to_bool : t -> bool
(** [to_bool v] is [v = One]. *)

val of_int : int -> t
(** [of_int i] is [Zero] for 0 and [One] for anything else. *)

val to_int : t -> int
(** [to_int v] is 0 or 1. *)

val negate : t -> t
(** The other value. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val label : string
(** Payload label for message counters ("bit"). *)

val bytes : t -> int
(** Wire size of a bit payload: one byte. *)

(** Payload interface shared by the reliable-broadcast functors: any
    type with decidable equality, a total order (used as map keys), a
    printer and a size estimate can be broadcast. *)
module type PAYLOAD = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t

  val label : string
  (** Short name used in message-kind counters. *)

  val bytes : t -> int
  (** Estimated serialized size in bytes; feeds the byte-level
      bandwidth accounting ({!Abc_net.Protocol.S.msg_bytes}). *)
end
