type t = { jobs : int }

let default_jobs () =
  match Sys.getenv_opt "ABC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  { jobs }

let sequential = { jobs = 1 }

let jobs t = t.jobs

(* The work queue is an index cursor under a mutex: claiming a job is
   [take]'s critical section and nothing else is shared between
   workers — each result lands in its own preallocated slot, so the
   merge needs no synchronization beyond the final joins. *)
let map t count f =
  if count <= 0 then [||]
  else if t.jobs = 1 || count = 1 then Array.init count f
  else begin
    let results : 'a option array = Array.make count None in
    let errors : exn option array = Array.make count None in
    let next = ref 0 in
    let lock = Mutex.create () in
    let take () =
      Mutex.lock lock;
      let i = !next in
      if i < count then incr next;
      Mutex.unlock lock;
      if i < count then Some i else None
    in
    let rec worker () =
      match take () with
      | None -> ()
      | Some i ->
        (match f i with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some e);
        worker ()
    in
    let spawned =
      Array.init (min (t.jobs - 1) (count - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (* Re-raise the failure of the lowest job index, so which error a
       caller sees does not depend on domain scheduling. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some v -> v | None -> assert false (* every index claimed *))
      results
  end

let map_list t f xs =
  let arr = Array.of_list xs in
  Array.to_list (map t (Array.length arr) (fun i -> f arr.(i)))
