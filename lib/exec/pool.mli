(** Domain-parallel job pool with a deterministic merge contract.

    A pool executes a batch of independent, index-identified jobs
    across a fixed number of OCaml 5 domains and merges their results
    into an array ordered by job index.  Because results are keyed by
    index — never by completion order — the merged output is
    byte-identical regardless of the worker count or how the runtime
    schedules the domains.  That is the contract the seed sweeps in
    [bench/], the chaos campaigns and the model checker's branch
    fan-out build on: [jobs = 1] and [jobs = 8] must produce the same
    tables, the same BENCH_*.json and the same golden summaries.

    {2 Job requirements}

    Jobs run concurrently on separate domains, so each job must build
    every piece of mutable state it touches — engine configs, PRNG
    streams, [Trace.t] buffers, [Metrics.t] — inside the job function.
    The simulator is structured for this: {!Abc_net.Engine.Make.run}
    allocates all run state (metrics, clock, sinks, adversary policy)
    per call from the seed, and the only process-global mutable state
    in [lib/sim] is the {!Abc_sim.Table} output configuration, which
    is written once at startup and read only on the main domain (the
    [mutable-global] lint rule keeps it that way).  Jobs must not
    write to shared tables, global refs, or [stdout]; produce a value
    and let the caller render after the merge.

    A job function is called for each index exactly once across all
    workers.  If a job raises, the batch completes (other jobs still
    run) and the exception of the {e lowest} failing index is
    re-raised on the caller's domain — again independent of
    scheduling. *)

type t
(** A pool configuration: a fixed worker count.  Workers are spawned
    per batch and joined before {!map} returns, so a pool value is
    cheap, immutable and safe to share. *)

val default_jobs : unit -> int
(** Worker count used by {!create} when none is given: the [ABC_JOBS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count () - 1], floored at 1. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] is a pool running batches on [max 1 jobs]
    workers; defaults to {!default_jobs}. *)

val sequential : t
(** The one-worker pool: {!map} degenerates to an in-process
    [Array.init]-style loop with no domains spawned — the reference
    against which parallel output is byte-compared. *)

val jobs : t -> int
(** The pool's worker count. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool count f] computes [[| f 0; f 1; ...; f (count - 1) |]].
    With [jobs pool = 1] (or [count <= 1]) jobs run sequentially in
    the calling domain, in index order.  Otherwise [jobs pool - 1]
    worker domains are spawned and the calling domain joins the work:
    each worker repeatedly takes the next unclaimed index from a
    lock-protected queue and stores [f i] at slot [i] of a
    preallocated result array.  Results are merged by index, so the
    returned array is identical for every worker count. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs] is [List.map f xs] with the applications of
    [f] distributed over the pool; order is preserved. *)
