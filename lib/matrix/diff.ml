module Json = Abc_sim.Json

let schema = "abc.bench.matrix"

let diff_schema = "abc.bench.matrix.diff"

let diff_schema_version = 1

type cell = {
  key : (string * string) list;
  pass : bool;
  metrics : (string * float) list;  (** in {!metric_names} order *)
}

type set = { id : string; file : string; tier : string; cells : cell list }

let set_id s = s.id

let set_tier s = s.tier

(* Metric vocabulary, in report order.  [`Cost] metrics regress when
   they grow, [`Benefit] when they shrink; [`Advisory] metrics are
   compared but only gate on request (wall-clock varies across
   hosts). *)
let metric_names =
  [
    ("ok_rate", `Benefit);
    ("rounds", `Cost);
    ("messages", `Cost);
    ("bytes", `Cost);
    ("ticks", `Cost);
    ("committed", `Benefit);
    ("wall_s", `Advisory);
  ]

(* ----------------------------------------------------------------- *)
(* Loading                                                           *)
(* ----------------------------------------------------------------- *)

let num_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let ( let* ) r f = Result.bind r f

let field name v =
  match Json.member name v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field %S" name)

let load_cell v =
  let* key_obj = field "key" v in
  let* key =
    match Json.to_obj key_obj with
    | None -> Error "cell key is not an object"
    | Some fields ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.String s) :: rest -> go ((k, s) :: acc) rest
        | (k, _) :: _ -> Error (Printf.sprintf "cell key field %S is not a string" k)
      in
      go [] fields
  in
  let* pass =
    match Json.member "pass" v with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "cell has no boolean \"pass\" field"
  in
  let* metrics =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, _) :: rest -> (
        match Option.bind (Json.member name v) num_of with
        | Some x -> go ((name, x) :: acc) rest
        | None -> Error (Printf.sprintf "cell has no numeric %S field" name))
    in
    go [] metric_names
  in
  Ok { key; pass; metrics }

let load_json_named ~file v =
  let* () =
    match Json.string_member "schema" v with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema %S, expected %S" s schema)
    | None -> Error "missing \"schema\" field"
  in
  let* () =
    match Json.int_member "version" v with
    | Some ver when ver <= Runner.matrix_schema_version -> Ok ()
    | Some ver ->
      Error
        (Printf.sprintf "version %d is newer than supported version %d" ver
           Runner.matrix_schema_version)
    | None -> Error "missing \"version\" field"
  in
  let* id =
    match Json.string_member "id" v with
    | Some id -> Ok id
    | None -> Error "missing \"id\" field"
  in
  (* Result sets have carried "tier" since the field was introduced;
     default to "full" for any that predate it so they are never
     silently excluded by a quick-tier filter. *)
  let tier =
    match Json.string_member "tier" v with Some t -> t | None -> "full"
  in
  let* cell_list =
    match Json.member "cells" v with
    | Some (Json.List cs) -> Ok cs
    | _ -> Error "missing \"cells\" list"
  in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
      match load_cell c with
      | Ok cell -> go (cell :: acc) (i + 1) rest
      | Error e -> Error (Printf.sprintf "cell %d: %s" i e))
  in
  let* cells = go [] 0 cell_list in
  Ok { id; file; tier; cells }

let load_json v = load_json_named ~file:"<json>" v

let load_file path =
  match
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  with
  | exception Sys_error e -> Error e
  | text -> (
    match Json.of_string text with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok v -> (
      match load_json_named ~file:path v with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok s -> Ok s))

(* ----------------------------------------------------------------- *)
(* Comparison                                                        *)
(* ----------------------------------------------------------------- *)

type options = { threshold : float; gate_wall : bool }

let default_options = { threshold = 10.; gate_wall = false }

type delta = {
  metric : string;
  base : float;
  cur : float;
  pct : float option;
  advisory : bool;
}

type verdict = Regression | Improvement | Unchanged

let direction metric =
  match List.assoc_opt metric metric_names with
  | Some (`Benefit : [ `Benefit | `Cost | `Advisory ]) -> `Benefit
  | _ -> `Cost

let delta_verdict options d =
  (* "Worse" is growth for cost metrics, shrinkage for benefit metrics;
     beyond-threshold worse is a regression, beyond-threshold better an
     improvement.  A metric leaving or entering zero has no relative
     change — any move off an exactly-zero baseline counts as beyond
     any threshold (deterministic same-seed runs only move when the
     code changed). *)
  let worse, magnitude =
    match d.pct with
    | Some pct -> (
      match direction d.metric with
      | `Cost -> (pct > 0., Float.abs pct)
      | `Benefit -> (pct < 0., Float.abs pct))
    | None ->
      if d.cur = d.base then ((* 0 -> 0 *) false, 0.)
      else
        ( (match direction d.metric with
          | `Cost -> d.cur > d.base
          | `Benefit -> d.cur < d.base),
          Float.infinity )
  in
  if magnitude <= options.threshold then Unchanged
  else if worse then Regression
  else Improvement

type cell_report =
  | Matched of {
      key : (string * string) list;
      pass_base : bool;
      pass_cur : bool;
      deltas : delta list;
    }
  | Added of (string * string) list
  | Removed of (string * string) list

type t = {
  id : string;
  base_file : string;
  cur_file : string;
  options : options;
  cells : cell_report list;
}

let key_string key =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) key)

let compare ~options ~(base : set) ~(cur : set) =
  if base.id <> cur.id then
    invalid_arg
      (Printf.sprintf "matrix diff: comparing different specs (%S vs %S)"
         base.id cur.id);
  let base_index =
    List.map (fun c -> (key_string c.key, c)) base.cells
  in
  let cur_keys = List.map (fun c -> key_string c.key) cur.cells in
  let matched_or_added =
    List.map
      (fun c ->
        match List.assoc_opt (key_string c.key) base_index with
        | None -> Added c.key
        | Some b ->
          let deltas =
            List.map
              (fun (metric, dir) ->
                let base = List.assoc metric b.metrics in
                let cur = List.assoc metric c.metrics in
                {
                  metric;
                  base;
                  cur;
                  pct =
                    (if base = 0. then None
                     else Some (100. *. (cur -. base) /. base));
                  advisory = dir = `Advisory;
                })
              metric_names
          in
          Matched { key = c.key; pass_base = b.pass; pass_cur = c.pass; deltas })
      cur.cells
  in
  let removed =
    List.filter_map
      (fun b ->
        if List.mem (key_string b.key) cur_keys then None else Some (Removed b.key))
      base.cells
  in
  {
    id = cur.id;
    base_file = base.file;
    cur_file = cur.file;
    options;
    cells = matched_or_added @ removed;
  }

let gated options d = (not d.advisory) || options.gate_wall

let cell_regressions options = function
  | Added _ | Removed _ -> 0
  | Matched m ->
    let flip = if m.pass_base && not m.pass_cur then 1 else 0 in
    flip
    + List.length
        (List.filter
           (fun d -> gated options d && delta_verdict options d = Regression)
           m.deltas)

let cell_improvements options = function
  | Added _ | Removed _ -> 0
  | Matched m ->
    let flip = if (not m.pass_base) && m.pass_cur then 1 else 0 in
    flip
    + List.length
        (List.filter
           (fun d -> gated options d && delta_verdict options d = Improvement)
           m.deltas)

let regressions t =
  List.fold_left (fun acc c -> acc + cell_regressions t.options c) 0 t.cells

let improvements t =
  List.fold_left (fun acc c -> acc + cell_improvements t.options c) 0 t.cells

(* ----------------------------------------------------------------- *)
(* Rendering                                                         *)
(* ----------------------------------------------------------------- *)

let verdict_label = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"

let pct_label = function
  | None -> "(new)"
  | Some pct -> Printf.sprintf "(%+.1f%%)" pct

(* Only noteworthy lines are printed: pass-flips, beyond-threshold
   deltas and added/removed cells.  Unchanged cells appear in the
   summary count — this keeps the report (and the golden file pinning
   it) focused on what moved. *)
let to_text t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "matrix diff %s: %s -> %s" t.id t.base_file t.cur_file;
  line "threshold %.1f%%, wall-clock %s" t.options.threshold
    (if t.options.gate_wall then "gated" else "advisory");
  let regs = ref 0 and imps = ref 0 and added = ref 0 in
  let removed = ref 0 and unchanged = ref 0 in
  List.iter
    (fun cell ->
      match cell with
      | Added key ->
        incr added;
        line "+ [%s] added" (key_string key)
      | Removed key ->
        incr removed;
        line "- [%s] removed" (key_string key)
      | Matched m ->
        let flip = m.pass_base <> m.pass_cur in
        let moved =
          List.filter (fun d -> delta_verdict t.options d <> Unchanged) m.deltas
        in
        if (not flip) && moved = [] then incr unchanged
        else begin
          regs := !regs + cell_regressions t.options cell;
          imps := !imps + cell_improvements t.options cell;
          line "  [%s]" (key_string m.key);
          if flip then
            line "    pass        %s -> %s    %s"
              (if m.pass_base then "ok" else "FAIL")
              (if m.pass_cur then "ok" else "FAIL")
              (if m.pass_cur then "improvement" else "regression");
          List.iter
            (fun d ->
              line "    %-10s %8.2f -> %8.2f  %-9s %s%s" d.metric d.base d.cur
                (pct_label d.pct)
                (verdict_label (delta_verdict t.options d))
                (if gated t.options d then "" else " [advisory]"))
            moved
        end)
    t.cells;
  line "summary %s: %d regressions, %d improvements, %d added, %d removed, %d unchanged"
    t.id !regs !imps !added !removed !unchanged;
  Buffer.contents b

let round2 x = Float.of_string (Printf.sprintf "%.2f" x)

let key_json key = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) key)

let to_json t =
  let delta_json d =
    Json.Obj
      ([
         ("metric", Json.String d.metric);
         ("base", Json.Float (round2 d.base));
         ("cur", Json.Float (round2 d.cur));
       ]
      @ (match d.pct with
        | Some pct -> [ ("pct", Json.Float (round2 pct)) ]
        | None -> [])
      @ [
          ("advisory", Json.Bool d.advisory);
          ("verdict", Json.String (verdict_label (delta_verdict t.options d)));
        ])
  in
  let cell_json = function
    | Added key -> Json.Obj [ ("key", key_json key); ("status", Json.String "added") ]
    | Removed key ->
      Json.Obj [ ("key", key_json key); ("status", Json.String "removed") ]
    | Matched m ->
      Json.Obj
        [
          ("key", key_json m.key);
          ("status", Json.String "matched");
          ("pass_base", Json.Bool m.pass_base);
          ("pass_cur", Json.Bool m.pass_cur);
          ("deltas", Json.List (List.map delta_json m.deltas));
        ]
  in
  Json.Obj
    [
      ("schema", Json.String diff_schema);
      ("version", Json.Int diff_schema_version);
      ("id", Json.String t.id);
      ("base", Json.String t.base_file);
      ("cur", Json.String t.cur_file);
      ( "options",
        Json.Obj
          [
            ("threshold", Json.Float (round2 t.options.threshold));
            ("gate_wall", Json.Bool t.options.gate_wall);
          ] );
      ("regressions", Json.Int (regressions t));
      ("improvements", Json.Int (improvements t));
      ("cells", Json.List (List.map cell_json t.cells));
    ]
