(** Cell-by-cell comparison of two [abc.bench.matrix] result sets.

    [abc-bench diff] loads a committed baseline and a fresh run of the
    same spec and compares each cell (matched by its axis-value key):
    pass-flips and metric growth beyond a threshold are regressions,
    metric shrinkage beyond the threshold is an improvement, and cells
    present on only one side are reported as added/removed.  Gated
    metrics are [rounds], [messages], [bytes] and [ticks]; wall-clock
    is compared but advisory-only unless explicitly gated, because
    it is the one field that varies across hosts (everything else is
    byte-identical for a given spec and seed set).

    Both renderings ({!to_text}, {!to_json}) are deterministic
    functions of the two inputs, so they can themselves be
    golden-tested. *)

type set
(** One loaded result set. *)

val set_id : set -> string

val set_tier : set -> string
(** The spec tier recorded in the result set ("quick" or "full");
    defaults to "full" for sets written before the field existed.
    [abc-bench diff --tier] filters both sides on it. *)

val load_json : Abc_sim.Json.t -> (set, string) result
(** Validate schema/version and index the cells.  [Error] explains the
    mismatch (wrong schema, unsupported version, malformed cell). *)

val load_file : string -> (set, string) result

type options = {
  threshold : float;  (** regression/improvement cutoff, percent *)
  gate_wall : bool;  (** also gate on wall-clock growth *)
}

val default_options : options
(** 10% threshold, wall-clock advisory. *)

type delta = {
  metric : string;
  base : float;
  cur : float;
  pct : float option;  (** relative change in percent; [None] when base = 0 *)
  advisory : bool;  (** compared but never gated (wall-clock) *)
}

type verdict = Regression | Improvement | Unchanged

val delta_verdict : options -> delta -> verdict

type cell_report =
  | Matched of {
      key : (string * string) list;
      pass_base : bool;
      pass_cur : bool;
      deltas : delta list;
    }
  | Added of (string * string) list
  | Removed of (string * string) list

type t = {
  id : string;
  base_file : string;
  cur_file : string;
  options : options;
  cells : cell_report list;
}

val compare : options:options -> base:set -> cur:set -> t
(** Cells appear in the current set's order, then removed cells in the
    base set's order.  Raises [Invalid_argument] when the two sets are
    different specs (ids differ). *)

val regressions : t -> int
(** Gated regressions: pass-flips to fail, plus non-advisory metric
    deltas beyond the threshold (advisory metrics gate only when
    [gate_wall] was set). *)

val improvements : t -> int

val to_text : t -> string

val to_json : t -> Abc_sim.Json.t
(** The [abc.bench.matrix.diff] report object (see OBSERVABILITY.md). *)
