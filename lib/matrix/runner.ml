module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Topology = Abc_net.Topology
module Link_faults = Abc_net.Link_faults
module Pool = Abc_exec.Pool
module Table = Abc_sim.Table
module Json = Abc_sim.Json
module Metrics = Abc_sim.Metrics

module B = Abc.Bracha_consensus
module BO = Abc.Ben_or
module Mmr = Abc.Mmr_consensus
module BRL = Abc_net.Reliable_link.Make (B)
module Bracha_str = Abc.Bracha_rbc.Make (Abc.Payloads.String_payload)
module Ir_str = Abc.Ir_rbc.Make (Abc.Payloads.String_payload)
module Atomic = Abc_smr.Atomic_broadcast

module BH = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

module BOH = Abc.Harness.Make (struct
  include BO

  let value_of_input = BO.value_of_input
end)

module MmrH = Abc.Harness.Make (struct
  include Mmr

  let value_of_input = Mmr.value_of_input
end)

module BRLH = Abc.Harness.Make (struct
  include BRL

  let value_of_input = B.value_of_input
end)

module BrsE = Abc_net.Engine.Make (Bracha_str)
module CodE = Abc_net.Engine.Make (Abc.Coded_rbc)
module IrsE = Abc_net.Engine.Make (Ir_str)
module AtomE = Abc_net.Engine.Make (Atomic)

(* ----------------------------------------------------------------- *)
(* Cell configuration                                                *)
(* ----------------------------------------------------------------- *)

let node = Node_id.of_int

let cell_label cell =
  String.concat " "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) (Spec.cell_key cell))

let bad cell fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "matrix cell [%s]: %s" (cell_label cell) msg))
    fmt

(* Token splitting for parameterized axis values like [latency:8] or
   [circulant:1,2]. *)
let token_parts s = String.split_on_char ':' s

let adversary cell ~n token =
  match token_parts token with
  | [ "fifo" ] -> Adversary.fifo
  | [ "uniform" ] -> Adversary.uniform
  | [ "split" ] -> Adversary.split ~n
  | [ "latency"; mean ] -> (
    match float_of_string_opt mean with
    | Some m when m > 0. -> Adversary.latency ~mean:m
    | _ -> bad cell "latency wants a positive mean, got %S" mean)
  | [ "target"; id ] -> (
    match int_of_string_opt id with
    | Some i when i >= 0 && i < n -> Adversary.targeted_delay ~victims:[ node i ]
    | _ -> bad cell "target wants a node id below n, got %S" id)
  | [ "source"; id ] -> (
    match int_of_string_opt id with
    | Some i when i >= 0 && i < n -> Adversary.source_starve ~victims:[ node i ]
    | _ -> bad cell "source wants a node id below n, got %S" id)
  | [ "eclipse"; period ] -> (
    match int_of_string_opt period with
    | Some p when p > 0 -> Adversary.rotating_eclipse ~n ~period:p
    | _ -> bad cell "eclipse wants a positive period, got %S" period)
  | _ -> bad cell "unknown adversary %S" token

let topology cell ~n token =
  match token_parts token with
  | [ "complete" ] -> None
  | [ "ring" ] -> Some (Topology.ring ~n)
  | [ "star" ] -> Some (Topology.star ~n)
  | [ "circulant"; offsets ] -> (
    let parts = String.split_on_char ',' offsets in
    match List.map int_of_string_opt parts with
    | offs when List.for_all (fun o -> o <> None) offs ->
      Some (Topology.circulant ~n ~offsets:(List.filter_map Fun.id offs))
    | _ -> bad cell "circulant wants comma-separated offsets, got %S" offsets)
  | _ -> bad cell "unknown topology %S" token

let link_faults ~loss ~dup =
  if loss = 0. && dup = 0. then None
  else Some (Link_faults.make ~name:"matrix" ~drop:loss ~dup ())

let counted cell token =
  match token_parts token with
  | [ kind ] -> (kind, 1)
  | [ kind; k ] -> (
    match int_of_string_opt k with
    | Some count when count >= 0 -> (kind, count)
    | _ -> bad cell "fault count must be a non-negative integer, got %S" k)
  | _ -> bad cell "unknown fault %S" token

let tail_faults ~n ~count behaviour =
  List.init count (fun k -> (node (n - 1 - k), behaviour))

let balanced_ids ~n ~count =
  List.init count (fun k -> if k mod 2 = 0 then k / 2 else n - 1 - (k / 2))

(* Consensus fault battery, shared shape with bench/helpers.ml: the
   highest-numbered [count] nodes misbehave, except [balanced-flip]
   which splits the liars across the two input halves. *)
let consensus_faults (type msg) cell ~n ~token
    ~(flip : Abc_prng.Stream.t -> msg -> msg)
    ~(equivocate : Abc_prng.Stream.t -> dst:Node_id.t -> msg -> msg)
    ~(force : (Abc_prng.Stream.t -> msg -> msg) option) :
    (Node_id.t * msg Behaviour.t) list =
  match counted cell token with
  | "none", _ -> []
  | "silent", count -> tail_faults ~n ~count Behaviour.Silent
  | "crash", count -> tail_faults ~n ~count (Behaviour.Crash_after 5)
  | "flip", count -> tail_faults ~n ~count (Behaviour.Mutate flip)
  | "balanced-flip", count ->
    List.map (fun i -> (node i, Behaviour.Mutate flip)) (balanced_ids ~n ~count)
  | "equivocate", count -> tail_faults ~n ~count (Behaviour.Equivocate equivocate)
  | "force-decide", count -> (
    match force with
    | Some force -> tail_faults ~n ~count (Behaviour.Mutate force)
    | None -> bad cell "force-decide is only defined for bracha")
  | kind, _ -> bad cell "unknown consensus fault %S" kind

let flip_payload _rng s = "!" ^ s

let two_faced ~n _rng ~dst s =
  if Node_id.to_int dst < n / 2 then s else "!" ^ s

(* RBC fault battery, mirroring E1's placements: the designated sender
   is node 0; [flip-relay] keeps the sender honest and corrupts a
   relay instead. *)
let rbc_faults cell ~n ~protocol ~token :
    (Node_id.t * Bracha_str.msg Behaviour.t) list option =
  ignore n;
  match token with
  | "none" -> Some []
  | "silent-sender" -> Some [ (node 0, Behaviour.Silent) ]
  | "crash-sender" -> Some [ (node 0, Behaviour.Crash_after 2) ]
  | "flip-relay" when protocol = "bracha-rbc" ->
    Some
      [ (node 1, Behaviour.Mutate (Bracha_str.Fault.substitute flip_payload)) ]
  | "equivocate-sender" when protocol = "bracha-rbc" ->
    Some
      [ (node 0, Behaviour.Equivocate (Bracha_str.Fault.equivocate (two_faced ~n))) ]
  | "flip-relay" | "equivocate-sender" ->
    bad cell "fault %S is only wired up for bracha-rbc" token
  | _ -> None

let crash_schedules cell token =
  if token = "none" then []
  else
    List.map
      (fun part ->
        match token_parts part with
        | [ i; down; up ] -> (
          match
            (int_of_string_opt i, int_of_string_opt down, int_of_string_opt up)
          with
          | Some i, Some down, Some up when i >= 0 && 0 <= down && down < up ->
            (i, [ (down, up) ])
          | _ -> bad cell "crash wants id:down:up with down < up, got %S" part)
        | _ -> bad cell "crash wants id:down:up, got %S" part)
      (String.split_on_char ',' token)

let inputs_pattern cell ~n token =
  match token with
  | "split" ->
    Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)
  | "unanimous0" -> Array.make n Abc.Value.Zero
  | "unanimous1" -> Array.make n Abc.Value.One
  | _ -> bad cell "unknown inputs pattern %S" token

let payload_bytes ~bytes ~seed =
  String.init bytes (fun i -> Char.chr ((seed + (131 * i)) land 0xFF))

(* ----------------------------------------------------------------- *)
(* One seed of one cell                                              *)
(* ----------------------------------------------------------------- *)

type outcome = {
  decided : bool;
  agreement : bool;
  validity : bool;
  totality : bool;
  o_rounds : int;
  o_messages : int;
  o_bytes : int;
  o_ticks : int;
  o_committed : int;
}

let of_verdict (v : Abc.Harness.verdict) bytes =
  {
    decided = v.Abc.Harness.terminated;
    agreement = v.Abc.Harness.agreement;
    validity = v.Abc.Harness.validity;
    totality = true;
    o_rounds = v.Abc.Harness.max_round;
    o_messages = v.Abc.Harness.messages;
    o_bytes = bytes;
    o_ticks = v.Abc.Harness.duration;
    o_committed = 0;
  }

type cfg = {
  protocol : string;
  n : int;
  f : int;
  seeds : int;
  adversary_tok : string;
  fault_tok : string;
  topology_tok : string;
  inputs_tok : string;
  loss : float;
  dup : float;
  payload : int;
  budget : int option;
  batch : int;
  epochs : int;
  window : int;
  checkpoint : int;
  crash_tok : string;
}

let cfg_of_cell cell =
  {
    protocol = Spec.find_str cell "protocol" ~default:"";
    n = Spec.find_int cell "n" ~default:0;
    f = Spec.find_int cell "f" ~default:0;
    seeds = max 1 (Spec.find_int cell "seeds" ~default:10);
    adversary_tok = Spec.find_str cell "adversary" ~default:"uniform";
    fault_tok = Spec.find_str cell "fault" ~default:"none";
    topology_tok = Spec.find_str cell "topology" ~default:"complete";
    inputs_tok = Spec.find_str cell "inputs" ~default:"split";
    loss = Spec.find_num cell "loss" ~default:0.;
    dup = Spec.find_num cell "dup" ~default:0.;
    payload = Spec.find_int cell "payload" ~default:64;
    budget =
      (match Spec.find_int cell "budget" ~default:0 with
      | 0 -> None
      | b -> Some b);
    batch = Spec.find_int cell "batch" ~default:16;
    epochs = Spec.find_int cell "epochs" ~default:2;
    window = Spec.find_int cell "window" ~default:2;
    checkpoint = Spec.find_int cell "checkpoint" ~default:0;
    crash_tok = Spec.find_str cell "crash" ~default:"none";
  }

let run_bracha cell cfg ~options ~seed =
  let values = inputs_pattern cell ~n:cfg.n cfg.inputs_tok in
  let faulty =
    consensus_faults cell ~n:cfg.n ~token:cfg.fault_tok ~flip:B.Fault.flip_value
      ~equivocate:(B.Fault.equivocate_by_half ~n:cfg.n)
      ~force:(Some B.Fault.force_decide)
  in
  let config =
    BH.E.config ~n:cfg.n ~f:cfg.f
      ~inputs:(B.inputs ~n:cfg.n ~options values)
      ~faulty
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~seed ()
  in
  let result, verdict = BH.run config in
  of_verdict verdict (Metrics.counter result.BH.E.metrics "bytes.sent")

let run_bracha_rl cell cfg ~seed =
  if cfg.fault_tok <> "none" then
    bad cell "bracha-rl cells only support fault none";
  let values = inputs_pattern cell ~n:cfg.n cfg.inputs_tok in
  let config =
    BRLH.E.config ~n:cfg.n ~f:cfg.f
      ~inputs:(B.inputs ~n:cfg.n ~options:B.Options.default values)
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~seed ()
  in
  let result, verdict = BRLH.run config in
  of_verdict verdict (Metrics.counter result.BRLH.E.metrics "bytes.sent")

let run_benor cell cfg ~seed =
  let values = inputs_pattern cell ~n:cfg.n cfg.inputs_tok in
  let faulty =
    consensus_faults cell ~n:cfg.n ~token:cfg.fault_tok ~flip:BO.Fault.flip_value
      ~equivocate:(BO.Fault.equivocate_by_half ~n:cfg.n)
      ~force:None
  in
  let config =
    BOH.E.config ~n:cfg.n ~f:cfg.f
      ~inputs:(BO.inputs ~n:cfg.n ~mode:BO.Mode.Byzantine ~coin:Abc.Coin.local values)
      ~faulty
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~seed ()
  in
  let result, verdict = BOH.run config in
  of_verdict verdict (Metrics.counter result.BOH.E.metrics "bytes.sent")

let run_mmr cell cfg ~seed =
  let values = inputs_pattern cell ~n:cfg.n cfg.inputs_tok in
  let faulty =
    consensus_faults cell ~n:cfg.n ~token:cfg.fault_tok ~flip:Mmr.Fault.flip_value
      ~equivocate:(Mmr.Fault.equivocate_by_half ~n:cfg.n)
      ~force:None
  in
  let config =
    MmrH.E.config ~n:cfg.n ~f:cfg.f
      ~inputs:(Mmr.inputs ~n:cfg.n ~coin:(Abc.Coin.common ~seed:7) values)
      ~faulty
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~seed ()
  in
  let result, verdict = MmrH.run config in
  of_verdict verdict (Metrics.counter result.MmrH.E.metrics "bytes.sent")

(* RBC outcome: fold the honest nodes' [Delivered] outputs into the
   validity/agreement/totality triple the way E1 does. *)
let rbc_outcome ~honest ~payload ~sender_honest ~delivered ~messages ~bytes
    ~ticks =
  let count = List.length delivered in
  let all = count = List.length honest in
  let agreement =
    match delivered with
    | v :: rest -> List.for_all (String.equal v) rest
    | [] -> true
  in
  let validity =
    (not sender_honest)
    || List.for_all (String.equal payload) delivered
  in
  {
    decided = all;
    agreement;
    validity;
    totality = count = 0 || all;
    o_rounds = 0;
    o_messages = messages;
    o_bytes = bytes;
    o_ticks = ticks;
    o_committed = 0;
  }

let honest_of_faulty ~n faulty =
  let ids = List.map fst faulty in
  List.filter
    (fun id -> not (List.exists (Node_id.equal id) ids))
    (Node_id.all ~n)

let run_bracha_rbc cell cfg ~seed =
  let payload = payload_bytes ~bytes:cfg.payload ~seed in
  let faulty =
    match rbc_faults cell ~n:cfg.n ~protocol:"bracha-rbc" ~token:cfg.fault_tok with
    | Some fs -> fs
    | None -> bad cell "unknown rbc fault %S" cfg.fault_tok
  in
  let config =
    BrsE.config ~n:cfg.n ~f:cfg.f
      ~inputs:(Bracha_str.inputs ~n:cfg.n ~sender:(node 0) payload)
      ~faulty
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~seed ()
  in
  let result = BrsE.run config in
  let honest = honest_of_faulty ~n:cfg.n faulty in
  let delivered =
    List.filter_map
      (fun id ->
        match result.BrsE.outputs.(Node_id.to_int id) with
        | [ (_, Bracha_str.Delivered v) ] -> Some v
        | _ -> None)
      honest
  in
  rbc_outcome ~honest ~payload
    ~sender_honest:(cfg.fault_tok = "none" || cfg.fault_tok = "flip-relay")
    ~delivered
    ~messages:(Metrics.counter result.BrsE.metrics "sent")
    ~bytes:(Metrics.counter result.BrsE.metrics "bytes.sent")
    ~ticks:result.BrsE.duration

let generic_rbc_faults cell ~token :
    (Node_id.t * 'msg Behaviour.t) list =
  match token with
  | "none" -> []
  | "silent-sender" -> [ (node 0, Behaviour.Silent) ]
  | "crash-sender" -> [ (node 0, Behaviour.Crash_after 2) ]
  | _ -> bad cell "fault %S is only wired up for bracha-rbc" token

let run_coded_rbc cell cfg ~seed =
  let payload = payload_bytes ~bytes:cfg.payload ~seed in
  let faulty = generic_rbc_faults cell ~token:cfg.fault_tok in
  let config =
    CodE.config ~n:cfg.n ~f:cfg.f
      ~inputs:(Abc.Coded_rbc.inputs ~n:cfg.n ~sender:(node 0) payload)
      ~faulty
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~seed ()
  in
  let result = CodE.run config in
  let honest = honest_of_faulty ~n:cfg.n faulty in
  let delivered =
    List.filter_map
      (fun id ->
        match result.CodE.outputs.(Node_id.to_int id) with
        | [ (_, Abc.Coded_rbc.Delivered v) ] -> Some v
        | _ -> None)
      honest
  in
  rbc_outcome ~honest ~payload ~sender_honest:(cfg.fault_tok = "none")
    ~delivered
    ~messages:(Metrics.counter result.CodE.metrics "sent")
    ~bytes:(Metrics.counter result.CodE.metrics "bytes.sent")
    ~ticks:result.CodE.duration

let run_ir_rbc cell cfg ~seed =
  let payload = payload_bytes ~bytes:cfg.payload ~seed in
  let faulty = generic_rbc_faults cell ~token:cfg.fault_tok in
  let config =
    IrsE.config ~n:cfg.n ~f:cfg.f
      ~inputs:(Ir_str.inputs ~n:cfg.n ~sender:(node 0) payload)
      ~faulty
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~seed ()
  in
  let result = IrsE.run config in
  let honest = honest_of_faulty ~n:cfg.n faulty in
  let delivered =
    List.filter_map
      (fun id ->
        match result.IrsE.outputs.(Node_id.to_int id) with
        | [ (_, Ir_str.Delivered v) ] -> Some v
        | _ -> None)
      honest
  in
  rbc_outcome ~honest ~payload ~sender_honest:(cfg.fault_tok = "none")
    ~delivered
    ~messages:(Metrics.counter result.IrsE.metrics "sent")
    ~bytes:(Metrics.counter result.IrsE.metrics "bytes.sent")
    ~ticks:result.IrsE.duration

let run_atomic cell cfg ~seed =
  let mempools =
    Array.init cfg.n (fun i ->
        Abc_smr.Workload.txs
          (Abc_smr.Workload.generate ~seed ~node:(node i)
             ~count:(cfg.batch * cfg.epochs) ~rate:1.0 ~tx_bytes:cfg.payload))
  in
  let crash = crash_schedules cell cfg.crash_tok in
  let faulty =
    (match counted cell cfg.fault_tok with
    | "none", _ -> []
    | "silent", count -> tail_faults ~n:cfg.n ~count Behaviour.Silent
    | kind, _ -> bad cell "unknown atomic fault %S" kind)
    @ List.map (fun (i, plan) -> (node i, Behaviour.Crash_recover plan)) crash
  in
  let recovery =
    { AtomE.snapshot = Atomic.snapshot; restore = Atomic.restore }
  in
  let config =
    AtomE.config ~n:cfg.n ~f:cfg.f
      ~inputs:
        (Atomic.inputs ~n:cfg.n ~window:cfg.window
           ~checkpoint_interval:cfg.checkpoint ~batch_size:cfg.batch
           ~epochs:cfg.epochs ~coin_seed:(seed + 7919) mempools)
      ~faulty
      ~adversary:(adversary cell ~n:cfg.n cfg.adversary_tok)
      ?topology:(topology cell ~n:cfg.n cfg.topology_tok)
      ?link_faults:(link_faults ~loss:cfg.loss ~dup:cfg.dup)
      ?max_deliveries:cfg.budget ~recovery ~seed ()
  in
  let result = AtomE.run config in
  let honest = honest_of_faulty ~n:cfg.n faulty in
  let crash_ids = List.map (fun (i, _) -> node i) crash in
  let correct =
    honest @ List.filter (fun id -> not (List.mem id honest)) crash_ids
  in
  let logs =
    List.map (fun id -> Atomic.log_of_outputs result.AtomE.outputs.(Node_id.to_int id)) correct
  in
  let decided =
    result.AtomE.stop = Abc_net.Engine.All_terminal
    && List.for_all (fun l -> l <> None) logs
  in
  let agreement =
    match logs with
    | first :: rest -> List.for_all (fun l -> l = None || l = first || first = None) rest
    | [] -> true
  in
  let committed =
    match logs with Some l :: _ -> List.length l | _ -> 0
  in
  {
    decided;
    agreement;
    validity = true;
    totality = true;
    o_rounds = 0;
    o_messages = Metrics.counter result.AtomE.metrics "sent";
    o_bytes = Metrics.counter result.AtomE.metrics "bytes.sent";
    o_ticks = result.AtomE.duration;
    o_committed = committed;
  }

let failed_outcome =
  {
    decided = false;
    agreement = false;
    validity = false;
    totality = false;
    o_rounds = 0;
    o_messages = 0;
    o_bytes = 0;
    o_ticks = 0;
    o_committed = 0;
  }

let dispatch cell cfg ~seed =
  match cfg.protocol with
  | "bracha" -> run_bracha cell cfg ~options:B.Options.default ~seed
  | "bracha-cc" ->
    run_bracha cell cfg ~options:(B.Options.with_common_coin ~seed:7) ~seed
  | "bracha-rl" -> run_bracha_rl cell cfg ~seed
  | "ben-or" -> run_benor cell cfg ~seed
  | "mmr" -> run_mmr cell cfg ~seed
  | "bracha-rbc" -> run_bracha_rbc cell cfg ~seed
  | "coded-rbc" -> run_coded_rbc cell cfg ~seed
  | "ir-rbc" -> run_ir_rbc cell cfg ~seed
  | "atomic" -> run_atomic cell cfg ~seed
  | p -> bad cell "unknown protocol %S" p

(* A beyond-resilience (n, f) is rejected by the protocol's own quorum
   assertion at init.  For the matrix that IS the run's failure mode —
   an [expect-fail] cell passes on it, a [decide] cell fails — so only
   that specific rejection becomes a failed outcome; every other
   [Invalid_argument] (unknown token, bad axis combination) stays an
   error. *)
let run_seed cell cfg ~seed =
  match dispatch cell cfg ~seed with
  | outcome -> outcome
  | exception Invalid_argument msg
    when String.length msg >= 7 && String.sub msg 0 7 = "Quorum." ->
    failed_outcome

(* ----------------------------------------------------------------- *)
(* Oracles                                                           *)
(* ----------------------------------------------------------------- *)

let decides o = o.decided && o.agreement && o.validity

let satisfies oracle o =
  match oracle with
  | Spec.Decide | Spec.Expect_fail -> decides o
  | Spec.Agree -> o.agreement && o.validity
  | Spec.Deliver_all -> o.decided && o.agreement && o.totality
  | Spec.Live_within b -> decides o && o.o_ticks <= b
  | Spec.Any -> true

let cell_pass oracle ~ok ~total =
  match oracle with
  | Spec.Expect_fail -> ok < total
  | Spec.Any -> true
  | Spec.Decide | Spec.Agree | Spec.Deliver_all | Spec.Live_within _ ->
    ok = total

(* ----------------------------------------------------------------- *)
(* Pool fan-out and aggregation                                      *)
(* ----------------------------------------------------------------- *)

type cell_metrics = {
  ok_rate : float;
  rounds : float;
  messages : float;
  bytes : float;
  ticks : float;
  committed : float;
  wall_s : float;
}

type cell_result = {
  cell : Spec.cell;
  pass : bool;
  metrics : cell_metrics;
}

type t = { spec : Spec.t; cells : cell_result list }

let scaled_seeds ~seeds_scale s =
  max 1 (int_of_float (float_of_int s *. seeds_scale))

let run ?clock ?(seeds_scale = 1.) ~pool spec =
  let cells = Spec.expand spec in
  let jobs =
    (* One job per (cell, seed), flattened in cell order: the merge is
       index-ordered, so regrouping below is deterministic at any
       worker count. *)
    List.concat_map
      (fun cell ->
        let cfg = cfg_of_cell cell in
        let seeds = scaled_seeds ~seeds_scale cfg.seeds in
        List.init seeds (fun seed -> (cell, cfg, seed)))
      cells
  in
  let job_array = Array.of_list jobs in
  let outcomes =
    Pool.map pool (Array.length job_array) (fun i ->
        let cell, cfg, seed = job_array.(i) in
        match clock with
        | None -> (run_seed cell cfg ~seed, 0.)
        | Some now ->
          let t0 = now () in
          let o = run_seed cell cfg ~seed in
          (o, now () -. t0))
  in
  let cursor = ref 0 in
  let results =
    List.map
      (fun cell ->
        let cfg = cfg_of_cell cell in
        let seeds = scaled_seeds ~seeds_scale cfg.seeds in
        let mine = Array.sub outcomes !cursor seeds in
        cursor := !cursor + seeds;
        let total = Array.length mine in
        let ok =
          Array.fold_left
            (fun acc (o, _) -> if satisfies cell.Spec.oracle o then acc + 1 else acc)
            0 mine
        in
        let decide_ok =
          Array.fold_left
            (fun acc (o, _) -> if decides o then acc + 1 else acc)
            0 mine
        in
        let meanf field =
          Array.fold_left (fun acc (o, _) -> acc +. float_of_int (field o)) 0. mine
          /. float_of_int total
        in
        let wall =
          Array.fold_left (fun acc (_, w) -> acc +. w) 0. mine
        in
        {
          cell;
          pass = cell_pass cell.Spec.oracle ~ok ~total;
          metrics =
            {
              ok_rate = float_of_int decide_ok /. float_of_int total;
              rounds = meanf (fun o -> o.o_rounds);
              messages = meanf (fun o -> o.o_messages);
              bytes = meanf (fun o -> o.o_bytes);
              ticks = meanf (fun o -> o.o_ticks);
              committed = meanf (fun o -> o.o_committed);
              wall_s = wall;
            };
        })
      cells
  in
  { spec; cells = results }

let passed t = List.for_all (fun c -> c.pass) t.cells

let failures t = List.filter (fun c -> not c.pass) t.cells

(* ----------------------------------------------------------------- *)
(* Rendering                                                         *)
(* ----------------------------------------------------------------- *)

let round2 x = Float.of_string (Printf.sprintf "%.2f" x)

let table t =
  let axes = Spec.axes t.spec in
  let tbl =
    Table.create ~id:(Spec.id t.spec) ~title:(Spec.title t.spec)
      ~columns:
        (axes @ [ "expect"; "verdict"; "ok"; "rounds"; "msgs"; "bytes"; "ticks" ])
      ()
  in
  List.iter
    (fun c ->
      let key = Spec.cell_key c.cell in
      Table.add_row tbl
        (List.map (fun a -> List.assoc a key) axes
        @ [
            Spec.oracle_label c.cell.Spec.oracle;
            (if c.pass then "pass" else "FAIL");
            Table.cell_percent c.metrics.ok_rate;
            Table.cell_float c.metrics.rounds;
            Table.cell_float ~decimals:0 c.metrics.messages;
            Table.cell_float ~decimals:0 c.metrics.bytes;
            Table.cell_float ~decimals:0 c.metrics.ticks;
          ]))
    t.cells;
  tbl

let matrix_schema_version = 1

let to_json ~seeds_scale t =
  let cell_json c =
    Json.Obj
      [
        ( "key",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.String v)) (Spec.cell_key c.cell))
        );
        ("expect", Json.String (Spec.oracle_label c.cell.Spec.oracle));
        ("pass", Json.Bool c.pass);
        ("ok_rate", Json.Float (round2 c.metrics.ok_rate));
        ("rounds", Json.Float (round2 c.metrics.rounds));
        ("messages", Json.Float (round2 c.metrics.messages));
        ("bytes", Json.Float (round2 c.metrics.bytes));
        ("ticks", Json.Float (round2 c.metrics.ticks));
        ("committed", Json.Float (round2 c.metrics.committed));
        ("wall_s", Json.Float (round2 c.metrics.wall_s));
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "abc.bench.matrix");
      ("version", Json.Int matrix_schema_version);
      ("id", Json.String (Spec.id t.spec));
      ("title", Json.String (Spec.title t.spec));
      ("tier", Json.String (Spec.tier_label (Spec.tier t.spec)));
      ("axes", Json.List (List.map (fun a -> Json.String a) (Spec.axes t.spec)));
      ("cells", Json.List (List.map cell_json t.cells));
      (* Only inputs that change the numbers belong in meta: the worker
         count does not (the export is byte-identical at any --jobs),
         and recording it would break exactly that contract. *)
      ("meta", Json.Obj [ ("seeds_scale", Json.Float seeds_scale) ]);
    ]
