(** Execute an expanded scenario matrix on the domain pool.

    Each (cell, seed) pair is one independent pool job; results are
    merged by job index, so every aggregate below — and hence the
    rendered table and the [BENCH_MATRIX_*.json] export — is
    byte-identical at any worker count.  The only non-deterministic
    field is the advisory wall-clock, and only when a [clock] is
    supplied; with [clock] absent every wall field is exactly [0.]
    (what the CI determinism diff runs with).

    Protocol dispatch lives here (not in [bench/]) so the bench
    harness and [abc-bench] share one implementation.  Supported
    protocol tokens: [bracha], [bracha-cc] (common coin), [bracha-rl]
    (reliable-link transport), [ben-or], [mmr] for binary consensus;
    [bracha-rbc], [coded-rbc], [ir-rbc] for reliable broadcast over a
    [payload]-byte message; [atomic] for the batched atomic broadcast
    ([batch] / [epochs] / [window] / [checkpoint] / [crash] axes).  An
    unsupported token or axis combination raises
    [Invalid_argument] with the offending cell's key. *)

type cell_metrics = {
  ok_rate : float;  (** fraction of seeds satisfying {!Spec.Decide} *)
  rounds : float;  (** mean slowest-honest decision round *)
  messages : float;  (** mean point-to-point messages per run *)
  bytes : float;  (** mean wire bytes per run ([bytes.sent]) *)
  ticks : float;  (** mean virtual duration per run *)
  committed : float;  (** mean committed transactions (atomic only) *)
  wall_s : float;  (** summed wall-clock over the cell's runs; advisory *)
}

type cell_result = {
  cell : Spec.cell;
  pass : bool;  (** the cell's expected verdict held on every seed *)
  metrics : cell_metrics;
}

type t = { spec : Spec.t; cells : cell_result list }

val run :
  ?clock:(unit -> float) ->
  ?seeds_scale:float ->
  pool:Abc_exec.Pool.t ->
  Spec.t ->
  t
(** Expand the spec and run every cell's seed sweep on the pool.
    [seeds_scale] multiplies each cell's [seeds] axis (floored at 1);
    the quick tier in CI uses the spec's own counts, scale [1.]. *)

val passed : t -> bool
(** Every cell's expected verdict held. *)

val failures : t -> cell_result list

val table : t -> Abc_sim.Table.t
(** One row per cell: the axis values, the expected verdict, the
    observed verdict and the aggregate metrics.  The table id is the
    spec id. *)

val matrix_schema_version : int
(** Version stamped into (and accepted from) [abc.bench.matrix]
    documents. *)

val to_json : seeds_scale:float -> t -> Abc_sim.Json.t
(** The [abc.bench.matrix] result set (schema documented in
    OBSERVABILITY.md): spec identity, axis list, one object per cell
    keyed by its axis values, and run metadata.  Deliberately excludes
    the worker count: the export is byte-identical at any [--jobs]. *)
