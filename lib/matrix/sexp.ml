type pos = { line : int; col : int }

type span = { s : pos; e : pos }

type t =
  | Atom of string * span
  | List of t list * span

type error = { file : string; pos : pos; msg : string }

let span = function Atom (_, sp) -> sp | List (_, sp) -> sp

let error_to_string { file; pos; msg } =
  Printf.sprintf "%s:%d:%d: %s" file pos.line pos.col msg

exception Fail of pos * string

(* A cursor over the source text that tracks line/column as it
   advances; all positions reported in errors and spans come from
   here. *)
type cursor = {
  text : string;
  mutable i : int;
  mutable line : int;
  mutable col : int;
}

let cursor text = { text; i = 0; line = 1; col = 0 }

let eof c = c.i >= String.length c.text

let peek c = c.text.[c.i]

let position c = { line = c.line; col = c.col }

let advance c =
  (if c.text.[c.i] = '\n' then begin
     c.line <- c.line + 1;
     c.col <- 0
   end
   else c.col <- c.col + 1);
  c.i <- c.i + 1

let rec skip_blank c =
  if eof c then ()
  else
    match peek c with
    | ' ' | '\t' | '\n' | '\r' ->
      advance c;
      skip_blank c
    | ';' ->
      while (not (eof c)) && peek c <> '\n' do
        advance c
      done;
      skip_blank c
    | _ -> ()

let atom_char ch =
  match ch with
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
  | _ -> true

let read_atom c =
  let start = position c in
  let b = Buffer.create 16 in
  while (not (eof c)) && atom_char (peek c) do
    Buffer.add_char b (peek c);
    advance c
  done;
  Atom (Buffer.contents b, { s = start; e = position c })

let read_string c =
  let start = position c in
  advance c (* opening quote *);
  let b = Buffer.create 16 in
  let rec go () =
    if eof c then raise (Fail (start, "unterminated string literal"))
    else
      match peek c with
      | '"' ->
        advance c;
        Atom (Buffer.contents b, { s = start; e = position c })
      | '\\' ->
        advance c;
        if eof c then raise (Fail (start, "unterminated string literal"));
        let escaped = peek c in
        let resolved =
          match escaped with
          | 'n' -> '\n'
          | 't' -> '\t'
          | '"' -> '"'
          | '\\' -> '\\'
          | other ->
            raise
              (Fail (position c, Printf.sprintf "unknown escape '\\%c'" other))
        in
        Buffer.add_char b resolved;
        advance c;
        go ()
      | ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
  in
  go ()

let rec read_form c =
  skip_blank c;
  if eof c then raise (Fail (position c, "unexpected end of input"))
  else
    match peek c with
    | '(' ->
      let start = position c in
      advance c;
      let items = ref [] in
      let rec items_loop () =
        skip_blank c;
        if eof c then
          raise (Fail (start, "unclosed '(' (expected ')' before end of input)"))
        else if peek c = ')' then begin
          advance c;
          List (List.rev !items, { s = start; e = position c })
        end
        else begin
          items := read_form c :: !items;
          items_loop ()
        end
      in
      items_loop ()
    | ')' -> raise (Fail (position c, "unmatched ')'"))
    | '"' -> read_string c
    | _ -> read_atom c

let parse ~file text =
  let c = cursor text in
  let rec top acc =
    skip_blank c;
    if eof c then List.rev acc else top (read_form c :: acc)
  in
  match top [] with
  | forms -> Ok forms
  | exception Fail (pos, msg) -> Error { file; pos; msg }
