(** S-expression reader for [.matrix] scenario specs.

    A tiny, dependency-free reader whose one job beyond parsing is
    {e spans}: every atom and list carries its exact source location,
    so spec-level diagnostics (from {!Spec} elaboration and the
    [matrix-resilience] lint rule) can point at the offending literal
    the way the parsetree linter in [lib/analysis] points at offending
    expressions.  Syntax: atoms, double-quoted strings (escapes:
    backslash-n, backslash-t, and escaped backslash and quote),
    parenthesized lists, and [;] line comments. *)

type pos = { line : int;  (** 1-based *) col : int  (** 0-based *) }

type span = { s : pos; e : pos }

type t =
  | Atom of string * span
  | List of t list * span

type error = { file : string; pos : pos; msg : string }

val span : t -> span

val error_to_string : error -> string
(** [file:line:col: message] — the [lib/analysis] finding format. *)

val parse : file:string -> string -> (t list, error) result
(** Parse a whole document into its top-level forms. *)
