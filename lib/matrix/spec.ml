type value =
  | Int of int
  | Num of float
  | Str of string

let value_key = function
  | Int i -> string_of_int i
  | Num x -> Printf.sprintf "%g" x
  | Str s -> s

type binding = { axis : string; value : value; vspan : Sexp.span }

type oracle =
  | Decide
  | Agree
  | Deliver_all
  | Live_within of int
  | Expect_fail
  | Any

let oracle_label = function
  | Decide -> "decide"
  | Agree -> "agree"
  | Deliver_all -> "deliver-all"
  | Live_within b -> Printf.sprintf "live-within %d" b
  | Expect_fail -> "expect-fail"
  | Any -> "any"

type tier = Quick | Full

let tier_label = function Quick -> "quick" | Full -> "full"

type cell = { bindings : binding list; oracle : oracle }

let find cell axis =
  List.find_map
    (fun b -> if String.equal b.axis axis then Some b.value else None)
    cell.bindings

let find_int cell axis ~default =
  match find cell axis with Some (Int i) -> i | _ -> default

let find_num cell axis ~default =
  match find cell axis with
  | Some (Num x) -> x
  | Some (Int i) -> float_of_int i
  | _ -> default

let find_str cell axis ~default =
  match find cell axis with Some v -> value_key v | None -> default

let cell_key cell =
  List.map (fun b -> (b.axis, value_key b.value)) cell.bindings

type axis_decl = {
  name : string;
  values : (value * Sexp.span) list;
}

type group = Single of axis_decl | Zip of axis_decl list

type clause = { conds : (string * value list) list; oracle : oracle }

type t = {
  file : string;
  spec_id : string;
  spec_title : string;
  spec_tier : tier;
  groups : group list;
  clauses : clause list;
  default : oracle;
}

let id t = t.spec_id

let title t = t.spec_title

let tier t = t.spec_tier

let file t = t.file

let group_axes = function Single a -> [ a ] | Zip arms -> arms

let axes t = List.concat_map (fun g -> List.map (fun a -> a.name) (group_axes g)) t.groups

(* ----------------------------------------------------------------- *)
(* Elaboration                                                       *)
(* ----------------------------------------------------------------- *)

exception Fail of Sexp.pos * string

let fail span msg = raise (Fail (span.Sexp.s, msg))

(* The closed axis vocabulary.  Every axis is typed; elaboration
   rejects unknown names and ill-typed literals at their exact span so
   a typo in a committed spec is a lint/parse error, not a silently
   ignored dimension. *)
type axis_ty = Tint | Tnum | Tstr

let known_axes =
  [
    ("protocol", Tstr);
    ("n", Tint);
    ("f", Tint);
    ("inputs", Tstr);
    ("adversary", Tstr);
    ("fault", Tstr);
    ("topology", Tstr);
    ("loss", Tnum);
    ("dup", Tnum);
    ("payload", Tint);
    ("seeds", Tint);
    ("budget", Tint);
    ("batch", Tint);
    ("epochs", Tint);
    ("window", Tint);
    ("checkpoint", Tint);
    ("crash", Tstr);
  ]

let classify_atom s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with Some x -> Num x | None -> Str s)

let atom = function
  | Sexp.Atom (s, span) -> (s, span)
  | Sexp.List (_, span) ->
    raise (Fail (span.Sexp.s, "expected an atom, found a list"))

let axis_value ty form =
  let s, span = atom form in
  let v = classify_atom s in
  let v =
    match (ty, v) with
    | Tint, Int _ -> v
    | Tint, (Num _ | Str _) ->
      fail span (Printf.sprintf "expected an integer, found %S" s)
    | Tnum, Int i -> Num (float_of_int i)
    | Tnum, Num _ -> v
    | Tnum, Str _ ->
      fail span (Printf.sprintf "expected a number, found %S" s)
    | Tstr, _ -> Str s
  in
  (v, span)

let axis_ty name span =
  match List.assoc_opt name known_axes with
  | Some ty -> ty
  | None ->
    fail span
      (Printf.sprintf
         "unknown axis %S (known axes: %s)" name
         (String.concat ", " (List.map fst known_axes)))

let parse_axis = function
  | Sexp.List (Sexp.Atom (name, nspan) :: values, span) ->
    if values = [] then fail span (Printf.sprintf "axis %S has no values" name);
    let ty = axis_ty name nspan in
    { name; values = List.map (axis_value ty) values }
  | form -> fail (Sexp.span form) "expected an axis: (name value ...)"

let parse_group = function
  | Sexp.List (Sexp.Atom ("zip", _) :: arms, span) ->
    if List.length arms < 2 then
      fail span "zip needs at least two axes";
    let arms = List.map parse_axis arms in
    let len = List.length (List.hd arms).values in
    List.iter
      (fun a ->
        if List.length a.values <> len then
          fail span
            (Printf.sprintf
               "zip arms must have equal lengths: axis %S has %d values, \
                axis %S has %d"
               (List.hd arms).name len a.name (List.length a.values)))
      arms;
    Zip arms
  | form -> Single (parse_axis form)

let parse_oracle = function
  | Sexp.Atom ("decide", _) -> Decide
  | Sexp.Atom ("agree", _) -> Agree
  | Sexp.Atom ("deliver-all", _) -> Deliver_all
  | Sexp.Atom ("expect-fail", _) -> Expect_fail
  | Sexp.Atom ("any", _) -> Any
  | Sexp.List ([ Sexp.Atom ("live-within", _); budget ], _) -> (
    let s, bspan = atom budget in
    match int_of_string_opt s with
    | Some b when b > 0 -> Live_within b
    | Some _ | None ->
      fail bspan
        (Printf.sprintf "live-within needs a positive tick budget, found %S" s))
  | form ->
    fail (Sexp.span form)
      "expected a verdict: decide | agree | deliver-all | (live-within N) | \
       expect-fail | any"

let parse_cond declared = function
  | Sexp.List (Sexp.Atom (name, nspan) :: values, span) ->
    if values = [] then
      fail span (Printf.sprintf "condition on %S has no values" name);
    if not (List.mem name declared) then
      fail nspan
        (Printf.sprintf "condition on %S, which is not a declared axis" name);
    let ty = axis_ty name nspan in
    (name, List.map (fun v -> fst (axis_value ty v)) values)
  | form -> fail (Sexp.span form) "expected a condition: (axis value ...)"

let parse_clause declared = function
  | Sexp.List (Sexp.Atom ("when", _) :: rest, span) -> (
    match List.rev rest with
    | verdict :: rev_conds when rev_conds <> [] ->
      `Clause
        {
          conds = List.map (parse_cond declared) (List.rev rev_conds);
          oracle = parse_oracle verdict;
        }
    | _ -> fail span "expected (when (axis value ...) ... verdict)")
  | Sexp.List ([ Sexp.Atom ("default", _); verdict ], _) ->
    `Default (parse_oracle verdict)
  | form ->
    fail (Sexp.span form)
      "expected (when ... verdict) or (default verdict) inside expect"

let slug_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
       s

let elaborate ~file forms =
  let spec_id = ref None and spec_title = ref None in
  let spec_tier = ref Full in
  let groups = ref None in
  let clauses = ref [] and default = ref Any in
  let top =
    match forms with
    | [ Sexp.List (Sexp.Atom ("matrix", _) :: fields, _) ] -> fields
    | [ form ] -> fail (Sexp.span form) "expected a single (matrix ...) form"
    | [] ->
      raise (Fail ({ Sexp.line = 1; col = 0 }, "empty spec: expected (matrix ...)"))
    | _ :: second :: _ ->
      fail (Sexp.span second) "expected a single (matrix ...) form"
  in
  List.iter
    (fun field ->
      match field with
      | Sexp.List ([ Sexp.Atom ("id", _); v ], _) ->
        let s, span = atom v in
        if not (slug_ok s) then
          fail span
            (Printf.sprintf "id %S must be a lowercase slug ([a-z0-9_-]+)" s);
        spec_id := Some s
      | Sexp.List ([ Sexp.Atom ("title", _); v ], _) ->
        spec_title := Some (fst (atom v))
      | Sexp.List ([ Sexp.Atom ("tier", _); v ], _) -> (
        match atom v with
        | "quick", _ -> spec_tier := Quick
        | "full", _ -> spec_tier := Full
        | s, span -> fail span (Printf.sprintf "unknown tier %S (quick | full)" s))
      | Sexp.List (Sexp.Atom ("axes", _) :: gs, span) ->
        if gs = [] then fail span "axes must declare at least one axis";
        let parsed = List.map parse_group gs in
        let names =
          List.concat_map (fun g -> List.map (fun a -> a.name) (group_axes g)) parsed
        in
        List.iteri
          (fun i name ->
            if List.exists (String.equal name) (List.filteri (fun j _ -> j < i) names)
            then fail span (Printf.sprintf "axis %S declared twice" name))
          names;
        groups := Some parsed
      | Sexp.List (Sexp.Atom ("expect", _) :: cs, _) ->
        let declared =
          match !groups with
          | Some gs ->
            List.concat_map (fun g -> List.map (fun a -> a.name) (group_axes g)) gs
          | None -> fail (Sexp.span field) "expect must come after axes"
        in
        List.iter
          (fun c ->
            match parse_clause declared c with
            | `Clause cl -> clauses := cl :: !clauses
            | `Default o -> default := o)
          cs
      | Sexp.List (Sexp.Atom (name, nspan) :: _, _) ->
        fail nspan
          (Printf.sprintf
             "unknown field %S (id | title | tier | axes | expect)" name)
      | form -> fail (Sexp.span form) "expected a (field ...) form")
    top;
  let require name r span_hint =
    match r with
    | Some v -> v
    | None ->
      raise (Fail (span_hint, Printf.sprintf "missing required field (%s ...)" name))
  in
  let origin = { Sexp.line = 1; col = 0 } in
  let groups = require "axes" !groups origin in
  let declared =
    List.concat_map (fun g -> List.map (fun a -> a.name) (group_axes g)) groups
  in
  List.iter
    (fun required ->
      if not (List.mem required declared) then
        raise
          (Fail (origin, Printf.sprintf "spec must declare the %S axis" required)))
    [ "protocol"; "n"; "f" ];
  {
    file;
    spec_id = require "id" !spec_id origin;
    spec_title = require "title" !spec_title origin;
    spec_tier = !spec_tier;
    groups;
    clauses = List.rev !clauses;
    default = !default;
  }

let of_string ~file text =
  match Sexp.parse ~file text with
  | Error e -> Error e
  | Ok forms -> (
    match elaborate ~file forms with
    | spec -> Ok spec
    | exception Fail (pos, msg) -> Error { Sexp.file; pos; msg })

let load path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string ~file:path text

(* ----------------------------------------------------------------- *)
(* Expansion                                                         *)
(* ----------------------------------------------------------------- *)

let group_width = function
  | Single a -> List.length a.values
  | Zip arms -> List.length (List.hd arms).values

let group_bindings g i =
  match g with
  | Single a ->
    let v, span = List.nth a.values i in
    [ { axis = a.name; value = v; vspan = span } ]
  | Zip arms ->
    List.map
      (fun a ->
        let v, span = List.nth a.values i in
        { axis = a.name; value = v; vspan = span })
      arms

let cell_count t =
  List.fold_left (fun acc g -> acc * group_width g) 1 t.groups

let clause_matches cell cl =
  List.for_all
    (fun (axis, allowed) ->
      match find cell axis with
      | None -> false
      | Some v ->
        List.exists (fun a -> String.equal (value_key a) (value_key v)) allowed)
    cl.conds

let oracle_for t cell =
  match List.find_opt (clause_matches cell) t.clauses with
  | Some cl -> cl.oracle
  | None -> t.default

(* Row-major over the groups in declaration order: the first group is
   the slowest axis.  Purely structural — no environment input — so
   the same spec always yields the same cell list in the same order. *)
let expand t =
  let rec go = function
    | [] -> [ [] ]
    | g :: rest ->
      let tails = go rest in
      List.concat_map
        (fun i -> List.map (fun tail -> group_bindings g i @ tail)
            tails)
        (List.init (group_width g) (fun i -> i))
  in
  List.map
    (fun bindings ->
      let cell = { bindings; oracle = Any } in
      { cell with oracle = oracle_for t cell })
    (go t.groups)

(* ----------------------------------------------------------------- *)
(* Resilience registry                                               *)
(* ----------------------------------------------------------------- *)

let resilience protocol =
  match protocol with
  | "bracha" | "bracha-cc" | "bracha-rl" | "mmr" | "bracha-rbc" | "coded-rbc"
  | "atomic" ->
    Some ("n>3f", fun n -> (n - 1) / 3)
  | "ben-or" | "ir-rbc" -> Some ("n>5f", fun n -> (n - 1) / 5)
  | "turpin-coan" -> Some ("n>4f", fun n -> (n - 1) / 4)
  | _ -> None
