(** Scenario-matrix specs: the declarative layer over the simulator.

    A spec describes a family of runs as axes (protocol, n, f,
    adversary, fault mix, topology, loss plan, payload, seeds, ...)
    combined by cross product — with [zip] groups advancing several
    axes in lockstep — plus per-cell {e expected-verdict} annotations:
    what property each cell must exhibit (decide / agree / deliver-all
    / live-within a budget), or [expect-fail] for cells deliberately
    configured beyond a protocol's resilience bound.

    Specs live in [.matrix] files (an s-expression format, see
    EXPERIMENTS.md for the grammar) and elaborate with span-accurate
    errors in the [file:line:col: message] format of the [lib/analysis]
    linter.  {!expand} is a pure function of the spec value: the cell
    list and its order never depend on the environment, which is what
    lets the {!Runner} promise byte-identical results at any worker
    count. *)

type value =
  | Int of int
  | Num of float
  | Str of string

val value_key : value -> string
(** Canonical rendering used for cell keys, clause matching and table
    cells ([Int 3] and [Num 3.] render differently; floats use ["%g"]). *)

type binding = {
  axis : string;
  value : value;
  vspan : Sexp.span;  (** where the value literal sits in the spec *)
}

type oracle =
  | Decide  (** all honest nodes decide; agreement + validity hold *)
  | Agree  (** safety only: agreement + validity among deciders *)
  | Deliver_all  (** RBC totality: every honest node delivers, equally *)
  | Live_within of int  (** {!Decide} within a virtual-time budget *)
  | Expect_fail
      (** beyond-resilience cell: at least one seed must {e miss}
          {!Decide} — the configured violation has to materialize *)
  | Any  (** measure only; no expectation *)

val oracle_label : oracle -> string

type tier = Quick | Full

val tier_label : tier -> string

type cell = { bindings : binding list; oracle : oracle }

val find : cell -> string -> value option

val find_int : cell -> string -> default:int -> int

val find_num : cell -> string -> default:float -> float

val find_str : cell -> string -> default:string -> string

val cell_key : cell -> (string * string) list
(** Axis-name/value pairs in axis order — the identity a cell keeps
    across runs, used by [abc-bench diff] to match cells. *)

type t

val id : t -> string

val title : t -> string

val tier : t -> tier

val file : t -> string

val axes : t -> string list
(** Axis names in declaration order (zip arms flattened in place). *)

val of_string : file:string -> string -> (t, Sexp.error) result
(** Parse and elaborate one spec.  Errors carry the span of the
    offending token. *)

val load : string -> (t, Sexp.error) result
(** [of_string] over a file's contents. *)

val expand : t -> cell list
(** The cross product of the axis groups in declaration order (first
    group slowest), zip groups advancing their arms together, each cell
    annotated with the first matching [expect] clause (else the
    default).  Deterministic and order-stable. *)

val cell_count : t -> int

val resilience : string -> (string * (int -> int)) option
(** [resilience protocol] is the declared resilience class of a
    protocol token — the class label (["n>3f"]) and the maximal
    tolerated [f] as a function of [n] — mirroring the
    [\[@@@abc.resilience\]] declarations the linter checks in protocol
    modules.  [None] for unknown protocols. *)
