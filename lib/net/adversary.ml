type meta = {
  seq : int;
  src : Node_id.t;
  dst : Node_id.t;
  sent_at : int;
  priority : int;
}

module View = struct
  type t = {
    length : unit -> int;
    get : int -> meta;
    oldest : unit -> int;
    find_seq : int -> int option;
  }

  let make ~length ~get ~oldest ~find_seq = { length; get; oldest; find_seq }

  let length t = t.length ()

  let get t i = t.get i

  let find_seq t seq = t.find_seq seq

  let min_by t score =
    let len = length t in
    assert (len > 0);
    let best = ref 0 in
    let best_score = ref (score (get t 0)) in
    let best_seq = ref (get t 0).seq in
    for i = 1 to len - 1 do
      let m = get t i in
      let s = score m in
      if s < !best_score || (s = !best_score && m.seq < !best_seq) then begin
        best := i;
        best_score := s;
        best_seq := m.seq
      end
    done;
    !best

  let oldest t = t.oldest ()
end

type instance = {
  assign : rng:Abc_prng.Stream.t -> now:int -> src:Node_id.t -> dst:Node_id.t -> int;
  note : meta -> unit;
  choose : rng:Abc_prng.Stream.t -> now:int -> View.t -> int;
}

type t = { name : string; instantiate : unit -> instance }

let no_assign ~rng:_ ~now:_ ~src:_ ~dst:_ = 0

let no_note (_ : meta) = ()

let fifo =
  {
    name = "fifo";
    instantiate =
      (fun () ->
        {
          assign = no_assign;
          note = no_note;
          choose = (fun ~rng:_ ~now:_ view -> View.oldest view);
        });
  }

let uniform =
  {
    name = "uniform";
    instantiate =
      (fun () ->
        {
          assign = no_assign;
          note = no_note;
          choose =
            (fun ~rng ~now:_ view ->
              Abc_prng.Stream.int rng ~bound:(View.length view));
        });
  }

(* Pop dead entries (already delivered by a fairness override) off the
   front of [queue] until a live one surfaces; [None] when the queue
   drains.  Lazy deletion keeps every policy O(1)/O(log n) amortized. *)
let rec live_head queue view =
  match Queue.peek_opt queue with
  | None -> None
  | Some seq -> (
    match View.find_seq view seq with
    | Some index -> Some index
    | None ->
      ignore (Queue.pop queue);
      live_head queue view)

let latency ~mean =
  {
    name = Printf.sprintf "latency(%.0f)" mean;
    instantiate =
      (fun () ->
        let heap : int Abc_sim.Heap.t = Abc_sim.Heap.create () in
        let rec live_top view =
          match Abc_sim.Heap.peek heap with
          | None -> None
          | Some (_, seq) -> (
            match View.find_seq view seq with
            | Some index -> Some index
            | None ->
              ignore (Abc_sim.Heap.pop heap);
              live_top view)
        in
        {
          assign =
            (fun ~rng ~now ~src:_ ~dst:_ ->
              now + 1 + int_of_float (Abc_prng.Stream.exponential rng ~mean));
          note = (fun m -> Abc_sim.Heap.push heap ~priority:m.priority m.seq);
          choose =
            (fun ~rng:_ ~now:_ view ->
              (* Deliver the message whose sampled arrival is earliest;
                 fall back to the oldest if the heap lost sync. *)
              match live_top view with
              | Some index -> index
              | None -> View.oldest view);
        });
  }

(* Starvation policies keep two send-ordered queues and serve the
   favoured one while it lasts; disfavoured messages only move when the
   favoured queue is empty (or via the engine's fairness override). *)
let starve ~name ~disfavoured =
  {
    name;
    instantiate =
      (fun () ->
        let favoured : int Queue.t = Queue.create () in
        let starved : int Queue.t = Queue.create () in
        {
          assign = no_assign;
          note =
            (fun m ->
              if disfavoured m then Queue.add m.seq starved
              else Queue.add m.seq favoured);
          choose =
            (fun ~rng:_ ~now:_ view ->
              match live_head favoured view with
              | Some index -> index
              | None -> (
                match live_head starved view with
                | Some index -> index
                | None -> View.oldest view));
        });
  }

let targeted_delay ~victims =
  let victim_set = Node_id.Set.of_list victims in
  starve ~name:"targeted-delay"
    ~disfavoured:(fun m -> Node_id.Set.mem m.dst victim_set)

let source_starve ~victims =
  let victim_set = Node_id.Set.of_list victims in
  starve ~name:"source-starve"
    ~disfavoured:(fun m -> Node_id.Set.mem m.src victim_set)

let split ~n =
  let half id = if Node_id.to_int id < n / 2 then 0 else 1 in
  starve ~name:"split" ~disfavoured:(fun m -> half m.src <> half m.dst)

let rotating_eclipse ~n ~period =
  assert (period > 0 && n > 0);
  {
    name = Printf.sprintf "eclipse(%d)" period;
    instantiate =
      (fun () ->
        (* One send-ordered queue per destination; the victim rotates
           every [period] deliveries and its queue is served only when
           every other queue is dry (or fairness forces it). *)
        let queues = Array.init n (fun _ -> Queue.create ()) in
        let deliveries = ref 0 in
        {
          assign = no_assign;
          note =
            (fun m ->
              let dst = Node_id.to_int m.dst in
              if dst < n then Queue.add m.seq queues.(dst));
          choose =
            (fun ~rng:_ ~now:_ view ->
              let victim = !deliveries / period mod n in
              incr deliveries;
              let best = ref None in
              for dst = 0 to n - 1 do
                if dst <> victim then begin
                  match live_head queues.(dst) view with
                  | Some index ->
                    let seq = (View.get view index).seq in
                    (match !best with
                    | Some (best_seq, _) when best_seq <= seq -> ()
                    | Some _ | None -> best := Some (seq, index))
                  | None -> ()
                end
              done;
              match !best with
              | Some (_, index) -> index
              | None -> (
                match live_head queues.(victim) view with
                | Some index -> index
                | None -> View.oldest view));
        });
  }

let all_basic ~n =
  [
    fifo;
    uniform;
    latency ~mean:8.;
    targeted_delay ~victims:[ Node_id.of_int 0 ];
    split ~n;
    source_starve ~victims:[ Node_id.of_int 0 ];
    rotating_eclipse ~n ~period:(2 * n);
  ]
