(** Adversarial message schedulers.

    In the asynchronous model the adversary controls the delivery order
    of every message, subject only to the fairness requirement that
    each message is eventually delivered.  A policy sees the metadata
    of all in-flight messages (never the payloads — schedulers are
    protocol-agnostic) and picks the one to deliver next.

    The engine enforces fairness on top of any policy: once the oldest
    in-flight message exceeds the configured age bound, it is delivered
    regardless of the policy's preference.  Hence every policy yields
    an admissible asynchronous execution.

    A policy is a {e factory}: the engine instantiates it once per run,
    so policies may keep incremental internal state (queues, heaps)
    without leaking information between runs.  Instances use lazy
    deletion — entries removed by the engine (e.g. fairness overrides)
    are skipped when they surface. *)

type meta = {
  seq : int;  (** global send sequence number (send order) *)
  src : Node_id.t;  (** true sender *)
  dst : Node_id.t;  (** recipient *)
  sent_at : int;  (** virtual time of the send *)
  priority : int;  (** policy-private tag assigned at send time *)
}

module View : sig
  type t
  (** Read-only view of the in-flight message pool. *)

  val make :
    length:(unit -> int) ->
    get:(int -> meta) ->
    oldest:(unit -> int) ->
    find_seq:(int -> int option) ->
    t
  (** [make ~length ~get ~oldest ~find_seq] wraps the engine's pool
      accessors: [length] is the current pool size (a closure so the
      engine allocates one view per run, not one per delivery);
      [oldest] is the O(1) index of the longest-in-flight message;
      [find_seq seq] is the current index of the live entry with
      sequence number [seq], if still in flight. *)

  val length : t -> int
  val get : t -> int -> meta

  val find_seq : t -> int -> int option
  (** Current index of a live sequence number.  Constant time. *)

  val min_by : t -> (meta -> int) -> int
  (** [min_by view score] is the index of the entry with the smallest
      score, ties broken by smallest [seq].  Linear scan — for tests
      and custom one-off policies; the built-in policies avoid it. *)

  val oldest : t -> int
  (** Index of the entry with the smallest [seq] (the message that has
      been in flight the longest).  Constant time. *)
end

type instance = {
  assign : rng:Abc_prng.Stream.t -> now:int -> src:Node_id.t -> dst:Node_id.t -> int;
      (** called at send time; the returned value is stored as the
          envelope's [priority] *)
  note : meta -> unit;
      (** called after the envelope is enqueued, with its full
          metadata: the instance may index it *)
  choose : rng:Abc_prng.Stream.t -> now:int -> View.t -> int;
      (** called at delivery time on a non-empty view; returns the
          index of the message to deliver *)
}

type t = { name : string; instantiate : unit -> instance }

val fifo : t
(** Deliver messages in send order: the kindest network. *)

val uniform : t
(** Deliver a uniformly random in-flight message: the "random delays"
    network used for round-count distributions. *)

val latency : mean:float -> t
(** Exponentially distributed per-message delays with the given mean
    (in virtual ticks): models a heterogeneous wide-area network. *)

val targeted_delay : victims:Node_id.t list -> t
(** Starve all messages {e to} the victim nodes as long as fairness
    allows; everything else is FIFO.  Models an adversary isolating a
    minority. *)

val source_starve : victims:Node_id.t list -> t
(** Starve all messages {e from} the victim nodes: makes victims look
    crashed for as long as fairness allows. *)

val split : n:int -> t
(** Partition nodes into two halves (ids below / at-or-above [n/2]) and
    starve cross-half messages: the classic split-vote schedule that
    defeats deterministic protocols and stresses randomized ones. *)

val rotating_eclipse : n:int -> period:int -> t
(** Starve one node at a time, rotating the victim every [period]
    deliveries: models an adversary that eclipses each node in turn —
    harder to beat than a fixed victim because no node accumulates a
    backlog advantage.  Requires [period > 0]. *)

val starve : name:string -> disfavoured:(meta -> bool) -> t
(** [starve ~name ~disfavoured] delays every message matching the
    predicate as long as fairness allows, delivering the rest in send
    order — the building block of the targeted policies above. *)

val all_basic : n:int -> t list
(** The standard policy battery used by the experiments: fifo, uniform,
    latency (mean 8), targeted-delay on node 0, split, source-starve on
    node 0 and rotating-eclipse with period [2n] — all seven policies. *)
