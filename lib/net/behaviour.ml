type 'msg t =
  | Honest
  | Silent
  | Crash_after of int
  | Mutate of (Abc_prng.Stream.t -> 'msg -> 'msg)
  | Equivocate of (Abc_prng.Stream.t -> dst:Node_id.t -> 'msg -> 'msg)
  | Replay of int
  | Corrupt_after of int * 'msg t

let rec label = function
  | Honest -> "honest"
  | Silent -> "silent"
  | Crash_after _ -> "crash"
  | Mutate _ -> "mutate"
  | Equivocate _ -> "equivocate"
  | Replay _ -> "replay"
  | Corrupt_after (_, inner) -> "adaptive:" ^ label inner

let rec apply b ~rng ~n ~activation actions =
  match b with
  | Honest -> actions
  | Silent -> []
  | Crash_after k -> if activation < k then actions else []
  | Mutate corrupt ->
    let corrupt_action = function
      | Protocol.Broadcast msg -> Protocol.Broadcast (corrupt rng msg)
      | Protocol.Send (dst, msg) -> Protocol.Send (dst, corrupt rng msg)
      | Protocol.Set_timer _ as a -> a (* timers are node-local, not wire *)
    in
    List.map corrupt_action actions
  | Equivocate corrupt ->
    let corrupt_action = function
      | Protocol.Broadcast msg ->
        List.map
          (fun dst -> Protocol.Send (dst, corrupt rng ~dst msg))
          (Node_id.all ~n)
      | Protocol.Send (dst, msg) -> [ Protocol.Send (dst, corrupt rng ~dst msg) ]
      | Protocol.Set_timer _ as a -> [ a ]
    in
    List.concat_map corrupt_action actions
  | Replay k ->
    List.concat_map
      (fun a ->
        match a with
        | Protocol.Set_timer _ -> [ a ] (* replaying a timer arm is meaningless *)
        | Protocol.Broadcast _ | Protocol.Send _ ->
          List.init (1 + k) (fun _ -> a))
      actions
  | Corrupt_after (k, inner) ->
    if activation < k then actions else apply inner ~rng ~n ~activation actions
