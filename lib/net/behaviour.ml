type 'msg t =
  | Honest
  | Silent
  | Crash_after of int
  | Mutate of (Abc_prng.Stream.t -> 'msg -> 'msg)
  | Equivocate of (Abc_prng.Stream.t -> dst:Node_id.t -> 'msg -> 'msg)
  | Replay of int
  | Corrupt_after of int * 'msg t
  | Crash_recover of (int * int) list

let rec label = function
  | Honest -> "honest"
  | Silent -> "silent"
  | Crash_after _ -> "crash"
  | Mutate _ -> "mutate"
  | Equivocate _ -> "equivocate"
  | Replay _ -> "replay"
  | Corrupt_after (_, inner) -> "adaptive:" ^ label inner
  | Crash_recover _ -> "crash-recover"

let rec apply b ~rng ~n ~activation actions =
  match b with
  | Honest -> actions
  | Silent -> []
  | Crash_after k -> if activation < k then actions else []
  | Mutate corrupt ->
    let corrupt_action = function
      | Protocol.Broadcast msg -> Protocol.Broadcast (corrupt rng msg)
      | Protocol.Send (dst, msg) -> Protocol.Send (dst, corrupt rng msg)
      | Protocol.Set_timer _ as a -> a (* timers are node-local, not wire *)
    in
    List.map corrupt_action actions
  | Equivocate corrupt ->
    let corrupt_action = function
      | Protocol.Broadcast msg ->
        List.map
          (fun dst -> Protocol.Send (dst, corrupt rng ~dst msg))
          (Node_id.all ~n)
      | Protocol.Send (dst, msg) -> [ Protocol.Send (dst, corrupt rng ~dst msg) ]
      | Protocol.Set_timer _ as a -> [ a ]
    in
    List.concat_map corrupt_action actions
  | Replay k ->
    List.concat_map
      (fun a ->
        match a with
        | Protocol.Set_timer _ -> [ a ] (* replaying a timer arm is meaningless *)
        | Protocol.Broadcast _ | Protocol.Send _ ->
          List.init (1 + k) (fun _ -> a))
      actions
  | Corrupt_after (k, inner) ->
    if activation < k then actions else apply inner ~rng ~n ~activation actions
  | Crash_recover _ ->
    (* Crash-recovery is a *tick*-driven fault, not an activation-driven
       traffic corruption: the engine tears the node down (dropping its
       volatile state and in-flight deliveries) and later restarts it
       from its durable store.  While the node is up it behaves
       honestly, so the outgoing-traffic transform is the identity. *)
    actions

let crash_schedule = function
  | Crash_recover schedule -> Some schedule
  | Honest | Silent | Crash_after _ | Mutate _ | Equivocate _ | Replay _
  | Corrupt_after _ ->
    None

let validate_schedule schedule =
  let rec check last = function
    | [] -> true
    | (crash, rejoin) :: rest ->
      crash > last && rejoin > crash && check rejoin rest
  in
  (match schedule with [] -> false | _ :: _ -> true) && check (-1) schedule
