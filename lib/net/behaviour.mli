(** Byzantine fault behaviours.

    A faulty node runs the honest protocol logic underneath, and a
    behaviour corrupts its {e outgoing} traffic.  This covers the
    standard adversary repertoire: crashing, staying silent,
    consistently lying, equivocating (telling different nodes different
    things — the attack reliable broadcast exists to defeat), and
    message spam.  Mutation functions are supplied by the protocol
    layer because only it can forge well-typed messages.

    {!Crash_recover} is the one exception to the outgoing-traffic
    model: it is a benign crash-restart fault enforced by the engine at
    scheduled ticks (volatile state wiped, in-flight deliveries
    dropped, restart from the durable store), so its traffic transform
    is the identity. *)

type 'msg t =
  | Honest  (** behaves exactly like a correct node *)
  | Silent  (** receives everything, never sends anything *)
  | Crash_after of int
      (** behaves honestly for the first [k] activations (message
          deliveries it reacts to, init included), then goes silent
          for the rest of the run — a clean fail-stop fault with no
          recovery path (state is never restored); for a crash the node
          {e comes back from}, use {!Crash_recover} *)
  | Mutate of (Abc_prng.Stream.t -> 'msg -> 'msg)
      (** applies one corruption per outgoing message; every recipient
          of a broadcast sees the same lie, so the fault cannot be
          detected by cross-checking *)
  | Equivocate of (Abc_prng.Stream.t -> dst:Node_id.t -> 'msg -> 'msg)
      (** corrupts each broadcast per recipient: sends conflicting
          messages to different nodes *)
  | Replay of int
      (** sends every outgoing message [1 + k] times: duplication /
          spam pressure on the receivers' deduplication logic *)
  | Corrupt_after of int * 'msg t
      (** adaptive corruption: behaves honestly for the first [k]
          activations, then switches to the given behaviour — models
          an adversary that corrupts a node mid-protocol, which the
          asynchronous model explicitly allows *)
  | Crash_recover of (int * int) list
      (** benign crash-restart schedule: each [(crash, rejoin)] pair
          (strictly increasing virtual ticks, [crash < rejoin]) crashes
          the node at tick [crash] — losing all volatile protocol
          state, keeping only its simulated durable store — and
          restarts it at tick [rejoin].  Repeatable: a node may crash
          and rejoin several times in one run.  Enforced by the engine
          (see {!Engine.Make} recovery support), not by [apply], which
          is the identity for this variant. *)

val label : 'msg t -> string
(** Short name for reports ("honest", "silent", "crash", "mutate",
    "equivocate", "replay", "adaptive:<inner>", "crash-recover"). *)

val apply :
  'msg t ->
  rng:Abc_prng.Stream.t ->
  n:int ->
  activation:int ->
  'msg Protocol.action list ->
  'msg Protocol.action list
(** [apply b ~rng ~n ~activation actions] transforms the actions
    produced by the honest logic during its [activation]-th activation
    (the initial actions are activation 0).  [n] is the number of nodes
    (needed to expand broadcasts when equivocating). *)

val crash_schedule : 'msg t -> (int * int) list option
(** [crash_schedule b] is the crash-restart schedule when [b] is
    {!Crash_recover}, [None] otherwise (the engine uses this to build
    its tick-driven transition table). *)

val validate_schedule : (int * int) list -> bool
(** [validate_schedule s] checks that [s] is non-empty, each pair has
    [crash < rejoin], and pairs are strictly increasing — the
    well-formedness contract of {!Crash_recover}. *)
