type stop_reason = All_terminal | Quiescent | Delivery_limit

let pp_stop_reason ppf = function
  | All_terminal -> Fmt.string ppf "all-terminal"
  | Quiescent -> Fmt.string ppf "quiescent"
  | Delivery_limit -> Fmt.string ppf "delivery-limit"

module Make (P : Protocol.S) = struct
  type recovery = {
    snapshot : P.state -> string;
    restore :
      Protocol.Context.t ->
      P.input ->
      durable:string ->
      P.state * P.msg Protocol.action list * P.output list;
  }

  type config = {
    n : int;
    f : int;
    inputs : P.input array;
    faulty : (Node_id.t * P.msg Behaviour.t) list;
    adversary : Adversary.t;
    seed : int;
    max_deliveries : int;
    fairness_age : int;
    trace : Abc_sim.Trace.t option;
    detail : bool;
    topology : Topology.t option;
    link_faults : Link_faults.t option;
    recovery : recovery option;
  }

  type result = {
    outputs : (int * P.output) list array;
    stop : stop_reason;
    deliveries : int;
    duration : int;
    metrics : Abc_sim.Metrics.t;
  }

  let config ?(faulty = []) ?(adversary = Adversary.fifo) ?(seed = 0)
      ?max_deliveries ?fairness_age ?trace ?(detail = false) ?topology
      ?link_faults ?recovery ~n ~f ~inputs () =
    if Array.length inputs <> n then
      invalid_arg "Engine.config: inputs length must equal n";
    (match topology with
    | Some g when Topology.nodes g <> n ->
      invalid_arg "Engine.config: topology size must equal n"
    | Some _ | None -> ());
    List.iter
      (fun (id, b) ->
        if Node_id.to_int id >= n then
          invalid_arg "Engine.config: faulty node id out of range";
        match Behaviour.crash_schedule b with
        | Some s when not (Behaviour.validate_schedule s) ->
          invalid_arg
            "Engine.config: malformed Crash_recover schedule (need \
             non-empty, crash < rejoin, strictly increasing)"
        | Some _ | None -> ())
      faulty;
    let max_deliveries =
      match max_deliveries with Some m -> m | None -> 200_000 * n
    in
    let fairness_age =
      match fairness_age with Some a -> a | None -> 32 * n * n
    in
    {
      n;
      f;
      inputs;
      faulty;
      adversary;
      seed;
      max_deliveries;
      fairness_age;
      trace;
      detail;
      topology;
      link_faults;
      recovery;
    }

  let honest cfg =
    let faulty_set = Node_id.Set.of_list (List.map fst cfg.faulty) in
    List.filter
      (fun id -> not (Node_id.Set.mem id faulty_set))
      (Node_id.all ~n:cfg.n)

  type node = {
    id : Node_id.t;
    ctx : Protocol.Context.t;
    behaviour : P.msg Behaviour.t;
    behaviour_rng : Abc_prng.Stream.t;
    mutable state : P.state;
    mutable activations : int;
    mutable terminal : bool;
    mutable outputs : (int * P.output) list; (* reversed *)
  }

  let run cfg =
    let root = Abc_prng.Stream.root ~seed:cfg.seed in
    let adversary_rng = Abc_prng.Stream.split root ~label:cfg.n in
    (* Link-fault decisions draw from a dedicated stream (labels 0..n-1
       are the nodes, n the adversary, n+1..2n the behaviours), and the
       stream only exists when the plan can bite — so a run with faults
       disabled is bit-identical to one with no plan at all. *)
    let link_plan =
      match cfg.link_faults with
      | Some plan when Link_faults.active plan ->
        Some (plan, Abc_prng.Stream.split root ~label:((2 * cfg.n) + 1))
      | Some _ | None -> None
    in
    let policy = cfg.adversary.Adversary.instantiate () in
    let metrics = Abc_sim.Metrics.create () in
    (* Pre-interned handles for every per-message counter, so the hot
       path never concatenates or hashes a string label (see
       PERFORMANCE.md).  Interned-but-untouched handles stay invisible
       to [Metrics.counters], preserving pre-rework output exactly. *)
    let m_sent = Abc_sim.Metrics.handle metrics "sent" in
    let m_delivered = Abc_sim.Metrics.handle metrics "delivered" in
    let m_bytes_sent = Abc_sim.Metrics.handle metrics "bytes.sent" in
    let m_bytes_delivered = Abc_sim.Metrics.handle metrics "bytes.delivered" in
    let m_dropped_topology = Abc_sim.Metrics.handle metrics "dropped.topology" in
    let m_dropped_faulty = Abc_sim.Metrics.handle metrics "dropped.faulty" in
    let m_dropped_link = Abc_sim.Metrics.handle metrics "dropped.link" in
    let m_dropped_crashed = Abc_sim.Metrics.handle metrics "dropped.crashed" in
    let m_duplicated_link = Abc_sim.Metrics.handle metrics "duplicated.link" in
    let m_timer_set = Abc_sim.Metrics.handle metrics "timer.set" in
    let m_timer_fired = Abc_sim.Metrics.handle metrics "timer.fired" in
    let m_timer_stale = Abc_sim.Metrics.handle metrics "timer.stale" in
    let m_node_crashed = Abc_sim.Metrics.handle metrics "node.crashed" in
    let m_node_recovered = Abc_sim.Metrics.handle metrics "node.recovered" in
    (* Per-label counter handles ("sent.<label>", "bytes.sent.<label>",
       "bytes.delivered.<label>"), interned on first sight of the
       label.  Protocols return their labels as shared literals, so the
       physical-equality memo hits on nearly every message and the
       fallback table is touched only on label changes. *)
    let module Str_tbl = Hashtbl.Make (struct
      type t = string

      let equal = String.equal
      let hash = String.hash
    end) in
    let label_cache :
        (Abc_sim.Metrics.handle * Abc_sim.Metrics.handle * Abc_sim.Metrics.handle)
        Str_tbl.t =
      Str_tbl.create 8
    in
    let memo_label = ref (String.make 1 '\000') in
    let memo_handles = ref (m_sent, m_bytes_sent, m_bytes_delivered) in
    let label_handles label =
      if label == !memo_label then !memo_handles
      else begin
        let handles =
          match Str_tbl.find_opt label_cache label with
          | Some hs -> hs
          | None ->
            let hs =
              ( Abc_sim.Metrics.handle metrics ("sent." ^ label),
                Abc_sim.Metrics.handle metrics ("bytes.sent." ^ label),
                Abc_sim.Metrics.handle metrics ("bytes.delivered." ^ label) )
            in
            Str_tbl.add label_cache label hs;
            hs
        in
        memo_label := label;
        memo_handles := handles;
        handles
      end
    in
    let reason_cache : Abc_sim.Metrics.handle Str_tbl.t = Str_tbl.create 4 in
    let reason_handle reason =
      match Str_tbl.find_opt reason_cache reason with
      | Some h -> h
      | None ->
        let h = Abc_sim.Metrics.handle metrics ("dropped.link." ^ reason) in
        Str_tbl.add reason_cache reason h;
        h
    in
    (* Detail mode keeps per-node counters; intern the five handles per
       node up front instead of sprintf-ing a label per message. *)
    let node_handles =
      if not cfg.detail then [||]
      else
        Array.init cfg.n (fun i ->
            let h suffix =
              Abc_sim.Metrics.handle metrics
                (Printf.sprintf "node%d.%s" i suffix)
            in
            (h "sent", h "bytes.sent", h "delivered", h "bytes.delivered",
             h "outputs"))
    in
    let clock = Abc_sim.Clock.create () in
    let pending : P.msg Envelope_arena.t = Envelope_arena.create () in
    (* Virtual timers: (node, timer id, incarnation) payloads ordered
       by due tick; the heap's stable tie-breaking keeps firing order
       deterministic.  The incarnation stamp lets a crash invalidate
       every timer armed by the dead incarnation without scanning the
       heap. *)
    let timers : (int * int * int) Abc_sim.Heap.t = Abc_sim.Heap.create () in
    (* Crash-recovery bookkeeping.  [transitions] is the merged
       per-node crash/rejoin schedule in (tick, node) order; while
       [crashed.(i)] every delivery to node [i] is dropped and its
       timers are stale.  [durable.(i)] is the simulated write-ahead
       store captured at crash time. *)
    let crashed = Array.make cfg.n false in
    let incarnation = Array.make cfg.n 0 in
    let durable = Array.make cfg.n "" in
    let transition_order (t1, n1, k1) (t2, n2, k2) =
      let c = Int.compare t1 t2 in
      if c <> 0 then c
      else
        let c = Int.compare n1 n2 in
        if c <> 0 then c
        else
          let rank = function `Crash -> 0 | `Recover -> 1 in
          Int.compare (rank k1) (rank k2)
    in
    let transitions =
      ref
        (List.sort transition_order
           (List.concat_map
              (fun (id, b) ->
                match Behaviour.crash_schedule b with
                | None -> []
                | Some schedule ->
                  List.concat_map
                    (fun (crash, rejoin) ->
                      let i = Node_id.to_int id in
                      [ (crash, i, `Crash); (rejoin, i, `Recover) ])
                    schedule)
              cfg.faulty))
    in
    (* [has_transition]/[next_transition_due] poll the schedule head
       without allocating an option — they run every loop iteration. *)
    let has_transition () =
      match !transitions with [] -> false | _ :: _ -> true
    in
    let next_transition_due () =
      match !transitions with [] -> max_int | (t, _, _) :: _ -> t
    in
    let next_seq = ref 0 in
    let behaviour_of id =
      match List.assoc_opt id cfg.faulty with
      | Some b -> b
      | None -> Behaviour.Honest
    in
    (* Detailed per-protocol metrics, derived from the event stream:
       round lengths, quorum waits and decision latencies in virtual
       time.  Only maintained when [cfg.detail] is set. *)
    let round_started_at = Array.make cfg.n 0 in
    let observe_detail i (ev : Abc_sim.Event.t) =
      let now = Abc_sim.Clock.now clock in
      match ev.Abc_sim.Event.kind with
      | Abc_sim.Event.Round_advance ->
        Abc_sim.Metrics.incr metrics "rounds";
        round_started_at.(i) <- now
      | Abc_sim.Event.Quorum { quorum; _ } ->
        Abc_sim.Metrics.hist metrics ("quorum_wait." ^ quorum)
          (now - round_started_at.(i))
      | Abc_sim.Event.Coin_flip _ -> Abc_sim.Metrics.incr metrics "coin_flips"
      | Abc_sim.Event.Decide _ ->
        if ev.Abc_sim.Event.round >= 0 then
          Abc_sim.Metrics.hist metrics "rounds_to_decide" ev.Abc_sim.Event.round
      | _ -> ()
    in
    (* One sink per node: stamps events with the node id and the
       current virtual time.  [Event.null_sink] when observability is
       completely off, so emission sites guarded by [sink.enabled]
       allocate nothing on the disabled path. *)
    let sink_for i =
      match (cfg.trace, cfg.detail) with
      | None, false -> Abc_sim.Event.null_sink
      | trace, detail ->
        Abc_sim.Event.sink_to (fun ev ->
            (match trace with
            | Some tr ->
              Abc_sim.Trace.record tr ~time:(Abc_sim.Clock.now clock) ~node:i ev
            | None -> ());
            if detail then observe_detail i ev)
    in
    let sinks = Array.init cfg.n sink_for in
    let engine_note ~tag detail =
      match cfg.trace with
      | Some tr ->
        Abc_sim.Trace.note tr ~time:(Abc_sim.Clock.now clock) ~node:(-1) ~tag
          detail
      | None -> ()
    in
    let make_node i =
      let id = Node_id.of_int i in
      let ctx =
        {
          Protocol.Context.me = id;
          n = cfg.n;
          f = cfg.f;
          rng = Abc_prng.Stream.split root ~label:i;
          sink = sinks.(i);
        }
      in
      let state, actions = P.initial ctx cfg.inputs.(i) in
      ( {
          id;
          ctx;
          behaviour = behaviour_of id;
          behaviour_rng = Abc_prng.Stream.split root ~label:(cfg.n + 1 + i);
          state;
          activations = 0;
          terminal = false;
          outputs = [];
        },
        actions )
    in
    let created = Array.init cfg.n make_node in
    let nodes = Array.map fst created in
    (* Crash-recover nodes are *correct* (benign crash-restart, no lies)
       so they must reach a terminal output like honest nodes; only the
       genuinely Byzantine behaviours are exempt from termination.
       [nonterminal] counts the nodes still owing a terminal output, so
       the per-iteration all-honest-terminal check is O(1) instead of a
       scan over all n nodes. *)
    let byzantine = Array.make cfg.n false in
    List.iter
      (fun (id, b) ->
        match Behaviour.crash_schedule b with
        | Some _ -> ()
        | None -> byzantine.(Node_id.to_int id) <- true)
      cfg.faulty;
    let nonterminal = ref 0 in
    Array.iter (fun exempt -> if not exempt then incr nonterminal) byzantine;
    let set_terminal node =
      if not node.terminal then begin
        node.terminal <- true;
        if not byzantine.(Node_id.to_int node.id) then decr nonterminal
      end
    in
    let clear_terminal node =
      if node.terminal then begin
        node.terminal <- false;
        if not byzantine.(Node_id.to_int node.id) then incr nonterminal
      end
    in
    (* With a partial topology only edges of the graph carry messages;
       the self-channel always exists. *)
    let can_reach src dst =
      match cfg.topology with
      | None -> true
      | Some g -> Node_id.equal src dst || Topology.has_edge g src dst
    in
    let enqueue src action =
      let dispatch dst payload =
        if not (can_reach src dst) then
          Abc_sim.Metrics.incr_handle m_dropped_topology
        else begin
        let seq = !next_seq in
        next_seq := seq + 1;
        let now = Abc_sim.Clock.now clock in
        let priority = policy.Adversary.assign ~rng:adversary_rng ~now ~src ~dst in
        let meta = { Adversary.seq; src; dst; sent_at = now; priority } in
        Envelope_arena.push pending ~meta ~payload ~copy:false;
        policy.Adversary.note meta;
        let label = P.msg_label payload in
        let nbytes = P.msg_bytes payload in
        let sent_h, bytes_sent_h, _ = label_handles label in
        Abc_sim.Metrics.incr_handle m_sent;
        Abc_sim.Metrics.incr_handle sent_h;
        Abc_sim.Metrics.add_handle m_bytes_sent nbytes;
        Abc_sim.Metrics.add_handle bytes_sent_h nbytes;
        let src_i = Node_id.to_int src in
        if cfg.detail then begin
          let h_sent, h_bytes_sent, _, _, _ = node_handles.(src_i) in
          Abc_sim.Metrics.incr_handle h_sent;
          Abc_sim.Metrics.add_handle h_bytes_sent nbytes
        end;
        (match cfg.trace with
        | Some tr ->
          Abc_sim.Trace.record tr ~time:now ~node:src_i
            (Abc_sim.Event.make
               (Abc_sim.Event.Send
                  {
                    dst = Node_id.to_int dst;
                    label;
                    detail = "";
                    bytes = nbytes;
                  }))
        | None -> ())
        end
      in
      match action with
      | Protocol.Broadcast payload ->
        List.iter (fun dst -> dispatch dst payload) (Node_id.all ~n:cfg.n)
      | Protocol.Send (dst, payload) -> dispatch dst payload
      | Protocol.Set_timer { id; after } ->
        let now = Abc_sim.Clock.now clock in
        let due = now + max 1 after in
        let src_i = Node_id.to_int src in
        Abc_sim.Heap.push timers ~priority:due (src_i, id, incarnation.(src_i));
        Abc_sim.Metrics.incr_handle m_timer_set;
        (match cfg.trace with
        | Some tr ->
          Abc_sim.Trace.record tr ~time:now ~node:(Node_id.to_int src)
            (Abc_sim.Event.make (Abc_sim.Event.Timer_set { id; due }))
        | None -> ())
    in
    let emit_actions node actions =
      match node.behaviour with
      | Behaviour.Honest ->
        (* [Behaviour.apply Honest] is the identity and draws no
           randomness; skip the double list-length walk. *)
        List.iter (enqueue node.id) actions
      | _ ->
        let before = List.length actions in
        let actions =
          Behaviour.apply node.behaviour ~rng:node.behaviour_rng ~n:cfg.n
            ~activation:node.activations actions
        in
        if List.length actions < before then
          Abc_sim.Metrics.add_handle m_dropped_faulty
            (before - List.length actions);
        List.iter (enqueue node.id) actions
    in
    let record_outputs node outputs =
      let now = Abc_sim.Clock.now clock in
      let node_i = Node_id.to_int node.id in
      let note o =
        node.outputs <- (now, o) :: node.outputs;
        (match cfg.trace with
        | Some tr ->
          Abc_sim.Trace.record tr ~time:now ~node:node_i
            (Abc_sim.Event.make
               (Abc_sim.Event.Output { label = Fmt.str "%a" P.pp_output o }))
        | None -> ());
        if cfg.detail then begin
          let _, _, _, _, h_outputs = node_handles.(node_i) in
          Abc_sim.Metrics.incr_handle h_outputs
        end;
        if P.is_terminal o then set_terminal node
      in
      List.iter note outputs
    in
    (* Initialization: every node emits its starting actions at time 0
       (activation 0 — so [Crash_after 0] suppresses even these). *)
    let initialize (node, actions) =
      emit_actions node actions;
      node.activations <- 1
    in
    Array.iter initialize created;
    (* One view for the whole run: every accessor reads the arena live,
       so nothing is allocated per delivery. *)
    let view =
      Adversary.View.make
        ~length:(fun () -> Envelope_arena.length pending)
        ~get:(fun slot -> Envelope_arena.meta pending slot)
        ~oldest:(fun () -> Envelope_arena.oldest_slot pending)
        ~find_seq:(fun seq ->
          match Envelope_arena.slot_of_seq pending seq with
          | -1 -> None
          | slot -> Some slot)
    in
    let choose_slot now =
      let oldest = Envelope_arena.oldest_slot pending in
      let oldest_age =
        now - (Envelope_arena.meta pending oldest).Adversary.sent_at
      in
      if oldest_age >= cfg.fairness_age then oldest
      else policy.Adversary.choose ~rng:adversary_rng ~now view
    in
    let deliveries = ref 0 in
    (* The budget counts loop iterations — protocol deliveries, link
       drops and timer firings alike — so a lossy run whose transport
       keeps retransmitting into a dead link still terminates. *)
    let iterations = ref 0 in
    let fire_timer (node_i, id, inc) =
      if crashed.(node_i) || inc <> incarnation.(node_i) then
        (* Armed by a dead incarnation (or the node is down right now):
           the crash wiped the volatile state this timer belonged to. *)
        Abc_sim.Metrics.incr_handle m_timer_stale
      else begin
        let now = Abc_sim.Clock.now clock in
        let node = nodes.(node_i) in
        Abc_sim.Metrics.incr_handle m_timer_fired;
        (match cfg.trace with
        | Some tr ->
          Abc_sim.Trace.record tr ~time:now ~node:node_i
            (Abc_sim.Event.make (Abc_sim.Event.Timer_fire { id }))
        | None -> ());
        let state, actions, outputs = P.on_timeout node.ctx node.state ~id in
        node.state <- state;
        emit_actions node actions;
        node.activations <- node.activations + 1;
        record_outputs node outputs
      end
    in
    let do_crash node_i =
      let node = nodes.(node_i) in
      crashed.(node_i) <- true;
      incarnation.(node_i) <- incarnation.(node_i) + 1;
      (* The durable store is captured at crash time: the snapshot
         function extracts exactly the subset the protocol contracts to
         have written ahead (checkpoint record + committed-log prefix),
         so this models a WAL, not magic full-state persistence. *)
      durable.(node_i) <-
        (match cfg.recovery with
        | Some r -> r.snapshot node.state
        | None -> "");
      clear_terminal node;
      Abc_sim.Metrics.incr_handle m_node_crashed;
      match cfg.trace with
      | Some tr ->
        Abc_sim.Trace.record tr ~time:(Abc_sim.Clock.now clock) ~node:node_i
          (Abc_sim.Event.make Abc_sim.Event.Node_crash)
      | None -> ()
    in
    let do_recover node_i =
      let node = nodes.(node_i) in
      crashed.(node_i) <- false;
      Abc_sim.Metrics.incr_handle m_node_recovered;
      (match cfg.trace with
      | Some tr ->
        Abc_sim.Trace.record tr ~time:(Abc_sim.Clock.now clock) ~node:node_i
          (Abc_sim.Event.make Abc_sim.Event.Node_recover)
      | None -> ());
      let state, actions, outputs =
        match cfg.recovery with
        | Some r -> r.restore node.ctx cfg.inputs.(node_i) ~durable:durable.(node_i)
        | None ->
          (* Amnesia fallback: restart from the protocol's initial
             state, as a node with no durable store would. *)
          let state, actions = P.initial node.ctx cfg.inputs.(node_i) in
          (state, actions, [])
      in
      node.state <- state;
      emit_actions node actions;
      node.activations <- node.activations + 1;
      record_outputs node outputs
    in
    let apply_transitions now =
      let rec go () =
        match !transitions with
        | (t, node_i, kind) :: rest when t <= now ->
          transitions := rest;
          (match kind with
          | `Crash -> do_crash node_i
          | `Recover -> do_recover node_i);
          go ()
        | _ -> ()
      in
      go ()
    in
    let deliver now (meta : Adversary.meta) payload =
      let node = nodes.(Node_id.to_int meta.Adversary.dst) in
      incr deliveries;
      let nbytes = P.msg_bytes payload in
      let _, _, bytes_delivered_h = label_handles (P.msg_label payload) in
      Abc_sim.Metrics.incr_handle m_delivered;
      Abc_sim.Metrics.add_handle m_bytes_delivered nbytes;
      Abc_sim.Metrics.add_handle bytes_delivered_h nbytes;
      if cfg.detail then begin
        let _, _, h_delivered, h_bytes_delivered, _ =
          node_handles.(Node_id.to_int node.id)
        in
        Abc_sim.Metrics.incr_handle h_delivered;
        Abc_sim.Metrics.add_handle h_bytes_delivered nbytes
      end;
      (match cfg.trace with
      | Some tr ->
        (* The payload rendering is only built when tracing is on —
           the disabled path allocates nothing here. *)
        Abc_sim.Trace.record tr ~time:now ~node:(Node_id.to_int node.id)
          (Abc_sim.Event.make
             (Abc_sim.Event.Deliver
                {
                  src = Node_id.to_int meta.Adversary.src;
                  label = P.msg_label payload;
                  detail = Fmt.str "%a" P.pp_msg payload;
                  bytes = nbytes;
                }))
      | None -> ());
      let state, actions, outputs =
        P.on_message node.ctx node.state ~src:meta.Adversary.src payload
      in
      node.state <- state;
      emit_actions node actions;
      node.activations <- node.activations + 1;
      record_outputs node outputs
    in
    (* Re-enqueue a duplicate copy of the message as a fresh in-flight
       message (new sequence number, scheduled by the adversary like
       any other).  Copies are marked so they are never duplicated
       again — duplication is bounded, not a traffic amplifier. *)
    let enqueue_duplicate now (orig : Adversary.meta) payload =
      let src = orig.Adversary.src in
      let dst = orig.Adversary.dst in
      let seq = !next_seq in
      next_seq := seq + 1;
      let priority = policy.Adversary.assign ~rng:adversary_rng ~now ~src ~dst in
      let meta = { Adversary.seq; src; dst; sent_at = now; priority } in
      Envelope_arena.push pending ~meta ~payload ~copy:true;
      policy.Adversary.note meta;
      Abc_sim.Metrics.incr_handle m_duplicated_link;
      match cfg.trace with
      | Some tr ->
        Abc_sim.Trace.record tr ~time:now ~node:(Node_id.to_int src)
          (Abc_sim.Event.make
             (Abc_sim.Event.Link_dup
                {
                  src = Node_id.to_int src;
                  dst = Node_id.to_int dst;
                  label = P.msg_label payload;
                }))
      | None -> ()
    in
    (* A message scheduled for delivery while its destination is down
       is lost deterministically — the crash semantics, not a random
       link fault, so it gets its own counter. *)
    let drop_crashed now (meta : Adversary.meta) payload =
      Abc_sim.Metrics.incr_handle m_dropped_crashed;
      match cfg.trace with
      | Some tr ->
        Abc_sim.Trace.record tr ~time:now
          ~node:(Node_id.to_int meta.Adversary.dst)
          (Abc_sim.Event.make
             (Abc_sim.Event.Link_drop
                {
                  src = Node_id.to_int meta.Adversary.src;
                  dst = Node_id.to_int meta.Adversary.dst;
                  label = P.msg_label payload;
                  reason = "crashed";
                }))
      | None -> ()
    in
    let drop_envelope now (meta : Adversary.meta) payload reason =
      Abc_sim.Metrics.incr_handle m_dropped_link;
      Abc_sim.Metrics.incr_handle (reason_handle reason);
      match cfg.trace with
      | Some tr ->
        Abc_sim.Trace.record tr
          ~time:now
          ~node:(Node_id.to_int meta.Adversary.dst)
          (Abc_sim.Event.make
             (Abc_sim.Event.Link_drop
                {
                  src = Node_id.to_int meta.Adversary.src;
                  dst = Node_id.to_int meta.Adversary.dst;
                  label = P.msg_label payload;
                  reason;
                }))
      | None -> ()
    in
    (* Delivery ages are tracked in a local maximum and published as
       the "max_delivery_age" counter once, after the loop — same
       final value as the per-delivery read-compare-add it replaces,
       without two hashtable probes per delivery. *)
    let max_age = ref 0 in
    let stop = ref None in
    while !stop = None do
      (* A pending crash/rejoin transition keeps the run alive even
         when every honest node is momentarily terminal: the fault
         plan executes in full, so a node scheduled to crash after
         completing still crashes (and must re-terminate from its
         durable store for the run to end all-terminal). *)
      if !nonterminal = 0 && not (has_transition ()) then
        stop := Some All_terminal
      else if
        Envelope_arena.is_empty pending
        && Abc_sim.Heap.is_empty timers
        && not (has_transition ())
      then stop := Some Quiescent
      else if !iterations >= cfg.max_deliveries then stop := Some Delivery_limit
      else begin
        incr iterations;
        let now = Abc_sim.Clock.tick clock in
        (* When no message is deliverable the clock jumps forward to
           the next timer or crash/rejoin transition — whichever comes
           first — instead of reporting Quiescent. *)
        let now =
          if Envelope_arena.is_empty pending then begin
            let due =
              min
                (Abc_sim.Heap.peek_priority timers ~default:max_int)
                (next_transition_due ())
            in
            if due <> max_int && due > now then begin
              Abc_sim.Clock.advance_to clock due;
              due
            end
            else now
          end
          else now
        in
        (* Scheduled crashes/rejoins due by [now] apply before any
           timer firing or delivery at this instant, so a delivery
           chosen at the crash tick already sees the node down. *)
        apply_transitions now;
        (* Timers due by now fire before any delivery.  (The empty-
           pending clock jump above already landed on the earliest
           timer/transition, so [due <= now] is the whole test — a
           timer must never leapfrog a nearer scheduled transition.) *)
        if Abc_sim.Heap.peek_priority timers ~default:max_int <= now then begin
          match Abc_sim.Heap.pop timers with
          | None -> assert false
          | Some (due, target) ->
            if due > now then Abc_sim.Clock.advance_to clock due;
            fire_timer target
        end
        else if Envelope_arena.is_empty pending then
          (* Only a future transition remained and it just applied (or
             is still ahead); nothing to deliver this iteration. *)
          ()
        else begin
          let slot = choose_slot now in
          let meta = Envelope_arena.meta pending slot in
          let payload = Envelope_arena.payload pending slot in
          let is_copy = Envelope_arena.copy pending slot in
          Envelope_arena.remove pending slot;
          (* Record the delivery age so tests can audit the fairness
             guarantee: no message older than the bound is ever passed
             over.  Link-fault drops still count — the age measures the
             scheduler, which did pick the message. *)
          let age = now - meta.Adversary.sent_at in
          if age > !max_age then max_age := age;
          if crashed.(Node_id.to_int meta.Adversary.dst) then
            drop_crashed now meta payload
          else begin
            let verdict =
              match link_plan with
              | None -> Link_faults.Deliver
              | Some (plan, rng) ->
                Link_faults.judge plan rng ~now ~src:meta.Adversary.src
                  ~dst:meta.Adversary.dst ~can_dup:(not is_copy)
            in
            match verdict with
            | Link_faults.Drop reason -> drop_envelope now meta payload reason
            | Link_faults.Deliver -> deliver now meta payload
            | Link_faults.Duplicate ->
              enqueue_duplicate now meta payload;
              deliver now meta payload
          end
        end
      end
    done;
    if !max_age > 0 then Abc_sim.Metrics.add metrics "max_delivery_age" !max_age;
    let stop = match !stop with Some s -> s | None -> assert false in
    engine_note ~tag:"stop" (Fmt.str "%a" pp_stop_reason stop);
    {
      outputs = Array.map (fun node -> List.rev node.outputs) nodes;
      stop;
      deliveries = !deliveries;
      duration = Abc_sim.Clock.now clock;
      metrics;
    }
end
