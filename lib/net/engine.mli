(** The asynchronous execution engine.

    [Engine.Make (P)] runs [n] instances of protocol [P] over a
    reliable, authenticated, completely asynchronous network: the
    configured {!Adversary.t} picks the delivery order, a fairness
    bound guarantees every message is eventually delivered, and faulty
    nodes have their traffic corrupted by their {!Behaviour.t}.

    One virtual tick elapses per delivery.  Runs are deterministic
    functions of the configuration (including the seed). *)

type stop_reason =
  | All_terminal
      (** every honest node emitted a terminal output — success *)
  | Quiescent
      (** no messages in flight, no timers pending, but some honest
          node is not terminal: the protocol deadlocked (or was
          configured beyond its resilience, or its messages were
          killed by link faults with no transport layer to retry) *)
  | Delivery_limit  (** the configured delivery budget ran out *)

val pp_stop_reason : stop_reason Fmt.t

module Make (P : Protocol.S) : sig
  type recovery = {
    snapshot : P.state -> string;
        (** extract the durable subset of a node's state — what the
            protocol contracts to have written ahead to stable storage
            (e.g. a checkpoint record plus the committed-log prefix).
            Called at crash time; everything not captured here is lost. *)
    restore :
      Protocol.Context.t ->
      P.input ->
      durable:string ->
      P.state * P.msg Protocol.action list * P.output list;
        (** rebuild a freshly-rejoined node from its durable store
            (the last [snapshot], or [""] on a pre-first-crash rejoin
            path).  Returns the restart state plus the actions and
            outputs to emit immediately — typically a catch-up request
            and a retry timer. *)
  }
  (** How {!Behaviour.Crash_recover} nodes come back.  When [None] in
      the config, a rejoining node restarts from [P.initial] with total
      amnesia. *)

  type config = {
    n : int;  (** number of nodes *)
    f : int;  (** resilience parameter handed to the protocol *)
    inputs : P.input array;  (** one input per node; length [n] *)
    faulty : (Node_id.t * P.msg Behaviour.t) list;
        (** faulty nodes and their behaviours; all other nodes are
            honest *)
    adversary : Adversary.t;  (** message scheduling policy *)
    seed : int;  (** root seed: equal seeds give equal runs *)
    max_deliveries : int;
        (** hard stop for non-terminating setups; counts engine steps
            (deliveries, link-fault drops and timer firings) *)
    fairness_age : int;
        (** a message older than this many ticks is delivered next,
            overriding the adversary — the "eventual delivery" bound *)
    trace : Abc_sim.Trace.t option;
        (** optional execution trace; when set, every send, delivery,
            output and protocol event (quorums, coin flips, round
            advances, decisions) is recorded as a typed
            {!Abc_sim.Event.t} stamped with node and virtual time *)
    detail : bool;
        (** when [true], maintain detailed per-protocol metrics derived
            from the event stream: ["rounds"], ["coin_flips"] and
            per-node ["node<i>.sent"/"node<i>.delivered"/
            "node<i>.outputs"] counters plus ["rounds_to_decide"] and
            ["quorum_wait.<name>"] histograms (virtual ticks from the
            node's last round advance to the quorum).  Costs one
            closure call per event; [false] (the default) keeps the
            disabled path allocation-free *)
    topology : Topology.t option;
        (** communication graph; [None] means complete.  Messages along
            non-edges are dropped (counted as ["dropped.topology"]);
            the self-channel always exists *)
    link_faults : Link_faults.t option;
        (** per-link fault plan applied at delivery time; [None] (or an
            inactive plan) is the paper's reliable network.  Drops are
            counted as ["dropped.link"] (plus ["dropped.link.loss"] /
            ["dropped.link.partition"]), duplicates as
            ["duplicated.link"], and both are traced as typed events.
            Fault decisions draw from a dedicated PRNG stream, so runs
            without faults are unaffected by the feature existing *)
    recovery : recovery option;
        (** durable-store support for {!Behaviour.Crash_recover} nodes.
            A crash wipes the node's volatile state, drops every
            delivery scheduled while it is down (counted as
            ["dropped.crashed"], traced as a link-drop with reason
            ["crashed"]) and invalidates its armed timers (counted as
            ["timer.stale"]); the rejoin rebuilds it via [restore].
            Crash-recover nodes are {e correct} — they count towards
            the all-terminal stop condition, unlike Byzantine nodes *)
  }

  type result = {
    outputs : (int * P.output) list array;
        (** per node: (virtual time, output) pairs in emission order *)
    stop : stop_reason;
    deliveries : int;
        (** messages actually delivered to protocol code (link-fault
            drops and timer firings consume the delivery budget but are
            not counted here) *)
    duration : int;  (** final virtual time *)
    metrics : Abc_sim.Metrics.t;
        (** counters: ["sent"] and ["sent.<label>"] count point-to-point
            messages (a broadcast counts [n] times), ["delivered"]
            counts deliveries, ["dropped.faulty"] counts logical
            actions suppressed by fault behaviours,
            ["max_delivery_age"] is the oldest any delivered message
            got (ticks in flight) — the fairness audit *)
  }

  val config :
    ?faulty:(Node_id.t * P.msg Behaviour.t) list ->
    ?adversary:Adversary.t ->
    ?seed:int ->
    ?max_deliveries:int ->
    ?fairness_age:int ->
    ?trace:Abc_sim.Trace.t ->
    ?detail:bool ->
    ?topology:Topology.t ->
    ?link_faults:Link_faults.t ->
    ?recovery:recovery ->
    n:int ->
    f:int ->
    inputs:P.input array ->
    unit ->
    config
  (** Build a configuration with sensible defaults: no faults, fifo
      adversary, seed 0, delivery budget [200_000 * n], fairness age
      [32 * n * n] (long enough that starvation policies bite, short
      enough that runs finish). *)

  val run : config -> result
  (** Execute the configured run to completion. *)

  val honest : config -> Node_id.t list
  (** The nodes of the run that are not in the faulty list. *)
end
