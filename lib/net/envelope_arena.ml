(* Int-indexed arena for in-flight messages: struct-of-arrays slots
   (meta / payload / duplicate flag) plus a flat seq -> slot table, so
   the engine's enqueue / schedule / swap-remove hot path allocates
   nothing beyond the one meta record the adversary interface needs.
   Removal replicates Vec.swap_remove exactly — the last slot moves
   into the hole — which is what keeps adversary index choices, and
   therefore whole traces, byte-identical to the pre-arena engine
   (see PERFORMANCE.md). *)

type 'a t = {
  mutable metas : Adversary.meta array;
  mutable payloads : 'a array;
  mutable copies : bool array;
  mutable size : int;
  (* [slots.(seq)] is the live slot of sequence number [seq], or -1
     once delivered.  Seqs are assigned monotonically by the engine,
     so a flat array (8 bytes per message ever sent) replaces a
     per-message Hashtbl add/remove/replace cycle. *)
  mutable slots : int array;
  mutable seq_hi : int;  (* exclusive upper bound of assigned seqs *)
  mutable cursor : int;  (* amortized oldest-live-seq scan position *)
}

let create () =
  {
    metas = [||];
    payloads = [||];
    copies = [||];
    size = 0;
    slots = Array.make 256 (-1);
    seq_hi = 0;
    cursor = 0;
  }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = Array.length t.metas

let grow t meta payload =
  let cap = Array.length t.metas in
  if cap = 0 then begin
    t.metas <- Array.make 16 meta;
    t.payloads <- Array.make 16 payload;
    t.copies <- Array.make 16 false
  end
  else begin
    let ms = Array.make (2 * cap) meta in
    Array.blit t.metas 0 ms 0 t.size;
    t.metas <- ms;
    let ps = Array.make (2 * cap) payload in
    Array.blit t.payloads 0 ps 0 t.size;
    t.payloads <- ps;
    let cs = Array.make (2 * cap) false in
    Array.blit t.copies 0 cs 0 t.size;
    t.copies <- cs
  end

let grow_slots t seq =
  let cap = Array.length t.slots in
  if seq >= cap then begin
    let bigger = Array.make (max (2 * cap) (seq + 1)) (-1) in
    Array.blit t.slots 0 bigger 0 cap;
    t.slots <- bigger
  end

let push t ~meta ~payload ~copy =
  if t.size = Array.length t.metas then grow t meta payload;
  let slot = t.size in
  t.metas.(slot) <- meta;
  t.payloads.(slot) <- payload;
  t.copies.(slot) <- copy;
  t.size <- slot + 1;
  let seq = meta.Adversary.seq in
  assert (seq >= t.seq_hi);
  grow_slots t seq;
  t.slots.(seq) <- slot;
  t.seq_hi <- seq + 1

let meta t slot =
  if slot < 0 || slot >= t.size then
    invalid_arg "Envelope_arena.meta: slot out of bounds";
  t.metas.(slot)

let payload t slot =
  if slot < 0 || slot >= t.size then
    invalid_arg "Envelope_arena.payload: slot out of bounds";
  t.payloads.(slot)

let copy t slot =
  if slot < 0 || slot >= t.size then
    invalid_arg "Envelope_arena.copy: slot out of bounds";
  t.copies.(slot)

let remove t slot =
  if slot < 0 || slot >= t.size then
    invalid_arg "Envelope_arena.remove: slot out of bounds";
  t.slots.(t.metas.(slot).Adversary.seq) <- -1;
  let last = t.size - 1 in
  t.size <- last;
  if slot < last then begin
    (* Move the last entry into the hole and retarget its seq slot. *)
    let moved = t.metas.(last) in
    t.metas.(slot) <- moved;
    t.payloads.(slot) <- t.payloads.(last);
    t.copies.(slot) <- t.copies.(last);
    t.slots.(moved.Adversary.seq) <- slot
  end

let slot_of_seq t seq =
  if seq < 0 || seq >= t.seq_hi then -1 else t.slots.(seq)

let oldest_slot t =
  while t.slots.(t.cursor) < 0 do
    t.cursor <- t.cursor + 1;
    assert (t.cursor < t.seq_hi)
  done;
  t.slots.(t.cursor)
