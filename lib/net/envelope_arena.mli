(** Int-indexed arena for in-flight messages.

    The engine's pending-message store: struct-of-arrays slots (meta /
    payload / duplicate flag) plus a flat seq → slot table replacing a
    per-message hashtable.  Removal moves the last slot into the hole —
    exactly {!Abc_sim.Vec.swap_remove}'s layout — so adversary index
    choices, and therefore traces, are byte-identical to the pre-arena
    engine.  Slots at or past [length] may hold stale entries; they are
    overwritten by later pushes (see PERFORMANCE.md). *)

type 'a t
(** An arena of in-flight messages with payloads of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty arena. *)

val length : 'a t -> int
(** Number of live (in-flight) messages. *)

val is_empty : 'a t -> bool
(** [is_empty t] is [length t = 0]. *)

val capacity : 'a t -> int
(** Allocated slot count — grows by doubling and never shrinks, so a
    steady-state run recycles slots instead of allocating (asserted by
    the reuse-after-recycle unit test). *)

val push : 'a t -> meta:Adversary.meta -> payload:'a -> copy:bool -> unit
(** [push t ~meta ~payload ~copy] appends a message at slot
    [length t].  [meta.seq] values must be assigned monotonically
    (the engine's global send counter). *)

val meta : 'a t -> int -> Adversary.meta
(** [meta t slot] is the scheduling metadata at [slot].  Raises
    [Invalid_argument] when out of bounds. *)

val payload : 'a t -> int -> 'a
(** [payload t slot] is the message payload at [slot]. *)

val copy : 'a t -> int -> bool
(** [copy t slot] is whether the message is a link-fault duplicate
    (exempt from re-duplication). *)

val remove : 'a t -> int -> unit
(** [remove t slot] deletes the message at [slot] by moving the last
    live slot into the hole (O(1), order not preserved) and retires
    its seq from the lookup table. *)

val slot_of_seq : 'a t -> int -> int
(** [slot_of_seq t seq] is the live slot currently holding sequence
    number [seq], or [-1] when that message is no longer in flight. *)

val oldest_slot : 'a t -> int
(** [oldest_slot t] is the slot of the longest-in-flight message —
    the smallest live seq.  Amortized O(1) over a run: a monotonic
    cursor scans the seq table.  The arena must be non-empty. *)
