type cut = { from_tick : int; until_tick : int; island : Node_id.Set.t }

type t = { name : string; drop : float; dup : float; cuts : cut list }

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Link_faults: %s probability %g not in [0,1]" what p)

let cut ~from_tick ~until_tick island =
  if from_tick < 0 || until_tick < from_tick then
    invalid_arg "Link_faults.cut: need 0 <= from_tick <= until_tick";
  { from_tick; until_tick; island = Node_id.Set.of_list island }

let make ?(name = "link-faults") ?(drop = 0.0) ?(dup = 0.0) ?(cuts = []) () =
  check_prob "drop" drop;
  check_prob "dup" dup;
  { name; drop; dup; cuts }

let none = make ~name:"none" ()

let active t = t.drop > 0.0 || t.dup > 0.0 || t.cuts <> []

let name t = t.name

(* A cut severs src -> dst during [from_tick, until_tick) when exactly
   one endpoint is inside the island — traffic within the island (and
   within its complement) still flows, matching a network partition. *)
let severed t ~now ~src ~dst =
  List.exists
    (fun c ->
      now >= c.from_tick && now < c.until_tick
      && not
           (Bool.equal (Node_id.Set.mem src c.island)
              (Node_id.Set.mem dst c.island)))
    t.cuts

type verdict = Deliver | Drop of string | Duplicate

let judge t rng ~now ~src ~dst ~can_dup =
  if Node_id.equal src dst then Deliver
  else if severed t ~now ~src ~dst then Drop "partition"
  else if t.drop > 0.0 && Abc_prng.Stream.bernoulli rng ~p:t.drop then Drop "loss"
  else if can_dup && t.dup > 0.0 && Abc_prng.Stream.bernoulli rng ~p:t.dup then
    Duplicate
  else Deliver

let pp ppf t =
  Fmt.pf ppf "%s(drop=%g dup=%g cuts=%d)" t.name t.drop t.dup (List.length t.cuts)
