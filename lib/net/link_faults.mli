(** Deterministic per-link fault plans.

    Bracha's model {e assumes} reliable authenticated channels; this
    module is how the engine withdraws that assumption.  A plan
    describes message-level faults — random loss, random duplication,
    and scheduled partitions that heal — and the engine applies it at
    delivery time, so the adversarial scheduler still controls ordering
    and the fault plan controls survival.

    Everything is a deterministic function of the run seed: fault
    decisions draw from a dedicated PRNG stream split off the engine's
    root (see [Engine]), so the same seed replays the same drops,
    duplicates and timer firings.  Faults never apply to a node's
    self-channel (a node can always talk to itself). *)

type cut
(** One scheduled partition interval. *)

val cut : from_tick:int -> until_tick:int -> Node_id.t list -> cut
(** [cut ~from_tick ~until_tick island] severs every link crossing the
    boundary between [island] and its complement during the virtual
    time interval [\[from_tick, until_tick)] — the partition heals at
    [until_tick].  Traffic within either side still flows.  Requires
    [0 <= from_tick <= until_tick]. *)

type t
(** A per-link fault plan. *)

val make : ?name:string -> ?drop:float -> ?dup:float -> ?cuts:cut list -> unit -> t
(** [make ()] is the fault-free plan.  [drop] is the per-delivery loss
    probability, [dup] the probability a delivered message is also
    re-enqueued as a duplicate copy (duplicates are never themselves
    duplicated), [cuts] the partition schedule.  Raises [Invalid_argument]
    on probabilities outside [0, 1]. *)

val none : t
(** The fault-free plan ([active none = false]). *)

val active : t -> bool
(** [active t] is [true] when [t] can affect any delivery.  An engine
    configured with an inactive plan behaves bit-identically to one
    configured with no plan at all. *)

val name : t -> string

val severed : t -> now:int -> src:Node_id.t -> dst:Node_id.t -> bool
(** [severed t ~now ~src ~dst] is [true] when a cut currently severs
    the [src -> dst] link. *)

(** The fate of one attempted delivery. *)
type verdict =
  | Deliver  (** deliver normally *)
  | Drop of string  (** discard; the string is ["loss"] or ["partition"] *)
  | Duplicate  (** deliver normally {e and} re-enqueue a duplicate copy *)

val judge :
  t ->
  Abc_prng.Stream.t ->
  now:int ->
  src:Node_id.t ->
  dst:Node_id.t ->
  can_dup:bool ->
  verdict
(** [judge t rng ~now ~src ~dst ~can_dup] decides the fate of a message
    about to be delivered.  Partition cuts are checked first (no
    randomness), then loss, then duplication.  [can_dup:false] marks a
    message that is already a duplicate copy, which is exempt from
    further duplication.  Self-channel messages ([src = dst]) are
    always delivered. *)

val pp : t Fmt.t
