type 'msg action =
  | Broadcast of 'msg
  | Send of Node_id.t * 'msg
  | Set_timer of { id : int; after : int }

module Context = struct
  type t = {
    me : Node_id.t;
    n : int;
    f : int;
    rng : Abc_prng.Stream.t;
    sink : Abc_sim.Event.sink;
  }

  let quorum ctx = ctx.n - ctx.f
end

module type S = sig
  type input
  type msg
  type output
  type state

  val name : string
  val initial : Context.t -> input -> state * msg action list

  val on_message :
    Context.t -> state -> src:Node_id.t -> msg -> state * msg action list * output list

  val on_timeout :
    Context.t -> state -> id:int -> state * msg action list * output list

  val is_terminal : output -> bool
  val msg_label : msg -> string
  val msg_bytes : msg -> int
  val pp_msg : msg Fmt.t
  val pp_output : output Fmt.t
end

let no_timeout _ctx state ~id:_ = (state, [], [])

module Wire_size = struct
  let tag = 1

  let int = 4

  let node_id = 4

  let option inner = function None -> tag | Some v -> tag + inner v
end
