(** Protocol state machines.

    A protocol is a deterministic (up to its private random stream)
    state machine reacting to message deliveries.  The engine owns all
    I/O: a protocol only returns {e actions} (messages to transmit) and
    {e outputs} (externally visible events such as "decided 1").

    The model matches the asynchronous authenticated point-to-point
    network of Bracha (PODC 1984): every message is eventually
    delivered, delivery order is adversarial, and the receiver learns
    the true sender identity. *)

type 'msg action =
  | Broadcast of 'msg
      (** Transmit to every node, including the sender itself.  The
          self-copy travels through the network like any other message,
          which only strengthens the adversary. *)
  | Send of Node_id.t * 'msg  (** Transmit to a single node. *)
  | Set_timer of { id : int; after : int }
      (** Arm a virtual timer: the engine calls {!S.on_timeout} on this
          node with [id] once [after] ticks of virtual time have
          elapsed (at least one).  Timers are node-local — they never
          cross the network — and are not cancellable: a protocol that
          no longer cares about a timeout simply ignores the firing.
          The engine will not report [Quiescent] while timers are
          pending, which is what lets transport protocols retransmit
          into silence. *)

module Context : sig
  type t = {
    me : Node_id.t;  (** this node's identity *)
    n : int;  (** total number of nodes *)
    f : int;  (** resilience parameter the protocol must tolerate *)
    rng : Abc_prng.Stream.t;  (** this node's private random stream *)
    sink : Abc_sim.Event.sink;
        (** where this node's protocol events go.  The engine stamps
            each emitted event with the node id and virtual time; when
            tracing is off this is {!Abc_sim.Event.null_sink} and
            emission sites must guard with [sink.enabled] so disabled
            runs allocate nothing.  The sink holds a closure — protocol
            code must never store it (or the whole context) inside its
            marshalable [state]. *)
  }

  val quorum : t -> int
  (** [quorum ctx] is [n - f], the number of messages a node may safely
      wait for in an asynchronous system. *)
end

module type S = sig
  type input
  (** Per-node initial input (e.g. the proposed bit). *)

  type msg
  (** Wire message type. *)

  type output
  (** Externally visible event (delivery, decision, ...). *)

  type state
  (** Node-local protocol state. *)

  val name : string
  (** Human-readable protocol name. *)

  val initial : Context.t -> input -> state * msg action list
  (** [initial ctx input] is the starting state and the actions emitted
      before any delivery. *)

  val on_message :
    Context.t -> state -> src:Node_id.t -> msg -> state * msg action list * output list
  (** [on_message ctx state ~src msg] reacts to the delivery of [msg]
      sent by [src]. *)

  val on_timeout :
    Context.t -> state -> id:int -> state * msg action list * output list
  (** [on_timeout ctx state ~id] reacts to the firing of a timer this
      node armed earlier with {!Set_timer}.  Protocols that never arm
      timers should use {!no_timeout}. *)

  val is_terminal : output -> bool
  (** [is_terminal o] is [true] when [o] marks this node as done (the
      engine stops once every honest node has emitted a terminal
      output). *)

  val msg_label : msg -> string
  (** Short label used for per-kind message counters. *)

  val msg_bytes : msg -> int
  (** Estimated serialized size of [msg] on the wire, in bytes.  The
      engine accumulates these into the [bytes.sent] / [bytes.delivered]
      metric counters and stamps them on [send] / [deliver] trace
      events, which is what the bandwidth experiments (E16) measure.
      The estimate follows the {!Wire_size} convention: one byte per
      constructor tag, four bytes per bounded integer field, payloads
      at their own advertised size.  It must depend only on the message
      value (never on node state) so the same message costs the same at
      every hop. *)

  val pp_msg : msg Fmt.t
  val pp_output : output Fmt.t
end

val no_timeout :
  Context.t -> 'state -> id:int -> 'state * 'msg action list * 'output list
(** Default {!S.on_timeout} for protocols that never arm timers:
    ignores the firing and changes nothing. *)

(** The shared size convention behind every {!S.msg_bytes}: a compact
    binary framing with one-byte constructor tags, four-byte integers
    (rounds, sequence numbers, node ids are all small) and
    length-delimited payloads.  Centralizing the constants keeps the
    per-protocol estimates comparable — the absolute numbers matter
    less than their ratios across protocols. *)
module Wire_size : sig
  val tag : int
  (** One byte per variant-constructor / field tag. *)

  val int : int
  (** Four bytes per bounded integer field. *)

  val node_id : int
  (** Node identities travel as four-byte integers. *)

  val option : ('a -> int) -> 'a option -> int
  (** [option inner o] is a presence tag plus [inner v] when
      [o = Some v]. *)
end
