module Make (P : Protocol.S) = struct
  type msg = {
    origin : Node_id.t;
    sequence : int;
    target : Node_id.t option;
    inner : P.msg;
  }

  type input = P.input

  type output = P.output

  module Seen = Set.Make (Int)

  (* (origin, sequence) packed into one immediate int: origin in the
     high bits, sequence in the low 32.  Node ids are small and
     per-node sequence counters stay far below 2^32, so the packing is
     injective; membership tests then compare unboxed ints instead of
     allocating and walking tuples. *)
  let seen_key origin sequence = (Node_id.to_int origin lsl 32) lor sequence

  type state = {
    inner_state : P.state;
    seen : Seen.t;
    next_sequence : int;
  }

  let name = P.name ^ "+relay"

  (* Wrap the inner protocol's actions into flood envelopes.  Both
     broadcasts and targeted sends are flooded (the target may not be a
     direct neighbour); targeted payloads are delivered only at their
     target. *)
  let wrap me state actions =
    List.fold_left
      (fun (state, wrapped) action ->
        match action with
        | Protocol.Set_timer { id; after } ->
          (* Timers are node-local: nothing to flood. *)
          (state, Protocol.Set_timer { id; after } :: wrapped)
        | Protocol.Broadcast _ | Protocol.Send _ ->
          let sequence = state.next_sequence in
          let state = { state with next_sequence = sequence + 1 } in
          let envelope =
            match action with
            | Protocol.Broadcast inner ->
              { origin = me; sequence; target = None; inner }
            | Protocol.Send (dst, inner) ->
              { origin = me; sequence; target = Some dst; inner }
            | Protocol.Set_timer _ -> assert false
          in
          (state, Protocol.Broadcast envelope :: wrapped))
      (state, []) actions
    |> fun (state, wrapped) -> (state, List.rev wrapped)

  let initial ctx input =
    let inner_state, actions = P.initial ctx input in
    let state = { inner_state; seen = Seen.empty; next_sequence = 0 } in
    wrap ctx.Protocol.Context.me state actions
    |> fun (state, actions) -> (state, actions)

  let on_message ctx state ~src:_ envelope =
    let key = seen_key envelope.origin envelope.sequence in
    if Seen.mem key state.seen then (state, [], [])
    else begin
      let state = { state with seen = Seen.add key state.seen } in
      (* Forward first: relaying must not depend on whether the payload
         concerns us. *)
      let forward = Protocol.Broadcast envelope in
      let me = ctx.Protocol.Context.me in
      let addressed =
        match envelope.target with
        | None -> true
        | Some dst -> Node_id.equal dst me
      in
      if not addressed then (state, [ forward ], [])
      else begin
        let inner_state, inner_actions, outputs =
          P.on_message ctx state.inner_state ~src:envelope.origin envelope.inner
        in
        let state = { state with inner_state } in
        let state, wrapped = wrap me state inner_actions in
        (state, forward :: wrapped, outputs)
      end
    end

  let on_timeout ctx state ~id =
    let inner_state, inner_actions, outputs =
      P.on_timeout ctx state.inner_state ~id
    in
    let state = { state with inner_state } in
    let state, wrapped = wrap ctx.Protocol.Context.me state inner_actions in
    (state, wrapped, outputs)

  let is_terminal = P.is_terminal

  let msg_label envelope = "relay." ^ P.msg_label envelope.inner

  let msg_bytes envelope =
    let open Protocol.Wire_size in
    node_id + int
    + option (fun (_ : Node_id.t) -> node_id) envelope.target
    + P.msg_bytes envelope.inner

  let pp_msg ppf envelope =
    Fmt.pf ppf "relay[%a#%d%a]:%a" Node_id.pp envelope.origin envelope.sequence
      (Fmt.option (fun ppf t -> Fmt.pf ppf "->%a" Node_id.pp t))
      envelope.target P.pp_msg envelope.inner

  let pp_output = P.pp_output
end
