module Int_map = Map.Make (Int)

module Make (P : Protocol.S) = struct
  type msg =
    | Data of { seq : int; retx : bool; inner : P.msg }
    | Ack of { upto : int }

  type input = P.input
  type output = P.output

  (* Per-destination sender side: a sliding window of everything not
     yet cumulatively acknowledged, plus the retransmission clock. *)
  type channel = {
    next_seq : int;
    unacked : P.msg Int_map.t;
    rto : int;  (* current retransmission timeout, in virtual ticks *)
    timer_armed : bool;
  }

  (* Per-source receiver side: the next in-order sequence number and a
     reorder buffer for everything that arrived early. *)
  type peer_in = { expected : int; buffered : P.msg Int_map.t }

  type state = {
    inner : P.state;
    out : channel Int_map.t;  (* keyed by destination node int *)
    inbound : peer_in Int_map.t;  (* keyed by source node int *)
    rto_initial : int;
    rto_cap : int;
  }

  let name = P.name ^ "+rl"

  (* The engine delivers roughly one in-flight message per tick, so a
     round trip under a uniform scheduler takes on the order of the
     pool size, which is O(n^2) messages for a broadcast protocol.
     Starting near that and backing off exponentially keeps spurious
     retransmissions (which are harmless — the receiver dedups and
     re-acks) from dominating traffic. *)
  let initial_rto n = 8 * n * n
  let cap_rto n = 1024 * n * n

  (* Wrapper timers use ids [0..n-1] (one per destination channel);
     the wrapped protocol's own timer ids are shifted up by [n]. *)
  let send_data st dst_i inner_msg =
    let ch = Int_map.find dst_i st.out in
    let seq = ch.next_seq in
    let arm = not ch.timer_armed in
    let ch =
      {
        ch with
        next_seq = seq + 1;
        unacked = Int_map.add seq inner_msg ch.unacked;
        timer_armed = true;
      }
    in
    let st = { st with out = Int_map.add dst_i ch st.out } in
    let send =
      Protocol.Send
        (Node_id.of_int dst_i, Data { seq; retx = false; inner = inner_msg })
    in
    let actions =
      if arm then [ send; Protocol.Set_timer { id = dst_i; after = ch.rto } ]
      else [ send ]
    in
    (st, actions)

  let wrap ctx st actions =
    let n = ctx.Protocol.Context.n in
    let st, rev =
      List.fold_left
        (fun (st, rev) action ->
          match action with
          | Protocol.Broadcast m ->
            let rec go st rev dst_i =
              if dst_i >= n then (st, rev)
              else begin
                let st, sends = send_data st dst_i m in
                go st (List.rev_append sends rev) (dst_i + 1)
              end
            in
            go st rev 0
          | Protocol.Send (dst, m) ->
            let st, sends = send_data st (Node_id.to_int dst) m in
            (st, List.rev_append sends rev)
          | Protocol.Set_timer { id; after } ->
            (st, Protocol.Set_timer { id = n + id; after } :: rev))
        (st, []) actions
    in
    (st, List.rev rev)

  let initial ctx input =
    let n = ctx.Protocol.Context.n in
    let channel =
      {
        next_seq = 0;
        unacked = Int_map.empty;
        rto = initial_rto n;
        timer_armed = false;
      }
    in
    let peer = { expected = 0; buffered = Int_map.empty } in
    let all = List.init n Fun.id in
    let inner, actions = P.initial ctx input in
    let st =
      {
        inner;
        out = List.fold_left (fun m i -> Int_map.add i channel m) Int_map.empty all;
        inbound =
          List.fold_left (fun m i -> Int_map.add i peer m) Int_map.empty all;
        rto_initial = initial_rto n;
        rto_cap = cap_rto n;
      }
    in
    wrap ctx st actions

  let on_message ctx st ~src msg =
    let src_i = Node_id.to_int src in
    match msg with
    | Ack { upto } ->
      let ch = Int_map.find src_i st.out in
      let unacked = Int_map.filter (fun seq _ -> seq > upto) ch.unacked in
      let progressed = Int_map.cardinal unacked < Int_map.cardinal ch.unacked in
      (* Progress resets the backoff; the armed timer will find either
         nothing outstanding (and lapse) or retransmit at a fresh
         cadence next time it is re-armed. *)
      let ch =
        if progressed then { ch with unacked; rto = st.rto_initial }
        else { ch with unacked }
      in
      ({ st with out = Int_map.add src_i ch st.out }, [], [])
    | Data { seq; inner; retx = _ } ->
      let pi = Int_map.find src_i st.inbound in
      if seq < pi.expected || Int_map.mem seq pi.buffered then
        (* Duplicate (engine-level copy or retransmission already
           received): re-ack so the sender releases its window. *)
        (st, [ Protocol.Send (src, Ack { upto = pi.expected - 1 }) ], [])
      else begin
        let buffered = Int_map.add seq inner pi.buffered in
        (* Deliver the in-order prefix to the wrapped protocol — this
           is the reliable-FIFO channel the paper assumes. *)
        let rec drain st expected buffered rev_actions rev_outputs =
          match Int_map.find_opt expected buffered with
          | None -> (st, expected, buffered, rev_actions, rev_outputs)
          | Some m ->
            let buffered = Int_map.remove expected buffered in
            let inner_state, inner_actions, outs =
              P.on_message ctx st.inner ~src m
            in
            let st = { st with inner = inner_state } in
            let st, wrapped = wrap ctx st inner_actions in
            drain st (expected + 1) buffered
              (List.rev_append wrapped rev_actions)
              (List.rev_append outs rev_outputs)
        in
        let st, expected, buffered, rev_actions, rev_outputs =
          drain st pi.expected buffered [] []
        in
        let st =
          { st with inbound = Int_map.add src_i { expected; buffered } st.inbound }
        in
        let ack = Protocol.Send (src, Ack { upto = expected - 1 }) in
        (st, List.rev (ack :: rev_actions), List.rev rev_outputs)
      end

  let on_timeout ctx st ~id =
    let n = ctx.Protocol.Context.n in
    if id >= n then begin
      let inner_state, inner_actions, outputs =
        P.on_timeout ctx st.inner ~id:(id - n)
      in
      let st = { st with inner = inner_state } in
      let st, wrapped = wrap ctx st inner_actions in
      (st, wrapped, outputs)
    end
    else begin
      let ch = Int_map.find id st.out in
      if Int_map.is_empty ch.unacked then
        (* Everything acknowledged: let the timer lapse unarmed. *)
        ( { st with out = Int_map.add id { ch with timer_armed = false } st.out },
          [],
          [] )
      else begin
        let sink = ctx.Protocol.Context.sink in
        let dst = Node_id.of_int id in
        let resends =
          List.rev
            (Int_map.fold
               (fun seq inner acc ->
                 if sink.Abc_sim.Event.enabled then
                   sink.Abc_sim.Event.emit
                     (Abc_sim.Event.make (Abc_sim.Event.Retransmit { dst = id; seq }));
                 Protocol.Send (dst, Data { seq; retx = true; inner }) :: acc)
               ch.unacked [])
        in
        let rto = min (ch.rto * 2) st.rto_cap in
        let ch = { ch with rto } in
        let st = { st with out = Int_map.add id ch st.out } in
        (st, resends @ [ Protocol.Set_timer { id; after = rto } ], [])
      end
    end

  let is_terminal = P.is_terminal

  let msg_label = function
    | Data { retx = false; _ } -> "rl.data"
    | Data { retx = true; _ } -> "rl.retx"
    | Ack _ -> "rl.ack"

  let msg_bytes =
    let open Protocol.Wire_size in
    function
    | Data { seq = _; retx = _; inner } -> tag + int + tag + P.msg_bytes inner
    | Ack { upto = _ } -> tag + int

  let pp_msg ppf = function
    | Data { seq; retx; inner } ->
      Fmt.pf ppf "data[#%d%s]:%a" seq
        (if retx then " retx" else "")
        P.pp_msg inner
    | Ack { upto } -> Fmt.pf ppf "ack[<=%d]" upto

  let pp_output = P.pp_output
end
