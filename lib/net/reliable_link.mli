(** Reliable channels, implemented rather than assumed.

    Bracha (PODC 1984) assumes reliable authenticated point-to-point
    channels.  [Make (P)] {e implements} that assumption on top of the
    lossy network of {!Link_faults}: every logical message of [P] is
    carried in a sequenced envelope, receivers acknowledge cumulatively
    and deliver in order (deduplicating engine-level copies and
    retransmissions), and senders retransmit everything unacknowledged
    on a timer with capped exponential backoff.  As long as each link
    delivers {e some} copy eventually — i.e. loss probability below 1
    and partitions that heal — the wrapped protocol observes exactly
    the reliable-FIFO channel abstraction of the paper.

    The transformer is transparent: [input], [output], terminality and
    output pretty-printing are [P]'s, so harnesses compose (for a
    consensus protocol, [Harness.Make] over the wrapped module works
    unchanged).  Wire labels become ["rl.data"], ["rl.retx"] and
    ["rl.ack"], so the engine's ["sent.<label>"] counters report
    transport overhead for free; retransmissions additionally emit
    typed {!Abc_sim.Event.Retransmit} events.

    Timer ids [0..n-1] are reserved by the transformer (one
    retransmission clock per destination); the wrapped protocol's own
    timer ids are shifted up by [n] and handed back shifted down, so
    timer-using protocols nest correctly. *)

module Make (P : Protocol.S) : sig
  type msg =
    | Data of { seq : int; retx : bool; inner : P.msg }
        (** sequenced envelope carrying one logical message; [retx]
            marks retransmitted copies (label ["rl.retx"]) *)
    | Ack of { upto : int }
        (** cumulative acknowledgement of every [Data] with
            [seq <= upto] *)

  include
    Protocol.S
      with type input = P.input
       and type output = P.output
       and type msg := msg
end
