let lane_width = 5

let header n =
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer "time  ";
  for i = 0 to n - 1 do
    Buffer.add_string buffer (Printf.sprintf "%-*s" lane_width (Printf.sprintf "n%d" i))
  done;
  Buffer.add_string buffer "\n";
  Buffer.contents buffer

let delivery_line ~n ~time src dst label =
  let lo = min src dst and hi = max src dst in
  let buffer = Buffer.create 80 in
  Buffer.add_string buffer (Printf.sprintf "%04d  " time);
  for i = 0 to n - 1 do
    let cell = Bytes.make lane_width ' ' in
    (* lane marks *)
    if i = src then Bytes.set cell 0 'o';
    if i = dst then Bytes.set cell 0 '*';
    (* the connecting line *)
    if i >= lo && i < hi then
      for k = (if i = lo then 1 else 0) to lane_width - 1 do
        if Bytes.get cell k = ' ' then Bytes.set cell k '-'
      done;
    (* arrowheads: '>' to the right, '<' to the left *)
    if src < dst && i = dst then Bytes.set cell 0 '>';
    if src > dst && i = dst then Bytes.set cell 0 '<';
    if src = dst && i = src then Bytes.set cell 0 '@';
    Buffer.add_bytes buffer cell
  done;
  Buffer.add_string buffer " ";
  Buffer.add_string buffer label;
  Buffer.add_string buffer "\n";
  Buffer.contents buffer

let mark_line ~n ~time node mark label =
  let buffer = Buffer.create 80 in
  Buffer.add_string buffer (Printf.sprintf "%04d  " time);
  for i = 0 to n - 1 do
    let cell = Bytes.make lane_width ' ' in
    if i = node then Bytes.set cell 0 mark;
    Buffer.add_bytes buffer cell
  done;
  Buffer.add_string buffer " ";
  Buffer.add_string buffer label;
  Buffer.add_string buffer "\n";
  Buffer.contents buffer

let entry_line ~n (entry : Abc_sim.Trace.entry) =
  let time = entry.Abc_sim.Trace.time in
  let node = entry.Abc_sim.Trace.node in
  let in_range i = i >= 0 && i < n in
  match entry.Abc_sim.Trace.event.Abc_sim.Event.kind with
  | Abc_sim.Event.Deliver { src; label; detail; _ } when in_range src && in_range node ->
    let text = if String.length detail > 0 then detail else label in
    Some (delivery_line ~n ~time src node text)
  | Abc_sim.Event.Output { label } when in_range node ->
    Some (mark_line ~n ~time node '!' ("output: " ^ label))
  | Abc_sim.Event.Decide { value } when in_range node ->
    Some (mark_line ~n ~time node '#' ("decide: " ^ value))
  | _ -> None

let render_entries entries ~n =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (header n);
  List.iter
    (fun entry ->
      match entry_line ~n entry with
      | Some line -> Buffer.add_string buffer line
      | None -> ())
    entries;
  Buffer.contents buffer

let render trace ~n = render_entries (Abc_sim.Trace.to_list trace) ~n

let render_window trace ~n ~from_time ~to_time =
  let entries =
    List.filter
      (fun (e : Abc_sim.Trace.entry) ->
        e.Abc_sim.Trace.time >= from_time && e.Abc_sim.Trace.time <= to_time)
      (Abc_sim.Trace.to_list trace)
  in
  render_entries entries ~n
