(** ASCII message-sequence diagrams from execution traces.

    Turns typed {!Abc_sim.Trace} entries into the classic lane-per-node
    diagram — the fastest way to see {e why} a particular seed produced
    a weird run:

    {v
    time   n0   n1   n2   n3
    0005    o---------->*        echo(1)
    0007         o<----*         ready(1)
    0012         !               output: delivered(1)
    v}

    {!Abc_sim.Event.kind.Deliver} entries draw an arrow from the sender
    lane to the receiver lane, {!Abc_sim.Event.kind.Output} marks the
    node with [!] and {!Abc_sim.Event.kind.Decide} with [#]; all other
    event kinds are skipped.  Any traced run — live or re-read from a
    JSONL file via {!Abc_sim.Trace_file} — can be rendered after the
    fact. *)

val render_entries : Abc_sim.Trace.entry list -> n:int -> string
(** [render_entries entries ~n] draws the given entries in order.  [n]
    fixes the number of lanes; entries naming nodes outside
    [0..n-1] are skipped. *)

val render : Abc_sim.Trace.t -> n:int -> string
(** [render trace ~n] draws every retained trace entry, oldest
    first. *)

val render_window :
  Abc_sim.Trace.t -> n:int -> from_time:int -> to_time:int -> string
(** Restrict the diagram to entries with [from_time <= time <=
    to_time]. *)
