type kind =
  | Send of { dst : int; label : string; detail : string; bytes : int }
  | Deliver of { src : int; label : string; detail : string; bytes : int }
  | Quorum of { quorum : string; count : int; threshold : int }
  | Coin_flip of { value : int }
  | Round_advance
  | Decide of { value : string }
  | Output of { label : string }
  | Note of { tag : string; detail : string }
  | Link_drop of { src : int; dst : int; label : string; reason : string }
  | Link_dup of { src : int; dst : int; label : string }
  | Timer_set of { id : int; due : int }
  | Timer_fire of { id : int }
  | Retransmit of { dst : int; seq : int }
  | Epoch_start of { epoch : int }
  | Batch_proposed of { epoch : int; txs : int; bytes : int }
  | Batch_committed of { epoch : int; proposer : int; txs : int }
  | Tx_committed of { epoch : int; id : string }
  | Node_crash
  | Node_recover
  | Checkpoint_stable of { epoch : int; len : int }
  | Transfer_start of { have : int }
  | Transfer_done of { epoch : int; len : int }

type t = { kind : kind; instance : string; round : int }

let make ?(instance = "") ?(round = -1) kind = { kind; instance; round }

let kind_label = function
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Quorum _ -> "quorum"
  | Coin_flip _ -> "coin"
  | Round_advance -> "round"
  | Decide _ -> "decide"
  | Output _ -> "output"
  | Note _ -> "note"
  | Link_drop _ -> "link-drop"
  | Link_dup _ -> "link-dup"
  | Timer_set _ -> "timer-set"
  | Timer_fire _ -> "timeout"
  | Retransmit _ -> "retransmit"
  | Epoch_start _ -> "epoch-start"
  | Batch_proposed _ -> "batch-proposed"
  | Batch_committed _ -> "batch-committed"
  | Tx_committed _ -> "tx-committed"
  | Node_crash -> "node-crashed"
  | Node_recover -> "node-recovered"
  | Checkpoint_stable _ -> "checkpoint-stable"
  | Transfer_start _ -> "state-transfer-start"
  | Transfer_done _ -> "state-transfer-done"

(* Dense ordinal per kind, used by the sampling trace sink to keep
   exact per-kind counts in a flat int array (no hashing per event).
   [kind_ord] follows declaration order; [ord_label] is the matching
   [kind_label] table. *)
let kind_count = 22

let kind_ord = function
  | Send _ -> 0
  | Deliver _ -> 1
  | Quorum _ -> 2
  | Coin_flip _ -> 3
  | Round_advance -> 4
  | Decide _ -> 5
  | Output _ -> 6
  | Note _ -> 7
  | Link_drop _ -> 8
  | Link_dup _ -> 9
  | Timer_set _ -> 10
  | Timer_fire _ -> 11
  | Retransmit _ -> 12
  | Epoch_start _ -> 13
  | Batch_proposed _ -> 14
  | Batch_committed _ -> 15
  | Tx_committed _ -> 16
  | Node_crash -> 17
  | Node_recover -> 18
  | Checkpoint_stable _ -> 19
  | Transfer_start _ -> 20
  | Transfer_done _ -> 21

let ord_labels =
  [|
    "send"; "deliver"; "quorum"; "coin"; "round"; "decide"; "output"; "note";
    "link-drop"; "link-dup"; "timer-set"; "timeout"; "retransmit";
    "epoch-start"; "batch-proposed"; "batch-committed"; "tx-committed";
    "node-crashed"; "node-recovered"; "checkpoint-stable";
    "state-transfer-start"; "state-transfer-done";
  |]

let ord_label ord = ord_labels.(ord)

let kind_equal a b =
  match (a, b) with
  | Send a, Send b ->
    Int.equal a.dst b.dst && String.equal a.label b.label
    && String.equal a.detail b.detail
    && Int.equal a.bytes b.bytes
  | Deliver a, Deliver b ->
    Int.equal a.src b.src && String.equal a.label b.label
    && String.equal a.detail b.detail
    && Int.equal a.bytes b.bytes
  | Quorum a, Quorum b ->
    String.equal a.quorum b.quorum && Int.equal a.count b.count
    && Int.equal a.threshold b.threshold
  | Coin_flip a, Coin_flip b -> Int.equal a.value b.value
  | Round_advance, Round_advance -> true
  | Decide a, Decide b -> String.equal a.value b.value
  | Output a, Output b -> String.equal a.label b.label
  | Note a, Note b -> String.equal a.tag b.tag && String.equal a.detail b.detail
  | Link_drop a, Link_drop b ->
    Int.equal a.src b.src && Int.equal a.dst b.dst
    && String.equal a.label b.label
    && String.equal a.reason b.reason
  | Link_dup a, Link_dup b ->
    Int.equal a.src b.src && Int.equal a.dst b.dst
    && String.equal a.label b.label
  | Timer_set a, Timer_set b -> Int.equal a.id b.id && Int.equal a.due b.due
  | Timer_fire a, Timer_fire b -> Int.equal a.id b.id
  | Retransmit a, Retransmit b -> Int.equal a.dst b.dst && Int.equal a.seq b.seq
  | Epoch_start a, Epoch_start b -> Int.equal a.epoch b.epoch
  | Batch_proposed a, Batch_proposed b ->
    Int.equal a.epoch b.epoch && Int.equal a.txs b.txs
    && Int.equal a.bytes b.bytes
  | Batch_committed a, Batch_committed b ->
    Int.equal a.epoch b.epoch
    && Int.equal a.proposer b.proposer
    && Int.equal a.txs b.txs
  | Tx_committed a, Tx_committed b ->
    Int.equal a.epoch b.epoch && String.equal a.id b.id
  | Node_crash, Node_crash -> true
  | Node_recover, Node_recover -> true
  | Checkpoint_stable a, Checkpoint_stable b ->
    Int.equal a.epoch b.epoch && Int.equal a.len b.len
  | Transfer_start a, Transfer_start b -> Int.equal a.have b.have
  | Transfer_done a, Transfer_done b ->
    Int.equal a.epoch b.epoch && Int.equal a.len b.len
  | ( ( Send _ | Deliver _ | Quorum _ | Coin_flip _ | Round_advance | Decide _
      | Output _ | Note _ | Link_drop _ | Link_dup _ | Timer_set _
      | Timer_fire _ | Retransmit _ | Epoch_start _ | Batch_proposed _
      | Batch_committed _ | Tx_committed _ | Node_crash | Node_recover
      | Checkpoint_stable _ | Transfer_start _ | Transfer_done _ ),
      _ ) ->
    false

let equal a b =
  kind_equal a.kind b.kind
  && String.equal a.instance b.instance
  && Int.equal a.round b.round

let pp_kind ppf = function
  | Send { dst; label; detail; bytes = _ } ->
    if String.length detail = 0 then Fmt.pf ppf "send -> n%d %s" dst label
    else Fmt.pf ppf "send -> n%d %s" dst detail
  | Deliver { src; label; detail; bytes = _ } ->
    if String.length detail = 0 then Fmt.pf ppf "deliver <- n%d %s" src label
    else Fmt.pf ppf "deliver <- n%d %s" src detail
  | Quorum { quorum; count; threshold } ->
    Fmt.pf ppf "quorum %s %d/%d" quorum count threshold
  | Coin_flip { value } -> Fmt.pf ppf "coin %d" value
  | Round_advance -> Fmt.string ppf "round-advance"
  | Decide { value } -> Fmt.pf ppf "decide %s" value
  | Output { label } -> Fmt.pf ppf "output: %s" label
  | Note { tag; detail } -> Fmt.pf ppf "%s %s" tag detail
  | Link_drop { src; dst; label; reason } ->
    Fmt.pf ppf "link-drop n%d -> n%d %s (%s)" src dst label reason
  | Link_dup { src; dst; label } ->
    Fmt.pf ppf "link-dup n%d -> n%d %s" src dst label
  | Timer_set { id; due } -> Fmt.pf ppf "timer-set #%d due t=%d" id due
  | Timer_fire { id } -> Fmt.pf ppf "timeout #%d" id
  | Retransmit { dst; seq } -> Fmt.pf ppf "retransmit -> n%d seq=%d" dst seq
  | Epoch_start { epoch } -> Fmt.pf ppf "epoch-start e%d" epoch
  | Batch_proposed { epoch; txs; bytes } ->
    Fmt.pf ppf "batch-proposed e%d txs=%d bytes=%d" epoch txs bytes
  | Batch_committed { epoch; proposer; txs } ->
    Fmt.pf ppf "batch-committed e%d proposer=n%d txs=%d" epoch proposer txs
  | Tx_committed { epoch; id } -> Fmt.pf ppf "tx-committed e%d %s" epoch id
  | Node_crash -> Fmt.string ppf "node-crashed"
  | Node_recover -> Fmt.string ppf "node-recovered"
  | Checkpoint_stable { epoch; len } ->
    Fmt.pf ppf "checkpoint-stable e%d len=%d" epoch len
  | Transfer_start { have } -> Fmt.pf ppf "state-transfer-start have=%d" have
  | Transfer_done { epoch; len } ->
    Fmt.pf ppf "state-transfer-done e%d len=%d" epoch len

let pp ppf t =
  if String.length t.instance > 0 then Fmt.pf ppf "[%s] " t.instance;
  if t.round >= 0 then Fmt.pf ppf "r%d " t.round;
  pp_kind ppf t.kind

(* ----------------------------------------------------------------- *)
(* Sinks                                                             *)
(* ----------------------------------------------------------------- *)

type sink = { enabled : bool; emit : t -> unit }

let null_sink = { enabled = false; emit = ignore }

let sink_to emit = { enabled = true; emit }

let scoped sink ~instance =
  if not sink.enabled then sink
  else
    {
      sink with
      emit =
        (fun e ->
          let instance =
            if String.length e.instance = 0 then instance
            else instance ^ "/" ^ e.instance
          in
          sink.emit { e with instance });
    }
