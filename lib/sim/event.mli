(** Typed protocol events.

    The vocabulary of the structured observability layer: the engine
    and every protocol module report progress as values of {!t}, which
    {!Trace} buffers, the JSONL exporter serializes (schema documented
    in [OBSERVABILITY.md]) and the [abc-trace] analyzer consumes.

    Events are deliberately protocol-agnostic: quorum names, message
    labels and decision values are short strings so one event type (and
    one stable schema) covers Bracha RBC, the consensus family, ACS and
    the replicated log alike. *)

type kind =
  | Send of { dst : int; label : string; detail : string; bytes : int }
      (** a point-to-point transmission was enqueued ([detail] may be
          empty — sends are high-volume); [bytes] is the estimated wire
          size of the message (see {!Abc_net.Protocol.S.msg_bytes}) *)
  | Deliver of { src : int; label : string; detail : string; bytes : int }
      (** a message was delivered to this node; [detail] is the
          pretty-printed payload and [bytes] its estimated wire size *)
  | Quorum of { quorum : string; count : int; threshold : int }
      (** a named quorum rule fired with [count >= threshold] (e.g.
          ["echo"], ["ready"], ["decide"]) *)
  | Coin_flip of { value : int }  (** the round coin came up [value] *)
  | Round_advance  (** the node entered round [round] (see {!t}) *)
  | Decide of { value : string }  (** irrevocable decision on [value] *)
  | Output of { label : string }
      (** an externally visible protocol output was emitted *)
  | Note of { tag : string; detail : string }
      (** free-form escape hatch for events outside the vocabulary *)
  | Link_drop of { src : int; dst : int; label : string; reason : string }
      (** the link-fault model discarded an in-flight message; [reason]
          is ["loss"] (random drop) or ["partition"] (severed link) *)
  | Link_dup of { src : int; dst : int; label : string }
      (** the link-fault model re-enqueued a duplicate copy of a
          delivered message *)
  | Timer_set of { id : int; due : int }
      (** the node armed a virtual timer [id] firing at tick [due] *)
  | Timer_fire of { id : int }  (** timer [id] fired on this node *)
  | Retransmit of { dst : int; seq : int }
      (** a transport layer re-sent an unacknowledged envelope *)
  | Epoch_start of { epoch : int }
      (** the atomic-broadcast pipeline opened epoch [epoch] on this
          node (its batch agreement began; schema v4) *)
  | Batch_proposed of { epoch : int; txs : int; bytes : int }
      (** this node proposed its batch for [epoch]: [txs] transactions
          totalling [bytes] encoded bytes (schema v4) *)
  | Batch_committed of { epoch : int; proposer : int; txs : int }
      (** [epoch]'s agreed subset committed [proposer]'s batch, adding
          [txs] previously-uncommitted transactions (schema v4) *)
  | Tx_committed of { epoch : int; id : string }
      (** transaction [id] entered the replicated log in [epoch]
          (schema v4; high-volume — emitted once per tx per node) *)
  | Node_crash
      (** this node crashed: all volatile protocol state is lost and
          in-flight deliveries to it are dropped (schema v5) *)
  | Node_recover
      (** this node rejoined after a crash, restarting from its durable
          store (schema v5) *)
  | Checkpoint_stable of { epoch : int; len : int }
      (** this node collected a stable-checkpoint quorum for [epoch]
          covering the first [len] log entries; instances below are
          garbage-collected (schema v5) *)
  | Transfer_start of { have : int }
      (** this node began state transfer, holding [have] committed log
          entries (schema v5) *)
  | Transfer_done of { epoch : int; len : int }
      (** this node installed a transferred snapshot at checkpoint
          [epoch] with [len] log entries (schema v5) *)

type t = {
  kind : kind;
  instance : string;
      (** protocol sub-instance path (e.g. ["ba.3"], ["n2@r1s2"]); [""]
          for the top-level protocol *)
  round : int;  (** protocol round the event belongs to; [-1] when n/a *)
}

val make : ?instance:string -> ?round:int -> kind -> t
(** [make kind] is an event with [instance ""] and [round (-1)] unless
    overridden. *)

val kind_label : kind -> string
(** Stable one-word name of the event kind — the JSONL ["kind"] field:
    ["send"], ["deliver"], ["quorum"], ["coin"], ["round"], ["decide"],
    ["output"], ["note"], ["link-drop"], ["link-dup"], ["timer-set"],
    ["timeout"], ["retransmit"], ["epoch-start"], ["batch-proposed"],
    ["batch-committed"], ["tx-committed"], ["node-crashed"],
    ["node-recovered"], ["checkpoint-stable"], ["state-transfer-start"]
    or ["state-transfer-done"]. *)

val kind_count : int
(** Number of event kinds; [kind_ord] ranges over
    [0 .. kind_count - 1]. *)

val kind_ord : kind -> int
(** Dense ordinal of the kind, in declaration order.  The sampling
    trace sink uses it to keep exact per-kind counts in a flat int
    array without hashing a label per event (see PERFORMANCE.md). *)

val ord_label : int -> string
(** [ord_label (kind_ord k) = kind_label k] — the label table indexed
    by ordinal.  Raises [Invalid_argument] outside
    [0 .. kind_count - 1]. *)

val equal : t -> t -> bool
(** Structural equality (used by the JSONL round-trip tests). *)

val pp : t Fmt.t
(** Human-readable one-line rendering. *)

(** {1 Sinks}

    A sink is the cheap hook protocol code emits events into.  The
    [enabled] flag lets call sites skip event construction entirely
    when observability is off — the contract is

    {[ if sink.enabled then sink.emit (Event.make ...) ]}

    so a disabled run performs one boolean test per potential event and
    allocates nothing. *)

type sink = {
  enabled : bool;  (** whether [emit] does anything *)
  emit : t -> unit;  (** deliver one event (stamps time/node upstream) *)
}

val null_sink : sink
(** The disabled sink: [enabled = false], [emit = ignore]. *)

val sink_to : (t -> unit) -> sink
(** [sink_to f] is an enabled sink forwarding to [f]. *)

val scoped : sink -> instance:string -> sink
(** [scoped sink ~instance] prefixes [instance] onto the instance path
    of every event emitted (["outer/inner"] when nested).  Returns
    [sink] unchanged when disabled, so scoping costs nothing on the
    disabled path. *)
