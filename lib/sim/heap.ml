(* Struct-of-arrays layout: priorities and insertion sequence numbers
   live in unboxed [int array]s so sift comparisons never chase an
   entry record, and payloads sit in a parallel array created at the
   first push (no option boxing, no dummy element) — see
   PERFORMANCE.md.  Slots at or past [size] may hold stale payloads;
   they are overwritten by later pushes. *)

type 'a t = {
  mutable priorities : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { priorities = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [before h i j] is true when the entry at slot [i] must come out of
   the heap before the one at slot [j]: smaller priority first,
   insertion order among ties. *)
let before h i j =
  h.priorities.(i) < h.priorities.(j)
  || (h.priorities.(i) = h.priorities.(j) && h.seqs.(i) < h.seqs.(j))

let swap h i j =
  let p = h.priorities.(i) in
  h.priorities.(i) <- h.priorities.(j);
  h.priorities.(j) <- p;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let x = h.payloads.(i) in
  h.payloads.(i) <- h.payloads.(j);
  h.payloads.(j) <- x

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && before h left !smallest then smallest := left;
  if right < h.size && before h right !smallest then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h fill =
  let cap = Array.length h.priorities in
  if cap = 0 then begin
    h.priorities <- Array.make 16 0;
    h.seqs <- Array.make 16 0;
    h.payloads <- Array.make 16 fill
  end
  else begin
    let ps = Array.make (2 * cap) 0 in
    Array.blit h.priorities 0 ps 0 h.size;
    h.priorities <- ps;
    let ss = Array.make (2 * cap) 0 in
    Array.blit h.seqs 0 ss 0 h.size;
    h.seqs <- ss;
    let xs = Array.make (2 * cap) fill in
    Array.blit h.payloads 0 xs 0 h.size;
    h.payloads <- xs
  end

let push h ~priority payload =
  if h.size = Array.length h.priorities then grow h payload;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.priorities.(h.size) <- priority;
  h.seqs.(h.size) <- seq;
  h.payloads.(h.size) <- payload;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let priority = h.priorities.(0) and payload = h.payloads.(0) in
    h.size <- h.size - 1;
    h.priorities.(0) <- h.priorities.(h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.payloads.(0) <- h.payloads.(h.size);
    if h.size > 0 then sift_down h 0;
    Some (priority, payload)
  end

let peek h = if h.size = 0 then None else Some (h.priorities.(0), h.payloads.(0))

let peek_priority h ~default = if h.size = 0 then default else h.priorities.(0)

let clear h =
  h.size <- 0;
  h.next_seq <- 0
