(** Binary min-heap with stable tie-breaking.

    The simulation kernel's priority queue.  Entries are ordered by an
    integer priority; entries with equal priority come out in insertion
    order, which keeps event execution deterministic. *)

type 'a t
(** A mutable heap of ['a] payloads. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** [length h] is the number of entries in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> priority:int -> 'a -> unit
(** [push h ~priority x] inserts [x] with the given priority. *)

val pop : 'a t -> (int * 'a) option
(** [pop h] removes and returns the entry with the smallest priority
    (earliest inserted among ties), or [None] if [h] is empty. *)

val peek : 'a t -> (int * 'a) option
(** [peek h] is like {!pop} but does not remove the entry. *)

val peek_priority : 'a t -> default:int -> int
(** [peek_priority h ~default] is the smallest priority in [h], or
    [default] when empty — {!peek} without the option/tuple
    allocation, for per-iteration polling on the engine hot path. *)

val clear : 'a t -> unit
(** [clear h] removes all entries. *)
