type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----------------------------------------------------------------- *)
(* Printing                                                          *)
(* ----------------------------------------------------------------- *)

let add_escaped buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let rec add_json buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float v ->
    (* %.17g round-trips every float; trailing ".0" keeps the value a
       float on re-parse. *)
    let s = Printf.sprintf "%.17g" v in
    Buffer.add_string buffer s;
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buffer ".0"
  | String s -> add_escaped buffer s
  | List items ->
    Buffer.add_char buffer '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buffer ',';
        add_json buffer item)
      items;
    Buffer.add_char buffer ']'
  | Obj fields ->
    Buffer.add_char buffer '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_char buffer ',';
        add_escaped buffer name;
        Buffer.add_char buffer ':';
        add_json buffer value)
      fields;
    Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 128 in
  add_json buffer json;
  Buffer.contents buffer

(* ----------------------------------------------------------------- *)
(* Parsing                                                           *)
(* ----------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | Some _ | None -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> parse_error "expected %c at offset %d, got %c" ch c.pos got
  | None -> parse_error "expected %c at offset %d, got end of input" ch c.pos

let parse_literal c word value =
  let len = String.length word in
  if
    c.pos + len <= String.length c.text
    && String.equal (String.sub c.text c.pos len) word
  then begin
    c.pos <- c.pos + len;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string_body c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buffer '"'
      | Some '\\' -> Buffer.add_char buffer '\\'
      | Some '/' -> Buffer.add_char buffer '/'
      | Some 'b' -> Buffer.add_char buffer '\b'
      | Some 'f' -> Buffer.add_char buffer '\012'
      | Some 'n' -> Buffer.add_char buffer '\n'
      | Some 'r' -> Buffer.add_char buffer '\r'
      | Some 't' -> Buffer.add_char buffer '\t'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.text then
          parse_error "truncated \\u escape at offset %d" c.pos;
        let hex = String.sub c.text (c.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 0x80 -> Buffer.add_char buffer (Char.chr code)
        | Some code ->
          (* Minimal UTF-8 encoding for the BMP; traces only emit
             ASCII, this is for robustness on foreign input. *)
          if code < 0x800 then begin
            Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
          end
        | None -> parse_error "bad \\u escape at offset %d" c.pos);
        c.pos <- c.pos + 4
      | Some e -> parse_error "bad escape \\%c at offset %d" e c.pos
      | None -> parse_error "truncated escape at offset %d" c.pos);
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buffer ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | Some _ | None -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some v -> Float v
    | None -> parse_error "bad number %S at offset %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input at offset %d" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let name = parse_string_body c in
        skip_ws c;
        expect c ':';
        let value = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((name, value) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((name, value) :: acc)
        | Some ch -> parse_error "expected , or } at offset %d, got %c" c.pos ch
        | None -> parse_error "unterminated object at offset %d" c.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let value = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (value :: acc)
        | Some ']' ->
          advance c;
          List.rev (value :: acc)
        | Some ch -> parse_error "expected , or ] at offset %d, got %c" c.pos ch
        | None -> parse_error "unterminated array at offset %d" c.pos
      in
      List (items [])
    end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let of_string text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | value ->
    skip_ws c;
    if c.pos = String.length text then Ok value
    else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Parse_error m -> Error m

(* ----------------------------------------------------------------- *)
(* Accessors                                                         *)
(* ----------------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float v -> Some v | Int i -> Some (float_of_int i) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_obj = function Obj fields -> Some fields | _ -> None

let int_member ?default name json =
  match member name json with
  | Some v -> to_int v
  | None -> default

let string_member ?default name json =
  match member name json with
  | Some v -> to_str v
  | None -> default

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal
      (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal v1 v2)
      x y
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false
