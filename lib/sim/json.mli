(** Minimal JSON values, printing and parsing.

    The observability layer ({!Trace} JSONL export, {!Trace_file}
    ingestion, bench run summaries) needs a small, dependency-free JSON
    implementation; this is it.  Printing is compact and deterministic
    (fields appear in the order given), parsing accepts any
    standards-conforming document.  Not a general-purpose JSON library:
    no streaming, no number-precision guarantees beyond OCaml's [int]
    and [float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in serialization order *)

val to_string : t -> string
(** [to_string v] is the compact (single-line, no spaces) rendering of
    [v].  Object fields keep their list order, so equal values render
    to equal strings — the property the golden-trace tests rely on. *)

val of_string : string -> (t, string) result
(** [of_string s] parses one JSON document occupying the whole string.
    [Error msg] carries a byte-offset diagnostic. *)

val member : string -> t -> t option
(** [member name v] is field [name] of object [v]; [None] when [v] is
    not an object or lacks the field. *)

val to_int : t -> int option
(** [to_int v] is [Some i] iff [v] is [Int i]. *)

val to_float : t -> float option
(** [to_float v] is the numeric value of [Int] or [Float]. *)

val to_str : t -> string option
(** [to_str v] is [Some s] iff [v] is [String s]. *)

val to_obj : t -> (string * t) list option
(** [to_obj v] is the field list iff [v] is an object. *)

val int_member : ?default:int -> string -> t -> int option
(** [int_member name v] is the integer field [name]; [default] when the
    field is absent (a present non-integer field is [None]). *)

val string_member : ?default:string -> string -> t -> string option
(** [string_member name v] is the string field [name]; [default] when
    the field is absent. *)

val equal : t -> t -> bool
(** Structural equality (object fields must match in order). *)
