type t = {
  enabled : bool;
  counters : (string, int ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let create ?(enabled = true) () =
  {
    enabled;
    counters = Hashtbl.create 16;
    series = Hashtbl.create 16;
    hists = Hashtbl.create 8;
  }

let enabled t = t.enabled

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = if t.enabled then Stdlib.incr (counter_ref t name)

let add t name k =
  if t.enabled then begin
    let r = counter_ref t name in
    r := !r + k
  end

(* Pre-interned counter handles: the hot path pays one string hash at
   [handle] time and none afterwards.  The registry entry is attached
   lazily on the first enabled update so an interned-but-never-touched
   counter stays invisible to [counter]/[counters] — exactly the
   semantics of the string API, where [incr] creates the entry. *)

type handle = {
  h_metrics : t;
  h_name : string;
  mutable h_ref : int ref;
  mutable h_attached : bool;
}

let handle t name =
  { h_metrics = t; h_name = name; h_ref = ref 0; h_attached = false }

let attach h =
  h.h_ref <- counter_ref h.h_metrics h.h_name;
  h.h_attached <- true

let incr_handle h =
  if h.h_metrics.enabled then begin
    if not h.h_attached then attach h;
    Stdlib.incr h.h_ref
  end

let add_handle h k =
  if h.h_metrics.enabled then begin
    if not h.h_attached then attach h;
    h.h_ref := !(h.h_ref) + k
  end

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let series_ref t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.series name r;
    r

let observe t name v =
  if t.enabled then begin
    let r = series_ref t name in
    r := v :: !r
  end

let series t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> List.rev !r
  | None -> []

let summarize t name = Summary.of_list (series t name)

let hist t name v =
  if t.enabled then begin
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        Hashtbl.add t.hists name h;
        h
    in
    Histogram.add h v
  end

let histogram t name = Hashtbl.find_opt t.hists name

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (name, v) -> Fmt.pf ppf "%-32s %d@." name v) (counters t);
  let series_names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.series []
    |> List.sort String.compare
  in
  let pp_series name =
    match summarize t name with
    | Some s -> Fmt.pf ppf "%-32s %a@." name Summary.pp s
    | None -> ()
  in
  List.iter pp_series series_names;
  List.iter
    (fun (name, h) -> Fmt.pf ppf "%s (histogram):@.%s" name (Histogram.render h))
    (histograms t)
