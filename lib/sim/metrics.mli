(** Named counters, value series and histograms for instrumenting
    simulations.

    A [Metrics.t] is attached to each engine run.  Protocol code and
    the engine bump counters ([incr]) and append observations
    ([observe], [hist]); experiment harnesses read them back as totals,
    {!Summary.t} aggregates or {!Histogram.t} distributions.

    A registry created with [~enabled:false] turns every mutator into a
    single-branch no-op — the zero-cost-when-disabled contract the
    engine's detailed instrumentation relies on. *)

type t
(** A mutable metrics registry. *)

val create : ?enabled:bool -> unit -> t
(** [create ()] is an empty registry; [~enabled:false] (default
    [true]) makes every mutator a no-op while reads keep working. *)

val enabled : t -> bool
(** Whether mutators record anything. *)

val incr : t -> string -> unit
(** [incr t name] adds 1 to counter [name], creating it at 0. *)

val add : t -> string -> int -> unit
(** [add t name k] adds [k] to counter [name], creating it at 0. *)

val counter : t -> string -> int
(** [counter t name] is the current value of counter [name] (0 when the
    counter was never touched). *)

type handle
(** A pre-interned counter: the string label is resolved once, after
    which every update is O(1) with no hashing.  See PERFORMANCE.md. *)

val handle : t -> string -> handle
(** [handle t name] interns counter [name].  Interning alone does not
    create the counter: until the first {!incr_handle}/{!add_handle}
    on an enabled registry, [name] stays absent from {!counters} —
    identical to the string API, where {!incr} creates the entry. *)

val incr_handle : handle -> unit
(** [incr_handle h] adds 1 to the interned counter without hashing its
    label.  Equivalent to [incr t name]. *)

val add_handle : handle -> int -> unit
(** [add_handle h k] adds [k] to the interned counter without hashing
    its label.  Equivalent to [add t name k]. *)

val observe : t -> string -> float -> unit
(** [observe t name v] appends observation [v] to series [name]. *)

val series : t -> string -> float list
(** [series t name] is the observations of series [name], in insertion
    order ([[]] when the series was never touched). *)

val summarize : t -> string -> Summary.t option
(** [summarize t name] is the summary of series [name]. *)

val hist : t -> string -> int -> unit
(** [hist t name v] records integer observation [v] into histogram
    [name], creating it empty.  Used for distributions the experiment
    harness renders directly (rounds-to-decide, quorum waits). *)

val histogram : t -> string -> Histogram.t option
(** [histogram t name] is histogram [name], if ever touched. *)

val histograms : t -> (string * Histogram.t) list
(** All histograms, sorted by name. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : t Fmt.t
(** Render all counters, series summaries and histograms. *)
