type t = { sorted : float array; mean : float; stddev : float; total : float }

let of_list samples =
  match samples with
  | [] -> None
  | _ ->
    let sorted = Array.of_list samples in
    Array.sort Float.compare sorted;
    let n = Array.length sorted in
    let total = Array.fold_left ( +. ) 0. sorted in
    let mean = total /. float_of_int n in
    let sq_dev = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. sorted in
    let stddev = if n <= 1 then 0. else sqrt (sq_dev /. float_of_int (n - 1)) in
    Some { sorted; mean; stddev; total }

let of_int_list samples = of_list (List.map float_of_int samples)

let count t = Array.length t.sorted

let mean t = t.mean

let stddev t = t.stddev

let min_value t = t.sorted.(0)

let max_value t = t.sorted.(Array.length t.sorted - 1)

let percentile t p =
  assert (p >= 0. && p <= 100.);
  let n = Array.length t.sorted in
  if n = 1 then t.sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lower = int_of_float (floor rank) in
    let upper = int_of_float (ceil rank) in
    let weight = rank -. float_of_int lower in
    (t.sorted.(lower) *. (1. -. weight)) +. (t.sorted.(upper) *. weight)
  end

let median t = percentile t 50.

let total t = t.total

let mean_ci95 t =
  let n = float_of_int (Array.length t.sorted) in
  let half_width = 1.96 *. t.stddev /. sqrt n in
  (t.mean -. half_width, t.mean +. half_width)

let pp ppf t =
  Fmt.pf ppf "mean=%.2f median=%.2f p95=%.2f range=[%.2f, %.2f] n=%d"
    (mean t) (median t) (percentile t 95.) (min_value t) (max_value t)
    (count t)
