type t = {
  id : string option;
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let id_ok id =
  id <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
       id

let create ?id ~title ~columns () =
  (match id with
  | Some id when not (id_ok id) ->
    invalid_arg
      (Printf.sprintf
         "Table.create: id %S must be non-empty [a-z0-9_-] (table %S)" id title)
  | _ -> ());
  { id; title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns in table %S"
         (List.length cells) (List.length t.columns) t.title);
  t.rows <- cells :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let note_row cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter note_row all;
  let buffer = Buffer.create 256 in
  let render_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buffer "  ";
        Buffer.add_string buffer c;
        Buffer.add_string buffer (String.make (widths.(i) - String.length c) ' '))
      cells;
    Buffer.add_char buffer '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buffer t.title;
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer (String.make total_width '=');
  Buffer.add_char buffer '\n';
  render_row t.columns;
  Buffer.add_string buffer (String.make total_width '-');
  Buffer.add_char buffer '\n';
  List.iter render_row rows;
  Buffer.contents buffer

let csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (List.map line (t.columns :: List.rev t.rows)) ^ "\n"

let csv_directory = ref None

let set_csv_directory dir = csv_directory := dir

let json_directory = ref None

let set_json_directory dir = json_directory := dir

let run_meta = ref []

let set_run_meta meta = run_meta := meta

let bench_schema_version = 1

let to_json t =
  let row cells = Json.List (List.map (fun c -> Json.String c) cells) in
  Json.Obj
    ([
       ("schema", Json.String "abc.bench");
       ("version", Json.Int bench_schema_version);
     ]
    @ (match t.id with Some id -> [ ("id", Json.String id) ] | None -> [])
    @ [
      ("title", Json.String t.title);
      ("columns", row t.columns);
        ("rows", Json.List (List.map row (List.rev t.rows)));
        ("meta", Json.Obj !run_meta);
      ])

(* The first 8 hex digits of the title digest keep filenames unique
   however long (or however alike in their first words) two titles are
   — truncating the title alone collided E14's loss-sweep tables. *)
let title_hash title = String.sub (Digest.to_hex (Digest.string title)) 0 8

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
    s

let slug t =
  let stem =
    match t.id with
    | Some id -> id
    | None -> sanitize (String.sub t.title 0 (min 24 (String.length t.title)))
  in
  stem ^ "_" ^ title_hash t.title

let write_file dir name contents =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat dir name) in
  output_string oc contents;
  close_out oc

let print t =
  print_string (render t);
  (match !csv_directory with
  | None -> ()
  | Some dir -> write_file dir (slug t ^ ".csv") (csv t));
  match !json_directory with
  | None -> ()
  | Some dir ->
    write_file dir
      ("BENCH_" ^ slug t ^ ".json")
      (Json.to_string (to_json t) ^ "\n")

let cell_int = string_of_int

let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let cell_ratio v = Printf.sprintf "%.1fx" v

let cell_percent v = Printf.sprintf "%.1f%%" (100. *. v)
