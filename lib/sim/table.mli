(** Plain-text table rendering for experiment reports.

    The benchmark harness prints one table per reproduced experiment;
    this module keeps the formatting consistent (aligned columns,
    header rule, optional caption). *)

type t
(** A table under construction. *)

val create : ?id:string -> title:string -> columns:string list -> unit -> t
(** [create ~title ~columns] starts a table with the given header.
    [id] is a short stable slug ([a-z0-9_-]) naming the table's export
    files independently of the (long, prose) title; see {!slug}.
    Raises [Invalid_argument] on a malformed [id]. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Raises [Invalid_argument] if the
    number of cells differs from the number of columns. *)

val add_rows : t -> string list list -> unit
(** [add_rows t rows] appends each row in order. *)

val render : t -> string
(** [render t] is the complete table as a string, ending with a
    newline. *)

val csv : t -> string
(** [csv t] is the table as RFC-4180-ish CSV (header row included;
    cells containing commas or quotes are quoted). *)

val slug : t -> string
(** The stem of the table's export filenames: the explicit [id] (or,
    without one, the sanitized first 24 title characters) followed by
    ["_"] and the first 8 hex digits of the full title's digest — so
    two tables whose long titles share a prefix never collide, which
    plain title truncation did not guarantee. *)

val set_csv_directory : string option -> unit
(** When set, every subsequent {!print} also writes the table as
    [<dir>/<slug>.csv] (the directory is created if needed).  The
    experiment harness uses this to export machine-readable results. *)

val set_json_directory : string option -> unit
(** When set, every subsequent {!print} also writes the table as
    [<dir>/BENCH_<slug>.json] — an [abc.bench] run-summary object
    carrying the schema version, id, title, columns, rows and the
    current {!set_run_meta} metadata (see [OBSERVABILITY.md]). *)

val set_run_meta : (string * Json.t) list -> unit
(** [set_run_meta fields] sets the run metadata embedded in every
    subsequent JSON export (bench mode, seed scaling, ...). *)

val to_json : t -> Json.t
(** [to_json t] is the [abc.bench] run-summary object for [t]. *)

val print : t -> unit
(** [print t] writes [render t] to standard output (and a CSV file when
    {!set_csv_directory} is active). *)

val cell_int : int -> string
(** Canonical rendering of integer cells. *)

val cell_float : ?decimals:int -> float -> string
(** Canonical rendering of float cells (default 2 decimals). *)

val cell_ratio : float -> string
(** Render a ratio as ["12.3x"]. *)

val cell_percent : float -> string
(** Render a fraction in [0,1] as ["97.0%"]. *)
