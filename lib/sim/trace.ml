type entry = { time : int; node : int; event : Event.t }

type t = {
  capacity : int;
  sample : int;
  counts : int array;  (* exact per-kind totals, indexed by Event.kind_ord *)
  buffer : entry option array;
  mutable start : int;
  mutable size : int;
  mutable recorded : int;
}

(* v5 added the crash-recovery event kinds (node-crashed,
   node-recovered, checkpoint-stable, state-transfer-start/done); the
   reader accepts any version <= this one (see OBSERVABILITY.md
   migration notes).  The sampling fields ("sample", "counts") added
   after v5 are additive and only emitted when sampling is on, so no
   version bump. *)
let schema_version = 5

let create ?(capacity = 4096) ?(sample = 1) () =
  assert (capacity > 0);
  assert (sample > 0);
  {
    capacity;
    sample;
    counts = Array.make Event.kind_count 0;
    buffer = Array.make capacity None;
    start = 0;
    size = 0;
    recorded = 0;
  }

let sample t = t.sample

let record t ~time ~node event =
  let ord = Event.kind_ord event.Event.kind in
  t.counts.(ord) <- t.counts.(ord) + 1;
  t.recorded <- t.recorded + 1;
  (* With [sample = k], retain events #1, #k+1, #2k+1, ... — a
     deterministic counter stride, never a RNG draw, so sampled traces
     stay byte-reproducible.  The per-kind counts above are exact
     regardless. *)
  if (t.recorded - 1) mod t.sample = 0 then begin
    let entry = { time; node; event } in
    if t.size = t.capacity then begin
      (* Overwrite the oldest slot. *)
      t.buffer.(t.start) <- Some entry;
      t.start <- (t.start + 1) mod t.capacity
    end
    else begin
      t.buffer.((t.start + t.size) mod t.capacity) <- Some entry;
      t.size <- t.size + 1
    end
  end

let note t ~time ~node ~tag detail =
  record t ~time ~node (Event.make (Event.Note { tag; detail }))

let length t = t.size

let recorded t = t.recorded

let dropped t = t.recorded - t.size

let counts t =
  let acc = ref [] in
  for ord = Array.length t.counts - 1 downto 0 do
    if t.counts.(ord) > 0 then
      acc := (Event.ord_label ord, t.counts.(ord)) :: !acc
  done;
  !acc

let count_kind t ~label =
  List.fold_left
    (fun acc (l, c) -> if String.equal l label then acc + c else acc)
    0 (counts t)

let to_list t =
  let rec collect i acc =
    if i < 0 then acc
    else
      match t.buffer.((t.start + i) mod t.capacity) with
      | Some e -> collect (i - 1) (e :: acc)
      | None -> assert false
  in
  collect (t.size - 1) []

let find_kind t ~label =
  List.filter
    (fun e -> String.equal (Event.kind_label e.event.Event.kind) label)
    (to_list t)

let pp_entry ppf e =
  Fmt.pf ppf "[t=%06d node=%02d] %a" e.time e.node Event.pp e.event

let dump ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (to_list t)

(* ----------------------------------------------------------------- *)
(* JSONL (schema in OBSERVABILITY.md)                                *)
(* ----------------------------------------------------------------- *)

let entry_to_json e =
  let base = [ ("t", Json.Int e.time); ("node", Json.Int e.node) ] in
  let kind label = ("kind", Json.String label) in
  let common =
    (if String.length e.event.Event.instance > 0 then
       [ ("instance", Json.String e.event.Event.instance) ]
     else [])
    @ if e.event.Event.round >= 0 then [ ("round", Json.Int e.event.Event.round) ] else []
  in
  let specific =
    match e.event.Event.kind with
    | Event.Send { dst; label; detail; bytes } ->
      [
        kind "send";
        ("dst", Json.Int dst);
        ("label", Json.String label);
        ("bytes", Json.Int bytes);
      ]
      @ if String.length detail > 0 then [ ("detail", Json.String detail) ] else []
    | Event.Deliver { src; label; detail; bytes } ->
      [
        kind "deliver";
        ("src", Json.Int src);
        ("label", Json.String label);
        ("bytes", Json.Int bytes);
      ]
      @ if String.length detail > 0 then [ ("detail", Json.String detail) ] else []
    | Event.Quorum { quorum; count; threshold } ->
      [
        kind "quorum";
        ("quorum", Json.String quorum);
        ("count", Json.Int count);
        ("threshold", Json.Int threshold);
      ]
    | Event.Coin_flip { value } -> [ kind "coin"; ("value", Json.Int value) ]
    | Event.Round_advance -> [ kind "round" ]
    | Event.Decide { value } -> [ kind "decide"; ("value", Json.String value) ]
    | Event.Output { label } -> [ kind "output"; ("label", Json.String label) ]
    | Event.Note { tag; detail } ->
      [ kind "note"; ("tag", Json.String tag); ("detail", Json.String detail) ]
    | Event.Link_drop { src; dst; label; reason } ->
      [
        kind "link-drop";
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("label", Json.String label);
        ("reason", Json.String reason);
      ]
    | Event.Link_dup { src; dst; label } ->
      [
        kind "link-dup";
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("label", Json.String label);
      ]
    | Event.Timer_set { id; due } ->
      [ kind "timer-set"; ("id", Json.Int id); ("due", Json.Int due) ]
    | Event.Timer_fire { id } -> [ kind "timeout"; ("id", Json.Int id) ]
    | Event.Retransmit { dst; seq } ->
      [ kind "retransmit"; ("dst", Json.Int dst); ("seq", Json.Int seq) ]
    | Event.Epoch_start { epoch } ->
      [ kind "epoch-start"; ("epoch", Json.Int epoch) ]
    | Event.Batch_proposed { epoch; txs; bytes } ->
      [
        kind "batch-proposed";
        ("epoch", Json.Int epoch);
        ("txs", Json.Int txs);
        ("bytes", Json.Int bytes);
      ]
    | Event.Batch_committed { epoch; proposer; txs } ->
      [
        kind "batch-committed";
        ("epoch", Json.Int epoch);
        ("proposer", Json.Int proposer);
        ("txs", Json.Int txs);
      ]
    | Event.Tx_committed { epoch; id } ->
      [ kind "tx-committed"; ("epoch", Json.Int epoch); ("id", Json.String id) ]
    | Event.Node_crash -> [ kind "node-crashed" ]
    | Event.Node_recover -> [ kind "node-recovered" ]
    | Event.Checkpoint_stable { epoch; len } ->
      [
        kind "checkpoint-stable";
        ("epoch", Json.Int epoch);
        ("len", Json.Int len);
      ]
    | Event.Transfer_start { have } ->
      [ kind "state-transfer-start"; ("have", Json.Int have) ]
    | Event.Transfer_done { epoch; len } ->
      [
        kind "state-transfer-done";
        ("epoch", Json.Int epoch);
        ("len", Json.Int len);
      ]
  in
  Json.Obj (base @ specific @ common)

let entry_of_json json =
  let ( let* ) r f = Result.bind r f in
  let require name to_v =
    match Option.bind (Json.member name json) to_v with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace entry: missing or bad %S field" name)
  in
  let str_field name ~default =
    match Json.string_member ~default name json with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "trace entry: bad %S field" name)
  in
  (* [bytes] is absent from schema-v2 traces; default it so old files
     keep loading (see the migration note in OBSERVABILITY.md). *)
  let int_field name ~default =
    match Json.int_member ~default name json with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "trace entry: bad %S field" name)
  in
  let* time = require "t" Json.to_int in
  let* node = require "node" Json.to_int in
  let* kind_name = require "kind" Json.to_str in
  let* instance = str_field "instance" ~default:"" in
  let* round =
    match Json.int_member ~default:(-1) "round" json with
    | Some r -> Ok r
    | None -> Error "trace entry: bad \"round\" field"
  in
  let* kind =
    match kind_name with
    | "send" ->
      let* dst = require "dst" Json.to_int in
      let* label = require "label" Json.to_str in
      let* detail = str_field "detail" ~default:"" in
      let* bytes = int_field "bytes" ~default:0 in
      Ok (Event.Send { dst; label; detail; bytes })
    | "deliver" ->
      let* src = require "src" Json.to_int in
      let* label = require "label" Json.to_str in
      let* detail = str_field "detail" ~default:"" in
      let* bytes = int_field "bytes" ~default:0 in
      Ok (Event.Deliver { src; label; detail; bytes })
    | "quorum" ->
      let* quorum = require "quorum" Json.to_str in
      let* count = require "count" Json.to_int in
      let* threshold = require "threshold" Json.to_int in
      Ok (Event.Quorum { quorum; count; threshold })
    | "coin" ->
      let* value = require "value" Json.to_int in
      Ok (Event.Coin_flip { value })
    | "round" -> Ok Event.Round_advance
    | "decide" ->
      let* value = require "value" Json.to_str in
      Ok (Event.Decide { value })
    | "output" ->
      let* label = require "label" Json.to_str in
      Ok (Event.Output { label })
    | "note" ->
      let* tag = require "tag" Json.to_str in
      let* detail = require "detail" Json.to_str in
      Ok (Event.Note { tag; detail })
    | "link-drop" ->
      let* src = require "src" Json.to_int in
      let* dst = require "dst" Json.to_int in
      let* label = require "label" Json.to_str in
      let* reason = require "reason" Json.to_str in
      Ok (Event.Link_drop { src; dst; label; reason })
    | "link-dup" ->
      let* src = require "src" Json.to_int in
      let* dst = require "dst" Json.to_int in
      let* label = require "label" Json.to_str in
      Ok (Event.Link_dup { src; dst; label })
    | "timer-set" ->
      let* id = require "id" Json.to_int in
      let* due = require "due" Json.to_int in
      Ok (Event.Timer_set { id; due })
    | "timeout" ->
      let* id = require "id" Json.to_int in
      Ok (Event.Timer_fire { id })
    | "retransmit" ->
      let* dst = require "dst" Json.to_int in
      let* seq = require "seq" Json.to_int in
      Ok (Event.Retransmit { dst; seq })
    | "epoch-start" ->
      let* epoch = require "epoch" Json.to_int in
      Ok (Event.Epoch_start { epoch })
    | "batch-proposed" ->
      let* epoch = require "epoch" Json.to_int in
      let* txs = require "txs" Json.to_int in
      let* bytes = int_field "bytes" ~default:0 in
      Ok (Event.Batch_proposed { epoch; txs; bytes })
    | "batch-committed" ->
      let* epoch = require "epoch" Json.to_int in
      let* proposer = require "proposer" Json.to_int in
      let* txs = require "txs" Json.to_int in
      Ok (Event.Batch_committed { epoch; proposer; txs })
    | "tx-committed" ->
      let* epoch = require "epoch" Json.to_int in
      let* id = require "id" Json.to_str in
      Ok (Event.Tx_committed { epoch; id })
    | "node-crashed" -> Ok Event.Node_crash
    | "node-recovered" -> Ok Event.Node_recover
    | "checkpoint-stable" ->
      let* epoch = require "epoch" Json.to_int in
      let* len = require "len" Json.to_int in
      Ok (Event.Checkpoint_stable { epoch; len })
    | "state-transfer-start" ->
      let* have = require "have" Json.to_int in
      Ok (Event.Transfer_start { have })
    | "state-transfer-done" ->
      let* epoch = require "epoch" Json.to_int in
      let* len = require "len" Json.to_int in
      Ok (Event.Transfer_done { epoch; len })
    | other -> Error (Printf.sprintf "trace entry: unknown kind %S" other)
  in
  Ok { time; node; event = { Event.kind; instance; round } }

let header_json ?(meta = []) t =
  (* The sampling fields are additive and only present when sampling
     is on, so a sample=1 trace is byte-identical to pre-sampling
     output and old readers (which ignore unknown header fields) keep
     working. *)
  let sampling =
    if t.sample = 1 then []
    else
      [
        ("sample", Json.Int t.sample);
        ( "counts",
          Json.Obj (List.map (fun (l, c) -> (l, Json.Int c)) (counts t)) );
      ]
  in
  Json.Obj
    ([
       ("schema", Json.String "abc.trace");
       ("version", Json.Int schema_version);
       ("recorded", Json.Int t.recorded);
       ("retained", Json.Int t.size);
       ("dropped", Json.Int (dropped t));
     ]
    @ sampling
    @ [ ("meta", Json.Obj meta) ])

let add_jsonl ?meta buffer t =
  Buffer.add_string buffer (Json.to_string (header_json ?meta t));
  Buffer.add_char buffer '\n';
  List.iter
    (fun e ->
      Buffer.add_string buffer (Json.to_string (entry_to_json e));
      Buffer.add_char buffer '\n')
    (to_list t)

let to_jsonl_string ?meta t =
  let buffer = Buffer.create 4096 in
  add_jsonl ?meta buffer t;
  Buffer.contents buffer

let write_jsonl ?meta oc t = output_string oc (to_jsonl_string ?meta t)
