(** Execution traces of typed protocol events.

    A bounded in-memory ring of {!Event.t} occurrences, each stamped
    with the virtual time and the node it concerns.  When the capacity
    is exceeded the oldest entries are discarded — tracing long runs
    stays cheap — and {!dropped} accounts for every eviction exactly
    ([recorded t = length t + dropped t] always holds).

    Traces export to JSON Lines with a versioned schema (see
    [OBSERVABILITY.md]): one header object followed by one object per
    entry.  {!Trace_file} reads the format back; [abc-trace] analyzes
    it. *)

type entry = {
  time : int;  (** virtual time at which the event occurred *)
  node : int;  (** node the event concerns, or [-1] for the engine *)
  event : Event.t;  (** what happened *)
}

type t
(** A mutable trace buffer. *)

val schema_version : int
(** Version number written into the JSONL header; bumped on any
    incompatible schema change (stability promise in
    [OBSERVABILITY.md]). *)

val create : ?capacity:int -> ?sample:int -> unit -> t
(** [create ~capacity ~sample ()] is an empty trace retaining at most
    [capacity] entries (default 4096).  [sample] (default 1) turns on
    the sampling sink: only every [sample]-th recorded event is
    retained (a deterministic counter stride — events #1, #sample+1,
    ... — never a RNG draw), while {!recorded} and the per-kind
    {!counts} stay exact.  See PERFORMANCE.md for when to sample. *)

val sample : t -> int
(** The sampling stride (1 = retain everything). *)

val record : t -> time:int -> node:int -> Event.t -> unit
(** [record t ~time ~node event] counts the event (always, exactly)
    and appends an entry unless sampled out, evicting the oldest
    entry if the buffer is full.  Callers on a hot path should guard
    with their {!Event.sink}'s [enabled] flag so the event value is
    never built when tracing is off. *)

val note : t -> time:int -> node:int -> tag:string -> string -> unit
(** [note t ~time ~node ~tag detail] records a free-form
    {!Event.kind.Note} — the escape hatch for events outside the typed
    vocabulary. *)

val length : t -> int
(** [length t] is the number of retained entries. *)

val recorded : t -> int
(** [recorded t] is the number of entries ever recorded, retained or
    not. *)

val dropped : t -> int
(** [dropped t] is the number of recorded entries not retained —
    evicted by the ring or sampled out; exactly
    [recorded t - length t]. *)

val counts : t -> (string * int) list
(** [counts t] is the exact number of events recorded per kind label
    (kinds never recorded are omitted), in {!Event.kind_ord} order.
    Exact even when sampling: counting happens before the sampling
    decision. *)

val count_kind : t -> label:string -> int
(** [count_kind t ~label] is the exact number of recorded events of
    that kind (0 when never recorded), sampled out or not — unlike
    {!find_kind}, which only sees retained entries. *)

val to_list : t -> entry list
(** [to_list t] is the retained entries, oldest first. *)

val find_kind : t -> label:string -> entry list
(** [find_kind t ~label] is the retained entries whose event kind has
    {!Event.kind_label} [label], oldest first. *)

val pp_entry : entry Fmt.t
(** Pretty-printer for a single entry. *)

val dump : Format.formatter -> t -> unit
(** [dump ppf t] prints all retained entries, one per line. *)

(** {1 JSONL export}

    The wire format is one JSON object per line: a header
    [{"schema":"abc.trace","version":1,...}] followed by the retained
    entries, oldest first.  Field-by-field documentation lives in
    [OBSERVABILITY.md]. *)

val entry_to_json : entry -> Json.t
(** [entry_to_json e] is the schema object for one entry. *)

val entry_of_json : Json.t -> (entry, string) result
(** [entry_of_json j] parses an entry object; inverse of
    {!entry_to_json} (unknown extra fields are ignored). *)

val header_json : ?meta:(string * Json.t) list -> t -> Json.t
(** [header_json ~meta t] is the header object: schema name, schema
    version, recorded/retained/dropped counts and the caller-supplied
    run metadata (protocol, n, f, seed, ...). *)

val to_jsonl_string : ?meta:(string * Json.t) list -> t -> string
(** Render header plus all retained entries as JSON Lines. *)

val write_jsonl : ?meta:(string * Json.t) list -> out_channel -> t -> unit
(** [write_jsonl oc t] writes {!to_jsonl_string} to [oc]. *)
