type t = {
  version : int;
  recorded : int;
  dropped : int;
  meta : (string * Json.t) list;
  entries : Trace.entry list;
}

let ( let* ) r f = Result.bind r f

let parse_header line =
  let* json =
    Result.map_error (fun m -> "header: " ^ m) (Json.of_string line)
  in
  let* () =
    match Json.string_member "schema" json with
    | Some "abc.trace" -> Ok ()
    | Some other -> Error (Printf.sprintf "not an abc.trace file (schema %S)" other)
    | None -> Error "not an abc.trace file (no schema field)"
  in
  let* version =
    match Json.int_member "version" json with
    | Some v -> Ok v
    | None -> Error "header: missing version"
  in
  let* () =
    if version > Trace.schema_version then
      Error
        (Printf.sprintf "trace schema version %d is newer than supported %d"
           version Trace.schema_version)
    else Ok ()
  in
  let meta =
    match Option.bind (Json.member "meta" json) Json.to_obj with
    | Some fields -> fields
    | None -> []
  in
  let field name = Option.value ~default:0 (Json.int_member ~default:0 name json) in
  Ok (version, field "recorded", field "dropped", meta)

let of_lines lines =
  match lines with
  | [] -> Error "empty trace file"
  | header :: rest ->
    let* version, recorded, dropped, meta = parse_header header in
    let* entries =
      List.fold_left
        (fun acc (lineno, line) ->
          let* acc = acc in
          if String.length (String.trim line) = 0 then Ok acc
          else begin
            let* json =
              Result.map_error
                (fun m -> Printf.sprintf "line %d: %s" lineno m)
                (Json.of_string line)
            in
            let* entry =
              Result.map_error
                (fun m -> Printf.sprintf "line %d: %s" lineno m)
                (Trace.entry_of_json json)
            in
            Ok (entry :: acc)
          end)
        (Ok [])
        (List.mapi (fun i line -> (i + 2, line)) rest)
    in
    Ok { version; recorded; dropped; meta; entries = List.rev entries }

let of_string text =
  of_lines (String.split_on_char '\n' text)

let read path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        of_lines (List.rev !lines))

let meta_int t name = Option.bind (List.assoc_opt name t.meta) Json.to_int

let meta_string t name = Option.bind (List.assoc_opt name t.meta) Json.to_str

let nodes t =
  List.fold_left
    (fun acc (e : Trace.entry) -> if e.Trace.node >= acc then e.Trace.node + 1 else acc)
    (match meta_int t "n" with Some n -> n | None -> 0)
    t.entries
