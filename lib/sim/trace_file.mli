(** Reader for the [abc.trace] JSON Lines format.

    Parses trace files written by {!Trace.write_jsonl} back into typed
    {!Trace.entry} values: one header object (schema name, version,
    counts, run metadata) followed by one entry object per line.  The
    format is documented in [OBSERVABILITY.md]; the [abc-trace] CLI is
    built on this module. *)

type t = {
  version : int;  (** schema version declared by the header *)
  recorded : int;  (** entries ever recorded by the producing run *)
  dropped : int;  (** entries evicted before export *)
  meta : (string * Json.t) list;  (** run metadata from the header *)
  entries : Trace.entry list;  (** retained entries, oldest first *)
}

val read : string -> (t, string) result
(** [read path] loads and parses the trace file at [path].  Errors
    (unreadable file, malformed JSON, unknown schema, version newer
    than {!Trace.schema_version}) are returned as human-readable
    messages prefixed with the offending line number. *)

val of_string : string -> (t, string) result
(** [of_string text] parses an in-memory JSONL document. *)

val of_lines : string list -> (t, string) result
(** [of_lines lines] parses a list of lines — the first is the header,
    the rest are entries; blank lines are ignored. *)

val meta_int : t -> string -> int option
(** [meta_int t name] reads an integer run-metadata field (["n"],
    ["f"], ["seed"], ...). *)

val meta_string : t -> string -> string option
(** [meta_string t name] reads a string run-metadata field
    (["protocol"], ...). *)

val nodes : t -> int
(** [nodes t] is the node count: the ["n"] metadata field when
    present, widened to cover any larger node id appearing in the
    entries. *)
