let tally tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let sorted_tally tbl cmp =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let meta_line meta =
  let fields =
    List.sort (fun (a, _) (b, _) -> String.compare a b) meta
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Json.to_string v))
  in
  String.concat " " fields

let in_instance filter (e : Trace.entry) =
  match filter with
  | None -> true
  | Some wanted ->
    let inst = e.Trace.event.Event.instance in
    String.equal inst wanted
    || (String.length inst > String.length wanted
       && String.length wanted > 0
       && String.starts_with ~prefix:(wanted ^ "/") inst)

(* The epoch an event belongs to, when its kind carries one. *)
let kind_epoch = function
  | Event.Epoch_start { epoch }
  | Event.Batch_proposed { epoch; _ }
  | Event.Batch_committed { epoch; _ }
  | Event.Tx_committed { epoch; _ }
  | Event.Checkpoint_stable { epoch; _ }
  | Event.Transfer_done { epoch; _ } ->
    Some epoch
  | _ -> None

let in_node filter (e : Trace.entry) =
  match filter with None -> true | Some node -> Int.equal e.Trace.node node

(* An entry matches --epoch E when its kind carries epoch E, or when
   its instance path has an "epochE" component (the scope the atomic
   broadcast nests each epoch's agreement under). *)
let in_epoch filter (e : Trace.entry) =
  match filter with
  | None -> true
  | Some epoch -> (
    match kind_epoch e.Trace.event.Event.kind with
    | Some k -> Int.equal k epoch
    | None ->
      let wanted = "epoch" ^ string_of_int epoch in
      List.exists (String.equal wanted)
        (String.split_on_char '/' e.Trace.event.Event.instance))

let filter_entries ?node ?epoch (file : Trace_file.t) =
  List.filter
    (fun e -> in_node node e && in_epoch epoch e)
    file.Trace_file.entries

let filter_line ?node ?epoch add =
  (match node with
  | Some n -> add (Printf.sprintf "filter: node=%d" n)
  | None -> ());
  match epoch with
  | Some e -> add (Printf.sprintf "filter: epoch=%d" e)
  | None -> ()

let summary ?node ?epoch (file : Trace_file.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "trace: abc.trace v%d" file.Trace_file.version;
  if List.length file.Trace_file.meta > 0 then
    line "meta: %s" (meta_line file.Trace_file.meta);
  filter_line ?node ?epoch (fun s -> line "%s" s);
  let entries = filter_entries ?node ?epoch file in
  let retained = List.length entries in
  line "entries: retained=%d recorded=%d dropped=%d" retained
    file.Trace_file.recorded file.Trace_file.dropped;
  (* Events by kind. *)
  let by_kind = Hashtbl.create 8 in
  let by_node = Hashtbl.create 8 in
  let quorums = Hashtbl.create 8 in
  let thresholds = Hashtbl.create 8 in
  let coin_values = Hashtbl.create 8 in
  let decisions = ref [] in
  let max_round = ref (-1) in
  let sent_bytes = ref 0 in
  let delivered_bytes = ref 0 in
  List.iter
    (fun (e : Trace.entry) ->
      let ev = e.Trace.event in
      tally by_kind (Event.kind_label ev.Event.kind);
      tally by_node e.Trace.node;
      if ev.Event.round > !max_round then max_round := ev.Event.round;
      match ev.Event.kind with
      | Event.Send { bytes; _ } -> sent_bytes := !sent_bytes + bytes
      | Event.Deliver { bytes; _ } -> delivered_bytes := !delivered_bytes + bytes
      | Event.Quorum { quorum; threshold; _ } ->
        tally quorums quorum;
        if not (Hashtbl.mem thresholds quorum) then
          Hashtbl.add thresholds quorum threshold
      | Event.Coin_flip { value } -> tally coin_values value
      | Event.Decide { value } ->
        if
          not
            (List.exists
               (fun (node, _, _, _) -> Int.equal node e.Trace.node)
               !decisions)
        then
          decisions :=
            (e.Trace.node, ev.Event.round, value, e.Trace.time) :: !decisions
      | _ -> ())
    entries;
  if Hashtbl.length by_kind > 0 then begin
    line "events by kind:";
    List.iter
      (fun (kind, count) -> line "  %-8s %d" kind count)
      (sorted_tally by_kind String.compare)
  end;
  if !sent_bytes > 0 || !delivered_bytes > 0 then
    line "bytes on the wire (retained entries): sent=%d delivered=%d"
      !sent_bytes !delivered_bytes;
  if Hashtbl.length by_node > 0 then begin
    line "events by node:";
    List.iter
      (fun (node, count) -> line "  node %d: %d" node count)
      (sorted_tally by_node Int.compare)
  end;
  if Hashtbl.length quorums > 0 then begin
    line "quorums reached:";
    List.iter
      (fun (name, count) ->
        let threshold =
          match Hashtbl.find_opt thresholds name with Some k -> k | None -> 0
        in
        line "  %-16s %d (threshold %d)" name count threshold)
      (sorted_tally quorums String.compare)
  end;
  if Hashtbl.length coin_values > 0 then begin
    let flips =
      List.fold_left (fun acc (_, c) -> acc + c) 0
        (sorted_tally coin_values Int.compare)
    in
    let values =
      sorted_tally coin_values Int.compare
      |> List.map (fun (v, c) -> Printf.sprintf "%d:%d" v c)
      |> String.concat " "
    in
    line "coin flips: %d (%s)" flips values
  end;
  if !max_round >= 0 then line "max round: %d" !max_round;
  let decided =
    List.sort
      (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b)
      !decisions
  in
  let total_nodes = Trace_file.nodes file in
  if List.length decided > 0 || total_nodes > 0 then
    line "decided: %d/%d nodes" (List.length decided) total_nodes;
  List.iter
    (fun (node, round, value, time) ->
      if round >= 0 then
        line "  node %d: value=%s round=%d t=%d" node value round time
      else line "  node %d: value=%s t=%d" node value time)
    decided;
  Buffer.contents b

let instances (file : Trace_file.t) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.entry) ->
      let inst = e.Trace.event.Event.instance in
      if String.length inst > 0 && not (Hashtbl.mem seen inst) then
        Hashtbl.add seen inst ())
    file.Trace_file.entries;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort String.compare

let timeline ?instance ?node ?epoch (file : Trace_file.t) =
  let b = Buffer.create 1024 in
  let entries =
    List.filter
      (fun e -> in_instance instance e && in_node node e && in_epoch epoch e)
      file.Trace_file.entries
  in
  (* Instance-scoped events render as "proto#instance" (not a bare
     instance id) so overlapping sub-protocols — per-proposer ACS
     instances, per-epoch batch agreements — stay attributable when
     several are interleaved in one timeline. *)
  let proto = Trace_file.meta_string file "protocol" in
  let qualify (e : Trace.entry) =
    let inst = e.Trace.event.Event.instance in
    match proto with
    | Some p when String.length inst > 0 ->
      { e with Trace.event = { e.Trace.event with Event.instance = p ^ "#" ^ inst } }
    | Some _ | None -> e
  in
  List.iter
    (fun (e : Trace.entry) ->
      Buffer.add_string b (Fmt.str "%a@." Trace.pp_entry (qualify e)))
    entries;
  if List.length entries = 0 then Buffer.add_string b "(no matching entries)\n";
  Buffer.contents b
