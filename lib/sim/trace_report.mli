(** Deterministic plain-text reports over parsed traces.

    Every function renders with sorted keys and stable formatting, so
    two runs with the same seed produce byte-identical output — the
    property the golden tests and the CI trace-smoke job rely on. *)

val summary : Trace_file.t -> string
(** [summary file] is a multi-line overview: schema version, run
    metadata, entry counts, events tallied by kind and by node, quorums
    reached (with thresholds), coin-flip statistics, the highest round
    observed and per-node decisions. *)

val instances : Trace_file.t -> string list
(** [instances file] is the sorted list of distinct non-empty instance
    paths appearing in the trace (e.g. ["rbc@n2"],
    ["acs/rbc@n0/key"]). *)

val timeline : ?instance:string -> Trace_file.t -> string
(** [timeline ?instance file] renders one line per entry in recording
    order.  With [~instance] only entries whose instance path equals
    the filter, or nests below it ([filter ^ "/..."]), are shown. *)
