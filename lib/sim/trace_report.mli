(** Deterministic plain-text reports over parsed traces.

    Every function renders with sorted keys and stable formatting, so
    two runs with the same seed produce byte-identical output — the
    property the golden tests and the CI trace-smoke job rely on. *)

val summary : ?node:int -> ?epoch:int -> Trace_file.t -> string
(** [summary ?node ?epoch file] is a multi-line overview: schema
    version, run metadata, entry counts, events tallied by kind and by
    node, quorums reached (with thresholds), coin-flip statistics, the
    highest round observed and per-node decisions.  [?node] keeps only
    entries recorded at that node; [?epoch] keeps only entries whose
    kind carries that epoch or whose instance path has an "epoch<E>"
    component.  Active filters are echoed in a "filter:" header line;
    with no filters the output is byte-identical to before the filters
    existed (the golden-file contract). *)

val instances : Trace_file.t -> string list
(** [instances file] is the sorted list of distinct non-empty instance
    paths appearing in the trace (e.g. ["rbc@n2"],
    ["acs/rbc@n0/key"]). *)

val timeline :
  ?instance:string -> ?node:int -> ?epoch:int -> Trace_file.t -> string
(** [timeline ?instance ?node ?epoch file] renders one line per entry
    in recording order.  With [~instance] only entries whose instance
    path equals the filter, or nests below it ([filter ^ "/..."]), are
    shown; [?node] and [?epoch] filter as in {!summary}.  The filters
    compose (conjunction). *)
