(* Flat storage without option boxing: slots past [size] may hold
   stale elements (they are overwritten by later pushes), which trades
   a little liveness precision for an allocation-free hot path — see
   PERFORMANCE.md.  The payload array is created at the first push so
   no dummy element is ever needed. *)

type 'a t = { mutable storage : 'a array; mutable size : int }

let create () = { storage = [||]; size = 0 }

let length v = v.size

let is_empty v = v.size = 0

let grow v fill =
  let cap = Array.length v.storage in
  if cap = 0 then v.storage <- Array.make 16 fill
  else begin
    let bigger = Array.make (2 * cap) fill in
    Array.blit v.storage 0 bigger 0 v.size;
    v.storage <- bigger
  end

let push v x =
  if v.size = Array.length v.storage then grow v x;
  v.storage.(v.size) <- x;
  v.size <- v.size + 1

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get: index out of bounds";
  v.storage.(i)

let swap_remove v i =
  let x = get v i in
  v.size <- v.size - 1;
  v.storage.(i) <- v.storage.(v.size);
  x

let iter f v =
  for i = 0 to v.size - 1 do
    f (get v i)
  done

let fold f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let clear v = v.size <- 0
