[@@@abc.resilience "n>3f"]

module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Event = Abc_sim.Event
module Int_map = Map.Make (Int)
module String_set = Set.Make (String)

type tx = Workload.tx

type input = {
  mempool : tx array;
  batch_size : int;
  epochs : int;
  window : int;
  coin_seed : int;
  checkpoint_interval : int; (* 0 disables checkpoints/GC/transfer *)
}

type output =
  | Epoch_committed of {
      epoch : int;
      batches : (Node_id.t * tx list) list;
      fresh : tx list;
    }
  | Gc_stats of { max_live : int; checkpoints : int; transfers : int }
  | Log_complete of tx list

type msg =
  | Epoch of { epoch : int; inner : Abc.Batch_acs.msg }
  | Checkpoint of { epoch : int; len : int; digest : int }
  | Transfer_req of { have : int }
  | Transfer_resp of {
      epoch : int; (* stable checkpoint epoch the snapshot reaches *)
      len : int; (* log length at that checkpoint *)
      digest : int; (* its agreed log digest *)
      base : int; (* echo of the request's [have] *)
      suffix : string; (* encoded log entries [base, len) *)
    }

(* A checkpoint certificate key: (epoch, log length, log digest).
   Votes for distinct keys never mix. *)
module Cp_key = struct
  type t = int * int * int

  let compare (e1, l1, d1) (e2, l2, d2) =
    let c = Int.compare e1 e2 in
    if c <> 0 then c
    else
      let c = Int.compare l1 l2 in
      if c <> 0 then c else Int.compare d1 d2
end

module Cp_map = Map.Make (Cp_key)

(* In-flight catch-up state: the outstanding request's [have] (so stale
   responses are ignored after local progress), the retry timeout, and
   the response groups collected so far. *)
type transfer = {
  req_base : int;
  rto : int;
  resps : ((int * int * int * int * string) * Node_id.t list) list;
}

type state = {
  me : Node_id.t;
  batch_size : int;
  epochs : int;
  window : int;
  coin_seed : int;
  checkpoint_interval : int;
  mempool : tx array;
  cursor : int; (* next mempool index not yet proposed *)
  requeue : tx list; (* txs from excluded batches, re-propose first *)
  proposed : tx list Int_map.t; (* epoch -> my batch *)
  instances : Abc.Batch_acs.state Int_map.t; (* live epoch agreements *)
  results : (Node_id.t * string) list Int_map.t; (* decided epochs *)
  committed : String_set.t; (* dedup set over the whole log *)
  log : tx list; (* committed txs, newest first *)
  log_len : int; (* List.length log, maintained incrementally *)
  next_commit : int; (* first epoch not yet committed *)
  complete : bool;
  (* checkpoint / GC / state-transfer machinery (checkpoint_interval > 0) *)
  cp_votes : Node_id.Set.t Cp_map.t; (* digest votes per certificate key *)
  stable : (int * int * int) option; (* highest stable checkpoint *)
  gc_floor : int; (* epochs below this are garbage-collected *)
  max_live : int; (* high-water mark of live epoch agreements *)
  checkpoints_stable : int;
  transfers_done : int;
  transfer : transfer option;
}

let name = "atomic-broadcast"

(* The catch-up retry timer (the only timer this protocol arms). *)
let catchup_timer = 0

(* Retry/backoff idiom shared with Reliable_link: start at 8n^2 virtual
   ticks (a broadcast round costs ~n^2 deliveries), cap at 1024n^2. *)
let initial_rto nodes = 8 * nodes * nodes
let max_rto nodes = 1024 * nodes * nodes

(* ----------------------------------------------------------------- *)
(* Batch encoding: "<count>" then ":<len>:<tx>" per transaction.     *)
(* Never empty (an empty batch is "0"), so the Reed-Solomon coder    *)
(* always has a payload to disperse.                                 *)
(* ----------------------------------------------------------------- *)

let encode_batch txs =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (string_of_int (List.length txs));
  List.iter
    (fun tx ->
      Buffer.add_char buffer ':';
      Buffer.add_string buffer (string_of_int (String.length tx));
      Buffer.add_char buffer ':';
      Buffer.add_string buffer tx)
    txs;
  Buffer.contents buffer

(* Total: a Byzantine proposer can commit an arbitrary string, which
   every honest node must skip identically. *)
let decode_batch s =
  let len = String.length s in
  let int_until pos =
    let rec scan i =
      if i < len && s.[i] >= '0' && s.[i] <= '9' then scan (i + 1) else i
    in
    let stop = scan pos in
    if stop = pos || stop - pos > 9 then None
    else Some (int_of_string (String.sub s pos (stop - pos)), stop)
  in
  match int_until 0 with
  | None -> None
  | Some (count, pos) ->
    let rec txs remaining pos acc =
      if remaining = 0 then if pos = len then Some (List.rev acc) else None
      else if pos >= len || s.[pos] <> ':' then None
      else
        match int_until (pos + 1) with
        | None -> None
        | Some (tx_len, pos) ->
          if pos >= len || s.[pos] <> ':' || pos + 1 + tx_len > len then None
          else
            txs (remaining - 1) (pos + 1 + tx_len)
              (String.sub s (pos + 1) tx_len :: acc)
    in
    txs count pos []

(* FNV-1a over the encoded log, folded into 30 bits so digests stay
   well inside OCaml's int on every platform.  Checkpoint digests only
   need to disagree when logs disagree — they are vote-matching keys,
   not cryptographic commitments (the simulated network is
   authenticated). *)
let digest_string s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let log_digest state = digest_string (encode_batch (List.rev state.log))

let rec list_drop k l =
  match l with _ :: rest when k > 0 -> list_drop (k - 1) rest | l -> l

let list_take k l =
  let rec go k acc = function
    | x :: rest when k > 0 -> go (k - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go k [] l

(* ----------------------------------------------------------------- *)
(* Epoch plumbing                                                    *)
(* ----------------------------------------------------------------- *)

let wrap epoch actions =
  List.map
    (fun action ->
      match action with
      | Protocol.Broadcast inner -> Protocol.Broadcast (Epoch { epoch; inner })
      | Protocol.Send (dst, inner) -> Protocol.Send (dst, Epoch { epoch; inner })
      | Protocol.Set_timer { id; after } ->
        (* Epoch agreements never arm timers today; if one ever does,
           the id must be epoch-demultiplexed rather than forwarded.
           (The catch-up timer is armed outside [wrap].) *)
        Protocol.Set_timer { id; after })
    actions

(* Scope an epoch's observability under "epoch<e>" so overlapping
   epoch agreements stay distinguishable in traces. *)
let epoch_ctx (ctx : Protocol.Context.t) epoch =
  if ctx.Protocol.Context.sink.Event.enabled then
    {
      ctx with
      Protocol.Context.sink =
        Event.scoped ctx.Protocol.Context.sink
          ~instance:(Printf.sprintf "epoch%d" epoch);
    }
  else ctx

let emit (ctx : Protocol.Context.t) kind =
  let sink = ctx.Protocol.Context.sink in
  if sink.Event.enabled then sink.Event.emit (Event.make kind)

(* Draw this node's next batch: requeued (previously excluded) txs
   first, then fresh mempool arrivals.  The cursor only ever moves
   forward — an excluded batch re-enters via [requeue], not by
   rewinding. *)
let draw_batch state =
  let rec take k cursor requeue acc =
    if k = 0 then (List.rev acc, cursor, requeue)
    else
      match requeue with
      | tx :: rest -> take (k - 1) cursor rest (tx :: acc)
      | [] ->
        if cursor < Array.length state.mempool then
          take (k - 1) (cursor + 1) [] (state.mempool.(cursor) :: acc)
        else (List.rev acc, cursor, [])
  in
  take state.batch_size state.cursor state.requeue []

(* Open epoch [epoch]'s agreement (idempotent): draws a batch from the
   mempool and starts ACS-over-coded-RBC on it, which disperses the
   batch.  Epochs open either proactively (inside the pipeline window
   above [next_commit]) or lazily when traffic for them arrives — a
   peer that commits faster than us may legitimately be an epoch
   ahead.  Epochs below the GC floor stay dead: reopening one would
   resurrect state a stable checkpoint already covers. *)
let open_epoch ctx state epoch =
  if
    epoch < state.gc_floor || epoch >= state.epochs
    || Int_map.mem epoch state.instances
  then (state, [])
  else begin
    let batch, cursor, requeue = draw_batch state in
    let proposal = encode_batch batch in
    emit ctx (Event.Epoch_start { epoch });
    emit ctx
      (Event.Batch_proposed
         { epoch; txs = List.length batch; bytes = String.length proposal });
    let inner_input =
      {
        Abc.Batch_acs.proposal;
        coin = Abc.Coin.common ~seed:(state.coin_seed + epoch);
      }
    in
    let inner_state, actions =
      Abc.Batch_acs.initial (epoch_ctx ctx epoch) inner_input
    in
    let instances = Int_map.add epoch inner_state state.instances in
    ( {
        state with
        cursor;
        requeue;
        proposed = Int_map.add epoch batch state.proposed;
        instances;
        max_live = max state.max_live (Int_map.cardinal instances);
      },
      wrap epoch actions )
  end

(* Open every epoch the pipeline window admits: [next_commit] up to
   [next_commit + window) — epoch e+1's dispersal starts while epoch
   e's agreement is still running. *)
let open_window ctx state =
  List.fold_left
    (fun (state, acc) epoch ->
      let state, actions = open_epoch ctx state epoch in
      (state, acc @ actions))
    (state, [])
    (List.init state.window (fun k -> state.next_commit + k))

(* ----------------------------------------------------------------- *)
(* Checkpoints, garbage collection, state transfer                   *)
(* ----------------------------------------------------------------- *)

(* Drop every per-epoch structure below the GC floor: everything up to
   the stable checkpoint that this node has also committed locally.
   A lagging node (next_commit behind the stable epoch) only GCs up to
   its own commit point — the gap is closed by state transfer, not by
   discarding agreements it still needs. *)
let collect_garbage state =
  match state.stable with
  | None -> state
  | Some (stable_epoch, _, _) ->
    let floor =
      max state.gc_floor (min state.next_commit (stable_epoch + 1))
    in
    if floor = state.gc_floor then state
    else
      let prune m = Int_map.filter (fun epoch _ -> epoch >= floor) m in
      {
        state with
        gc_floor = floor;
        instances = prune state.instances;
        results = prune state.results;
        proposed = prune state.proposed;
        cp_votes =
          Cp_map.filter
            (fun (epoch, _, _) _ -> epoch > stable_epoch)
            state.cp_votes;
      }

(* Begin (or keep running) the catch-up loop: broadcast a transfer
   request carrying how much log we hold and arm the retry timer.
   Idempotent while a transfer is in flight. *)
let start_transfer ctx state =
  match state.transfer with
  | Some _ -> (state, [])
  | None ->
    if state.complete || state.checkpoint_interval <= 0 then (state, [])
    else begin
      let nodes = ctx.Protocol.Context.n in
      let have = state.log_len in
      emit ctx (Event.Transfer_start { have });
      let rto = initial_rto nodes in
      ( { state with transfer = Some { req_base = have; rto; resps = [] } },
        [
          Protocol.Broadcast (Transfer_req { have });
          Protocol.Set_timer { id = catchup_timer; after = rto };
        ] )
    end

(* Count one checkpoint digest vote.  2f+1 matching votes make the
   checkpoint stable (PBFT's stability condition): at least f+1 honest
   nodes hold the digest, so the prefix below it can be
   garbage-collected — and if the stable point is ahead of our own
   commits, we are the lagging replica and start a state transfer. *)
let record_checkpoint ctx state ~voter ((epoch, len, _digest) as key) =
  if state.checkpoint_interval <= 0 then (state, [])
  else
    let stale =
      match state.stable with
      | Some (stable_epoch, _, _) -> epoch <= stable_epoch
      | None -> false
    in
    if stale then (state, [])
    else
      let votes =
        match Cp_map.find_opt key state.cp_votes with
        | Some set -> Node_id.Set.add voter set
        | None -> Node_id.Set.singleton voter
      in
      let state = { state with cp_votes = Cp_map.add key votes state.cp_votes } in
      let threshold =
        Abc.Quorum.checkpoint_stable ~f:ctx.Protocol.Context.f
      in
      let count = Node_id.Set.cardinal votes in
      if count < threshold then (state, [])
      else begin
        emit ctx (Event.Quorum { quorum = "checkpoint"; count; threshold });
        emit ctx (Event.Checkpoint_stable { epoch; len });
        let state =
          {
            state with
            stable = Some key;
            checkpoints_stable = state.checkpoints_stable + 1;
          }
        in
        let state = collect_garbage state in
        if epoch + 1 > state.next_commit then start_transfer ctx state
        else (state, [])
      end

(* ----------------------------------------------------------------- *)
(* Commit path                                                       *)
(* ----------------------------------------------------------------- *)

(* Commit decided epochs in order: deduplicate each epoch's agreed
   subset against the whole log, append the survivors in (proposer,
   arrival) order, and requeue my own batch if the subset excluded
   it.  Every honest node processes identical subsets in identical
   epoch order against an identical dedup set, so the logs agree.
   Crossing a checkpoint boundary (every [checkpoint_interval] epochs)
   broadcasts this node's digest vote for the boundary. *)
let drain_commits ctx state =
  let rec loop state actions acc =
    match Int_map.find_opt state.next_commit state.results with
    | Some subset ->
      let epoch = state.next_commit in
      let state, batches, fresh_rev =
        List.fold_left
          (fun (state, batches, fresh_rev) (proposer, raw) ->
            match decode_batch raw with
            | None ->
              (* Malformed (Byzantine) batch: skipped identically
                 everywhere. *)
              (state, batches, fresh_rev)
            | Some txs ->
              let fresh =
                List.filter
                  (fun tx -> not (String_set.mem tx state.committed))
                  txs
              in
              emit ctx
                (Event.Batch_committed
                   {
                     epoch;
                     proposer = Node_id.to_int proposer;
                     txs = List.length fresh;
                   });
              List.iter
                (fun tx ->
                  emit ctx (Event.Tx_committed { epoch; id = Workload.tx_id tx }))
                fresh;
              let state =
                {
                  state with
                  committed =
                    List.fold_left
                      (fun set tx -> String_set.add tx set)
                      state.committed fresh;
                  log = List.rev_append fresh state.log;
                  log_len = state.log_len + List.length fresh;
                }
              in
              (state, (proposer, txs) :: batches, List.rev_append fresh fresh_rev))
          (state, [], []) subset
      in
      (* If my batch was excluded, its uncommitted txs go back to the
         front of the queue for the next epoch I open. *)
      let included =
        List.exists (fun (proposer, _) -> Node_id.equal proposer state.me) subset
      in
      let state =
        if included then state
        else
          match Int_map.find_opt epoch state.proposed with
          | None -> state
          | Some mine ->
            let missing =
              List.filter
                (fun tx -> not (String_set.mem tx state.committed))
                mine
            in
            { state with requeue = state.requeue @ missing }
      in
      let output =
        Epoch_committed
          { epoch; batches = List.rev batches; fresh = List.rev fresh_rev }
      in
      let state = { state with next_commit = epoch + 1 } in
      let state, cp_actions =
        (* The final epoch is always a boundary: the last checkpoint
           then covers the whole log, so a replica rejoining after the
           run finished can complete via state transfer alone (nobody
           retransmits the tail's epoch agreements). *)
        if
          state.checkpoint_interval > 0
          && ((epoch + 1) mod state.checkpoint_interval = 0
             || epoch + 1 = state.epochs)
        then begin
          (* The digest is computed at the boundary — the log as of
             this commit, before any later epoch extends it. *)
          let len = state.log_len in
          let digest = log_digest state in
          let state, stable_actions =
            record_checkpoint ctx state ~voter:state.me (epoch, len, digest)
          in
          ( state,
            Protocol.Broadcast (Checkpoint { epoch; len; digest })
            :: stable_actions )
        end
        else (state, [])
      in
      loop state (actions @ cp_actions) (output :: acc)
    | None ->
      if state.next_commit >= state.epochs && not state.complete then begin
        let stats =
          if state.checkpoint_interval > 0 then
            [
              Gc_stats
                {
                  max_live = state.max_live;
                  checkpoints = state.checkpoints_stable;
                  transfers = state.transfers_done;
                };
            ]
          else []
        in
        ( { state with complete = true },
          actions,
          List.rev acc @ stats @ [ Log_complete (List.rev state.log) ] )
      end
      else (state, actions, List.rev acc)
  in
  loop state [] []

(* ----------------------------------------------------------------- *)
(* State transfer: serving and installing snapshots                  *)
(* ----------------------------------------------------------------- *)

(* Serve a transfer request: ship our latest stable checkpoint plus
   the log entries the requester is missing up to it.  We only serve
   prefixes we both hold and have a stability certificate for — the
   f+1 matching-response rule on the requester side does the
   vouching. *)
let serve_transfer_req state ~src ~have =
  if state.checkpoint_interval <= 0 then (state, [], [])
  else
    match state.stable with
    | None -> (state, [], [])
    | Some (epoch, len, digest) ->
      if len <= have || state.log_len < len then (state, [], [])
      else begin
        let suffix =
          encode_batch (list_take (len - have) (list_drop have (List.rev state.log)))
        in
        ( state,
          [ Protocol.Send (src, Transfer_resp { epoch; len; digest; base = have; suffix }) ],
          [] )
      end

(* Install a vouched snapshot: splice the suffix onto our log, jump
   [next_commit] past the checkpoint, requeue our own transactions
   whose epochs were transferred over, and drop the per-epoch state
   those epochs held.  Then drain any already-decided later epochs and
   re-request if the log is still incomplete — progress-gated, with
   the armed retry timer as the fallback. *)
let install_snapshot ctx state ~cp:(epoch, len, digest) ~suffix =
  match decode_batch suffix with
  | None -> (state, [], [])
  | Some txs ->
    if state.log_len + List.length txs <> len then (state, [], [])
    else begin
      emit ctx (Event.Transfer_done { epoch; len });
      let committed =
        List.fold_left (fun set tx -> String_set.add tx set) state.committed txs
      in
      let log = List.fold_left (fun l tx -> tx :: l) state.log txs in
      let next_commit = epoch + 1 in
      let requeue_extra =
        Int_map.fold
          (fun e batch acc ->
            if e < next_commit then
              acc @ List.filter (fun tx -> not (String_set.mem tx committed)) batch
            else acc)
          state.proposed []
      in
      let keep m = Int_map.filter (fun e _ -> e >= next_commit) m in
      let stable =
        match state.stable with
        | Some (stable_epoch, _, _) when stable_epoch >= epoch -> state.stable
        | Some _ | None -> Some (epoch, len, digest)
      in
      let state =
        {
          state with
          committed;
          log;
          log_len = len;
          next_commit;
          requeue = state.requeue @ requeue_extra;
          proposed = keep state.proposed;
          results = keep state.results;
          instances = keep state.instances;
          stable;
          transfers_done = state.transfers_done + 1;
          transfer =
            (match state.transfer with
            | Some t -> Some { t with resps = [] }
            | None -> None);
        }
      in
      let state, drain_actions, outputs = drain_commits ctx state in
      let state = collect_garbage state in
      let state, window_actions = open_window ctx state in
      let state, rereq =
        if state.complete then (state, [])
        else
          ( {
              state with
              transfer =
                (match state.transfer with
                | Some t -> Some { t with req_base = state.log_len; resps = [] }
                | None -> None);
            },
            [ Protocol.Broadcast (Transfer_req { have = state.log_len }) ] )
      in
      (state, drain_actions @ window_actions @ rereq, outputs)
    end

(* Collect a transfer response into its content group; f+1 distinct
   senders with byte-identical content vouch at least one honest
   holder of that committed prefix, which is when we install. *)
let accept_transfer_resp ctx state ~src ~resp:(epoch, len, digest, base, suffix) =
  match state.transfer with
  | None -> (state, [], [])
  | Some t ->
    if base <> t.req_base || base <> state.log_len || len <= state.log_len then
      (state, [], [])
    else begin
      let key = (epoch, len, digest, base, suffix) in
      let key_equal (e1, l1, d1, b1, s1) (e2, l2, d2, b2, s2) =
        Int.equal e1 e2 && Int.equal l1 l2 && Int.equal d1 d2 && Int.equal b1 b2
        && String.equal s1 s2
      in
      let rec add = function
        | [] -> [ (key, [ src ]) ]
        | (k, senders) :: rest when key_equal k key ->
          let senders =
            if List.exists (Node_id.equal src) senders then senders
            else src :: senders
          in
          (k, senders) :: rest
        | entry :: rest -> entry :: add rest
      in
      let resps = add t.resps in
      let state = { state with transfer = Some { t with resps } } in
      let vouched =
        List.exists
          (fun (k, senders) ->
            key_equal k key
            && List.length senders
               >= Abc.Quorum.transfer_vouch ~f:ctx.Protocol.Context.f)
          resps
      in
      if vouched then
        install_snapshot ctx state ~cp:(epoch, len, digest) ~suffix
      else (state, [], [])
    end

(* ----------------------------------------------------------------- *)
(* Protocol.S                                                        *)
(* ----------------------------------------------------------------- *)

let base_state ctx (input : input) =
  {
    me = ctx.Protocol.Context.me;
    batch_size = input.batch_size;
    epochs = input.epochs;
    window = input.window;
    coin_seed = input.coin_seed;
    checkpoint_interval = input.checkpoint_interval;
    mempool = input.mempool;
    cursor = 0;
    requeue = [];
    proposed = Int_map.empty;
    instances = Int_map.empty;
    results = Int_map.empty;
    committed = String_set.empty;
    log = [];
    log_len = 0;
    next_commit = 0;
    complete = false;
    cp_votes = Cp_map.empty;
    stable = None;
    gc_floor = 0;
    max_live = 0;
    checkpoints_stable = 0;
    transfers_done = 0;
    transfer = None;
  }

let initial ctx (input : input) =
  if input.batch_size <= 0 then
    invalid_arg "Atomic_broadcast: batch_size must be positive";
  if input.epochs <= 0 then invalid_arg "Atomic_broadcast: epochs must be positive";
  if input.window <= 0 then invalid_arg "Atomic_broadcast: window must be positive";
  if input.checkpoint_interval < 0 then
    invalid_arg "Atomic_broadcast: checkpoint_interval must be >= 0";
  open_window ctx (base_state ctx input)

let on_message ctx state ~src msg =
  match msg with
  | Epoch { epoch; inner } ->
    if epoch < state.gc_floor || epoch >= state.epochs then (state, [], [])
    else begin
      (* Lazily open epochs driven by faster peers (see [open_epoch]). *)
      let state, open_actions = open_epoch ctx state epoch in
      match Int_map.find_opt epoch state.instances with
      | None -> (state, open_actions, [])
      | Some inner_state ->
        let inner_state, inner_actions, inner_outputs =
          Abc.Batch_acs.on_message (epoch_ctx ctx epoch) inner_state ~src inner
        in
        let state =
          { state with instances = Int_map.add epoch inner_state state.instances }
        in
        let state =
          List.fold_left
            (fun state (Abc.Batch_acs.Accepted subset) ->
              if Int_map.mem epoch state.results then state
              else { state with results = Int_map.add epoch subset state.results })
            state inner_outputs
        in
        let state, drain_actions, outputs = drain_commits ctx state in
        let state = collect_garbage state in
        (* Committing an epoch slides the pipeline window forward. *)
        let state, window_actions = open_window ctx state in
        ( state,
          open_actions @ wrap epoch inner_actions @ drain_actions
          @ window_actions,
          outputs )
    end
  | Checkpoint { epoch; len; digest } ->
    let state, actions = record_checkpoint ctx state ~voter:src (epoch, len, digest) in
    (state, actions, [])
  | Transfer_req { have } -> serve_transfer_req state ~src ~have
  | Transfer_resp { epoch; len; digest; base; suffix } ->
    accept_transfer_resp ctx state ~src ~resp:(epoch, len, digest, base, suffix)

let on_timeout ctx state ~id =
  if id <> catchup_timer || state.complete then (state, [], [])
  else
    match state.transfer with
    | None -> (state, [], [])
    | Some t ->
      (* Capped exponential backoff; re-request with the current log
         length so responders serve exactly the missing suffix. *)
      let nodes = ctx.Protocol.Context.n in
      let rto = min (2 * t.rto) (max_rto nodes) in
      let have = state.log_len in
      ( { state with transfer = Some { req_base = have; rto; resps = [] } },
        [
          Protocol.Broadcast (Transfer_req { have });
          Protocol.Set_timer { id = catchup_timer; after = rto };
        ],
        [] )

let is_terminal = function
  | Log_complete _ -> true
  | Epoch_committed _ | Gc_stats _ -> false

(* ----------------------------------------------------------------- *)
(* Durable store (crash recovery)                                    *)
(* ----------------------------------------------------------------- *)

(* What a real replica would have written ahead by crash time: the
   committed log, the commit/mempool cursors, the latest stable
   checkpoint record, and the batches it proposed (a proposal is
   WAL-logged before dispersal so its transactions survive the
   crash).  Everything else — live agreement instances, digest votes,
   transfer progress — is volatile and rebuilt after rejoin. *)
let snapshot state =
  let stable_fields =
    match state.stable with
    | None -> [ "0"; "0"; "0" ]
    | Some (epoch, len, digest) ->
      [ string_of_int (epoch + 1); string_of_int len; string_of_int digest ]
  in
  let proposed =
    encode_batch
      (List.concat_map
         (fun (epoch, batch) -> [ string_of_int epoch; encode_batch batch ])
         (Int_map.bindings state.proposed))
  in
  encode_batch
    ([ "1"; string_of_int state.next_commit; string_of_int state.cursor ]
    @ stable_fields
    @ [ encode_batch (List.rev state.log); encode_batch state.requeue; proposed ]
    )

let decode_proposed s =
  match decode_batch s with
  | None -> None
  | Some fields ->
    let rec pairs acc = function
      | [] -> Some (List.rev acc)
      | epoch :: batch :: rest -> (
        match (int_of_string_opt epoch, decode_batch batch) with
        | Some epoch, Some txs -> pairs ((epoch, txs) :: acc) rest
        | _, _ -> None)
      | _ :: [] -> None
    in
    pairs [] fields

let restore ctx (input : input) ~durable =
  let cold = base_state ctx input in
  let parsed =
    match decode_batch durable with
    | Some
        [ "1"; next_commit; cursor; stable_e; stable_len; stable_digest;
          log_s; requeue_s; proposed_s ] -> (
      match
        ( int_of_string_opt next_commit,
          int_of_string_opt cursor,
          int_of_string_opt stable_e,
          int_of_string_opt stable_len,
          int_of_string_opt stable_digest,
          decode_batch log_s,
          decode_batch requeue_s,
          decode_proposed proposed_s )
      with
      | ( Some next_commit,
          Some cursor,
          Some stable_e,
          Some stable_len,
          Some stable_digest,
          Some log_txs,
          Some requeue,
          Some proposed ) ->
        Some
          (next_commit, cursor, stable_e, stable_len, stable_digest, log_txs,
           requeue, proposed)
      | _, _, _, _, _, _, _, _ -> None)
    | Some _ | None -> None
  in
  match parsed with
  | None ->
    (* Unreadable durable store: cold restart plus catch-up.  (Only
       reachable if the store was corrupted — [snapshot] output always
       parses.) *)
    let state, actions = open_window ctx cold in
    let state, transfer_actions = start_transfer ctx state in
    (state, actions @ transfer_actions, [])
  | Some
      (next_commit, cursor, stable_e, stable_len, stable_digest, log_txs,
       requeue, proposed) ->
    let committed =
      List.fold_left (fun set tx -> String_set.add tx set) String_set.empty
        log_txs
    in
    let stable =
      if stable_e = 0 then None
      else Some (stable_e - 1, stable_len, stable_digest)
    in
    (* Transactions this node proposed before the crash whose fate is
       unknown re-enter the queue; the commit-time dedup keeps the ones
       the old dispersal still manages to commit from appearing twice. *)
    let requeue =
      requeue
      @ List.concat_map
          (fun (_, batch) ->
            List.filter (fun tx -> not (String_set.mem tx committed)) batch)
          proposed
    in
    let state =
      {
        cold with
        cursor;
        requeue;
        committed;
        log = List.rev log_txs;
        log_len = List.length log_txs;
        next_commit;
        stable;
        gc_floor =
          (match stable with
          | Some (epoch, _, _) -> min next_commit (epoch + 1)
          | None -> 0);
      }
    in
    if state.next_commit >= state.epochs then begin
      (* The durable log was already complete: re-emit the terminal
         output so the engine sees this incarnation finish too. *)
      let state = { state with complete = true } in
      let stats =
        if state.checkpoint_interval > 0 then
          [ Gc_stats { max_live = 0; checkpoints = 0; transfers = 0 } ]
        else []
      in
      (state, [], stats @ [ Log_complete (List.rev state.log) ])
    end
    else begin
      let state, actions = open_window ctx state in
      let state, transfer_actions = start_transfer ctx state in
      (state, actions @ transfer_actions, [])
    end

(* ----------------------------------------------------------------- *)
(* Wire metadata / pretty-printing                                   *)
(* ----------------------------------------------------------------- *)

let msg_label = function
  | Epoch { inner; _ } -> "epoch." ^ Abc.Batch_acs.msg_label inner
  | Checkpoint _ -> "checkpoint"
  | Transfer_req _ -> "transfer.req"
  | Transfer_resp _ -> "transfer.resp"

let msg_bytes = function
  | Epoch { epoch = _; inner } ->
    Protocol.Wire_size.int + Abc.Batch_acs.msg_bytes inner
  | Checkpoint _ -> Protocol.Wire_size.tag + (3 * Protocol.Wire_size.int)
  | Transfer_req _ -> Protocol.Wire_size.tag + Protocol.Wire_size.int
  | Transfer_resp { suffix; _ } ->
    Protocol.Wire_size.tag + (4 * Protocol.Wire_size.int)
    + String.length suffix

let pp_msg ppf = function
  | Epoch { epoch; inner } ->
    Fmt.pf ppf "epoch[%d]:%a" epoch Abc.Batch_acs.pp_msg inner
  | Checkpoint { epoch; len; digest } ->
    Fmt.pf ppf "checkpoint[e%d len=%d digest=%x]" epoch len digest
  | Transfer_req { have } -> Fmt.pf ppf "transfer-req[have=%d]" have
  | Transfer_resp { epoch; len; base; _ } ->
    Fmt.pf ppf "transfer-resp[e%d len=%d base=%d]" epoch len base

let pp_output ppf = function
  | Epoch_committed { epoch; batches; fresh } ->
    Fmt.pf ppf "epoch[%d]committed{%a} +%d txs" epoch
      (Fmt.list ~sep:Fmt.comma (fun ppf (id, txs) ->
           Fmt.pf ppf "%a:%d" Node_id.pp id (List.length txs)))
      batches (List.length fresh)
  | Gc_stats { max_live; checkpoints; transfers } ->
    Fmt.pf ppf "gc-stats[max-live=%d checkpoints=%d transfers=%d]" max_live
      checkpoints transfers
  | Log_complete log -> Fmt.pf ppf "log(%d txs)" (List.length log)

let inputs ~n ?(window = 2) ?(checkpoint_interval = 0) ~batch_size ~epochs
    ~coin_seed mempools =
  if Array.length mempools <> n then
    invalid_arg "Atomic_broadcast.inputs: mempools length must equal n";
  Array.map
    (fun mempool ->
      { mempool; batch_size; epochs; window; coin_seed; checkpoint_interval })
    mempools

let log_of_outputs outputs =
  List.find_map
    (fun (_, output) ->
      match output with
      | Log_complete log -> Some log
      | Epoch_committed _ | Gc_stats _ -> None)
    outputs

let stats_of_outputs outputs =
  List.find_map
    (fun (_, output) ->
      match output with
      | Gc_stats { max_live; checkpoints; transfers } ->
        Some (max_live, checkpoints, transfers)
      | Epoch_committed _ | Log_complete _ -> None)
    outputs
