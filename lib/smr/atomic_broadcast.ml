[@@@abc.resilience "n>3f"]

module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Event = Abc_sim.Event
module Int_map = Map.Make (Int)
module String_set = Set.Make (String)

type tx = Workload.tx

type input = {
  mempool : tx array;
  batch_size : int;
  epochs : int;
  window : int;
  coin_seed : int;
}

type output =
  | Epoch_committed of {
      epoch : int;
      batches : (Node_id.t * tx list) list;
      fresh : tx list;
    }
  | Log_complete of tx list

type msg = Epoch of { epoch : int; inner : Abc.Batch_acs.msg }

type state = {
  me : Node_id.t;
  batch_size : int;
  epochs : int;
  window : int;
  coin_seed : int;
  mempool : tx array;
  cursor : int; (* next mempool index not yet proposed *)
  requeue : tx list; (* txs from excluded batches, re-propose first *)
  proposed : tx list Int_map.t; (* epoch -> my batch *)
  instances : Abc.Batch_acs.state Int_map.t; (* live epoch agreements *)
  results : (Node_id.t * string) list Int_map.t; (* decided epochs *)
  committed : String_set.t; (* dedup set over the whole log *)
  log : tx list; (* committed txs, newest first *)
  next_commit : int; (* first epoch not yet committed *)
  complete : bool;
}

let name = "atomic-broadcast"

(* ----------------------------------------------------------------- *)
(* Batch encoding: "<count>" then ":<len>:<tx>" per transaction.     *)
(* Never empty (an empty batch is "0"), so the Reed-Solomon coder    *)
(* always has a payload to disperse.                                 *)
(* ----------------------------------------------------------------- *)

let encode_batch txs =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (string_of_int (List.length txs));
  List.iter
    (fun tx ->
      Buffer.add_char buffer ':';
      Buffer.add_string buffer (string_of_int (String.length tx));
      Buffer.add_char buffer ':';
      Buffer.add_string buffer tx)
    txs;
  Buffer.contents buffer

(* Total: a Byzantine proposer can commit an arbitrary string, which
   every honest node must skip identically. *)
let decode_batch s =
  let len = String.length s in
  let int_until pos =
    let rec scan i =
      if i < len && s.[i] >= '0' && s.[i] <= '9' then scan (i + 1) else i
    in
    let stop = scan pos in
    if stop = pos || stop - pos > 9 then None
    else Some (int_of_string (String.sub s pos (stop - pos)), stop)
  in
  match int_until 0 with
  | None -> None
  | Some (count, pos) ->
    let rec txs remaining pos acc =
      if remaining = 0 then if pos = len then Some (List.rev acc) else None
      else if pos >= len || s.[pos] <> ':' then None
      else
        match int_until (pos + 1) with
        | None -> None
        | Some (tx_len, pos) ->
          if pos >= len || s.[pos] <> ':' || pos + 1 + tx_len > len then None
          else
            txs (remaining - 1) (pos + 1 + tx_len)
              (String.sub s (pos + 1) tx_len :: acc)
    in
    txs count pos []

(* ----------------------------------------------------------------- *)
(* Epoch plumbing                                                    *)
(* ----------------------------------------------------------------- *)

let wrap epoch actions =
  List.map
    (fun action ->
      match action with
      | Protocol.Broadcast inner -> Protocol.Broadcast (Epoch { epoch; inner })
      | Protocol.Send (dst, inner) -> Protocol.Send (dst, Epoch { epoch; inner })
      | Protocol.Set_timer { id; after } ->
        (* Epoch agreements never arm timers today; if one ever does,
           the id must be epoch-demultiplexed rather than forwarded. *)
        Protocol.Set_timer { id; after })
    actions

(* Scope an epoch's observability under "epoch<e>" so overlapping
   epoch agreements stay distinguishable in traces. *)
let epoch_ctx (ctx : Protocol.Context.t) epoch =
  if ctx.Protocol.Context.sink.Event.enabled then
    {
      ctx with
      Protocol.Context.sink =
        Event.scoped ctx.Protocol.Context.sink
          ~instance:(Printf.sprintf "epoch%d" epoch);
    }
  else ctx

let emit (ctx : Protocol.Context.t) kind =
  let sink = ctx.Protocol.Context.sink in
  if sink.Event.enabled then sink.Event.emit (Event.make kind)

(* Draw this node's next batch: requeued (previously excluded) txs
   first, then fresh mempool arrivals.  The cursor only ever moves
   forward — an excluded batch re-enters via [requeue], not by
   rewinding. *)
let draw_batch state =
  let rec take k cursor requeue acc =
    if k = 0 then (List.rev acc, cursor, requeue)
    else
      match requeue with
      | tx :: rest -> take (k - 1) cursor rest (tx :: acc)
      | [] ->
        if cursor < Array.length state.mempool then
          take (k - 1) (cursor + 1) [] (state.mempool.(cursor) :: acc)
        else (List.rev acc, cursor, [])
  in
  take state.batch_size state.cursor state.requeue []

(* Open epoch [epoch]'s agreement (idempotent): draws a batch from the
   mempool and starts ACS-over-coded-RBC on it, which disperses the
   batch.  Epochs open either proactively (inside the pipeline window
   above [next_commit]) or lazily when traffic for them arrives — a
   peer that commits faster than us may legitimately be an epoch
   ahead. *)
let open_epoch ctx state epoch =
  if epoch < 0 || epoch >= state.epochs || Int_map.mem epoch state.instances
  then (state, [])
  else begin
    let batch, cursor, requeue = draw_batch state in
    let proposal = encode_batch batch in
    emit ctx (Event.Epoch_start { epoch });
    emit ctx
      (Event.Batch_proposed
         { epoch; txs = List.length batch; bytes = String.length proposal });
    let inner_input =
      {
        Abc.Batch_acs.proposal;
        coin = Abc.Coin.common ~seed:(state.coin_seed + epoch);
      }
    in
    let inner_state, actions =
      Abc.Batch_acs.initial (epoch_ctx ctx epoch) inner_input
    in
    ( {
        state with
        cursor;
        requeue;
        proposed = Int_map.add epoch batch state.proposed;
        instances = Int_map.add epoch inner_state state.instances;
      },
      wrap epoch actions )
  end

(* Open every epoch the pipeline window admits: [next_commit] up to
   [next_commit + window) — epoch e+1's dispersal starts while epoch
   e's agreement is still running. *)
let open_window ctx state =
  List.fold_left
    (fun (state, acc) epoch ->
      let state, actions = open_epoch ctx state epoch in
      (state, acc @ actions))
    (state, [])
    (List.init state.window (fun k -> state.next_commit + k))

(* Commit decided epochs in order: deduplicate each epoch's agreed
   subset against the whole log, append the survivors in (proposer,
   arrival) order, and requeue my own batch if the subset excluded
   it.  Every honest node processes identical subsets in identical
   epoch order against an identical dedup set, so the logs agree. *)
let drain_commits ctx state =
  let rec loop state acc =
    match Int_map.find_opt state.next_commit state.results with
    | Some subset ->
      let epoch = state.next_commit in
      let state, batches, fresh_rev =
        List.fold_left
          (fun (state, batches, fresh_rev) (proposer, raw) ->
            match decode_batch raw with
            | None ->
              (* Malformed (Byzantine) batch: skipped identically
                 everywhere. *)
              (state, batches, fresh_rev)
            | Some txs ->
              let fresh =
                List.filter
                  (fun tx -> not (String_set.mem tx state.committed))
                  txs
              in
              emit ctx
                (Event.Batch_committed
                   {
                     epoch;
                     proposer = Node_id.to_int proposer;
                     txs = List.length fresh;
                   });
              List.iter
                (fun tx ->
                  emit ctx (Event.Tx_committed { epoch; id = Workload.tx_id tx }))
                fresh;
              let state =
                {
                  state with
                  committed =
                    List.fold_left
                      (fun set tx -> String_set.add tx set)
                      state.committed fresh;
                  log = List.rev_append fresh state.log;
                }
              in
              (state, (proposer, txs) :: batches, List.rev_append fresh fresh_rev))
          (state, [], []) subset
      in
      (* If my batch was excluded, its uncommitted txs go back to the
         front of the queue for the next epoch I open. *)
      let included =
        List.exists (fun (proposer, _) -> Node_id.equal proposer state.me) subset
      in
      let state =
        if included then state
        else
          match Int_map.find_opt epoch state.proposed with
          | None -> state
          | Some mine ->
            let missing =
              List.filter
                (fun tx -> not (String_set.mem tx state.committed))
                mine
            in
            { state with requeue = state.requeue @ missing }
      in
      let output =
        Epoch_committed
          { epoch; batches = List.rev batches; fresh = List.rev fresh_rev }
      in
      loop { state with next_commit = epoch + 1 } (output :: acc)
    | None ->
      if state.next_commit >= state.epochs && not state.complete then
        ( { state with complete = true },
          List.rev (Log_complete (List.rev state.log) :: acc) )
      else (state, List.rev acc)
  in
  loop state []

let initial ctx (input : input) =
  if input.batch_size <= 0 then
    invalid_arg "Atomic_broadcast: batch_size must be positive";
  if input.epochs <= 0 then invalid_arg "Atomic_broadcast: epochs must be positive";
  if input.window <= 0 then invalid_arg "Atomic_broadcast: window must be positive";
  let state =
    {
      me = ctx.Protocol.Context.me;
      batch_size = input.batch_size;
      epochs = input.epochs;
      window = input.window;
      coin_seed = input.coin_seed;
      mempool = input.mempool;
      cursor = 0;
      requeue = [];
      proposed = Int_map.empty;
      instances = Int_map.empty;
      results = Int_map.empty;
      committed = String_set.empty;
      log = [];
      next_commit = 0;
      complete = false;
    }
  in
  open_window ctx state

let on_message ctx state ~src msg =
  let (Epoch { epoch; inner }) = msg in
  if epoch < 0 || epoch >= state.epochs then (state, [], [])
  else begin
    (* Lazily open epochs driven by faster peers (see [open_epoch]). *)
    let state, open_actions = open_epoch ctx state epoch in
    let inner_state = Int_map.find epoch state.instances in
    let inner_state, inner_actions, inner_outputs =
      Abc.Batch_acs.on_message (epoch_ctx ctx epoch) inner_state ~src inner
    in
    let state =
      { state with instances = Int_map.add epoch inner_state state.instances }
    in
    let state =
      List.fold_left
        (fun state (Abc.Batch_acs.Accepted subset) ->
          if Int_map.mem epoch state.results then state
          else { state with results = Int_map.add epoch subset state.results })
        state inner_outputs
    in
    let state, outputs = drain_commits ctx state in
    (* Committing an epoch slides the pipeline window forward. *)
    let state, window_actions = open_window ctx state in
    (state, open_actions @ wrap epoch inner_actions @ window_actions, outputs)
  end

let is_terminal = function Log_complete _ -> true | Epoch_committed _ -> false
let on_timeout = Protocol.no_timeout

let msg_label (Epoch { inner; _ }) = "epoch." ^ Abc.Batch_acs.msg_label inner

let msg_bytes (Epoch { epoch = _; inner }) =
  Protocol.Wire_size.int + Abc.Batch_acs.msg_bytes inner

let pp_msg ppf (Epoch { epoch; inner }) =
  Fmt.pf ppf "epoch[%d]:%a" epoch Abc.Batch_acs.pp_msg inner

let pp_output ppf = function
  | Epoch_committed { epoch; batches; fresh } ->
    Fmt.pf ppf "epoch[%d]committed{%a} +%d txs" epoch
      (Fmt.list ~sep:Fmt.comma (fun ppf (id, txs) ->
           Fmt.pf ppf "%a:%d" Node_id.pp id (List.length txs)))
      batches (List.length fresh)
  | Log_complete log -> Fmt.pf ppf "log(%d txs)" (List.length log)

let inputs ~n ?(window = 2) ~batch_size ~epochs ~coin_seed mempools =
  if Array.length mempools <> n then
    invalid_arg "Atomic_broadcast.inputs: mempools length must equal n";
  Array.map
    (fun mempool -> { mempool; batch_size; epochs; window; coin_seed })
    mempools

let log_of_outputs outputs =
  List.find_map
    (fun (_, output) ->
      match output with Log_complete log -> Some log | Epoch_committed _ -> None)
    outputs
