[@@@abc.resilience "n>3f"]

(** Batched, pipelined atomic broadcast — HoneyBadger-style state
    machine replication from the paper's primitives.

    {b Paper source:} HoneyBadgerBFT (Miller et al. 2016, §4): each
    epoch runs one asynchronous common subset over every node's
    transaction batch; Bracha's 1984 RBC+BA toolbox supplies the
    agreement core ({!Abc.Batch_acs}) and the PR-5 erasure-coded RBC
    supplies O(|batch|/n + lambda log n) per-link dissemination.
    Checkpoints and state transfer follow PBFT (Castro & Liskov 1999,
    §4.4): periodic log-digest votes make a prefix {e stable} at
    [2f + 1] matching votes, enabling garbage collection, and a
    crash-recovered or lagging replica catches up by fetching a stable
    prefix vouched by [f + 1] matching responders.

    {b Resilience:} [n > 3f].

    {b Message type:} [Epoch] wraps a {!Abc.Batch_acs} message tagged
    with its epoch number; epochs within the pipeline window run
    concurrently, so the tag demultiplexes overlapping agreements.
    When [checkpoint_interval > 0] three recovery messages join it:
    [Checkpoint] (a log-digest vote at a checkpoint boundary),
    [Transfer_req] (a catch-up request carrying the requester's log
    length) and [Transfer_resp] (a stable checkpoint plus the missing
    log suffix).

    Per epoch, every node proposes a batch drawn from its local
    mempool (a {!Workload} schedule), ACS selects an agreed subset of
    at least [n - f] batches, and each node appends the subset —
    deduplicated against the whole log, in (proposer, arrival) order —
    to its replicated log.  Epochs overlap: epoch [e+1]'s dispersal
    starts as soon as the window above the last locally-committed
    epoch admits it (or lazily when a faster peer's traffic arrives),
    while epoch [e]'s binary agreements are still finishing.  A node
    whose batch was excluded from a subset requeues those transactions
    at the front of its next proposal, so under fair scheduling every
    correct node's transactions commit within a bounded number of
    epochs.  (Full censorship resilience against an adversarial
    scheduler needs threshold-encrypted batches — HoneyBadgerBFT §4.3
    — which is out of scope here; see PROTOCOLS.md.)

    Every [checkpoint_interval] epochs — and always at the final epoch,
    so the last checkpoint covers the whole log and a straggler can
    finish via transfer alone — each node broadcasts the digest
    of its committed log; once a checkpoint is stable the node prunes
    every per-epoch structure below it (bounding live agreement state
    to O(window + checkpoint_interval) epochs regardless of run
    length) and, if the stable point is ahead of its own commits,
    starts a state transfer.  The transfer retries on a capped
    exponential backoff timer, so a node that crashed and rejoined
    (see {!Abc_net.Behaviour.Crash_recover}) eventually rebuilds the
    full log even though epoch agreements it slept through are never
    retransmitted. *)

type tx = Workload.tx

type input = {
  mempool : tx array;  (** this node's client transactions, arrival order *)
  batch_size : int;  (** transactions proposed per epoch *)
  epochs : int;  (** total epochs to run *)
  window : int;  (** pipeline width: epochs in flight above [next_commit] *)
  coin_seed : int;  (** epoch [e]'s BAs use coin seed [coin_seed + e] *)
  checkpoint_interval : int;
      (** broadcast a checkpoint vote every this many epochs; [0]
          disables checkpoints, garbage collection and state transfer
          (the pre-recovery behaviour, byte-identical on the wire) *)
}

type output =
  | Epoch_committed of {
      epoch : int;
      batches : (Abc_net.Node_id.t * tx list) list;
          (** the agreed subset, sorted by proposer — identical at
              every correct node *)
      fresh : tx list;
          (** this epoch's log extension after deduplication *)
    }
  | Gc_stats of { max_live : int; checkpoints : int; transfers : int }
      (** emitted once just before {!Log_complete} when
          [checkpoint_interval > 0]: the high-water mark of concurrently
          live epoch agreements, stable checkpoints observed, and state
          transfers completed by this node *)
  | Log_complete of tx list
      (** all [epochs] committed; the full ordered log *)

type msg

include
  Abc_net.Protocol.S
    with type input := input
     and type output := output
     and type msg := msg

val snapshot : state -> string
(** The durable subset of a node's state — what a real replica would
    have written ahead to stable storage by crash time: the committed
    log, commit/mempool cursors, latest stable checkpoint record, and
    the batches it proposed (WAL-logged before dispersal).  Volatile
    agreement instances, digest votes and transfer progress are {e
    not} included.  Plug into {!Abc_net.Engine.Make}'s [recovery]
    record together with {!restore}. *)

val restore :
  Abc_net.Protocol.Context.t ->
  input ->
  durable:string ->
  state * msg Abc_net.Protocol.action list * output list
(** Rebuild a crash-recovered node from its durable store (a
    {!snapshot}, or [""] for a node that crashed before ever
    snapshotting — then it cold-starts).  Re-opens the pipeline window
    above the durable commit point, requeues the node's own
    transactions whose pre-crash fate is unknown, and starts a state
    transfer (when [checkpoint_interval > 0]) to fetch the commits it
    slept through.  If the durable log was already complete, re-emits
    the terminal output immediately. *)

val inputs :
  n:int ->
  ?window:int ->
  ?checkpoint_interval:int ->
  batch_size:int ->
  epochs:int ->
  coin_seed:int ->
  tx array array ->
  input array
(** One mempool per node ([window] defaults to 2,
    [checkpoint_interval] to 0 = disabled).  Raises
    [Invalid_argument] when the outer array length differs from
    [n]. *)

val log_of_outputs : ('a * output) list -> tx list option
(** The first [Log_complete] payload in a harness output list. *)

val stats_of_outputs : ('a * output) list -> (int * int * int) option
(** The first {!Gc_stats} payload, as [(max_live, checkpoints,
    transfers)]. *)

val encode_batch : tx list -> string
(** The batch wire encoding ACS agrees on (["<count>" then
    ":<len>:<tx>" per transaction] — never empty, so the
    Reed-Solomon dispersal always has a payload). *)

val decode_batch : string -> tx list option
(** Total inverse of {!encode_batch}; [None] on malformed (Byzantine)
    batches, which every correct node skips identically. *)
