[@@@abc.resilience "n>3f"]

(** Batched, pipelined atomic broadcast — HoneyBadger-style state
    machine replication from the paper's primitives.

    {b Paper source:} HoneyBadgerBFT (Miller et al. 2016, §4): each
    epoch runs one asynchronous common subset over every node's
    transaction batch; Bracha's 1984 RBC+BA toolbox supplies the
    agreement core ({!Abc.Batch_acs}) and the PR-5 erasure-coded RBC
    supplies O(|batch|/n + lambda log n) per-link dissemination.

    {b Resilience:} [n > 3f].

    {b Message type:} [Epoch] wraps a {!Abc.Batch_acs} message tagged
    with its epoch number; epochs within the pipeline window run
    concurrently, so the tag demultiplexes overlapping agreements.

    Per epoch, every node proposes a batch drawn from its local
    mempool (a {!Workload} schedule), ACS selects an agreed subset of
    at least [n - f] batches, and each node appends the subset —
    deduplicated against the whole log, in (proposer, arrival) order —
    to its replicated log.  Epochs overlap: epoch [e+1]'s dispersal
    starts as soon as the window above the last locally-committed
    epoch admits it (or lazily when a faster peer's traffic arrives),
    while epoch [e]'s binary agreements are still finishing.  A node
    whose batch was excluded from a subset requeues those transactions
    at the front of its next proposal, so under fair scheduling every
    correct node's transactions commit within a bounded number of
    epochs.  (Full censorship resilience against an adversarial
    scheduler needs threshold-encrypted batches — HoneyBadgerBFT §4.3
    — which is out of scope here; see PROTOCOLS.md.) *)

type tx = Workload.tx

type input = {
  mempool : tx array;  (** this node's client transactions, arrival order *)
  batch_size : int;  (** transactions proposed per epoch *)
  epochs : int;  (** total epochs to run *)
  window : int;  (** pipeline width: epochs in flight above [next_commit] *)
  coin_seed : int;  (** epoch [e]'s BAs use coin seed [coin_seed + e] *)
}

type output =
  | Epoch_committed of {
      epoch : int;
      batches : (Abc_net.Node_id.t * tx list) list;
          (** the agreed subset, sorted by proposer — identical at
              every correct node *)
      fresh : tx list;
          (** this epoch's log extension after deduplication *)
    }
  | Log_complete of tx list
      (** all [epochs] committed; the full ordered log *)

type msg

include
  Abc_net.Protocol.S
    with type input := input
     and type output := output
     and type msg := msg

val inputs :
  n:int ->
  ?window:int ->
  batch_size:int ->
  epochs:int ->
  coin_seed:int ->
  tx array array ->
  input array
(** One mempool per node ([window] defaults to 2).  Raises
    [Invalid_argument] when the outer array length differs from
    [n]. *)

val log_of_outputs : ('a * output) list -> tx list option
(** The first [Log_complete] payload in a harness output list. *)

val encode_batch : tx list -> string
(** The batch wire encoding ACS agrees on (["<count>" then
    ":<len>:<tx>" per transaction] — never empty, so the
    Reed-Solomon dispersal always has a payload). *)

val decode_batch : string -> tx list option
(** Total inverse of {!encode_batch}; [None] on malformed (Byzantine)
    batches, which every correct node skips identically. *)
