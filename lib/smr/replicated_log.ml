module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Event = Abc_sim.Event
module Int_map = Map.Make (Int)

(* Each slot runs one ACS over string proposals. *)
module Slot_acs = Abc.Acs.Make (Abc.Payloads.String_payload)

type command = string

type input = { commands : command array; slots : int; coin : Abc.Coin.t }

type output =
  | Committed of { slot : int; commands : (Node_id.t * command) list }
  | Log_complete of command list

type msg = Slot of { slot : int; inner : Slot_acs.msg }

type state = {
  slots : int;
  coin : Abc.Coin.t;
  commands : command array;
  instances : Slot_acs.state Int_map.t; (* live slot agreements *)
  results : (Node_id.t * command) list Int_map.t; (* decided slots *)
  next_commit : int; (* first slot not yet committed *)
  complete : bool;
}

let name = "replicated-log"

(* A replica's proposal for a slot; replicas with fewer commands than
   slots propose an explicit no-op so agreement always has input. *)
let proposal state slot =
  if slot < Array.length state.commands then state.commands.(slot) else "<noop>"

let wrap slot actions =
  List.map
    (fun action ->
      match action with
      | Protocol.Broadcast inner -> Protocol.Broadcast (Slot { slot; inner })
      | Protocol.Send (dst, inner) -> Protocol.Send (dst, Slot { slot; inner })
      | Protocol.Set_timer { id; after } ->
        (* Slot agreements never arm timers today; if one ever does,
           the id must be slot-demultiplexed rather than forwarded. *)
        Protocol.Set_timer { id; after })
    actions

(* Scope a slot's observability under "slot<k>" so concurrent slot
   agreements stay distinguishable in traces (see OBSERVABILITY.md). *)
let slot_ctx (ctx : Protocol.Context.t) slot =
  if ctx.Protocol.Context.sink.Event.enabled then
    {
      ctx with
      Protocol.Context.sink =
        Event.scoped ctx.Protocol.Context.sink
          ~instance:(Printf.sprintf "slot%d" slot);
    }
  else ctx

(* Open slot [slot]'s agreement (idempotent): instantiates the inner
   ACS with this replica's proposal, which broadcasts it. *)
let open_slot ctx state slot =
  if slot < 0 || slot >= state.slots || Int_map.mem slot state.instances then
    (state, [])
  else begin
    let inner_input =
      { Slot_acs.proposal = proposal state slot; coin = state.coin }
    in
    let inner_state, actions = Slot_acs.initial (slot_ctx ctx slot) inner_input in
    ({ state with instances = Int_map.add slot inner_state state.instances },
     wrap slot actions)
  end

(* Emit commits in slot order; finish with the complete log. *)
let drain_commits state =
  let rec loop state acc =
    match Int_map.find_opt state.next_commit state.results with
    | Some commands ->
      let output = Committed { slot = state.next_commit; commands } in
      loop { state with next_commit = state.next_commit + 1 } (output :: acc)
    | None ->
      if state.next_commit >= state.slots && not state.complete then begin
        let log =
          List.concat_map
            (fun slot ->
              List.map snd (Int_map.find slot state.results))
            (List.init state.slots (fun k -> k))
        in
        ({ state with complete = true }, List.rev (Log_complete log :: acc))
      end
      else (state, List.rev acc)
  in
  loop state []

let initial ctx (input : input) =
  let state =
    {
      slots = input.slots;
      coin = input.coin;
      commands = input.commands;
      instances = Int_map.empty;
      results = Int_map.empty;
      next_commit = 0;
      complete = false;
    }
  in
  (* Pipelined: every slot's agreement starts immediately. *)
  let state, actions =
    List.fold_left
      (fun (state, acc) slot ->
        let state, actions = open_slot ctx state slot in
        (state, acc @ actions))
      (state, [])
      (List.init input.slots (fun k -> k))
  in
  (state, actions)

let on_message ctx state ~src msg =
  let (Slot { slot; inner }) = msg in
  if slot < 0 || slot >= state.slots then (state, [], [])
  else begin
    (* Traffic can arrive for a slot we have not opened (it is opened
       at init in the current pipelined design, but keep the lazy path
       for robustness against reordering during shutdown). *)
    let state, open_actions = open_slot ctx state slot in
    let inner_state = Int_map.find slot state.instances in
    let inner_state, inner_actions, inner_outputs =
      Slot_acs.on_message (slot_ctx ctx slot) inner_state ~src inner
    in
    let state =
      { state with instances = Int_map.add slot inner_state state.instances }
    in
    let state =
      List.fold_left
        (fun state (Slot_acs.Accepted subset) ->
          if Int_map.mem slot state.results then state
          else { state with results = Int_map.add slot subset state.results })
        state inner_outputs
    in
    let state, outputs = drain_commits state in
    (state, open_actions @ wrap slot inner_actions, outputs)
  end

let is_terminal = function Log_complete _ -> true | Committed _ -> false
let on_timeout = Protocol.no_timeout

let msg_label (Slot { inner; _ }) = "slot." ^ Slot_acs.msg_label inner

let msg_bytes (Slot { slot = _; inner }) =
  Protocol.Wire_size.int + Slot_acs.msg_bytes inner

let pp_msg ppf (Slot { slot; inner }) =
  Fmt.pf ppf "slot[%d]:%a" slot Slot_acs.pp_msg inner

let pp_output ppf = function
  | Committed { slot; commands } ->
    Fmt.pf ppf "committed[%d]{%a}" slot
      (Fmt.list ~sep:Fmt.comma (fun ppf (id, c) ->
           Fmt.pf ppf "%a:%s" Node_id.pp id c))
      commands
  | Log_complete log ->
    Fmt.pf ppf "log(%d commands: %a)" (List.length log)
      (Fmt.list ~sep:Fmt.semi Fmt.string) log

let inputs ~n ~slots ~coin command =
  Array.init n (fun i ->
      { commands = Array.init slots (fun k -> command i k); slots; coin })

let log_of_outputs outputs =
  List.find_map
    (fun (_, output) ->
      match output with Log_complete log -> Some log | Committed _ -> None)
    outputs
