type request = { client : string; request_id : int; body : string }

let tag r =
  if String.contains r.client ':' then
    invalid_arg "Session.tag: client id must not contain ':'";
  Printf.sprintf "%s:%d:%s" r.client r.request_id r.body

let parse line =
  match String.index_opt line ':' with
  | None -> None
  | Some i -> (
    let client = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    match String.index_opt rest ':' with
    | None -> None
    | Some j -> (
      match int_of_string_opt (String.sub rest 0 j) with
      | Some request_id when client <> "" ->
        Some
          { client; request_id; body = String.sub rest (j + 1) (String.length rest - j - 1) }
      | Some _ | None -> None))

module Key = struct
  type t = string * int (* client, request id *)

  let compare (c1, r1) (c2, r2) =
    match String.compare c1 c2 with 0 -> Int.compare r1 r2 | c -> c
end

module Key_set = Set.Make (Key)

type dedup = Key_set.t

let empty = Key_set.empty

let seen dedup ~client ~request_id = Key_set.mem (client, request_id) dedup

type stats = { applied : int; skipped : int; anonymous : int }

let apply_log store dedup log =
  List.fold_left
    (fun (store, dedup, stats) line ->
      match parse line with
      | Some { client; request_id; body } ->
        if Key_set.mem (client, request_id) dedup then
          (store, dedup, { stats with skipped = stats.skipped + 1 })
        else begin
          let store, _result = Kv_store.apply store (Kv_store.parse body) in
          ( store,
            Key_set.add (client, request_id) dedup,
            { stats with applied = stats.applied + 1 } )
        end
      | None ->
        let store, _result = Kv_store.apply store (Kv_store.parse line) in
        ( store,
          dedup,
          {
            stats with
            applied = stats.applied + 1;
            anonymous = stats.anonymous + 1;
          } ))
    (store, dedup, { applied = 0; skipped = 0; anonymous = 0 })
    log
