module Node_id = Abc_net.Node_id
module Stream = Abc_prng.Stream

type tx = string

type t = { node : Node_id.t; arrivals : (float * tx) array }

let tx_id tx =
  match String.index_opt tx ':' with
  | Some i -> String.sub tx 0 i
  | None -> tx

(* Deterministic filler rotated by [seq] so transaction bodies differ
   without consuming randomness. *)
let body ~len seq =
  String.init len (fun i -> Char.chr (Char.code 'a' + ((seq + i) mod 26)))

let generate ~seed ~node ~count ~rate ~tx_bytes =
  if count < 0 then invalid_arg "Workload.generate: negative count";
  if rate <= 0.0 then invalid_arg "Workload.generate: rate must be positive";
  let stream = Stream.split (Stream.root ~seed) ~label:(Node_id.to_int node) in
  let mean = 1.0 /. rate in
  let arrivals = Array.make count (0.0, "") in
  let clock = ref 0.0 in
  for seq = 0 to count - 1 do
    clock := !clock +. Stream.exponential stream ~mean;
    let id = Fmt.str "%a-t%06d" Node_id.pp node seq in
    let pad = max 0 (tx_bytes - String.length id - 1) in
    arrivals.(seq) <- (!clock, id ^ ":" ^ body ~len:pad seq)
  done;
  { node; arrivals }

let node t = t.node

let count t = Array.length t.arrivals

let txs t = Array.map snd t.arrivals

let arrival t i = fst t.arrivals.(i)

let span t =
  if Array.length t.arrivals = 0 then 0.0
  else fst t.arrivals.(Array.length t.arrivals - 1)
