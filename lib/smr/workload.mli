(** Open-loop client workload generator for the atomic broadcast.

    {b Paper source:} the open-loop Poisson arrival model used to
    drive HoneyBadgerBFT-style throughput experiments (Miller et al.
    2016, §5); arrivals are drawn as exponential inter-arrival gaps,
    so the offered load is independent of commit progress.

    {b Resilience:} not a protocol — the generator is local to one
    node and exchanges no messages.

    {b Message type:} none; it produces the transaction strings the
    atomic broadcast batches ({!Atomic_broadcast}).

    Every transaction is a printable string ["<id>:<body>"] where the
    id is ["n<node>-t<seq>"] (globally unique across nodes) and the
    body is deterministic filler padding the transaction to a target
    wire size.  The whole schedule is a pure function of [(seed,
    node)] via the splittable PRNG, so two runs — or two [Exec.Pool]
    job counts — see byte-identical workloads. *)

type tx = string

type t

val generate :
  seed:int ->
  node:Abc_net.Node_id.t ->
  count:int ->
  rate:float ->
  tx_bytes:int ->
  t
(** [generate ~seed ~node ~count ~rate ~tx_bytes] is [node]'s arrival
    schedule: [count] transactions with exponential inter-arrival gaps
    of mean [1/rate] (virtual ticks), each padded to [tx_bytes] bytes.
    Raises [Invalid_argument] on negative [count] or non-positive
    [rate]. *)

val tx_id : tx -> string
(** The unique id prefix (before the first [':']). *)

val node : t -> Abc_net.Node_id.t

val count : t -> int

val txs : t -> tx array
(** Transactions in arrival order — the node's mempool. *)

val arrival : t -> int -> float
(** Arrival time (virtual ticks) of the [i]th transaction. *)

val span : t -> float
(** Arrival time of the last transaction; [0.] when empty.  The
    offered load of a schedule is [count / span]. *)
