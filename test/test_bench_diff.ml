(* Tests for the abc-bench diff layer (lib/matrix Diff).

   The fixture pair under test/golden/ covers every cell-report shape:
   an unchanged cell, a rounds regression beyond the threshold with an
   advisory wall-clock jump, an improvement (including a zero-baseline
   metric moving off zero, the pct = None case), a pass-flip, and an
   added and a removed cell.  Both renderings — the text report and
   the abc.bench.matrix.diff JSON — are golden-checked byte for byte;
   the regression/improvement counters and the wall-clock gating
   switch are asserted exactly, since abc-bench's non-zero exit (the
   CI gate) is [regressions > 0]. *)

module Diff = Abc_matrix.Diff
module Json = Abc_sim.Json

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let load path =
  match Diff.load_file path with
  | Ok set -> set
  | Error e -> Alcotest.failf "%s: %s" path e

let fixture_report ?(options = Diff.default_options) () =
  let base = load "golden/matrix_diff_base.json" in
  let cur = load "golden/matrix_diff_cur.json" in
  Diff.compare ~options ~base ~cur

(* ---- loading ---- *)

let test_load_rejects () =
  let reject name json msg_has =
    match Diff.load_json json with
    | Ok _ -> Alcotest.failf "%s: unexpectedly loaded" name
    | Error e ->
      if not (Astring.String.is_infix ~affix:msg_has e) then
        Alcotest.failf "%s: %S does not mention %S" name e msg_has
  in
  reject "wrong schema"
    (Json.Obj [ ("schema", Json.String "abc.bench") ])
    "abc.bench.matrix";
  reject "future version"
    (Json.Obj
       [
         ("schema", Json.String "abc.bench.matrix");
         ("version", Json.Int 99);
         ("id", Json.String "x");
         ("cells", Json.List []);
       ])
    "newer than supported";
  reject "missing cells"
    (Json.Obj
       [
         ("schema", Json.String "abc.bench.matrix");
         ("version", Json.Int 1);
         ("id", Json.String "x");
       ])
    "cells"

let test_id_mismatch () =
  let base = load "golden/matrix_diff_base.json" in
  let other =
    match
      Diff.load_json
        (Json.Obj
           [
             ("schema", Json.String "abc.bench.matrix");
             ("version", Json.Int 1);
             ("id", Json.String "other");
             ("cells", Json.List []);
           ])
    with
    | Ok set -> set
    | Error e -> Alcotest.failf "forged set rejected: %s" e
  in
  Alcotest.check_raises "different specs refuse to diff"
    (Invalid_argument
       "matrix diff: comparing different specs (\"gd\" vs \"other\")")
    (fun () ->
      ignore (Diff.compare ~options:Diff.default_options ~base ~cur:other))

(* ---- counters and gating ---- *)

let test_counts () =
  let t = fixture_report () in
  (* rounds +20% (1), pass-flip (1) + ok_rate -50% (1) = 3; the wall
     jump is advisory and must NOT gate by default. *)
  Alcotest.(check int) "regressions" 3 (Diff.regressions t);
  (* bytes -20% (1) + committed off zero (1) = 2. *)
  Alcotest.(check int) "improvements" 2 (Diff.improvements t);
  let gated = fixture_report ~options:{ Diff.threshold = 10.0; gate_wall = true } () in
  Alcotest.(check int) "gate-wall adds the wall regression" 4
    (Diff.regressions gated)

let test_threshold () =
  (* At a 25% threshold the rounds (+20%) and bytes (-20%) deltas stop
     counting; the pass-flip and the infinite-magnitude zero-baseline
     move still do. *)
  let t = fixture_report ~options:{ Diff.threshold = 25.0; gate_wall = false } () in
  Alcotest.(check int) "regressions at 25%" 2 (Diff.regressions t);
  Alcotest.(check int) "improvements at 25%" 1 (Diff.improvements t)

let test_delta_verdicts () =
  let v d = Diff.delta_verdict Diff.default_options d in
  let delta metric base cur advisory =
    let pct =
      if base = 0.0 then None else Some ((cur -. base) /. base *. 100.0)
    in
    { Diff.metric; base; cur; pct; advisory }
  in
  Alcotest.(check bool) "cost growth regresses" true
    (v (delta "rounds" 10.0 12.0 false) = Diff.Regression);
  Alcotest.(check bool) "cost shrink improves" true
    (v (delta "bytes" 1000.0 800.0 false) = Diff.Improvement);
  Alcotest.(check bool) "benefit shrink regresses" true
    (v (delta "ok_rate" 1.0 0.5 false) = Diff.Regression);
  Alcotest.(check bool) "within threshold unchanged" true
    (v (delta "messages" 100.0 105.0 false) = Diff.Unchanged);
  Alcotest.(check bool) "zero to zero unchanged" true
    (v (delta "committed" 0.0 0.0 false) = Diff.Unchanged);
  Alcotest.(check bool) "off zero is infinite magnitude" true
    (v (delta "committed" 0.0 3.0 false) = Diff.Improvement)

(* ---- golden renderings ---- *)

let write_actual name text =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_text_golden () =
  let t = fixture_report () in
  let first = Diff.to_text t in
  let second = Diff.to_text (fixture_report ()) in
  Alcotest.(check string) "byte-identical across runs" first second;
  write_actual "matrix_diff.actual.txt" first;
  Alcotest.(check string) "matches golden"
    (read_file "golden/matrix_diff.txt")
    first

let test_json_golden () =
  let t = fixture_report () in
  let first = Json.to_string (Diff.to_json t) in
  write_actual "matrix_diff.actual.json" first;
  Alcotest.(check string) "matches golden"
    (read_file "golden/matrix_diff.json")
    first

let () =
  Alcotest.run "bench-diff"
    [
      ( "load",
        [
          Alcotest.test_case "schema/version validation" `Quick
            test_load_rejects;
          Alcotest.test_case "same-spec requirement" `Quick test_id_mismatch;
        ] );
      ( "gate",
        [
          Alcotest.test_case "regression/improvement counts" `Quick test_counts;
          Alcotest.test_case "threshold widens the gate" `Quick test_threshold;
          Alcotest.test_case "delta verdicts" `Quick test_delta_verdicts;
        ] );
      ( "golden",
        [
          Alcotest.test_case "text report" `Quick test_text_golden;
          Alcotest.test_case "json report" `Quick test_json_golden;
        ] );
    ]
