(* Chaos campaign: randomized configurations across every protocol in
   the library, asserting the consensus properties whenever the
   configuration is within the protocol's design bounds.  This is the
   wide-net complement to the targeted suites: qcheck generators draw
   the parameters, the engine's determinism makes any failure
   replayable from the printed counterexample.

   Campaigns run on the Exec.Pool: scenarios are generated up front on
   the main domain from a pinned seed (QCHECK_SEED, default 421984),
   then evaluated as independent pool jobs — each job builds its own
   engine from the scenario, so worker count never changes which
   scenarios run or how they behave, only how fast the campaign
   finishes.  Override the worker count with ABC_JOBS. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Value = Abc.Value
module B = Abc.Bracha_consensus
module M = Abc.Mmr_consensus
module BO = Abc.Ben_or
module Pool = Abc_exec.Pool

let node = Node_id.of_int

let pool = Pool.create ()

let campaign_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some seed -> seed
  | None -> 421984

(* Generate [count] scenarios sequentially (Random.State is not domain
   safe), evaluate them on the pool, and report every failing scenario
   so a red run is replayable without shrinking. *)
let campaign ~name ~count gen print prop =
  Alcotest.test_case name `Slow (fun () ->
      let rand = Random.State.make [| campaign_seed |] in
      let scenarios = List.init count (fun _ -> QCheck.Gen.generate1 ~rand gen) in
      let verdicts = Pool.map_list pool (fun s -> prop s) scenarios in
      let failures =
        List.filter_map
          (fun (s, ok) -> if ok then None else Some (print s))
          (List.combine scenarios verdicts)
      in
      if failures <> [] then
        Alcotest.failf "%d/%d scenarios failed (QCHECK_SEED=%d): %s"
          (List.length failures) count campaign_seed
          (String.concat " " failures))

(* ---- randomized configuration vocabulary ---- *)

type scenario = {
  n : int;
  f : int;
  actual_faults : int;
  fault_kind : int; (* 0..4 *)
  adversary_kind : int; (* 0..5 *)
  input_pattern : int; (* 0..2 *)
  seed : int;
}

let scenario_gen ~max_f_of =
  QCheck.Gen.(
    int_range 4 10 >>= fun n ->
    let fmax = max 0 (max_f_of n) in
    int_range 0 fmax >>= fun f ->
    int_range 0 f >>= fun actual_faults ->
    int_range 0 4 >>= fun fault_kind ->
    int_range 0 5 >>= fun adversary_kind ->
    int_range 0 2 >>= fun input_pattern ->
    int_range 0 1000 >>= fun seed ->
    return { n; f; actual_faults; fault_kind; adversary_kind; input_pattern; seed })

let print_scenario s =
  Printf.sprintf "{n=%d f=%d faults=%d kind=%d adv=%d inputs=%d seed=%d}" s.n s.f
    s.actual_faults s.fault_kind s.adversary_kind s.input_pattern s.seed

let adversary_of s =
  match s.adversary_kind with
  | 0 -> Adversary.fifo
  | 1 -> Adversary.uniform
  | 2 -> Adversary.latency ~mean:6.
  | 3 -> Adversary.targeted_delay ~victims:[ node 0 ]
  | 4 -> Adversary.split ~n:s.n
  | _ -> Adversary.rotating_eclipse ~n:s.n ~period:5

let values_of s =
  match s.input_pattern with
  | 0 -> Array.make s.n Value.Zero
  | 1 -> Array.make s.n Value.One
  | _ -> Array.init s.n (fun i -> if i < s.n / 2 then Value.Zero else Value.One)

let faulty_of s ~flip ~equivocate =
  let behaviour =
    match s.fault_kind with
    | 0 -> Behaviour.Silent
    | 1 -> Behaviour.Crash_after (s.seed mod 7)
    | 2 -> Behaviour.Mutate flip
    | 3 -> Behaviour.Equivocate equivocate
    | _ -> Behaviour.Corrupt_after (3, Behaviour.Mutate flip)
  in
  List.init s.actual_faults (fun k -> (node (s.n - 1 - k), behaviour))

(* ---- campaigns ---- *)

module BH = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

let chaos_bracha =
  campaign ~name:"bracha consensus survives arbitrary scenarios" ~count:120
    (scenario_gen ~max_f_of:(fun n -> (n - 1) / 3))
    print_scenario
    (fun s ->
      let faulty =
        faulty_of s ~flip:B.Fault.flip_value
          ~equivocate:(B.Fault.equivocate_by_half ~n:s.n)
      in
      let inputs = B.inputs ~n:s.n ~options:B.Options.default (values_of s) in
      let cfg =
        BH.E.config ~n:s.n ~f:s.f ~inputs ~faulty ~adversary:(adversary_of s)
          ~seed:s.seed ()
      in
      Abc.Harness.ok (snd (BH.run cfg)))

module MH = Abc.Harness.Make (struct
  include M

  let value_of_input = M.value_of_input
end)

let chaos_mmr =
  campaign ~name:"mmr consensus survives arbitrary scenarios" ~count:120
    (scenario_gen ~max_f_of:(fun n -> (n - 1) / 3))
    print_scenario
    (fun s ->
      let faulty =
        faulty_of s ~flip:M.Fault.flip_value
          ~equivocate:(M.Fault.equivocate_by_half ~n:s.n)
      in
      let inputs = M.inputs ~n:s.n ~coin:(Abc.Coin.common ~seed:9) (values_of s) in
      let cfg =
        MH.E.config ~n:s.n ~f:s.f ~inputs ~faulty ~adversary:(adversary_of s)
          ~seed:s.seed ()
      in
      Abc.Harness.ok (snd (MH.run cfg)))

let chaos_mmr_rabin =
  campaign ~name:"mmr over the rabin coin survives arbitrary scenarios" ~count:60
    (scenario_gen ~max_f_of:(fun n -> (n - 1) / 3))
    print_scenario
    (fun s ->
      let faulty =
        faulty_of s ~flip:M.Fault.flip_value
          ~equivocate:(M.Fault.equivocate_by_half ~n:s.n)
      in
      let inputs = M.inputs_with_shared_coin ~n:s.n ~f:s.f ~seed:9 (values_of s) in
      let cfg =
        MH.E.config ~n:s.n ~f:s.f ~inputs ~faulty ~adversary:(adversary_of s)
          ~seed:s.seed ()
      in
      Abc.Harness.ok (snd (MH.run cfg)))

module BOH = Abc.Harness.Make (struct
  include BO

  let value_of_input = BO.value_of_input
end)

let chaos_benor =
  campaign ~name:"ben-or survives arbitrary in-bound scenarios" ~count:80
    (scenario_gen ~max_f_of:(fun n -> (n - 1) / 5))
    print_scenario
    (fun s ->
      let faulty =
        faulty_of s ~flip:BO.Fault.flip_value
          ~equivocate:(BO.Fault.equivocate_by_half ~n:s.n)
      in
      let inputs = BO.inputs ~n:s.n ~mode:BO.Mode.Byzantine ~coin:Abc.Coin.local (values_of s) in
      let cfg =
        BOH.E.config ~n:s.n ~f:s.f ~inputs ~faulty ~adversary:(adversary_of s)
          ~seed:s.seed ()
      in
      Abc.Harness.ok (snd (BOH.run cfg)))

module Acs = Abc.Acs.Make (Abc.Payloads.Int_payload)
module AcsE = Abc_net.Engine.Make (Acs)

let chaos_acs =
  (* Faults restricted to silence/crash here: the ACS message type is
     abstract, so payload mutators come from inner protocols only. *)
  campaign ~name:"acs produces a common subset in arbitrary scenarios" ~count:40
    (scenario_gen ~max_f_of:(fun n -> (n - 1) / 3))
    print_scenario
    (fun s ->
      let behaviour =
        if s.fault_kind mod 2 = 0 then Behaviour.Silent
        else Behaviour.Crash_after (s.seed mod 5)
      in
      let faulty =
        List.init s.actual_faults (fun k -> (node (s.n - 1 - k), behaviour))
      in
      let inputs =
        Acs.inputs ~n:s.n ~coin:Abc.Coin.local (Array.init s.n (fun i -> 100 + i))
      in
      let cfg =
        AcsE.config ~n:s.n ~f:s.f ~inputs ~faulty ~adversary:(adversary_of s)
          ~seed:s.seed ()
      in
      let result = AcsE.run cfg in
      result.AcsE.stop = Abc_net.Engine.All_terminal
      &&
      let honest_subsets =
        List.filter_map
          (fun i ->
            if i >= s.n - s.actual_faults then None
            else
              match result.AcsE.outputs.(i) with
              | [ (_, Acs.Accepted subset) ] -> Some subset
              | _ -> None)
          (List.init s.n (fun i -> i))
      in
      match honest_subsets with
      | first :: rest -> List.for_all (( = ) first) rest
      | [] -> false)

(* ---- the other broadcast variants ---- *)

module CodedE = Abc_net.Engine.Make (Abc.Coded_rbc)
module Ir = Abc.Ir_rbc.Binary
module IrE = Abc_net.Engine.Make (Ir)

(* The sender (node 0) stays honest in these campaigns — faults land on
   the tail — so the checked property is the strong one: every honest
   node delivers exactly the sender's payload. *)
let chaos_coded =
  campaign ~name:"coded rbc delivers the payload in arbitrary scenarios"
    ~count:100
    (scenario_gen ~max_f_of:(fun n -> (n - 1) / 3))
    print_scenario
    (fun s ->
      let payload =
        String.init
          (1 + (s.seed mod 200))
          (fun i -> Char.chr ((s.seed + (13 * i)) land 0xFF))
      in
      let faulty =
        faulty_of s ~flip:Abc.Coded_rbc.Fault.tamper
          ~equivocate:Abc.Coded_rbc.Fault.equivocate
      in
      let cfg =
        CodedE.config ~n:s.n ~f:s.f
          ~inputs:(Abc.Coded_rbc.inputs ~n:s.n ~sender:(node 0) payload)
          ~faulty ~adversary:(adversary_of s) ~seed:s.seed ()
      in
      let result = CodedE.run cfg in
      result.CodedE.stop = Abc_net.Engine.All_terminal
      && List.for_all
           (fun i ->
             match result.CodedE.outputs.(i) with
             | [ (_, Abc.Coded_rbc.Delivered p) ] -> String.equal p payload
             | _ -> false)
           (List.init (s.n - s.actual_faults) (fun i -> i)))

let chaos_ir =
  campaign ~name:"imbs-raynal rbc delivers the payload in arbitrary scenarios"
    ~count:100
    (scenario_gen ~max_f_of:(fun n -> (n - 1) / 5))
    print_scenario
    (fun s ->
      let two_faced _rng ~dst v =
        if Node_id.to_int dst < s.n / 2 then v else Value.negate v
      in
      let faulty =
        faulty_of s
          ~flip:(Ir.Fault.substitute (fun _ v -> Value.negate v))
          ~equivocate:(Ir.Fault.equivocate two_faced)
      in
      let cfg =
        IrE.config ~n:s.n ~f:s.f
          ~inputs:(Ir.inputs ~n:s.n ~sender:(node 0) Value.One)
          ~faulty ~adversary:(adversary_of s) ~seed:s.seed ()
      in
      let result = IrE.run cfg in
      result.IrE.stop = Abc_net.Engine.All_terminal
      && List.for_all
           (fun i ->
             match result.IrE.outputs.(i) with
             | [ (_, Ir.Delivered v) ] -> Value.equal v Value.One
             | _ -> false)
           (List.init (s.n - s.actual_faults) (fun i -> i)))

(* ---- link-fault campaigns ---- *)

module Link_faults = Abc_net.Link_faults

(* Randomized link-fault plans: bounded loss and duplication plus an
   optional healing partition.  Cuts must heal — a link that stays dead
   forever defeats any transport, so permanent cuts belong to the
   targeted tests, not the liveness campaign. *)
type lossy_scenario = {
  ln : int;
  lf : int;
  faults : int;
  silent : bool;
  loss_pct : int; (* 0..20 *)
  dup_pct : int; (* 0..20 *)
  cut : (int * int * int) option; (* from, length, island node *)
  lseed : int;
}

let lossy_gen ~max_n ~max_pct =
  QCheck.Gen.(
    int_range 4 max_n >>= fun ln ->
    int_range 0 ((ln - 1) / 3) >>= fun lf ->
    int_range 0 lf >>= fun faults ->
    bool >>= fun silent ->
    int_range 0 max_pct >>= fun loss_pct ->
    int_range 0 max_pct >>= fun dup_pct ->
    bool >>= fun with_cut ->
    int_range 0 50 >>= fun cut_from ->
    int_range 1 200 >>= fun cut_len ->
    int_range 0 (ln - 1) >>= fun cut_node ->
    int_range 0 1000 >>= fun lseed ->
    return
      {
        ln;
        lf;
        faults;
        silent;
        loss_pct;
        dup_pct;
        cut = (if with_cut then Some (cut_from, cut_len, cut_node) else None);
        lseed;
      })

let print_lossy s =
  Printf.sprintf "{n=%d f=%d faults=%d silent=%b loss=%d%% dup=%d%% cut=%s seed=%d}"
    s.ln s.lf s.faults s.silent s.loss_pct s.dup_pct
    (match s.cut with
    | None -> "none"
    | Some (a, len, v) -> Printf.sprintf "[%d,%d)@%d" a (a + len) v)
    s.lseed

let plan_of s =
  let cuts =
    match s.cut with
    | None -> []
    | Some (from_tick, len, v) ->
      [ Link_faults.cut ~from_tick ~until_tick:(from_tick + len) [ node v ] ]
  in
  Link_faults.make
    ~drop:(float_of_int s.loss_pct /. 100.)
    ~dup:(float_of_int s.dup_pct /. 100.)
    ~cuts ()

(* Faults stay message-agnostic: the wrapper's message type is the
   transport envelope, which payload mutators know nothing about. *)
let lossy_faulty s =
  let behaviour =
    if s.silent then Behaviour.Silent else Behaviour.Crash_after (s.lseed mod 7)
  in
  List.init s.faults (fun k -> (node (s.ln - 1 - k), behaviour))

module BRL = Abc_net.Reliable_link.Make (B)

module BRLH = Abc.Harness.Make (struct
  include BRL

  let value_of_input = B.value_of_input
end)

let chaos_bracha_reliable_lossy =
  campaign ~name:"reliable-link bracha decides under loss, dup and healing cuts"
    ~count:40
    (lossy_gen ~max_n:7 ~max_pct:20)
    print_lossy
    (fun s ->
      let values =
        Array.init s.ln (fun i -> if i < s.ln / 2 then Value.Zero else Value.One)
      in
      let inputs = B.inputs ~n:s.ln ~options:B.Options.default values in
      let cfg =
        BRLH.E.config ~n:s.ln ~f:s.lf ~inputs ~faulty:(lossy_faulty s)
          ~adversary:Adversary.uniform ~seed:s.lseed ~link_faults:(plan_of s)
          ~max_deliveries:4_000_000 ()
      in
      Abc.Harness.ok (snd (BRLH.run cfg)))

let chaos_bracha_raw_lossy_safe =
  (* Without the transport a lossy network may (and does) kill
     liveness, but it must never break safety: whatever subset of nodes
     decides still agrees, and validity still binds decisions to
     honest inputs. *)
  campaign ~name:"raw bracha stays safe under loss (no agreement break)" ~count:60
    (lossy_gen ~max_n:7 ~max_pct:20)
    print_lossy
    (fun s ->
      let values =
        Array.init s.ln (fun i -> if i < s.ln / 2 then Value.Zero else Value.One)
      in
      let inputs = B.inputs ~n:s.ln ~options:B.Options.default values in
      let cfg =
        BH.E.config ~n:s.ln ~f:s.lf ~inputs ~faulty:(lossy_faulty s)
          ~adversary:Adversary.uniform ~seed:s.lseed ~link_faults:(plan_of s) ()
      in
      let verdict = snd (BH.run cfg) in
      verdict.Abc.Harness.agreement && verdict.Abc.Harness.validity)

module RGossipAcs = Abc_net.Reliable_link.Make (Acs)
module RAcsE = Abc_net.Engine.Make (RGossipAcs)

(* ACS multiplies n broadcast instances by n binary agreements, so
   heavy loss plus duplication inflates its retransmission traffic well
   past the default delivery budget.  The campaign stays milder (and
   gets explicit budget headroom) — the point is correctness under
   faults, not a stress race against the iteration cap. *)
let chaos_acs_reliable_lossy =
  campaign ~name:"reliable-link acs agrees on a common subset under lossy links"
    ~count:15
    (lossy_gen ~max_n:5 ~max_pct:10)
    print_lossy
    (fun s ->
      let inputs =
        Acs.inputs ~n:s.ln ~coin:Abc.Coin.local (Array.init s.ln (fun i -> 100 + i))
      in
      let cfg =
        RAcsE.config ~n:s.ln ~f:s.lf ~inputs ~faulty:(lossy_faulty s)
          ~adversary:Adversary.uniform ~seed:s.lseed ~link_faults:(plan_of s)
          ~max_deliveries:4_000_000 ()
      in
      let result = RAcsE.run cfg in
      result.RAcsE.stop = Abc_net.Engine.All_terminal
      &&
      let honest_subsets =
        List.filter_map
          (fun i ->
            if i >= s.ln - s.faults then None
            else
              match result.RAcsE.outputs.(i) with
              | [ (_, Acs.Accepted subset) ] -> Some subset
              | _ -> None)
          (List.init s.ln (fun i -> i))
      in
      match honest_subsets with
      | first :: rest -> List.for_all (( = ) first) rest
      | [] -> false)

module Atomic = Abc_smr.Atomic_broadcast
module AtomicRL = Abc_net.Reliable_link.Make (Atomic)
module AtomicRLE = Abc_net.Engine.Make (AtomicRL)

let chaos_atomic_reliable_lossy =
  (* Loss, duplication, a healing cut AND crash faults that land
     mid-epoch (Crash_after fires while early epochs are still being
     agreed): the surviving honest replicas must still finish the
     pipeline with one identical log. *)
  campaign
    ~name:"atomic broadcast keeps one log under loss and mid-epoch crashes"
    ~count:12
    (lossy_gen ~max_n:5 ~max_pct:10)
    print_lossy
    (fun s ->
      let batch_size = 2 and epochs = 3 in
      let mempools =
        Array.init s.ln (fun i ->
            Abc_smr.Workload.txs
              (Abc_smr.Workload.generate ~seed:s.lseed ~node:(node i)
                 ~count:(batch_size * epochs) ~rate:0.2 ~tx_bytes:16))
      in
      let inputs =
        Atomic.inputs ~n:s.ln ~window:2 ~batch_size ~epochs
          ~coin_seed:(s.lseed + 7919) mempools
      in
      let cfg =
        AtomicRLE.config ~n:s.ln ~f:s.lf ~inputs ~faulty:(lossy_faulty s)
          ~adversary:Adversary.uniform ~seed:s.lseed ~link_faults:(plan_of s)
          ~max_deliveries:12_000_000 ()
      in
      let result = AtomicRLE.run cfg in
      result.AtomicRLE.stop = Abc_net.Engine.All_terminal
      &&
      let honest_logs =
        List.filter_map
          (fun i ->
            if i >= s.ln - s.faults then None
            else Atomic.log_of_outputs result.AtomicRLE.outputs.(i))
          (List.init s.ln (fun i -> i))
      in
      List.length honest_logs = s.ln - s.faults
      &&
      match honest_logs with
      | first :: rest -> List.for_all (( = ) first) rest
      | [] -> false)

module AtomicE = Abc_net.Engine.Make (Atomic)

(* ---- crash-recovery campaign ---- *)

(* Random crash/rejoin schedules on the raw atomic broadcast with
   checkpoints enabled.  Crash-recover replicas are correct-but-amnesic:
   after the run, ALL n logs (not just the untouched ones) must be
   complete, identical, and duplicate-free — recovery must come from the
   durable snapshot plus state transfer, never from replayed commits. *)
type crash_scenario = {
  cn : int;
  cf : int;
  cinterval : int;
  cepochs : int;
  crseed : int;
  plans : (int * int) list list; (* one crash/rejoin schedule per victim *)
}

let crash_gen =
  QCheck.Gen.(
    int_range 4 7 >>= fun cn ->
    let cf = (cn - 1) / 3 in
    int_range 1 cf >>= fun victims ->
    int_range 1 3 >>= fun cinterval ->
    int_range 3 4 >>= fun cepochs ->
    int_range 0 1000 >>= fun crseed ->
    (* Schedules may outlive the run: a crash scheduled after the last
       commit still executes (the engine keeps a run alive while
       transitions are pending), and the rejoined replica must finish
       from its durable log or via transfer from terminal peers. *)
    let pair lo span =
      int_range lo (lo + span) >>= fun crash ->
      int_range (crash + 100) (crash + 5000) >>= fun rejoin ->
      return (crash, rejoin)
    in
    list_repeat victims
      ( int_range 1 2 >>= fun pairs ->
        pair 20 3000 >>= fun (c1, r1) ->
        if pairs = 1 then return [ (c1, r1) ]
        else pair (r1 + 50) 2000 >>= fun p2 -> return [ (c1, r1); p2 ] )
    >>= fun plans ->
    return { cn; cf; cinterval; cepochs; crseed; plans })

let print_crash s =
  Printf.sprintf "{n=%d f=%d interval=%d epochs=%d seed=%d plans=%s}" s.cn s.cf
    s.cinterval s.cepochs s.crseed
    (String.concat ";"
       (List.map
          (fun plan ->
            String.concat ","
              (List.map (fun (c, r) -> Printf.sprintf "%d-%d" c r) plan))
          s.plans))

let chaos_atomic_crash_recovery =
  campaign
    ~name:"atomic broadcast recovers crashed replicas to one identical log"
    ~count:12 crash_gen print_crash
    (fun s ->
      let batch_size = 2 in
      let mempools =
        Array.init s.cn (fun i ->
            Abc_smr.Workload.txs
              (Abc_smr.Workload.generate ~seed:s.crseed ~node:(node i)
                 ~count:(batch_size * s.cepochs) ~rate:0.2 ~tx_bytes:16))
      in
      let inputs =
        Atomic.inputs ~n:s.cn ~window:2 ~checkpoint_interval:s.cinterval
          ~batch_size ~epochs:s.cepochs ~coin_seed:(s.crseed + 7919) mempools
      in
      let faulty =
        List.mapi
          (fun k plan -> (node (s.cn - 1 - k), Behaviour.Crash_recover plan))
          s.plans
      in
      let recovery =
        { AtomicE.snapshot = Atomic.snapshot; restore = Atomic.restore }
      in
      let cfg =
        AtomicE.config ~n:s.cn ~f:s.cf ~inputs ~faulty
          ~adversary:Adversary.uniform ~seed:s.crseed ~recovery
          ~max_deliveries:12_000_000 ()
      in
      let result = AtomicE.run cfg in
      result.AtomicE.stop = Abc_net.Engine.All_terminal
      &&
      let logs =
        List.filter_map
          (fun i -> Atomic.log_of_outputs result.AtomicE.outputs.(i))
          (List.init s.cn (fun i -> i))
      in
      List.length logs = s.cn
      &&
      match logs with
      | first :: rest ->
        List.for_all (( = ) first) rest
        && List.length (List.sort_uniq String.compare first)
           = List.length first
      | [] -> false)

let () =
  Alcotest.run "chaos"
    [
      ( "campaigns",
        [
          chaos_bracha;
          chaos_mmr;
          chaos_mmr_rabin;
          chaos_benor;
          chaos_acs;
          chaos_coded;
          chaos_ir;
        ] );
      ( "link faults",
        [
          chaos_bracha_reliable_lossy;
          chaos_bracha_raw_lossy_safe;
          chaos_acs_reliable_lossy;
          chaos_atomic_reliable_lossy;
        ] );
      ("crash recovery", [ chaos_atomic_crash_recovery ]);
    ]
