(* Tests for the bounded model checker: exhaustive schedule exploration
   of reliable broadcast, plus a deliberately unsafe toy protocol to
   prove the checker can actually find counterexamples. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Protocol = Abc_net.Protocol
module Rbc = Abc.Bracha_rbc.Binary
module X = Abc_check.Explore.Make (Rbc)

let node = Node_id.of_int

let rbc_agreement outputs =
  let delivered =
    Array.to_list outputs
    |> List.concat_map (List.map (fun (Rbc.Delivered v) -> v))
  in
  match delivered with
  | [] -> true
  | v :: rest -> List.for_all (Abc.Value.equal v) rest

let rbc_validity outputs =
  Array.for_all
    (List.for_all (fun (Rbc.Delivered v) -> Abc.Value.equal v Abc.Value.One))
    outputs

let rbc_config ?(faulty = []) ?(max_states = 400_000) ?(max_depth = None)
    ~invariant () =
  {
    X.n = 4;
    f = 1;
    inputs = Rbc.inputs ~n:4 ~sender:(node 0) Abc.Value.One;
    faulty;
    invariant;
    max_states;
    max_depth;
    drop_plan = None;
  }

let test_honest_rbc_agreement_and_validity_bounded () =
  let outcome =
    X.run
      (rbc_config ~max_depth:(Some 8)
         ~invariant:(fun o -> rbc_agreement o && rbc_validity o)
         ())
  in
  Alcotest.(check bool) "no violation" true (outcome.X.violation = None);
  Alcotest.(check bool) "explored many states" true (outcome.X.explored > 1000);
  Alcotest.(check int) "depth bound respected" 8 outcome.X.depth_reached

let test_equivocating_sender_agreement_bounded () =
  (* The headline check: under EVERY schedule prefix of length <= 8, a
     two-faced sender cannot make honest nodes deliver conflicting
     values. *)
  let two_faced _rng ~dst v =
    if Node_id.to_int dst < 2 then v else Abc.Value.negate v
  in
  let faulty =
    [ (node 0, Behaviour.Equivocate (Rbc.Fault.equivocate two_faced)) ]
  in
  let outcome =
    X.run (rbc_config ~faulty ~max_depth:(Some 8) ~invariant:rbc_agreement ())
  in
  Alcotest.(check bool) "no violation in any schedule" true
    (outcome.X.violation = None);
  Alcotest.(check bool) "nontrivial space" true (outcome.X.explored > 1000)

let test_silent_sender_exhausts_immediately () =
  let faulty = [ (node 0, Behaviour.Silent) ] in
  let outcome =
    X.run (rbc_config ~faulty ~max_depth:None ~invariant:rbc_agreement ())
  in
  Alcotest.(check bool) "exhausted" true outcome.X.exhausted;
  Alcotest.(check int) "single deadlocked state" 1 outcome.X.explored;
  Alcotest.(check int) "counted as deadlock" 1 outcome.X.deadlocks

let test_budget_respected () =
  let outcome =
    X.run (rbc_config ~max_states:50 ~max_depth:None ~invariant:rbc_agreement ())
  in
  Alcotest.(check bool) "stopped at budget" true (outcome.X.explored <= 50);
  Alcotest.(check bool) "not exhausted" false outcome.X.exhausted

(* A deliberately unsafe protocol: decide on the first value heard.
   With different inputs, some schedule produces disagreement — the
   checker must find it and produce a schedule. *)
module Race = struct
  type input = Abc.Value.t
  type msg = Claim of Abc.Value.t
  type output = Chose of Abc.Value.t
  type state = { chosen : bool }

  let name = "race"

  let initial _ctx input = ({ chosen = false }, [ Protocol.Broadcast (Claim input) ])

  let on_message _ctx state ~src:_ (Claim v) =
    if state.chosen then (state, [], [])
    else ({ chosen = true }, [], [ Chose v ])

  let is_terminal (Chose _) = true
  let on_timeout = Protocol.no_timeout
  let msg_label (Claim _) = "claim"
  let msg_bytes (Claim _) = 2
  let pp_msg ppf (Claim v) = Fmt.pf ppf "claim(%a)" Abc.Value.pp v
  let pp_output ppf (Chose v) = Fmt.pf ppf "chose(%a)" Abc.Value.pp v
end

module XR = Abc_check.Explore.Make (Race)

let test_finds_counterexample_in_unsafe_protocol () =
  let agreement outputs =
    let chosen =
      Array.to_list outputs |> List.concat_map (List.map (fun (Race.Chose v) -> v))
    in
    match chosen with
    | [] -> true
    | v :: rest -> List.for_all (Abc.Value.equal v) rest
  in
  let outcome =
    XR.run
      {
        XR.n = 2;
        f = 0;
        inputs = [| Abc.Value.Zero; Abc.Value.One |];
        faulty = [];
        invariant = agreement;
        max_states = 10_000;
        max_depth = None;
        drop_plan = None;
      }
  in
  match outcome.XR.violation with
  | Some v ->
    Alcotest.(check bool) "schedule is non-empty" true (List.length v.XR.schedule > 0);
    Alcotest.(check bool) "schedule is short" true (List.length v.XR.schedule <= 4)
  | None -> Alcotest.fail "expected a counterexample"

let test_safe_toy_exhausts () =
  (* Same protocol with equal inputs is trivially safe and small enough
     to exhaust completely. *)
  let outcome =
    XR.run
      {
        XR.n = 2;
        f = 0;
        inputs = [| Abc.Value.One; Abc.Value.One |];
        faulty = [];
        invariant =
          (fun outputs ->
            Array.for_all
              (List.for_all (fun (Race.Chose v) -> Abc.Value.equal v Abc.Value.One))
              outputs);
        max_states = 10_000;
        max_depth = None;
        drop_plan = None;
      }
  in
  Alcotest.(check bool) "exhausted" true outcome.XR.exhausted;
  Alcotest.(check bool) "no violation" true (outcome.XR.violation = None)

(* ---- the other broadcast variants under the checker ---- *)

module Coded = Abc.Coded_rbc
module XC = Abc_check.Explore.Make (Coded)

let coded_agreement outputs =
  let delivered =
    Array.to_list outputs
    |> List.concat_map (List.map (fun (Coded.Delivered p) -> p))
  in
  match delivered with
  | [] -> true
  | p :: rest -> List.for_all (String.equal p) rest

let test_coded_two_faced_sender_checked () =
  (* Every schedule prefix of the coded broadcast under a sender that
     disperses tampered fragments to half the nodes: the Merkle checks
     must keep agreement intact on all of them. *)
  let faulty = [ (node 0, Behaviour.Equivocate Coded.Fault.equivocate) ] in
  let outcome =
    XC.run
      {
        XC.n = 4;
        f = 1;
        inputs = Coded.inputs ~n:4 ~sender:(node 0) "twelve bytes";
        faulty;
        invariant = coded_agreement;
        max_states = 200_000;
        max_depth = Some 6;
        drop_plan = None;
      }
  in
  Alcotest.(check bool) "no violation in any schedule" true
    (outcome.XC.violation = None);
  Alcotest.(check bool) "nontrivial space" true (outcome.XC.explored > 100)

module Ir = Abc.Ir_rbc.Binary
module XI = Abc_check.Explore.Make (Ir)

let ir_agreement outputs =
  let delivered =
    Array.to_list outputs |> List.concat_map (List.map (fun (Ir.Delivered v) -> v))
  in
  match delivered with
  | [] -> true
  | v :: rest -> List.for_all (Abc.Value.equal v) rest

let test_ir_equivocating_sender_checked () =
  (* The n > 5f two-phase broadcast under its designed attack: a
     two-faced sender at the smallest interesting size (n=6, f=1). *)
  let two_faced _rng ~dst v =
    if Node_id.to_int dst < 3 then v else Abc.Value.negate v
  in
  let faulty =
    [ (node 0, Behaviour.Equivocate (Ir.Fault.equivocate two_faced)) ]
  in
  let outcome =
    XI.run
      {
        XI.n = 6;
        f = 1;
        inputs = Ir.inputs ~n:6 ~sender:(node 0) Abc.Value.One;
        faulty;
        invariant = ir_agreement;
        max_states = 150_000;
        max_depth = Some 5;
        drop_plan = None;
      }
  in
  Alcotest.(check bool) "no violation in any schedule" true
    (outcome.XI.violation = None);
  Alcotest.(check bool) "nontrivial space" true (outcome.XI.explored > 100)

(* ---- parallel branch fan-out ---- *)

let test_parallel_matches_any_worker_count () =
  (* run_parallel's outcome must be a pure function of the config:
     identical at 1, 2 and 4 workers, and in agreement with the
     sequential search on everything but the per-branch state counts. *)
  let cfg = rbc_config ~max_depth:(Some 6) ~invariant:rbc_agreement () in
  let outcome_of jobs =
    X.run_parallel ~pool:(Abc_exec.Pool.create ~jobs ()) cfg
  in
  let o1 = outcome_of 1 in
  let o2 = outcome_of 2 in
  let o4 = outcome_of 4 in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (o1 = o2);
  Alcotest.(check bool) "jobs 2 = jobs 4" true (o2 = o4);
  let sequential = X.run cfg in
  Alcotest.(check bool) "no violation either way" true
    (sequential.X.violation = None && o4.X.violation = None);
  Alcotest.(check int) "same depth" sequential.X.depth_reached o4.X.depth_reached;
  Alcotest.(check bool) "at least the sequential coverage" true
    (o4.X.explored >= sequential.X.explored)

let test_parallel_finds_counterexample () =
  let agreement outputs =
    let chosen =
      Array.to_list outputs |> List.concat_map (List.map (fun (Race.Chose v) -> v))
    in
    match chosen with
    | [] -> true
    | v :: rest -> List.for_all (Abc.Value.equal v) rest
  in
  let cfg =
    {
      XR.n = 2;
      f = 0;
      inputs = [| Abc.Value.Zero; Abc.Value.One |];
      faulty = [];
      invariant = agreement;
      max_states = 10_000;
      max_depth = None;
      drop_plan = None;
    }
  in
  let outcome = XR.run_parallel ~pool:(Abc_exec.Pool.create ~jobs:4 ()) cfg in
  match outcome.XR.violation with
  | Some v ->
    Alcotest.(check bool) "schedule is non-empty" true (List.length v.XR.schedule > 0);
    Alcotest.(check bool) "schedule is short" true (List.length v.XR.schedule <= 4)
  | None -> Alcotest.fail "expected a counterexample"

let test_parallel_quiescent_start () =
  let faulty = [ (node 0, Behaviour.Silent) ] in
  let outcome =
    XR.run_parallel
      ~pool:(Abc_exec.Pool.create ~jobs:4 ())
      {
        XR.n = 1;
        f = 0;
        inputs = [| Abc.Value.One |];
        faulty;
        invariant = (fun _ -> true);
        max_states = 100;
        max_depth = None;
        drop_plan = None;
      }
  in
  Alcotest.(check bool) "exhausted" true outcome.XR.exhausted;
  Alcotest.(check int) "one deadlocked state" 1 outcome.XR.deadlocks;
  Alcotest.(check int) "only the start state" 1 outcome.XR.explored

(* ---- lossy links: deterministic drop plans ---- *)

let test_rbc_lossy_links_stay_safe () =
  (* Raw reliable broadcast with the sender's INIT to node 1 discarded:
     node 1 can only deliver through echo amplification.  Totality may
     suffer (that is the transport's job), but no schedule over the
     surviving messages may break agreement or validity. *)
  let drop_plan =
    Some
      (fun ~src ~dst ~nth ->
        Node_id.to_int src = 0 && Node_id.to_int dst = 1 && nth = 0)
  in
  let outcome =
    X.run
      {
        X.n = 4;
        f = 1;
        inputs = Rbc.inputs ~n:4 ~sender:(node 0) Abc.Value.One;
        faulty = [];
        invariant = (fun o -> rbc_agreement o && rbc_validity o);
        max_states = 400_000;
        max_depth = Some 8;
        drop_plan;
      }
  in
  Alcotest.(check bool) "no violation" true (outcome.X.violation = None);
  Alcotest.(check bool) "nontrivial space" true (outcome.X.explored > 100)

module RlRbc = Abc_net.Reliable_link.Make (Rbc)
module XRL = Abc_check.Explore.Make (RlRbc)

let test_reliable_link_rbc_checked_over_drops () =
  (* The transport under the model checker: every schedule prefix of
     the wrapped protocol — deliveries AND timer firings, with the
     first two copies on the 0->1 link deterministically dropped — must
     preserve agreement and validity.  This exercises retransmission
     paths that no single seeded run pins down. *)
  let drop_plan =
    Some
      (fun ~src ~dst ~nth ->
        Node_id.to_int src = 0 && Node_id.to_int dst = 1 && nth < 2)
  in
  let outcome =
    XRL.run
      {
        XRL.n = 4;
        f = 1;
        inputs = Rbc.inputs ~n:4 ~sender:(node 0) Abc.Value.One;
        faulty = [];
        invariant = (fun o -> rbc_agreement o && rbc_validity o);
        max_states = 150_000;
        max_depth = Some 5;
        drop_plan;
      }
  in
  Alcotest.(check bool) "no violation" true (outcome.XRL.violation = None);
  Alcotest.(check bool) "nontrivial space" true (outcome.XRL.explored > 1000);
  (* With pending retransmission timers the lossy system must never
     deadlock inside the depth bound. *)
  Alcotest.(check int) "no deadlock" 0 outcome.XRL.deadlocks

let () =
  Alcotest.run "model_check"
    [
      ( "rbc",
        [
          Alcotest.test_case "honest: agreement+validity to depth 8" `Slow
            test_honest_rbc_agreement_and_validity_bounded;
          Alcotest.test_case "equivocator: agreement to depth 8" `Slow
            test_equivocating_sender_agreement_bounded;
          Alcotest.test_case "silent sender exhausts" `Quick
            test_silent_sender_exhausts_immediately;
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
        ] );
      ( "broadcast variants",
        [
          Alcotest.test_case "coded rbc: two-faced sender to depth 6" `Slow
            test_coded_two_faced_sender_checked;
          Alcotest.test_case "imbs-raynal: equivocator to depth 5" `Slow
            test_ir_equivocating_sender_checked;
        ] );
      ( "lossy links",
        [
          Alcotest.test_case "raw rbc safe under deterministic drops" `Slow
            test_rbc_lossy_links_stay_safe;
          Alcotest.test_case "reliable-link rbc checked over drops" `Slow
            test_reliable_link_rbc_checked_over_drops;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "unsafe protocol caught" `Quick
            test_finds_counterexample_in_unsafe_protocol;
          Alcotest.test_case "safe toy exhausts" `Quick test_safe_toy_exhausts;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "outcome independent of worker count" `Slow
            test_parallel_matches_any_worker_count;
          Alcotest.test_case "counterexample found in parallel" `Quick
            test_parallel_finds_counterexample;
          Alcotest.test_case "quiescent start" `Quick test_parallel_quiescent_start;
        ] );
    ]
