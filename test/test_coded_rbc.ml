(* Tests for the two new broadcast protocols: the erasure-coded
   (AVID/HoneyBadger-style) reliable broadcast and the Imbs-Raynal
   two-phase n > 5f broadcast — end-to-end runs under faults, plus the
   hand-computed byte-accounting checks that anchor experiment E16. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Rs = Abc.Rs
module Coded = Abc.Coded_rbc
module CodedE = Abc_net.Engine.Make (Coded)
module Ir = Abc.Ir_rbc.Binary
module IrE = Abc_net.Engine.Make (Ir)
module Ir_str = Abc.Ir_rbc.Make (Abc.Payloads.String_payload)
module Bracha_str = Abc.Bracha_rbc.Make (Abc.Payloads.String_payload)

let node = Node_id.of_int

let payload_of_len len = String.init len (fun i -> Char.chr ((i * 7) land 0xFF))

(* ---- coded rbc: end-to-end ---- *)

let run_coded ?(n = 4) ?(f = 1) ?(len = 48) ?faulty ?adversary ?(seed = 0) () =
  let inputs = Coded.inputs ~n ~sender:(node 0) (payload_of_len len) in
  CodedE.run (CodedE.config ?faulty ?adversary ~seed ~n ~f ~inputs ())

let coded_deliveries result ids =
  List.filter_map
    (fun id ->
      match result.CodedE.outputs.(Node_id.to_int id) with
      | [ (_, Coded.Delivered payload) ] -> Some payload
      | [] -> None
      | _ -> Alcotest.fail "node delivered more than once")
    ids

let test_coded_validity () =
  List.iter
    (fun (n, f, len) ->
      let result = run_coded ~n ~f ~len () in
      let delivered = coded_deliveries result (Node_id.all ~n) in
      Alcotest.(check int) (Printf.sprintf "all deliver n=%d" n) n
        (List.length delivered);
      List.iter
        (fun payload ->
          Alcotest.(check string) "payload intact" (payload_of_len len) payload)
        delivered)
    [ (4, 1, 0); (4, 1, 5); (4, 1, 48); (7, 2, 1000); (10, 3, 4096); (7, 0, 333) ]

let test_coded_validity_all_adversaries () =
  List.iter
    (fun adversary ->
      let result = run_coded ~n:7 ~f:2 ~len:500 ~adversary ~seed:5 () in
      let delivered = coded_deliveries result (Node_id.all ~n:7) in
      Alcotest.(check int)
        (Printf.sprintf "all deliver under %s" adversary.Adversary.name)
        7 (List.length delivered))
    (Adversary.all_basic ~n:7)

let test_coded_tampering_sender_safe () =
  (* A sender whose Val fragments are corrupted in flight: Merkle
     verification kills the echoes, so nobody delivers anything —
     agreement and totality hold vacuously. *)
  List.iter
    (fun seed ->
      let faulty = [ (node 0, Behaviour.Mutate Coded.Fault.tamper) ] in
      let result = run_coded ~n:4 ~f:1 ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = coded_deliveries result [ node 1; node 2; node 3 ] in
      Alcotest.(check int)
        (Printf.sprintf "no delivery from corrupted dispersal (seed %d)" seed)
        0 (List.length delivered))
    (List.init 20 (fun i -> i))

let test_coded_two_faced_sender_agreement () =
  (* Clean fragments to half the nodes, tampered to the rest: honest
     nodes must never deliver conflicting payloads (delivering nothing
     is allowed). *)
  List.iter
    (fun seed ->
      let faulty = [ (node 0, Behaviour.Equivocate Coded.Fault.equivocate) ] in
      let result = run_coded ~n:7 ~f:2 ~len:100 ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = coded_deliveries result (List.tl (Node_id.all ~n:7)) in
      match delivered with
      | [] -> ()
      | first :: rest ->
        List.iter
          (fun other ->
            Alcotest.(check string)
              (Printf.sprintf "agreement under two-faced sender (seed %d)" seed)
              first other)
          rest)
    (List.init 30 (fun i -> i))

let test_coded_tampering_relay_harmless () =
  (* One relay corrupting its echoes: its fragments are dropped at the
     Merkle check, the other n-1 >= n-f echoes carry the day. *)
  List.iter
    (fun seed ->
      let faulty = [ (node 3, Behaviour.Mutate Coded.Fault.tamper) ] in
      let result = run_coded ~n:7 ~f:2 ~len:200 ~faulty ~adversary:Adversary.uniform ~seed () in
      let honest = [ node 0; node 1; node 2; node 4; node 5; node 6 ] in
      let delivered = coded_deliveries result honest in
      Alcotest.(check int) "all honest deliver" 6 (List.length delivered);
      List.iter
        (fun payload ->
          Alcotest.(check string) "payload intact" (payload_of_len 200) payload)
        delivered)
    (List.init 20 (fun i -> i))

let test_coded_crash_totality () =
  let faulty = [ (node 1, Behaviour.Crash_after 2) ] in
  let result = run_coded ~n:4 ~f:1 ~faulty ~seed:3 () in
  let delivered = coded_deliveries result [ node 0; node 2; node 3 ] in
  Alcotest.(check int) "totality" 3 (List.length delivered)

(* ---- coded rbc: hand-computed byte accounting (E16's anchor) ---- *)

let test_coded_byte_accounting_n4 () =
  (* n=4, f=1, payload 48 bytes, fifo schedule.  k = n-2f = 2 shards:
       symbols  = ceil(48 / 3)   = 16
       blocks   = ceil(16 / 2)   = 8  field elements per fragment
       fragment = 4 (index) + 4*8    = 36 bytes on the wire
       branch   = 2 levels * 32      = 64   (4 leaves -> depth 2)
       Val/Echo = 1 + 32 + 4 + 64 + 36 = 137 bytes
       Ready    = 1 + 32             = 33 bytes
     Under fifo every node echoes and readies before the run stops:
       4 Vals + 16 Echoes + 16 Readies
       = 20 * 137 + 16 * 33 = 3268 bytes sent in total. *)
  let result = run_coded ~n:4 ~f:1 ~len:48 () in
  Alcotest.(check int) "all terminal" 4
    (Array.fold_left (fun acc o -> acc + List.length o) 0 result.CodedE.outputs);
  let counter = Abc_sim.Metrics.counter result.CodedE.metrics in
  Alcotest.(check int) "val bytes" (4 * 137) (counter "bytes.sent.val");
  Alcotest.(check int) "echo bytes" (16 * 137) (counter "bytes.sent.echo");
  Alcotest.(check int) "ready bytes" (16 * 33) (counter "bytes.sent.ready");
  Alcotest.(check int) "total bytes" 3268 (counter "bytes.sent")

let test_coded_beats_bracha_at_large_payloads () =
  (* The bandwidth claim in miniature (E16 sweeps this): at a 16 KiB
     payload and n=7 the coded protocol ships strictly fewer bytes per
     node than Bracha, which re-broadcasts the payload three times. *)
  let n = 7 and f = 2 and len = 16384 in
  let coded = run_coded ~n ~f ~len () in
  let module BrachaE = Abc_net.Engine.Make (Bracha_str) in
  let bracha =
    BrachaE.run
      (BrachaE.config ~n ~f
         ~inputs:(Bracha_str.inputs ~n ~sender:(node 0) (payload_of_len len))
         ())
  in
  let coded_bytes = Abc_sim.Metrics.counter coded.CodedE.metrics "bytes.sent" in
  let bracha_bytes = Abc_sim.Metrics.counter bracha.BrachaE.metrics "bytes.sent" in
  Alcotest.(check bool)
    (Printf.sprintf "coded %d < bracha %d" coded_bytes bracha_bytes)
    true (coded_bytes < bracha_bytes)

(* ---- imbs-raynal rbc ---- *)

let run_ir ?(n = 6) ?(f = 1) ?(value = Abc.Value.One) ?faulty ?adversary
    ?(seed = 0) () =
  let inputs = Ir.inputs ~n ~sender:(node 0) value in
  IrE.run (IrE.config ?faulty ?adversary ~seed ~n ~f ~inputs ())

let ir_deliveries result ids =
  List.filter_map
    (fun id ->
      match result.IrE.outputs.(Node_id.to_int id) with
      | [ (_, Ir.Delivered v) ] -> Some v
      | [] -> None
      | _ -> Alcotest.fail "node delivered more than once")
    ids

let test_ir_resilience_asserted () =
  (* n = 5, f = 1 violates n > 5f and must be refused at start-up. *)
  Alcotest.(check bool) "n=6 f=1 accepted" true
    (try
       ignore (run_ir ~n:6 ~f:1 ());
       true
     with Invalid_argument _ -> false);
  Alcotest.(check bool) "n=5 f=1 rejected" true
    (try
       ignore (run_ir ~n:5 ~f:1 ());
       false
     with Invalid_argument _ -> true)

let test_ir_validity () =
  List.iter
    (fun (n, f) ->
      let result = run_ir ~n ~f () in
      let delivered = ir_deliveries result (Node_id.all ~n) in
      Alcotest.(check int) (Printf.sprintf "all deliver n=%d" n) n
        (List.length delivered);
      List.iter
        (fun v ->
          Alcotest.(check bool) "delivers sender value" true
            (Abc.Value.equal v Abc.Value.One))
        delivered)
    [ (6, 1); (11, 2); (16, 3); (4, 0) ]

let test_ir_validity_all_adversaries () =
  List.iter
    (fun adversary ->
      let result = run_ir ~n:6 ~f:1 ~adversary ~seed:5 () in
      let delivered = ir_deliveries result (Node_id.all ~n:6) in
      Alcotest.(check int)
        (Printf.sprintf "all deliver under %s" adversary.Adversary.name)
        6 (List.length delivered))
    (Adversary.all_basic ~n:6)

let test_ir_equivocating_sender_agreement () =
  (* The two-faced sender: One to the low half, Zero to the rest.  At
     n > 5f agreement and totality must both survive: all honest nodes
     deliver the same value or none deliver. *)
  let forge _rng ~dst v =
    if Node_id.to_int dst < 3 then v else Abc.Value.negate v
  in
  List.iter
    (fun seed ->
      let faulty = [ (node 0, Behaviour.Equivocate (Ir.Fault.equivocate forge)) ] in
      let result = run_ir ~n:6 ~f:1 ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = ir_deliveries result (List.tl (Node_id.all ~n:6)) in
      (match delivered with
      | [] -> ()
      | v :: rest ->
        List.iter
          (fun w ->
            Alcotest.(check bool)
              (Printf.sprintf "agreement under equivocation (seed %d)" seed)
              true (Abc.Value.equal v w))
          rest);
      Alcotest.(check bool)
        (Printf.sprintf "totality under equivocation (seed %d)" seed)
        true
        (List.length delivered = 0 || List.length delivered = 5))
    (List.init 50 (fun i -> i))

let test_ir_lying_relay_harmless () =
  let flip _rng v = Abc.Value.negate v in
  List.iter
    (fun seed ->
      let faulty = [ (node 5, Behaviour.Mutate (Ir.Fault.substitute flip)) ] in
      let result = run_ir ~n:6 ~f:1 ~faulty ~adversary:Adversary.uniform ~seed () in
      let delivered = ir_deliveries result (List.init 5 node) in
      Alcotest.(check int) "all honest deliver" 5 (List.length delivered);
      List.iter
        (fun v ->
          Alcotest.(check bool) "validity despite lying relay" true
            (Abc.Value.equal v Abc.Value.One))
        delivered)
    (List.init 50 (fun i -> i))

let test_ir_crash_totality () =
  let faulty = [ (node 2, Behaviour.Crash_after 3) ] in
  let result = run_ir ~n:6 ~f:1 ~faulty ~seed:7 () in
  let delivered =
    ir_deliveries result [ node 0; node 1; node 3; node 4; node 5 ]
  in
  Alcotest.(check int) "totality" 5 (List.length delivered)

let test_ir_message_count () =
  (* Two phases: n INITs + n^2 WITNESSes = n^2 + n messages, against
     Bracha's 2n^2 + n — the efficiency the resilience was traded
     for. *)
  let n = 6 in
  let result = run_ir ~n ~f:1 () in
  let sent = Abc_sim.Metrics.counter result.IrE.metrics "sent" in
  Alcotest.(check int) "n^2 + n messages" ((n * n) + n) sent

let test_ir_fewer_bytes_than_bracha () =
  (* Same payload, same n: one phase less traffic means strictly fewer
     bytes on the wire than Bracha (roughly half at large payloads). *)
  let n = 6 and f = 1 and len = 4096 in
  let payload = payload_of_len len in
  let module IrSE = Abc_net.Engine.Make (Ir_str) in
  let module BrachaE = Abc_net.Engine.Make (Bracha_str) in
  let ir =
    IrSE.run
      (IrSE.config ~n ~f ~inputs:(Ir_str.inputs ~n ~sender:(node 0) payload) ())
  in
  let bracha =
    BrachaE.run
      (BrachaE.config ~n ~f
         ~inputs:(Bracha_str.inputs ~n ~sender:(node 0) payload)
         ())
  in
  let ir_bytes = Abc_sim.Metrics.counter ir.IrSE.metrics "bytes.sent" in
  let bracha_bytes = Abc_sim.Metrics.counter bracha.BrachaE.metrics "bytes.sent" in
  Alcotest.(check bool)
    (Printf.sprintf "ir %d < bracha %d" ir_bytes bracha_bytes)
    true
    (ir_bytes < bracha_bytes)

let () =
  Alcotest.run "coded_and_ir_rbc"
    [
      ( "coded rbc",
        [
          Alcotest.test_case "validity across shapes" `Quick test_coded_validity;
          Alcotest.test_case "validity across adversaries" `Quick
            test_coded_validity_all_adversaries;
          Alcotest.test_case "tampering sender: nobody delivers" `Quick
            test_coded_tampering_sender_safe;
          Alcotest.test_case "two-faced sender: agreement" `Quick
            test_coded_two_faced_sender_agreement;
          Alcotest.test_case "tampering relay harmless" `Quick
            test_coded_tampering_relay_harmless;
          Alcotest.test_case "crashing relay: totality" `Quick
            test_coded_crash_totality;
        ] );
      ( "bytes",
        [
          Alcotest.test_case "hand-computed accounting at n=4" `Quick
            test_coded_byte_accounting_n4;
          Alcotest.test_case "coded beats bracha at 16 KiB" `Quick
            test_coded_beats_bracha_at_large_payloads;
          Alcotest.test_case "ir beats bracha on bytes" `Quick
            test_ir_fewer_bytes_than_bracha;
        ] );
      ( "imbs-raynal rbc",
        [
          Alcotest.test_case "resilience bound asserted" `Quick
            test_ir_resilience_asserted;
          Alcotest.test_case "validity across shapes" `Quick test_ir_validity;
          Alcotest.test_case "validity across adversaries" `Quick
            test_ir_validity_all_adversaries;
          Alcotest.test_case "agreement+totality under equivocation" `Quick
            test_ir_equivocating_sender_agreement;
          Alcotest.test_case "lying relay harmless" `Quick
            test_ir_lying_relay_harmless;
          Alcotest.test_case "crashing relay: totality" `Quick
            test_ir_crash_totality;
          Alcotest.test_case "message complexity n^2+n" `Quick
            test_ir_message_count;
        ] );
    ]
