(* Determinism regression for the Exec.Pool merge contract: the same
   seeds swept at jobs=1 and jobs=4 must produce byte-identical
   artifacts — both the analyzer-level trace summaries and the CSV
   bytes of a bench-style table.  Any divergence means per-run state
   leaked across domains or the merge lost its index ordering. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Trace = Abc_sim.Trace
module Trace_file = Abc_sim.Trace_file
module Trace_report = Abc_sim.Trace_report
module Table = Abc_sim.Table
module Pool = Abc_exec.Pool
module B = Abc.Bracha_consensus

module BH = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

let node = Node_id.of_int

let split_inputs n =
  Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)

(* One traced consensus run per seed; the job returns the analyzer
   summary of its own trace, so each domain exercises the full
   engine -> trace -> jsonl -> parser -> report pipeline. *)
let traced_summary ~n ~f ~seed =
  let trace = Trace.create () in
  let inputs = B.inputs ~n ~options:B.Options.default (split_inputs n) in
  let faulty = [ (node (n - 1), Behaviour.Mutate B.Fault.flip_value) ] in
  let cfg = BH.E.config ~n ~f ~inputs ~faulty ~seed ~trace () in
  let _ = BH.run cfg in
  match Trace_file.of_string (Trace.to_jsonl_string ~meta:[] trace) with
  | Ok file -> Trace_report.summary file
  | Error e -> Printf.sprintf "parse error: %s" e

let sweep_summaries pool seeds =
  Pool.map_list pool (fun seed -> traced_summary ~n:7 ~f:2 ~seed) seeds

(* A miniature E1: per-seed verdict cells folded into a table, same
   shape as the bench harness builds, rendered to CSV. *)
let e1_slice_csv pool =
  let table =
    Table.create ~title:"determinism slice" ~id:"det-slice"
      ~columns:[ "n"; "f"; "fault"; "ok"; "mean msgs" ] ()
  in
  List.iter
    (fun (n, f, faulty, label) ->
      let seeds = List.init 10 (fun s -> 1000 + s) in
      let verdicts =
        Pool.map_list pool
          (fun seed ->
            let inputs = B.inputs ~n ~options:B.Options.default (split_inputs n) in
            let cfg = BH.E.config ~n ~f ~inputs ~faulty ~seed ~adversary:Adversary.uniform () in
            snd (BH.run cfg))
          seeds
      in
      let oks = List.filter Abc.Harness.ok verdicts in
      let msgs =
        List.fold_left (fun a v -> a + v.Abc.Harness.messages) 0 verdicts
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int f;
          label;
          Printf.sprintf "%d/%d" (List.length oks) (List.length verdicts);
          Table.cell_float (float_of_int msgs /. 10.);
        ])
    [
      (4, 1, [], "none");
      (7, 2, [ (node 6, Behaviour.Mutate B.Fault.flip_value) ], "flip");
      (7, 2, [ (node 6, Behaviour.Silent) ], "silent");
    ];
  Table.csv table

(* A miniature E17: the atomic-broadcast throughput sweep renders the
   same CSV bytes at any worker count.  The metrics are virtual-time
   (tx/ktick, B/tx from bytes.sent) so nothing wall-clock can leak in;
   what this pins down is the per-seed run itself and the merge order. *)
let e17_slice_csv pool =
  let module Atomic = Abc_smr.Atomic_broadcast in
  let module EA = Abc_net.Engine.Make (Atomic) in
  let epochs = 2 in
  let table =
    Table.create ~title:"E17 determinism slice" ~id:"det-e17"
      ~columns:[ "n"; "batch"; "seed"; "committed"; "tx/ktick"; "B/tx" ] ()
  in
  List.iter
    (fun batch ->
      let n = 4 and f = 1 in
      let seeds = List.init 3 (fun s -> 9000 + s) in
      let rows =
        Pool.map_list pool
          (fun seed ->
            let mempools =
              Array.init n (fun i ->
                  Abc_smr.Workload.txs
                    (Abc_smr.Workload.generate ~seed ~node:(node i)
                       ~count:(batch * epochs) ~rate:1.0 ~tx_bytes:64))
            in
            let cfg =
              EA.config ~n ~f
                ~inputs:
                  (Atomic.inputs ~n ~window:2 ~batch_size:batch ~epochs
                     ~coin_seed:(seed + 7919) mempools)
                ~adversary:Adversary.uniform ~seed ()
            in
            let r = EA.run cfg in
            let committed =
              match Atomic.log_of_outputs r.EA.outputs.(0) with
              | Some log -> List.length log
              | None -> 0
            in
            let duration = max 1 r.EA.duration in
            let bytes = Abc_sim.Metrics.counter r.EA.metrics "bytes.sent" in
            ( seed,
              committed,
              1000. *. float_of_int committed /. float_of_int duration,
              float_of_int bytes /. float_of_int (n * max 1 committed) ))
          seeds
      in
      List.iter
        (fun (seed, committed, txktick, per_tx) ->
          Table.add_row table
            [
              Table.cell_int 4;
              Table.cell_int batch;
              Table.cell_int seed;
              Table.cell_int committed;
              Table.cell_float txktick;
              Table.cell_float ~decimals:0 per_tx;
            ])
        rows)
    [ 16; 64 ];
  Table.csv table

let jobs1 = Pool.create ~jobs:1 ()

let jobs4 = Pool.create ~jobs:4 ()

let test_trace_summaries_identical () =
  let seeds = List.init 8 (fun s -> 42 + s) in
  let sequential = sweep_summaries jobs1 seeds in
  let parallel = sweep_summaries jobs4 seeds in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "summary for seed %d" (42 + i))
        a b)
    (List.combine sequential parallel)

let test_e1_slice_csv_identical () =
  Alcotest.(check string) "csv bytes" (e1_slice_csv jobs1) (e1_slice_csv jobs4)

let test_e17_slice_csv_identical () =
  Alcotest.(check string) "csv bytes" (e17_slice_csv jobs1) (e17_slice_csv jobs4)

(* The schema-v3 byte counters obey the same contract: a lossy sweep
   of the two new broadcasts, fingerprinted by per-seed bytes.sent and
   delivered payloads, merges byte-identically at any worker count. *)
let coded_ir_fingerprints pool =
  let payload seed = String.init 300 (fun i -> Char.chr ((seed + (7 * i)) land 0xFF)) in
  Pool.map_list pool
    (fun seed ->
      let n = 7 and f = 2 in
      let p = payload seed in
      let coded =
        let module RL = Abc_net.Reliable_link.Make (Abc.Coded_rbc) in
        let module E = Abc_net.Engine.Make (RL) in
        let cfg =
          E.config ~n ~f
            ~inputs:(Abc.Coded_rbc.inputs ~n ~sender:(node 0) p)
            ~link_faults:(Abc_net.Link_faults.make ~drop:0.1 ())
            ~seed ()
        in
        let r = E.run cfg in
        Printf.sprintf "coded seed=%d bytes=%d delivered=%d" seed
          (Abc_sim.Metrics.counter r.E.metrics "bytes.sent")
          (Array.fold_left
             (fun a outs ->
               a
               + List.length
                   (List.filter
                      (fun (_, Abc.Coded_rbc.Delivered q) -> String.equal p q)
                      outs))
             0 r.E.outputs)
      in
      let ir =
        let module Ir = Abc.Ir_rbc.Binary in
        let module RL = Abc_net.Reliable_link.Make (Ir) in
        let module E = Abc_net.Engine.Make (RL) in
        let cfg =
          E.config ~n ~f:1
            ~inputs:(Ir.inputs ~n ~sender:(node 0) Abc.Value.One)
            ~link_faults:(Abc_net.Link_faults.make ~drop:0.1 ())
            ~seed ()
        in
        let r = E.run cfg in
        Printf.sprintf "ir seed=%d bytes=%d delivered=%d" seed
          (Abc_sim.Metrics.counter r.E.metrics "bytes.sent")
          (Array.fold_left
             (fun a outs ->
               a
               + List.length
                   (List.filter
                      (fun (_, Ir.Delivered v) -> Abc.Value.equal v Abc.Value.One)
                      outs))
             0 r.E.outputs)
      in
      coded ^ " | " ^ ir)
    (List.init 12 (fun s -> 500 + s))

let test_byte_counters_identical () =
  List.iter2
    (fun a b -> Alcotest.(check string) "fingerprint" a b)
    (coded_ir_fingerprints jobs1)
    (coded_ir_fingerprints jobs4)

let test_pool_map_order () =
  (* The merge keys by job index even when workers race: a job that
     sleeps on low indices cannot displace their slots. *)
  let squares = Pool.map jobs4 64 (fun i -> i * i) in
  Alcotest.(check (array int))
    "indexed merge"
    (Array.init 64 (fun i -> i * i))
    squares

let test_pool_exception_propagates () =
  Alcotest.check_raises "job failure surfaces" (Failure "job 3") (fun () ->
      ignore (Pool.map jobs4 8 (fun i -> if i = 3 then failwith "job 3" else i)))

let () =
  Alcotest.run "determinism"
    [
      ( "pool",
        [
          Alcotest.test_case "indexed merge" `Quick test_pool_map_order;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
        ] );
      ( "jobs=1 vs jobs=4",
        [
          Alcotest.test_case "trace summaries identical" `Slow
            test_trace_summaries_identical;
          Alcotest.test_case "E1-slice csv identical" `Slow
            test_e1_slice_csv_identical;
          Alcotest.test_case "E17-slice csv identical" `Slow
            test_e17_slice_csv_identical;
          Alcotest.test_case "coded/ir byte counters identical" `Slow
            test_byte_counters_identical;
        ] );
    ]
