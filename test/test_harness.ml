(* Tests for the harness's verdict logic, via a tiny scripted protocol
   whose decisions we fully control. *)

module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Value = Abc.Value

(* Every node decides a preconfigured value upon the first message it
   receives; node inputs are (my_vote, what_i_decide) so tests can
   construct agreement and disagreement at will. *)
module Scripted = struct
  type input = { vote : Value.t; decide : Value.t; extra_decisions : int }
  type msg = Ping
  type output = Abc.Decision.t
  type state = { decide : Value.t; extra : int; decided : bool }

  let name = "scripted"

  let initial _ctx (input : input) =
    ( { decide = input.decide; extra = input.extra_decisions; decided = false },
      [ Protocol.Broadcast Ping ] )

  let on_message _ctx state ~src:_ Ping =
    if state.decided then (state, [], [])
    else begin
      let d = { Abc.Decision.value = state.decide; round = 1 } in
      let outputs = List.init (1 + state.extra) (fun _ -> d) in
      ({ state with decided = true }, [], outputs)
    end

  let is_terminal _ = true
  let on_timeout = Protocol.no_timeout
  let msg_label Ping = "ping"
  let msg_bytes Ping = 1
  let pp_msg ppf Ping = Fmt.string ppf "ping"
  let pp_output = Abc.Decision.pp

  let value_of_input (input : input) = input.vote
end

module H = Abc.Harness.Make (Scripted)

let run inputs ?faulty () =
  let n = Array.length inputs in
  H.run (H.E.config ?faulty ~n ~f:0 ~inputs ~seed:0 ())

let input ?(extra = 0) vote decide =
  { Scripted.vote; decide; extra_decisions = extra }

let test_all_good () =
  let _, v = run [| input Value.One Value.One; input Value.One Value.One |] () in
  Alcotest.(check bool) "ok" true (Abc.Harness.ok v);
  Alcotest.(check bool) "terminated" true v.Abc.Harness.terminated;
  Alcotest.(check bool) "agreement" true v.Abc.Harness.agreement;
  Alcotest.(check bool) "validity" true v.Abc.Harness.validity;
  Alcotest.(check int) "max round" 1 v.Abc.Harness.max_round

let test_disagreement_detected () =
  let _, v = run [| input Value.One Value.One; input Value.One Value.Zero |] () in
  Alcotest.(check bool) "agreement violated" false v.Abc.Harness.agreement;
  Alcotest.(check bool) "not ok" false (Abc.Harness.ok v)

let test_validity_violation_detected () =
  (* unanimous One inputs, but everyone decides Zero *)
  let _, v = run [| input Value.One Value.Zero; input Value.One Value.Zero |] () in
  Alcotest.(check bool) "agreement fine" true v.Abc.Harness.agreement;
  Alcotest.(check bool) "validity violated" false v.Abc.Harness.validity

let test_mixed_inputs_any_value_valid () =
  let _, v = run [| input Value.Zero Value.One; input Value.One Value.One |] () in
  Alcotest.(check bool) "valid" true v.Abc.Harness.validity;
  Alcotest.(check bool) "ok" true (Abc.Harness.ok v)

let test_double_decision_fails_termination () =
  let _, v =
    run [| input ~extra:1 Value.One Value.One; input Value.One Value.One |] ()
  in
  Alcotest.(check bool) "double decision rejected" false v.Abc.Harness.terminated

let test_faulty_nodes_excluded_from_checks () =
  (* The faulty node decides the other value, but its output must not
     count against agreement. *)
  let faulty = [ (Node_id.of_int 2, Abc_net.Behaviour.Honest) ] in
  let _, v =
    run
      [| input Value.One Value.One; input Value.One Value.One;
         input Value.One Value.Zero |]
      ~faulty ()
  in
  Alcotest.(check bool) "agreement over honest only" true v.Abc.Harness.agreement;
  Alcotest.(check int) "two honest decisions" 2
    (List.length v.Abc.Harness.decisions)

let test_verdict_pp () =
  let _, v = run [| input Value.One Value.One; input Value.One Value.One |] () in
  let s = Fmt.str "%a" Abc.Harness.pp_verdict v in
  Alcotest.(check bool) "mentions termination" true
    (Astring.String.is_infix ~affix:"terminated=true" s
     || String.length s > 0 && String.sub s 0 10 = "terminated")

let () =
  Alcotest.run "harness"
    [
      ( "verdicts",
        [
          Alcotest.test_case "all good" `Quick test_all_good;
          Alcotest.test_case "disagreement detected" `Quick
            test_disagreement_detected;
          Alcotest.test_case "validity violation detected" `Quick
            test_validity_violation_detected;
          Alcotest.test_case "mixed inputs: any value valid" `Quick
            test_mixed_inputs_any_value_valid;
          Alcotest.test_case "double decision fails termination" `Quick
            test_double_decision_fails_termination;
          Alcotest.test_case "faulty excluded from checks" `Quick
            test_faulty_nodes_excluded_from_checks;
          Alcotest.test_case "pp" `Quick test_verdict_pp;
        ] );
    ]
