(* Tests for the static-analysis pass (abc_lint) and the Quorum module.

   Each rule family gets a passing and a violating fixture, fed to the
   analyzer as inline sources with a synthetic path (the rules are
   path-scoped).  Fixtures route through Driver.check_source, i.e. the
   parsetree layer (Frontend + Ast_rules) with severities stamped —
   exactly what a real scan does per file; one fixture deliberately
   fails to parse to pin the token-layer fallback.  The JSON report is
   checked byte-for-byte against test/golden/lint_report.json.

   The Quorum tests check every named threshold against an independent
   reference — including the inline arithmetic the protocol modules
   used before centralization — over representative (n, f) pairs
   including the n = 3f + 1 resilience boundary. *)

module Rules = Abc_analysis.Rules
module Finding = Abc_analysis.Finding
module Allow = Abc_analysis.Allow
module Driver = Abc_analysis.Driver
module Frontend = Abc_analysis.Frontend
module Rule_info = Abc_analysis.Rule_info
module Quorum = Abc.Quorum

let rules_of findings = List.map (fun f -> f.Finding.rule) findings

let check_rules name expected ~path src =
  Alcotest.(check (list string))
    name expected
    (rules_of (Driver.check_source ~path src))

(* ---- rule 1: determinism ---- *)

let test_determinism_violations () =
  check_rules "wall clock and Random flagged"
    [ "determinism"; "determinism"; "determinism" ]
    ~path:"lib/sim/latency.ml"
    "let jitter () = Random.int 10\n\
     let now () = Unix.gettimeofday ()\n\
     let cpu () = Sys.time ()\n"

let test_determinism_passing () =
  (* lib/prng is the one place allowed to touch entropy primitives. *)
  check_rules "lib/prng exempt" [] ~path:"lib/prng/stream.ml"
    "let reseed () = Random.int 10\n";
  check_rules "seeded stream is fine" [] ~path:"lib/sim/latency.ml"
    "let draw s = Abc_prng.Stream.int s 10\n";
  (* Sys/Unix calls outside the banned set stay quiet. *)
  check_rules "Sys.readdir is fine" [] ~path:"bin/tool.ml"
    "let ls d = Sys.readdir d\n";
  (* The parsetree layer sees no identifiers inside string literals or
     comments — the token layer's classic false positive. *)
  check_rules "strings and comments invisible" [] ~path:"lib/sim/doc.ml"
    "(* Random.int would be bad here *)\n\
     let hint = \"uses Unix.gettimeofday\"\n"

(* ---- rule 2: polymorphic comparison ---- *)

let test_poly_compare_violations () =
  check_rules "structural = on node ids" [ "poly-compare" ]
    ~path:"lib/net/route.ml"
    "type t = { src : Node_id.t; dst : Node_id.t }\n\
     let same m = m.src = m.dst\n";
  check_rules "bare compare" [ "poly-compare" ] ~path:"lib/net/route.ml"
    "let sort xs = List.sort compare xs\n";
  check_rules "compare alias" [ "poly-compare" ] ~path:"lib/net/route.ml"
    "type t = int * int\nlet compare = compare\n";
  check_rules "Stdlib.compare" [ "poly-compare" ] ~path:"lib/net/route.ml"
    "let cmp = Stdlib.compare\n";
  (* A top-level polymorphic table over ids trips both rules: the
     hashing is structural AND the state is process-global. *)
  check_rules "polymorphic Hashtbl over ids"
    [ "mutable-global"; "poly-compare" ] ~path:"lib/net/route.ml"
    "let tbl : (Node_id.t, int) Hashtbl.t = Hashtbl.create 16\n"

let test_poly_compare_passing () =
  (* Qualified record construction is a binder, not a comparison. *)
  check_rules "record field" [] ~path:"lib/net/route.ml"
    "let ctx i = { Protocol.Context.me = Node_id.of_int i; rng = None }\n";
  (* Punned labelled parameters in definitions. *)
  check_rules "labelled params" [] ~path:"lib/net/route.ml"
    "let origin_of (id : Node_id.t) = id\n\
     let create ~n ~f ~sender = (n, f, sender)\n";
  (* A unit that defines its own compare may use it bare afterwards. *)
  check_rules "own compare" [] ~path:"lib/net/route.ml"
    "let compare a b = Int.compare a b\n\
     let max x y = if compare x y >= 0 then x else y\n";
  (* The dedicated equality is exactly what the rule asks for. *)
  check_rules "Node_id.equal" [] ~path:"lib/net/route.ml"
    "let same src dst = Node_id.equal src dst\n";
  (* Without an abstract id type in scope, =/Hashtbl stay quiet (the
     table is function-local so mutable-global stays quiet too). *)
  check_rules "no Node_id in scope" [] ~path:"lib/sim/counter.ml"
    "let tbl () = Hashtbl.create 16\nlet hit src dst = src = dst\n";
  (* Comparing the *results* of a projection function is int compare,
     not id compare — the token layer used to flag this. *)
  check_rules "projection results fine" [] ~path:"lib/net/route.ml"
    "type t = { src : Node_id.t; dst : Node_id.t }\n\
     let half x = Node_id.to_int x mod 2\n\
     let split m = half m.src <> half m.dst\n"

(* ---- rule 3: quorum arithmetic ---- *)

let test_quorum_violations () =
  (* [2 * f] and [f + 1] both match, but findings collapse to one per
     (rule, line) so the report stays readable. *)
  check_rules "2f+1 inline" [ "quorum" ] ~path:"lib/core/proto.ml"
    "let deliver ~f count = count >= 2 * f + 1\n";
  check_rules "separate lines, separate findings" [ "quorum"; "quorum" ]
    ~path:"lib/core/proto.ml"
    "let amplify ~f count = count >= f + 1\n\
     let deliver ~f count = count >= 2 * f + 1\n";
  check_rules "n - f inline" [ "quorum" ] ~path:"lib/core/proto.ml"
    "let quorum ~n ~f = n - f\n";
  check_rules "n / 3 inline" [ "quorum" ] ~path:"lib/core/proto.ml"
    "let max_faults n = n / 3\n";
  (* Threshold parameters read off a state record count too. *)
  check_rules "record fields" [ "quorum" ] ~path:"lib/core/proto.ml"
    "let deliver st count = count >= 2 * st.f + 1\n"

let test_quorum_passing () =
  (* The rule is scoped to protocol modules: simulator code may divide. *)
  check_rules "outside lib/core" [] ~path:"lib/sim/latency.ml"
    "let mid n = n / 2\n";
  (* quorum.ml itself is where the arithmetic lives. *)
  check_rules "quorum.ml exempt" [] ~path:"lib/core/quorum.ml"
    "let ready_deliver ~f = (2 * f) + 1\n";
  (* Named thresholds are the fix (class declared, so the resilience
     rule stays quiet too). *)
  check_rules "named threshold" [] ~path:"lib/core/proto.ml"
    "[@@@abc.resilience \"n>3f\"]\n\
     let deliver state count = count >= Quorum.ready_deliver ~f:state.f\n"

let test_quorum_smr_scope () =
  (* Checkpoint quorum thresholds in the SMR layer must come from the
     named Quorum helpers too: inline 2f+1 stability / f+1 vouch
     counting are flagged exactly as in lib/core... *)
  check_rules "2f+1 inline in lib/smr" [ "quorum" ] ~path:"lib/smr/atomic.ml"
    "let stable ~f votes = votes >= (2 * f) + 1\n";
  check_rules "f+1 vouch inline in lib/smr" [ "quorum" ]
    ~path:"lib/smr/atomic.ml" "let vouched ~f senders = senders >= f + 1\n";
  (* ...and the named helpers are the fix. *)
  check_rules "named checkpoint thresholds pass" [] ~path:"lib/smr/atomic.ml"
    "[@@@abc.resilience \"n>3f\"]\n\
     let stable ~f votes = votes >= Quorum.checkpoint_stable ~f\n\
     let vouched ~f senders = senders >= Quorum.transfer_vouch ~f\n";
  (* checkpoint_stable counts a 2f+1 intersection quorum, which is a
     Bracha-family (n>3f) argument: an n>5f module using it is a
     cross-class misuse. *)
  check_rules "checkpoint_stable cross-class" [ "resilience" ]
    ~path:"lib/smr/atomic.ml"
    "[@@@abc.resilience \"n>5f\"]\n\
     let stable st votes = votes >= Quorum.checkpoint_stable ~f:st.f\n"

(* ---- rule 4: resilience classes ---- *)

let test_resilience_cross_class () =
  (* ir_rbc declares n>5f (registry): a Bracha-family n>3f threshold
     inside it is a cross-class misuse... *)
  check_rules "n>3f threshold in an n>5f module" [ "resilience" ]
    ~path:"lib/core/ir_rbc.ml"
    "let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n";
  (* ...while the same code in a Bracha-family module is exactly right. *)
  check_rules "same threshold fine under n>3f" [] ~path:"lib/core/bracha_rbc.ml"
    "let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n";
  (* The attribute (not the registry) is the primary declaration. *)
  check_rules "attribute declares the class" [ "resilience" ]
    ~path:"lib/core/proto.ml"
    "[@@@abc.resilience \"n>5f\"]\n\
     let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n";
  check_rules "matching attribute passes" [] ~path:"lib/core/proto.ml"
    "[@@@abc.resilience \"n>3f\"]\n\
     let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n";
  (* Dual-mode protocols declare both classes (Ben-Or). *)
  check_rules "dual-class declaration" [] ~path:"lib/core/proto.ml"
    "[@@@abc.resilience \"n>2f n>5f\"]\n\
     let unanimity st = Quorum.decide_unanimity ~f:st.f\n";
  (* The SMR layer is in scope too: an undeclared module using a
     class-specific threshold is flagged there exactly as in core... *)
  check_rules "lib/smr undeclared flagged" [ "resilience" ]
    ~path:"lib/smr/atomic.ml"
    "let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n";
  (* ...and the attribute satisfies it the same way. *)
  check_rules "lib/smr attribute passes" [] ~path:"lib/smr/atomic.ml"
    "[@@@abc.resilience \"n>3f\"]\n\
     let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n"

let test_resilience_ratio_and_undeclared () =
  check_rules "ratio literal vs declared class" [ "resilience" ]
    ~path:"lib/core/proto.ml"
    "[@@@abc.resilience \"n>3f\"]\n\
     let bound n = Quorum.max_faults ~ratio:5 ~n\n";
  check_rules "matching ratio passes" [] ~path:"lib/core/proto.ml"
    "[@@@abc.resilience \"n>3f\"]\n\
     let bound n = Quorum.max_faults ~ratio:3 ~n\n";
  (* Class-specific thresholds in a module with no declaration at all. *)
  check_rules "undeclared module flagged" [ "resilience" ]
    ~path:"lib/core/proto.ml"
    "let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n";
  (* Generic thresholds hold in every class: no declaration needed. *)
  check_rules "generic thresholds exempt" [] ~path:"lib/core/proto.ml"
    "let honest st = Quorum.one_honest ~f:st.f\n\
     let all st = Quorum.completeness ~n:st.n ~f:st.f\n";
  (* A malformed declaration is itself a finding. *)
  check_rules "unparseable class" [ "resilience" ] ~path:"lib/core/proto.ml"
    "[@@@abc.resilience \"n>=3f\"]\n\
     let x = 1\n"

(* ---- rule 5: mutable-global ---- *)

let test_mutable_global_violations () =
  check_rules "top-level refs and containers flagged"
    [ "mutable-global"; "mutable-global"; "mutable-global" ]
    ~path:"lib/sim/sink.ml"
    "let current = ref None\n\
     let registry = Hashtbl.create 16\n\
     let pending : int Queue.t = Queue.create ()\n";
  check_rules "lib/net in scope" [ "mutable-global" ] ~path:"lib/net/wires.ml"
    "let flips = Atomic.make 0\n"

let test_mutable_global_passing () =
  (* Allocation inside functions is per-call, not process-global. *)
  check_rules "function-local state fine" [] ~path:"lib/sim/metrics.ml"
    "let create () = { counters = Hashtbl.create 16 }\n\
     let fresh () =\n\
     \  let cell = ref 0 in\n\
     \  cell\n";
  (* Nested-module bindings are out of scope for the heuristic. *)
  check_rules "nested let fine" [] ~path:"lib/sim/metrics.ml"
    "module Inner = struct\n  let hidden = ref 0\nend\n";
  (* Other directories keep their idioms. *)
  check_rules "lib/core out of scope" [] ~path:"lib/core/proto.ml"
    "let cache = ref None\n";
  (* Immutable top-level values never trip. *)
  check_rules "plain values fine" [] ~path:"lib/sim/clock.ml"
    "let origin = 0\nlet label = \"tick\"\n"

(* ---- rule 6: pool-capture ---- *)

let test_pool_capture_violations () =
  (* A module-level ref captured (and mutated) inside a Pool.map job
     closure races across worker domains. *)
  let findings =
    Driver.check_source ~path:"lib/check/sweep.ml"
      "let total = ref 0\n\
       let sweep pool xs = Exec.Pool.map pool (fun x -> total := !total + x; x) xs\n"
  in
  Alcotest.(check (list string)) "capture flagged" [ "pool-capture" ]
    (rules_of findings);
  Alcotest.(check bool) "error severity" true
    (List.for_all (fun f -> f.Finding.severity = Finding.Error) findings);
  (* Mutating a shared table from inside a job is the same race even
     when the binding is in another compilation unit's scope chain. *)
  check_rules "shared Hashtbl mutation" [ "pool-capture" ]
    ~path:"lib/check/sweep.ml"
    "let cache = Hashtbl.create 16\n\
     let run pool xs = Exec.Pool.map_list pool (fun x -> Hashtbl.replace cache x x) xs\n";
  (* Unqualified opens of the pool module still match (the path just
     has to mention Pool). *)
  check_rules "Pool.run with captured Buffer" [ "pool-capture" ]
    ~path:"bench/sweep.ml"
    "let out = Buffer.create 64\n\
     let go pool jobs = Pool.run pool (fun j -> Buffer.add_string out j) jobs\n"

let test_pool_capture_passing () =
  (* State allocated inside the job is per-job: no sharing. *)
  check_rules "job-local state fine" [] ~path:"lib/check/sweep.ml"
    "let sweep pool xs =\n\
    \  Exec.Pool.map pool (fun x -> let acc = ref 0 in acc := x; !acc) xs\n";
  (* Module-level mutables are fine outside job closures (sequential
     main-domain code). *)
  check_rules "sequential use fine" [] ~path:"lib/check/sweep.ml"
    "let total = ref 0\nlet bump x = total := !total + x\n";
  (* Reading an immutable module-level value inside a job is fine. *)
  check_rules "immutable capture fine" [] ~path:"lib/check/sweep.ml"
    "let scale = 3\n\
     let sweep pool xs = Exec.Pool.map pool (fun x -> x * scale) xs\n"

(* ---- rule 7: silent-drop ---- *)

let test_silent_drop_violations () =
  check_rules "wildcard arm in on_message" [ "silent-drop" ]
    ~path:"lib/core/proto.ml"
    "let on_message st msg = match msg with Ping -> st | _ -> st\n";
  check_rules "wildcard arm in handle (function)" [ "silent-drop" ]
    ~path:"lib/smr/replica.ml"
    "let handle = function Some x -> x | _ -> 0\n"

let test_silent_drop_passing () =
  (* Guarded wildcards made an explicit decision. *)
  check_rules "guarded wildcard fine" [] ~path:"lib/core/proto.ml"
    "let on_message st msg = match msg with Ping -> st | _ when stale msg -> st\n";
  (* Non-handler functions may use catch-alls freely. *)
  check_rules "non-handler fine" [] ~path:"lib/core/proto.ml"
    "let classify x = match x with 0 -> `Zero | _ -> `Other\n";
  (* The rule is scoped to protocol/SMR code. *)
  check_rules "outside scope fine" [] ~path:"lib/sim/events.ml"
    "let on_message st msg = match msg with Ping -> st | _ -> st\n"

(* ---- rule 8: stray-output ---- *)

let test_stray_output () =
  let findings =
    Driver.check_source ~path:"lib/smr/logger.ml"
      "let dump t = print_endline t\nlet trace x = Printf.printf \"%d\" x\n"
  in
  Alcotest.(check (list string)) "library prints flagged"
    [ "stray-output"; "stray-output" ] (rules_of findings);
  (* ...at warn severity: console output is a smell, not a defect. *)
  Alcotest.(check bool) "warn severity" true
    (List.for_all (fun f -> f.Finding.severity = Finding.Warn) findings);
  check_rules "bin/ may print" [] ~path:"bin/report.ml"
    "let dump t = print_endline t\n";
  check_rules "tests may print" [] ~path:"test/test_foo.ml"
    "let dump t = Format.printf \"%s\" t\n"

(* ---- parse-failure fallback ---- *)

let test_token_fallback () =
  let broken = "let now () = Unix.gettimeofday (\n" in
  (match Frontend.parse_impl ~path:"lib/sim/clock.ml" broken with
  | Ok _ -> Alcotest.fail "fixture unexpectedly parses"
  | Error _ -> ());
  (* The token layer still catches the banned call in the unparseable
     unit (with a line-only span). *)
  let findings = Driver.check_source ~path:"lib/sim/clock.ml" broken in
  Alcotest.(check (list string)) "token fallback" [ "determinism" ]
    (rules_of findings);
  List.iter
    (fun f -> Alcotest.(check int) "degenerate span" 0 f.Finding.span.Finding.start_col)
    findings

(* ---- rule metadata ---- *)

let test_rule_info () =
  (* Every rule id produced by the fixtures above is registered (the
     --explain table and the severity stamping both key off this). *)
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true
        (List.mem id Rule_info.ids))
    [
      "determinism"; "poly-compare"; "quorum"; "resilience"; "mutable-global";
      "pool-capture"; "silent-drop"; "stray-output"; "interface";
    ];
  Alcotest.(check bool) "stray-output is the one warn-severity rule" true
    (List.for_all
       (fun (r : Rule_info.t) ->
         r.severity = (if r.id = "stray-output" then Finding.Warn else Finding.Error))
       Rule_info.all)

(* ---- rule 9: interface coverage ---- *)

let test_interface_coverage () =
  Alcotest.(check (list string))
    "missing mli flagged" [ "interface" ]
    (rules_of (Rules.interface_coverage ~files:[ "lib/core/foo.ml" ]));
  Alcotest.(check (list string))
    "present mli passes" []
    (rules_of (Rules.interface_coverage ~files:[ "lib/core/foo.ml"; "lib/core/foo.mli" ]));
  Alcotest.(check (list string))
    "bin/ not required" []
    (rules_of (Rules.interface_coverage ~files:[ "bin/main.ml" ]))

(* ---- allowlist ---- *)

let finding ~rule ~file ~snippet =
  Finding.v ~rule ~file ~span:(Finding.line_span 7) ~snippet "msg"

let test_allowlist () =
  let entries =
    Allow.of_string
      "# comment\n\nquorum ben_or.ml n / 2\npoly-compare adversary.ml\n"
  in
  Alcotest.(check int) "entries parsed" 2 (List.length entries);
  Alcotest.(check bool) "path suffix + snippet" true
    (Allow.permits entries
       (finding ~rule:"quorum" ~file:"lib/core/ben_or.ml" ~snippet:"n / 2"));
  Alcotest.(check bool) "other snippet still fails" false
    (Allow.permits entries
       (finding ~rule:"quorum" ~file:"lib/core/ben_or.ml" ~snippet:"f + 1"));
  Alcotest.(check bool) "other rule still fails" false
    (Allow.permits entries
       (finding ~rule:"determinism" ~file:"lib/core/ben_or.ml" ~snippet:"n / 2"));
  Alcotest.(check bool) "suffix must be a component" false
    (Allow.permits entries
       (finding ~rule:"quorum" ~file:"lib/core/xben_or.ml" ~snippet:"n / 2"));
  Alcotest.(check bool) "snippet-free entry allows the file" true
    (Allow.permits entries
       (finding ~rule:"poly-compare" ~file:"lib/net/adversary.ml" ~snippet:"x = y"))

let test_allowlist_fingerprints () =
  let f = finding ~rule:"quorum" ~file:"lib/core/ben_or.ml" ~snippet:"n / 2" in
  let fp = Finding.fingerprint f in
  let entries =
    Allow.of_string
      (Printf.sprintf
         "quorum ben_or.ml fp:%s  n / 2 -- equivocate_by_half attack shape\n"
         fp)
  in
  Alcotest.(check bool) "fingerprint entry matches" true
    (Allow.permits entries f);
  Alcotest.(check bool) "trailing comment ignored" true
    (match entries with
    | [ { Allow.key = Allow.Fingerprint p; _ } ] -> String.equal p fp
    | _ -> false);
  Alcotest.(check bool) "other snippet has another fingerprint" false
    (Allow.permits entries
       (finding ~rule:"quorum" ~file:"lib/core/ben_or.ml" ~snippet:"f + 1"));
  (* The fingerprint hashes the basename, so it survives root changes
     but still distinguishes files. *)
  Alcotest.(check bool) "same basename under another root" true
    (Allow.permits entries
       (finding ~rule:"quorum" ~file:"src/core/ben_or.ml" ~snippet:"n / 2"));
  Alcotest.(check bool) "different basename fails" false
    (Allow.permits entries
       (finding ~rule:"quorum" ~file:"lib/core/mmr.ml" ~snippet:"n / 2"))

let test_allowlist_unused () =
  let live = finding ~rule:"quorum" ~file:"lib/core/ben_or.ml" ~snippet:"n / 2" in
  let entries =
    Allow.of_string
      "quorum ben_or.ml n / 2\ndeterminism clock.ml Unix.gettimeofday\n"
  in
  match Allow.unused entries [ live ] with
  | [ stale ] ->
    Alcotest.(check string) "stale entry reported"
      "determinism clock.ml Unix.gettimeofday" stale.Allow.raw
  | other ->
    Alcotest.failf "expected exactly one stale entry, got %d" (List.length other)

(* ---- end-to-end: a seeded violation makes the driver report (and the
   CLI exit non-zero); the allowlist silences exactly it ---- *)

(* Under the system temp dir so a non-sandboxed run can't litter the
   repository (the quorum rule only needs the path to contain
   lib/core/). *)
let fixture_root =
  Filename.concat (Filename.get_temp_dir_name ()) "abc_lint_fixture"

let write_fixture path contents =
  let rec mkdirs dir =
    if not (Sys.file_exists dir) then begin
      mkdirs (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  mkdirs (Filename.dirname path);
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let test_driver_seeded_violation () =
  let file = fixture_root ^ "/lib/core/seeded.ml" in
  write_fixture file "let deliver ~f count = count >= 2 * f + 1\n";
  write_fixture (file ^ "i") "val deliver : f:int -> int -> bool\n";
  let report = Driver.run ~allow:[] ~roots:[ fixture_root ] () in
  Alcotest.(check bool)
    "seeded violation found" true
    (List.length report.Driver.findings > 0);
  (* The CLI maps error-severity findings to exit code 1. *)
  List.iter
    (fun f ->
      Alcotest.(check string) "rule" "quorum" f.Finding.rule;
      Alcotest.(check string) "file" file f.Finding.file;
      Alcotest.(check bool) "error severity" true
        (f.Finding.severity = Finding.Error))
    report.Driver.findings;
  (* Findings collapse to one per (rule, line); a snippet-free entry for
     the file silences it. *)
  let allow = Allow.of_string "quorum seeded.ml\n" in
  let silenced = Driver.run ~allow ~roots:[ fixture_root ] () in
  Alcotest.(check int) "allowlisted run is clean" 0
    (List.length silenced.Driver.findings);
  Alcotest.(check int) "exceptions counted" 1 silenced.Driver.allowed;
  (* --rules / --skip-rules select by id. *)
  let only = Driver.run ~only:(Some [ "determinism" ]) ~allow:[] ~roots:[ fixture_root ] () in
  Alcotest.(check int) "rule selection excludes" 0 (List.length only.Driver.findings);
  let skipped = Driver.run ~skip:[ "quorum" ] ~allow:[] ~roots:[ fixture_root ] () in
  Alcotest.(check int) "rule skipping excludes" 0 (List.length skipped.Driver.findings)

(* ---- JSON report: deterministic, golden-checked ---- *)

(* Fixed fixtures exercising three rule families (one warn-severity);
   the report they produce must match test/golden/lint_report.json byte
   for byte, and rendering twice must be identical. *)
let json_fixtures =
  [
    ( "lib/core/ir_rbc.ml",
      "let deliver st count = count >= Quorum.ready_deliver ~f:st.f\n" );
    ( "lib/check/sweep.ml",
      "let total = ref 0\n\
       let sweep pool xs = Exec.Pool.map pool (fun x -> total := !total + x; x) xs\n"
    );
    ("lib/smr/logger.ml", "let dump t = print_endline t\n");
  ]

let json_report () =
  let findings =
    List.concat_map
      (fun (path, src) -> Driver.check_source ~path src)
      json_fixtures
  in
  Driver.make_report ~allow:[] ~files:(List.length json_fixtures) findings

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let test_json_golden () =
  let first = Driver.json_of_report (json_report ()) in
  let second = Driver.json_of_report (json_report ()) in
  Alcotest.(check string) "byte-identical across runs" first second;
  (* Leave the rendered report under the temp fixture root for
     inspection when the golden diff is hard to read. *)
  write_fixture
    (Filename.concat fixture_root "lint_report.actual.json")
    first;
  let golden = read_file "golden/lint_report.json" in
  Alcotest.(check string) "matches golden" golden first

(* ---- Quorum: named thresholds vs the old inline arithmetic ---- *)

(* Representative (n, f) pairs; the first five sit exactly on the
   n = 3f + 1 resilience boundary. *)
let boundary = [ (4, 1); (7, 2); (10, 3); (13, 4); (16, 5) ]

let slack = [ (5, 1); (8, 2); (12, 3); (20, 6); (3, 0) ]

let reps = boundary @ slack

let for_reps check = List.iter (fun (n, f) -> check ~n ~f) reps

let test_quorum_echo () =
  (* Echo quorum: the smallest q such that two q-sets of n nodes
     intersect in at least f + 1 nodes (so >= 1 honest node). *)
  for_reps (fun ~n ~f ->
      let q = Quorum.echo_quorum ~n ~f in
      let ctx = Printf.sprintf "n=%d f=%d" n f in
      Alcotest.(check bool) (ctx ^ " intersection") true ((2 * q) - n >= f + 1);
      Alcotest.(check bool) (ctx ^ " minimal") true ((2 * (q - 1)) - n < f + 1);
      (* and the exact inline expression rbc_core used before. *)
      Alcotest.(check int) (ctx ^ " inline") ((n + f + 2) / 2) q)

let test_quorum_inline_equivalence () =
  for_reps (fun ~n ~f ->
      let ctx = Printf.sprintf "n=%d f=%d " n f in
      Alcotest.(check int) (ctx ^ "ready amplify") (f + 1) (Quorum.ready_amplify ~f);
      Alcotest.(check int) (ctx ^ "ready deliver") ((2 * f) + 1) (Quorum.ready_deliver ~f);
      Alcotest.(check int) (ctx ^ "one honest") (f + 1) (Quorum.one_honest ~f);
      Alcotest.(check int) (ctx ^ "coin reveal") (f + 1) (Quorum.coin_reveal ~f);
      Alcotest.(check int) (ctx ^ "completeness") (n - f) (Quorum.completeness ~n ~f);
      Alcotest.(check int) (ctx ^ "adopt") (f + 1) (Quorum.adopt_support ~f);
      Alcotest.(check int) (ctx ^ "decide") ((2 * f) + 1) (Quorum.decide_support ~f);
      Alcotest.(check int) (ctx ^ "unanimity") ((3 * f) + 1) (Quorum.decide_unanimity ~f);
      Alcotest.(check int) (ctx ^ "crash decide") (f + 1) (Quorum.crash_decide ~f);
      Alcotest.(check int) (ctx ^ "honest support")
        (n - (2 * f))
        (Quorum.honest_support ~n ~f))

let test_quorum_boundary () =
  (* At n = 3f + 1 exactly: resilience holds, one more fault breaks it,
     and the unanimity threshold needs every node. *)
  List.iter
    (fun (n, f) ->
      Quorum.assert_resilience ~n ~f;
      Alcotest.(check int)
        (Printf.sprintf "max_faults n=%d" n)
        f
        (Quorum.max_faults ~ratio:3 ~n);
      Alcotest.(check int)
        (Printf.sprintf "unanimity=n at boundary n=%d" n)
        n
        (Quorum.decide_unanimity ~f);
      let broken = try Quorum.assert_resilience ~n ~f:(f + 1); false with Invalid_argument _ -> true in
      Alcotest.(check bool) (Printf.sprintf "f+1 rejected n=%d" n) true broken)
    boundary;
  let negative = try Quorum.assert_resilience ~n:4 ~f:(-1); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative f rejected" true negative;
  (* Other ratios: Ben-Or byzantine (5f), crash (2f), coin dealer (f). *)
  Quorum.assert_resilience_at ~ratio:5 ~n:16 ~f:3;
  let past = try Quorum.assert_resilience_at ~ratio:5 ~n:16 ~f:4; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "ben-or byz bound" true past;
  Quorum.assert_resilience_at ~ratio:2 ~n:16 ~f:5;
  Quorum.assert_resilience_at ~ratio:1 ~n:4 ~f:3

let test_quorum_majorities () =
  (* strict_majority q is the smallest count with 2 * count > q — the
     strict comparison the consensus cores previously inlined. *)
  for_reps (fun ~n ~f ->
      let q = Quorum.completeness ~n ~f in
      for count = 0 to n do
        let ctx = Printf.sprintf "n=%d f=%d count=%d" n f count in
        Alcotest.(check bool) (ctx ^ " strict majority") ((2 * count) > q)
          (count >= Quorum.strict_majority q);
        Alcotest.(check bool) (ctx ^ " faulty majority")
          ((2 * count) > n + f)
          (count >= Quorum.faulty_majority ~n ~f);
        Alcotest.(check bool) (ctx ^ " majority possible")
          ((2 * count) >= q)
          (count >= Quorum.majority_possible ~q)
      done)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism: violations" `Quick test_determinism_violations;
          Alcotest.test_case "determinism: passing" `Quick test_determinism_passing;
          Alcotest.test_case "poly-compare: violations" `Quick test_poly_compare_violations;
          Alcotest.test_case "poly-compare: passing" `Quick test_poly_compare_passing;
          Alcotest.test_case "quorum: violations" `Quick test_quorum_violations;
          Alcotest.test_case "quorum: passing" `Quick test_quorum_passing;
          Alcotest.test_case "quorum: smr scope" `Quick test_quorum_smr_scope;
          Alcotest.test_case "resilience: cross-class" `Quick test_resilience_cross_class;
          Alcotest.test_case "resilience: ratio + undeclared" `Quick
            test_resilience_ratio_and_undeclared;
          Alcotest.test_case "mutable-global: violations" `Quick
            test_mutable_global_violations;
          Alcotest.test_case "mutable-global: passing" `Quick
            test_mutable_global_passing;
          Alcotest.test_case "pool-capture: violations" `Quick
            test_pool_capture_violations;
          Alcotest.test_case "pool-capture: passing" `Quick
            test_pool_capture_passing;
          Alcotest.test_case "silent-drop: violations" `Quick
            test_silent_drop_violations;
          Alcotest.test_case "silent-drop: passing" `Quick test_silent_drop_passing;
          Alcotest.test_case "stray-output" `Quick test_stray_output;
          Alcotest.test_case "token fallback" `Quick test_token_fallback;
          Alcotest.test_case "rule metadata" `Quick test_rule_info;
          Alcotest.test_case "interface coverage" `Quick test_interface_coverage;
        ] );
      ( "driver",
        [
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "allowlist fingerprints" `Quick
            test_allowlist_fingerprints;
          Alcotest.test_case "allowlist pruning" `Quick test_allowlist_unused;
          Alcotest.test_case "seeded violation" `Quick test_driver_seeded_violation;
          Alcotest.test_case "json golden" `Quick test_json_golden;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "echo quorum" `Quick test_quorum_echo;
          Alcotest.test_case "inline equivalence" `Quick test_quorum_inline_equivalence;
          Alcotest.test_case "resilience boundary" `Quick test_quorum_boundary;
          Alcotest.test_case "majorities" `Quick test_quorum_majorities;
        ] );
    ]
